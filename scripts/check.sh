#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite.
# Exits nonzero on the first failing step.
#
# Usage: scripts/check.sh [build-dir]
#   Default mode runs two legs:
#     1. RelWithDebInfo with -DTAURUS_WERROR=ON (warnings are errors), the
#        configuration the plan verifiers gate behind the verify_plans knob.
#     2. Debug in build-debug, where the plan verifiers are always on
#        (kVerifyPlansDefault), assertions are live, and the lock-rank
#        registry is armed (kLockRankChecksDefault): every mutex
#        acquisition in the suite is order-checked against the DESIGN.md
#        section 12 rank table, aborting on the first violation.
#   TAURUS_SANITIZE=address|undefined|address,undefined|thread scripts/check.sh
#     opt-in sanitizer mode: builds with -fsanitize=<value> in its own
#     build dir (build-asan / build-ubsan / build-asan-ubsan / build-tsan /
#     build-san) and runs the suite under the sanitizer. The thread leg
#     exercises the morsel-driven parallel executor's concurrency — the
#     suite now includes batch_exec_test, so the vectorized batch pipelines
#     running inside worker clones get the same race sweep — and the
#     multi-session server stress test (server_stress_test: admission
#     queueing, overload shedding, and the striped
#     plan-cache/quarantine/feedback hot paths under {4,16,64} concurrent
#     sessions; its ctest TIMEOUT fails a deadlock fast instead of hanging
#     the leg). The combined address,undefined leg is the one to run over
#     the batch executor's vector kernels (out-of-bounds selection indices
#     and UB in the columnar fast paths in one pass).
#   TAURUS_LINT=1 scripts/check.sh
#     lint mode: runs clang-tidy (config in .clang-tidy) over src/ using
#     the compile database from the default build dir instead of the test
#     legs. Skips with a message and exit 0 when clang-tidy is not
#     installed, so the gate is a no-op on machines without it.
#   TAURUS_THREAD_SAFETY=1 scripts/check.sh
#     thread-safety mode: builds all of src/ with clang++ under
#     -Wthread-safety -Werror=thread-safety (the annotations in
#     src/common/thread_annotations.h become compile errors), then
#     compiles scripts/tsa_mutation_check.cc — a deliberately mis-locked
#     access — EXPECTING failure, so a silently toothless gate is itself a
#     failure. Skips with a message and exit 0 when clang++ is not
#     installed (the annotations are no-ops off Clang).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

if [[ -n "${TAURUS_LINT:-}" && "${TAURUS_LINT}" != "0" ]]; then
  if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "check.sh: clang-tidy not found; skipping lint leg." >&2
    exit 0
  fi
  build_dir="${1:-$repo_root/build}"
  # Configure (not build) is enough to emit compile_commands.json.
  cmake -B "$build_dir" -S "$repo_root" >/dev/null
  mapfile -t sources < <(find "$repo_root/src" -name '*.cc' | sort)
  echo "check.sh: clang-tidy over ${#sources[@]} files in src/"
  clang-tidy -p "$build_dir" --quiet "${sources[@]}"
  # One-line summary of what actually ran, so CI logs show the coverage.
  num_checks=$(cd "$repo_root" && clang-tidy --list-checks 2>/dev/null     | grep -c '^    ' || true)
  echo "check.sh: lint leg passed — ${num_checks} clang-tidy checks over"        "${#sources[@]} files (config .clang-tidy + src/common/.clang-tidy)."
  exit 0
fi

if [[ -n "${TAURUS_THREAD_SAFETY:-}" && "${TAURUS_THREAD_SAFETY}" != "0" ]]; then
  if ! command -v clang++ >/dev/null 2>&1; then
    echo "check.sh: clang++ not found; skipping thread-safety leg"          "(annotations are no-ops off Clang)." >&2
    exit 0
  fi
  build_dir="${1:-$repo_root/build-thread-safety}"
  echo "check.sh: thread-safety leg — clang++ with -Werror=thread-safety"
  cmake -B "$build_dir" -S "$repo_root" -DCMAKE_CXX_COMPILER=clang++     -DTAURUS_THREAD_SAFETY=ON
  cmake --build "$build_dir" -j "$(nproc)"
  # Mutation check: a mis-locked access must (a) be accepted without the
  # analysis (so any failure below is attributable to the annotations) and
  # (b) be rejected with a thread-safety diagnostic under the gate's flags.
  probe="$repo_root/scripts/tsa_mutation_check.cc"
  clang++ -std=c++20 -I "$repo_root/src" -fsyntax-only "$probe"
  if out=$(clang++ -std=c++20 -I "$repo_root/src" -Wthread-safety              -Werror=thread-safety -fsyntax-only "$probe" 2>&1); then
    echo "check.sh: FAIL — tsa_mutation_check.cc compiled cleanly; the"          "thread-safety gate is not checking anything." >&2
    exit 1
  fi
  if ! grep -q "thread-safety" <<<"$out"; then
    echo "check.sh: FAIL — tsa_mutation_check.cc failed for a reason other"          "than thread safety:" >&2
    echo "$out" >&2
    exit 1
  fi
  echo "check.sh: thread-safety leg passed (src/ clean, mutation rejected)."
  exit 0
fi

cmake_flags=()
if [[ -n "${TAURUS_SANITIZE:-}" ]]; then
  case "$TAURUS_SANITIZE" in
    address) default_dir="$repo_root/build-asan" ;;
    undefined) default_dir="$repo_root/build-ubsan" ;;
    address,undefined) default_dir="$repo_root/build-asan-ubsan" ;;
    thread) default_dir="$repo_root/build-tsan" ;;
    *) default_dir="$repo_root/build-san" ;;
  esac
  build_dir="${1:-$default_dir}"
  cmake_flags+=("-DTAURUS_SANITIZE=$TAURUS_SANITIZE")
  # Halt on the first UBSan report instead of printing and continuing.
  export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"
  # TSan exits nonzero on any report; second_deadlock_stack aids triage.
  export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}"

  cmake -B "$build_dir" -S "$repo_root" "${cmake_flags[@]}"
  cmake --build "$build_dir" -j "$(nproc)"
  ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"
  exit 0
fi

build_dir="${1:-$repo_root/build}"

echo "check.sh: leg 1/2 — RelWithDebInfo, warnings as errors"
cmake -B "$build_dir" -S "$repo_root" -DTAURUS_WERROR=ON
cmake --build "$build_dir" -j "$(nproc)"
ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"

# Observability smoke: dump the metrics registry, one EXPLAIN ANALYZE, the
# statement-digest table and the flight recorder as JSON and validate each
# against the section-10/15 schemas. Needs python3 for the validation;
# without it the step is announced and skipped.
echo "check.sh: observability JSON (metrics, EXPLAIN ANALYZE, digests, recorder)"
if command -v python3 >/dev/null 2>&1; then
  "$build_dir/examples/obs_dump" --metrics-only \
    | python3 "$repo_root/scripts/validate_obs_json.py" metrics
  "$build_dir/examples/obs_dump" --explain-json \
    | python3 "$repo_root/scripts/validate_obs_json.py" explain
  "$build_dir/examples/obs_dump" --digests-json \
    | python3 "$repo_root/scripts/validate_obs_json.py" digests
  "$build_dir/examples/obs_dump" --recorder-json \
    | python3 "$repo_root/scripts/validate_obs_json.py" recorder
else
  echo "check.sh: python3 not found; skipping observability JSON validation." >&2
fi

# Bench legs below run from the repo root so the BENCH_*.json artifacts
# land where the CI trajectory collector looks for them (not inside the
# throwaway build dir).

# Feedback-loop smoke: first-vs-second optimization q-error on TPC-H
# Q8/Q17 with the cardinality feedback loop enabled; writes
# BENCH_feedback.json for CI trending.
echo "check.sh: feedback-loop bench (BENCH_feedback.json)"
(cd "$repo_root" && "$build_dir/bench/micro_feedback" --json)

# Server-core benches: striped plan-cache hit throughput at 1/4/16 threads
# and the admission controller under overload (sheds + rejections).
echo "check.sh: server benches (BENCH_plan_cache_mt.json, BENCH_admission.json)"
(cd "$repo_root" && "$build_dir/bench/micro_plan_cache_mt" --json)
(cd "$repo_root" && "$build_dir/bench/micro_admission" --json)

# Workload-introspection overhead: digest fold + flight-recorder append
# on the fastest hit-path query (acceptance bar: overhead_pct <= 2).
echo "check.sh: digest overhead bench (BENCH_digest.json)"
(cd "$repo_root" && "$build_dir/bench/micro_digest" --json)

# Batch-vs-Volcano executor leg: same queries through both executors with
# result equality enforced; writes BENCH_exec_batch.json for CI trending
# of the vectorization speedup. The google-benchmark micro legs are
# filtered down to one representative (the full set is for hand-tuning).
echo "check.sh: batch executor bench (BENCH_exec_batch.json)"
(cd "$repo_root" && "$build_dir/bench/micro_executor" --json \
  --benchmark_filter=BM_SequentialScan)

# Merge the per-bench artifacts into one BENCH_summary.json keyed by bench
# name, so trend dashboards consume a single document per run.
if command -v python3 >/dev/null 2>&1; then
  (cd "$repo_root" && python3 scripts/merge_bench_json.py)
fi

echo "check.sh: leg 2/2 — Debug, plan verifiers + lock-rank registry armed"
debug_dir="$repo_root/build-debug"
cmake -B "$debug_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Debug -DTAURUS_WERROR=ON
cmake --build "$debug_dir" -j "$(nproc)"
ctest --test-dir "$debug_dir" --output-on-failure -j "$(nproc)"
