#!/usr/bin/env bash
# Tier-1 verification: configure, build, and run the full test suite.
# Exits nonzero on the first failing step.
#
# Usage: scripts/check.sh [build-dir]
#   TAURUS_SANITIZE=address|undefined|thread scripts/check.sh
#     opt-in sanitizer mode: builds with -fsanitize=<value> in its own
#     build dir (build-asan / build-ubsan / build-tsan / build-san) and
#     runs the suite under the sanitizer. The thread leg exercises the
#     morsel-driven parallel executor's concurrency.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

cmake_flags=()
if [[ -n "${TAURUS_SANITIZE:-}" ]]; then
  case "$TAURUS_SANITIZE" in
    address) default_dir="$repo_root/build-asan" ;;
    undefined) default_dir="$repo_root/build-ubsan" ;;
    thread) default_dir="$repo_root/build-tsan" ;;
    *) default_dir="$repo_root/build-san" ;;
  esac
  build_dir="${1:-$default_dir}"
  cmake_flags+=("-DTAURUS_SANITIZE=$TAURUS_SANITIZE")
  # Halt on the first UBSan report instead of printing and continuing.
  export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"
  # TSan exits nonzero on any report; second_deadlock_stack aids triage.
  export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}"
else
  build_dir="${1:-$repo_root/build}"
fi

cmake -B "$build_dir" -S "$repo_root" ${cmake_flags[@]+"${cmake_flags[@]}"}
cmake --build "$build_dir" -j "$(nproc)"
ctest --test-dir "$build_dir" --output-on-failure -j "$(nproc)"
