// Mutation test for the thread-safety gate (scripts/check.sh,
// TAURUS_THREAD_SAFETY=1 leg): a deliberately mis-locked access that MUST
// fail to compile under clang -Wthread-safety -Werror=thread-safety. The
// leg compiles this file EXPECTING failure; if it ever compiles cleanly,
// the annotations (or the gate's flags) have stopped checking anything and
// the leg fails. Not part of any build target.
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace {

class Account {
 public:
  void Deposit(long amount) {
    taurus::MutexLock lock(&mu_);
    balance_ += amount;
  }

  // BUG (deliberate): reads the guarded field without holding mu_. The
  // thread-safety analysis must reject this line.
  long balance() const { return balance_; }

 private:
  mutable taurus::Mutex mu_{taurus::LockRank::kUnranked, "test.account"};
  long balance_ TAURUS_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account account;
  account.Deposit(1);
  return static_cast<int>(account.balance());
}
