#!/usr/bin/env bash
# Runs every benchmark binary in sequence, capturing the combined output.
# Usage: scripts/run_benches.sh [output_file]
set -u
out="${1:-bench_output.txt}"
: > "$out"
for b in build/bench/*; do
  { [ -f "$b" ] && [ -x "$b" ]; } || continue
  echo "########## $(basename "$b") ##########" | tee -a "$out"
  "$b" 2>&1 | tee -a "$out"
  echo | tee -a "$out"
done
echo "captured to $out"
