#!/usr/bin/env python3
"""Merges the per-bench BENCH_*.json artifacts into one BENCH_summary.json.

Usage (from the repo root, as scripts/check.sh does):
  merge_bench_json.py [--dir DIR] [--out FILE]

Each bench leg of check.sh writes its own BENCH_<name>.json next to the
repo root. This collects every such file into a single document keyed by
the bench name (the BENCH_/.json-stripped stem), so trend dashboards track
one artifact per run:

  {"benches": {"feedback": {...}, "plan_cache_mt": {...}, ...},
   "count": N}

Unparseable files fail the merge (a bench that emits broken JSON should
fail CI, not vanish from the trend). BENCH_summary.json itself is skipped,
so reruns are idempotent.
"""

import argparse
import glob
import json
import os
import sys


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--dir", default=".", help="directory holding BENCH_*.json")
    parser.add_argument("--out", default=None,
                        help="output path (default <dir>/BENCH_summary.json)")
    args = parser.parse_args()

    out_path = args.out or os.path.join(args.dir, "BENCH_summary.json")
    benches = {}
    for path in sorted(glob.glob(os.path.join(args.dir, "BENCH_*.json"))):
        if os.path.abspath(path) == os.path.abspath(out_path):
            continue
        name = os.path.basename(path)[len("BENCH_"):-len(".json")]
        try:
            with open(path) as f:
                benches[name] = json.load(f)
        except ValueError as e:
            print("merge_bench_json: FAIL: %s is not valid JSON: %s"
                  % (path, e), file=sys.stderr)
            sys.exit(1)

    if not benches:
        print("merge_bench_json: FAIL: no BENCH_*.json found in %r"
              % args.dir, file=sys.stderr)
        sys.exit(1)

    doc = {"benches": benches, "count": len(benches)}
    with open(out_path, "w") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")
    print("merge_bench_json: wrote %s (%d benches: %s)"
          % (out_path, len(benches), ", ".join(sorted(benches))))


if __name__ == "__main__":
    main()
