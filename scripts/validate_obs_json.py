#!/usr/bin/env python3
"""Validates the two observability JSON documents (DESIGN.md section 10).

Usage:
  validate_obs_json.py metrics  < MetricsJson() output
  validate_obs_json.py explain  < ExplainAnalyzeJson() output

Exits nonzero with a message on the first schema violation. check.sh pipes
`obs_dump --metrics-only` and an EXPLAIN ANALYZE dump through this; both
documents must parse as JSON and carry the keys the dashboards consume.
"""

import json
import sys

HISTOGRAM_KEYS = {"count", "sum_ms", "p50", "p95", "p99", "max_ms"}

# Counters every Database registers up front (BindCounters); the dump must
# contain each of them even on a fresh instance.
REQUIRED_METRICS = [
    "taurus.health.detours_attempted",
    "taurus.health.detours_failed",
    "taurus.health.fallbacks",
    "taurus.health.budget_kills",
    "taurus.health.exec_budget_kills",
    "taurus.health.quarantine_hits",
    "taurus.plan_cache.hits",
    "taurus.plan_cache.misses",
    "taurus.verify.rules_checked",
    "taurus.verify.violations",
    "taurus.query.count",
    "taurus.query.errors",
    "taurus.query.optimize_ms",
    "taurus.query.execute_ms",
    "taurus.exec.parallel_queries",
    "taurus.exec.parallel_pipelines",
    "taurus.exec.batch.pipelines",
    "taurus.exec.batch.batches",
    "taurus.exec.batch.rows",
    "taurus.exec.rows_scanned",
    "taurus.exec.index_lookups",
]


def fail(msg):
    print("validate_obs_json: FAIL: %s" % msg, file=sys.stderr)
    sys.exit(1)


def validate_metrics(doc):
    if not isinstance(doc, dict):
        fail("metrics document is not a JSON object")
    for key in REQUIRED_METRICS:
        if key not in doc:
            fail("missing metric %r" % key)
    for key, value in doc.items():
        if not key.startswith("taurus."):
            fail("metric %r outside the taurus.* namespace" % key)
        if isinstance(value, dict):
            if set(value) != HISTOGRAM_KEYS:
                fail("histogram %r has keys %s, want %s"
                     % (key, sorted(value), sorted(HISTOGRAM_KEYS)))
        elif not isinstance(value, (int, float)):
            fail("metric %r is %s, want number or histogram object"
                 % (key, type(value).__name__))


def validate_plan_node(node, path):
    for key in ("est_rows", "actual_rows", "loops", "time_ms"):
        if key not in node:
            fail("%s missing %r" % (path, key))
    if node["loops"] > 0 and node["actual_rows"] < 0:
        fail("%s has negative actual_rows" % path)
    for i, child in enumerate(node.get("children", [])):
        validate_plan_node(child, "%s.children[%d]" % (path, i))
    if node.get("derived") is not None:
        validate_block(node["derived"], path + ".derived")


def validate_block(block, path):
    if block.get("node") != "block":
        fail("%s is not a block node" % path)
    validate_plan_node(block, path)
    if block.get("pipeline") is not None:
        validate_plan_node(block["pipeline"], path + ".pipeline")
    for i, arm in enumerate(block.get("union_arms", [])):
        validate_block(arm, "%s.union_arms[%d]" % (path, i))


def validate_explain(doc):
    if not isinstance(doc, dict) or doc.get("explain_analyze") is not True:
        fail("not an explain_analyze document")
    for key in ("used_orca", "execute_ms", "rows_returned", "plan",
                "q_errors", "max_q_error"):
        if key not in doc:
            fail("missing top-level key %r" % key)
    validate_block(doc["plan"], "plan")
    for i, q in enumerate(doc["q_errors"]):
        for key in ("position", "est_rows", "actual_rows", "q_error"):
            if key not in q:
                fail("q_errors[%d] missing %r" % (i, key))
        if q["q_error"] < 1.0:
            fail("q_errors[%d] below 1.0 (q-error is max(e/a, a/e))" % i)


def main():
    if len(sys.argv) != 2 or sys.argv[1] not in ("metrics", "explain"):
        fail("usage: validate_obs_json.py metrics|explain < doc.json")
    try:
        doc = json.load(sys.stdin)
    except ValueError as e:
        fail("not valid JSON: %s" % e)
    if sys.argv[1] == "metrics":
        validate_metrics(doc)
    else:
        validate_explain(doc)
    print("validate_obs_json: %s document OK" % sys.argv[1])


if __name__ == "__main__":
    main()
