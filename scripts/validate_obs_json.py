#!/usr/bin/env python3
"""Validates the observability JSON documents (DESIGN.md sections 10/15).

Usage:
  validate_obs_json.py metrics  < MetricsJson() output
  validate_obs_json.py explain  < ExplainAnalyzeJson() output
  validate_obs_json.py digests  < DigestsJson() output
  validate_obs_json.py recorder < FlightRecorderJson() output

Exits nonzero with a message on the first schema violation. check.sh pipes
`obs_dump --metrics-only|--explain-json|--digests-json|--recorder-json`
through this; every document must parse as JSON and carry the keys the
dashboards consume.
"""

import json
import sys

HISTOGRAM_KEYS = {"count", "sum_ms", "p50", "p95", "p99", "max_ms"}

# Counters every Database registers up front (BindCounters); the dump must
# contain each of them even on a fresh instance.
REQUIRED_METRICS = [
    "taurus.health.detours_attempted",
    "taurus.health.detours_failed",
    "taurus.health.fallbacks",
    "taurus.health.budget_kills",
    "taurus.health.exec_budget_kills",
    "taurus.health.quarantine_hits",
    "taurus.plan_cache.hits",
    "taurus.plan_cache.misses",
    "taurus.verify.rules_checked",
    "taurus.verify.violations",
    "taurus.query.count",
    "taurus.query.errors",
    "taurus.query.optimize_ms",
    "taurus.query.execute_ms",
    "taurus.exec.parallel_queries",
    "taurus.exec.parallel_pipelines",
    "taurus.exec.batch.pipelines",
    "taurus.exec.batch.batches",
    "taurus.exec.batch.rows",
    "taurus.exec.rows_scanned",
    "taurus.exec.index_lookups",
    "taurus.exec.profile.pipelines",
    "taurus.exec.profile.morsels",
    "taurus.exec.profile.last_busy_ms",
    "taurus.exec.profile.last_idle_ms",
    "taurus.exec.profile.last_workers",
]

# Gauges synced before every dump (SyncGaugeMetrics); present in any
# MetricsJson() document, fresh instance included.
REQUIRED_METRICS += [
    "taurus.obs.digest.records",
    "taurus.obs.digest.entries",
    "taurus.obs.digest.lru_evictions",
    "taurus.obs.digest.epoch_bumps",
    "taurus.obs.digest.capacity",
    "taurus.obs.recorder.records",
    "taurus.obs.recorder.entries",
    "taurus.obs.recorder.pinned",
    "taurus.obs.recorder.capacity",
    "taurus.exec.profile.enabled",
]

LATENCY_SUMMARY_KEYS = {"count", "sum_ms", "mean_ms", "max_ms"}


def fail(msg):
    print("validate_obs_json: FAIL: %s" % msg, file=sys.stderr)
    sys.exit(1)


def validate_metrics(doc):
    if not isinstance(doc, dict):
        fail("metrics document is not a JSON object")
    for key in REQUIRED_METRICS:
        if key not in doc:
            fail("missing metric %r" % key)
    for key, value in doc.items():
        if not key.startswith("taurus."):
            fail("metric %r outside the taurus.* namespace" % key)
        if isinstance(value, dict):
            if set(value) != HISTOGRAM_KEYS:
                fail("histogram %r has keys %s, want %s"
                     % (key, sorted(value), sorted(HISTOGRAM_KEYS)))
        elif not isinstance(value, (int, float)):
            fail("metric %r is %s, want number or histogram object"
                 % (key, type(value).__name__))


def validate_plan_node(node, path):
    for key in ("est_rows", "actual_rows", "loops", "time_ms"):
        if key not in node:
            fail("%s missing %r" % (path, key))
    if node["loops"] > 0 and node["actual_rows"] < 0:
        fail("%s has negative actual_rows" % path)
    for i, child in enumerate(node.get("children", [])):
        validate_plan_node(child, "%s.children[%d]" % (path, i))
    if node.get("derived") is not None:
        validate_block(node["derived"], path + ".derived")


def validate_block(block, path):
    if block.get("node") != "block":
        fail("%s is not a block node" % path)
    validate_plan_node(block, path)
    if block.get("pipeline") is not None:
        validate_plan_node(block["pipeline"], path + ".pipeline")
    for i, arm in enumerate(block.get("union_arms", [])):
        validate_block(arm, "%s.union_arms[%d]" % (path, i))


def validate_explain(doc):
    if not isinstance(doc, dict) or doc.get("explain_analyze") is not True:
        fail("not an explain_analyze document")
    for key in ("used_orca", "execute_ms", "rows_returned", "plan",
                "q_errors", "max_q_error"):
        if key not in doc:
            fail("missing top-level key %r" % key)
    validate_block(doc["plan"], "plan")
    for i, q in enumerate(doc["q_errors"]):
        for key in ("position", "est_rows", "actual_rows", "q_error"):
            if key not in q:
                fail("q_errors[%d] missing %r" % (i, key))
        if q["q_error"] < 1.0:
            fail("q_errors[%d] below 1.0 (q-error is max(e/a, a/e))" % i)


def validate_latency_summary(summary, path):
    if not isinstance(summary, dict) or set(summary) != LATENCY_SUMMARY_KEYS:
        fail("%s is not a latency summary (want keys %s)"
             % (path, sorted(LATENCY_SUMMARY_KEYS)))
    if summary["count"] < 0 or summary["sum_ms"] < 0:
        fail("%s has negative count/sum" % path)


def validate_digests(doc):
    if not isinstance(doc, dict):
        fail("digests document is not a JSON object")
    for key in ("capacity", "records", "lru_evictions", "epoch_bumps",
                "digests"):
        if key not in doc:
            fail("missing top-level key %r" % key)
    calls_total = 0
    for i, d in enumerate(doc["digests"]):
        path = "digests[%d]" % i
        for key in ("fingerprint", "statement", "calls", "errors",
                    "orca_calls", "mysql_calls", "plan_cache_hits", "shed",
                    "fallbacks", "quarantine_hits", "verifier_violations",
                    "rows_returned", "latency", "orca_latency",
                    "mysql_latency", "plan_epoch", "epoch_cause",
                    "epoch_latency", "prev_epoch_latency"):
            if key not in d:
                fail("%s missing %r" % (path, key))
        if not str(d["fingerprint"]).startswith("0x"):
            fail("%s fingerprint not hex-rendered" % path)
        if set(d["latency"]) != HISTOGRAM_KEYS:
            fail("%s latency has keys %s, want %s"
                 % (path, sorted(d["latency"]), sorted(HISTOGRAM_KEYS)))
        for key in ("orca_latency", "mysql_latency", "epoch_latency",
                    "prev_epoch_latency"):
            validate_latency_summary(d[key], "%s.%s" % (path, key))
        if d["plan_epoch"] < 1:
            fail("%s plan_epoch below 1" % path)
        if d["orca_latency"]["count"] + d["mysql_latency"]["count"] \
                != d["calls"]:
            fail("%s per-path latency counts do not sum to calls" % path)
        calls_total += d["calls"]
    if doc["lru_evictions"] == 0 and calls_total != doc["records"]:
        fail("digest calls (%d) do not reconcile with records (%d)"
             % (calls_total, doc["records"]))


def validate_recorder(doc):
    if not isinstance(doc, dict):
        fail("recorder document is not a JSON object")
    for key in ("capacity", "records", "pinned", "events"):
        if key not in doc:
            fail("missing top-level key %r" % key)
    if len(doc["events"]) > doc["capacity"]:
        fail("more events (%d) than ring capacity (%d)"
             % (len(doc["events"]), doc["capacity"]))
    prev_seq = 0
    for i, e in enumerate(doc["events"]):
        path = "events[%d]" % i
        for key in ("seq", "session", "fingerprint", "status", "error",
                    "admission", "wait_ms", "used_orca", "fell_back", "shed",
                    "quarantine_hit", "plan_cache_hit", "optimize_ms",
                    "execute_ms", "total_ms", "rows", "workers", "batches",
                    "profiled", "morsels", "busy_ms", "pinned_trace"):
            if key not in e:
                fail("%s missing %r" % (path, key))
        if e["seq"] <= prev_seq:
            fail("%s seq %d not increasing (ring must dump oldest-first)"
                 % (path, e["seq"]))
        prev_seq = e["seq"]
        if e["admission"] not in ("direct", "queued", "shed", "rejected"):
            fail("%s unknown admission outcome %r" % (path, e["admission"]))


def main():
    modes = {
        "metrics": validate_metrics,
        "explain": validate_explain,
        "digests": validate_digests,
        "recorder": validate_recorder,
    }
    if len(sys.argv) != 2 or sys.argv[1] not in modes:
        fail("usage: validate_obs_json.py %s < doc.json"
             % "|".join(sorted(modes)))
    try:
        doc = json.load(sys.stdin)
    except ValueError as e:
        fail("not valid JSON: %s" % e)
    modes[sys.argv[1]](doc)
    print("validate_obs_json: %s document OK" % sys.argv[1])


if __name__ == "__main__":
    main()
