// Workload introspection tests (DESIGN.md section 15): the statement-digest
// store (LRU aggregation keyed by the plan-cache fingerprint, plan-epoch
// latency splits), the flight recorder (bounded ring of recent query events
// with pinned post-mortem traces), executor profiling, and the SQL surfaces
// that expose them — SHOW DIGESTS / SHOW FLIGHT RECORDER / SHOW PROFILE FOR.
//
// The engine-level scenarios deliberately reuse the feedback_test skew
// schema: fact.f_k is heavily skewed (600 rows of k=1 plus 600 distinct
// values) against dim's 80 rows of k=1, so the histogram join estimate is
// ~160 rows while the true output is 48000 — the drift invalidation that
// bumps a digest's plan epoch is provoked, not mocked.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/fault_injector.h"
#include "engine/database.h"
#include "obs/digest_store.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "server/server.h"

namespace taurus {
namespace {

// ---------------------------------------------------------------------------
// DigestStore: aggregation, LRU bound, epoch splits (unit level)
// ---------------------------------------------------------------------------

DigestSample MakeSample(uint64_t fp, const std::string* canonical,
                        double latency_ms, bool used_orca) {
  DigestSample s;
  s.fingerprint = fp;
  s.canonical = canonical;
  s.used_orca = used_orca;
  s.latency_ms = latency_ms;
  s.rows_returned = 10;
  return s;
}

const DigestSnapshot* FindDigest(const std::vector<DigestSnapshot>& digests,
                                 uint64_t fp) {
  for (const DigestSnapshot& d : digests) {
    if (d.fingerprint == fp) return &d;
  }
  return nullptr;
}

TEST(DigestStoreTest, AggregatesFlagsAndPerPathLatency) {
  DigestStoreConfig config;
  DigestStore store(config);
  const std::string stmt = "select-canonical";

  store.Record(MakeSample(7, &stmt, 4.0, /*used_orca=*/true));
  DigestSample err = MakeSample(7, &stmt, 2.0, /*used_orca=*/false);
  err.error = true;
  err.fell_back = true;
  err.verifier_violations = 2;
  store.Record(err);

  auto digests = store.Snapshot();
  ASSERT_EQ(digests.size(), 1u);
  const DigestSnapshot& d = digests[0];
  EXPECT_EQ(d.fingerprint, 7u);
  EXPECT_EQ(d.statement, stmt);
  EXPECT_EQ(d.calls, 2);
  EXPECT_EQ(d.errors, 1);
  EXPECT_EQ(d.orca_calls, 1);
  EXPECT_EQ(d.mysql_calls, 1);
  EXPECT_EQ(d.fallbacks, 1);
  EXPECT_EQ(d.verifier_violations, 2);
  EXPECT_EQ(d.rows_returned, 20);
  EXPECT_EQ(d.latency_count, 2);
  EXPECT_DOUBLE_EQ(d.latency_sum_ms, 6.0);
  EXPECT_EQ(d.orca_latency.count, 1);
  EXPECT_DOUBLE_EQ(d.orca_latency.sum_ms, 4.0);
  EXPECT_EQ(d.mysql_latency.count, 1);
  EXPECT_DOUBLE_EQ(d.mysql_latency.sum_ms, 2.0);
  // Per-path counts partition calls — the invariant validate_obs_json.py
  // enforces on every DigestsJson dump.
  EXPECT_EQ(d.orca_latency.count + d.mysql_latency.count, d.calls);
  EXPECT_EQ(store.records(), 2);
}

TEST(DigestStoreTest, LruEvictsLeastRecentlyExecutedNeverTheNewcomer) {
  DigestStoreConfig config;
  config.capacity = 2;
  DigestStore store(config);
  const std::string stmt = "s";

  store.Record(MakeSample(1, &stmt, 1.0, false));
  store.Record(MakeSample(2, &stmt, 1.0, false));
  store.Record(MakeSample(1, &stmt, 1.0, false));  // touch 1: 2 becomes LRU
  store.Record(MakeSample(3, &stmt, 1.0, false));  // evicts 2, not newcomer 3

  auto digests = store.Snapshot();
  EXPECT_EQ(store.Size(), 2u);
  EXPECT_EQ(store.lru_evictions(), 1);
  EXPECT_EQ(FindDigest(digests, 2), nullptr);
  ASSERT_NE(FindDigest(digests, 1), nullptr);
  ASSERT_NE(FindDigest(digests, 3), nullptr);

  // A re-learned fingerprint starts a fresh life: epoch back to 1, no
  // carried-over counts from the evicted entry.
  store.Record(MakeSample(2, &stmt, 1.0, false));
  digests = store.Snapshot();
  const DigestSnapshot* reborn = FindDigest(digests, 2);
  ASSERT_NE(reborn, nullptr);
  EXPECT_EQ(reborn->calls, 1);
  EXPECT_EQ(reborn->plan_epoch, 1);
}

TEST(DigestStoreTest, FakeClockEpochSplitExposesPlanRegression) {
  // The feedback-loop regression scenario with deterministic latencies: the
  // fake clock stamps each execution's wall time, the epoch bump replays
  // what a drift invalidation does, and the snapshot must show the exact
  // pre/post split a DBA would read off SHOW DIGESTS.
  FakeClock clock(100.0);
  auto timed = [&clock](double ms) {
    double t0 = clock.NowMs();
    clock.Advance(ms);
    return clock.NowMs() - t0;
  };

  DigestStoreConfig config;
  DigestStore store(config);
  const std::string stmt = "skew-join";

  // Epoch 1: the good cached plan, 5ms and 7ms.
  store.Record(MakeSample(42, &stmt, timed(5.0), true));
  store.Record(MakeSample(42, &stmt, timed(7.0), true));

  EXPECT_TRUE(store.BumpEpoch(42, "drift"));
  // Collapse rule: a second hook firing before the next execution is the
  // same visible plan change, not a new epoch — but the cause updates,
  // since queries in this epoch will run under the latest skeleton.
  EXPECT_FALSE(store.BumpEpoch(42, "ddl"));
  EXPECT_EQ(store.epoch_bumps(), 1);

  auto digests = store.Snapshot();
  const DigestSnapshot* d = FindDigest(digests, 42);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->plan_epoch, 2);
  EXPECT_EQ(d->epoch_cause, "ddl");
  EXPECT_EQ(d->prev_epoch_latency.count, 2);
  EXPECT_DOUBLE_EQ(d->prev_epoch_latency.sum_ms, 12.0);
  EXPECT_DOUBLE_EQ(d->prev_epoch_latency.mean_ms(), 6.0);
  EXPECT_DOUBLE_EQ(d->prev_epoch_latency.max_ms, 7.0);
  EXPECT_EQ(d->epoch_latency.count, 0);

  // Epoch 2: the regressed re-optimized plan, 40ms — the two-sided
  // comparison (mean 6ms -> mean 40ms) is the regression signal.
  store.Record(MakeSample(42, &stmt, timed(40.0), true));
  digests = store.Snapshot();
  d = FindDigest(digests, 42);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->epoch_latency.count, 1);
  EXPECT_DOUBLE_EQ(d->epoch_latency.mean_ms(), 40.0);
  EXPECT_DOUBLE_EQ(d->prev_epoch_latency.mean_ms(), 6.0);

  // The next bump replaces (not merges) the previous-epoch summary.
  EXPECT_TRUE(store.BumpEpoch(42, "analyze"));
  digests = store.Snapshot();
  d = FindDigest(digests, 42);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->plan_epoch, 3);
  EXPECT_EQ(d->epoch_cause, "analyze");
  EXPECT_EQ(d->prev_epoch_latency.count, 1);
  EXPECT_DOUBLE_EQ(d->prev_epoch_latency.mean_ms(), 40.0);
  EXPECT_EQ(store.epoch_bumps(), 2);

  // Unknown fingerprints are ignored — no entry is conjured for them.
  EXPECT_FALSE(store.BumpEpoch(999, "ddl"));
  EXPECT_EQ(store.Size(), 1u);
}

TEST(DigestStoreTest, DisabledStoreRecordsNothing) {
  DigestStoreConfig config;
  config.enable = false;
  DigestStore store(config);
  const std::string stmt = "s";
  store.Record(MakeSample(1, &stmt, 1.0, false));
  EXPECT_EQ(store.Size(), 0u);
  EXPECT_EQ(store.records(), 0);
}

// ---------------------------------------------------------------------------
// FlightRecorder: ring semantics, live capacity, trace pinning (unit level)
// ---------------------------------------------------------------------------

FlightRecord MakeRecord(uint64_t fingerprint) {
  FlightRecord r;
  r.fingerprint = fingerprint;
  return r;
}

TEST(FlightRecorderTest, RingOverwritesOldestAndSeqStaysMonotonic) {
  FlightRecorderConfig config;
  config.capacity = 4;
  FlightRecorder recorder(config);
  for (int i = 1; i <= 6; ++i) {
    EXPECT_EQ(recorder.Record(MakeRecord(static_cast<uint64_t>(i))),
              static_cast<uint64_t>(i));
  }
  EXPECT_EQ(recorder.Size(), 4u);
  EXPECT_EQ(recorder.records(), 6);

  auto events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i + 3);  // oldest-first: 3,4,5,6
  }
  FlightRecord out;
  EXPECT_FALSE(recorder.Find(1, &out));  // overwritten
  EXPECT_FALSE(recorder.Find(0, &out));  // never assigned
  ASSERT_TRUE(recorder.Find(6, &out));
  EXPECT_EQ(out.fingerprint, 6u);
}

TEST(FlightRecorderTest, CapacityChangeAppliesLazilyKeepingNewest) {
  FlightRecorderConfig config;
  config.capacity = 4;
  FlightRecorder recorder(config);
  for (int i = 1; i <= 4; ++i) recorder.Record(MakeRecord(1));
  config.capacity = 2;
  EXPECT_EQ(recorder.Record(MakeRecord(1)), 5u);  // shrink applies here
  auto events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].seq, 4u);
  EXPECT_EQ(events[1].seq, 5u);
}

TEST(FlightRecorderTest, PinAbortedTracesKnobDropsOrKeepsTheSpanTree) {
  FakeClock clock;
  auto tracer = std::make_shared<Tracer>(&clock);
  int span = tracer->StartSpan("query");
  tracer->EndSpan(span);

  FlightRecorderConfig config;
  FlightRecorder recorder(config);
  FlightRecord pinned = MakeRecord(1);
  pinned.error = true;
  pinned.pinned_trace = tracer;
  config.pin_aborted_traces = false;
  recorder.Record(pinned);
  EXPECT_EQ(recorder.pinned(), 0);  // knob off: pin dropped at the door

  config.pin_aborted_traces = true;
  FlightRecord kept = MakeRecord(2);
  kept.error = true;
  kept.pinned_trace = tracer;
  uint64_t seq = recorder.Record(kept);
  EXPECT_EQ(recorder.pinned(), 1);
  FlightRecord out;
  ASSERT_TRUE(recorder.Find(seq, &out));
  ASSERT_NE(out.pinned_trace, nullptr);
  EXPECT_EQ(out.pinned_trace->TreeString(), "query\n");
}

TEST(FlightRecorderTest, DisabledRecorderAssignsNoSeq) {
  FlightRecorderConfig config;
  config.enable = false;
  FlightRecorder recorder(config);
  EXPECT_EQ(recorder.Record(MakeRecord(1)), 0u);
  EXPECT_EQ(recorder.Size(), 0u);
}

// ---------------------------------------------------------------------------
// Engine integration: the skew schema from feedback_test, so drift and
// quarantine epoch bumps are provoked by the real control loops.
// ---------------------------------------------------------------------------

class IntrospectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Instance().DisarmAll();
    ASSERT_TRUE(db_.ExecuteSql(
                       "CREATE TABLE fact (f_id INT NOT NULL PRIMARY KEY, "
                       "f_k INT NOT NULL)")
                    .ok());
    ASSERT_TRUE(db_.ExecuteSql(
                       "CREATE TABLE dim (d_k INT NOT NULL, "
                       "d_pad INT NOT NULL)")
                    .ok());
    std::vector<Row> fact;
    for (int i = 0; i < 1200; ++i) {
      int k = i < 600 ? 1 : i + 1000;  // skew: half the table joins
      fact.push_back({Value::Int(i), Value::Int(k)});
    }
    ASSERT_TRUE(db_.BulkLoad("fact", std::move(fact)).ok());
    std::vector<Row> dim;
    for (int i = 0; i < 80; ++i) {
      dim.push_back({Value::Int(1), Value::Int(i)});
    }
    ASSERT_TRUE(db_.BulkLoad("dim", std::move(dim)).ok());
    ASSERT_TRUE(db_.AnalyzeAll().ok());
  }

  void TearDown() override { FaultInjector::Instance().DisarmAll(); }

  /// The one digest with `calls` executions (asserts it is unique).
  DigestSnapshot DigestWithCalls(int64_t calls) {
    DigestSnapshot found;
    int matches = 0;
    for (const DigestSnapshot& d : db_.digest_store().Snapshot()) {
      if (d.calls == calls) {
        found = d;
        ++matches;
      }
    }
    EXPECT_EQ(matches, 1) << "no unique digest with calls=" << calls;
    return found;
  }

  static constexpr const char* kSkewSql =
      "SELECT f_id, d_pad FROM fact, dim WHERE f_k = d_k";
  static constexpr const char* kCountSql = "SELECT COUNT(*) FROM dim";

  Database db_;
};

TEST_F(IntrospectionTest, ShowDigestsAggregatesAndFiltersLikeAPattern) {
  ASSERT_TRUE(db_.Query(kSkewSql, OptimizerPath::kOrca).ok());
  ASSERT_TRUE(db_.Query(kSkewSql, OptimizerPath::kOrca).ok());  // cache hit
  ASSERT_TRUE(db_.Query(kCountSql, OptimizerPath::kMySql).ok());
  EXPECT_FALSE(db_.Query("SELECT * FROM no_such_table").ok());

  auto res = db_.Query("SHOW DIGESTS");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_EQ(res->columns.size(), 21u);
  EXPECT_EQ(res->columns[0], "Digest");
  EXPECT_EQ(res->columns[15], "PlanEpoch");
  // Three digests: the skew join, the count, and the fingerprint-0 bucket
  // for the statement that failed before fingerprinting. Most-executed
  // first.
  ASSERT_EQ(res->rows.size(), 3u);
  const Row& top = res->rows[0];
  EXPECT_EQ(top[2].AsInt(), 2);                         // Calls
  EXPECT_EQ(top[4].AsInt(), 2);                         // OrcaCalls
  EXPECT_EQ(top[6].AsInt(), 1);                         // CacheHits
  EXPECT_EQ(top[11].AsInt(), 2 * 48000);                // Rows
  EXPECT_EQ(top[15].AsInt(), 1);                        // PlanEpoch
  EXPECT_EQ(top[0].AsString().substr(0, 2), "0x");      // hex digest
  // The failed statement aggregates under fingerprint 0 with an error.
  bool saw_error_bucket = false;
  for (const Row& row : res->rows) {
    if (row[0].AsString() == "0x0000000000000000") {
      saw_error_bucket = true;
      EXPECT_EQ(row[3].AsInt(), 1);  // Errors
    }
  }
  EXPECT_TRUE(saw_error_bucket);

  // LIKE filters on the canonical statement text: the digest's own
  // statement matches itself, a nonsense pattern matches nothing.
  const DigestSnapshot top_digest = DigestWithCalls(2);
  auto filtered = db_.Query("SHOW DIGESTS LIKE '" + top_digest.statement + "'");
  ASSERT_TRUE(filtered.ok()) << filtered.status().ToString();
  ASSERT_EQ(filtered->rows.size(), 1u);
  EXPECT_EQ(filtered->rows[0][2].AsInt(), 2);
  auto none = db_.Query("SHOW DIGESTS LIKE 'zzz-no-such-digest%'");
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none->rows.size(), 0u);

  // SHOW itself never pollutes the store it reads: still three digests,
  // and the digest calls reconcile with taurus.query.count exactly.
  EXPECT_EQ(db_.digest_store().Size(), 3u);
  EXPECT_EQ(db_.digest_store().records(),
            db_.metrics().GetCounter("taurus.query.count")->Value());
}

TEST_F(IntrospectionTest, FeedbackDriftBumpsPlanEpochWithVisibleSplit) {
  db_.feedback_config().enable = true;

  // Run 1 compiles from the (provably wrong) histograms and harvests
  // actuals; the q-error bumps the fingerprint's drift version.
  auto run1 = db_.Query(kSkewSql, OptimizerPath::kOrca);
  ASSERT_TRUE(run1.ok()) << run1.status().ToString();
  ASSERT_TRUE(run1->feedback_version_bumped);
  EXPECT_EQ(DigestWithCalls(1).plan_epoch, 1);

  // Run 2's cache lookup sees the drift-stale skeleton, invalidates it and
  // fires the hook — the digest's epoch advances with cause "drift" before
  // run 2's own sample lands in the fresh epoch.
  auto run2 = db_.Query(kSkewSql, OptimizerPath::kOrca);
  ASSERT_TRUE(run2.ok()) << run2.status().ToString();
  EXPECT_EQ(db_.plan_cache().stats().drift_invalidations, 1);

  const DigestSnapshot d = DigestWithCalls(2);
  EXPECT_EQ(d.plan_epoch, 2);
  EXPECT_EQ(d.epoch_cause, "drift");
  EXPECT_EQ(d.prev_epoch_latency.count, 1);  // run 1, the old plan
  EXPECT_EQ(d.epoch_latency.count, 1);       // run 2, the re-optimized plan
  EXPECT_DOUBLE_EQ(d.prev_epoch_latency.sum_ms + d.epoch_latency.sum_ms,
                   d.latency_sum_ms);

  // The same split off the SQL surface.
  auto res = db_.Query("SHOW DIGESTS");
  ASSERT_TRUE(res.ok());
  bool saw = false;
  for (const Row& row : res->rows) {
    if (row[2].AsInt() != 2) continue;
    saw = true;
    EXPECT_EQ(row[15].AsInt(), 2);             // PlanEpoch
    EXPECT_EQ(row[16].AsString(), "drift");    // EpochCause
    EXPECT_EQ(row[17].AsInt(), 1);             // EpochCalls
    EXPECT_EQ(row[19].AsInt(), 1);             // PrevEpochCalls
  }
  EXPECT_TRUE(saw);
  EXPECT_EQ(db_.digest_store().epoch_bumps(), 1);
}

TEST_F(IntrospectionTest, QuarantinePinsAbortedDetourTraceForPostMortem) {
  db_.router_config().complex_query_threshold = 1;  // kAuto detours the join
  db_.plan_cache_config().enable = false;  // every compile attempts a detour
  db_.trace_config().enable = true;
  const int threshold = db_.quarantine_config().failure_threshold;
  ASSERT_EQ(threshold, 3);

  FaultInjector::Instance().ArmCount("bridge.parse_tree_convert", 1000000);
  uint64_t aborted_seq = 0;
  for (int i = 0; i < threshold; ++i) {
    auto res = db_.Query(kSkewSql, OptimizerPath::kAuto);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    EXPECT_TRUE(res->fell_back);
    aborted_seq = res->flight_seq;
    ASSERT_GT(aborted_seq, 0u);
  }
  FaultInjector::Instance().DisarmAll();

  // Threshold crossed during the last failure: the statement entered
  // quarantine, and that plan change bumped the digest's epoch.
  auto hit = db_.Query(kSkewSql, OptimizerPath::kAuto);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->quarantine_hit);
  const DigestSnapshot d = DigestWithCalls(threshold + 1);
  EXPECT_EQ(d.plan_epoch, 2);
  EXPECT_EQ(d.epoch_cause, "quarantine");
  EXPECT_EQ(d.fallbacks, threshold);
  EXPECT_EQ(d.quarantine_hits, 1);
  EXPECT_EQ(d.mysql_calls, threshold + 1);

  // 100 subsequent queries overwrite Database::last_trace() 100 times; the
  // aborted detour's span tree must still be retrievable from its pinned
  // ring slot (capacity 256 comfortably outlives this).
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db_.Query(kCountSql, OptimizerPath::kMySql).ok());
  }
  FlightRecord rec;
  ASSERT_TRUE(db_.flight_recorder().Find(aborted_seq, &rec));
  EXPECT_TRUE(rec.fell_back);
  ASSERT_NE(rec.pinned_trace, nullptr);
  const std::string tree = rec.pinned_trace->TreeString();
  EXPECT_NE(tree.find("orca.detour"), std::string::npos) << tree;
  EXPECT_NE(tree.find("parse_tree_convert"), std::string::npos) << tree;

  // The same post-mortem off the SQL surface: SHOW FLIGHT RECORDER renders
  // the pinned tree in the aborted event's row.
  auto recorder = db_.Query("SHOW FLIGHT RECORDER");
  ASSERT_TRUE(recorder.ok()) << recorder.status().ToString();
  ASSERT_EQ(recorder->columns.size(), 15u);
  bool saw_pinned = false;
  for (const Row& row : recorder->rows) {
    if (static_cast<uint64_t>(row[0].AsInt()) != aborted_seq) continue;
    saw_pinned = true;
    EXPECT_NE(row[14].AsString().find("orca.detour"), std::string::npos);
  }
  EXPECT_TRUE(saw_pinned);
  // Newest-first rendering: the top row is the most recent event.
  ASSERT_GE(recorder->rows.size(), 2u);
  EXPECT_GT(recorder->rows[0][0].AsInt(), recorder->rows[1][0].AsInt());
  EXPECT_GE(db_.flight_recorder().pinned(), static_cast<int64_t>(threshold));
}

TEST_F(IntrospectionTest, ShowProfileReplaysPerWorkerMorselTimings) {
  db_.exec_config().parallel_workers = 4;
  db_.exec_config().parallel_min_driver_rows = 0;
  db_.exec_config().morsel_rows = 64;

  auto res = db_.Query(kSkewSql, OptimizerPath::kMySql);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_GT(res->flight_seq, 0u);
  ASSERT_TRUE(res->profile.enabled);
  ASSERT_GE(res->profile.pipelines, 1);
  ASSERT_FALSE(res->profile.workers.empty());
  EXPECT_GT(res->profile.morsels(), 0);
  int64_t profiled_rows = 0;
  for (const WorkerProfile& w : res->profile.workers) {
    profiled_rows += w.batch_rows + w.volcano_rows;
  }
  EXPECT_GT(profiled_rows, 0);

  auto profile = db_.Query("SHOW PROFILE FOR " +
                           std::to_string(res->flight_seq));
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  ASSERT_EQ(profile->columns.size(), 8u);
  // One row per worker plus the totals row.
  ASSERT_EQ(profile->rows.size(), res->profile.workers.size() + 1);
  const Row& total = profile->rows.back();
  EXPECT_EQ(total[1].AsString(), "total");
  EXPECT_EQ(total[4].AsInt(), res->profile.morsels());
  EXPECT_EQ(total[5].AsInt() + total[6].AsInt(), profiled_rows);

  // The profile feeds the metrics registry too.
  EXPECT_GE(db_.metrics().GetCounter("taurus.exec.profile.pipelines")->Value(),
            1);
  EXPECT_GE(db_.metrics().GetCounter("taurus.exec.profile.morsels")->Value(),
            res->profile.morsels());

  // An overwritten (or never recorded) seq is NotFound, distinguishable
  // from a profile with no per-worker rows.
  auto missing = db_.Query("SHOW PROFILE FOR 999999");
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST_F(IntrospectionTest, ProfilingKnobOffLeavesQueriesUnprofiled) {
  db_.exec_config().enable_profiling = false;
  db_.exec_config().parallel_min_driver_rows = 64;
  db_.exec_config().morsel_rows = 64;
  auto res = db_.Query(kSkewSql, OptimizerPath::kMySql);
  ASSERT_TRUE(res.ok());
  EXPECT_FALSE(res->profile.enabled);
  EXPECT_TRUE(res->profile.workers.empty());
  // SHOW PROFILE still resolves the event — with only the totals row.
  auto profile = db_.Query("SHOW PROFILE FOR " +
                           std::to_string(res->flight_seq));
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile->rows.size(), 1u);
}

TEST_F(IntrospectionTest, JsonSurfacesRenderTheSameStory) {
  ASSERT_TRUE(db_.Query(kSkewSql, OptimizerPath::kOrca).ok());
  EXPECT_FALSE(db_.Query("SELECT * FROM no_such_table").ok());

  const std::string digests = db_.DigestsJson();
  for (const char* key :
       {"\"capacity\"", "\"records\"", "\"lru_evictions\"", "\"epoch_bumps\"",
        "\"digests\"", "\"fingerprint\"", "\"plan_epoch\"",
        "\"epoch_latency\"", "\"prev_epoch_latency\"", "\"orca_latency\"",
        "\"mysql_latency\""}) {
    EXPECT_NE(digests.find(key), std::string::npos) << digests;
  }
  const std::string recorder = db_.FlightRecorderJson();
  for (const char* key :
       {"\"capacity\"", "\"pinned\"", "\"events\"", "\"seq\"",
        "\"admission\"", "\"pinned_trace\"", "\"profiled\""}) {
    EXPECT_NE(recorder.find(key), std::string::npos) << recorder;
  }
}

// ---------------------------------------------------------------------------
// Server-level attribution: sessions, admission outcomes, reconciliation
// ---------------------------------------------------------------------------

TEST_F(IntrospectionTest, SessionSweepReconcilesDigestsWithQueryCounters) {
  Server server(&db_);
  constexpr int kSessions = 4;
  constexpr int kRounds = 5;

  std::vector<std::thread> threads;
  threads.reserve(kSessions);
  for (int t = 0; t < kSessions; ++t) {
    threads.emplace_back([this, &server] {
      auto session = server.CreateSession();
      ASSERT_TRUE(session.ok());
      for (int i = 0; i < kRounds; ++i) {
        // Mixed sweep: the skew join (auto-routed), a cheap aggregate
        // (forced MySQL path), and a statement that errors in binding.
        EXPECT_TRUE((*session)->Query(kSkewSql).ok());
        EXPECT_TRUE(
            (*session)->Query(kCountSql, OptimizerPath::kMySql).ok());
        EXPECT_FALSE((*session)->Query("SELECT * FROM missing_tbl").ok());
      }
    });
  }
  for (std::thread& t : threads) t.join();

  constexpr int64_t kTotal = kSessions * kRounds * 3;
  EXPECT_EQ(db_.metrics().GetCounter("taurus.query.count")->Value(), kTotal);
  int64_t digest_calls = 0;
  int64_t digest_errors = 0;
  for (const DigestSnapshot& d : db_.digest_store().Snapshot()) {
    digest_calls += d.calls;
    digest_errors += d.errors;
  }
  // Exact reconciliation: every query the engine counted has exactly one
  // digest sample (SHOW/introspection surfaces add none of their own).
  EXPECT_EQ(db_.digest_store().lru_evictions(), 0);
  EXPECT_EQ(digest_calls, kTotal);
  EXPECT_EQ(digest_errors,
            db_.metrics().GetCounter("taurus.query.errors")->Value());
  EXPECT_EQ(db_.digest_store().records(), kTotal);
  // The flight recorder saw the same traffic (no admission rejections in
  // this sweep, so engine events are the only events).
  EXPECT_EQ(db_.flight_recorder().records(), kTotal);
  // Session attribution survived the fan-in: events from at least two
  // distinct sessions are in the ring.
  std::vector<FlightRecord> events = db_.flight_recorder().Snapshot();
  uint64_t min_session = UINT64_MAX;
  uint64_t max_session = 0;
  for (const FlightRecord& e : events) {
    min_session = e.session_id < min_session ? e.session_id : min_session;
    max_session = e.session_id > max_session ? e.session_id : max_session;
  }
  EXPECT_GE(min_session, 1u);
  EXPECT_GT(max_session, min_session);
}

TEST_F(IntrospectionTest, ShedQueriesCarryAdmissionAttributionEverywhere) {
  Server server(&db_);
  // A 1-byte memory budget puts every admission under memory pressure, so
  // each auto-routed query is deterministically shed to the MySQL path.
  server.server_config().memory_budget_bytes = 1;
  auto session = server.CreateSession();
  ASSERT_TRUE(session.ok());

  auto res = (*session)->Query(kCountSql);  // default path: kAuto, sheddable
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_TRUE(res->shed);
  EXPECT_TRUE(res->fell_back);
  EXPECT_NE(res->fallback_reason.find("server.admission/shed"),
            std::string::npos)
      << res->fallback_reason;
  EXPECT_EQ((*session)->shed(), 1);

  const DigestSnapshot d = DigestWithCalls(1);
  EXPECT_EQ(d.shed, 1);
  EXPECT_EQ(d.fallbacks, 1);

  FlightRecord rec;
  ASSERT_TRUE(db_.flight_recorder().Find(res->flight_seq, &rec));
  EXPECT_EQ(rec.admission, "shed");
  EXPECT_TRUE(rec.shed);
  EXPECT_EQ(rec.session_id, (*session)->id());
}

}  // namespace
}  // namespace taurus
