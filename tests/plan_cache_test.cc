#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "engine/database.h"
#include "workloads/tpch.h"

namespace taurus {
namespace {

void SortRows(std::vector<Row>* rows) {
  std::sort(rows->begin(), rows->end(), [](const Row& a, const Row& b) {
    for (size_t i = 0; i < a.size(); ++i) {
      int c = Value::Compare(a[i], b[i]);
      if (c != 0) return c < 0;
    }
    return false;
  });
}

std::string RowsText(std::vector<Row> rows) {
  SortRows(&rows);
  std::string out;
  for (const Row& r : rows) out += RowToString(r) + "\n";
  return out;
}

/// Small schema with enough shape variety (indexes, joins, subqueries) to
/// exercise freeze/thaw across both optimizer routes.
class PlanCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.ExecuteSql(
                       "CREATE TABLE dept (d_id INT NOT NULL PRIMARY KEY, "
                       "d_name VARCHAR(20) NOT NULL)")
                    .ok());
    ASSERT_TRUE(db_.ExecuteSql(
                       "CREATE TABLE emp (e_id INT NOT NULL PRIMARY KEY, "
                       "e_dept INT NOT NULL, e_salary DOUBLE NOT NULL, "
                       "e_name VARCHAR(20) NOT NULL)")
                    .ok());
    std::vector<Row> depts;
    for (int i = 0; i < 8; ++i) {
      depts.push_back({Value::Int(i), Value::Str("dept" + std::to_string(i))});
    }
    ASSERT_TRUE(db_.BulkLoad("dept", std::move(depts)).ok());
    std::vector<Row> emps;
    for (int i = 0; i < 120; ++i) {
      emps.push_back({Value::Int(i), Value::Int(i % 8),
                      Value::Double(1000.0 + 37.0 * (i % 11)),
                      Value::Str("emp" + std::to_string(i))});
    }
    ASSERT_TRUE(db_.BulkLoad("emp", std::move(emps)).ok());
    ASSERT_TRUE(db_.AnalyzeAll().ok());
    db_.plan_cache().ResetStats();
  }

  Database db_;
};

TEST_F(PlanCacheTest, SecondCompileOfIdenticalSqlHits) {
  const std::string sql = "SELECT e_name FROM emp WHERE e_salary > 1200";
  auto cold = db_.Query(sql, OptimizerPath::kMySql);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_FALSE(cold->plan_cache_hit);
  auto warm = db_.Query(sql, OptimizerPath::kMySql);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->plan_cache_hit);
  EXPECT_GE(warm->optimize_saved_ms, 0.0);
  EXPECT_EQ(RowsText(cold->rows), RowsText(warm->rows));
  EXPECT_EQ(db_.plan_cache().stats().hits, 1);
}

TEST_F(PlanCacheTest, WhitespaceAndCaseVariantsCollide) {
  auto cold = db_.Query("SELECT e_name FROM emp WHERE e_salary > 1200",
                        OptimizerPath::kMySql);
  ASSERT_TRUE(cold.ok());
  auto warm = db_.Query(
      "select   E_NAME\n  from EMP\n where e_Salary > 1200",
      OptimizerPath::kMySql);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->plan_cache_hit);
  EXPECT_EQ(RowsText(cold->rows), RowsText(warm->rows));
}

TEST_F(PlanCacheTest, DifferentLiteralsMiss) {
  ASSERT_TRUE(
      db_.Query("SELECT e_name FROM emp WHERE e_salary > 1200").ok());
  auto other = db_.Query("SELECT e_name FROM emp WHERE e_salary > 1300");
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(other->plan_cache_hit);
}

TEST_F(PlanCacheTest, DifferentPathsDoNotShareEntries) {
  const std::string sql =
      "SELECT d_name, COUNT(*) FROM emp, dept "
      "WHERE e_dept = d_id GROUP BY d_name";
  auto mysql = db_.Query(sql, OptimizerPath::kMySql);
  ASSERT_TRUE(mysql.ok());
  auto orca = db_.Query(sql, OptimizerPath::kOrca);
  ASSERT_TRUE(orca.ok());
  // The Orca-forced compile must not reuse the MySQL-route entry.
  EXPECT_FALSE(orca->plan_cache_hit);
  EXPECT_TRUE(orca->used_orca);
  auto orca2 = db_.Query(sql, OptimizerPath::kOrca);
  ASSERT_TRUE(orca2.ok());
  EXPECT_TRUE(orca2->plan_cache_hit);
  EXPECT_TRUE(orca2->used_orca);
  EXPECT_EQ(RowsText(mysql->rows), RowsText(orca2->rows));
}

TEST_F(PlanCacheTest, LruEvictionAtCapacity) {
  db_.plan_cache_config().capacity = 2;
  auto q = [&](int cutoff) {
    return db_.Query("SELECT e_id FROM emp WHERE e_id < " +
                         std::to_string(cutoff),
                     OptimizerPath::kMySql);
  };
  ASSERT_TRUE(q(10).ok());
  ASSERT_TRUE(q(20).ok());
  ASSERT_TRUE(q(30).ok());  // evicts the cutoff-10 entry
  EXPECT_EQ(db_.plan_cache().size(), 2u);
  EXPECT_GE(db_.plan_cache().stats().evictions, 1);
  auto r10 = q(10);
  ASSERT_TRUE(r10.ok());
  EXPECT_FALSE(r10->plan_cache_hit);
  // cutoff-30 stayed resident through the re-insert of cutoff-10.
  auto r30 = q(30);
  ASSERT_TRUE(r30.ok());
  EXPECT_TRUE(r30->plan_cache_hit);
}

TEST_F(PlanCacheTest, CreateIndexInvalidates) {
  const std::string sql = "SELECT e_name FROM emp WHERE e_dept = 3";
  ASSERT_TRUE(db_.Query(sql).ok());
  auto warm = db_.Query(sql);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->plan_cache_hit);

  ASSERT_TRUE(db_.ExecuteSql("CREATE INDEX e_dept_idx ON emp (e_dept)").ok());
  auto post_ddl = db_.Query(sql);
  ASSERT_TRUE(post_ddl.ok());
  EXPECT_FALSE(post_ddl->plan_cache_hit);  // schema version moved
  EXPECT_GE(db_.plan_cache().stats().invalidations, 1);
  EXPECT_EQ(RowsText(warm->rows), RowsText(post_ddl->rows));
  // The re-optimized plan is cached again.
  auto rewarm = db_.Query(sql);
  ASSERT_TRUE(rewarm.ok());
  EXPECT_TRUE(rewarm->plan_cache_hit);
}

TEST_F(PlanCacheTest, InsertThenAnalyzeInvalidates) {
  const std::string sql = "SELECT COUNT(*) FROM emp WHERE e_salary > 1100";
  auto cold = db_.Query(sql);
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(db_.Query(sql)->plan_cache_hit);

  ASSERT_TRUE(db_.ExecuteSql("INSERT INTO emp VALUES "
                             "(200, 1, 2000.0, 'late'), "
                             "(201, 2, 2100.0, 'later')")
                  .ok());
  ASSERT_TRUE(db_.Analyze("emp").ok());
  auto post = db_.Query(sql);
  ASSERT_TRUE(post.ok());
  EXPECT_FALSE(post->plan_cache_hit);  // stats version moved
  // Correct results against the new data.
  EXPECT_EQ(post->rows[0][0].AsInt(), cold->rows[0][0].AsInt() + 2);
}

TEST_F(PlanCacheTest, OrcaRouteHitReplaysAstRewrites) {
  // Correlated scalar-aggregate subquery: the Orca route decorrelates it
  // into a grouped derived table before optimizing, and a cache hit must
  // replay that rewrite before thawing the skeleton.
  const std::string sql =
      "SELECT e_name FROM emp e1 WHERE e_salary > "
      "(SELECT AVG(e_salary) FROM emp e2 WHERE e2.e_dept = e1.e_dept)";
  auto cold = db_.Query(sql, OptimizerPath::kOrca);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_TRUE(cold->used_orca);
  EXPECT_FALSE(cold->plan_cache_hit);
  auto warm = db_.Query(sql, OptimizerPath::kOrca);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_TRUE(warm->plan_cache_hit);
  EXPECT_TRUE(warm->used_orca);
  EXPECT_EQ(RowsText(cold->rows), RowsText(warm->rows));
}

TEST_F(PlanCacheTest, ExplainMarksHitsButNotColdCompiles) {
  const std::string sql = "SELECT e_id FROM emp WHERE e_dept = 1";
  auto cold = db_.Explain(sql);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(cold->find("plan cache hit"), std::string::npos);
  auto warm = db_.Explain(sql);
  ASSERT_TRUE(warm.ok());
  EXPECT_NE(warm->find("plan cache hit"), std::string::npos);
  // The first-line optimizer marker is unchanged on hits.
  EXPECT_EQ(warm->rfind("EXPLAIN\n", 0), 0u);
}

TEST_F(PlanCacheTest, DisablingTheCacheBypassesIt) {
  db_.plan_cache_config().enable = false;
  const std::string sql = "SELECT e_id FROM emp WHERE e_dept = 2";
  ASSERT_TRUE(db_.Query(sql).ok());
  auto again = db_.Query(sql);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->plan_cache_hit);
  EXPECT_EQ(db_.plan_cache().size(), 0u);
}

TEST_F(PlanCacheTest, ClearForgetsEntries) {
  const std::string sql = "SELECT e_id FROM emp WHERE e_dept = 4";
  ASSERT_TRUE(db_.Query(sql).ok());
  db_.plan_cache().Clear();
  auto again = db_.Query(sql);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->plan_cache_hit);
}

TEST_F(PlanCacheTest, RoutingMetadataIsRecorded) {
  const std::string sql =
      "SELECT d_name, COUNT(*) FROM emp, dept "
      "WHERE e_dept = d_id GROUP BY d_name";
  ASSERT_TRUE(db_.Query(sql, OptimizerPath::kOrca).ok());
  ASSERT_TRUE(db_.Query(sql, OptimizerPath::kMySql).ok());
  EXPECT_EQ(db_.plan_cache().size(), 2u);
  EXPECT_EQ(db_.plan_cache().stats().insertions, 2);
}

/// Cached compiles must agree with cold compiles on real TPC-H shapes, on
/// both optimizer routes (derived tables, semi-joins, CTE copies included).
class PlanCacheTpchTest : public ::testing::Test {
 protected:
  static Database* db() {
    static Database* instance = [] {
      auto* d = new Database();
      auto st = SetupTpch(d, 0.001);
      EXPECT_TRUE(st.ok()) << st.ToString();
      return d;
    }();
    return instance;
  }
};

TEST_F(PlanCacheTpchTest, CachedPlansMatchColdPlansOnBothPaths) {
  const auto& queries = TpchQueries();
  // A representative slice: scan+agg, big join, semi-join, correlated
  // subquery with decorrelation (Q17), and a CTE-free multi-join.
  for (int q : {0, 2, 3, 16, 9}) {
    const std::string& sql = queries[static_cast<size_t>(q)];
    for (OptimizerPath path : {OptimizerPath::kMySql, OptimizerPath::kOrca}) {
      db()->plan_cache().Clear();
      auto cold = db()->Query(sql, path);
      ASSERT_TRUE(cold.ok())
          << "Q" << q + 1 << ": " << cold.status().ToString();
      auto warm = db()->Query(sql, path);
      ASSERT_TRUE(warm.ok())
          << "Q" << q + 1 << ": " << warm.status().ToString();
      EXPECT_TRUE(warm->plan_cache_hit) << "Q" << q + 1;
      EXPECT_EQ(warm->used_orca, cold->used_orca) << "Q" << q + 1;
      EXPECT_EQ(RowsText(cold->rows), RowsText(warm->rows)) << "Q" << q + 1;
    }
  }
}

}  // namespace
}  // namespace taurus
