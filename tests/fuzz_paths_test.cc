#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "engine/database.h"

namespace taurus {
namespace {

/// Property test: for pseudo-random (seeded, deterministic) queries over a
/// small star schema, the MySQL path and the Orca detour must return the
/// same multiset of rows — the reproduction's central invariant, probed
/// far beyond the hand-written workloads.
Database* FuzzDb() {
  static Database* instance = [] {
      auto* d = new Database();
      auto ok = [](const Status& st) {
        if (!st.ok()) std::abort();
      };
      ok(d->ExecuteSql(
          "CREATE TABLE fact (f_id INT NOT NULL PRIMARY KEY, "
          "f_a INT NOT NULL, f_b INT NOT NULL, f_c INT, "
          "f_v DOUBLE NOT NULL, f_s VARCHAR(10) NOT NULL)"));
      ok(d->ExecuteSql("CREATE INDEX fact_a ON fact (f_a)"));
      ok(d->ExecuteSql("CREATE INDEX fact_b ON fact (f_b)"));
      ok(d->ExecuteSql(
          "CREATE TABLE dim_a (a_id INT NOT NULL PRIMARY KEY, "
          "a_g INT NOT NULL, a_s VARCHAR(10) NOT NULL)"));
      ok(d->ExecuteSql(
          "CREATE TABLE dim_b (b_id INT NOT NULL PRIMARY KEY, "
          "b_g INT NOT NULL, b_s VARCHAR(10) NOT NULL)"));
      Rng rng(424242);
      std::vector<Row> fact;
      for (int i = 0; i < 2000; ++i) {
        fact.push_back({Value::Int(i), Value::Int(rng.Uniform(0, 39)),
                        Value::Int(rng.Uniform(0, 199)),
                        rng.Uniform(0, 9) == 0 ? Value::Null()
                                               : Value::Int(rng.Uniform(0, 5)),
                        Value::Double(rng.NextDouble() * 100),
                        Value::Str(rng.NextString(1, 6))});
      }
      ok(d->BulkLoad("fact", std::move(fact)));
      std::vector<Row> da;
      for (int i = 0; i < 40; ++i) {
        da.push_back({Value::Int(i), Value::Int(i % 7),
                      Value::Str(rng.NextString(1, 6))});
      }
      ok(d->BulkLoad("dim_a", std::move(da)));
      std::vector<Row> dbt;
      for (int i = 0; i < 200; ++i) {
        dbt.push_back({Value::Int(i), Value::Int(i % 11),
                       Value::Str(rng.NextString(1, 6))});
      }
      ok(d->BulkLoad("dim_b", std::move(dbt)));
      ok(d->AnalyzeAll());
      return d;
    }();
  return instance;
}

class FuzzPathsTest : public ::testing::TestWithParam<int> {
 protected:
  static Database* db() { return FuzzDb(); }

  /// Deterministically generates one SQL query from the seed.
  static std::string GenerateQuery(uint64_t seed) {
    Rng rng(seed * 2654435761ULL + 17);
    std::string from = "fact";
    std::string where;
    auto add_cond = [&](const std::string& c) {
      where += where.empty() ? " WHERE " : " AND ";
      where += c;
    };
    bool join_a = rng.Uniform(0, 1) != 0;
    bool join_b = rng.Uniform(0, 1) != 0;
    if (join_a) {
      from += ", dim_a";
      add_cond("f_a = a_id");
    }
    if (join_b) {
      from += ", dim_b";
      add_cond("f_b = b_id");
    }
    // Random filters.
    int filters = static_cast<int>(rng.Uniform(0, 2));
    for (int i = 0; i < filters; ++i) {
      switch (rng.Uniform(0, 4)) {
        case 0:
          add_cond("f_v < " + std::to_string(rng.Uniform(5, 95)));
          break;
        case 1:
          add_cond("f_id BETWEEN " + std::to_string(rng.Uniform(0, 900)) +
                   " AND " + std::to_string(rng.Uniform(1000, 1999)));
          break;
        case 2:
          add_cond("f_c IS NOT NULL");
          break;
        case 3:
          if (join_a) {
            add_cond("a_g IN (1, 3, 5)");
          } else {
            add_cond("f_a < 30");
          }
          break;
        default:
          add_cond("f_s LIKE 'a%'");
          break;
      }
    }
    // Occasionally a semi/anti join.
    int sub = static_cast<int>(rng.Uniform(0, 5));
    if (sub == 0) {
      add_cond("EXISTS (SELECT 1 FROM dim_b db2 WHERE db2.b_id = f_b AND "
               "db2.b_g = " + std::to_string(rng.Uniform(0, 10)) + ")");
    } else if (sub == 1) {
      add_cond("NOT EXISTS (SELECT 1 FROM dim_a da2 WHERE da2.a_id = f_a "
               "AND da2.a_g = " + std::to_string(rng.Uniform(0, 6)) + ")");
    } else if (sub == 2) {
      add_cond("f_v > (SELECT AVG(f2.f_v) FROM fact f2 WHERE f2.f_a = f_a)");
    }
    // Shape: aggregate or plain projection.
    if (rng.Uniform(0, 1) != 0) {
      std::string group = join_a ? "a_g" : "f_a";
      return "SELECT " + group +
             ", COUNT(*), SUM(f_v), MIN(f_b), MAX(f_v) FROM " + from + where +
             " GROUP BY " + group +
             (rng.Uniform(0, 1) != 0 ? " HAVING COUNT(*) > 1" : "") +
             " ORDER BY 2 DESC, 1 LIMIT 50";
    }
    return "SELECT f_id, f_v FROM " + from + where +
           " ORDER BY f_id LIMIT " + std::to_string(rng.Uniform(5, 80));
  }

  static std::string Fingerprint(std::vector<Row> rows) {
    std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
      for (size_t i = 0; i < a.size(); ++i) {
        int c = Value::Compare(a[i], b[i]);
        if (c != 0) return c < 0;
      }
      return false;
    });
    std::string out;
    char buf[40];
    for (const Row& r : rows) {
      for (const Value& v : r) {
        if (v.kind() == Value::Kind::kDouble) {
          std::snprintf(buf, sizeof(buf), "%.4f|", v.AsDouble());
          out += buf;
        } else {
          out += v.ToString();
          out += '|';
        }
      }
      out += '\n';
    }
    return out;
  }
};

TEST_P(FuzzPathsTest, PathsAgree) {
  std::string sql = GenerateQuery(static_cast<uint64_t>(GetParam()));
  auto mysql = db()->Query(sql, OptimizerPath::kMySql);
  ASSERT_TRUE(mysql.ok()) << sql << "\n" << mysql.status().ToString();
  auto orca = db()->Query(sql, OptimizerPath::kOrca);
  ASSERT_TRUE(orca.ok()) << sql << "\n" << orca.status().ToString();
  EXPECT_EQ(Fingerprint(mysql->rows), Fingerprint(orca->rows)) << sql;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPathsTest, ::testing::Range(0, 120));

/// Adversarially deep inputs: the parser/binder depth guards must reject
/// them with SyntaxError instead of overflowing the stack, while moderate
/// nesting keeps working on both paths.
class DeepNestingTest : public ::testing::Test {
 protected:
  static Database* db() { return FuzzDb(); }

  static std::string NestedDerived(int depth) {
    std::string sql = "SELECT f_id, f_v FROM fact WHERE f_id < 5";
    for (int i = 0; i < depth; ++i) {
      sql = "SELECT f_id, f_v FROM (" + sql + ") d" + std::to_string(i);
    }
    return sql;
  }

  static std::string NestedScalarSubquery(int depth) {
    std::string sql = "SELECT MAX(f_id) FROM fact";
    for (int i = 0; i < depth; ++i) {
      sql = "SELECT (" + sql + ") FROM fact WHERE f_id = 1";
    }
    return sql;
  }

  static void ExpectSyntaxError(const std::string& sql) {
    auto res = db()->Query(sql);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.status().code(), StatusCode::kSyntaxError)
        << res.status().ToString();
  }
};

TEST_F(DeepNestingTest, DeepDerivedTablesRejectedModerateOnesWork) {
  auto mysql = db()->Query(NestedDerived(8),
                                          OptimizerPath::kMySql);
  ASSERT_TRUE(mysql.ok()) << mysql.status().ToString();
  auto auto_path = db()->Query(NestedDerived(8));
  ASSERT_TRUE(auto_path.ok()) << auto_path.status().ToString();
  EXPECT_EQ(mysql->rows.size(), auto_path->rows.size());

  ExpectSyntaxError(NestedDerived(100));
  ExpectSyntaxError(NestedDerived(1000));  // must not smash the stack
}

TEST_F(DeepNestingTest, DeepScalarSubqueriesRejected) {
  auto shallow = db()->Query(NestedScalarSubquery(4));
  ASSERT_TRUE(shallow.ok()) << shallow.status().ToString();
  ASSERT_EQ(shallow->rows.size(), 1u);

  ExpectSyntaxError(NestedScalarSubquery(100));
}

TEST_F(DeepNestingTest, DeepParenthesesRejected) {
  auto paren_expr = [](int depth) {
    return "SELECT f_id FROM fact WHERE f_id = " + std::string(depth, '(') +
           "1" + std::string(depth, ')');
  };
  auto shallow = db()->Query(paren_expr(50));
  ASSERT_TRUE(shallow.ok()) << shallow.status().ToString();

  ExpectSyntaxError(paren_expr(1000));
}

TEST_F(DeepNestingTest, DeepNotChainsRejected) {
  auto not_chain = [](int depth) {
    std::string sql = "SELECT f_id FROM fact WHERE ";
    for (int i = 0; i < depth; ++i) sql += "NOT ";
    return sql + "f_id > 1990";
  };
  auto shallow = db()->Query(not_chain(8));
  ASSERT_TRUE(shallow.ok()) << shallow.status().ToString();

  ExpectSyntaxError(not_chain(500));
}

}  // namespace
}  // namespace taurus
