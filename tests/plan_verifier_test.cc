#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bridge/parse_tree_converter.h"
#include "bridge/plan_converter.h"
#include "frontend/binder.h"
#include "frontend/prepare.h"
#include "mdp/oid_layout.h"
#include "mdp/stats_adapter.h"
#include "myopt/mysql_optimizer.h"
#include "orca/optimizer.h"
#include "parser/parser.h"
#include "verify/block_verifier.h"
#include "verify/logical_verifier.h"
#include "verify/physical_verifier.h"
#include "verify/skeleton_verifier.h"
#include "workloads/tpcds.h"
#include "workloads/tpch.h"

namespace taurus {
namespace {

std::string Fingerprint(std::vector<Row> rows) {
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    for (size_t i = 0; i < a.size(); ++i) {
      int c = Value::Compare(a[i], b[i]);
      if (c != 0) return c < 0;
    }
    return false;
  });
  std::string out;
  char buf[40];
  for (const Row& r : rows) {
    for (const Value& v : r) {
      if (v.kind() == Value::Kind::kDouble) {
        std::snprintf(buf, sizeof(buf), "%.4f|", v.AsDouble());
        out += buf;
      } else {
        out += v.ToString();
        out += '|';
      }
    }
    out += '\n';
  }
  return out;
}

/// Shared TPC-H engine with the plan verifier switched on (the default-off
/// Release knob — Debug builds have it on already).
class PlanVerifierTest : public ::testing::Test {
 protected:
  static Database* db() {
    static Database* instance = [] {
      auto* d = new Database();
      auto st = SetupTpch(d, 0.001);
      EXPECT_TRUE(st.ok()) << st.ToString();
      d->router_config().complex_query_threshold = 1;
      d->verify_config().verify_plans = true;
      return d;
    }();
    return instance;
  }

  /// parse -> bind -> prepare against the TPC-H catalog.
  static Result<BoundStatement> Prep(const std::string& sql) {
    TAURUS_ASSIGN_OR_RETURN(auto block, ParseSelect(sql));
    TAURUS_ASSIGN_OR_RETURN(
        BoundStatement stmt, BindStatement(db()->catalog(), std::move(block)));
    TAURUS_RETURN_IF_ERROR(PrepareStatement(&stmt));
    return stmt;
  }

  static constexpr const char* kJoinSql =
      "SELECT COUNT(*) FROM lineitem, orders "
      "WHERE l_orderkey = o_orderkey AND l_quantity < 5 "
      "AND l_discount < 0.05";
};

OrcaLogicalOp* FindLogical(OrcaLogicalOp* op, OrcaLogicalOp::Kind kind) {
  if (op->kind == kind) return op;
  for (auto& c : op->children) {
    if (OrcaLogicalOp* f = FindLogical(c.get(), kind)) return f;
  }
  return nullptr;
}

/// First Get below `op` whose leaf differs from `not_this` (the bare Get of
/// a two-table join where the other side sits under a Select).
OrcaLogicalOp* FindOtherGet(OrcaLogicalOp* op, const TableRef* not_this) {
  if (op->kind == OrcaLogicalOp::Kind::kGet && op->leaf != not_this) return op;
  for (auto& c : op->children) {
    if (OrcaLogicalOp* f = FindOtherGet(c.get(), not_this)) return f;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Logical-tree mutations (L001-L005)
// ---------------------------------------------------------------------------

class LogicalVerifierTest : public PlanVerifierTest {
 protected:
  void SetUp() override {
    auto stmt = Prep(kJoinSql);
    ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
    stmt_ = std::make_unique<BoundStatement>(std::move(*stmt));
    auto logical = ConvertBlockToOrcaLogical(stmt_->block.get(),
                                             stmt_->num_refs, &db()->mdp(),
                                             OrcaConfig());
    ASSERT_TRUE(logical.ok()) << logical.status().ToString();
    logical_ = std::move(*logical);
  }

  VerifyReport Verify() {
    VerifyReport report;
    VerifyLogicalTree(*logical_, *stmt_->block, *stmt_, &report);
    return report;
  }

  std::unique_ptr<BoundStatement> stmt_;
  std::unique_ptr<OrcaLogicalOp> logical_;
};

TEST_F(LogicalVerifierTest, CleanTreePassesAllRules) {
  VerifyReport report = Verify();
  EXPECT_EQ(report.rules_checked, kNumLogicalRules);
  EXPECT_EQ(report.violations(), 0) << report.ToString();
}

TEST_F(LogicalVerifierTest, EmptySelectFiresL001) {
  OrcaLogicalOp* select = FindLogical(logical_.get(),
                                      OrcaLogicalOp::Kind::kSelect);
  ASSERT_NE(select, nullptr);
  select->conds.clear();
  select->cond_oids.clear();
  VerifyReport report = Verify();
  EXPECT_TRUE(report.HasRule("L001")) << report.ToString();
}

TEST_F(LogicalVerifierTest, DanglingColumnIndexFiresL002) {
  OrcaLogicalOp* join = FindLogical(logical_.get(), OrcaLogicalOp::Kind::kJoin);
  ASSERT_NE(join, nullptr);
  ASSERT_FALSE(join->conds.empty());
  ASSERT_EQ(join->conds[0]->children.size(), 2u);  // l_orderkey = o_orderkey
  join->conds[0]->children[0]->column_idx = 999;
  VerifyReport report = Verify();
  EXPECT_TRUE(report.HasRule("L002")) << report.ToString();
  EXPECT_FALSE(report.HasRule("L005")) << report.ToString();
}

TEST_F(LogicalVerifierTest, DuplicateGetFiresL003) {
  OrcaLogicalOp* select = FindLogical(logical_.get(),
                                      OrcaLogicalOp::Kind::kSelect);
  ASSERT_NE(select, nullptr);
  OrcaLogicalOp* other_get = FindOtherGet(logical_.get(), select->leaf);
  ASSERT_NE(other_get, nullptr);
  other_get->leaf = select->leaf;  // lineitem now Get twice, orders never
  VerifyReport report = Verify();
  EXPECT_TRUE(report.HasRule("L003")) << report.ToString();
}

TEST_F(LogicalVerifierTest, CorruptCondOidFiresL004) {
  // Find the first embellished conjunct and nudge its OID to a neighboring
  // cube point, which must disagree in operator or operand category.
  OrcaLogicalOp* target = nullptr;
  size_t idx = 0;
  std::vector<OrcaLogicalOp*> stack{logical_.get()};
  while (!stack.empty() && target == nullptr) {
    OrcaLogicalOp* op = stack.back();
    stack.pop_back();
    for (size_t i = 0; i < op->cond_oids.size(); ++i) {
      if (op->cond_oids[i] != kInvalidOid) {
        target = op;
        idx = i;
        break;
      }
    }
    for (auto& c : op->children) stack.push_back(c.get());
  }
  ASSERT_NE(target, nullptr) << "no conjunct carries an expression OID";
  target->cond_oids[idx] += 1;
  VerifyReport report = Verify();
  EXPECT_TRUE(report.HasRule("L004")) << report.ToString();
}

TEST_F(LogicalVerifierTest, UnsegregatedSingleLeafPredicateFiresL005) {
  OrcaLogicalOp* select = FindLogical(logical_.get(),
                                      OrcaLogicalOp::Kind::kSelect);
  OrcaLogicalOp* join = FindLogical(logical_.get(), OrcaLogicalOp::Kind::kJoin);
  ASSERT_NE(select, nullptr);
  ASSERT_NE(join, nullptr);
  ASSERT_FALSE(select->conds.empty());
  // A single-leaf conjunct left on the Join models a converter that skipped
  // predicate segregation.
  join->conds.push_back(select->conds[0]);
  join->cond_oids.push_back(kInvalidOid);
  VerifyReport report = Verify();
  EXPECT_TRUE(report.HasRule("L005")) << report.ToString();
}

// ---------------------------------------------------------------------------
// Physical-plan mutations (P001-P004)
// ---------------------------------------------------------------------------

class PhysicalVerifierTest : public PlanVerifierTest {
 protected:
  void SetUp() override {
    auto stmt = Prep(kJoinSql);
    ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
    stmt_ = std::make_unique<BoundStatement>(std::move(*stmt));
    auto logical = ConvertBlockToOrcaLogical(stmt_->block.get(),
                                             stmt_->num_refs, &db()->mdp(),
                                             config_);
    ASSERT_TRUE(logical.ok()) << logical.status().ToString();
    stats_ = std::make_unique<MdpStatsProvider>(db()->catalog(),
                                                stmt_->leaves, &db()->mdp());
    OrcaOptimizer optimizer(config_, stats_.get(), stmt_->num_refs);
    auto physical = optimizer.Optimize(logical->get());
    ASSERT_TRUE(physical.ok()) << physical.status().ToString();
    physical_ = std::move(*physical);
  }

  VerifyReport Verify() {
    VerifyReport report;
    VerifyPhysicalPlan(*physical_, *stmt_->block, &report);
    return report;
  }

  OrcaConfig config_;
  std::unique_ptr<BoundStatement> stmt_;
  std::unique_ptr<MdpStatsProvider> stats_;
  std::unique_ptr<OrcaPhysicalOp> physical_;
};

TEST_F(PhysicalVerifierTest, CleanPlanPassesAllRules) {
  VerifyReport report = Verify();
  EXPECT_EQ(report.rules_checked, kNumPhysicalRules);
  EXPECT_EQ(report.violations(), 0) << report.ToString();
}

TEST_F(PhysicalVerifierTest, MisplacedIndexLookupFiresP001) {
  ASSERT_EQ(physical_->children.size(), 2u);  // two-table join
  // An IndexLookup anywhere but the inner side of an NL join has an
  // unsatisfiable required property (no outer rows bind its keys).
  OrcaPhysicalOp* child = physical_->children[0].get();
  while (!child->children.empty()) child = child->children[0].get();
  child->kind = OrcaPhysicalOp::Kind::kIndexLookup;
  child->index_id = 0;
  VerifyReport report = Verify();
  EXPECT_TRUE(report.HasRule("P001")) << report.ToString();
}

TEST_F(PhysicalVerifierTest, NegativeRowEstimateFiresP002) {
  physical_->rows = -1.0;
  VerifyReport report = Verify();
  EXPECT_TRUE(report.HasRule("P002")) << report.ToString();
}

TEST_F(PhysicalVerifierTest, CostBelowChildFiresP003) {
  ASSERT_FALSE(physical_->children.empty());
  physical_->children[0]->cost = physical_->cost + 100.0;
  VerifyReport report = Verify();
  EXPECT_TRUE(report.HasRule("P003")) << report.ToString();
}

TEST_F(PhysicalVerifierTest, ForeignBlockLeafFiresP004) {
  // Verifying against a different statement's block makes every leaf's
  // TABLE_LIST owner link foreign.
  auto other = Prep("SELECT COUNT(*) FROM nation");
  ASSERT_TRUE(other.ok());
  VerifyReport report;
  VerifyPhysicalPlan(*physical_, *other->block, &report);
  EXPECT_TRUE(report.HasRule("P004")) << report.ToString();
}

// ---------------------------------------------------------------------------
// Skeleton mutations (S001-S005) and the build/probe flip (S004)
// ---------------------------------------------------------------------------

class SkeletonVerifierTest : public PlanVerifierTest {
 protected:
  void SetUp() override {
    auto stmt = Prep(kJoinSql);
    ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
    stmt_ = std::make_unique<BoundStatement>(std::move(*stmt));
    auto skel = MySqlOptimize(db()->catalog(), stmt_.get());
    ASSERT_TRUE(skel.ok()) << skel.status().ToString();
    skel_ = std::move(*skel);
    ASSERT_NE(skel_->root, nullptr);
  }

  VerifyReport Verify(bool check_cte_pairing = false) {
    VerifyReport report;
    VerifySkeletonPlan(*skel_, db()->catalog(), check_cte_pairing, &report);
    return report;
  }

  SkeletonNode* FirstLeaf() {
    SkeletonNode* n = skel_->root.get();
    while (n->is_join) n = n->left.get();
    return n;
  }

  std::unique_ptr<BoundStatement> stmt_;
  std::unique_ptr<BlockSkeleton> skel_;
};

TEST_F(SkeletonVerifierTest, CleanSkeletonPassesAllRules) {
  VerifyReport report = Verify();
  EXPECT_EQ(report.rules_checked, 3);  // S005 gated off on the MySQL path
  EXPECT_EQ(report.violations(), 0) << report.ToString();
}

TEST_F(SkeletonVerifierTest, DuplicateLeafFiresS001) {
  ASSERT_TRUE(skel_->root->is_join);
  std::vector<const SkeletonNode*> positions;
  skel_->root->BestPositionArray(&positions);
  ASSERT_EQ(positions.size(), 2u);
  // Point both positions at the same table: one leaf twice, one missing.
  const_cast<SkeletonNode*>(positions[1])->leaf =
      const_cast<TableRef*>(positions[0]->leaf);
  VerifyReport report = Verify();
  EXPECT_TRUE(report.HasRule("S001")) << report.ToString();
}

TEST_F(SkeletonVerifierTest, OutOfRangeIndexFiresS002) {
  SkeletonNode* leaf = FirstLeaf();
  leaf->access = AccessMethod::kIndexRange;
  leaf->index_id = 99;
  VerifyReport report = Verify();
  EXPECT_TRUE(report.HasRule("S002")) << report.ToString();
}

TEST_F(SkeletonVerifierTest, NegativeEstimateFiresS003) {
  skel_->out_rows = -3.0;
  VerifyReport report = Verify();
  EXPECT_TRUE(report.HasRule("S003")) << report.ToString();
}

TEST_F(SkeletonVerifierTest, DivergedCteConsumerFiresS005) {
  // Optimize a CTE with two consumers through the Orca detour, then break
  // one consumer's plan so the single-producer mapping no longer holds.
  auto stmt = Prep(
      "WITH t AS (SELECT l_orderkey AS k FROM lineitem WHERE l_quantity < 5) "
      "SELECT COUNT(*) FROM t a, t b WHERE a.k = b.k");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  OrcaConfig config;
  OrcaPathOptimizer orca(db()->catalog(), &*stmt, &db()->mdp(), config);
  auto skel = orca.Optimize();
  ASSERT_TRUE(skel.ok()) << skel.status().ToString();

  VerifyReport clean;
  VerifySkeletonPlan(**skel, db()->catalog(), /*check_cte_pairing=*/true,
                     &clean);
  EXPECT_EQ(clean.violations(), 0) << clean.ToString();
  EXPECT_EQ(clean.rules_checked, 4);

  // Flip the access method at the root of the second consumer's skeleton.
  ASSERT_GE((*skel)->derived.size(), 2u);
  BlockSkeleton* consumer = std::next((*skel)->derived.begin())->second.get();
  ASSERT_NE(consumer, nullptr);
  SkeletonNode* n = consumer->root.get();
  ASSERT_NE(n, nullptr);
  while (n->is_join) n = n->left.get();
  n->access = n->access == AccessMethod::kTableScan
                  ? AccessMethod::kIndexRange
                  : AccessMethod::kTableScan;
  n->index_id = 0;
  VerifyReport report;
  VerifySkeletonPlan(**skel, db()->catalog(), /*check_cte_pairing=*/true,
                     &report);
  EXPECT_TRUE(report.HasRule("S005")) << report.ToString();
}

TEST_F(SkeletonVerifierTest, MissingHashBuildFlipFiresS004) {
  // Hand-built inner hash join (Orca convention: build side = children[1]),
  // converted with and without the MySQL build-side flip.
  std::vector<TableRef*> leaves = stmt_->block->Leaves();
  ASSERT_EQ(leaves.size(), 2u);
  auto make_plan = [&] {
    auto probe = std::make_unique<OrcaPhysicalOp>();
    probe->kind = OrcaPhysicalOp::Kind::kTableScan;
    probe->leaf = leaves[0];
    auto build = std::make_unique<OrcaPhysicalOp>();
    build->kind = OrcaPhysicalOp::Kind::kTableScan;
    build->leaf = leaves[1];
    auto join = std::make_unique<OrcaPhysicalOp>();
    join->kind = OrcaPhysicalOp::Kind::kHashJoin;
    join->join_type = JoinType::kInner;
    join->children.push_back(std::move(probe));
    join->children.push_back(std::move(build));
    return join;
  };

  OrcaConfig flip_on;
  flip_on.flip_inner_hash_build = true;
  auto plan = make_plan();
  auto flipped = ConvertOrcaPlanToSkeleton(*plan, *stmt_->block, flip_on);
  ASSERT_TRUE(flipped.ok());
  VerifyReport clean;
  VerifyBuildProbeFlip(**flipped, *plan, &clean);
  EXPECT_EQ(clean.violations(), 0) << clean.ToString();
  EXPECT_EQ(clean.rules_checked, 1);

  OrcaConfig flip_off;
  flip_off.flip_inner_hash_build = false;  // the bug the paper found
  auto unflipped = ConvertOrcaPlanToSkeleton(*plan, *stmt_->block, flip_off);
  ASSERT_TRUE(unflipped.ok());
  VerifyReport report;
  VerifyBuildProbeFlip(**unflipped, *plan, &report);
  EXPECT_TRUE(report.HasRule("S004")) << report.ToString();
}

// ---------------------------------------------------------------------------
// Block-plan mutations (B001-B004)
// ---------------------------------------------------------------------------

class BlockVerifierTest : public PlanVerifierTest {
 protected:
  void SetUp() override {
    auto compiled = db()->Compile(
        "SELECT l_orderkey FROM lineitem, orders "
        "WHERE l_orderkey = o_orderkey AND l_quantity < 5",
        OptimizerPath::kMySql);
    ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
    compiled_ = std::move(*compiled);
    ASSERT_NE(compiled_->root, nullptr);
    ASSERT_NE(compiled_->root->join_root, nullptr);
  }

  VerifyReport Verify() {
    VerifyReport report;
    VerifyBlockPlan(*compiled_, &report);
    return report;
  }

  std::unique_ptr<CompiledQuery> compiled_;
};

TEST_F(BlockVerifierTest, CleanPlanPassesAllRules) {
  VerifyReport report = Verify();
  EXPECT_EQ(report.rules_checked, kNumBlockRules);
  EXPECT_EQ(report.violations(), 0) << report.ToString();
}

TEST_F(BlockVerifierTest, JoinMissingChildFiresB001) {
  PhysOp* op = compiled_->root->join_root.get();
  ASSERT_TRUE(op->kind == PhysOp::Kind::kNLJoin ||
              op->kind == PhysOp::Kind::kHashJoin);
  op->right.reset();
  VerifyReport report = Verify();
  EXPECT_TRUE(report.HasRule("B001")) << report.ToString();
}

TEST_F(BlockVerifierTest, FabricatedSerialReasonFiresB002) {
  compiled_->root->serial_reason = "vibes";
  compiled_->root->parallel_eligible = false;
  VerifyReport report = Verify();
  EXPECT_TRUE(report.HasRule("B002")) << report.ToString();
}

TEST_F(BlockVerifierTest, EligibleWithSerialReasonFiresB002) {
  compiled_->root->parallel_eligible = true;
  compiled_->root->serial_reason = "no table-scan driver";
  VerifyReport report = Verify();
  EXPECT_TRUE(report.HasRule("B002")) << report.ToString();
}

TEST_F(BlockVerifierTest, DanglingColumnRefFiresB003) {
  // The projection Expr lives in the bound AST the plan references.
  ASSERT_FALSE(compiled_->ast->select_items.empty());
  compiled_->ast->select_items[0].expr->ref_id = 999;
  VerifyReport report = Verify();
  EXPECT_TRUE(report.HasRule("B003")) << report.ToString();
}

TEST_F(BlockVerifierTest, ExecBudgetArmingFiresB004) {
  // Orca plan under a governing budget but no armed context.
  ExecContext unarmed;
  VerifyReport orca_report;
  VerifyExecBudgetArming(/*used_orca=*/true, /*budget_governs_exec=*/true,
                         unarmed, &orca_report);
  EXPECT_TRUE(orca_report.HasRule("B004")) << orca_report.ToString();

  // MySQL-path plan must never run budgeted.
  ExecContext armed;
  armed.max_rows_scanned = 10;
  VerifyReport mysql_report;
  VerifyExecBudgetArming(/*used_orca=*/false, /*budget_governs_exec=*/true,
                         armed, &mysql_report);
  EXPECT_TRUE(mysql_report.HasRule("B004")) << mysql_report.ToString();

  // The two legal pairings are clean.
  VerifyReport ok_orca;
  VerifyExecBudgetArming(/*used_orca=*/true, /*budget_governs_exec=*/true,
                         armed, &ok_orca);
  EXPECT_EQ(ok_orca.violations(), 0) << ok_orca.ToString();
  VerifyReport ok_mysql;
  VerifyExecBudgetArming(/*used_orca=*/false, /*budget_governs_exec=*/true,
                         unarmed, &ok_mysql);
  EXPECT_EQ(ok_mysql.violations(), 0) << ok_mysql.ToString();
}

// ---------------------------------------------------------------------------
// End-to-end: enforcement, fallback and surfacing
// ---------------------------------------------------------------------------

TEST_F(PlanVerifierTest, ExplainSurfacesVerifierSummary) {
  auto text = db()->Explain("SELECT COUNT(*) FROM lineitem WHERE l_quantity < 5",
                            OptimizerPath::kMySql);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("plan_verifier: "), std::string::npos) << *text;
  EXPECT_NE(text->find(" violations"), std::string::npos) << *text;
}

TEST_F(PlanVerifierTest, QueryResultCarriesVerifierCounts) {
  auto res = db()->Query("SELECT COUNT(*) FROM lineitem WHERE l_quantity < 5",
                         OptimizerPath::kMySql);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_GT(res->verifier_rules, 0);
  EXPECT_EQ(res->verifier_violations, 0);
}

/// The acceptance scenario: disabling the inner-hash-join build flip (the
/// bug the paper found) corrupts every Orca detour that plans an inner hash
/// join; enforcement must catch it at the plan-converter boundary (S004)
/// and fall back to the MySQL path with correct results.
TEST_F(PlanVerifierTest, CorruptedDetourFallsBackCleanlyViaS004) {
  Database* d = db();
  d->orca_config().flip_inner_hash_build = false;
  d->verify_config().enforce = true;
  int s004_fallbacks = 0;
  const auto& queries = TpchQueries();
  for (size_t i = 0; i < queries.size(); ++i) {
    auto baseline = d->Query(queries[i], OptimizerPath::kMySql);
    ASSERT_TRUE(baseline.ok())
        << "Q" << i + 1 << ": " << baseline.status().ToString();
    auto detour = d->Query(queries[i], OptimizerPath::kAuto);
    ASSERT_TRUE(detour.ok())
        << "Q" << i + 1 << ": " << detour.status().ToString();
    EXPECT_EQ(Fingerprint(baseline->rows), Fingerprint(detour->rows))
        << "rows diverge on Q" << i + 1
        << " (fallback_reason: " << detour->fallback_reason << ")";
    if (detour->fell_back) {
      EXPECT_NE(detour->fallback_reason.find("S004"), std::string::npos)
          << "Q" << i + 1 << " fell back for an unexpected reason: "
          << detour->fallback_reason;
      EXPECT_NE(detour->fallback_reason.find("[verify.skeleton/S004]"),
                std::string::npos)
          << detour->fallback_reason;
      ++s004_fallbacks;
    }
  }
  EXPECT_GE(s004_fallbacks, 1)
      << "no TPC-H detour planned an inner hash join — the corrupted flip "
         "was never exercised";
  d->orca_config().flip_inner_hash_build = true;
  d->ClearQuarantine();
  d->plan_cache().Clear();
}

/// With enforcement off the same corruption is only counted and surfaced.
TEST_F(PlanVerifierTest, EnforceOffCountsViolationsWithoutFallback) {
  Database* d = db();
  d->orca_config().flip_inner_hash_build = false;
  d->verify_config().enforce = false;
  int flagged = 0;
  const auto& queries = TpchQueries();
  for (size_t i = 0; i < queries.size(); ++i) {
    auto detour = d->Query(queries[i], OptimizerPath::kOrca);
    ASSERT_TRUE(detour.ok())
        << "Q" << i + 1 << ": " << detour.status().ToString();
    if (detour->verifier_violations > 0) {
      EXPECT_FALSE(detour->fell_back)
          << "Q" << i + 1 << " fell back with enforcement off: "
          << detour->fallback_reason;
      ++flagged;
    }
  }
  EXPECT_GE(flagged, 1);
  d->orca_config().flip_inner_hash_build = true;
  d->verify_config().enforce = true;
  d->ClearQuarantine();
  d->plan_cache().Clear();
}

// ---------------------------------------------------------------------------
// Zero-violation sweeps over both workloads and both paths
// ---------------------------------------------------------------------------

TEST_F(PlanVerifierTest, TpchSweepIsViolationFree) {
  const auto& queries = TpchQueries();
  for (size_t i = 0; i < queries.size(); ++i) {
    for (OptimizerPath path : {OptimizerPath::kMySql, OptimizerPath::kOrca}) {
      auto res = db()->Query(queries[i], path);
      ASSERT_TRUE(res.ok()) << "Q" << i + 1 << ": " << res.status().ToString();
      EXPECT_GT(res->verifier_rules, 0) << "Q" << i + 1;
      EXPECT_EQ(res->verifier_violations, 0)
          << "Q" << i + 1 << " on path " << static_cast<int>(path);
    }
  }
}

TEST(PlanVerifierTpcdsTest, TpcdsSweepIsViolationFree) {
  static Database* db = [] {
    auto* d = new Database();
    auto st = SetupTpcds(d, 0.0001);
    EXPECT_TRUE(st.ok()) << st.ToString();
    d->router_config().complex_query_threshold = 2;
    d->verify_config().verify_plans = true;
    return d;
  }();
  const auto& queries = TpcdsQueries();
  for (size_t i = 0; i < queries.size(); ++i) {
    for (OptimizerPath path : {OptimizerPath::kMySql, OptimizerPath::kOrca}) {
      auto res = db->Query(queries[i], path);
      ASSERT_TRUE(res.ok()) << "Q" << i + 1 << ": " << res.status().ToString();
      EXPECT_GT(res->verifier_rules, 0) << "Q" << i + 1;
      EXPECT_EQ(res->verifier_violations, 0)
          << "Q" << i + 1 << " on path " << static_cast<int>(path);
    }
  }
}

}  // namespace
}  // namespace taurus
