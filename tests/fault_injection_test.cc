#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/fault_injector.h"
#include "engine/database.h"
#include "workloads/tpch.h"

namespace taurus {
namespace {

void SortRows(std::vector<Row>* rows) {
  std::sort(rows->begin(), rows->end(), [](const Row& a, const Row& b) {
    for (size_t i = 0; i < a.size(); ++i) {
      int c = Value::Compare(a[i], b[i]);
      if (c != 0) return c < 0;
    }
    return false;
  });
}

std::string RowsText(std::vector<Row> rows) {
  SortRows(&rows);
  std::string out;
  for (const Row& r : rows) out += RowToString(r) + "\n";
  return out;
}

/// TPC-H at a tiny scale with the routing threshold lowered so every join
/// query takes the Orca detour on the auto route. Each test starts from a
/// clean engine: no armed faults, default budgets, empty quarantine and
/// plan cache, zeroed health counters.
class FaultInjectionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    ASSERT_TRUE(SetupTpch(db_, 0.001).ok());
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  void SetUp() override { ResetEngine(); }
  void TearDown() override { FaultInjector::Instance().DisarmAll(); }

  static void ResetEngine() {
    FaultInjector::Instance().DisarmAll();
    db_->resource_budget() = ResourceBudgetConfig();
    db_->quarantine_config() = QuarantineConfig();
    db_->ClearQuarantine();
    db_->ResetOptimizerHealth();
    db_->plan_cache_config() = PlanCacheConfig();
    db_->plan_cache().Clear();
    db_->router_config() = RouterConfig();
    db_->router_config().complex_query_threshold = 1;
    db_->trace_config() = TraceConfig();
  }

  static std::string Q(int n) { return TpchQueries()[static_cast<size_t>(n - 1)]; }

  static Database* db_;
};

Database* FaultInjectionTest::db_ = nullptr;

// ---------------------------------------------------------------------------
// (a) Every named fault point, tripped on the auto route, must produce a
// successful query whose rows match the MySQL-path baseline.
// ---------------------------------------------------------------------------

TEST_F(FaultInjectionTest, EveryFaultPointFallsBackCleanlyOnAutoRoute) {
  struct PointCase {
    const char* point;
    int query;             // TPC-H query number
    bool expect_fallback;  // freeze failure only makes the plan uncacheable
  };
  const PointCase kCases[] = {
      {"bridge.decorrelate", 17, true},
      {"bridge.parse_tree_convert", 3, true},
      {"mdp.relation_lookup", 3, true},
      {"orca.memo_explore", 3, true},
      {"bridge.plan_convert", 3, true},
      {"plan_cache.freeze", 3, false},
      {"myopt.refine", 3, true},
  };
  FaultInjector& injector = FaultInjector::Instance();
  for (const PointCase& c : kCases) {
    SCOPED_TRACE(c.point);
    ResetEngine();
    const std::string sql = Q(c.query);

    auto baseline = db_->Query(sql, OptimizerPath::kMySql);
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

    // count=1: the single firing lands on the detour; the fallback's own
    // traversal of the same point (e.g. refine, freeze) must succeed.
    injector.ArmCount(c.point, 1);
    auto res = db_->Query(sql, OptimizerPath::kAuto);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    EXPECT_EQ(injector.trips(c.point), 1) << "fault point never reached";
    EXPECT_EQ(RowsText(res->rows), RowsText(baseline->rows));
    EXPECT_EQ(res->fell_back, c.expect_fallback);
    EXPECT_EQ(db_->last_compile_fell_back(), c.expect_fallback);
    if (c.expect_fallback) {
      EXPECT_FALSE(res->used_orca);
      EXPECT_NE(res->fallback_reason.find("injected fault"), std::string::npos)
          << res->fallback_reason;
      EXPECT_EQ(db_->optimizer_health().detours_failed, 1);
      EXPECT_EQ(db_->optimizer_health().fallbacks, 1);
    } else {
      // Freeze failed after a successful detour: the plan simply is not
      // cached, the query still runs on the Orca plan.
      EXPECT_TRUE(res->used_orca);
    }
    injector.Disarm(c.point);
  }
}

TEST_F(FaultInjectionTest, ThawFaultFallsBackToFreshCompile) {
  const std::string sql = Q(3);
  auto cold = db_->Query(sql, OptimizerPath::kAuto);
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(cold->used_orca);
  auto warm = db_->Query(sql, OptimizerPath::kAuto);
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(warm->plan_cache_hit);

  FaultInjector::Instance().ArmCount("plan_cache.thaw", 1);
  auto res = db_->Query(sql, OptimizerPath::kAuto);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ(FaultInjector::Instance().trips("plan_cache.thaw"), 1);
  EXPECT_FALSE(res->plan_cache_hit);  // recompiled with the cache bypassed
  EXPECT_TRUE(res->used_orca);
  EXPECT_EQ(RowsText(res->rows), RowsText(cold->rows));
}

TEST_F(FaultInjectionTest, ExplainMarksFallback) {
  db_->plan_cache_config().enable = false;
  FaultInjector::Instance().ArmCount("bridge.parse_tree_convert", 1);
  auto text = db_->Explain(Q(3), OptimizerPath::kAuto);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("orca detour fell back"), std::string::npos) << *text;
}

// ---------------------------------------------------------------------------
// (b) Forced-Orca surfaces the injected error instead of falling back.
// ---------------------------------------------------------------------------

TEST_F(FaultInjectionTest, ForcedOrcaSurfacesInjectedErrors) {
  const char* kDetourPoints[] = {
      "bridge.decorrelate",  "bridge.parse_tree_convert",
      "mdp.relation_lookup", "orca.memo_explore",
      "bridge.plan_convert", "myopt.refine",
  };
  for (const char* point : kDetourPoints) {
    SCOPED_TRACE(point);
    ResetEngine();
    FaultInjector::Instance().ArmCount(point, 1);
    auto res = db_->Query(Q(3), OptimizerPath::kOrca);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.status().code(), StatusCode::kInternal);
    EXPECT_NE(res.status().message().find("injected fault"),
              std::string::npos);
    FaultInjector::Instance().Disarm(point);
  }
}

TEST_F(FaultInjectionTest, ProbabilityModeIsSeededAndDeterministic) {
  FaultInjector& injector = FaultInjector::Instance();
  auto run_sequence = [&]() {
    injector.ArmProbability("bridge.parse_tree_convert", 0.5, 42);
    std::string outcomes;
    for (int i = 0; i < 16; ++i) {
      outcomes +=
          CheckFaultPoint("bridge.parse_tree_convert").ok() ? '.' : 'X';
    }
    injector.Disarm("bridge.parse_tree_convert");
    return outcomes;
  };
  std::string first = run_sequence();
  EXPECT_NE(first.find('X'), std::string::npos);
  EXPECT_NE(first.find('.'), std::string::npos);
  EXPECT_EQ(first, run_sequence());  // same seed, same decision stream
}

// ---------------------------------------------------------------------------
// (c) Quarantine: N detour failures park the statement on the MySQL path
// until a stats/schema version bump (ANALYZE / DDL).
// ---------------------------------------------------------------------------

TEST_F(FaultInjectionTest, QuarantineEngagesAfterNFailuresAndClearsOnAnalyze) {
  db_->plan_cache_config().enable = false;  // observe every compile
  const int threshold = db_->quarantine_config().failure_threshold;
  ASSERT_EQ(threshold, 3);
  const std::string sql = Q(3);

  auto baseline = db_->Query(sql, OptimizerPath::kMySql);
  ASSERT_TRUE(baseline.ok());

  FaultInjector::Instance().ArmCount("bridge.parse_tree_convert", 1000000);
  for (int i = 0; i < threshold; ++i) {
    auto res = db_->Query(sql, OptimizerPath::kAuto);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    EXPECT_TRUE(res->fell_back);
    EXPECT_EQ(RowsText(res->rows), RowsText(baseline->rows));
  }
  EXPECT_EQ(db_->optimizer_health().detours_attempted, threshold);

  // Threshold reached: the detour is skipped without being attempted.
  auto skipped = db_->Query(sql, OptimizerPath::kAuto);
  ASSERT_TRUE(skipped.ok());
  EXPECT_TRUE(skipped->quarantine_hit);
  EXPECT_FALSE(skipped->fell_back);
  EXPECT_FALSE(skipped->used_orca);
  EXPECT_EQ(db_->optimizer_health().detours_attempted, threshold);
  EXPECT_EQ(db_->optimizer_health().quarantine_hits, 1);
  EXPECT_EQ(RowsText(skipped->rows), RowsText(baseline->rows));

  auto text = db_->Explain(sql, OptimizerPath::kAuto);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("orca detour quarantined"), std::string::npos);

  // Still quarantined even after the fault is gone...
  FaultInjector::Instance().DisarmAll();
  auto still = db_->Query(sql, OptimizerPath::kAuto);
  ASSERT_TRUE(still.ok());
  EXPECT_TRUE(still->quarantine_hit);

  // ...until ANALYZE moves the stats version.
  ASSERT_TRUE(db_->Analyze("lineitem").ok());
  auto healed = db_->Query(sql, OptimizerPath::kAuto);
  ASSERT_TRUE(healed.ok());
  EXPECT_FALSE(healed->quarantine_hit);
  EXPECT_TRUE(healed->used_orca);
  EXPECT_EQ(RowsText(healed->rows), RowsText(baseline->rows));
}

TEST_F(FaultInjectionTest, FallbackCompilesAreCached) {
  // The clean re-parse fallback makes fallback compiles cacheable: the
  // second execution must hit the cache and stay on the MySQL-path plan.
  const std::string sql = Q(3);
  auto baseline = db_->Query(sql, OptimizerPath::kMySql);
  ASSERT_TRUE(baseline.ok());

  FaultInjector::Instance().ArmCount("bridge.parse_tree_convert", 1);
  auto cold = db_->Query(sql, OptimizerPath::kAuto);
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(cold->fell_back);

  FaultInjector::Instance().DisarmAll();
  auto warm = db_->Query(sql, OptimizerPath::kAuto);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->plan_cache_hit);
  EXPECT_FALSE(warm->used_orca);  // served the cached fallback plan
  EXPECT_EQ(RowsText(warm->rows), RowsText(baseline->rows));
}

// ---------------------------------------------------------------------------
// Resource governor: budget violations abort Orca mid-search and fall back.
// ---------------------------------------------------------------------------

TEST_F(FaultInjectionTest, MemoGroupBudgetAbortsSearchAndFallsBack) {
  const std::string sql = Q(5);  // 6-way join: plenty of memo groups
  auto baseline = db_->Query(sql, OptimizerPath::kMySql);
  ASSERT_TRUE(baseline.ok());

  db_->resource_budget().max_memo_groups = 2;
  auto res = db_->Query(sql, OptimizerPath::kAuto);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_TRUE(res->fell_back);
  EXPECT_FALSE(res->used_orca);
  EXPECT_NE(res->fallback_reason.find("memo group budget"), std::string::npos)
      << res->fallback_reason;
  // The status payload names the originating subsystem and the limit.
  EXPECT_NE(res->fallback_reason.find("[orca.governor/max_memo_groups]"),
            std::string::npos)
      << res->fallback_reason;
  EXPECT_EQ(db_->optimizer_health().budget_kills, 1);
  EXPECT_EQ(RowsText(res->rows), RowsText(baseline->rows));

  auto forced = db_->Query(sql, OptimizerPath::kOrca);
  ASSERT_FALSE(forced.ok());
  EXPECT_EQ(forced.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(FaultInjectionTest, PartitionPairBudgetAbortsSearchAndFallsBack) {
  const std::string sql = Q(5);
  auto baseline = db_->Query(sql, OptimizerPath::kMySql);
  ASSERT_TRUE(baseline.ok());

  db_->resource_budget().max_partition_pairs = 1;
  auto res = db_->Query(sql, OptimizerPath::kAuto);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_TRUE(res->fell_back);
  EXPECT_NE(res->fallback_reason.find("partition pair budget"),
            std::string::npos);
  EXPECT_NE(res->fallback_reason.find("[orca.governor/max_partition_pairs]"),
            std::string::npos)
      << res->fallback_reason;
  EXPECT_EQ(db_->optimizer_health().budget_kills, 1);
  EXPECT_EQ(RowsText(res->rows), RowsText(baseline->rows));
}

TEST_F(FaultInjectionTest, OptimizeDeadlineWithInjectedClock) {
  const std::string sql = Q(5);
  auto baseline = db_->Query(sql, OptimizerPath::kMySql);
  ASSERT_TRUE(baseline.ok());

  // Fake clock: jumps 100 ms per reading, so the 50 ms deadline trips on
  // the first check after the governor stamps its start time.
  auto ticks = std::make_shared<double>(0.0);
  db_->resource_budget().clock_ms = [ticks]() { return *ticks += 100.0; };
  db_->resource_budget().optimize_deadline_ms = 50.0;

  auto res = db_->Query(sql, OptimizerPath::kAuto);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_TRUE(res->fell_back);
  EXPECT_NE(res->fallback_reason.find("deadline"), std::string::npos);
  EXPECT_NE(res->fallback_reason.find("[orca.governor/optimize_deadline_ms]"),
            std::string::npos)
      << res->fallback_reason;
  EXPECT_EQ(db_->optimizer_health().budget_kills, 1);
  EXPECT_EQ(RowsText(res->rows), RowsText(baseline->rows));

  auto forced = db_->Query(sql, OptimizerPath::kOrca);
  ASSERT_FALSE(forced.ok());
  EXPECT_EQ(forced.status().code(), StatusCode::kResourceExhausted);
}

// ---------------------------------------------------------------------------
// Executor budget: an Orca plan killed mid-execution on the auto route is
// transparently re-run through the MySQL path.
// ---------------------------------------------------------------------------

TEST_F(FaultInjectionTest, ExecRowBudgetKillsOrcaPlanAndReRunsViaMySql) {
  db_->plan_cache_config().enable = false;
  const std::string sql = Q(3);
  auto baseline = db_->Query(sql, OptimizerPath::kMySql);
  ASSERT_TRUE(baseline.ok());
  ASSERT_GT(baseline->rows_scanned, 5);  // MySQL path runs unbudgeted

  db_->resource_budget().max_exec_rows = 5;
  auto res = db_->Query(sql, OptimizerPath::kAuto);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_TRUE(res->fell_back);
  EXPECT_FALSE(res->used_orca);
  EXPECT_NE(res->fallback_reason.find("row budget"), std::string::npos);
  EXPECT_NE(res->fallback_reason.find("[exec.budget/max_exec_rows]"),
            std::string::npos)
      << res->fallback_reason;
  EXPECT_EQ(db_->optimizer_health().exec_budget_kills, 1);
  EXPECT_EQ(RowsText(res->rows), RowsText(baseline->rows));

  auto forced = db_->Query(sql, OptimizerPath::kOrca);
  ASSERT_FALSE(forced.ok());
  EXPECT_EQ(forced.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(FaultInjectionTest, ExecDeadlineWithInjectedClock) {
  db_->plan_cache_config().enable = false;
  const std::string sql = Q(3);
  auto baseline = db_->Query(sql, OptimizerPath::kMySql);
  ASSERT_TRUE(baseline.ok());

  auto ticks = std::make_shared<double>(0.0);
  db_->resource_budget().clock_ms = [ticks]() { return *ticks += 50.0; };
  db_->resource_budget().exec_deadline_ms = 10.0;

  auto res = db_->Query(sql, OptimizerPath::kAuto);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_TRUE(res->fell_back);
  EXPECT_NE(res->fallback_reason.find("deadline"), std::string::npos);
  EXPECT_NE(res->fallback_reason.find("[exec.budget/exec_deadline_ms]"),
            std::string::npos)
      << res->fallback_reason;
  EXPECT_EQ(db_->optimizer_health().exec_budget_kills, 1);
  EXPECT_EQ(RowsText(res->rows), RowsText(baseline->rows));
}

TEST_F(FaultInjectionTest, MySqlPathIsNeverBudgeted) {
  db_->resource_budget().max_exec_rows = 5;
  db_->resource_budget().max_memo_groups = 1;
  auto res = db_->Query(Q(3), OptimizerPath::kMySql);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_FALSE(res->fell_back);
  EXPECT_GT(res->rows_scanned, 5);
}

// ---------------------------------------------------------------------------
// (h) Pipeline trace under failure: the aborted detour and the quarantine
// skip must be visible in the span tree with their status payloads
// (DESIGN.md section 10).
// ---------------------------------------------------------------------------

TEST_F(FaultInjectionTest, TraceShowsAbortedDetourSpanWithStatusPayload) {
  // The corrupted-flip scenario from the plan-verifier suite: with the
  // inner-hash-join build flip disabled and enforcement on, the skeleton
  // verifier aborts the detour with [verify.skeleton/S004].
  db_->trace_config().enable = true;
  db_->orca_config().flip_inner_hash_build = false;
  db_->verify_config().verify_plans = true;
  db_->verify_config().enforce = true;

  bool found = false;
  for (const std::string& sql : TpchQueries()) {
    auto res = db_->Query(sql, OptimizerPath::kAuto);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    if (!res->fell_back) continue;
    found = true;

    const Tracer* trace = db_->last_trace();
    ASSERT_NE(trace, nullptr);
    const TraceSpan* detour = trace->Find("orca.detour");
    ASSERT_NE(detour, nullptr);
    ASSERT_TRUE(detour->ended);
    const std::string* aborted = detour->FindAttr("aborted");
    ASSERT_NE(aborted, nullptr);
    EXPECT_EQ(*aborted, "true");
    const std::string* status = detour->FindAttr("status");
    ASSERT_NE(status, nullptr);
    EXPECT_NE(status->find("[verify.skeleton/S004]"), std::string::npos)
        << *status;
    // The clean fallback is traced too, carrying the same reason.
    const TraceSpan* reparse = trace->Find("fallback.reparse");
    ASSERT_NE(reparse, nullptr);
    const std::string* reason = reparse->FindAttr("reason");
    ASSERT_NE(reason, nullptr);
    EXPECT_NE(reason->find("S004"), std::string::npos) << *reason;
    break;
  }
  db_->orca_config().flip_inner_hash_build = true;
  db_->verify_config().enforce = false;
  EXPECT_TRUE(found)
      << "no TPC-H detour planned an inner hash join — S004 never fired";
}

TEST_F(FaultInjectionTest, TraceShowsQuarantineRouteDecision) {
  db_->plan_cache_config().enable = false;  // observe every compile
  const std::string sql = Q(3);
  FaultInjector::Instance().ArmCount("bridge.parse_tree_convert", 1000000);
  for (int i = 0; i < db_->quarantine_config().failure_threshold; ++i) {
    ASSERT_TRUE(db_->Query(sql, OptimizerPath::kAuto).ok());
  }
  FaultInjector::Instance().DisarmAll();

  db_->trace_config().enable = true;
  auto res = db_->Query(sql, OptimizerPath::kAuto);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_TRUE(res->quarantine_hit);

  const Tracer* trace = db_->last_trace();
  ASSERT_NE(trace, nullptr);
  const TraceSpan* route = trace->Find("route");
  ASSERT_NE(route, nullptr);
  const std::string* decision = route->FindAttr("decision");
  ASSERT_NE(decision, nullptr);
  EXPECT_EQ(*decision, "quarantine");
  // The quarantined statement never enters the detour.
  EXPECT_EQ(trace->Find("orca.detour"), nullptr);
  const TraceSpan* fp = trace->Find("fingerprint");
  ASSERT_NE(fp, nullptr);
  const std::string* quarantined = fp->FindAttr("quarantined");
  ASSERT_NE(quarantined, nullptr);
  EXPECT_EQ(*quarantined, "true");
}

}  // namespace
}  // namespace taurus
