#include <gtest/gtest.h>

#include "exec/block_executor.h"
#include "frontend/prepare.h"
#include "myopt/cardinality.h"
#include "parser/ast_util.h"
#include "myopt/join_graph.h"
#include "myopt/mysql_optimizer.h"
#include "myopt/refine.h"
#include "parser/parser.h"
#include "storage/storage.h"

namespace taurus {
namespace {

class MyOptTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto big = catalog_.CreateTable(
        "big", {{"b_id", TypeId::kLong, 0, false},
                {"b_fk", TypeId::kLong, 0, false},
                {"b_v", TypeId::kDouble, 0, false}});
    ASSERT_TRUE(big.ok());
    ASSERT_TRUE(catalog_.AddIndex("big", {"big_pk", {0}, true, true}).ok());
    ASSERT_TRUE(catalog_.AddIndex("big", {"big_fk", {1}, false, false}).ok());
    auto small = catalog_.CreateTable(
        "small", {{"s_id", TypeId::kLong, 0, false},
                  {"s_name", TypeId::kVarchar, 20, false}});
    ASSERT_TRUE(small.ok());
    ASSERT_TRUE(catalog_.AddIndex("small", {"small_pk", {0}, true, true}).ok());

    TableData* bd = storage_.CreateTable(*big);
    for (int i = 0; i < 5000; ++i) {
      bd->Append({Value::Int(i), Value::Int(i % 50),
                  Value::Double(0.25 * i)});
    }
    bd->BuildIndexes();
    catalog_.SetStats((*big)->id, ComputeTableStats(*bd));
    TableData* sd = storage_.CreateTable(*small);
    for (int i = 0; i < 50; ++i) {
      sd->Append({Value::Int(i), Value::Str("n" + std::to_string(i))});
    }
    sd->BuildIndexes();
    catalog_.SetStats((*small)->id, ComputeTableStats(*sd));
  }

  Result<BoundStatement> Prep(const std::string& sql) {
    auto parsed = ParseSelect(sql);
    if (!parsed.ok()) return parsed.status();
    auto bound = BindStatement(catalog_, std::move(*parsed));
    if (!bound.ok()) return bound.status();
    BoundStatement stmt = std::move(*bound);
    TAURUS_RETURN_IF_ERROR(PrepareStatement(&stmt));
    return stmt;
  }

  Catalog catalog_;
  Storage storage_;
};

// ---------------------------------------------------------------------------
// Join graph
// ---------------------------------------------------------------------------

TEST_F(MyOptTest, JoinGraphFlattensInnerJoins) {
  auto stmt = Prep(
      "SELECT 1 FROM big b1 JOIN big b2 ON b1.b_id = b2.b_id "
      "JOIN small ON b2.b_fk = s_id WHERE b1.b_v > 3");
  ASSERT_TRUE(stmt.ok());
  auto graph = BuildJoinGraph(stmt->block.get(), stmt->num_refs);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->units.size(), 3u);  // all freely reorderable
  for (const JoinUnit& u : graph->units) {
    EXPECT_EQ(u.join_type, JoinType::kInner);
    EXPECT_EQ(u.dependency, 0u);
  }
  // Conjuncts: 2 ON equalities + 1 WHERE filter.
  EXPECT_EQ(graph->conjuncts.size(), 3u);
}

TEST_F(MyOptTest, JoinGraphDependentUnits) {
  auto stmt = Prep(
      "SELECT 1 FROM big LEFT JOIN small ON b_fk = s_id WHERE b_v >= 0");
  ASSERT_TRUE(stmt.ok());
  auto graph = BuildJoinGraph(stmt->block.get(), stmt->num_refs);
  ASSERT_TRUE(graph.ok());
  ASSERT_EQ(graph->units.size(), 2u);
  EXPECT_EQ(graph->units[0].join_type, JoinType::kInner);
  EXPECT_EQ(graph->units[1].join_type, JoinType::kLeft);
  EXPECT_EQ(graph->units[1].dependency, 1u);  // depends on unit 0
  ASSERT_EQ(graph->units[1].join_conds.size(), 1u);
}

TEST_F(MyOptTest, JoinGraphConjunctMasks) {
  auto stmt = Prep(
      "SELECT 1 FROM big, small WHERE b_fk = s_id AND b_v > 5 AND 1 = 1");
  ASSERT_TRUE(stmt.ok());
  auto graph = BuildJoinGraph(stmt->block.get(), stmt->num_refs);
  ASSERT_TRUE(graph.ok());
  // Masks: join cond covers both units; local cond covers one; the
  // constant folds to a literal with no units.
  uint64_t masks[3] = {0, 0, 0};
  for (size_t i = 0; i < graph->conjuncts.size(); ++i) {
    masks[i] = graph->conjuncts[i].units;
  }
  EXPECT_EQ(masks[0], 0b11u);
  EXPECT_EQ(masks[1], 0b01u);
  EXPECT_EQ(masks[2], 0u);
}

// ---------------------------------------------------------------------------
// Cardinality estimation
// ---------------------------------------------------------------------------

TEST_F(MyOptTest, SelectivityFromHistograms) {
  auto stmt = Prep(
      "SELECT 1 FROM big WHERE b_id < 1000 AND b_fk = 7 AND "
      "b_v BETWEEN 100 AND 200");
  ASSERT_TRUE(stmt.ok());
  StatsProvider stats(catalog_, stmt->leaves);
  std::vector<const Expr*> conjs;
  SplitConjuncts(stmt->block->where.get(), &conjs);
  ASSERT_EQ(conjs.size(), 3u);
  EXPECT_NEAR(stats.ConjunctSelectivity(*conjs[0]), 0.2, 0.05);    // < 1000
  EXPECT_NEAR(stats.ConjunctSelectivity(*conjs[1]), 0.02, 0.005);  // = 7
  // b_v in [100, 200] of [0, 1249.75] ~ 8%.
  EXPECT_NEAR(stats.ConjunctSelectivity(*conjs[2]), 0.08, 0.03);
}

TEST_F(MyOptTest, EqJoinSelectivityUsesMaxNdv) {
  auto stmt = Prep("SELECT 1 FROM big, small WHERE b_fk = s_id");
  ASSERT_TRUE(stmt.ok());
  StatsProvider stats(catalog_, stmt->leaves);
  std::vector<const Expr*> conjs;
  SplitConjuncts(stmt->block->where.get(), &conjs);
  // ndv(b_fk) = ndv(s_id) = 50 -> selectivity 1/50.
  EXPECT_NEAR(stats.EqJoinSelectivity(*conjs[0]), 1.0 / 50, 1e-9);
}

TEST_F(MyOptTest, LeafBaseRowsAndDerivedOverride) {
  auto stmt = Prep("SELECT 1 FROM big, (SELECT s_id FROM small) d "
                   "WHERE b_fk = d.s_id");
  ASSERT_TRUE(stmt.ok());
  StatsProvider stats(catalog_, stmt->leaves);
  auto leaves = stmt->block->Leaves();
  EXPECT_DOUBLE_EQ(stats.LeafBaseRows(*leaves[0]), 5000.0);
  stats.SetDerivedRows(leaves[1], 42.0);
  EXPECT_DOUBLE_EQ(stats.LeafBaseRows(*leaves[1]), 42.0);
}

// ---------------------------------------------------------------------------
// Greedy optimizer & skeleton
// ---------------------------------------------------------------------------

TEST_F(MyOptTest, GreedyPrefersRefAccess) {
  auto stmt = Prep(
      "SELECT 1 FROM small, big WHERE s_id = b_fk AND s_name = 'n3'");
  ASSERT_TRUE(stmt.ok());
  auto skel = MySqlOptimize(catalog_, &*stmt);
  ASSERT_TRUE(skel.ok()) << skel.status().ToString();
  std::vector<const SkeletonNode*> bpa;
  (*skel)->root->BestPositionArray(&bpa);
  ASSERT_EQ(bpa.size(), 2u);
  // small (1 row after filter) drives; big accessed via the b_fk index.
  EXPECT_EQ(bpa[0]->leaf->table_name, "small");
  EXPECT_EQ(bpa[1]->leaf->table_name, "big");
  EXPECT_EQ(bpa[1]->access, AccessMethod::kIndexLookup);
}

TEST_F(MyOptTest, GreedyUsesHashJoinWithoutIndex) {
  // Join on non-indexed columns: MySQL's non-cost-based hash fallback.
  auto stmt = Prep("SELECT 1 FROM big b1, big b2 WHERE b1.b_v = b2.b_v");
  ASSERT_TRUE(stmt.ok());
  auto skel = MySqlOptimize(catalog_, &*stmt);
  ASSERT_TRUE(skel.ok());
  ASSERT_TRUE((*skel)->root->is_join);
  EXPECT_EQ((*skel)->root->method, JoinMethod::kHash);
}

TEST_F(MyOptTest, DependentUnitPlacedAfterOuter) {
  auto stmt = Prep(
      "SELECT 1 FROM small LEFT JOIN big ON s_id = b_fk");
  ASSERT_TRUE(stmt.ok());
  auto skel = MySqlOptimize(catalog_, &*stmt);
  ASSERT_TRUE(skel.ok());
  std::vector<const SkeletonNode*> bpa;
  (*skel)->root->BestPositionArray(&bpa);
  ASSERT_EQ(bpa.size(), 2u);
  EXPECT_EQ(bpa[0]->leaf->table_name, "small");
  EXPECT_EQ((*skel)->root->join_type, JoinType::kLeft);
}

TEST_F(MyOptTest, RangeAccessChosenForSelectiveRange) {
  auto stmt = Prep("SELECT 1 FROM big WHERE b_id < 100");
  ASSERT_TRUE(stmt.ok());
  auto skel = MySqlOptimize(catalog_, &*stmt);
  ASSERT_TRUE(skel.ok());
  EXPECT_EQ((*skel)->root->access, AccessMethod::kIndexRange);
  EXPECT_EQ((*skel)->root->index_id, 0);  // big_pk
}

TEST_F(MyOptTest, FullScanForUnselectiveRange) {
  auto stmt = Prep("SELECT 1 FROM big WHERE b_id < 4900");
  ASSERT_TRUE(stmt.ok());
  auto skel = MySqlOptimize(catalog_, &*stmt);
  ASSERT_TRUE(skel.ok());
  EXPECT_EQ((*skel)->root->access, AccessMethod::kTableScan);
}

// ---------------------------------------------------------------------------
// Refinement: predicate placement
// ---------------------------------------------------------------------------

TEST_F(MyOptTest, RefinementPushesLocalFiltersToScans) {
  auto stmt = Prep(
      "SELECT 1 FROM big, small WHERE b_fk = s_id AND s_name = 'n3' AND "
      "b_v > 100");
  ASSERT_TRUE(stmt.ok());
  auto skel = MySqlOptimize(catalog_, &*stmt);
  ASSERT_TRUE(skel.ok());
  auto q = RefinePlan(std::move(*stmt), **skel, catalog_);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  // Every leaf-local conjunct must sit on a scan, not on the join.
  std::vector<const PhysOp*> leaves;
  (*q)->root->join_root->CollectLeaves(&leaves);
  int filtered_leaves = 0;
  for (const PhysOp* leaf : leaves) {
    if (!leaf->filters.empty() || !leaf->lookup_keys.empty()) {
      ++filtered_leaves;
    }
  }
  EXPECT_EQ(filtered_leaves, 2);
}

TEST_F(MyOptTest, RefinementKeepsWhereAboveLeftJoinInner) {
  auto stmt = Prep(
      "SELECT 1 FROM small LEFT JOIN big ON s_id = b_fk "
      "WHERE b_id IS NULL");
  ASSERT_TRUE(stmt.ok());
  auto skel = MySqlOptimize(catalog_, &*stmt);
  ASSERT_TRUE(skel.ok());
  auto q = RefinePlan(std::move(*stmt), **skel, catalog_);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  // The IS NULL probe must evaluate above the left join: the root becomes
  // a Filter node.
  EXPECT_EQ((*q)->root->join_root->kind, PhysOp::Kind::kFilter);
}

TEST_F(MyOptTest, RefinementBindsLookupKeys) {
  auto stmt = Prep(
      "SELECT 1 FROM small, big WHERE s_id = b_fk AND s_name = 'n3'");
  ASSERT_TRUE(stmt.ok());
  auto skel = MySqlOptimize(catalog_, &*stmt);
  ASSERT_TRUE(skel.ok());
  auto q = RefinePlan(std::move(*stmt), **skel, catalog_);
  ASSERT_TRUE(q.ok());
  std::vector<const PhysOp*> leaves;
  (*q)->root->join_root->CollectLeaves(&leaves);
  bool found_lookup = false;
  for (const PhysOp* leaf : leaves) {
    if (leaf->kind == PhysOp::Kind::kIndexLookup) {
      found_lookup = true;
      EXPECT_EQ(leaf->lookup_keys.size(), 1u);
    }
  }
  EXPECT_TRUE(found_lookup);
}

TEST_F(MyOptTest, RefinementDowngradesUnbindableLookup) {
  // Force a lookup skeleton whose index key cannot be bound; refinement
  // must degrade to a scan rather than fail.
  auto stmt = Prep("SELECT 1 FROM big WHERE b_v > 100");
  ASSERT_TRUE(stmt.ok());
  auto skel = MySqlOptimize(catalog_, &*stmt);
  ASSERT_TRUE(skel.ok());
  (*skel)->root->access = AccessMethod::kIndexLookup;
  (*skel)->root->index_id = 0;
  auto q = RefinePlan(std::move(*stmt), **skel, catalog_);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ((*q)->root->join_root->kind, PhysOp::Kind::kTableScan);
}

TEST_F(MyOptTest, RefinementCollectsAggregates) {
  auto stmt = Prep(
      "SELECT b_fk, COUNT(*), SUM(b_v) FROM big GROUP BY b_fk "
      "HAVING COUNT(*) > 10 ORDER BY SUM(b_v) DESC");
  ASSERT_TRUE(stmt.ok());
  auto skel = MySqlOptimize(catalog_, &*stmt);
  ASSERT_TRUE(skel.ok());
  auto q = RefinePlan(std::move(*stmt), **skel, catalog_);
  ASSERT_TRUE(q.ok());
  const BlockPlan& plan = *(*q)->root;
  EXPECT_EQ(plan.agg_mode, AggMode::kHash);
  // count(*) and sum(b_v) collected once each (deduplicated structurally).
  EXPECT_EQ(plan.agg_exprs.size(), 2u);
  EXPECT_EQ(plan.group_exprs.size(), 1u);
  ASSERT_NE(plan.having, nullptr);
  EXPECT_EQ(plan.order_keys.size(), 1u);
}

TEST_F(MyOptTest, MySqlIndexGatedOrFactoring) {
  // The common equality b_id = s_id leads the big_pk index, so stock
  // MySQL's limited OR refactoring applies and produces hash keys.
  auto stmt = Prep(
      "SELECT 1 FROM big, small WHERE (b_id = s_id AND b_v > 10) OR "
      "(b_id = s_id AND s_name = 'n5')");
  ASSERT_TRUE(stmt.ok());
  auto skel = MySqlOptimize(catalog_, &*stmt);
  ASSERT_TRUE(skel.ok());
  ASSERT_TRUE((*stmt).block->where != nullptr);
  std::vector<const Expr*> conjs;
  SplitConjuncts(stmt->block->where.get(), &conjs);
  EXPECT_GE(conjs.size(), 2u);  // factored: eq AND (residual OR residual)
}

TEST_F(MyOptTest, SortElidedWhenIndexProvidesOrder) {
  auto stmt = Prep("SELECT b_id FROM big WHERE b_id < 100 ORDER BY b_id");
  ASSERT_TRUE(stmt.ok());
  auto skel = MySqlOptimize(catalog_, &*stmt);
  ASSERT_TRUE(skel.ok());
  ASSERT_EQ((*skel)->root->access, AccessMethod::kIndexRange);
  auto q = RefinePlan(std::move(*stmt), **skel, catalog_);
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE((*q)->root->order_satisfied);
  // Rows still come back ordered (the index range scan provides it).
  auto rows = ExecuteQuery(q->get(), storage_);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 100u);
  for (size_t i = 1; i < rows->size(); ++i) {
    EXPECT_LE((*rows)[i - 1][0].AsInt(), (*rows)[i][0].AsInt());
  }
}

TEST_F(MyOptTest, SortKeptForDescOrNonIndexOrder) {
  auto stmt = Prep("SELECT b_id FROM big WHERE b_id < 100 ORDER BY b_id "
                   "DESC");
  ASSERT_TRUE(stmt.ok());
  auto skel = MySqlOptimize(catalog_, &*stmt);
  ASSERT_TRUE(skel.ok());
  auto q = RefinePlan(std::move(*stmt), **skel, catalog_);
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE((*q)->root->order_satisfied);
  auto rows = ExecuteQuery(q->get(), storage_);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[0][0].AsInt(), 99);
}

}  // namespace
}  // namespace taurus
