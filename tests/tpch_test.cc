#include <gtest/gtest.h>

#include <algorithm>

#include "workloads/tpch.h"

namespace taurus {
namespace {

void SortRows(std::vector<Row>* rows) {
  std::sort(rows->begin(), rows->end(), [](const Row& a, const Row& b) {
    for (size_t i = 0; i < a.size(); ++i) {
      int c = Value::Compare(a[i], b[i]);
      if (c != 0) return c < 0;
    }
    return false;
  });
}

/// Rounds doubles so tiny float-order differences between plans don't
/// produce spurious mismatches.
std::string Fingerprint(std::vector<Row> rows) {
  SortRows(&rows);
  std::string out;
  char buf[40];
  for (const Row& r : rows) {
    for (const Value& v : r) {
      if (v.kind() == Value::Kind::kDouble) {
        std::snprintf(buf, sizeof(buf), "%.4f|", v.AsDouble());
        out += buf;
      } else {
        out += v.ToString();
        out += '|';
      }
    }
    out += '\n';
  }
  return out;
}

class TpchTest : public ::testing::Test {
 protected:
  static Database* db() {
    static Database* instance = [] {
      auto* d = new Database();
      auto st = SetupTpch(d, 0.002);
      EXPECT_TRUE(st.ok()) << st.ToString();
      return d;
    }();
    return instance;
  }
};

TEST_F(TpchTest, SchemaHasEightTables) {
  EXPECT_EQ(db()->catalog().NumTables(), 8);
}

TEST_F(TpchTest, RowCountRatiosRoughlyTpch) {
  auto count = [&](const std::string& t) {
    auto r = db()->Query("SELECT COUNT(*) FROM " + t);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? r->rows[0][0].AsInt() : 0;
  };
  int64_t customers = count("customer");
  int64_t orders = count("orders");
  int64_t lineitems = count("lineitem");
  EXPECT_EQ(count("nation"), 25);
  EXPECT_EQ(count("region"), 5);
  EXPECT_NEAR(static_cast<double>(orders) / customers, 10.0, 2.0);
  EXPECT_GT(lineitems, orders * 2);
}

TEST_F(TpchTest, DeterministicGeneration) {
  Database other;
  ASSERT_TRUE(SetupTpch(&other, 0.002).ok());
  auto a = db()->Query("SELECT SUM(l_extendedprice), COUNT(*) FROM lineitem");
  auto b = other.Query("SELECT SUM(l_extendedprice), COUNT(*) FROM lineitem");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(RowToString(a->rows[0]), RowToString(b->rows[0]));
}

/// Every TPC-H query must compile and execute on both optimizer paths and
/// produce identical results — the reproduction's core invariant.
class TpchQueryTest : public TpchTest,
                      public ::testing::WithParamInterface<int> {};

TEST_P(TpchQueryTest, PathsAgree) {
  const std::string& sql = TpchQueries()[static_cast<size_t>(GetParam())];
  auto mysql = db()->Query(sql, OptimizerPath::kMySql);
  ASSERT_TRUE(mysql.ok()) << "MySQL path failed on Q" << GetParam() + 1
                          << ": " << mysql.status().ToString();
  auto orca = db()->Query(sql, OptimizerPath::kOrca);
  ASSERT_TRUE(orca.ok()) << "Orca path failed on Q" << GetParam() + 1 << ": "
                         << orca.status().ToString();
  EXPECT_TRUE(orca->used_orca);
  EXPECT_EQ(Fingerprint(mysql->rows), Fingerprint(orca->rows))
      << "plan paths disagree on Q" << GetParam() + 1;
}

INSTANTIATE_TEST_SUITE_P(AllQueries, TpchQueryTest, ::testing::Range(0, 22),
                         [](const ::testing::TestParamInfo<int>& pinfo) {
                           return "Q" + std::to_string(pinfo.param + 1);
                         });

}  // namespace
}  // namespace taurus
