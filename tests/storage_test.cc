#include <gtest/gtest.h>

#include "storage/storage.h"

namespace taurus {
namespace {

class StorageTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto t = catalog_.CreateTable(
        "items", {{"id", TypeId::kLong, 0, false},
                  {"grp", TypeId::kLong, 0, false},
                  {"name", TypeId::kVarchar, 20, true}});
    ASSERT_TRUE(t.ok());
    table_ = *t;
    ASSERT_TRUE(catalog_.AddIndex("items", {"pk", {0}, true, true}).ok());
    ASSERT_TRUE(catalog_.AddIndex("items", {"by_grp", {1, 0}, false, false}).ok());
    data_ = storage_.CreateTable(table_);
    for (int i = 0; i < 100; ++i) {
      data_->Append({Value::Int(i), Value::Int(i % 10),
                     i % 7 == 0 ? Value::Null()
                                : Value::Str("n" + std::to_string(i))});
    }
    data_->BuildIndexes();
  }

  Catalog catalog_;
  Storage storage_;
  TableDef* table_ = nullptr;
  TableData* data_ = nullptr;
};

TEST_F(StorageTest, RowsStored) {
  EXPECT_EQ(data_->NumRows(), 100u);
  EXPECT_EQ(data_->row(42)[0].AsInt(), 42);
  EXPECT_EQ(storage_.Get(table_->id), data_);
  EXPECT_EQ(storage_.Get(12345), nullptr);
}

TEST_F(StorageTest, PrimaryIndexPointLookup) {
  const OrderedIndex& pk = data_->index(0);
  EXPECT_EQ(pk.NumEntries(), 100u);
  auto [b, e] = pk.EqualRange({Value::Int(55)});
  ASSERT_EQ(e - b, 1u);
  EXPECT_EQ(data_->row(pk.entry(b).row_id)[0].AsInt(), 55);
}

TEST_F(StorageTest, LookupMiss) {
  auto [b, e] = data_->index(0).EqualRange({Value::Int(1000)});
  EXPECT_EQ(b, e);
}

TEST_F(StorageTest, SecondaryPrefixLookup) {
  // Key prefix (grp) matches 10 rows.
  auto [b, e] = data_->index(1).EqualRange({Value::Int(3)});
  EXPECT_EQ(e - b, 10u);
  // Full composite key matches exactly one.
  auto [b2, e2] = data_->index(1).EqualRange({Value::Int(3), Value::Int(13)});
  EXPECT_EQ(e2 - b2, 1u);
}

TEST_F(StorageTest, IndexEntriesSortedByKey) {
  const OrderedIndex& idx = data_->index(1);
  for (size_t i = 1; i < idx.NumEntries(); ++i) {
    int64_t prev = idx.entry(i - 1).key[0].AsInt();
    int64_t cur = idx.entry(i).key[0].AsInt();
    EXPECT_LE(prev, cur);
  }
}

TEST_F(StorageTest, RangeScan) {
  const OrderedIndex& pk = data_->index(0);
  Value lo = Value::Int(10), hi = Value::Int(20);
  auto [b, e] = pk.Range(&lo, true, &hi, false);
  EXPECT_EQ(e - b, 10u);  // [10, 20)
  auto [b2, e2] = pk.Range(&lo, false, &hi, true);
  EXPECT_EQ(e2 - b2, 10u);  // (10, 20]
  auto [b3, e3] = pk.Range(nullptr, true, &hi, false);
  EXPECT_EQ(e3 - b3, 20u);  // < 20
  auto [b4, e4] = pk.Range(&lo, true, nullptr, false);
  EXPECT_EQ(e4 - b4, 90u);  // >= 10
}

TEST_F(StorageTest, EmptyRangeWhenBoundsCross) {
  const OrderedIndex& pk = data_->index(0);
  Value lo = Value::Int(50), hi = Value::Int(10);
  auto [b, e] = pk.Range(&lo, true, &hi, true);
  EXPECT_EQ(b, e);
}

TEST_F(StorageTest, ComputeStatsBasics) {
  TableStats stats = ComputeTableStats(*data_, 16);
  EXPECT_EQ(stats.row_count, 100);
  ASSERT_EQ(stats.columns.size(), 3u);
  EXPECT_EQ(stats.columns[0].distinct_count, 100);
  EXPECT_EQ(stats.columns[1].distinct_count, 10);
  EXPECT_EQ(stats.columns[0].null_count, 0);
  // ids 0,7,...,98 have NULL names: 15 rows.
  EXPECT_EQ(stats.columns[2].null_count, 15);
  EXPECT_EQ(stats.columns[0].min_value.AsInt(), 0);
  EXPECT_EQ(stats.columns[0].max_value.AsInt(), 99);
}

TEST_F(StorageTest, ComputeStatsHistogramTypes) {
  TableStats stats = ComputeTableStats(*data_, 16);
  // grp has 10 distinct values <= 16 buckets -> singleton.
  EXPECT_EQ(stats.columns[1].histogram.type(), HistogramType::kSingleton);
  // id has 100 distinct > 16 -> equi-height.
  EXPECT_EQ(stats.columns[0].histogram.type(), HistogramType::kEquiHeight);
  EXPECT_NEAR(stats.columns[1].histogram.SelectivityEquals(Value::Int(4)),
              0.1, 1e-9);
}

TEST_F(StorageTest, UniqueColumnStillGetsHistogram) {
  // The paper lifted MySQL's no-histograms-on-UNIQUE restriction
  // (Section 5.5): our ANALYZE builds them unconditionally.
  TableStats stats = ComputeTableStats(*data_, 16);
  EXPECT_FALSE(stats.columns[0].histogram.empty());
}

}  // namespace
}  // namespace taurus
