#include <gtest/gtest.h>

#include "exec/block_executor.h"
#include "frontend/prepare.h"
#include "myopt/mysql_optimizer.h"
#include "myopt/refine.h"
#include "parser/parser.h"
#include "storage/storage.h"

namespace taurus {
namespace {

/// End-to-end MySQL-path harness: parse -> bind -> prepare -> greedy
/// optimize -> refine -> execute.
class MySqlPathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // orders(o_id, o_custkey, o_date, o_priority), pk(o_id), idx(o_custkey)
    auto orders = catalog_.CreateTable(
        "orders", {{"o_id", TypeId::kLong, 0, false},
                   {"o_custkey", TypeId::kLong, 0, false},
                   {"o_date", TypeId::kDate, 0, false},
                   {"o_priority", TypeId::kVarchar, 15, false}});
    ASSERT_TRUE(orders.ok());
    ASSERT_TRUE(catalog_.AddIndex("orders", {"o_pk", {0}, true, true}).ok());
    ASSERT_TRUE(
        catalog_.AddIndex("orders", {"o_cust_idx", {1}, false, false}).ok());
    auto cust = catalog_.CreateTable(
        "customer", {{"c_id", TypeId::kLong, 0, false},
                     {"c_name", TypeId::kVarchar, 25, false},
                     {"c_nation", TypeId::kLong, 0, false}});
    ASSERT_TRUE(cust.ok());
    ASSERT_TRUE(catalog_.AddIndex("customer", {"c_pk", {0}, true, true}).ok());
    auto item = catalog_.CreateTable(
        "lineitem", {{"l_oid", TypeId::kLong, 0, false},
                     {"l_qty", TypeId::kLong, 0, false},
                     {"l_price", TypeId::kDouble, 0, false}});
    ASSERT_TRUE(item.ok());
    ASSERT_TRUE(
        catalog_.AddIndex("lineitem", {"l_oid_idx", {0}, false, false}).ok());

    TableData* od = storage_.CreateTable(*orders);
    int64_t d0 = 9000;
    for (int i = 0; i < 50; ++i) {
      od->Append({Value::Int(i), Value::Int(i % 10), Value::Date(d0 + i),
                  Value::Str(i % 2 ? "HIGH" : "LOW")});
    }
    od->BuildIndexes();
    catalog_.SetStats((*orders)->id, ComputeTableStats(*od));

    TableData* cd = storage_.CreateTable(*cust);
    for (int i = 0; i < 10; ++i) {
      cd->Append({Value::Int(i), Value::Str("cust" + std::to_string(i)),
                  Value::Int(i % 3)});
    }
    cd->BuildIndexes();
    catalog_.SetStats((*cust)->id, ComputeTableStats(*cd));

    TableData* ld = storage_.CreateTable(*item);
    for (int i = 0; i < 200; ++i) {
      ld->Append({Value::Int(i % 50), Value::Int(i % 7),
                  Value::Double(1.5 * (i % 11))});
    }
    ld->BuildIndexes();
    catalog_.SetStats((*item)->id, ComputeTableStats(*ld));
  }

  Result<std::vector<Row>> Run(const std::string& sql) {
    auto parsed = ParseSelect(sql);
    if (!parsed.ok()) return parsed.status();
    auto bound = BindStatement(catalog_, std::move(*parsed));
    if (!bound.ok()) return bound.status();
    BoundStatement stmt = std::move(*bound);
    TAURUS_RETURN_IF_ERROR(PrepareStatement(&stmt));
    auto skel = MySqlOptimize(catalog_, &stmt);
    if (!skel.ok()) return skel.status();
    auto compiled = RefinePlan(std::move(stmt), **skel, catalog_);
    if (!compiled.ok()) return compiled.status();
    query_ = std::move(*compiled);
    return ExecuteQuery(query_.get(), storage_, &last_ctx_);
  }

  Catalog catalog_;
  Storage storage_;
  std::unique_ptr<CompiledQuery> query_;
  ExecContext last_ctx_;
};

TEST_F(MySqlPathTest, SimpleScanWithFilter) {
  auto rows = Run("SELECT o_id FROM orders WHERE o_custkey = 3");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 5u);  // custkeys 3, 13, 23, 33, 43
  for (const Row& r : *rows) EXPECT_EQ(r[0].AsInt() % 10, 3);
}

TEST_F(MySqlPathTest, ProjectionExpressions) {
  auto rows = Run("SELECT o_id * 2 + 1 FROM orders WHERE o_id < 3 ORDER BY 1");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 3u);
  EXPECT_EQ((*rows)[0][0].AsInt(), 1);
  EXPECT_EQ((*rows)[2][0].AsInt(), 5);
}

TEST_F(MySqlPathTest, TwoWayJoin) {
  auto rows = Run(
      "SELECT c_name, o_id FROM customer JOIN orders ON c_id = o_custkey "
      "WHERE c_nation = 0 ORDER BY o_id");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  // nations 0: custs 0,3,6,9 -> 4 custs * 5 orders each = 20 rows.
  EXPECT_EQ(rows->size(), 20u);
}

TEST_F(MySqlPathTest, ThreeWayJoinAggregation) {
  auto rows = Run(
      "SELECT c_nation, COUNT(*) cnt, SUM(l_qty) FROM customer "
      "JOIN orders ON c_id = o_custkey JOIN lineitem ON l_oid = o_id "
      "GROUP BY c_nation ORDER BY c_nation");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 3u);
  int64_t total = 0;
  for (const Row& r : *rows) total += r[1].AsInt();
  EXPECT_EQ(total, 200);  // every lineitem joins exactly one order/customer
}

TEST_F(MySqlPathTest, LeftJoinPreservesOuterRows) {
  // Customer 9 has orders; all do. Filter to an order subset so some
  // customers lose matches.
  auto rows = Run(
      "SELECT c_id, COUNT(o_id) FROM customer LEFT JOIN orders "
      "ON c_id = o_custkey AND o_id < 5 GROUP BY c_id ORDER BY c_id");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 10u);
  // Orders 0..4 belong to customers 0..4; customers 5..9 get 0.
  EXPECT_EQ((*rows)[0][1].AsInt(), 1);
  EXPECT_EQ((*rows)[9][1].AsInt(), 0);
}

TEST_F(MySqlPathTest, WhereOnLeftJoinInnerFiltersNullExtended) {
  auto rows = Run(
      "SELECT c_id FROM customer LEFT JOIN orders ON c_id = o_custkey AND "
      "o_id < 0 WHERE o_id IS NULL ORDER BY c_id");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 10u);  // no orders match; all NULL-extended
}

TEST_F(MySqlPathTest, ExistsSemiJoin) {
  auto rows = Run(
      "SELECT c_id FROM customer WHERE EXISTS "
      "(SELECT 1 FROM orders WHERE o_custkey = c_id AND o_id >= 40) "
      "ORDER BY c_id");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  // Orders 40..49 cover custkeys 0..9 -> all 10 customers.
  EXPECT_EQ(rows->size(), 10u);
}

TEST_F(MySqlPathTest, NotExistsAntiJoin) {
  auto rows = Run(
      "SELECT c_id FROM customer WHERE NOT EXISTS "
      "(SELECT 1 FROM orders WHERE o_custkey = c_id AND o_id < 5)");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  // Orders 0..4 -> custkeys 0..4 excluded; customers 5..9 remain.
  EXPECT_EQ(rows->size(), 5u);
}

TEST_F(MySqlPathTest, InSubquerySemiJoin) {
  auto rows = Run(
      "SELECT o_id FROM orders WHERE o_custkey IN "
      "(SELECT c_id FROM customer WHERE c_nation = 1)");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  // nation 1: custs 1,4,7 -> 15 orders.
  EXPECT_EQ(rows->size(), 15u);
}

TEST_F(MySqlPathTest, ScalarSubqueryCorrelated) {
  auto rows = Run(
      "SELECT o_id FROM orders WHERE o_custkey = "
      "(SELECT MIN(c_id) FROM customer WHERE c_nation = 2) ORDER BY o_id");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  // min c_id with nation 2 is 2 -> orders of cust 2.
  EXPECT_EQ(rows->size(), 5u);
  EXPECT_EQ((*rows)[0][0].AsInt(), 2);
}

TEST_F(MySqlPathTest, CorrelatedScalarSubqueryPerRow) {
  // TPC-H Q17 pattern: compare against a per-group average.
  auto rows = Run(
      "SELECT l_oid, l_qty FROM lineitem WHERE l_qty > "
      "(SELECT AVG(l2.l_qty) FROM lineitem l2 WHERE l2.l_oid = "
      "lineitem.l_oid)");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_GT(rows->size(), 0u);
  EXPECT_LT(rows->size(), 200u);
}

TEST_F(MySqlPathTest, DerivedTableAggregation) {
  auto rows = Run(
      "SELECT d.k, d.total FROM (SELECT o_custkey k, COUNT(*) total FROM "
      "orders GROUP BY o_custkey) d WHERE d.total > 4 ORDER BY d.k");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 10u);  // each custkey has exactly 5 orders
  EXPECT_EQ((*rows)[0][1].AsInt(), 5);
}

TEST_F(MySqlPathTest, CteTwoConsumers) {
  auto rows = Run(
      "WITH top AS (SELECT o_custkey k, COUNT(*) c FROM orders GROUP BY "
      "o_custkey) SELECT t1.k FROM top t1, top t2 WHERE t1.k = t2.k "
      "ORDER BY t1.k");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 10u);
}

TEST_F(MySqlPathTest, HavingFiltersGroups) {
  auto rows = Run(
      "SELECT o_custkey, COUNT(*) c FROM orders WHERE o_id < 23 "
      "GROUP BY o_custkey HAVING c >= 3 ORDER BY o_custkey");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  // orders 0..22: custkeys 0,1,2 have 3 orders; 3..9 have 2.
  EXPECT_EQ(rows->size(), 3u);
}

TEST_F(MySqlPathTest, OrderByDescWithLimit) {
  auto rows = Run("SELECT o_id FROM orders ORDER BY o_id DESC LIMIT 3");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 3u);
  EXPECT_EQ((*rows)[0][0].AsInt(), 49);
  EXPECT_EQ((*rows)[2][0].AsInt(), 47);
}

TEST_F(MySqlPathTest, LimitOffset) {
  auto rows = Run("SELECT o_id FROM orders ORDER BY o_id LIMIT 5 OFFSET 10");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 5u);
  EXPECT_EQ((*rows)[0][0].AsInt(), 10);
}

TEST_F(MySqlPathTest, DistinctDeduplicates) {
  auto rows = Run("SELECT DISTINCT o_custkey FROM orders");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 10u);
}

TEST_F(MySqlPathTest, UnionAndUnionAll) {
  auto rows = Run(
      "SELECT o_custkey FROM orders WHERE o_id < 2 UNION "
      "SELECT c_id FROM customer WHERE c_id < 2");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 2u);  // {0, 1} deduplicated
  auto rows2 = Run(
      "SELECT o_custkey FROM orders WHERE o_id < 2 UNION ALL "
      "SELECT c_id FROM customer WHERE c_id < 2");
  ASSERT_TRUE(rows2.ok());
  EXPECT_EQ(rows2->size(), 4u);
}

TEST_F(MySqlPathTest, CaseExpression) {
  auto rows = Run(
      "SELECT SUM(CASE WHEN o_priority = 'HIGH' THEN 1 ELSE 0 END), "
      "SUM(CASE WHEN o_priority = 'LOW' THEN 1 ELSE 0 END) FROM orders");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ((*rows)[0][0].AsInt(), 25);
  EXPECT_EQ((*rows)[0][1].AsInt(), 25);
}

TEST_F(MySqlPathTest, GroupWithoutGroupByOnEmptyInput) {
  auto rows = Run("SELECT COUNT(*), SUM(o_id), MIN(o_id) FROM orders "
                  "WHERE o_id > 1000");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0].AsInt(), 0);
  EXPECT_TRUE((*rows)[0][1].is_null());
  EXPECT_TRUE((*rows)[0][2].is_null());
}

TEST_F(MySqlPathTest, DateRangePredicates) {
  auto rows = Run(
      "SELECT COUNT(*) FROM orders WHERE o_date >= DATE '1994-08-23' AND "
      "o_date < DATE '1994-08-23' + INTERVAL 10 DAY");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ((*rows)[0][0].AsInt(), 10);
}

TEST_F(MySqlPathTest, IndexLookupIsUsed) {
  auto rows = Run(
      "SELECT c_name, o_id FROM customer JOIN orders ON o_custkey = c_id "
      "WHERE c_id = 4");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 5u);
  // The o_cust_idx ref access should register index lookups.
  EXPECT_GT(last_ctx_.index_lookups, 0);
}

TEST_F(MySqlPathTest, InListPredicate) {
  auto rows = Run("SELECT COUNT(*) FROM orders WHERE o_custkey IN (1, 3, 5)");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ((*rows)[0][0].AsInt(), 15);
}

TEST_F(MySqlPathTest, BetweenAndLike) {
  auto rows = Run(
      "SELECT COUNT(*) FROM orders WHERE o_id BETWEEN 10 AND 19 AND "
      "o_priority LIKE 'H%'");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ((*rows)[0][0].AsInt(), 5);
}

TEST_F(MySqlPathTest, CountDistinct) {
  auto rows = Run("SELECT COUNT(DISTINCT o_custkey) FROM orders");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ((*rows)[0][0].AsInt(), 10);
}

TEST_F(MySqlPathTest, AvgMinMaxStddev) {
  auto rows = Run(
      "SELECT AVG(l_qty), MIN(l_qty), MAX(l_qty), STDDEV(l_qty) "
      "FROM lineitem");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_NEAR((*rows)[0][0].AsDouble(), 2.97, 0.01);  // mean of i%7 over 200
  EXPECT_EQ((*rows)[0][1].AsInt(), 0);
  EXPECT_EQ((*rows)[0][2].AsInt(), 6);
  EXPECT_GT((*rows)[0][3].AsDouble(), 0.0);
}

TEST_F(MySqlPathTest, BestPositionArrayRendering) {
  auto parsed = ParseSelect(
      "SELECT c_name FROM customer JOIN orders ON c_id = o_custkey "
      "WHERE o_id = 7");
  ASSERT_TRUE(parsed.ok());
  auto bound = BindStatement(catalog_, std::move(*parsed));
  ASSERT_TRUE(bound.ok());
  BoundStatement stmt = std::move(*bound);
  ASSERT_TRUE(PrepareStatement(&stmt).ok());
  auto skel = MySqlOptimize(catalog_, &stmt);
  ASSERT_TRUE(skel.ok()) << skel.status().ToString();
  std::string arrays = RenderBestPositionArrays(**skel);
  EXPECT_NE(arrays.find("block 0:"), std::string::npos);
  EXPECT_NE(arrays.find("orders"), std::string::npos);
  EXPECT_NE(arrays.find("customer"), std::string::npos);
}

}  // namespace
}  // namespace taurus
