#include <gtest/gtest.h>

#include "exec/block_executor.h"
#include "exec/expr_eval.h"
#include "frontend/prepare.h"
#include "myopt/mysql_optimizer.h"
#include "myopt/refine.h"
#include "parser/parser.h"
#include "storage/storage.h"

namespace taurus {
namespace {

// ---------------------------------------------------------------------------
// Expression evaluation semantics (three-valued logic, functions, casts).
// ---------------------------------------------------------------------------

class ExprEvalTest : public ::testing::Test {
 protected:
  /// Evaluates a constant SQL expression through the full pipeline.
  Value Eval(const std::string& expr_sql) {
    auto q = ParseSelect("SELECT " + expr_sql);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    auto bound = BindStatement(catalog_, std::move(*q));
    EXPECT_TRUE(bound.ok()) << bound.status().ToString();
    Frame frame;
    auto v = EvalExpr(*(*bound).block->select_items[0].expr, frame, nullptr,
                      nullptr);
    EXPECT_TRUE(v.ok()) << v.status().ToString();
    return v.ok() ? *v : Value::Null();
  }

  Catalog catalog_;
};

TEST_F(ExprEvalTest, Arithmetic) {
  EXPECT_EQ(Eval("1 + 2 * 3").AsInt(), 7);
  EXPECT_DOUBLE_EQ(Eval("7 / 2").AsDouble(), 3.5);
  EXPECT_EQ(Eval("7 % 3").AsInt(), 1);
  EXPECT_EQ(Eval("-(5 - 9)").AsInt(), 4);
}

TEST_F(ExprEvalTest, DivisionByZeroIsNull) {
  EXPECT_TRUE(Eval("1 / 0").is_null());
  EXPECT_TRUE(Eval("1 % 0").is_null());
}

TEST_F(ExprEvalTest, NullPropagation) {
  EXPECT_TRUE(Eval("1 + NULL").is_null());
  EXPECT_TRUE(Eval("NULL = NULL").is_null());
  EXPECT_TRUE(Eval("NOT NULL").is_null());
  EXPECT_TRUE(Eval("NULL LIKE 'x'").is_null());
}

TEST_F(ExprEvalTest, ThreeValuedAndOr) {
  // FALSE dominates AND; TRUE dominates OR.
  EXPECT_EQ(Eval("NULL AND 0").AsInt(), 0);
  EXPECT_TRUE(Eval("NULL AND 1").is_null());
  EXPECT_EQ(Eval("NULL OR 1").AsInt(), 1);
  EXPECT_TRUE(Eval("NULL OR 0").is_null());
}

TEST_F(ExprEvalTest, IsNullOperators) {
  EXPECT_EQ(Eval("NULL IS NULL").AsInt(), 1);
  EXPECT_EQ(Eval("5 IS NULL").AsInt(), 0);
  EXPECT_EQ(Eval("5 IS NOT NULL").AsInt(), 1);
}

TEST_F(ExprEvalTest, InListThreeValued) {
  EXPECT_EQ(Eval("2 IN (1, 2, 3)").AsInt(), 1);
  EXPECT_EQ(Eval("5 IN (1, 2, 3)").AsInt(), 0);
  EXPECT_TRUE(Eval("5 IN (1, NULL)").is_null());   // unknown
  EXPECT_EQ(Eval("1 IN (1, NULL)").AsInt(), 1);    // found despite NULL
  EXPECT_TRUE(Eval("5 NOT IN (1, NULL)").is_null());
}

TEST_F(ExprEvalTest, CaseEvaluation) {
  EXPECT_EQ(Eval("CASE WHEN 1 = 2 THEN 'a' WHEN 2 = 2 THEN 'b' ELSE 'c' "
                 "END").AsString(),
            "b");
  EXPECT_EQ(Eval("CASE WHEN 1 = 2 THEN 'a' ELSE 'c' END").AsString(), "c");
  EXPECT_TRUE(Eval("CASE WHEN 1 = 2 THEN 'a' END").is_null());
}

TEST_F(ExprEvalTest, StringFunctions) {
  EXPECT_EQ(Eval("SUBSTRING('hello world', 7, 5)").AsString(), "world");
  EXPECT_EQ(Eval("UPPER('abc')").AsString(), "ABC");
  EXPECT_EQ(Eval("LOWER('AbC')").AsString(), "abc");
  EXPECT_EQ(Eval("CONCAT('a', 'b', 'c')").AsString(), "abc");
  EXPECT_EQ(Eval("LENGTH('hello')").AsInt(), 5);
  EXPECT_EQ(Eval("TRIM('  x  ')").AsString(), "x");
}

TEST_F(ExprEvalTest, NumericFunctions) {
  EXPECT_EQ(Eval("ABS(-4)").AsInt(), 4);
  EXPECT_DOUBLE_EQ(Eval("ROUND(2.567, 2)").AsDouble(), 2.57);
  EXPECT_EQ(Eval("MOD(10, 3)").AsInt(), 1);
  EXPECT_EQ(Eval("COALESCE(NULL, NULL, 7)").AsInt(), 7);
  EXPECT_EQ(Eval("IFNULL(NULL, 3)").AsInt(), 3);
  EXPECT_TRUE(Eval("NULLIF(4, 4)").is_null());
  EXPECT_EQ(Eval("IF(1 < 2, 'y', 'n')").AsString(), "y");
}

TEST_F(ExprEvalTest, DateFunctions) {
  EXPECT_EQ(Eval("YEAR(DATE '1997-03-01')").AsInt(), 1997);
  EXPECT_EQ(Eval("MONTH(DATE '1997-03-01')").AsInt(), 3);
  EXPECT_EQ(Eval("DAY(DATE '1997-03-09')").AsInt(), 9);
  EXPECT_EQ(Eval("DATE '1997-01-31' + INTERVAL 1 MONTH").ToString(),
            "1997-02-28");
  EXPECT_EQ(Eval("DATE '1997-03-05' - INTERVAL 10 DAY").ToString(),
            "1997-02-23");
}

TEST_F(ExprEvalTest, Casts) {
  EXPECT_EQ(Eval("CAST('42' AS INT)").AsInt(), 42);
  EXPECT_EQ(Eval("CAST(3.9 AS INT)").AsInt(), 3);
  EXPECT_EQ(Eval("CAST(7 AS CHAR(10))").AsString(), "7");
  EXPECT_EQ(Eval("CAST('1995-06-17' AS DATE)").ToString(), "1995-06-17");
}

TEST_F(ExprEvalTest, BetweenAndLike) {
  EXPECT_EQ(Eval("5 BETWEEN 1 AND 10").AsInt(), 1);
  EXPECT_EQ(Eval("15 NOT BETWEEN 1 AND 10").AsInt(), 1);
  EXPECT_EQ(Eval("'hello' LIKE 'he%'").AsInt(), 1);
  EXPECT_EQ(Eval("'hello' NOT LIKE '%z%'").AsInt(), 1);
}

TEST_F(ExprEvalTest, ConstFolding) {
  auto q = ParseSelect("SELECT 1 + 2");
  auto bound = BindStatement(catalog_, std::move(*q));
  ASSERT_TRUE(bound.ok());
  EXPECT_TRUE(IsConstExpr(*(*bound).block->select_items[0].expr));
  auto v = EvalConstExpr(*(*bound).block->select_items[0].expr);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt(), 3);
}

// ---------------------------------------------------------------------------
// Executor behaviors that need precise coverage beyond the e2e suites.
// ---------------------------------------------------------------------------

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto t = catalog_.CreateTable(
        "t", {{"a", TypeId::kLong, 0, false},
              {"b", TypeId::kLong, 0, true},
              {"s", TypeId::kVarchar, 10, true}});
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(catalog_.AddIndex("t", {"t_pk", {0}, true, true}).ok());
    TableData* data = storage_.CreateTable(*t);
    for (int i = 0; i < 20; ++i) {
      data->Append({Value::Int(i),
                    i % 4 == 0 ? Value::Null() : Value::Int(i % 5),
                    i % 3 == 0 ? Value::Null()
                               : Value::Str("s" + std::to_string(i % 4))});
    }
    data->BuildIndexes();
    catalog_.SetStats((*t)->id, ComputeTableStats(*data));

    auto u = catalog_.CreateTable("u", {{"x", TypeId::kLong, 0, false}});
    ASSERT_TRUE(u.ok());
    TableData* ud = storage_.CreateTable(*u);
    for (int i = 0; i < 5; ++i) ud->Append({Value::Int(i * 2)});
    ud->BuildIndexes();
    catalog_.SetStats((*u)->id, ComputeTableStats(*ud));
  }

  Result<std::vector<Row>> Run(const std::string& sql) {
    auto parsed = ParseSelect(sql);
    if (!parsed.ok()) return parsed.status();
    auto bound = BindStatement(catalog_, std::move(*parsed));
    if (!bound.ok()) return bound.status();
    BoundStatement stmt = std::move(*bound);
    TAURUS_RETURN_IF_ERROR(PrepareStatement(&stmt));
    auto skel = MySqlOptimize(catalog_, &stmt);
    if (!skel.ok()) return skel.status();
    auto compiled = RefinePlan(std::move(stmt), **skel, catalog_);
    if (!compiled.ok()) return compiled.status();
    query_ = std::move(*compiled);
    return ExecuteQuery(query_.get(), storage_, &ctx_);
  }

  Catalog catalog_;
  Storage storage_;
  std::unique_ptr<CompiledQuery> query_;
  ExecContext ctx_;
};

TEST_F(ExecutorTest, NullsNeverJoinOnEquality) {
  // b is NULL for multiples of 4; NULL = x must not match.
  auto rows = Run("SELECT COUNT(*) FROM t, u WHERE t.b = u.x");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  // b = i%5 where i%4 != 0; u has {0,2,4,6,8}. Matching b values are
  // {0, 2, 4}, three source rows each: 9 join matches, and the NULL b
  // rows (i % 4 == 0) never match.
  EXPECT_EQ((*rows)[0][0].AsInt(), 9);
}

TEST_F(ExecutorTest, GroupByNullGroupsTogether) {
  auto rows = Run("SELECT b, COUNT(*) FROM t GROUP BY b ORDER BY b");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  // NULL forms its own group and sorts first.
  EXPECT_TRUE((*rows)[0][0].is_null());
  EXPECT_EQ((*rows)[0][1].AsInt(), 5);  // i = 0,4,8,12,16
}

TEST_F(ExecutorTest, AggregatesIgnoreNulls) {
  auto rows = Run("SELECT COUNT(b), COUNT(*), SUM(b), AVG(b) FROM t");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ((*rows)[0][0].AsInt(), 15);  // non-NULL b
  EXPECT_EQ((*rows)[0][1].AsInt(), 20);
  EXPECT_FALSE((*rows)[0][2].is_null());
  double avg = (*rows)[0][3].AsDouble();
  EXPECT_NEAR(avg, (*rows)[0][2].AsDouble() / 15.0, 1e-9);
}

TEST_F(ExecutorTest, OrderByNullsFirstAscLastDesc) {
  auto asc = Run("SELECT b FROM t ORDER BY b LIMIT 1");
  ASSERT_TRUE(asc.ok());
  EXPECT_TRUE((*asc)[0][0].is_null());
  auto desc = Run("SELECT b FROM t ORDER BY b DESC LIMIT 1");
  ASSERT_TRUE(desc.ok());
  EXPECT_FALSE((*desc)[0][0].is_null());
}

TEST_F(ExecutorTest, StableSortPreservesTieOrder) {
  auto rows = Run("SELECT a, b FROM t WHERE b IS NOT NULL ORDER BY b");
  ASSERT_TRUE(rows.ok());
  // Within equal b, rows keep scan (a) order because the sort is stable.
  for (size_t i = 1; i < rows->size(); ++i) {
    if (Value::Compare((*rows)[i - 1][1], (*rows)[i][1]) == 0) {
      EXPECT_LT((*rows)[i - 1][0].AsInt(), (*rows)[i][0].AsInt());
    }
  }
}

TEST_F(ExecutorTest, LimitShortCircuitsScan) {
  auto rows = Run("SELECT a FROM t LIMIT 3");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);
  EXPECT_LT(ctx_.rows_scanned, 20);  // early exit before full scan
}

TEST_F(ExecutorTest, SubplanCacheForNonCorrelated) {
  auto rows = Run(
      "SELECT a FROM t WHERE a > (SELECT AVG(x) FROM u) ORDER BY a");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ((*rows)[0][0].AsInt(), 5);  // avg(u.x) = 4
  // The u-scan ran once (5 rows), not once per t row.
  EXPECT_LE(ctx_.rows_scanned, 20 + 5);
}

TEST_F(ExecutorTest, CorrelatedRebindCounter) {
  auto rows = Run(
      "SELECT COUNT(*) FROM t WHERE b = (SELECT MAX(t2.b) FROM t t2 "
      "WHERE t2.a < t.a)");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_GE((*rows)[0][0].AsInt(), 0);
}

TEST_F(ExecutorTest, ScalarSubqueryMultipleRowsIsError) {
  auto rows = Run("SELECT (SELECT x FROM u) FROM t");
  EXPECT_EQ(rows.status().code(), StatusCode::kExecutionError);
}

TEST_F(ExecutorTest, EmptyScalarSubqueryIsNull) {
  auto rows = Run("SELECT (SELECT x FROM u WHERE x > 100) FROM t LIMIT 1");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_TRUE((*rows)[0][0].is_null());
}

TEST_F(ExecutorTest, StreamAndHashAggAgree) {
  // Force both modes through the plan and compare.
  auto parsed = ParseSelect("SELECT b, COUNT(*), SUM(a) FROM t GROUP BY b");
  auto bound = BindStatement(catalog_, std::move(*parsed));
  ASSERT_TRUE(bound.ok());
  BoundStatement stmt = std::move(*bound);
  ASSERT_TRUE(PrepareStatement(&stmt).ok());
  auto skel = MySqlOptimize(catalog_, &stmt);
  ASSERT_TRUE(skel.ok());
  (*skel)->stream_agg = false;
  auto hash_q = RefinePlan(std::move(stmt), **skel, catalog_);
  ASSERT_TRUE(hash_q.ok());
  auto hash_rows = ExecuteQuery(hash_q->get(), storage_);
  ASSERT_TRUE(hash_rows.ok());

  auto parsed2 = ParseSelect("SELECT b, COUNT(*), SUM(a) FROM t GROUP BY b");
  auto bound2 = BindStatement(catalog_, std::move(*parsed2));
  BoundStatement stmt2 = std::move(*bound2);
  ASSERT_TRUE(PrepareStatement(&stmt2).ok());
  auto skel2 = MySqlOptimize(catalog_, &stmt2);
  ASSERT_TRUE(skel2.ok());
  (*skel2)->stream_agg = true;
  auto stream_q = RefinePlan(std::move(stmt2), **skel2, catalog_);
  ASSERT_TRUE(stream_q.ok());
  EXPECT_EQ((*stream_q)->root->agg_mode, AggMode::kStream);
  auto stream_rows = ExecuteQuery(stream_q->get(), storage_);
  ASSERT_TRUE(stream_rows.ok());
  EXPECT_EQ(hash_rows->size(), stream_rows->size());
}

TEST_F(ExecutorTest, OwnedFrameRoundTrip) {
  Row r1{Value::Int(1)};
  Row r2{Value::Str("x")};
  Frame f{&r1, nullptr, &r2};
  OwnedFrame owned(f);
  Frame view = owned.View();
  ASSERT_EQ(view.size(), 3u);
  EXPECT_EQ((*view[0])[0].AsInt(), 1);
  EXPECT_EQ(view[1], nullptr);
  EXPECT_EQ((*view[2])[0].AsString(), "x");
}

}  // namespace
}  // namespace taurus
