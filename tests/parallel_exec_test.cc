// Morsel-driven parallel executor: result equivalence against the serial
// executor across every TPC-H and TPC-DS query on both optimizer paths,
// determinism across worker counts, counter-shard merging, and budget kills
// (row cap and deadline) under parallelism with clean MySQL-path fallback.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "engine/database.h"
#include "workloads/tpcds.h"
#include "workloads/tpch.h"

namespace taurus {
namespace {

void SortRows(std::vector<Row>* rows) {
  std::sort(rows->begin(), rows->end(), [](const Row& a, const Row& b) {
    for (size_t i = 0; i < a.size(); ++i) {
      int c = Value::Compare(a[i], b[i]);
      if (c != 0) return c < 0;
    }
    return false;
  });
}

std::string RowsText(std::vector<Row> rows) {
  SortRows(&rows);
  std::string out;
  for (const Row& r : rows) out += RowToString(r) + "\n";
  return out;
}

/// Serial-vs-parallel comparison: exact for everything except doubles,
/// which get a relative tolerance. Parallel double sums accumulate in
/// per-morsel partial order rather than global row order, so results can
/// differ from serial in the last few ULPs (FP addition isn't associative).
::testing::AssertionResult RowSetsMatch(std::vector<Row> expect,
                                        std::vector<Row> actual) {
  if (expect.size() != actual.size()) {
    return ::testing::AssertionFailure()
           << "row count " << actual.size() << " != " << expect.size();
  }
  SortRows(&expect);
  SortRows(&actual);
  for (size_t i = 0; i < expect.size(); ++i) {
    if (expect[i].size() != actual[i].size()) {
      return ::testing::AssertionFailure() << "column count mismatch";
    }
    for (size_t c = 0; c < expect[i].size(); ++c) {
      const Value& e = expect[i][c];
      const Value& a = actual[i][c];
      if (e.kind() == Value::Kind::kDouble &&
          a.kind() == Value::Kind::kDouble) {
        double tol = 1e-6 * std::max(1.0, std::fabs(e.AsDouble()));
        if (std::fabs(e.AsDouble() - a.AsDouble()) > tol) {
          return ::testing::AssertionFailure()
                 << "row " << i << " col " << c << ": " << a.AsDouble()
                 << " != " << e.AsDouble();
        }
      } else if (Value::Compare(e, a) != 0) {
        return ::testing::AssertionFailure()
               << "row " << i << " col " << c << ": " << a.ToString()
               << " != " << e.ToString();
      }
    }
  }
  return ::testing::AssertionSuccess();
}

/// Forces morsel parallelism onto the tiny test tables: small morsels and
/// no driver-cardinality floor.
void ConfigureWorkers(Database* db, int workers) {
  db->exec_config() = ExecutorConfig();
  db->exec_config().parallel_workers = workers;
  if (workers > 1) {
    db->exec_config().morsel_rows = 64;
    db->exec_config().parallel_min_driver_rows = 0;
  }
}

/// Runs every query of a workload on `path` serially, then with each
/// parallel worker count, asserting row-set equivalence (tolerant vs the
/// serial baseline, exact across worker counts). Returns the number of
/// (query, workers) runs that actually engaged a parallel pipeline.
int CheckWorkload(Database* db, const std::vector<std::string>& queries,
                  OptimizerPath path, const char* tag) {
  int engaged = 0;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    SCOPED_TRACE(std::string(tag) + " query #" + std::to_string(qi + 1));
    ConfigureWorkers(db, 1);
    auto serial = db->Query(queries[qi], path);
    std::string parallel_text;  // exact-equality reference across counts
    for (int workers : {2, 4, 7}) {
      SCOPED_TRACE("workers=" + std::to_string(workers));
      ConfigureWorkers(db, workers);
      auto par = db->Query(queries[qi], path);
      if (!serial.ok()) {
        // A query the path can't run must fail identically in parallel.
        EXPECT_FALSE(par.ok());
        if (!par.ok()) {
          EXPECT_EQ(par.status().code(), serial.status().code());
        }
        continue;
      }
      EXPECT_TRUE(par.ok()) << par.status().ToString();
      if (!par.ok()) continue;
      EXPECT_TRUE(RowSetsMatch(serial->rows, par->rows));
      EXPECT_LE(par->parallel_workers_used, workers);
      if (par->parallel_pipelines > 0) {
        ++engaged;
        EXPECT_GE(par->parallel_workers_used, 2);
        // Morsel boundaries (not worker count) define the merge order, so
        // any two parallel runs agree bitwise — doubles included.
        std::string text = RowsText(par->rows);
        if (parallel_text.empty()) {
          parallel_text = text;
        } else {
          EXPECT_EQ(text, parallel_text);
        }
      }
    }
  }
  ConfigureWorkers(db, 1);
  return engaged;
}

// ---------------------------------------------------------------------------
// TPC-H
// ---------------------------------------------------------------------------

class TpchParallelTest : public ::testing::Test {
 protected:
  static Database* db() {
    static Database* instance = [] {
      auto* d = new Database();
      auto st = SetupTpch(d, 0.002);
      EXPECT_TRUE(st.ok()) << st.ToString();
      return d;
    }();
    return instance;
  }
};

TEST_F(TpchParallelTest, MySqlPathMatchesSerial) {
  int engaged = CheckWorkload(db(), TpchQueries(), OptimizerPath::kMySql,
                              "tpch/mysql");
  // lineitem-driven scan/agg pipelines (Q1, Q6, ...) must actually go wide.
  EXPECT_GT(engaged, 0);
}

TEST_F(TpchParallelTest, OrcaPathMatchesSerial) {
  int engaged =
      CheckWorkload(db(), TpchQueries(), OptimizerPath::kOrca, "tpch/orca");
  EXPECT_GT(engaged, 0);
}

TEST_F(TpchParallelTest, ShardCountersMergeToSerialTotals) {
  const std::string& q6 = TpchQueries()[5];  // single-table scan aggregate
  ConfigureWorkers(db(), 1);
  auto serial = db()->Query(q6, OptimizerPath::kMySql);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  ConfigureWorkers(db(), 4);
  auto par = db()->Query(q6, OptimizerPath::kMySql);
  ASSERT_TRUE(par.ok()) << par.status().ToString();
  ASSERT_GT(par->parallel_pipelines, 0);
  // Every lineitem row is charged exactly once, whichever shard scans it.
  EXPECT_EQ(par->rows_scanned, serial->rows_scanned);
  EXPECT_EQ(par->index_lookups, serial->index_lookups);
  ConfigureWorkers(db(), 1);
}

TEST_F(TpchParallelTest, ParallelRunsAreDeterministic) {
  const std::string& q1 = TpchQueries()[0];
  ConfigureWorkers(db(), 4);
  auto a = db()->Query(q1, OptimizerPath::kMySql);
  auto b = db()->Query(q1, OptimizerPath::kMySql);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_GT(a->parallel_pipelines, 0);
  EXPECT_EQ(RowsText(a->rows), RowsText(b->rows));
  ConfigureWorkers(db(), 1);
}

TEST_F(TpchParallelTest, DefaultGateKeepsSmallTablesSerial) {
  // Default knobs: driver-cardinality floor (32768) far above these tables.
  db()->exec_config() = ExecutorConfig();
  db()->exec_config().parallel_workers = 4;
  auto res = db()->Query(TpchQueries()[0], OptimizerPath::kMySql);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->parallel_pipelines, 0);
  EXPECT_EQ(res->parallel_workers_used, 1);
  ConfigureWorkers(db(), 1);
}

// ---------------------------------------------------------------------------
// TPC-DS
// ---------------------------------------------------------------------------

class TpcdsParallelTest : public ::testing::Test {
 protected:
  static Database* db() {
    static Database* instance = [] {
      auto* d = new Database();
      auto st = SetupTpcds(d, 0.0001);
      EXPECT_TRUE(st.ok()) << st.ToString();
      d->router_config().complex_query_threshold = 2;
      return d;
    }();
    return instance;
  }
};

TEST_F(TpcdsParallelTest, MySqlPathMatchesSerial) {
  int engaged = CheckWorkload(db(), TpcdsQueries(), OptimizerPath::kMySql,
                              "tpcds/mysql");
  EXPECT_GT(engaged, 0);
}

TEST_F(TpcdsParallelTest, OrcaPathMatchesSerial) {
  int engaged = CheckWorkload(db(), TpcdsQueries(), OptimizerPath::kOrca,
                              "tpcds/orca");
  EXPECT_GT(engaged, 0);
}

// ---------------------------------------------------------------------------
// Budget kills under parallelism
// ---------------------------------------------------------------------------

/// Own engine per test: budget knobs are engine-global.
class ParallelBudgetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>();
    ASSERT_TRUE(SetupTpch(db_.get(), 0.002).ok());
    // Route every join query through the Orca detour; compile fresh so the
    // kill path is exercised, not a cached skeleton decision.
    db_->router_config().complex_query_threshold = 1;
    db_->plan_cache_config().enable = false;
    ConfigureWorkers(db_.get(), 4);
  }

  std::unique_ptr<Database> db_;
};

TEST_F(ParallelBudgetTest, RowBudgetKillFallsBackToMatchingResult) {
  const std::string& sql = TpchQueries()[5];  // Q6: eligible scan-aggregate
  auto baseline = db_->Query(sql, OptimizerPath::kMySql);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  ASSERT_GT(baseline->rows_scanned, 5);

  // The cap trips deterministically at the same global row count no matter
  // how the scan was sharded: every worker charges one shared atomic.
  db_->resource_budget().max_exec_rows = 5;
  auto res = db_->Query(sql, OptimizerPath::kAuto);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_TRUE(res->fell_back);
  EXPECT_FALSE(res->used_orca);
  EXPECT_NE(res->fallback_reason.find("row budget"), std::string::npos);
  EXPECT_EQ(db_->optimizer_health().exec_budget_kills, 1);
  EXPECT_EQ(RowsText(res->rows), RowsText(baseline->rows));

  auto forced = db_->Query(sql, OptimizerPath::kOrca);
  ASSERT_FALSE(forced.ok());
  EXPECT_EQ(forced.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(ParallelBudgetTest, DeadlineKillFallsBackToMatchingResult) {
  const std::string& sql = TpchQueries()[5];
  auto baseline = db_->Query(sql, OptimizerPath::kMySql);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  // Thread-safe injected clock (shards poll it concurrently): each reading
  // jumps 50 ms, so the 10 ms deadline trips on the first poll after any
  // context charges 256 rows — guaranteed, since lineitem has thousands.
  auto ticks = std::make_shared<std::atomic<int64_t>>(0);
  db_->resource_budget().clock_ms = [ticks]() {
    return static_cast<double>(ticks->fetch_add(1) + 1) * 50.0;
  };
  db_->resource_budget().exec_deadline_ms = 10.0;

  auto res = db_->Query(sql, OptimizerPath::kAuto);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_TRUE(res->fell_back);
  EXPECT_NE(res->fallback_reason.find("deadline"), std::string::npos);
  EXPECT_EQ(db_->optimizer_health().exec_budget_kills, 1);
  EXPECT_EQ(RowsText(res->rows), RowsText(baseline->rows));
}

// ---------------------------------------------------------------------------
// Thread pool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, RunsFullBatchAndClampsWidth) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3);
  std::atomic<int> ran{0};
  EXPECT_TRUE(pool.TryRun(100, [&](int w) {
    EXPECT_LT(w, 3);
    ++ran;
  }));
  EXPECT_EQ(ran.load(), 3);
  // The pool is reusable; narrower batches leave the other workers idle.
  ran = 0;
  EXPECT_TRUE(pool.TryRun(2, [&](int) { ++ran; }));
  EXPECT_EQ(ran.load(), 2);
}

TEST(ThreadPoolTest, RefusesNestedBatches) {
  ThreadPool pool(2);
  std::atomic<int> refused{0};
  EXPECT_TRUE(pool.TryRun(2, [&](int) {
    if (!pool.TryRun(1, [](int) {})) ++refused;
  }));
  // Every in-flight worker that tried to reenter was turned away.
  EXPECT_EQ(refused.load(), 2);
}

TEST(ThreadPoolTest, HardwareWorkersIsPositive) {
  EXPECT_GE(ThreadPool::HardwareWorkers(), 1);
}

}  // namespace
}  // namespace taurus
