#include <gtest/gtest.h>

#include "frontend/binder.h"
#include "parser/ast_util.h"
#include "parser/parser.h"

namespace taurus {
namespace {

class BinderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_
                    .CreateTable("orders",
                                 {{"o_orderkey", TypeId::kLong, 0, false},
                                  {"o_custkey", TypeId::kLong, 0, false},
                                  {"o_orderdate", TypeId::kDate, 0, false},
                                  {"o_orderpriority", TypeId::kVarchar, 15,
                                   false}})
                    .ok());
    ASSERT_TRUE(catalog_
                    .CreateTable("lineitem",
                                 {{"l_orderkey", TypeId::kLong, 0, false},
                                  {"l_quantity", TypeId::kNewDecimal, 0, false},
                                  {"l_comment", TypeId::kVarchar, 44, true}})
                    .ok());
  }

  Result<BoundStatement> Bind(const std::string& sql) {
    auto q = ParseSelect(sql);
    if (!q.ok()) return q.status();
    return BindStatement(catalog_, std::move(*q));
  }

  Catalog catalog_;
};

TEST_F(BinderTest, ResolvesUnqualifiedColumns) {
  auto b = Bind("SELECT o_orderkey FROM orders");
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  const Expr& e = *b->block->select_items[0].expr;
  EXPECT_EQ(e.ref_id, 0);
  EXPECT_EQ(e.column_idx, 0);
  EXPECT_EQ(e.result_type, TypeId::kLong);
  EXPECT_FALSE(e.column_nullable);
}

TEST_F(BinderTest, ResolvesQualifiedAndAliased) {
  auto b = Bind("SELECT o.o_custkey FROM orders o");
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(b->block->select_items[0].expr->column_idx, 1);
}

TEST_F(BinderTest, UnknownTableAndColumn) {
  EXPECT_EQ(Bind("SELECT x FROM nope").status().code(),
            StatusCode::kBindError);
  EXPECT_EQ(Bind("SELECT nope FROM orders").status().code(),
            StatusCode::kBindError);
}

TEST_F(BinderTest, AmbiguousColumnRejected) {
  auto b = Bind("SELECT l_orderkey FROM lineitem l1, lineitem l2");
  EXPECT_EQ(b.status().code(), StatusCode::kBindError);
}

TEST_F(BinderTest, StarExpansion) {
  auto b = Bind("SELECT * FROM orders");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->block->select_items.size(), 4u);
  auto b2 = Bind("SELECT lineitem.* FROM orders, lineitem");
  ASSERT_TRUE(b2.ok());
  EXPECT_EQ(b2->block->select_items.size(), 3u);
}

TEST_F(BinderTest, RefIdsAreGloballyUnique) {
  auto b = Bind(
      "SELECT o_orderkey FROM orders WHERE EXISTS "
      "(SELECT 1 FROM lineitem WHERE l_orderkey = o_orderkey)");
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(b->num_refs, 2);
  EXPECT_EQ(b->num_blocks, 2);
  ASSERT_EQ(b->leaves.size(), 2u);
  EXPECT_NE(b->leaves[0]->ref_id, b->leaves[1]->ref_id);
}

TEST_F(BinderTest, CorrelatedReferenceResolvesToOuter) {
  auto b = Bind(
      "SELECT o_orderkey FROM orders WHERE EXISTS "
      "(SELECT 1 FROM lineitem WHERE l_orderkey = o_orderkey)");
  ASSERT_TRUE(b.ok());
  const Expr& exists = *b->block->where;
  const Expr& cond = *exists.subquery->where;
  // One side must reference ref 0 (orders), the other ref 1 (lineitem).
  int refs = cond.children[0]->ref_id + cond.children[1]->ref_id;
  EXPECT_EQ(refs, 1);
}

TEST_F(BinderTest, OwnerPointersSet) {
  auto b = Bind("SELECT o_orderkey FROM orders, lineitem");
  ASSERT_TRUE(b.ok());
  for (const TableRef* leaf : b->leaves) {
    EXPECT_EQ(leaf->owner, b->block.get());
  }
}

TEST_F(BinderTest, DerivedTableColumns) {
  auto b = Bind(
      "SELECT d.total FROM (SELECT o_custkey, COUNT(*) AS total FROM orders "
      "GROUP BY o_custkey) d");
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  const Expr& e = *b->block->select_items[0].expr;
  EXPECT_EQ(e.column_idx, 1);
  EXPECT_EQ(e.result_type, TypeId::kLongLong);
}

TEST_F(BinderTest, DerivedSynthesizedNames) {
  auto b = Bind("SELECT name_exp_1 FROM (SELECT COUNT(*) FROM orders) d");
  ASSERT_TRUE(b.ok()) << b.status().ToString();
}

TEST_F(BinderTest, CteExpandsToDerivedPerConsumer) {
  auto b = Bind(
      "WITH big AS (SELECT o_custkey FROM orders) "
      "SELECT b1.o_custkey FROM big b1, big b2");
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  auto leaves = b->block->Leaves();
  ASSERT_EQ(leaves.size(), 2u);
  // Each consumer got its own derived copy (multiple-producer model).
  EXPECT_EQ(leaves[0]->kind, TableRef::Kind::kDerived);
  EXPECT_TRUE(leaves[0]->from_cte);
  EXPECT_EQ(leaves[0]->cte_name, "big");
  EXPECT_NE(leaves[0]->derived.get(), leaves[1]->derived.get());
  // Two CTE copies + outer block = 3 blocks, 4 leaves total (2 derived +
  // the orders leaf inside each copy).
  EXPECT_EQ(b->num_blocks, 3);
  EXPECT_EQ(b->num_refs, 4);
}

TEST_F(BinderTest, OrderByOrdinalAndAlias) {
  auto b = Bind(
      "SELECT o_custkey, COUNT(*) AS cnt FROM orders GROUP BY o_custkey "
      "ORDER BY cnt DESC, 1");
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  ASSERT_EQ(b->block->order_by.size(), 2u);
  EXPECT_EQ(b->block->order_by[0].expr->kind, Expr::Kind::kAgg);
  EXPECT_EQ(b->block->order_by[1].expr->kind, Expr::Kind::kColumnRef);
}

TEST_F(BinderTest, GroupByOrdinal) {
  auto b = Bind("SELECT o_orderpriority, COUNT(*) FROM orders GROUP BY 1");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->block->group_by[0]->kind, Expr::Kind::kColumnRef);
}

TEST_F(BinderTest, HavingAliasResolution) {
  auto b = Bind(
      "SELECT o_custkey, COUNT(*) AS cnt FROM orders GROUP BY o_custkey "
      "HAVING cnt > 3");
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_TRUE(ContainsAggregate(*b->block->having));
}

TEST_F(BinderTest, TypeDerivation) {
  auto b = Bind(
      "SELECT l_quantity + 1, l_quantity * l_quantity, o_orderkey + 1, "
      "SUM(o_orderkey), AVG(l_quantity), o_orderdate < DATE '1995-01-01' "
      "FROM orders, lineitem");
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  auto& items = b->block->select_items;
  EXPECT_EQ(items[0].expr->result_type, TypeId::kDouble);
  EXPECT_EQ(items[1].expr->result_type, TypeId::kDouble);
  EXPECT_EQ(items[2].expr->result_type, TypeId::kLongLong);
  EXPECT_EQ(items[3].expr->result_type, TypeId::kLongLong);
  EXPECT_EQ(items[4].expr->result_type, TypeId::kDouble);
  EXPECT_EQ(items[5].expr->result_type, TypeId::kTiny);
}

TEST_F(BinderTest, ScalarSubqueryArityEnforced) {
  EXPECT_EQ(Bind("SELECT (SELECT o_orderkey, o_custkey FROM orders) FROM "
                 "lineitem")
                .status()
                .code(),
            StatusCode::kBindError);
}

TEST_F(BinderTest, UnionArityEnforced) {
  EXPECT_EQ(Bind("SELECT o_orderkey FROM orders UNION SELECT l_orderkey, "
                 "l_quantity FROM lineitem")
                .status()
                .code(),
            StatusCode::kBindError);
}

TEST_F(BinderTest, OutputColumnNames) {
  auto b = Bind("SELECT o_orderkey, COUNT(*) AS cnt, 1 + 1 FROM orders");
  ASSERT_TRUE(b.ok());
  auto names = OutputColumnNames(*b->block);
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "o_orderkey");
  EXPECT_EQ(names[1], "cnt");
  EXPECT_EQ(names[2], "name_exp_3");
}

TEST_F(BinderTest, ExprUtilities) {
  auto b = Bind("SELECT o_orderkey + 1 FROM orders WHERE o_custkey = 5");
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(ExprEquals(*b->block->select_items[0].expr,
                         *b->block->select_items[0].expr->Clone()));
  std::vector<bool> refs(static_cast<size_t>(b->num_refs), false);
  CollectReferencedRefs(*b->block->where, &refs);
  EXPECT_TRUE(refs[0]);
}

}  // namespace
}  // namespace taurus
