#include <gtest/gtest.h>

#include "bridge/decorrelate.h"
#include "frontend/prepare.h"
#include "parser/ast_util.h"
#include "parser/parser.h"
#include "storage/storage.h"

namespace taurus {
namespace {

class DecorrelateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto part = catalog_.CreateTable(
        "part", {{"p_partkey", TypeId::kLong, 0, false},
                 {"p_brand", TypeId::kVarchar, 10, false}});
    ASSERT_TRUE(part.ok());
    auto li = catalog_.CreateTable(
        "lineitem", {{"l_partkey", TypeId::kLong, 0, false},
                     {"l_quantity", TypeId::kLong, 0, false},
                     {"l_price", TypeId::kDouble, 0, false}});
    ASSERT_TRUE(li.ok());
    ASSERT_TRUE(
        catalog_.AddIndex("lineitem", {"li_pk_idx", {0}, false, false}).ok());
  }

  Result<BoundStatement> Prep(const std::string& sql) {
    auto parsed = ParseSelect(sql);
    if (!parsed.ok()) return parsed.status();
    auto bound = BindStatement(catalog_, std::move(*parsed));
    if (!bound.ok()) return bound.status();
    BoundStatement stmt = std::move(*bound);
    TAURUS_RETURN_IF_ERROR(PrepareStatement(&stmt));
    return stmt;
  }

  Catalog catalog_;
};

TEST_F(DecorrelateTest, Q17PatternConverts) {
  auto stmt = Prep(
      "SELECT SUM(l_price) FROM lineitem, part WHERE p_partkey = l_partkey "
      "AND l_quantity < (SELECT 0.2 * AVG(l2.l_quantity) FROM lineitem l2 "
      "WHERE l2.l_partkey = p_partkey)");
  ASSERT_TRUE(stmt.ok());
  int refs_before = stmt->num_refs;
  auto n = DecorrelateScalarSubqueries(&*stmt);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(*n, 1);
  // A derived leaf was added to the outer FROM and registered.
  EXPECT_EQ(stmt->num_refs, refs_before + 1);
  auto leaves = stmt->block->Leaves();
  const TableRef* derived = nullptr;
  for (const TableRef* leaf : leaves) {
    if (leaf->kind == TableRef::Kind::kDerived) derived = leaf;
  }
  ASSERT_NE(derived, nullptr);
  EXPECT_EQ(derived->alias.rfind("derived_", 0), 0u);
  // The derived block groups by the correlation key.
  EXPECT_EQ(derived->derived->group_by.size(), 1u);
  EXPECT_EQ(derived->derived->select_items.size(), 2u);
  EXPECT_EQ(derived->derived->select_items[0].alias, "dkey");
  EXPECT_EQ(derived->derived->select_items[1].alias, "dagg");
  // No scalar subquery remains in the WHERE.
  ASSERT_NE(stmt->block->where, nullptr);
  EXPECT_FALSE(ContainsSubquery(*stmt->block->where));
}

TEST_F(DecorrelateTest, CountSubqueryNotConverted) {
  // COUNT over an empty group yields 0 (not NULL): the count bug makes
  // this conversion illegal.
  auto stmt = Prep(
      "SELECT 1 FROM part WHERE 3 < (SELECT COUNT(*) FROM lineitem "
      "WHERE l_partkey = p_partkey)");
  ASSERT_TRUE(stmt.ok());
  auto n = DecorrelateScalarSubqueries(&*stmt);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0);
}

TEST_F(DecorrelateTest, NonCorrelatedSubqueryNotConverted) {
  // Cached subplans already handle this; no rewrite needed.
  auto stmt = Prep(
      "SELECT 1 FROM part WHERE p_partkey < (SELECT AVG(l_partkey) FROM "
      "lineitem)");
  ASSERT_TRUE(stmt.ok());
  auto n = DecorrelateScalarSubqueries(&*stmt);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0);
}

TEST_F(DecorrelateTest, TwoCorrelationConjunctsNotConverted) {
  auto stmt = Prep(
      "SELECT 1 FROM part, lineitem WHERE l_quantity < "
      "(SELECT AVG(l2.l_quantity) FROM lineitem l2 WHERE "
      "l2.l_partkey = p_partkey AND l2.l_quantity = lineitem.l_quantity)");
  ASSERT_TRUE(stmt.ok());
  auto n = DecorrelateScalarSubqueries(&*stmt);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 0);
}

TEST_F(DecorrelateTest, SubqueryOnLeftSideCommutes) {
  auto stmt = Prep(
      "SELECT 1 FROM part, lineitem WHERE (SELECT MAX(l2.l_quantity) FROM "
      "lineitem l2 WHERE l2.l_partkey = p_partkey) > l_quantity");
  ASSERT_TRUE(stmt.ok());
  auto n = DecorrelateScalarSubqueries(&*stmt);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 1);
  // Rewritten predicate compares the probe against dagg with the commuted
  // operator: l_quantity < dagg.
  std::vector<const Expr*> conjs;
  SplitConjuncts(stmt->block->where.get(), &conjs);
  bool found_cmp = false;
  for (const Expr* c : conjs) {
    if (c->kind == Expr::Kind::kBinary && c->bop == BinaryOp::kLt) {
      found_cmp = true;
    }
  }
  EXPECT_TRUE(found_cmp);
}

TEST_F(DecorrelateTest, LeavesStayConsistent) {
  auto stmt = Prep(
      "SELECT SUM(l_price) FROM lineitem, part WHERE p_partkey = l_partkey "
      "AND l_quantity < (SELECT AVG(l2.l_quantity) FROM lineitem l2 "
      "WHERE l2.l_partkey = p_partkey)");
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE(DecorrelateScalarSubqueries(&*stmt).ok());
  ASSERT_EQ(stmt->leaves.size(), static_cast<size_t>(stmt->num_refs));
  for (int r = 0; r < stmt->num_refs; ++r) {
    ASSERT_NE(stmt->leaves[static_cast<size_t>(r)], nullptr) << r;
    EXPECT_EQ(stmt->leaves[static_cast<size_t>(r)]->ref_id, r);
    EXPECT_NE(stmt->leaves[static_cast<size_t>(r)]->owner, nullptr);
  }
}

}  // namespace
}  // namespace taurus
