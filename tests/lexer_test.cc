#include <gtest/gtest.h>

#include "parser/lexer.h"

namespace taurus {
namespace {

TEST(LexerTest, BasicTokens) {
  auto toks = Tokenize("SELECT a, b FROM t WHERE x >= 10;");
  ASSERT_TRUE(toks.ok());
  ASSERT_EQ(toks->size(), 12u);  // incl. kEnd
  EXPECT_EQ((*toks)[0].kind, TokenKind::kIdent);
  EXPECT_EQ((*toks)[0].text, "SELECT");
  EXPECT_EQ((*toks)[8].kind, TokenKind::kSymbol);
  EXPECT_EQ((*toks)[8].text, ">=");
  EXPECT_EQ((*toks)[9].kind, TokenKind::kInteger);
  EXPECT_EQ((*toks)[9].int_val, 10);
  EXPECT_EQ(toks->back().kind, TokenKind::kEnd);
}

TEST(LexerTest, StringLiteralWithEscapedQuote) {
  auto toks = Tokenize("'it''s'");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].kind, TokenKind::kString);
  EXPECT_EQ((*toks)[0].text, "it's");
}

TEST(LexerTest, UnterminatedString) {
  EXPECT_FALSE(Tokenize("'abc").ok());
}

TEST(LexerTest, FloatForms) {
  auto toks = Tokenize("1.5 .25 2e3 1.5E-2");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].kind, TokenKind::kFloat);
  EXPECT_DOUBLE_EQ((*toks)[0].float_val, 1.5);
  EXPECT_DOUBLE_EQ((*toks)[1].float_val, 0.25);
  EXPECT_DOUBLE_EQ((*toks)[2].float_val, 2000.0);
  EXPECT_DOUBLE_EQ((*toks)[3].float_val, 0.015);
}

TEST(LexerTest, NotEqualsNormalized) {
  auto toks = Tokenize("a != b <> c");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[1].text, "<>");
  EXPECT_EQ((*toks)[3].text, "<>");
}

TEST(LexerTest, LineComment) {
  auto toks = Tokenize("a -- comment here\n b");
  ASSERT_TRUE(toks.ok());
  ASSERT_EQ(toks->size(), 3u);
  EXPECT_EQ((*toks)[1].text, "b");
}

TEST(LexerTest, BlockComment) {
  auto toks = Tokenize("a /* multi\nline */ b");
  ASSERT_TRUE(toks.ok());
  ASSERT_EQ(toks->size(), 3u);
}

TEST(LexerTest, UnterminatedBlockComment) {
  EXPECT_FALSE(Tokenize("a /* oops").ok());
}

TEST(LexerTest, UnexpectedCharacter) {
  EXPECT_FALSE(Tokenize("a @ b").ok());
}

TEST(LexerTest, IdentifiersWithUnderscoresAndDigits) {
  auto toks = Tokenize("l_orderkey d1 _x");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].text, "l_orderkey");
  EXPECT_EQ((*toks)[1].text, "d1");
  EXPECT_EQ((*toks)[2].text, "_x");
}

TEST(LexerTest, OffsetsRecorded) {
  auto toks = Tokenize("ab cd");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].offset, 0u);
  EXPECT_EQ((*toks)[1].offset, 3u);
}

}  // namespace
}  // namespace taurus
