#include <gtest/gtest.h>

#include "parser/parser.h"

namespace taurus {
namespace {

std::unique_ptr<QueryBlock> MustParse(const std::string& sql) {
  auto r = ParseSelect(sql);
  EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  return r.ok() ? std::move(*r) : nullptr;
}

TEST(ParserTest, MinimalSelect) {
  auto q = MustParse("SELECT a FROM t");
  ASSERT_NE(q, nullptr);
  ASSERT_EQ(q->select_items.size(), 1u);
  EXPECT_EQ(q->select_items[0].expr->kind, Expr::Kind::kColumnRef);
  ASSERT_EQ(q->from.size(), 1u);
  EXPECT_EQ(q->from[0]->table_name, "t");
}

TEST(ParserTest, SelectListAliases) {
  auto q = MustParse("SELECT a AS x, b y, c FROM t");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->select_items[0].alias, "x");
  EXPECT_EQ(q->select_items[1].alias, "y");
  EXPECT_EQ(q->select_items[2].alias, "");
}

TEST(ParserTest, WherePrecedence) {
  auto q = MustParse("SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3");
  ASSERT_NE(q, nullptr);
  // OR binds weaker than AND.
  EXPECT_EQ(q->where->bop, BinaryOp::kOr);
  EXPECT_EQ(q->where->children[1]->bop, BinaryOp::kAnd);
}

TEST(ParserTest, ArithmeticPrecedence) {
  auto q = MustParse("SELECT 1 + 2 * 3 FROM t");
  const Expr& e = *q->select_items[0].expr;
  EXPECT_EQ(e.bop, BinaryOp::kAdd);
  EXPECT_EQ(e.children[1]->bop, BinaryOp::kMul);
}

TEST(ParserTest, JoinTypes) {
  auto q = MustParse(
      "SELECT 1 FROM a JOIN b ON a.x = b.x LEFT OUTER JOIN c ON b.y = c.y "
      "CROSS JOIN d");
  ASSERT_EQ(q->from.size(), 1u);
  const TableRef& top = *q->from[0];
  EXPECT_EQ(top.join_type, JoinType::kCross);
  EXPECT_EQ(top.left->join_type, JoinType::kLeft);
  EXPECT_EQ(top.left->left->join_type, JoinType::kInner);
}

TEST(ParserTest, CommaJoinList) {
  auto q = MustParse("SELECT 1 FROM a, b, c WHERE a.x = b.x");
  EXPECT_EQ(q->from.size(), 3u);
}

TEST(ParserTest, DerivedTableNeedsAlias) {
  EXPECT_FALSE(ParseSelect("SELECT 1 FROM (SELECT 1 FROM t)").ok());
  auto q = MustParse("SELECT 1 FROM (SELECT a FROM t) d");
  EXPECT_EQ(q->from[0]->kind, TableRef::Kind::kDerived);
  EXPECT_EQ(q->from[0]->alias, "d");
}

TEST(ParserTest, GroupByHavingOrderLimit) {
  auto q = MustParse(
      "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 5 "
      "ORDER BY 2 DESC, a LIMIT 10 OFFSET 3");
  EXPECT_EQ(q->group_by.size(), 1u);
  ASSERT_NE(q->having, nullptr);
  ASSERT_EQ(q->order_by.size(), 2u);
  EXPECT_FALSE(q->order_by[0].ascending);
  EXPECT_TRUE(q->order_by[1].ascending);
  EXPECT_EQ(q->limit, 10);
  EXPECT_EQ(q->offset, 3);
}

TEST(ParserTest, MySqlLimitCommaForm) {
  auto q = MustParse("SELECT a FROM t LIMIT 5, 7");
  EXPECT_EQ(q->offset, 5);
  EXPECT_EQ(q->limit, 7);
}

TEST(ParserTest, ExistsSubquery) {
  auto q = MustParse(
      "SELECT 1 FROM o WHERE EXISTS (SELECT * FROM l WHERE l.k = o.k)");
  EXPECT_EQ(q->where->kind, Expr::Kind::kExists);
  EXPECT_FALSE(q->where->negated);
  auto q2 = MustParse("SELECT 1 FROM o WHERE NOT EXISTS (SELECT 1 FROM l)");
  // NOT EXISTS parses as NOT(EXISTS) via the NOT production.
  EXPECT_EQ(q2->where->kind, Expr::Kind::kUnary);
}

TEST(ParserTest, InListAndInSubquery) {
  auto q = MustParse("SELECT 1 FROM t WHERE a IN (1, 2, 3)");
  EXPECT_EQ(q->where->kind, Expr::Kind::kInList);
  EXPECT_EQ(q->where->children.size(), 4u);
  auto q2 = MustParse("SELECT 1 FROM t WHERE a NOT IN (SELECT b FROM u)");
  EXPECT_EQ(q2->where->kind, Expr::Kind::kInSubquery);
  EXPECT_TRUE(q2->where->negated);
}

TEST(ParserTest, BetweenLikeIsNull) {
  auto q = MustParse(
      "SELECT 1 FROM t WHERE a BETWEEN 1 AND 5 AND b LIKE 'x%' AND c IS NOT "
      "NULL");
  std::vector<const Expr*> found;
  const Expr* w = q->where.get();
  // (a BETWEEN..) AND (b LIKE..) AND (c IS NOT NULL), left-assoc.
  EXPECT_EQ(w->bop, BinaryOp::kAnd);
  EXPECT_EQ(w->children[1]->uop, UnaryOp::kIsNotNull);
}

TEST(ParserTest, CaseSearchedAndSimple) {
  auto q = MustParse(
      "SELECT CASE WHEN a = 1 THEN 'x' ELSE 'y' END, "
      "CASE b WHEN 2 THEN 'p' END FROM t");
  const Expr& searched = *q->select_items[0].expr;
  EXPECT_EQ(searched.kind, Expr::Kind::kCase);
  EXPECT_TRUE(searched.case_has_else);
  const Expr& simple = *q->select_items[1].expr;
  EXPECT_EQ(simple.kind, Expr::Kind::kCase);
  EXPECT_FALSE(simple.case_has_else);
  // Simple CASE desugars to b = 2 condition.
  EXPECT_EQ(simple.children[0]->bop, BinaryOp::kEq);
}

TEST(ParserTest, DateLiteralAndInterval) {
  auto q = MustParse(
      "SELECT 1 FROM t WHERE d >= DATE '1995-01-01' AND "
      "d < DATE '1995-01-01' + INTERVAL '3' MONTH");
  const Expr& lt = *q->where->children[1];
  EXPECT_EQ(lt.bop, BinaryOp::kLt);
  EXPECT_EQ(lt.children[1]->kind, Expr::Kind::kIntervalAdd);
  EXPECT_EQ(lt.children[1]->interval_amount, 3);
  EXPECT_EQ(lt.children[1]->interval_unit, IntervalUnit::kMonth);
}

TEST(ParserTest, IntervalSubtraction) {
  auto q = MustParse("SELECT d - INTERVAL 5 DAY FROM t");
  EXPECT_EQ(q->select_items[0].expr->interval_amount, -5);
}

TEST(ParserTest, AggregatesAndDistinct) {
  auto q = MustParse(
      "SELECT COUNT(*), COUNT(DISTINCT a), SUM(b), AVG(c), MIN(d), MAX(e), "
      "STDDEV(f) FROM t");
  EXPECT_EQ(q->select_items[0].expr->agg_func, AggFunc::kCountStar);
  EXPECT_EQ(q->select_items[1].expr->agg_func, AggFunc::kCount);
  EXPECT_TRUE(q->select_items[1].expr->agg_distinct);
  EXPECT_EQ(q->select_items[6].expr->agg_func, AggFunc::kStddev);
}

TEST(ParserTest, CastAndExtract) {
  auto q = MustParse(
      "SELECT CAST(a AS date), EXTRACT(year FROM d), CAST(b AS CHAR(10)) "
      "FROM t");
  EXPECT_EQ(q->select_items[0].expr->kind, Expr::Kind::kCast);
  EXPECT_EQ(q->select_items[0].expr->cast_type, TypeId::kDate);
  EXPECT_EQ(q->select_items[1].expr->kind, Expr::Kind::kFuncCall);
  EXPECT_EQ(q->select_items[1].expr->func_name, "year");
}

TEST(ParserTest, CtesParse) {
  auto q = MustParse(
      "WITH c1 AS (SELECT a FROM t), c2 AS (SELECT b FROM u) "
      "SELECT 1 FROM c1, c2");
  ASSERT_EQ(q->ctes.size(), 2u);
  EXPECT_EQ(q->ctes[0].name, "c1");
}

TEST(ParserTest, RecursiveCteRejected) {
  EXPECT_EQ(ParseSelect("WITH RECURSIVE r AS (SELECT 1) SELECT 1 FROM r")
                .status()
                .code(),
            StatusCode::kNotSupported);
}

TEST(ParserTest, UnionChain) {
  auto q = MustParse(
      "SELECT a FROM t UNION ALL SELECT a FROM u UNION SELECT a FROM v "
      "ORDER BY 1 LIMIT 4");
  ASSERT_NE(q->union_next, nullptr);
  EXPECT_TRUE(q->union_all);
  ASSERT_NE(q->union_next->union_next, nullptr);
  EXPECT_FALSE(q->union_next->union_all);
  EXPECT_EQ(q->order_by.size(), 1u);
  EXPECT_EQ(q->limit, 4);
}

TEST(ParserTest, StarForms) {
  auto q = MustParse("SELECT *, t.* FROM t");
  EXPECT_EQ(q->select_items[0].expr->column_name, "*");
  EXPECT_EQ(q->select_items[1].expr->table_name, "t");
}

TEST(ParserTest, ScalarSubqueryInSelect) {
  auto q = MustParse("SELECT (SELECT MAX(a) FROM u) FROM t");
  EXPECT_EQ(q->select_items[0].expr->kind, Expr::Kind::kScalarSubquery);
}

TEST(ParserTest, CreateTableStatement) {
  auto stmt = ParseStatement(
      "CREATE TABLE part (p_partkey INT NOT NULL PRIMARY KEY, "
      "p_name VARCHAR(55), p_size INT)");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->kind, Statement::Kind::kCreateTable);
  EXPECT_EQ((*stmt)->table_name, "part");
  ASSERT_EQ((*stmt)->columns.size(), 3u);
  EXPECT_FALSE((*stmt)->columns[0].nullable);
  EXPECT_EQ((*stmt)->columns[1].length, 55);
  ASSERT_EQ((*stmt)->primary_key.size(), 1u);
  EXPECT_EQ((*stmt)->primary_key[0], 0);
}

TEST(ParserTest, CreateTableCompositePk) {
  auto stmt = ParseStatement(
      "CREATE TABLE li (a INT NOT NULL, b INT NOT NULL, PRIMARY KEY (a, b))");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->primary_key.size(), 2u);
}

TEST(ParserTest, CreateIndexStatement) {
  auto stmt = ParseStatement("CREATE INDEX li_fk ON lineitem (l_partkey)");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->kind, Statement::Kind::kCreateIndex);
  EXPECT_EQ((*stmt)->index.name, "li_fk");
  EXPECT_FALSE((*stmt)->index.unique);
}

TEST(ParserTest, InsertStatement) {
  auto stmt =
      ParseStatement("INSERT INTO t VALUES (1, 'a'), (2, NULL)");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->insert_rows.size(), 2u);
  EXPECT_EQ((*stmt)->insert_rows[0].size(), 2u);
}

TEST(ParserTest, ExplainStatement) {
  auto stmt = ParseStatement("EXPLAIN SELECT a FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->kind, Statement::Kind::kExplain);
}

TEST(ParserTest, TrailingGarbageRejected) {
  EXPECT_FALSE(ParseStatement("SELECT a FROM t garbage garbage").ok());
}

TEST(ParserTest, CloneIsDeepAndEqual) {
  auto q = MustParse(
      "SELECT a, COUNT(*) c FROM t JOIN u ON t.x = u.x WHERE a IN (1,2) "
      "GROUP BY a HAVING c > 1 ORDER BY a LIMIT 3");
  auto copy = q->Clone();
  EXPECT_EQ(copy->select_items.size(), q->select_items.size());
  EXPECT_EQ(copy->limit, 3);
  EXPECT_NE(copy->select_items[0].expr.get(), q->select_items[0].expr.get());
  EXPECT_EQ(copy->where->ToString(), q->where->ToString());
}

TEST(ParserTest, ExplainAnalyze) {
  auto stmt = ParseStatement("EXPLAIN ANALYZE SELECT a FROM t");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ((*stmt)->kind, Statement::Kind::kExplainAnalyze);
  ASSERT_NE((*stmt)->select, nullptr);
  // Plain EXPLAIN still parses as before.
  auto plain = ParseStatement("EXPLAIN SELECT a FROM t");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ((*plain)->kind, Statement::Kind::kExplain);
  // ParseSelect accepts the ANALYZE form too (strips the prefix).
  EXPECT_NE(MustParse("EXPLAIN ANALYZE SELECT a FROM t"), nullptr);
}

TEST(ParserTest, ShowStatus) {
  auto stmt = ParseStatement("SHOW STATUS");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ((*stmt)->kind, Statement::Kind::kShowStatus);
  EXPECT_TRUE((*stmt)->table_name.empty());

  auto like = ParseStatement("show status like 'taurus.health.%';");
  ASSERT_TRUE(like.ok()) << like.status().ToString();
  EXPECT_EQ((*like)->kind, Statement::Kind::kShowStatus);
  EXPECT_EQ((*like)->table_name, "taurus.health.%");

  // SHOW METRICS is an alias for SHOW STATUS.
  auto metrics = ParseStatement("SHOW METRICS");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ((*metrics)->kind, Statement::Kind::kShowStatus);

  EXPECT_FALSE(ParseStatement("SHOW TABLES").ok());
  EXPECT_FALSE(ParseStatement("SHOW STATUS LIKE pattern").ok());
  EXPECT_FALSE(ParseStatement("SHOW STATUS extra").ok());
}

}  // namespace
}  // namespace taurus
