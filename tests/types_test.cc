#include <gtest/gtest.h>

#include <set>

#include "types/type.h"

namespace taurus {
namespace {

TEST(TypeTest, ThirtyOneTypes) { EXPECT_EQ(kNumTypeIds, 31); }

TEST(TypeTest, TwelveRegularCategoriesPlusStarAny) {
  EXPECT_EQ(kNumRegularTypeCategories, 12);
  EXPECT_EQ(kNumAggTypeCategories, 14);
}

TEST(TypeTest, EveryTypeMapsToARegularCategory) {
  // Section 5.1: the 31 types partition into the 12 regular categories —
  // STAR/ANY are aggregation-only and never the category of a type.
  std::set<TypeCategory> seen;
  for (int t = 0; t < kNumTypeIds; ++t) {
    TypeCategory c = CategoryOf(static_cast<TypeId>(t));
    EXPECT_NE(c, TypeCategory::kStar);
    EXPECT_NE(c, TypeCategory::kAny);
    seen.insert(c);
  }
  // All 12 regular categories are inhabited.
  EXPECT_EQ(seen.size(), static_cast<size_t>(kNumRegularTypeCategories));
}

TEST(TypeTest, IntCategoryWasSplit) {
  // Section 7 lesson: INT was refined into INT2/INT4/INT8.
  EXPECT_EQ(CategoryOf(TypeId::kTiny), TypeCategory::kInt2);
  EXPECT_EQ(CategoryOf(TypeId::kShort), TypeCategory::kInt2);
  EXPECT_EQ(CategoryOf(TypeId::kYear), TypeCategory::kInt2);
  EXPECT_EQ(CategoryOf(TypeId::kInt24), TypeCategory::kInt4);
  EXPECT_EQ(CategoryOf(TypeId::kLong), TypeCategory::kInt4);
  EXPECT_EQ(CategoryOf(TypeId::kEnum), TypeCategory::kInt4);
  EXPECT_EQ(CategoryOf(TypeId::kLongLong), TypeCategory::kInt8);
  EXPECT_EQ(CategoryOf(TypeId::kSet), TypeCategory::kInt8);
}

TEST(TypeTest, NumCategoryGroupsDecimalsAndReals) {
  for (TypeId t : {TypeId::kDecimal, TypeId::kNewDecimal, TypeId::kFloat,
                   TypeId::kDouble}) {
    EXPECT_EQ(CategoryOf(t), TypeCategory::kNum);
  }
}

TEST(TypeTest, BlobConsolidation) {
  for (TypeId t : {TypeId::kTinyBlob, TypeId::kBlob, TypeId::kMediumBlob,
                   TypeId::kLongBlob}) {
    EXPECT_EQ(CategoryOf(t), TypeCategory::kBlb);
  }
}

TEST(TypeTest, CategoryNames) {
  EXPECT_STREQ(TypeCategoryName(TypeCategory::kNum), "NUM");
  EXPECT_STREQ(TypeCategoryName(TypeCategory::kStr), "STR");
  EXPECT_STREQ(TypeCategoryName(TypeCategory::kStar), "STAR");
  EXPECT_STREQ(TypeCategoryName(TypeCategory::kAny), "ANY");
}

TEST(TypeTest, Predicates) {
  EXPECT_TRUE(IsStringType(TypeId::kVarchar));
  EXPECT_FALSE(IsStringType(TypeId::kBlob));
  EXPECT_TRUE(IsIntegerType(TypeId::kLong));
  EXPECT_FALSE(IsIntegerType(TypeId::kDouble));
  EXPECT_TRUE(IsNumericType(TypeId::kNewDecimal));
  EXPECT_TRUE(IsTemporalType(TypeId::kDate));
  EXPECT_TRUE(IsTemporalType(TypeId::kTimestamp));
  EXPECT_FALSE(IsTemporalType(TypeId::kNull));
  EXPECT_FALSE(IsTemporalType(TypeId::kLong));
}

TEST(TypeTest, FixedLengthsAndPassByValue) {
  EXPECT_EQ(TypeFixedLength(TypeId::kTiny), 1);
  EXPECT_EQ(TypeFixedLength(TypeId::kLong), 4);
  EXPECT_EQ(TypeFixedLength(TypeId::kLongLong), 8);
  EXPECT_EQ(TypeFixedLength(TypeId::kVarchar), -1);
  EXPECT_TRUE(TypePassByValue(TypeId::kDate));
  EXPECT_FALSE(TypePassByValue(TypeId::kBlob));
}

TEST(TypeTest, SqlNameRoundTrips) {
  EXPECT_EQ(*TypeIdFromSqlName("INT"), TypeId::kLong);
  EXPECT_EQ(*TypeIdFromSqlName("bigint"), TypeId::kLongLong);
  EXPECT_EQ(*TypeIdFromSqlName("Varchar"), TypeId::kVarchar);
  EXPECT_EQ(*TypeIdFromSqlName("DECIMAL"), TypeId::kNewDecimal);
  EXPECT_EQ(*TypeIdFromSqlName("date"), TypeId::kDate);
  EXPECT_FALSE(TypeIdFromSqlName("frobnicate").ok());
}

TEST(TypeTest, NamesAreDistinctAndNonEmpty) {
  std::set<std::string> names;
  for (int t = 0; t < kNumTypeIds; ++t) {
    names.insert(TypeIdName(static_cast<TypeId>(t)));
  }
  EXPECT_EQ(names.size(), static_cast<size_t>(kNumTypeIds));
}

}  // namespace
}  // namespace taurus
