#include <gtest/gtest.h>

#include "mdp/provider.h"
#include "mdp/stats_adapter.h"
#include "parser/parser.h"
#include "frontend/binder.h"
#include "storage/storage.h"

namespace taurus {
namespace {

class MdpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto t = catalog_.CreateTable(
        "part", {{"p_partkey", TypeId::kLong, 0, false},
                 {"p_brand", TypeId::kVarchar, 10, false},
                 {"p_retail", TypeId::kNewDecimal, 0, true}});
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(catalog_.AddIndex("part", {"part_pk", {0}, true, true}).ok());
    ASSERT_TRUE(
        catalog_.AddIndex("part", {"brand_idx", {1, 0}, false, false}).ok());
    data_ = storage_.CreateTable(*t);
    for (int i = 0; i < 500; ++i) {
      data_->Append({Value::Int(i),
                     Value::Str("Brand#" + std::to_string(10 + i % 25)),
                     i % 11 == 0 ? Value::Null()
                                 : Value::Double(1.5 * i, TypeId::kNewDecimal)});
    }
    data_->BuildIndexes();
    catalog_.SetStats((*t)->id, ComputeTableStats(*data_));
    mdp_ = std::make_unique<MetadataProvider>(catalog_);
  }

  Catalog catalog_;
  Storage storage_;
  TableData* data_ = nullptr;
  std::unique_ptr<MetadataProvider> mdp_;
};

TEST_F(MdpTest, RelationOidByName) {
  auto oid = mdp_->RelationOidByName("part");
  ASSERT_TRUE(oid.ok());
  EXPECT_EQ(*oid, RelationOid(0));
  EXPECT_EQ(mdp_->RelationOidByName("nope").status().code(),
            StatusCode::kNotFound);
}

TEST_F(MdpTest, ExpressionOidsUseTypeCategories) {
  // INT and BIGINT map to different categories (INT4 vs INT8) after the
  // Section 7 refinement, so the OIDs differ.
  auto a = mdp_->ComparisonOid(BinaryOp::kEq, TypeId::kLong, TypeId::kLong);
  auto b =
      mdp_->ComparisonOid(BinaryOp::kEq, TypeId::kLongLong, TypeId::kLong);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(*a, *b);
  // But types in the same category share a point: INT and MEDIUMINT.
  auto c = mdp_->ComparisonOid(BinaryOp::kEq, TypeId::kInt24, TypeId::kLong);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*a, *c);
}

TEST_F(MdpTest, AggregateOids) {
  auto star = mdp_->AggregateOid(AggFunc::kCountStar, TypeId::kNull);
  ASSERT_TRUE(star.ok());
  EXPECT_EQ(ExprOidName(*star), "COUNT_STAR");
  auto cnt = mdp_->AggregateOid(AggFunc::kCount, TypeId::kVarchar);
  ASSERT_TRUE(cnt.ok());
  EXPECT_EQ(ExprOidName(*cnt), "COUNT_ANY");  // COUNT(expr) -> ANY category
  auto sum = mdp_->AggregateOid(AggFunc::kSum, TypeId::kNewDecimal);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(ExprOidName(*sum), "SUM_NUM");
}

TEST_F(MdpTest, MappedFunctionOidsParallelExpressions) {
  auto eq = mdp_->ComparisonOid(BinaryOp::kEq, TypeId::kVarchar,
                                TypeId::kVarchar);
  int64_t f = mdp_->MappedFunctionOid(*eq);
  EXPECT_GE(f, kMappedFuncBase);
  EXPECT_LT(f, kRegularFuncBase);
  // Distinct expressions map to distinct function OIDs.
  auto lt = mdp_->ComparisonOid(BinaryOp::kLt, TypeId::kVarchar,
                                TypeId::kVarchar);
  EXPECT_NE(mdp_->MappedFunctionOid(*lt), f);
  EXPECT_EQ(mdp_->MappedFunctionOid(999), kInvalidOid);
}

TEST_F(MdpTest, RegularFunctionOids) {
  auto a = mdp_->RegularFunctionOid("substring");
  auto b = mdp_->RegularFunctionOid("SUBSTRING");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);  // case-insensitive
  EXPECT_GE(*a, kRegularFuncBase);
  EXPECT_FALSE(mdp_->RegularFunctionOid("frobnicate").ok());
}

TEST_F(MdpTest, DxlRoundTripPreservesRelation) {
  auto oid = mdp_->RelationOidByName("part");
  auto dxl = mdp_->RelationToDxl(*oid);
  ASSERT_TRUE(dxl.ok()) << dxl.status().ToString();
  EXPECT_NE(dxl->find("<dxl:Relation"), std::string::npos);
  EXPECT_NE(dxl->find("dxl:ColumnStats"), std::string::npos);

  auto info = MetadataProvider::ParseRelationDxl(*dxl);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->name, "part");
  EXPECT_EQ(info->rows, 500);
  ASSERT_EQ(info->columns.size(), 3u);
  EXPECT_EQ(info->columns[0].name, "p_partkey");
  EXPECT_EQ(info->columns[0].type, TypeId::kLong);
  EXPECT_FALSE(info->columns[0].nullable);
  EXPECT_TRUE(info->columns[2].nullable);
  EXPECT_EQ(info->columns[0].stats.distinct_count, 500);
  ASSERT_EQ(info->indexes.size(), 2u);
  EXPECT_EQ(info->indexes[1].key_columns.size(), 2u);
  EXPECT_TRUE(info->indexes[0].unique);
}

TEST_F(MdpTest, DxlStringHistogramBoundariesAreEncoded) {
  auto oid = mdp_->RelationOidByName("part");
  auto info = mdp_->GetRelation(*oid);
  ASSERT_TRUE(info.ok());
  const Histogram& h = (*info)->columns[1].stats.histogram;
  ASSERT_FALSE(h.empty());
  // Boundaries arrive as numeric (encoded) values, not strings.
  for (const HistogramBucket& b : h.buckets()) {
    EXPECT_NE(b.lower.kind(), Value::Kind::kString);
  }
  // An encoded probe lands in the right bucket.
  int64_t probe = EncodeStringPrefix("Brand#17");
  double sel = h.SelectivityEquals(Value::Int(probe));
  EXPECT_GT(sel, 0.0);
  EXPECT_LT(sel, 0.2);
}

TEST_F(MdpTest, NullFractionSurvivesDxl) {
  auto oid = mdp_->RelationOidByName("part");
  auto info = mdp_->GetRelation(*oid);
  ASSERT_TRUE(info.ok());
  EXPECT_NEAR((*info)->columns[2].stats.histogram.null_fraction(),
              46.0 / 500.0, 1e-9);
}

TEST_F(MdpTest, MetadataCacheServesRepeats) {
  auto oid = mdp_->RelationOidByName("part");
  ASSERT_TRUE(mdp_->GetRelation(*oid).ok());
  ASSERT_TRUE(mdp_->GetRelation(*oid).ok());
  ASSERT_TRUE(mdp_->GetRelation(*oid).ok());
  EXPECT_EQ(mdp_->dxl_requests(), 1);
  EXPECT_EQ(mdp_->cache_hits(), 2);
}

TEST_F(MdpTest, BadOidRejected) {
  EXPECT_FALSE(mdp_->RelationToDxl(123).ok());
  EXPECT_FALSE(mdp_->GetRelation(RelationOid(57)).ok());
}

TEST_F(MdpTest, DxlEscapesSpecialCharacters) {
  auto t2 = catalog_.CreateTable(
      "weird", {{"a", TypeId::kVarchar, 10, true}});
  ASSERT_TRUE(t2.ok());
  TableData* d = storage_.CreateTable(*t2);
  d->Append({Value::Str("x<y&\"z\"")});
  d->BuildIndexes();
  catalog_.SetStats((*t2)->id, ComputeTableStats(*d));
  auto dxl = mdp_->RelationToDxl(RelationOid((*t2)->id));
  ASSERT_TRUE(dxl.ok());
  auto info = MetadataProvider::ParseRelationDxl(*dxl);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->name, "weird");
}

TEST_F(MdpTest, StatsAdapterNormalizesStringProbes) {
  auto parsed = ParseSelect(
      "SELECT COUNT(*) FROM part WHERE p_brand = 'Brand#17' AND "
      "p_partkey < 100");
  ASSERT_TRUE(parsed.ok());
  auto bound = BindStatement(catalog_, std::move(*parsed));
  ASSERT_TRUE(bound.ok());
  BoundStatement stmt = std::move(*bound);
  MdpStatsProvider stats(catalog_, stmt.leaves, mdp_.get());
  const Expr& str_eq = *stmt.block->where->children[0];
  const Expr& int_lt = *stmt.block->where->children[1];
  double s1 = stats.ConjunctSelectivity(str_eq);
  EXPECT_GT(s1, 0.0);
  EXPECT_NEAR(s1, 1.0 / 25.0, 0.03);  // 25 distinct brands
  double s2 = stats.ConjunctSelectivity(int_lt);
  EXPECT_NEAR(s2, 0.2, 0.05);  // 100 of 500
}

}  // namespace
}  // namespace taurus
