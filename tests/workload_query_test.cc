#include <gtest/gtest.h>

#include <set>

#include "parser/parser.h"
#include "workloads/tpcds.h"
#include "workloads/tpch.h"

namespace taurus {
namespace {

// Static (no-engine) sanity over the query suites: everything parses, the
// suites have the right sizes, the hand-written paper queries carry their
// signature constructs, and the template-generated TPC-DS remainder is
// diverse rather than copy-pasted.

TEST(WorkloadQueryTest, TpchHasTwentyTwoParsingQueries) {
  const auto& queries = TpchQueries();
  ASSERT_EQ(queries.size(), 22u);
  for (size_t i = 0; i < queries.size(); ++i) {
    auto q = ParseSelect(queries[i]);
    EXPECT_TRUE(q.ok()) << "TPC-H Q" << i + 1 << ": "
                        << q.status().ToString();
  }
}

TEST(WorkloadQueryTest, TpcdsHasNinetyNineParsingQueries) {
  const auto& queries = TpcdsQueries();
  ASSERT_EQ(queries.size(), 99u);
  for (size_t i = 0; i < queries.size(); ++i) {
    auto q = ParseSelect(queries[i]);
    EXPECT_TRUE(q.ok()) << "TPC-DS Q" << i + 1 << ": "
                        << q.status().ToString();
  }
}

TEST(WorkloadQueryTest, TpchSignatureConstructs) {
  const auto& q = TpchQueries();
  // Q4: EXISTS (the paper's Listing 2).
  EXPECT_NE(q[3].find("EXISTS"), std::string::npos);
  // Q13: LEFT OUTER JOIN with NOT LIKE in the ON clause.
  EXPECT_NE(q[12].find("LEFT OUTER JOIN"), std::string::npos);
  EXPECT_NE(q[12].find("NOT LIKE"), std::string::npos);
  // Q15: the revenue view as a CTE.
  EXPECT_NE(q[14].find("WITH revenue"), std::string::npos);
  // Q16: NOT IN + the Customer...Complaints LIKE (Listing 8).
  EXPECT_NE(q[15].find("NOT IN"), std::string::npos);
  EXPECT_NE(q[15].find("%Customer%Complaints%"), std::string::npos);
  // Q17: the correlated 0.2 * AVG subquery (Listing 5).
  EXPECT_NE(q[16].find("0.2 * AVG(l_quantity)"), std::string::npos);
  // Q19: the three-branch OR with the join predicate in every branch.
  EXPECT_NE(q[18].find("OR (p_partkey = l_partkey"), std::string::npos);
  // Q21: EXISTS + NOT EXISTS.
  EXPECT_NE(q[20].find("NOT EXISTS"), std::string::npos);
}

TEST(WorkloadQueryTest, TpcdsPaperQueriesPresent) {
  const auto& q = TpcdsQueries();
  // Q1/Q81: CTE + correlated average.
  EXPECT_NE(q[0].find("customer_total_return"), std::string::npos);
  EXPECT_NE(q[80].find("customer_total_return"), std::string::npos);
  // Q41: the OR nest over the item self-condition (Section 6.2).
  EXPECT_GE([&] {
    size_t count = 0;
    for (size_t pos = q[40].find("item.i_manufact = i1.i_manufact");
         pos != std::string::npos;
         pos = q[40].find("item.i_manufact = i1.i_manufact", pos + 1)) {
      ++count;
    }
    return count;
  }(), 4u);
  // Q72: the paper's Listing 1 shape — 11 table references.
  EXPECT_NE(q[71].find("LEFT OUTER JOIN promotion"), std::string::npos);
  EXPECT_NE(q[71].find("inv_quantity_on_hand < cs_quantity"),
            std::string::npos);
  EXPECT_NE(q[71].find("INTERVAL '5' DAY"), std::string::npos);
  // Q9: bucketed CASE over scalar subqueries (Listing 6 shape).
  EXPECT_NE(q[8].find("CASE WHEN (SELECT COUNT(*)"), std::string::npos);
  // Q64: the wide CTE joined with itself.
  EXPECT_NE(q[63].find("cross_sales cs1, cross_sales cs2"),
            std::string::npos);
}

TEST(WorkloadQueryTest, TemplateQueriesAreDistinct) {
  const auto& q = TpcdsQueries();
  std::set<std::string> unique(q.begin(), q.end());
  EXPECT_EQ(unique.size(), q.size()) << "duplicate generated queries";
}

TEST(WorkloadQueryTest, TemplateMixCoversAllChannels) {
  const auto& q = TpcdsQueries();
  int store = 0, catalog = 0, web = 0, exists = 0, cte = 0, unions = 0;
  for (const std::string& sql : q) {
    if (sql.find("store_sales") != std::string::npos) ++store;
    if (sql.find("catalog_sales") != std::string::npos) ++catalog;
    if (sql.find("web_sales") != std::string::npos) ++web;
    if (sql.find("EXISTS") != std::string::npos) ++exists;
    if (sql.find("WITH ") != std::string::npos) ++cte;
    if (sql.find("UNION") != std::string::npos) ++unions;
  }
  EXPECT_GT(store, 20);
  EXPECT_GT(catalog, 20);
  EXPECT_GT(web, 20);
  EXPECT_GT(exists, 10);
  EXPECT_GT(cte, 10);
  EXPECT_GT(unions, 5);
}

}  // namespace
}  // namespace taurus
