#include <gtest/gtest.h>

#include "types/datetime.h"

namespace taurus {
namespace {

TEST(DatetimeTest, EpochIsZero) { EXPECT_EQ(CivilToDays(1970, 1, 1), 0); }

TEST(DatetimeTest, KnownDates) {
  EXPECT_EQ(CivilToDays(1970, 1, 2), 1);
  EXPECT_EQ(CivilToDays(1969, 12, 31), -1);
  EXPECT_EQ(CivilToDays(2000, 3, 1), 11017);
}

TEST(DatetimeTest, RoundTripWideRange) {
  for (int64_t d = -200000; d <= 200000; d += 373) {
    int y, m, day;
    DaysToCivil(d, &y, &m, &day);
    EXPECT_EQ(CivilToDays(y, m, day), d);
  }
}

TEST(DatetimeTest, ParseAndFormatDate) {
  auto days = ParseDate("1995-01-01");
  ASSERT_TRUE(days.ok());
  EXPECT_EQ(FormatDate(*days), "1995-01-01");
}

TEST(DatetimeTest, ParseRejectsBadDates) {
  EXPECT_FALSE(ParseDate("1995-13-01").ok());
  EXPECT_FALSE(ParseDate("1995-02-30").ok());
  EXPECT_FALSE(ParseDate("1995/01/01").ok());
  EXPECT_FALSE(ParseDate("95-01-01").ok());
}

TEST(DatetimeTest, LeapYearHandling) {
  EXPECT_TRUE(ParseDate("2000-02-29").ok());   // divisible by 400
  EXPECT_FALSE(ParseDate("1900-02-29").ok());  // divisible by 100 only
  EXPECT_TRUE(ParseDate("1996-02-29").ok());
  EXPECT_FALSE(ParseDate("1995-02-29").ok());
}

TEST(DatetimeTest, ParseDatetimeWithAndWithoutTime) {
  auto secs = ParseDatetime("1995-06-17 12:34:56");
  ASSERT_TRUE(secs.ok());
  EXPECT_EQ(FormatDatetime(*secs), "1995-06-17 12:34:56");
  auto midnight = ParseDatetime("1995-06-17");
  ASSERT_TRUE(midnight.ok());
  EXPECT_EQ(*midnight % 86400, 0);
}

TEST(DatetimeTest, FormatDatetimeBeforeEpoch) {
  auto secs = ParseDatetime("1969-12-31 23:59:59");
  ASSERT_TRUE(secs.ok());
  EXPECT_EQ(*secs, -1);
  EXPECT_EQ(FormatDatetime(*secs), "1969-12-31 23:59:59");
}

TEST(DatetimeTest, AddDays) {
  int64_t d = *ParseDate("1995-01-01");
  EXPECT_EQ(FormatDate(AddIntervalToDate(d, 5, IntervalUnit::kDay)),
            "1995-01-06");
  EXPECT_EQ(FormatDate(AddIntervalToDate(d, -1, IntervalUnit::kDay)),
            "1994-12-31");
}

TEST(DatetimeTest, AddMonthsClampsDayOfMonth) {
  int64_t d = *ParseDate("1995-01-31");
  EXPECT_EQ(FormatDate(AddIntervalToDate(d, 1, IntervalUnit::kMonth)),
            "1995-02-28");
  EXPECT_EQ(FormatDate(AddIntervalToDate(*ParseDate("1996-01-31"), 1,
                                         IntervalUnit::kMonth)),
            "1996-02-29");
}

TEST(DatetimeTest, AddMonthsAcrossYearBoundary) {
  int64_t d = *ParseDate("1995-11-15");
  EXPECT_EQ(FormatDate(AddIntervalToDate(d, 3, IntervalUnit::kMonth)),
            "1996-02-15");
  EXPECT_EQ(FormatDate(AddIntervalToDate(d, -12, IntervalUnit::kMonth)),
            "1994-11-15");
}

TEST(DatetimeTest, AddYears) {
  int64_t d = *ParseDate("1996-02-29");
  EXPECT_EQ(FormatDate(AddIntervalToDate(d, 1, IntervalUnit::kYear)),
            "1997-02-28");
}

TEST(DatetimeTest, ExtractComponents) {
  int64_t d = *ParseDate("1998-09-02");
  EXPECT_EQ(ExtractYear(d), 1998);
  EXPECT_EQ(ExtractMonth(d), 9);
  EXPECT_EQ(ExtractDay(d), 2);
}

}  // namespace
}  // namespace taurus
