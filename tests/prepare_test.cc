#include <gtest/gtest.h>

#include "frontend/prepare.h"
#include "parser/ast_util.h"
#include "parser/parser.h"

namespace taurus {
namespace {

class PrepareTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_
                    .CreateTable("orders",
                                 {{"o_orderkey", TypeId::kLong, 0, false},
                                  {"o_orderdate", TypeId::kDate, 0, false},
                                  {"o_orderpriority", TypeId::kVarchar, 15,
                                   false}})
                    .ok());
    ASSERT_TRUE(catalog_
                    .CreateTable("lineitem",
                                 {{"l_orderkey", TypeId::kLong, 0, false},
                                  {"l_commitdate", TypeId::kDate, 0, false},
                                  {"l_receiptdate", TypeId::kDate, 0, false},
                                  {"l_note", TypeId::kVarchar, 10, true}})
                    .ok());
  }

  Result<BoundStatement> Prep(const std::string& sql,
                              PrepareOptions opts = PrepareOptions()) {
    auto q = ParseSelect(sql);
    if (!q.ok()) return q.status();
    auto bound = BindStatement(catalog_, std::move(*q));
    if (!bound.ok()) return bound.status();
    BoundStatement stmt = std::move(*bound);
    TAURUS_RETURN_IF_ERROR(PrepareStatement(&stmt, opts));
    return stmt;
  }

  Catalog catalog_;
};

TEST_F(PrepareTest, ConstantFoldingDateArithmetic) {
  // The TPC-H Q4 pattern: DATE '1995-01-01' + INTERVAL 3 MONTH folds.
  auto s = Prep(
      "SELECT 1 FROM orders WHERE o_orderdate < DATE '1995-01-01' + "
      "INTERVAL '3' MONTH");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  const Expr& cmp = *s->block->where;
  ASSERT_EQ(cmp.children[1]->kind, Expr::Kind::kLiteral);
  EXPECT_EQ(cmp.children[1]->literal.ToString(), "1995-04-01");
}

TEST_F(PrepareTest, ConstantFoldingArithmetic) {
  auto s = Prep("SELECT o_orderkey + (2 * 3 + 1) FROM orders");
  ASSERT_TRUE(s.ok());
  const Expr& add = *s->block->select_items[0].expr;
  ASSERT_EQ(add.children[1]->kind, Expr::Kind::kLiteral);
  EXPECT_EQ(add.children[1]->literal.AsInt(), 7);
}

TEST_F(PrepareTest, ExistsBecomesSemiJoin) {
  // TPC-H Q4 shape (Listing 2 -> Listing 3 in the paper).
  auto s = Prep(
      "SELECT o_orderpriority, COUNT(*) FROM orders WHERE "
      "o_orderdate >= DATE '1995-01-01' AND EXISTS (SELECT * FROM lineitem "
      "WHERE l_orderkey = o_orderkey AND l_commitdate < l_receiptdate) "
      "GROUP BY o_orderpriority");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  ASSERT_EQ(s->block->from.size(), 1u);
  const TableRef& top = *s->block->from[0];
  ASSERT_EQ(top.kind, TableRef::Kind::kJoin);
  EXPECT_EQ(top.join_type, JoinType::kSemi);
  // Subquery's WHERE moved into the semi-join ON.
  ASSERT_NE(top.on, nullptr);
  std::vector<const Expr*> on_conjuncts;
  SplitConjuncts(top.on.get(), &on_conjuncts);
  EXPECT_EQ(on_conjuncts.size(), 2u);
  // The date filter stays in WHERE.
  ASSERT_NE(s->block->where, nullptr);
  std::vector<const Expr*> where_conjuncts;
  SplitConjuncts(s->block->where.get(), &where_conjuncts);
  EXPECT_EQ(where_conjuncts.size(), 1u);
  // Moved leaves are re-owned by the outer block.
  for (const TableRef* leaf : s->block->Leaves()) {
    EXPECT_EQ(leaf->owner, s->block.get());
  }
}

TEST_F(PrepareTest, NotExistsBecomesAntiSemiJoin) {
  auto s = Prep(
      "SELECT 1 FROM orders WHERE NOT EXISTS "
      "(SELECT 1 FROM lineitem WHERE l_orderkey = o_orderkey)");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  // NOT EXISTS parses as NOT(EXISTS); conversion handles the pushed form.
  const TableRef& top = *s->block->from[0];
  ASSERT_EQ(top.kind, TableRef::Kind::kJoin);
  EXPECT_EQ(top.join_type, JoinType::kAntiSemi);
}

TEST_F(PrepareTest, InSubqueryBecomesSemiJoinWithEquality) {
  auto s = Prep(
      "SELECT 1 FROM orders WHERE o_orderkey IN "
      "(SELECT l_orderkey FROM lineitem WHERE l_commitdate < l_receiptdate)");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  const TableRef& top = *s->block->from[0];
  EXPECT_EQ(top.join_type, JoinType::kSemi);
  std::vector<const Expr*> on;
  SplitConjuncts(top.on.get(), &on);
  ASSERT_EQ(on.size(), 2u);
  // One conjunct is the synthesized equality o_orderkey = l_orderkey.
  bool has_eq = false;
  for (const Expr* c : on) {
    if (c->kind == Expr::Kind::kBinary && c->bop == BinaryOp::kEq &&
        c->children[0]->kind == Expr::Kind::kColumnRef &&
        c->children[1]->kind == Expr::Kind::kColumnRef) {
      has_eq = true;
    }
  }
  EXPECT_TRUE(has_eq);
}

TEST_F(PrepareTest, NotInNullableColumnStaysSubquery) {
  // l_note is nullable: NOT IN cannot become an anti-semi join.
  auto s = Prep(
      "SELECT 1 FROM orders WHERE o_orderpriority NOT IN "
      "(SELECT l_note FROM lineitem)");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  ASSERT_NE(s->block->where, nullptr);
  EXPECT_EQ(s->block->where->kind, Expr::Kind::kInSubquery);
  EXPECT_EQ(s->block->from.size(), 1u);
  EXPECT_EQ(s->block->from[0]->kind, TableRef::Kind::kBase);
}

TEST_F(PrepareTest, NotInNonNullableConverts) {
  auto s = Prep(
      "SELECT 1 FROM orders WHERE o_orderkey NOT IN "
      "(SELECT l_orderkey FROM lineitem)");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  const TableRef& top = *s->block->from[0];
  ASSERT_EQ(top.kind, TableRef::Kind::kJoin);
  EXPECT_EQ(top.join_type, JoinType::kAntiSemi);
}

TEST_F(PrepareTest, AggregatedSubqueryNotConverted) {
  auto s = Prep(
      "SELECT 1 FROM orders WHERE o_orderkey IN "
      "(SELECT MAX(l_orderkey) FROM lineitem)");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->block->where->kind, Expr::Kind::kInSubquery);
}

TEST_F(PrepareTest, LeftJoinSimplifiedWhenNullRejecting) {
  auto s = Prep(
      "SELECT 1 FROM orders LEFT JOIN lineitem ON l_orderkey = o_orderkey "
      "WHERE l_commitdate < l_receiptdate");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->block->from[0]->join_type, JoinType::kInner);
}

TEST_F(PrepareTest, LeftJoinKeptWithoutNullRejection) {
  auto s = Prep(
      "SELECT 1 FROM orders LEFT JOIN lineitem ON l_orderkey = o_orderkey "
      "WHERE o_orderkey > 5");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->block->from[0]->join_type, JoinType::kLeft);
}

TEST_F(PrepareTest, LeftJoinKeptWhenRewriteDisabled) {
  PrepareOptions opts;
  opts.simplify_outer_joins = false;
  auto s = Prep(
      "SELECT 1 FROM orders LEFT JOIN lineitem ON l_orderkey = o_orderkey "
      "WHERE l_commitdate < l_receiptdate",
      opts);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->block->from[0]->join_type, JoinType::kLeft);
}

TEST_F(PrepareTest, LeavesRecollectedAfterRewrites) {
  auto s = Prep(
      "SELECT 1 FROM orders WHERE EXISTS "
      "(SELECT 1 FROM lineitem WHERE l_orderkey = o_orderkey)");
  ASSERT_TRUE(s.ok());
  ASSERT_EQ(s->leaves.size(), 2u);
  for (int i = 0; i < 2; ++i) {
    ASSERT_NE(s->leaves[i], nullptr);
    EXPECT_EQ(s->leaves[i]->ref_id, i);
  }
}

TEST_F(PrepareTest, MultipleSubqueriesAllConvert) {
  auto s = Prep(
      "SELECT 1 FROM orders WHERE EXISTS (SELECT 1 FROM lineitem WHERE "
      "l_orderkey = o_orderkey) AND o_orderkey IN (SELECT l_orderkey FROM "
      "lineitem)");
  ASSERT_TRUE(s.ok()) << s.status().ToString();
  // Two nested semi joins.
  const TableRef& top = *s->block->from[0];
  ASSERT_EQ(top.kind, TableRef::Kind::kJoin);
  EXPECT_EQ(top.join_type, JoinType::kSemi);
  ASSERT_EQ(top.left->kind, TableRef::Kind::kJoin);
  EXPECT_EQ(top.left->join_type, JoinType::kSemi);
}

}  // namespace
}  // namespace taurus
