// Vectorized batch executor: result equivalence against the row-at-a-time
// Volcano executor across every TPC-H and TPC-DS query on both optimizer
// paths, under serial and morsel-parallel execution, across a batch-size
// sweep that includes the degenerate size 1; selection-vector edge cases
// (all-pass / all-fail / alternating NULLs); and EXPLAIN ANALYZE actuals
// staying identical when rows move in batches.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <regex>
#include <string>
#include <vector>

#include "engine/database.h"
#include "workloads/tpcds.h"
#include "workloads/tpch.h"

namespace taurus {
namespace {

void SortRows(std::vector<Row>* rows) {
  std::sort(rows->begin(), rows->end(), [](const Row& a, const Row& b) {
    for (size_t i = 0; i < a.size(); ++i) {
      int c = Value::Compare(a[i], b[i]);
      if (c != 0) return c < 0;
    }
    return false;
  });
}

std::string RowsText(std::vector<Row> rows) {
  SortRows(&rows);
  std::string out;
  for (const Row& r : rows) out += RowToString(r) + "\n";
  return out;
}

/// Arms the executor knobs for one comparison run. Batch mode changes only
/// *how* rows move, never which rows accumulate into which aggregate in
/// what order — so equality against Volcano is exact (doubles included),
/// unlike the serial-vs-parallel comparison where morsel partial sums
/// legitimately reassociate.
void Configure(Database* db, int workers, bool batch, int64_t batch_size) {
  db->exec_config() = ExecutorConfig();
  db->exec_config().parallel_workers = workers;
  if (workers > 1) {
    db->exec_config().morsel_rows = 64;
    db->exec_config().parallel_min_driver_rows = 0;
  }
  db->exec_config().enable_batch = batch;
  db->exec_config().batch_size = batch_size;
}

/// Runs every query of a workload in Volcano mode, then batched at each
/// batch size, asserting bitwise row equality per (query, workers) cell.
/// Returns how many batch runs actually engaged a batch pipeline.
int CheckWorkload(Database* db, const std::vector<std::string>& queries,
                  OptimizerPath path, const char* tag, int workers,
                  const std::vector<int64_t>& batch_sizes) {
  int engaged = 0;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    SCOPED_TRACE(std::string(tag) + " query #" + std::to_string(qi + 1) +
                 " workers=" + std::to_string(workers));
    Configure(db, workers, /*batch=*/false, 1024);
    auto volcano = db->Query(queries[qi], path);
    for (int64_t bs : batch_sizes) {
      SCOPED_TRACE("batch_size=" + std::to_string(bs));
      Configure(db, workers, /*batch=*/true, bs);
      auto batch = db->Query(queries[qi], path);
      if (!volcano.ok()) {
        // A query the path can't run must fail identically batched.
        EXPECT_FALSE(batch.ok());
        if (!batch.ok()) {
          EXPECT_EQ(batch.status().code(), volcano.status().code());
        }
        continue;
      }
      EXPECT_TRUE(batch.ok()) << batch.status().ToString();
      if (!batch.ok()) continue;
      EXPECT_EQ(RowsText(batch->rows), RowsText(volcano->rows));
      // Moving rows in batches must not change what was scanned/looked up.
      EXPECT_EQ(batch->rows_scanned, volcano->rows_scanned);
      EXPECT_EQ(batch->index_lookups, volcano->index_lookups);
      EXPECT_EQ(volcano->batch_pipelines, 0);
      // A pipeline can engage yet emit zero batches (everything filtered
      // out), so `batches` alone is not asserted here.
      if (batch->batch_pipelines > 0) ++engaged;
    }
  }
  Configure(db, 1, /*batch=*/true, 1024);
  return engaged;
}

const std::vector<int64_t>& FullSweep() {
  static const std::vector<int64_t> sizes{1, 3, 1024, 4096};
  return sizes;
}

// ---------------------------------------------------------------------------
// TPC-H
// ---------------------------------------------------------------------------

class TpchBatchTest : public ::testing::Test {
 protected:
  static Database* db() {
    static Database* instance = [] {
      auto* d = new Database();
      auto st = SetupTpch(d, 0.002);
      EXPECT_TRUE(st.ok()) << st.ToString();
      return d;
    }();
    return instance;
  }
};

TEST_F(TpchBatchTest, MySqlSerialMatchesVolcanoAcrossBatchSizes) {
  int engaged = CheckWorkload(db(), TpchQueries(), OptimizerPath::kMySql,
                              "tpch/mysql", /*workers=*/1, FullSweep());
  // Scan/filter/agg pipelines (Q1, Q6, ...) must actually run batched.
  EXPECT_GT(engaged, 0);
}

TEST_F(TpchBatchTest, OrcaSerialMatchesVolcanoAcrossBatchSizes) {
  int engaged = CheckWorkload(db(), TpchQueries(), OptimizerPath::kOrca,
                              "tpch/orca", /*workers=*/1, FullSweep());
  EXPECT_GT(engaged, 0);
}

TEST_F(TpchBatchTest, ParallelWorkersMatchVolcano) {
  int engaged = CheckWorkload(db(), TpchQueries(), OptimizerPath::kMySql,
                              "tpch/mysql", /*workers=*/4, {1024});
  engaged += CheckWorkload(db(), TpchQueries(), OptimizerPath::kOrca,
                           "tpch/orca", /*workers=*/4, {1024});
  // Batch chains must engage inside morsel worker clones too.
  EXPECT_GT(engaged, 0);
}

TEST_F(TpchBatchTest, BatchCountersSurfaceInQueryResult) {
  const std::string& q6 = TpchQueries()[5];  // single-table scan aggregate
  Configure(db(), 1, /*batch=*/true, 1024);
  auto res = db()->Query(q6, OptimizerPath::kMySql);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_GT(res->batch_pipelines, 0);
  EXPECT_GT(res->batches, 0);
  EXPECT_GT(res->batch_rows, 0);
  // The knob kills the whole machinery.
  Configure(db(), 1, /*batch=*/false, 1024);
  auto off = db()->Query(q6, OptimizerPath::kMySql);
  ASSERT_TRUE(off.ok());
  EXPECT_EQ(off->batch_pipelines, 0);
  EXPECT_EQ(off->batches, 0);
  Configure(db(), 1, /*batch=*/true, 1024);
}

TEST_F(TpchBatchTest, ExplainShowsBatchEligibility) {
  auto text = db()->Explain(TpchQueries()[5], OptimizerPath::kMySql);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("Batch pipeline (vectorized eligible)"),
            std::string::npos)
      << *text;
  // Q6's top-level sort-free scan-aggregate is eligible; a query with an
  // index-lookup driver must render the row-mode marker with its reason.
  auto q2 = db()->Explain(TpchQueries()[1], OptimizerPath::kMySql);
  ASSERT_TRUE(q2.ok());
  EXPECT_NE(q2->find("pipeline ("), std::string::npos) << *q2;
}

/// EXPLAIN ANALYZE actuals (rows, loops, q-error) must be unchanged by
/// batching; only timings may differ. Compare the JSON dumps with time
/// fields scrubbed.
TEST_F(TpchBatchTest, AnalyzeActualsUnchangedUnderBatchMode) {
  const std::regex time_re("\"(time_ms|execute_ms|optimize_ms)\": [0-9.]+");
  for (size_t qi : {0ul, 5ul, 2ul}) {  // Q1, Q6, Q3 shapes
    SCOPED_TRACE("query #" + std::to_string(qi + 1));
    Configure(db(), 1, /*batch=*/false, 1024);
    auto volcano = db()->ExplainAnalyzeJsonDump(TpchQueries()[qi],
                                                OptimizerPath::kMySql);
    ASSERT_TRUE(volcano.ok()) << volcano.status().ToString();
    Configure(db(), 1, /*batch=*/true, 1024);
    auto batch = db()->ExplainAnalyzeJsonDump(TpchQueries()[qi],
                                              OptimizerPath::kMySql);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    EXPECT_EQ(std::regex_replace(*batch, time_re, "\"$1\": X"),
              std::regex_replace(*volcano, time_re, "\"$1\": X"));
  }
  Configure(db(), 1, /*batch=*/true, 1024);
}

// ---------------------------------------------------------------------------
// TPC-DS
// ---------------------------------------------------------------------------

class TpcdsBatchTest : public ::testing::Test {
 protected:
  static Database* db() {
    static Database* instance = [] {
      auto* d = new Database();
      auto st = SetupTpcds(d, 0.0001);
      EXPECT_TRUE(st.ok()) << st.ToString();
      d->router_config().complex_query_threshold = 2;
      return d;
    }();
    return instance;
  }
};

TEST_F(TpcdsBatchTest, MySqlSerialMatchesVolcanoAcrossBatchSizes) {
  int engaged = CheckWorkload(db(), TpcdsQueries(), OptimizerPath::kMySql,
                              "tpcds/mysql", /*workers=*/1, FullSweep());
  EXPECT_GT(engaged, 0);
}

TEST_F(TpcdsBatchTest, OrcaSerialAndParallelMatchVolcano) {
  int engaged = CheckWorkload(db(), TpcdsQueries(), OptimizerPath::kOrca,
                              "tpcds/orca", /*workers=*/1, {3, 1024});
  engaged += CheckWorkload(db(), TpcdsQueries(), OptimizerPath::kMySql,
                           "tpcds/mysql", /*workers=*/4, {1024});
  EXPECT_GT(engaged, 0);
}

// ---------------------------------------------------------------------------
// Selection-vector edge cases
// ---------------------------------------------------------------------------

/// Own tiny engine: a nullable-column table whose predicates produce
/// all-pass, all-fail, and alternating-NULL selection vectors, compared
/// batch-vs-Volcano at boundary batch sizes (1, 3) and a size larger than
/// the table.
class SelectionEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>();
    ASSERT_TRUE(db_->ExecuteSql("CREATE TABLE t (id INT NOT NULL PRIMARY "
                                "KEY, v INT, s VARCHAR(8))")
                    .ok());
    std::vector<Row> rows;
    for (int i = 0; i < 257; ++i) {  // not a multiple of any batch size
      rows.push_back({Value::Int(i),
                      i % 2 == 0 ? Value::Null() : Value::Int(i % 10),
                      i % 3 == 0 ? Value::Null()
                                 : Value::Str("s" + std::to_string(i % 4))});
    }
    ASSERT_TRUE(db_->BulkLoad("t", std::move(rows)).ok());
    ASSERT_TRUE(db_->AnalyzeAll().ok());
  }

  void CheckBoth(const std::string& sql) {
    SCOPED_TRACE(sql);
    Configure(db_.get(), 1, /*batch=*/false, 1024);
    auto volcano = db_->Query(sql, OptimizerPath::kMySql);
    ASSERT_TRUE(volcano.ok()) << volcano.status().ToString();
    for (int64_t bs : {int64_t{1}, int64_t{3}, int64_t{4096}}) {
      SCOPED_TRACE("batch_size=" + std::to_string(bs));
      Configure(db_.get(), 1, /*batch=*/true, bs);
      auto batch = db_->Query(sql, OptimizerPath::kMySql);
      ASSERT_TRUE(batch.ok()) << batch.status().ToString();
      EXPECT_EQ(RowsText(batch->rows), RowsText(volcano->rows));
      EXPECT_EQ(batch->rows_scanned, volcano->rows_scanned);
    }
  }

  std::unique_ptr<Database> db_;
};

TEST_F(SelectionEdgeTest, AllPass) {
  CheckBoth("SELECT COUNT(*), SUM(id) FROM t WHERE id >= 0");
}

TEST_F(SelectionEdgeTest, AllFail) {
  CheckBoth("SELECT COUNT(*), SUM(id) FROM t WHERE id < 0");
}

TEST_F(SelectionEdgeTest, AlternatingNulls) {
  // v is NULL on every even row: the predicate's 3-valued logic must drop
  // NULL outcomes exactly as the row-at-a-time evaluator does.
  CheckBoth("SELECT COUNT(*), SUM(v) FROM t WHERE v > 4");
  CheckBoth("SELECT COUNT(*) FROM t WHERE v IS NULL");
  CheckBoth("SELECT COUNT(*) FROM t WHERE v IS NOT NULL AND s IS NULL");
  CheckBoth("SELECT id FROM t WHERE NOT (v > 4 OR s = 's1')");
  CheckBoth("SELECT id, v FROM t WHERE v > 2 AND v < 8 AND s <> 's2'");
  CheckBoth(
      "SELECT CASE WHEN v IS NULL THEN -1 ELSE v END, COUNT(*) FROM t "
      "GROUP BY CASE WHEN v IS NULL THEN -1 ELSE v END");
  CheckBoth("SELECT id FROM t WHERE v IN (1, 3, NULL)");
}

TEST_F(SelectionEdgeTest, LastBatchPartialFill) {
  // 257 rows with batch sizes 1/3/4096 exercises short final batches and
  // single-row batches; the join doubles as a probe-side boundary check.
  CheckBoth(
      "SELECT a.id, b.v FROM t a, t b WHERE a.id = b.id AND a.v > 3");
}

}  // namespace
}  // namespace taurus
