#include <gtest/gtest.h>

#include <set>

#include "mdp/oid_layout.h"

namespace taurus {
namespace {

TEST(OidLayoutTest, CubeSizes) {
  EXPECT_EQ(kNumArithExprs, 720);  // 12 * 12 * 5 (Section 5.2)
  EXPECT_EQ(kNumCmpExprs, 864);    // 12 * 12 * 6
  EXPECT_EQ(kNumAggExprs, 84);     // 14 * 6
}

TEST(OidLayoutTest, SlotsAreDisjoint) {
  // "base + enumeration" layout (Section 5.6): ranges must not overlap.
  EXPECT_GE(kArithBase, kTypeBase + kNumTypeIds);
  EXPECT_GE(kCmpBase, kArithBase + kNumArithExprs);
  EXPECT_GE(kAggBase, kCmpBase + kNumCmpExprs);
  EXPECT_GE(kMappedFuncBase, kAggBase + kNumAggExprs);
  EXPECT_GE(kRegularFuncBase,
            kMappedFuncBase + kNumArithExprs + kNumCmpExprs + kNumAggExprs);
  EXPECT_GT(kRelationBase, kRegularFuncBase);
}

TEST(OidLayoutTest, TypeOidRoundTrip) {
  for (int t = 0; t < kNumTypeIds; ++t) {
    TypeId type = static_cast<TypeId>(t);
    auto back = TypeFromOid(TypeOid(type));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, type);
  }
  EXPECT_FALSE(TypeFromOid(kTypeBase - 1).ok());
  EXPECT_FALSE(TypeFromOid(kTypeBase + kNumTypeIds).ok());
}

// ---------------------------------------------------------------------------
// Property sweep over every comparison-cube point.
// ---------------------------------------------------------------------------

class CmpCubeTest : public ::testing::TestWithParam<int> {};

TEST_P(CmpCubeTest, EncodeDecodeCommutatorInverse) {
  int64_t oid = kCmpBase + GetParam();
  auto point = DecodeExprOid(oid);
  ASSERT_TRUE(point.ok());
  ASSERT_EQ(point->family, ExprPoint::Family::kCmp);

  // Encode(decode(oid)) == oid.
  auto re = CmpExprOid(point->left, point->right, point->op);
  ASSERT_TRUE(re.ok());
  EXPECT_EQ(*re, oid);

  // Commutator exists for all comparisons and is an involution.
  int64_t comm = CommutatorOid(oid);
  ASSERT_NE(comm, kInvalidOid);
  EXPECT_EQ(CommutatorOid(comm), oid);
  // The commutator swaps the operand categories.
  auto cp = DecodeExprOid(comm);
  ASSERT_TRUE(cp.ok());
  EXPECT_EQ(cp->left, point->right);
  EXPECT_EQ(cp->right, point->left);
  EXPECT_EQ(cp->op, CommuteComparison(point->op));

  // Inverse is an involution that keeps operand order.
  int64_t inv = InverseOid(oid);
  ASSERT_NE(inv, kInvalidOid);
  EXPECT_EQ(InverseOid(inv), oid);
  auto ip = DecodeExprOid(inv);
  ASSERT_TRUE(ip.ok());
  EXPECT_EQ(ip->left, point->left);
  EXPECT_EQ(ip->right, point->right);
  EXPECT_EQ(ip->op, InverseComparison(point->op));
}

INSTANTIATE_TEST_SUITE_P(AllComparisons, CmpCubeTest,
                         ::testing::Range(0, kNumCmpExprs));

// ---------------------------------------------------------------------------
// Property sweep over every arithmetic-cube point.
// ---------------------------------------------------------------------------

class ArithCubeTest : public ::testing::TestWithParam<int> {};

TEST_P(ArithCubeTest, EncodeDecodeCommutator) {
  int64_t oid = kArithBase + GetParam();
  auto point = DecodeExprOid(oid);
  ASSERT_TRUE(point.ok());
  ASSERT_EQ(point->family, ExprPoint::Family::kArith);
  auto re = ArithExprOid(point->left, point->right, point->op);
  ASSERT_TRUE(re.ok());
  EXPECT_EQ(*re, oid);

  int64_t comm = CommutatorOid(oid);
  if (point->op == BinaryOp::kAdd || point->op == BinaryOp::kMul) {
    ASSERT_NE(comm, kInvalidOid);
    EXPECT_EQ(CommutatorOid(comm), oid);  // involution
  } else {
    // '-', '/', '%' do not commute (Section 5.3).
    EXPECT_EQ(comm, kInvalidOid);
  }
  // No inverse for arithmetic.
  EXPECT_EQ(InverseOid(oid), kInvalidOid);
}

INSTANTIATE_TEST_SUITE_P(AllArithmetic, ArithCubeTest,
                         ::testing::Range(0, kNumArithExprs));

// ---------------------------------------------------------------------------

TEST(OidLayoutTest, AggCubeRoundTrip) {
  for (int e = 0; e < kNumAggExprs; ++e) {
    int64_t oid = kAggBase + e;
    auto point = DecodeExprOid(oid);
    ASSERT_TRUE(point.ok());
    ASSERT_EQ(point->family, ExprPoint::Family::kAgg);
    auto re = AggExprOid(point->left, point->agg);
    ASSERT_TRUE(re.ok()) << ExprOidName(oid);
    EXPECT_EQ(*re, oid);
    EXPECT_EQ(CommutatorOid(oid), kInvalidOid);  // aggregates are unary
  }
}

TEST(OidLayoutTest, CountStarUsesStarCategory) {
  auto star = AggExprOid(TypeCategory::kStar, AggFunc::kCountStar);
  ASSERT_TRUE(star.ok());
  EXPECT_EQ(ExprOidName(*star), "COUNT_STAR");
  // COUNT(*) with a non-STAR category is rejected.
  EXPECT_FALSE(AggExprOid(TypeCategory::kNum, AggFunc::kCountStar).ok());
  auto any = AggExprOid(TypeCategory::kAny, AggFunc::kCount);
  ASSERT_TRUE(any.ok());
  EXPECT_EQ(ExprOidName(*any), "COUNT_ANY");
}

TEST(OidLayoutTest, ExprNames) {
  auto eq = CmpExprOid(TypeCategory::kStr, TypeCategory::kStr, BinaryOp::kEq);
  EXPECT_EQ(ExprOidName(*eq), "STR_EQ_STR");  // Section 5.7's example
  auto add =
      ArithExprOid(TypeCategory::kInt4, TypeCategory::kNum, BinaryOp::kAdd);
  EXPECT_EQ(ExprOidName(*add), "INT4_ADD_NUM");
  EXPECT_EQ(ExprOidName(12345678), "INVALID");
}

TEST(OidLayoutTest, AllExpressionOidsDistinct) {
  std::set<int64_t> seen;
  for (int e = 0; e < kNumArithExprs; ++e) seen.insert(kArithBase + e);
  for (int e = 0; e < kNumCmpExprs; ++e) seen.insert(kCmpBase + e);
  for (int e = 0; e < kNumAggExprs; ++e) seen.insert(kAggBase + e);
  EXPECT_EQ(seen.size(),
            static_cast<size_t>(kNumArithExprs + kNumCmpExprs +
                                kNumAggExprs));
}

TEST(OidLayoutTest, RelationOidsStrided) {
  EXPECT_EQ(RelationOid(0), kRelationBase);
  EXPECT_EQ(RelationOid(3), kRelationBase + 3 * kRelationStride);
  EXPECT_EQ(ColumnOid(3, 7), RelationOid(3) + 8);
  EXPECT_EQ(IndexOid(3, 2), RelationOid(3) + kIndexSlot + 2);
  EXPECT_EQ(TableIdFromOid(RelationOid(3)), 3);
  EXPECT_EQ(TableIdFromOid(ColumnOid(3, 7)), 3);
  EXPECT_EQ(TableIdFromOid(IndexOid(3, 2)), 3);
  EXPECT_EQ(TableIdFromOid(42), -1);  // below relation_base
}

TEST(OidLayoutTest, ColumnsNeverCollideWithIndexSlots) {
  // Up to kIndexSlot-1 columns fit before the index slot begins.
  EXPECT_LT(ColumnOid(0, static_cast<int>(kIndexSlot) - 2), IndexOid(0, 0));
  EXPECT_LT(IndexOid(0, 100), RelationOid(1));
}

}  // namespace
}  // namespace taurus
