#include <gtest/gtest.h>

#include "engine/database.h"

namespace taurus {
namespace {

class ExplainTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.ExecuteSql(
                       "CREATE TABLE part (p_id INT NOT NULL PRIMARY KEY, "
                       "p_brand VARCHAR(10) NOT NULL)")
                    .ok());
    ASSERT_TRUE(db_.ExecuteSql(
                       "CREATE TABLE li (l_pid INT NOT NULL, "
                       "l_qty INT NOT NULL)")
                    .ok());
    ASSERT_TRUE(db_.ExecuteSql("CREATE INDEX li_pid ON li (l_pid)").ok());
    std::vector<Row> parts;
    for (int i = 0; i < 50; ++i) {
      parts.push_back({Value::Int(i),
                       Value::Str("B" + std::to_string(i % 5))});
    }
    ASSERT_TRUE(db_.BulkLoad("part", std::move(parts)).ok());
    std::vector<Row> lis;
    for (int i = 0; i < 500; ++i) {
      lis.push_back({Value::Int(i % 50), Value::Int(i % 9)});
    }
    ASSERT_TRUE(db_.BulkLoad("li", std::move(lis)).ok());
    ASSERT_TRUE(db_.AnalyzeAll().ok());
  }

  Database db_;
};

TEST_F(ExplainTest, TreeShapeHasIndentedOperators) {
  auto e = db_.Explain(
      "SELECT p_brand, COUNT(*) FROM part, li WHERE p_id = l_pid "
      "GROUP BY p_brand ORDER BY 2 DESC LIMIT 3",
      OptimizerPath::kMySql);
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  // Operators appear in MySQL's order: Limit, Sort, Aggregate, join, scans.
  size_t limit_pos = e->find("Limit: 3 row(s)");
  size_t sort_pos = e->find("Sort:");
  size_t agg_pos = e->find("Aggregate:");
  size_t join_pos = e->find("join");
  ASSERT_NE(limit_pos, std::string::npos) << *e;
  ASSERT_NE(sort_pos, std::string::npos);
  ASSERT_NE(agg_pos, std::string::npos);
  ASSERT_NE(join_pos, std::string::npos);
  EXPECT_LT(limit_pos, sort_pos);
  EXPECT_LT(sort_pos, agg_pos);
  EXPECT_LT(agg_pos, join_pos);
}

TEST_F(ExplainTest, CostsAndRowsShown) {
  auto e = db_.Explain("SELECT COUNT(*) FROM li WHERE l_qty = 3",
                       OptimizerPath::kMySql);
  ASSERT_TRUE(e.ok());
  EXPECT_NE(e->find("cost="), std::string::npos);
  EXPECT_NE(e->find("rows="), std::string::npos);
}

TEST_F(ExplainTest, IndexLookupShowsKeyBinding) {
  auto e = db_.Explain(
      "SELECT COUNT(*) FROM part, li WHERE p_id = l_pid AND p_brand = 'B2'",
      OptimizerPath::kMySql);
  ASSERT_TRUE(e.ok());
  EXPECT_NE(e->find("Index lookup on li using li_pid"), std::string::npos)
      << *e;
  EXPECT_NE(e->find("l_pid="), std::string::npos);
}

TEST_F(ExplainTest, OrcaHeaderAndEstimates) {
  auto e = db_.Explain(
      "SELECT COUNT(*) FROM part, li WHERE p_id = l_pid",
      OptimizerPath::kOrca);
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_EQ(e->rfind("EXPLAIN (ORCA)\n", 0), 0u);
  EXPECT_NE(e->find("cost="), std::string::npos);
}

TEST_F(ExplainTest, SubqueryRenderedSeparately) {
  auto e = db_.Explain(
      "SELECT COUNT(*) FROM li WHERE l_qty > "
      "(SELECT AVG(l2.l_qty) FROM li l2 WHERE l2.l_pid = li.l_pid)",
      OptimizerPath::kMySql);
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_NE(e->find("Subquery #1 (correlated)"), std::string::npos) << *e;
}

TEST_F(ExplainTest, SortElisionAnnotated) {
  auto e = db_.Explain("SELECT p_id FROM part WHERE p_id < 10 ORDER BY p_id",
                       OptimizerPath::kMySql);
  ASSERT_TRUE(e.ok());
  EXPECT_NE(e->find("Sort elided (index provides order)"),
            std::string::npos)
      << *e;
}

TEST_F(ExplainTest, HashJoinShowsKeys) {
  // No index on l_qty: equality forces a hash join on the MySQL path.
  auto e = db_.Explain(
      "SELECT COUNT(*) FROM part, li WHERE p_id = l_qty",
      OptimizerPath::kMySql);
  ASSERT_TRUE(e.ok());
  // l_qty joins p_id... li has no index on l_qty but part has p_id pk, so
  // a ref access may win; accept either rendering as long as the plan
  // prints a join with its predicate.
  EXPECT_NE(e->find("join"), std::string::npos);
}

}  // namespace
}  // namespace taurus
