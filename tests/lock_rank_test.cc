// Tests for the runtime lock-order analyzer (common/lock_rank.h): injected
// rank inversions must be caught with the exact diagnostic (both lock
// names + rule id + DESIGN.md reference), and a full TPC-H/TPC-DS sweep
// through both optimizer paths with the registry armed must be violation
// free — the machine-checked version of the DESIGN.md section 12 prose.
#include "common/lock_rank.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "server/server.h"
#include "workloads/tpcds.h"
#include "workloads/tpch.h"

namespace taurus {
namespace {

std::vector<LockRankViolation> g_captured;

/// Records the violation for assertions. Used for the clean-sweep test,
/// where any capture is a failure.
void CaptureHandler(const LockRankViolation& v) { g_captured.push_back(v); }

/// Records and then unwinds out of Mutex::lock() before the underlying
/// acquisition, so deliberately-injected inversions (including recursive
/// self-locks, which would deadlock) never actually take the lock.
struct LockRankError : std::runtime_error {
  using std::runtime_error::runtime_error;
};
void ThrowHandler(const LockRankViolation& v) {
  g_captured.push_back(v);
  throw LockRankError(v.message);
}

class LockRankTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LockRankRegistry::SetEnabled(true);
    LockRankRegistry::ResetCountersForTest();
    LockRankRegistry::SetViolationHandler(&ThrowHandler);
    g_captured.clear();
  }
  void TearDown() override {
    LockRankRegistry::SetViolationHandler(nullptr);
    LockRankRegistry::SetEnabled(kLockRankChecksDefault);
    EXPECT_EQ(LockRankRegistry::HeldDepthForTest(), 0)
        << "test leaked a held-lock stack entry";
  }
};

TEST_F(LockRankTest, AscendingAcquisitionIsClean) {
  Mutex admission(LockRank::kServerAdmission, "server.admission");
  Mutex pool(LockRank::kThreadPool, "common.thread_pool");
  admission.lock();
  pool.lock();
  pool.unlock();
  admission.unlock();
  EXPECT_TRUE(g_captured.empty());
  EXPECT_GE(LockRankRegistry::checks(), 2);
  EXPECT_EQ(LockRankRegistry::violations(), 0);
}

TEST_F(LockRankTest, RankInversionIsCaughtWithBothNamesAndRule) {
  Mutex pool(LockRank::kThreadPool, "common.thread_pool");
  Mutex admission(LockRank::kServerAdmission, "server.admission");
  pool.lock();
  EXPECT_THROW(admission.lock(), LockRankError);
  pool.unlock();

  ASSERT_EQ(g_captured.size(), 1u);
  const LockRankViolation& v = g_captured[0];
  EXPECT_STREQ(v.rule, "LR1");
  EXPECT_EQ(v.acquiring, "server.admission");
  EXPECT_EQ(v.holding, "common.thread_pool");
  EXPECT_EQ(v.acquiring_rank, 10);
  EXPECT_EQ(v.holding_rank, 70);
  // The exact diagnostic: both lock names, both ranks, the rule id, and
  // the DESIGN.md rule text.
  EXPECT_EQ(v.message,
            "lock-rank violation [LR1]: acquiring \"server.admission\" "
            "(rank 10) while holding \"common.thread_pool\" (rank 70) — "
            "DESIGN.md §12 LR1: locks must be acquired in ascending rank "
            "order");
  EXPECT_EQ(LockRankRegistry::violations(), 1);
}

TEST_F(LockRankTest, RecursiveAcquisitionIsCaught) {
  Mutex state(LockRank::kDatabaseState, "engine.state");
  state.lock();
  EXPECT_THROW(state.lock(), LockRankError);
  state.unlock();

  ASSERT_EQ(g_captured.size(), 1u);
  EXPECT_STREQ(g_captured[0].rule, "LR2");
  EXPECT_EQ(g_captured[0].acquiring, "engine.state");
  EXPECT_EQ(g_captured[0].holding, "engine.state");
  EXPECT_NE(g_captured[0].message.find(
                "LR2: recursive acquisition of a non-recursive lock"),
            std::string::npos)
      << g_captured[0].message;
}

TEST_F(LockRankTest, LeafBandForbidsAnyNestedAcquisition) {
  Mutex state(LockRank::kDatabaseState, "engine.state");
  // Even a higher rank may not nest under a leaf-band lock.
  Mutex injector(LockRank::kFaultInjector, "common.fault_injector");
  state.lock();
  EXPECT_THROW(injector.lock(), LockRankError);
  state.unlock();

  ASSERT_EQ(g_captured.size(), 1u);
  EXPECT_STREQ(g_captured[0].rule, "LR3");
  EXPECT_EQ(g_captured[0].acquiring, "common.fault_injector");
  EXPECT_EQ(g_captured[0].holding, "engine.state");
  EXPECT_NE(g_captured[0].message.find(
                "LR3: no lock may be acquired while holding a leaf-band "
                "lock"),
            std::string::npos)
      << g_captured[0].message;
}

TEST_F(LockRankTest, StripedSameRankAllowsAscendingStripesOnly) {
  SharedMutex shards[3];
  for (int i = 0; i < 3; ++i) {
    shards[i].SetRank(LockRank::kPlanCacheShard, "engine.plan_cache.shard",
                      i);
  }
  // Ascending stripe sweep (the set_capacity pattern): legal.
  for (auto& shard : shards) shard.lock();
  for (auto& shard : shards) shard.unlock();
  EXPECT_TRUE(g_captured.empty());

  // Descending: the same locks in the forbidden order.
  shards[2].lock();
  EXPECT_THROW(shards[1].lock(), LockRankError);
  shards[2].unlock();
  ASSERT_EQ(g_captured.size(), 1u);
  EXPECT_STREQ(g_captured[0].rule, "LR2");
  EXPECT_EQ(g_captured[0].acquiring, "engine.plan_cache.shard[1]");
  EXPECT_EQ(g_captured[0].holding, "engine.plan_cache.shard[2]");
  EXPECT_NE(g_captured[0].message.find(
                "LR2: same-rank acquisition outside the striped "
                "ascending-index exception"),
            std::string::npos)
      << g_captured[0].message;
}

TEST_F(LockRankTest, SharedAcquisitionsRankLikeExclusive) {
  SharedMutex store(LockRank::kFeedbackStore, "feedback.store");
  SharedMutex quarantine(LockRank::kQuarantine, "engine.quarantine");
  store.lock_shared();
  // Reader or writer makes no difference to ordering: rank 30 under 40.
  EXPECT_THROW(quarantine.lock_shared(), LockRankError);
  store.unlock_shared();
  ASSERT_EQ(g_captured.size(), 1u);
  EXPECT_STREQ(g_captured[0].rule, "LR1");
}

TEST_F(LockRankTest, UnrankedLocksAreExemptFromOrdering) {
  Mutex pool(LockRank::kThreadPool, "common.thread_pool");
  Mutex scratch;  // kUnranked: test/example locks opt out of ordering
  pool.lock();
  scratch.lock();  // would be LR1 if ranked
  scratch.unlock();
  pool.unlock();
  EXPECT_TRUE(g_captured.empty());
  // But recursive self-locking is still caught even unranked.
  scratch.lock();
  EXPECT_THROW(scratch.lock(), LockRankError);
  scratch.unlock();
  ASSERT_EQ(g_captured.size(), 1u);
  EXPECT_STREQ(g_captured[0].rule, "LR2");
}

TEST_F(LockRankTest, DisabledRegistryChecksNothing) {
  LockRankRegistry::SetEnabled(false);
  Mutex pool(LockRank::kThreadPool, "common.thread_pool");
  Mutex admission(LockRank::kServerAdmission, "server.admission");
  pool.lock();
  admission.lock();  // inverted, but the registry is off
  admission.unlock();
  pool.unlock();
  EXPECT_TRUE(g_captured.empty());
  EXPECT_EQ(LockRankRegistry::checks(), 0);
}

/// The clean bill: every TPC-H and TPC-DS query through both optimizer
/// paths — serial and with the parallel executor + feedback loop engaged,
/// plus a concurrent multi-session burst through Server/admission — with
/// the registry armed. Zero violations proves the shipped lock orderings
/// match the DESIGN.md section 12 rank table end to end.
TEST_F(LockRankTest, TpchTpcdsBothPathSweepIsViolationFree) {
  LockRankRegistry::SetViolationHandler(&CaptureHandler);
  const int64_t checks_before = LockRankRegistry::checks();

  for (int workload = 0; workload < 2; ++workload) {
    Database db;
    auto st = workload == 0 ? SetupTpch(&db, 0.001) : SetupTpcds(&db, 0.0001);
    ASSERT_TRUE(st.ok()) << st.ToString();
    // Engage every concurrent subsystem: Orca detours, the parallel
    // executor's worker pool, the feedback store + sketches, tracing.
    db.router_config().complex_query_threshold = 1;
    db.exec_config().parallel_workers = 2;
    db.exec_config().parallel_min_driver_rows = 64;
    db.exec_config().morsel_rows = 64;
    db.feedback_config().enable = true;
    const std::vector<std::string>& queries =
        workload == 0 ? TpchQueries() : TpcdsQueries();

    for (OptimizerPath path : {OptimizerPath::kMySql, OptimizerPath::kAuto}) {
      for (const std::string& sql : queries) {
        auto res = db.Query(sql, path);
        ASSERT_TRUE(res.ok()) << res.status().ToString();
      }
    }

    // Concurrent burst: 4 sessions re-running the first queries through
    // admission, exercising the server.admission -> engine lock ordering
    // and the plan-cache hit path under contention.
    Server server(&db);
    std::vector<std::thread> threads;
    std::atomic<int> failures{0};
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&server, &queries, &failures] {
        auto session = server.CreateSession();
        if (!session.ok()) {
          failures.fetch_add(1);
          return;
        }
        for (size_t q = 0; q < 4 && q < queries.size(); ++q) {
          auto res = (*session)->Query(queries[q], OptimizerPath::kAuto);
          if (!res.ok()) failures.fetch_add(1);
        }
      });
    }
    for (std::thread& t : threads) t.join();
    EXPECT_EQ(failures.load(), 0);

    // Plan-cache maintenance sweep: the all-shard ascending-stripe path
    // (set_capacity/Clear) that motivated rule LR2's striping exception.
    db.plan_cache().set_capacity(128);
    db.plan_cache().Clear();

    // The counters surface next to the plan-verifier metrics.
    std::string json = db.MetricsJson();
    EXPECT_NE(json.find("taurus.verify.lock_rank.checks"), std::string::npos);
    EXPECT_NE(json.find("taurus.verify.lock_rank.violations"),
              std::string::npos);
  }

  EXPECT_GT(LockRankRegistry::checks(), checks_before)
      << "sweep exercised no instrumented locks";
  EXPECT_EQ(LockRankRegistry::violations(), 0);
  for (const LockRankViolation& v : g_captured) {
    ADD_FAILURE() << "unexpected lock-rank violation: " << v.message;
  }
}

}  // namespace
}  // namespace taurus
