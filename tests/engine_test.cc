#include <gtest/gtest.h>

#include <algorithm>

#include "engine/database.h"

namespace taurus {
namespace {

/// Sorts rows lexicographically for order-insensitive comparison.
void SortRows(std::vector<Row>* rows) {
  std::sort(rows->begin(), rows->end(), [](const Row& a, const Row& b) {
    for (size_t i = 0; i < a.size(); ++i) {
      int c = Value::Compare(a[i], b[i]);
      if (c != 0) return c < 0;
    }
    return false;
  });
}

std::string RowsToText(const std::vector<Row>& rows) {
  std::string out;
  for (const Row& r : rows) out += RowToString(r) + "\n";
  return out;
}

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.ExecuteSql(
                       "CREATE TABLE nation (n_id INT NOT NULL PRIMARY KEY, "
                       "n_name VARCHAR(25) NOT NULL)")
                    .ok());
    ASSERT_TRUE(db_.ExecuteSql(
                       "CREATE TABLE customer (c_id INT NOT NULL PRIMARY KEY, "
                       "c_nation INT NOT NULL, c_name VARCHAR(25) NOT NULL, "
                       "c_acct DOUBLE NOT NULL)")
                    .ok());
    ASSERT_TRUE(db_.ExecuteSql(
                       "CREATE TABLE orders (o_id INT NOT NULL PRIMARY KEY, "
                       "o_cust INT NOT NULL, o_date DATE NOT NULL, "
                       "o_total DOUBLE NOT NULL)")
                    .ok());
    ASSERT_TRUE(
        db_.ExecuteSql("CREATE INDEX o_cust_idx ON orders (o_cust)").ok());
    ASSERT_TRUE(db_.ExecuteSql(
                       "CREATE TABLE lineitem (l_oid INT NOT NULL, "
                       "l_item INT NOT NULL, l_qty INT NOT NULL, "
                       "l_price DOUBLE NOT NULL)")
                    .ok());
    ASSERT_TRUE(
        db_.ExecuteSql("CREATE INDEX l_oid_idx ON lineitem (l_oid)").ok());

    std::vector<Row> nations;
    for (int i = 0; i < 5; ++i) {
      nations.push_back({Value::Int(i), Value::Str("nation" + std::to_string(i))});
    }
    ASSERT_TRUE(db_.BulkLoad("nation", std::move(nations)).ok());

    std::vector<Row> customers;
    for (int i = 0; i < 40; ++i) {
      customers.push_back({Value::Int(i), Value::Int(i % 5),
                           Value::Str("cust" + std::to_string(i)),
                           Value::Double(100.0 * (i % 7))});
    }
    ASSERT_TRUE(db_.BulkLoad("customer", std::move(customers)).ok());

    std::vector<Row> orders;
    for (int i = 0; i < 200; ++i) {
      orders.push_back({Value::Int(i), Value::Int(i % 40),
                        Value::Date(9000 + i % 90),
                        Value::Double(10.0 + i % 13)});
    }
    ASSERT_TRUE(db_.BulkLoad("orders", std::move(orders)).ok());

    std::vector<Row> items;
    for (int i = 0; i < 600; ++i) {
      items.push_back({Value::Int(i % 200), Value::Int(i % 30),
                       Value::Int(1 + i % 9), Value::Double(2.5 * (i % 11))});
    }
    ASSERT_TRUE(db_.BulkLoad("lineitem", std::move(items)).ok());
    ASSERT_TRUE(db_.AnalyzeAll().ok());
  }

  /// Runs `sql` on both paths and EXPECTs identical result multisets.
  void ExpectPathsAgree(const std::string& sql) {
    auto mysql = db_.Query(sql, OptimizerPath::kMySql);
    ASSERT_TRUE(mysql.ok()) << "mysql path: " << mysql.status().ToString()
                            << "\n" << sql;
    auto orca = db_.Query(sql, OptimizerPath::kOrca);
    ASSERT_TRUE(orca.ok()) << "orca path: " << orca.status().ToString()
                           << "\n" << sql;
    EXPECT_TRUE(orca->used_orca);
    std::vector<Row> a = mysql->rows;
    std::vector<Row> b = orca->rows;
    SortRows(&a);
    SortRows(&b);
    EXPECT_EQ(RowsToText(a), RowsToText(b)) << sql;
  }

  Database db_;
};

TEST_F(EngineTest, DdlAndInsertSql) {
  ASSERT_TRUE(
      db_.ExecuteSql("CREATE TABLE tiny (a INT NOT NULL, b VARCHAR(5))").ok());
  ASSERT_TRUE(
      db_.ExecuteSql("INSERT INTO tiny VALUES (1, 'x'), (2, NULL)").ok());
  auto rows = db_.Query("SELECT a FROM tiny WHERE b IS NULL");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->rows.size(), 1u);
  EXPECT_EQ(rows->rows[0][0].AsInt(), 2);
}

TEST_F(EngineTest, RouterThresholdControlsDetour) {
  db_.router_config().complex_query_threshold = 3;
  auto simple = db_.Query("SELECT COUNT(*) FROM orders");
  ASSERT_TRUE(simple.ok());
  EXPECT_FALSE(simple->used_orca);  // 1 table ref < 3
  auto complex = db_.Query(
      "SELECT COUNT(*) FROM customer, orders, lineitem "
      "WHERE c_id = o_cust AND o_id = l_oid");
  ASSERT_TRUE(complex.ok());
  EXPECT_TRUE(complex->used_orca);  // 3 table refs
}

TEST_F(EngineTest, ThresholdOneRoutesEverything) {
  db_.router_config().complex_query_threshold = 1;
  auto r = db_.Query("SELECT COUNT(*) FROM orders");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->used_orca);
}

TEST_F(EngineTest, OrcaDisabledNeverDetours) {
  db_.router_config().enable_orca = false;
  db_.router_config().complex_query_threshold = 1;
  auto r = db_.Query("SELECT COUNT(*) FROM orders, customer WHERE c_id=o_cust");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->used_orca);
}

TEST_F(EngineTest, PathsAgreeSimpleAggregate) {
  ExpectPathsAgree("SELECT o_cust, COUNT(*), SUM(o_total) FROM orders "
                   "GROUP BY o_cust");
}

TEST_F(EngineTest, PathsAgreeThreeWayJoin) {
  ExpectPathsAgree(
      "SELECT n_name, COUNT(*) FROM nation, customer, orders "
      "WHERE n_id = c_nation AND c_id = o_cust AND o_total > 15 "
      "GROUP BY n_name ORDER BY n_name");
}

TEST_F(EngineTest, PathsAgreeFourWayJoinWithDates) {
  ExpectPathsAgree(
      "SELECT n_name, SUM(l_price) FROM nation, customer, orders, lineitem "
      "WHERE n_id = c_nation AND c_id = o_cust AND o_id = l_oid AND "
      "o_date >= DATE '1994-09-01' GROUP BY n_name ORDER BY 2 DESC");
}

TEST_F(EngineTest, PathsAgreeLeftJoin) {
  ExpectPathsAgree(
      "SELECT c_id, COUNT(o_id) FROM customer LEFT JOIN orders "
      "ON c_id = o_cust AND o_total > 20 GROUP BY c_id");
}

TEST_F(EngineTest, PathsAgreeSemiJoin) {
  ExpectPathsAgree(
      "SELECT c_name FROM customer WHERE EXISTS "
      "(SELECT 1 FROM orders WHERE o_cust = c_id AND o_total > 21)");
}

TEST_F(EngineTest, PathsAgreeAntiJoin) {
  ExpectPathsAgree(
      "SELECT c_name FROM customer WHERE NOT EXISTS "
      "(SELECT 1 FROM orders WHERE o_cust = c_id AND o_total > 21)");
}

TEST_F(EngineTest, PathsAgreeCorrelatedScalarSubquery) {
  ExpectPathsAgree(
      "SELECT l_oid, l_qty FROM lineitem, orders WHERE l_oid = o_id AND "
      "l_qty > (SELECT AVG(l2.l_qty) FROM lineitem l2 "
      "WHERE l2.l_item = lineitem.l_item)");
}

TEST_F(EngineTest, PathsAgreeDerivedTable) {
  ExpectPathsAgree(
      "SELECT d.cnt, COUNT(*) FROM (SELECT o_cust, COUNT(*) cnt FROM orders "
      "GROUP BY o_cust) d, customer WHERE d.o_cust = c_id GROUP BY d.cnt");
}

TEST_F(EngineTest, PathsAgreeCte) {
  ExpectPathsAgree(
      "WITH big AS (SELECT o_cust, SUM(o_total) s FROM orders GROUP BY "
      "o_cust) SELECT b1.o_cust FROM big b1, big b2 WHERE b1.o_cust = "
      "b2.o_cust AND b1.s > 50 ORDER BY 1");
}

TEST_F(EngineTest, PathsAgreeOrFactorableQuery) {
  // The TPC-DS Q41 pattern: OR with a common equality conjunct.
  ExpectPathsAgree(
      "SELECT COUNT(*) FROM customer, orders WHERE "
      "(c_id = o_cust AND o_total > 18) OR (c_id = o_cust AND c_acct > 500)");
}

TEST_F(EngineTest, PathsAgreeUnion) {
  ExpectPathsAgree(
      "SELECT c_id x FROM customer, nation WHERE c_nation = n_id AND c_id < 5 "
      "UNION SELECT o_cust FROM orders, customer WHERE o_cust = c_id AND "
      "o_id < 9");
}

TEST_F(EngineTest, CteProducerReuseMetric) {
  db_.router_config().complex_query_threshold = 1;
  auto r = db_.Query(
      "WITH big AS (SELECT o_cust, SUM(o_total) s FROM orders GROUP BY "
      "o_cust) SELECT COUNT(*) FROM big b1, big b2 WHERE b1.o_cust = "
      "b2.o_cust",
      OptimizerPath::kOrca);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // The second CTE copy reused the producer skeleton.
  EXPECT_EQ(db_.last_orca_metrics().cte_producers_reused, 1);
}

TEST_F(EngineTest, MdpCacheIsUsed) {
  auto r = db_.Query(
      "SELECT COUNT(*) FROM orders o1, orders o2, orders o3 WHERE "
      "o1.o_id = o2.o_id AND o2.o_id = o3.o_id AND o1.o_id < 4",
      OptimizerPath::kOrca);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Three references to `orders`, one DXL round trip.
  EXPECT_GE(db_.last_orca_metrics().mdp_cache_hits, 1);
}

TEST_F(EngineTest, ExplainMarksOrcaPlans) {
  auto mysql_explain = db_.Explain(
      "SELECT COUNT(*) FROM orders, customer WHERE o_cust = c_id",
      OptimizerPath::kMySql);
  ASSERT_TRUE(mysql_explain.ok()) << mysql_explain.status().ToString();
  EXPECT_EQ(mysql_explain->rfind("EXPLAIN\n", 0), 0u);
  auto orca_explain = db_.Explain(
      "SELECT COUNT(*) FROM orders, customer WHERE o_cust = c_id",
      OptimizerPath::kOrca);
  ASSERT_TRUE(orca_explain.ok()) << orca_explain.status().ToString();
  EXPECT_EQ(orca_explain->rfind("EXPLAIN (ORCA)\n", 0), 0u);
  EXPECT_NE(orca_explain->find("join"), std::string::npos);
}

TEST_F(EngineTest, ExplainShowsCorrelatedMaterialization) {
  auto explain = db_.Explain(
      "SELECT c_id FROM customer, (SELECT AVG(o_total) a FROM orders "
      "WHERE o_cust = customer.c_id) d WHERE d.a > 12",
      OptimizerPath::kMySql);
  // Correlated derived tables in FROM are non-standard; if binding rejects
  // this form, use the subquery form instead.
  if (!explain.ok()) {
    explain = db_.Explain(
        "SELECT c_id FROM customer WHERE (SELECT AVG(o_total) FROM orders "
        "WHERE o_cust = c_id) > 12",
        OptimizerPath::kMySql);
  }
  ASSERT_TRUE(explain.ok()) << explain.status().ToString();
  EXPECT_NE(explain->find("correlated"), std::string::npos);
}

TEST_F(EngineTest, ForcedOrcaOnSingleTableWorks) {
  auto r = db_.Query("SELECT COUNT(*) FROM orders WHERE o_total > 12",
                     OptimizerPath::kOrca);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->used_orca);
  auto m = db_.Query("SELECT COUNT(*) FROM orders WHERE o_total > 12",
                     OptimizerPath::kMySql);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(r->rows[0][0].AsInt(), m->rows[0][0].AsInt());
}

TEST_F(EngineTest, StrategiesProduceSameResults) {
  const std::string sql =
      "SELECT n_name, COUNT(*) FROM nation, customer, orders, lineitem "
      "WHERE n_id = c_nation AND c_id = o_cust AND o_id = l_oid "
      "GROUP BY n_name ORDER BY n_name";
  db_.orca_config().strategy = JoinSearchStrategy::kGreedy;
  auto greedy = db_.Query(sql, OptimizerPath::kOrca);
  ASSERT_TRUE(greedy.ok()) << greedy.status().ToString();
  db_.orca_config().strategy = JoinSearchStrategy::kExhaustive;
  auto ex1 = db_.Query(sql, OptimizerPath::kOrca);
  ASSERT_TRUE(ex1.ok()) << ex1.status().ToString();
  db_.orca_config().strategy = JoinSearchStrategy::kExhaustive2;
  auto ex2 = db_.Query(sql, OptimizerPath::kOrca);
  ASSERT_TRUE(ex2.ok()) << ex2.status().ToString();
  EXPECT_EQ(RowsToText(greedy->rows), RowsToText(ex1->rows));
  EXPECT_EQ(RowsToText(ex1->rows), RowsToText(ex2->rows));
}

TEST_F(EngineTest, Exhaustive2ExploresAtLeastAsMuch) {
  // Six units so the bushy search space is meaningfully larger than the
  // linear one.
  const std::string sql =
      "SELECT COUNT(*) FROM nation, customer, orders o1, orders o2, "
      "lineitem l1, lineitem l2 WHERE n_id = c_nation AND c_id = o1.o_cust "
      "AND o1.o_id = o2.o_id AND o1.o_id = l1.l_oid AND l1.l_item = "
      "l2.l_item";
  db_.orca_config().strategy = JoinSearchStrategy::kExhaustive;
  ASSERT_TRUE(db_.Query(sql, OptimizerPath::kOrca).ok());
  int64_t ex1 = db_.last_orca_metrics().partitions_evaluated;
  db_.orca_config().strategy = JoinSearchStrategy::kExhaustive2;
  ASSERT_TRUE(db_.Query(sql, OptimizerPath::kOrca).ok());
  int64_t ex2 = db_.last_orca_metrics().partitions_evaluated;
  EXPECT_GE(ex2, ex1);
}

TEST_F(EngineTest, InstrumentationCountsSomething) {
  auto r = db_.Query(
      "SELECT c_name, o_id FROM customer JOIN orders ON o_cust = c_id "
      "WHERE c_id = 7");
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->rows_scanned, 0);
}

}  // namespace
}  // namespace taurus
