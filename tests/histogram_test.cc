#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "catalog/histogram.h"
#include "common/rng.h"

namespace taurus {
namespace {

std::vector<Value> IntColumn(const std::vector<int64_t>& vals) {
  std::vector<Value> out;
  for (int64_t v : vals) out.push_back(Value::Int(v));
  return out;
}

TEST(StringPrefixTest, OrderPreserving) {
  Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    std::string a = rng.NextString(0, 12);
    std::string b = rng.NextString(0, 12);
    int64_t ea = EncodeStringPrefix(a);
    int64_t eb = EncodeStringPrefix(b);
    if (a.substr(0, 8) < b.substr(0, 8)) {
      EXPECT_LT(ea, eb) << a << " vs " << b;
    } else if (a.substr(0, 8) > b.substr(0, 8)) {
      EXPECT_GT(ea, eb) << a << " vs " << b;
    } else {
      EXPECT_EQ(ea, eb) << a << " vs " << b;
    }
  }
}

TEST(StringPrefixTest, LongCommonPrefixCollides) {
  // The documented limitation (Section 7): >=8-byte shared prefixes are
  // indistinguishable.
  EXPECT_EQ(EncodeStringPrefix("ABCDEFGHx"), EncodeStringPrefix("ABCDEFGHy"));
  EXPECT_NE(EncodeStringPrefix("ABCDEFGx"), EncodeStringPrefix("ABCDEFGy"));
}

TEST(StringPrefixTest, EmptyIsMinimal) {
  EXPECT_LT(EncodeStringPrefix(""), EncodeStringPrefix("\x01"));
}

TEST(HistogramTest, EmptyColumn) {
  Histogram h = Histogram::Build({}, 16);
  EXPECT_TRUE(h.empty());
}

TEST(HistogramTest, SingletonWhenFewDistinct) {
  Histogram h = Histogram::Build(IntColumn({1, 1, 2, 2, 2, 3}), 16);
  EXPECT_EQ(h.type(), HistogramType::kSingleton);
  ASSERT_EQ(h.buckets().size(), 3u);
  EXPECT_DOUBLE_EQ(h.buckets()[1].frequency, 0.5);
  EXPECT_DOUBLE_EQ(h.SelectivityEquals(Value::Int(2)), 0.5);
  EXPECT_DOUBLE_EQ(h.SelectivityEquals(Value::Int(7)), 0.0);
}

TEST(HistogramTest, EquiHeightWhenManyDistinct) {
  std::vector<int64_t> vals;
  for (int64_t i = 0; i < 1000; ++i) vals.push_back(i);
  Histogram h = Histogram::Build(IntColumn(vals), 8);
  EXPECT_EQ(h.type(), HistogramType::kEquiHeight);
  EXPECT_EQ(h.buckets().size(), 8u);
  // Total frequency sums to ~1.
  double total = 0;
  for (const auto& b : h.buckets()) total += b.frequency;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_EQ(h.TotalNdv(), 1000);
}

TEST(HistogramTest, RangeSelectivityInterpolates) {
  std::vector<int64_t> vals;
  for (int64_t i = 0; i < 1000; ++i) vals.push_back(i);
  Histogram h = Histogram::Build(IntColumn(vals), 10);
  EXPECT_NEAR(h.SelectivityLess(Value::Int(500), false), 0.5, 0.05);
  EXPECT_NEAR(h.SelectivityLess(Value::Int(100), false), 0.1, 0.05);
  EXPECT_NEAR(h.SelectivityGreater(Value::Int(900), false), 0.1, 0.05);
}

TEST(HistogramTest, RangeBeyondBounds) {
  Histogram h = Histogram::Build(IntColumn({10, 20, 30}), 16);
  EXPECT_DOUBLE_EQ(h.SelectivityLess(Value::Int(5), false), 0.0);
  EXPECT_DOUBLE_EQ(h.SelectivityLess(Value::Int(100), false), 1.0);
  EXPECT_DOUBLE_EQ(h.SelectivityGreater(Value::Int(100), false), 0.0);
}

TEST(HistogramTest, NullFractionTracked) {
  std::vector<Value> vals = IntColumn({1, 2, 3});
  vals.push_back(Value::Null());
  Histogram h = Histogram::Build(std::move(vals), 16);
  EXPECT_DOUBLE_EQ(h.null_fraction(), 0.25);
  // Non-null selectivities exclude the NULL share.
  EXPECT_NEAR(h.SelectivityLess(Value::Int(100), false), 0.75, 1e-9);
}

TEST(HistogramTest, SkewedSingletonFrequencies) {
  std::vector<int64_t> vals(90, 7);
  for (int64_t i = 0; i < 10; ++i) vals.push_back(100 + i);
  Histogram h = Histogram::Build(IntColumn(vals), 16);
  EXPECT_EQ(h.type(), HistogramType::kSingleton);
  EXPECT_NEAR(h.SelectivityEquals(Value::Int(7)), 0.9, 1e-9);
  EXPECT_NEAR(h.SelectivityEquals(Value::Int(105)), 0.01, 1e-9);
}

TEST(HistogramTest, EquiHeightEqualsUsesBucketNdv) {
  std::vector<int64_t> vals;
  for (int64_t i = 0; i < 1000; ++i) vals.push_back(i % 100);
  Histogram h = Histogram::Build(IntColumn(vals), 5);
  // 100 distinct values, each with frequency 0.01.
  EXPECT_NEAR(h.SelectivityEquals(Value::Int(42)), 0.01, 0.005);
}

TEST(HistogramTest, StringEquiHeight) {
  // More distinct strings than buckets forces equi-height string buckets —
  // the case the paper had to add to Orca (Section 5.5 / 7).
  std::vector<Value> vals;
  Rng rng(23);
  for (int i = 0; i < 400; ++i) vals.push_back(Value::Str(rng.NextString(3, 10)));
  Histogram h = Histogram::Build(std::move(vals), 8);
  EXPECT_EQ(h.type(), HistogramType::kEquiHeight);
  // Selectivity of a range over strings should be sane (monotone, in [0,1]).
  double a = h.SelectivityLess(Value::Str("f"), false);
  double b = h.SelectivityLess(Value::Str("q"), false);
  EXPECT_LE(a, b);
  EXPECT_GE(a, 0.0);
  EXPECT_LE(b, 1.0);
}

TEST(HistogramTest, ValueToStatsDoubleMonotoneForStrings) {
  EXPECT_LT(ValueToStatsDouble(Value::Str("apple")),
            ValueToStatsDouble(Value::Str("banana")));
  EXPECT_EQ(ValueToStatsDouble(Value::Int(5)), 5.0);
}

TEST(HistogramTest, DistinctValueNeverStraddlesBuckets) {
  std::vector<int64_t> vals;
  for (int i = 0; i < 50; ++i) vals.push_back(1);
  for (int64_t i = 0; i < 300; ++i) vals.push_back(i + 10);
  Histogram h = Histogram::Build(IntColumn(vals), 6);
  for (size_t i = 1; i < h.buckets().size(); ++i) {
    EXPECT_GT(Value::Compare(h.buckets()[i].lower, h.buckets()[i - 1].upper),
              0);
  }
}

}  // namespace
}  // namespace taurus
