#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injector.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "server/server.h"
#include "workloads/tpcds.h"
#include "workloads/tpch.h"

namespace taurus {
namespace {

void SortRows(std::vector<Row>* rows) {
  std::sort(rows->begin(), rows->end(), [](const Row& a, const Row& b) {
    for (size_t i = 0; i < a.size(); ++i) {
      int c = Value::Compare(a[i], b[i]);
      if (c != 0) return c < 0;
    }
    return false;
  });
}

/// Order-insensitive result fingerprint with doubles rounded, so plan
/// differences (path, parallelism) cannot produce spurious mismatches.
std::string Fingerprint(std::vector<Row> rows) {
  SortRows(&rows);
  std::string out;
  char buf[40];
  for (const Row& r : rows) {
    for (const Value& v : r) {
      if (v.kind() == Value::Kind::kDouble) {
        std::snprintf(buf, sizeof(buf), "%.4f|", v.AsDouble());
        out += buf;
      } else {
        out += v.ToString();
        out += '|';
      }
    }
    out += '\n';
  }
  return out;
}

/// Engines shared by the whole suite — one TPC-H, one TPC-DS (the schemas
/// share table names, so they cannot coexist in one catalog). Both get the
/// routing threshold lowered so kAuto detours, and the parallel executor
/// allowed to engage on these tiny tables. Each test wraps an engine in
/// its own Server, so admission knobs never leak between tests.
class ServerStressTest : public ::testing::Test {
 protected:
  static void Tune(Database* d) {
    d->router_config().complex_query_threshold = 1;
    d->exec_config().parallel_min_driver_rows = 64;
    d->exec_config().morsel_rows = 64;
  }

  static Database* db() {
    static Database* instance = [] {
      auto* d = new Database();
      auto st = SetupTpch(d, 0.001);
      EXPECT_TRUE(st.ok()) << st.ToString();
      Tune(d);
      return d;
    }();
    return instance;
  }

  static Database* ds_db() {
    static Database* instance = [] {
      auto* d = new Database();
      auto st = SetupTpcds(d, 0.0001);
      EXPECT_TRUE(st.ok()) << st.ToString();
      Tune(d);
      return d;
    }();
    return instance;
  }

  /// The TPC-H query pool: cheap at this scale and clean on the Orca
  /// detour (the quarantine no-contention assertion below depends on no
  /// detour ever failing).
  static const std::vector<std::string>& Queries() {
    static const std::vector<std::string> queries = [] {
      const std::vector<std::string>& h = TpchQueries();
      return std::vector<std::string>{h[0], h[2], h[5], h[9]};
    }();
    return queries;
  }

  static const std::vector<std::string>& DsQueries() {
    static const std::vector<std::string> queries = [] {
      const std::vector<std::string>& ds = TpcdsQueries();
      return std::vector<std::string>{ds[0], ds[2], ds[4]};
    }();
    return queries;
  }

  /// Serial MySQL-path row fingerprints, the ground truth every concurrent
  /// execution must reproduce bit-identically.
  static std::vector<std::string> ComputeBaselines(
      Database* d, const std::vector<std::string>& queries) {
    std::vector<std::string> out;
    for (const std::string& sql : queries) {
      auto res = d->Query(sql, OptimizerPath::kMySql);
      EXPECT_TRUE(res.ok()) << res.status().ToString();
      out.push_back(res.ok() ? Fingerprint(res->rows) : "<error>");
    }
    return out;
  }

  static const std::vector<std::string>& Baselines() {
    static const std::vector<std::string> baselines =
        ComputeBaselines(db(), Queries());
    return baselines;
  }

  static const std::vector<std::string>& DsBaselines() {
    static const std::vector<std::string> baselines =
        ComputeBaselines(ds_db(), DsQueries());
    return baselines;
  }

  /// One {sessions x workers x path} sweep leg against `d`: every session
  /// on its own thread, generous admission (no shed, no rejection), every
  /// result compared to the serial baseline.
  static void RunSweep(Database* d, const std::vector<std::string>& queries,
                       const std::vector<std::string>& baselines,
                       int num_sessions, int queries_per_session,
                       OptimizerPath path, const char* label) {
    Server server(d);
    server.server_config().max_sessions = num_sessions;
    server.server_config().admission_queue_depth = 256;
    server.server_config().session_deadline_ms = 0.0;  // never reject
    server.server_config().shed_to_mysql = false;      // honor the path

    std::atomic<int> failures{0};
    std::vector<std::string> errors(static_cast<size_t>(num_sessions));
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(num_sessions));
    for (int i = 0; i < num_sessions; ++i) {
      threads.emplace_back([&, i] {
        auto session = server.CreateSession();
        if (!session.ok()) {
          errors[static_cast<size_t>(i)] = session.status().ToString();
          failures.fetch_add(1);
          return;
        }
        for (int q = 0; q < queries_per_session; ++q) {
          const size_t idx = static_cast<size_t>(i + q) % queries.size();
          auto res = session.value()->Query(queries[idx], path);
          if (!res.ok()) {
            errors[static_cast<size_t>(i)] = res.status().ToString();
            failures.fetch_add(1);
            return;
          }
          if (Fingerprint(res->rows) != baselines[idx]) {
            errors[static_cast<size_t>(i)] =
                "row mismatch on query " + std::to_string(idx);
            failures.fetch_add(1);
            return;
          }
        }
      });
    }
    for (std::thread& t : threads) t.join();

    std::string first_error;
    for (const std::string& e : errors) {
      if (!e.empty()) {
        first_error = e;
        break;
      }
    }
    EXPECT_EQ(failures.load(), 0) << label << " sessions=" << num_sessions
                                  << ": " << first_error;
    EXPECT_EQ(server.admission().running(), 0);
    EXPECT_EQ(server.admission().queued(), 0u);
  }
};

// ---------------------------------------------------------------------------
// Deterministic admission-controller unit legs (single-threaded where the
// protocol allows it).
// ---------------------------------------------------------------------------

TEST_F(ServerStressTest, AdmissionRejectsWhenQueueFull) {
  Server server(db());
  server.server_config().max_concurrent_queries = 1;
  server.server_config().admission_queue_depth = 0;

  auto held = server.admission().Admit(AdmissionRequest{});
  ASSERT_TRUE(held.ok());
  EXPECT_FALSE(held->queued);
  EXPECT_EQ(server.admission().running(), 1);

  auto rejected = server.admission().Admit(AdmissionRequest{});
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(rejected.status().origin_subsystem(), "server.admission");
  EXPECT_EQ(rejected.status().origin_rule(), "queue_full");

  server.admission().Release(held.value());
  EXPECT_EQ(server.admission().running(), 0);
}

TEST_F(ServerStressTest, AdmissionRejectsOnQueueDeadline) {
  Server server(db());
  server.server_config().max_concurrent_queries = 1;
  server.server_config().session_deadline_ms = 30.0;

  auto held = server.admission().Admit(AdmissionRequest{});
  ASSERT_TRUE(held.ok());

  // Nobody releases, so this waiter must time out in the queue.
  auto rejected = server.admission().Admit(AdmissionRequest{});
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(rejected.status().origin_rule(), "queue_deadline");
  EXPECT_EQ(server.admission().queued(), 0u);

  server.admission().Release(held.value());
}

TEST_F(ServerStressTest, ReleaseTransfersSlotToFifoWaiterAndMarksShed) {
  Server server(db());
  server.server_config().max_concurrent_queries = 1;
  server.server_config().session_deadline_ms = 0.0;  // wait forever

  auto held = server.admission().Admit(AdmissionRequest{});
  ASSERT_TRUE(held.ok());

  Result<AdmissionTicket> granted = Status::Internal("not run");
  std::thread waiter([&] { granted = server.admission().Admit(AdmissionRequest{}); });
  while (server.admission().queued() == 0) std::this_thread::yield();

  server.admission().Release(held.value());
  waiter.join();

  ASSERT_TRUE(granted.ok()) << granted.status().ToString();
  EXPECT_TRUE(granted->queued);
  // A queued kAuto query is shed onto the MySQL path (shedding is on by
  // default) — the slot transfer and the shed policy in one observable.
  EXPECT_TRUE(granted->shed);
  EXPECT_STREQ(granted->shed_cause, "queue_wait");
  EXPECT_EQ(server.admission().running(), 1);
  server.admission().Release(granted.value());
  EXPECT_EQ(server.admission().running(), 0);
}

TEST_F(ServerStressTest, WorkerTokensAreLeasedAndReturned) {
  Server server(db());
  server.server_config().worker_tokens = 4;

  const int total = server.admission().worker_tokens_free();
  EXPECT_EQ(total, 4);

  AdmissionRequest req;
  req.requested_workers = 8;  // more than the pool: lease clamps to 4
  auto t1 = server.admission().Admit(req);
  ASSERT_TRUE(t1.ok());
  EXPECT_EQ(t1->worker_tokens, 4);
  EXPECT_EQ(server.admission().worker_tokens_free(), 0);

  // With fewer than 2 tokens free, a parallel request runs serial rather
  // than leasing a useless single token.
  auto t2 = server.admission().Admit(req);
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(t2->worker_tokens, 0);

  server.admission().Release(t1.value());
  server.admission().Release(t2.value());
  EXPECT_EQ(server.admission().worker_tokens_free(), 4);
}

TEST_F(ServerStressTest, MaxSessionsIsEnforced) {
  Server server(db());
  server.server_config().max_sessions = 2;

  auto s1 = server.CreateSession();
  auto s2 = server.CreateSession();
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_EQ(server.open_sessions(), 2);

  auto s3 = server.CreateSession();
  ASSERT_FALSE(s3.ok());
  EXPECT_EQ(s3.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(s3.status().origin_rule(), "max_sessions");

  // Closing a session frees its slot.
  s2.value().reset();
  EXPECT_EQ(server.open_sessions(), 1);
  auto s4 = server.CreateSession();
  EXPECT_TRUE(s4.ok());
}

TEST_F(ServerStressTest, SessionTraceSlotsAreIndependent) {
  Server server(db());
  server.server_config().session_deadline_ms = 0.0;
  server.server_config().shed_to_mysql = false;

  auto s1 = server.CreateSession();
  auto s2 = server.CreateSession();
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  s1.value()->options().trace = true;
  s2.value()->options().trace = true;

  ASSERT_TRUE(s1.value()->Query(Queries()[0]).ok());
  const Tracer* t1 = s1.value()->last_trace();
  ASSERT_TRUE(s2.value()->Query(Queries()[1]).ok());
  const Tracer* t2 = s2.value()->last_trace();

  // Each session keeps its own trace; s2's later query did not clobber
  // s1's slot. The engine's last_trace() is the most recent one.
  ASSERT_NE(t1, nullptr);
  ASSERT_NE(t2, nullptr);
  EXPECT_NE(t1, t2);
  EXPECT_EQ(s1.value()->last_trace(), t1);
  EXPECT_EQ(db()->last_trace(), t2);
  EXPECT_NE(t1->Find("query"), nullptr);
}

// ---------------------------------------------------------------------------
// The tentpole: N sessions on N threads drive one engine concurrently, on
// both optimizer paths, and every result is bit-identical to the serial
// baseline. Sweeps {4, 16, 64} sessions x {1, 4} executor workers.
// ---------------------------------------------------------------------------

TEST_F(ServerStressTest, ConcurrentSessionsMatchSerialBaseline) {
  for (int exec_workers : {1, 4}) {
    db()->exec_config().parallel_workers = exec_workers;  // quiesced write
    for (int num_sessions : {4, 16, 64}) {
      // Enough queries to overlap, few enough to keep the sweep fast.
      const int queries_per_session = num_sessions >= 64 ? 1 : 2;
      for (OptimizerPath path :
           {OptimizerPath::kMySql, OptimizerPath::kAuto}) {
        RunSweep(db(), Queries(), Baselines(), num_sessions,
                 queries_per_session, path,
                 path == OptimizerPath::kAuto ? "tpch/auto" : "tpch/mysql");
      }
    }
  }
  db()->exec_config().parallel_workers = 0;

  // The read-mostly quarantine contract: none of these workloads fails the
  // detour, so the table stays empty and every admission-route check takes
  // the lock-free empty fast path — zero shared-lock acquisitions.
  EXPECT_EQ(db()->quarantine_table().Size(), 0u);
  EXPECT_EQ(db()->quarantine_table().shared_checks(), 0u);
  EXPECT_GT(db()->quarantine_table().fast_path_checks(), 0u);
}

TEST_F(ServerStressTest, ConcurrentTpcdsSessionsMatchSerialBaseline) {
  for (int exec_workers : {1, 4}) {
    ds_db()->exec_config().parallel_workers = exec_workers;
    for (int num_sessions : {4, 16, 64}) {
      const int queries_per_session = num_sessions >= 64 ? 1 : 2;
      for (OptimizerPath path :
           {OptimizerPath::kMySql, OptimizerPath::kAuto}) {
        RunSweep(ds_db(), DsQueries(), DsBaselines(), num_sessions,
                 queries_per_session, path,
                 path == OptimizerPath::kAuto ? "tpcds/auto" : "tpcds/mysql");
      }
    }
  }
  ds_db()->exec_config().parallel_workers = 0;
}

// ---------------------------------------------------------------------------
// The overload leg: far more sessions than run slots, a shallow queue and a
// short deadline. Every query must either succeed (possibly shed onto the
// MySQL path, rows still correct) or be rejected with a structured
// kResourceExhausted — never crash, deadlock, or return wrong rows.
// ---------------------------------------------------------------------------

TEST_F(ServerStressTest, OverloadShedsOrRejectsButNeverCorrupts) {
  const std::vector<std::string>& queries = Queries();
  const std::vector<std::string>& baselines = Baselines();

  Server server(db());
  server.server_config().max_concurrent_queries = 2;
  server.server_config().admission_queue_depth = 4;
  server.server_config().session_deadline_ms = 25.0;
  server.server_config().shed_to_mysql = true;

  const int64_t sheds_before =
      db()->metrics().GetCounter("taurus.server.shed")->Value();

  constexpr int kSessions = 32;
  constexpr int kQueriesPerSession = 3;
  std::atomic<int> ok_count{0};
  std::atomic<int> shed_count{0};
  std::atomic<int> rejected_count{0};
  std::atomic<int> bad_outcomes{0};
  std::vector<std::string> errors(kSessions);

  std::vector<std::thread> threads;
  threads.reserve(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    threads.emplace_back([&, i] {
      auto session = server.CreateSession();
      if (!session.ok()) {
        errors[static_cast<size_t>(i)] = session.status().ToString();
        bad_outcomes.fetch_add(1);
        return;
      }
      for (int q = 0; q < kQueriesPerSession; ++q) {
        const size_t idx = static_cast<size_t>(i + q) % queries.size();
        auto res = session.value()->Query(queries[idx], OptimizerPath::kAuto);
        if (res.ok()) {
          ok_count.fetch_add(1);
          if (res->shed) {
            shed_count.fetch_add(1);
            // A shed is observable: the query fell back with a structured
            // admission reason, and its rows are still correct.
            if (!res->fell_back ||
                res->fallback_reason.find("server.admission/shed") ==
                    std::string::npos) {
              errors[static_cast<size_t>(i)] =
                  "shed without structured reason: " + res->fallback_reason;
              bad_outcomes.fetch_add(1);
              return;
            }
          }
          if (Fingerprint(res->rows) != baselines[idx]) {
            errors[static_cast<size_t>(i)] = "row mismatch under overload";
            bad_outcomes.fetch_add(1);
            return;
          }
        } else if (res.status().code() == StatusCode::kResourceExhausted &&
                   res.status().origin_subsystem() == "server.admission") {
          rejected_count.fetch_add(1);
        } else {
          errors[static_cast<size_t>(i)] = res.status().ToString();
          bad_outcomes.fetch_add(1);
          return;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  std::string first_error;
  for (const std::string& e : errors) {
    if (!e.empty()) {
      first_error = e;
      break;
    }
  }
  EXPECT_EQ(bad_outcomes.load(), 0) << first_error;
  EXPECT_EQ(ok_count.load() + rejected_count.load(),
            kSessions * kQueriesPerSession);
  // With 96 queries contending for 2 slots, shedding must engage, and it
  // must be visible in the server metrics.
  EXPECT_GT(shed_count.load(), 0);
  EXPECT_GE(db()->metrics().GetCounter("taurus.server.shed")->Value(),
            sheds_before + shed_count.load());
  // Quiesced again: no slots or tokens leaked despite rejections.
  EXPECT_EQ(server.admission().running(), 0);
  EXPECT_EQ(server.admission().queued(), 0u);
  EXPECT_EQ(server.admission().memory_in_use_bytes(), 0);
}

// Forced paths are explicit instructions: under the same overload they may
// queue or be rejected, but never shed.
TEST_F(ServerStressTest, ForcedPathsAreNeverShed) {
  Server server(db());
  server.server_config().max_concurrent_queries = 1;
  server.server_config().session_deadline_ms = 0.0;  // wait, don't reject

  constexpr int kSessions = 8;
  std::atomic<int> shed_count{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    threads.emplace_back([&, i] {
      auto session = server.CreateSession();
      if (!session.ok()) {
        failures.fetch_add(1);
        return;
      }
      auto res = session.value()->Query(Queries()[static_cast<size_t>(i) %
                                                  Queries().size()],
                                        OptimizerPath::kMySql);
      if (!res.ok()) {
        failures.fetch_add(1);
        return;
      }
      if (res->shed) shed_count.fetch_add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(shed_count.load(), 0);
}

// Post-mortem under concurrency: overlapping sessions abort their Orca
// detours while other sessions keep executing, so Database::last_trace()
// and the per-session trace slots are clobbered continuously. The flight
// recorder must still hold every aborted detour's full span tree in its
// pinned ring slot. Uses a private engine: poisoning the shared db()'s
// quarantine would break the no-contention assertions above.
TEST_F(ServerStressTest, AbortedDetourTracesSurviveOverlappingSessions) {
  Database db;
  ASSERT_TRUE(SetupTpch(&db, 0.001).ok());
  Tune(&db);
  db.plan_cache_config().enable = false;  // every compile attempts a detour
  Server server(&db);
  // Enough run slots for every session: on small machines the default
  // (2x hardware workers) makes arrivals queue, and a queued kAuto query
  // is shed onto the MySQL path — it would never attempt its detour.
  server.server_config().max_concurrent_queries = 8;

  constexpr int kSessions = 4;
  constexpr int kQueriesPerSession = 6;
  FaultInjector::Instance().ArmCount("bridge.parse_tree_convert", 1000000);
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kSessions);
  for (int i = 0; i < kSessions; ++i) {
    threads.emplace_back([&, i] {
      auto session = server.CreateSession();
      if (!session.ok()) {
        failures.fetch_add(1);
        return;
      }
      session.value()->options().trace = true;
      const std::vector<std::string>& queries = Queries();
      for (int q = 0; q < kQueriesPerSession; ++q) {
        auto res = session.value()->Query(
            queries[static_cast<size_t>(i + q) % queries.size()],
            OptimizerPath::kAuto);
        if (!res.ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  FaultInjector::Instance().DisarmAll();
  ASSERT_EQ(failures.load(), 0);

  // Every aborted-detour event still carries its span tree, long after the
  // live trace slots moved on. Quarantine engages mid-sweep (threshold
  // failures per statement), so later events are quarantine hits — pinned
  // too, but routed around the detour.
  std::vector<FlightRecord> events = db.flight_recorder().Snapshot();
  ASSERT_EQ(events.size(),
            static_cast<size_t>(kSessions * kQueriesPerSession));
  int aborted_detours = 0;
  for (const FlightRecord& e : events) {
    EXPECT_TRUE(e.fell_back || e.quarantine_hit);
    EXPECT_FALSE(e.shed) << "run slots were provisioned; no query may shed";
    ASSERT_NE(e.pinned_trace, nullptr) << "event " << e.seq << " lost its trace";
    EXPECT_GE(e.session_id, 1u);
    const std::string tree = e.pinned_trace->TreeString();
    if (e.fell_back && !e.quarantine_hit) {
      ++aborted_detours;
      EXPECT_NE(tree.find("orca.detour"), std::string::npos) << tree;
    } else {
      EXPECT_EQ(tree.find("orca.detour"), std::string::npos) << tree;
    }
  }
  EXPECT_GT(aborted_detours, 0);
  EXPECT_EQ(db.flight_recorder().pinned(),
            static_cast<int64_t>(events.size()));
}

// Memory pressure is a shed signal even without queueing: a tiny budget
// makes the very first admitted query over-budget.
TEST_F(ServerStressTest, MemoryPressureShedsWithoutQueueing) {
  Server server(db());
  server.server_config().memory_budget_bytes = 1;

  auto session = server.CreateSession();
  ASSERT_TRUE(session.ok());
  auto res = session.value()->Query(Queries()[0], OptimizerPath::kAuto);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_TRUE(res->shed);
  EXPECT_FALSE(res->admission_queued);
  EXPECT_NE(res->fallback_reason.find("memory_pressure"), std::string::npos);
  EXPECT_EQ(server.admission().memory_in_use_bytes(), 0);
}

}  // namespace
}  // namespace taurus
