#include <gtest/gtest.h>

#include "bridge/parse_tree_converter.h"
#include "frontend/prepare.h"
#include "mdp/stats_adapter.h"
#include "frontend/normalize.h"
#include "orca/optimizer.h"
#include "parser/parser.h"
#include "storage/storage.h"

namespace taurus {
namespace {

/// Fixture with a small star schema: fact(1000) -> dim_a(10), dim_b(100).
class OrcaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto fact = catalog_.CreateTable(
        "fact", {{"f_id", TypeId::kLong, 0, false},
                 {"f_a", TypeId::kLong, 0, false},
                 {"f_b", TypeId::kLong, 0, false},
                 {"f_val", TypeId::kDouble, 0, false}});
    ASSERT_TRUE(fact.ok());
    ASSERT_TRUE(catalog_.AddIndex("fact", {"fact_pk", {0}, true, true}).ok());
    ASSERT_TRUE(catalog_.AddIndex("fact", {"fact_a", {1}, false, false}).ok());
    auto dim_a = catalog_.CreateTable(
        "dim_a", {{"a_id", TypeId::kLong, 0, false},
                  {"a_name", TypeId::kVarchar, 20, false}});
    ASSERT_TRUE(dim_a.ok());
    ASSERT_TRUE(catalog_.AddIndex("dim_a", {"a_pk", {0}, true, true}).ok());
    auto dim_b = catalog_.CreateTable(
        "dim_b", {{"b_id", TypeId::kLong, 0, false},
                  {"b_name", TypeId::kVarchar, 20, false}});
    ASSERT_TRUE(dim_b.ok());
    ASSERT_TRUE(catalog_.AddIndex("dim_b", {"b_pk", {0}, true, true}).ok());

    TableData* fd = storage_.CreateTable(*fact);
    for (int i = 0; i < 1000; ++i) {
      fd->Append({Value::Int(i), Value::Int(i % 10), Value::Int(i % 100),
                  Value::Double(i * 0.5)});
    }
    fd->BuildIndexes();
    catalog_.SetStats((*fact)->id, ComputeTableStats(*fd));
    TableData* ad = storage_.CreateTable(*dim_a);
    for (int i = 0; i < 10; ++i) {
      ad->Append({Value::Int(i), Value::Str("a" + std::to_string(i))});
    }
    ad->BuildIndexes();
    catalog_.SetStats((*dim_a)->id, ComputeTableStats(*ad));
    TableData* bd = storage_.CreateTable(*dim_b);
    for (int i = 0; i < 100; ++i) {
      bd->Append({Value::Int(i), Value::Str("b" + std::to_string(i))});
    }
    bd->BuildIndexes();
    catalog_.SetStats((*dim_b)->id, ComputeTableStats(*bd));
    mdp_ = std::make_unique<MetadataProvider>(catalog_);
  }

  /// Parses, binds, prepares, converts, optimizes; returns the physical
  /// plan (keeps the statement alive in stmt_).
  Result<std::unique_ptr<OrcaPhysicalOp>> OptimizeSql(
      const std::string& sql, const OrcaConfig& config) {
    auto parsed = ParseSelect(sql);
    if (!parsed.ok()) return parsed.status();
    auto bound = BindStatement(catalog_, std::move(*parsed));
    if (!bound.ok()) return bound.status();
    stmt_ = std::move(*bound);
    TAURUS_RETURN_IF_ERROR(PrepareStatement(&stmt_));
    TAURUS_ASSIGN_OR_RETURN(
        logical_, ConvertBlockToOrcaLogical(stmt_.block.get(),
                                            stmt_.num_refs, mdp_.get(),
                                            config));
    stats_ = std::make_unique<MdpStatsProvider>(catalog_, stmt_.leaves,
                                                mdp_.get());
    OrcaOptimizer optimizer(config, stats_.get(), stmt_.num_refs);
    auto plan = optimizer.Optimize(logical_.get());
    last_partitions_ = optimizer.partitions_evaluated();
    last_groups_ = optimizer.num_groups();
    return plan;
  }

  static int CountKind(const OrcaPhysicalOp& op, OrcaPhysicalOp::Kind kind) {
    int n = op.kind == kind ? 1 : 0;
    for (const auto& c : op.children) n += CountKind(*c, kind);
    return n;
  }

  Catalog catalog_;
  Storage storage_;
  std::unique_ptr<MetadataProvider> mdp_;
  BoundStatement stmt_;
  std::unique_ptr<OrcaLogicalOp> logical_;
  std::unique_ptr<MdpStatsProvider> stats_;
  int64_t last_partitions_ = 0;
  int last_groups_ = 0;
};

TEST_F(OrcaTest, ConverterSegregatesPredicates) {
  OrcaConfig config;
  auto parsed = ParseSelect(
      "SELECT COUNT(*) FROM fact, dim_a WHERE f_a = a_id AND a_name = 'a3' "
      "AND f_val > 100");
  auto bound = BindStatement(catalog_, std::move(*parsed));
  ASSERT_TRUE(bound.ok());
  stmt_ = std::move(*bound);
  ASSERT_TRUE(PrepareStatement(&stmt_).ok());
  auto logical = ConvertBlockToOrcaLogical(stmt_.block.get(), stmt_.num_refs,
                                           mdp_.get(), config);
  ASSERT_TRUE(logical.ok()) << logical.status().ToString();
  std::string tree = (*logical)->ToString();
  // Local predicates became Selects over the Gets; the join predicate
  // stayed at the join (the paper's Listing 3 -> Listing 4 segregation).
  EXPECT_NE(tree.find("LogicalSelect[(a_name = 'a3')]"), std::string::npos)
      << tree;
  EXPECT_NE(tree.find("LogicalSelect[(f_val > 100)]"), std::string::npos)
      << tree;
  EXPECT_NE(tree.find("LogicalJoin(inner)[(f_a = a_id)]"), std::string::npos)
      << tree;
}

TEST_F(OrcaTest, ConverterEmbellishesOids) {
  OrcaConfig config;
  auto parsed = ParseSelect("SELECT COUNT(*) FROM fact WHERE f_a = 3");
  auto bound = BindStatement(catalog_, std::move(*parsed));
  stmt_ = std::move(*bound);
  ASSERT_TRUE(PrepareStatement(&stmt_).ok());
  auto logical = ConvertBlockToOrcaLogical(stmt_.block.get(), stmt_.num_refs,
                                           mdp_.get(), config);
  ASSERT_TRUE(logical.ok());
  // Single-table query: Select over Get with the relation OID and the
  // INT4_EQ_INT8 comparison OID (literal ints are BIGINT).
  const OrcaLogicalOp* node = logical->get();
  ASSERT_EQ(node->kind, OrcaLogicalOp::Kind::kSelect);
  ASSERT_EQ(node->children[0]->kind, OrcaLogicalOp::Kind::kGet);
  EXPECT_EQ(node->children[0]->relation_oid, RelationOid(0));
  ASSERT_EQ(node->cond_oids.size(), 1u);
  EXPECT_EQ(ExprOidName(node->cond_oids[0]), "INT4_EQ_INT8");
}

TEST_F(OrcaTest, PicksHashJoinForLargeBuild) {
  OrcaConfig config;
  auto plan = OptimizeSql(
      "SELECT COUNT(*) FROM fact, dim_b WHERE f_b = b_id", config);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // No usable index on f_b: hash join, probing the big fact side.
  EXPECT_EQ(CountKind(**plan, OrcaPhysicalOp::Kind::kHashJoin), 1);
}

TEST_F(OrcaTest, PicksIndexNljForSelectiveOuter) {
  OrcaConfig config;
  auto plan = OptimizeSql(
      "SELECT COUNT(*) FROM fact, dim_a WHERE f_a = a_id AND "
      "a_name = 'a3'",
      config);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // One dim row -> index lookups into fact via fact_a beat a hash build.
  EXPECT_EQ(CountKind(**plan, OrcaPhysicalOp::Kind::kIndexLookup), 1)
      << (*plan)->ToString();
}

TEST_F(OrcaTest, IndexNljDisabledFallsBackToHash) {
  OrcaConfig config;
  config.enable_index_nlj = false;
  auto plan = OptimizeSql(
      "SELECT COUNT(*) FROM fact, dim_a WHERE f_a = a_id AND "
      "a_name = 'a3'",
      config);
  ASSERT_TRUE(plan.ok());
  // No index lookups; the optimizer falls back to a hash join or (with a
  // one-row outer) a plain nested-loop rescan — either way, not a lookup.
  EXPECT_EQ(CountKind(**plan, OrcaPhysicalOp::Kind::kIndexLookup), 0);
  EXPECT_EQ(CountKind(**plan, OrcaPhysicalOp::Kind::kHashJoin) +
                CountKind(**plan, OrcaPhysicalOp::Kind::kNLJoin),
            1);
}

TEST_F(OrcaTest, MemoGroupIdsAssigned) {
  OrcaConfig config;
  auto plan = OptimizeSql(
      "SELECT COUNT(*) FROM fact, dim_a, dim_b WHERE f_a = a_id AND "
      "f_b = b_id",
      config);
  ASSERT_TRUE(plan.ok());
  EXPECT_GE((*plan)->memo_group, 0);
  EXPECT_GT(last_groups_, 3);  // at least leaves + joins
  EXPECT_GT(last_partitions_, 0);
}

TEST_F(OrcaTest, GreedyCheaperThanExhaustive2InEffort) {
  const std::string sql =
      "SELECT COUNT(*) FROM fact f1, fact f2, dim_a, dim_b WHERE "
      "f1.f_id = f2.f_id AND f1.f_a = a_id AND f2.f_b = b_id";
  OrcaConfig config;
  config.strategy = JoinSearchStrategy::kGreedy;
  ASSERT_TRUE(OptimizeSql(sql, config).ok());
  int64_t greedy = last_partitions_;
  config.strategy = JoinSearchStrategy::kExhaustive2;
  ASSERT_TRUE(OptimizeSql(sql, config).ok());
  int64_t ex2 = last_partitions_;
  EXPECT_LT(greedy, ex2);
}

TEST_F(OrcaTest, DependentUnitsRespectOrdering) {
  OrcaConfig config;
  auto plan = OptimizeSql(
      "SELECT COUNT(*) FROM dim_a WHERE EXISTS "
      "(SELECT 1 FROM fact WHERE f_a = a_id AND f_val > 400)",
      config);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // The semi join must keep dim_a on the outer side.
  const OrcaPhysicalOp* root = plan->get();
  ASSERT_TRUE(root->kind == OrcaPhysicalOp::Kind::kHashJoin ||
              root->kind == OrcaPhysicalOp::Kind::kNLJoin);
  EXPECT_EQ(root->join_type, JoinType::kSemi);
  std::vector<TableRef*> left_leaves;
  EXPECT_EQ(root->children[0]->leaf->table_name, "dim_a");
}

TEST_F(OrcaTest, CostsAndRowsPopulated) {
  OrcaConfig config;
  auto plan = OptimizeSql(
      "SELECT COUNT(*) FROM fact, dim_a WHERE f_a = a_id", config);
  ASSERT_TRUE(plan.ok());
  EXPECT_GT((*plan)->cost, 0.0);
  EXPECT_GT((*plan)->rows, 100.0);  // ~1000 rows expected
  EXPECT_LT((*plan)->rows, 10000.0);
}

// ---------------------------------------------------------------------------
// OR factoring (normalize.cc)
// ---------------------------------------------------------------------------

class OrFactorTest : public ::testing::Test {
 protected:
  std::unique_ptr<Expr> ParseExprFromWhere(const std::string& cond) {
    auto q = ParseSelect("SELECT 1 FROM t WHERE " + cond);
    EXPECT_TRUE(q.ok());
    return std::move((*q)->where);
  }
};

TEST_F(OrFactorTest, FactorsCommonConjunct) {
  auto e = ParseExprFromWhere("(a = b AND c = 1) OR (a = b AND d = 2)");
  EXPECT_TRUE(FactorOrCommonConjuncts(&e));
  // (a = b) AND ((c = 1) OR (d = 2))
  ASSERT_EQ(e->bop, BinaryOp::kAnd);
  EXPECT_EQ(e->children[0]->ToString(), "(a = b)");
  EXPECT_EQ(e->children[1]->bop, BinaryOp::kOr);
}

TEST_F(OrFactorTest, FactorsAcrossThreeBranches) {
  auto e = ParseExprFromWhere(
      "(a = b AND c = 1) OR (a = b AND d = 2) OR (a = b AND f = 3)");
  EXPECT_TRUE(FactorOrCommonConjuncts(&e));
  ASSERT_EQ(e->bop, BinaryOp::kAnd);
  EXPECT_EQ(e->children[0]->ToString(), "(a = b)");
}

TEST_F(OrFactorTest, NoCommonConjunctNoChange) {
  auto e = ParseExprFromWhere("(a = 1 AND b = 2) OR (c = 3 AND d = 4)");
  EXPECT_FALSE(FactorOrCommonConjuncts(&e));
  EXPECT_EQ(e->bop, BinaryOp::kOr);
}

TEST_F(OrFactorTest, BranchEqualToCommonMakesOrVacuous) {
  // (a = b) OR (a = b AND c = 1)  ->  a = b
  auto e = ParseExprFromWhere("(a = b) OR (a = b AND c = 1)");
  EXPECT_TRUE(FactorOrCommonConjuncts(&e));
  EXPECT_EQ(e->ToString(), "(a = b)");
}

TEST_F(OrFactorTest, MultipleCommonConjuncts) {
  auto e = ParseExprFromWhere(
      "(a = b AND x = y AND c = 1) OR (a = b AND x = y AND d = 2)");
  EXPECT_TRUE(FactorOrCommonConjuncts(&e));
  std::string s = e->ToString();
  EXPECT_NE(s.find("(a = b)"), std::string::npos);
  EXPECT_NE(s.find("(x = y)"), std::string::npos);
}

TEST_F(OrFactorTest, RecursesIntoNestedExpressions) {
  auto e = ParseExprFromWhere(
      "z = 9 AND ((a = b AND c = 1) OR (a = b AND d = 2))");
  EXPECT_TRUE(FactorOrCommonConjuncts(&e));
  EXPECT_NE(e->ToString().find("(a = b)"), std::string::npos);
}

}  // namespace
}  // namespace taurus
