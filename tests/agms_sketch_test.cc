// Fast-AGMS sketch unit tests: join-size estimates on known distributions
// stay inside the theoretical error envelope, the self-join (F2) estimate
// tracks the true second moment, stream ownership in SketchSet poisons
// double-count hazards, and concurrent update/query is data-race-free
// (exercised by the TSan leg of scripts/check.sh).

#include "feedback/agms_sketch.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "types/value.h"

namespace taurus {
namespace {

/// The AGMS error envelope for one estimate: with depth d medians over
/// width w buckets, |est - true| <= k * sqrt(F2(a) * F2(b) / w) with high
/// probability; k = 6 keeps the deterministic seeds comfortably inside.
double ErrorBound(double f2_a, double f2_b, int width) {
  return 6.0 * std::sqrt(f2_a * f2_b / static_cast<double>(width));
}

TEST(AgmsSketchTest, WidthRoundsUpToPowerOfTwo) {
  AgmsSketch s(3, 100);
  EXPECT_EQ(s.depth(), 3);
  EXPECT_EQ(s.width(), 128);
  EXPECT_EQ(s.rows(), 0);
}

TEST(AgmsSketchTest, UniformJoinSizeWithinTheoreticalBound) {
  // 1000 distinct values on each side, matching 1:1 -> true join size 1000.
  AgmsSketch a(7, 1024), b(7, 1024);
  for (uint64_t v = 0; v < 1000; ++v) {
    a.Update(Value::Int(static_cast<int64_t>(v)).Hash());
    b.Update(Value::Int(static_cast<int64_t>(v)).Hash());
  }
  double est = a.JoinSizeEstimate(b);
  // F2 = 1000 on both sides.
  EXPECT_NEAR(est, 1000.0, ErrorBound(1000.0, 1000.0, 1024));
}

TEST(AgmsSketchTest, SkewedJoinSizeWithinTheoreticalBound) {
  // Build: one heavy hitter (500 copies of v=7) plus 500 distinct values.
  // Probe: 200 rows all v=7. True join size = 500 * 200 = 100000.
  AgmsSketch a(7, 1024), b(7, 1024);
  for (int i = 0; i < 500; ++i) a.Update(Value::Int(7).Hash());
  for (int64_t v = 1000; v < 1500; ++v) a.Update(Value::Int(v).Hash());
  for (int i = 0; i < 200; ++i) b.Update(Value::Int(7).Hash());
  double est = a.JoinSizeEstimate(b);
  double f2_a = 500.0 * 500.0 + 500.0;  // heavy hitter + 500 singletons
  double f2_b = 200.0 * 200.0;
  EXPECT_NEAR(est, 100000.0, ErrorBound(f2_a, f2_b, 1024));
}

TEST(AgmsSketchTest, DisjointDomainsEstimateNearZero) {
  AgmsSketch a(7, 1024), b(7, 1024);
  for (int64_t v = 0; v < 1000; ++v) a.Update(Value::Int(v).Hash());
  for (int64_t v = 5000; v < 6000; ++v) b.Update(Value::Int(v).Hash());
  // True join size 0; the estimate is clamped at >= 0 and must stay inside
  // the envelope.
  EXPECT_LE(a.JoinSizeEstimate(b), ErrorBound(1000.0, 1000.0, 1024));
}

TEST(AgmsSketchTest, SelfJoinSizeTracksSecondMoment) {
  AgmsSketch a(7, 1024);
  // 100 values, each appearing 10 times: F2 = 100 * 100 = 10000.
  for (int64_t v = 0; v < 100; ++v) {
    for (int i = 0; i < 10; ++i) a.Update(Value::Int(v).Hash());
  }
  EXPECT_EQ(a.rows(), 1000);
  EXPECT_NEAR(a.SelfJoinSize(), 10000.0, ErrorBound(10000.0, 10000.0, 1024));
}

TEST(AgmsSketchTest, MismatchedShapesRefuseToEstimate) {
  AgmsSketch a(5, 512), b(7, 512), c(5, 1024);
  for (int64_t v = 0; v < 100; ++v) {
    uint64_t h = Value::Int(v).Hash();
    a.Update(h);
    b.Update(h);
    c.Update(h);
  }
  // Incomparable shapes yield 0 rather than a bogus inner product.
  EXPECT_EQ(a.JoinSizeEstimate(b), 0.0);
  EXPECT_EQ(a.JoinSizeEstimate(c), 0.0);
}

TEST(AgmsSketchTest, CloneIsIndependent) {
  AgmsSketch a(5, 512);
  for (int64_t v = 0; v < 50; ++v) a.Update(Value::Int(v).Hash());
  std::unique_ptr<AgmsSketch> copy = a.Clone();
  EXPECT_EQ(copy->rows(), 50);
  a.Update(Value::Int(99).Hash());
  EXPECT_EQ(copy->rows(), 50);
  EXPECT_EQ(a.rows(), 51);
}

TEST(SketchSetTest, StreamKeyFormat) {
  EXPECT_EQ(SketchSet::StreamKey(3, 1), "r3#c1");
}

TEST(SketchSetTest, SameOwnerReopenPoisonsTheStream) {
  // A re-Open of the same plan node (NL-loop rebuild, or a parallel
  // prebuild followed by a serial fallback) would double-count the
  // stream, so the second BeginStream poisons it.
  SketchSet set(5, 512);
  int owner = 0;
  AgmsSketch* s = set.BeginStream("r1#c0", &owner);
  ASSERT_NE(s, nullptr);
  s->Update(42);
  EXPECT_EQ(set.BeginStream("r1#c0", &owner), nullptr);
  auto valid = set.TakeValid();
  EXPECT_TRUE(valid.empty());
}

TEST(SketchSetTest, DifferentOwnerIsRefusedWithoutPoisoning) {
  SketchSet set(5, 512);
  int owner_a = 0, owner_b = 0;
  AgmsSketch* s = set.BeginStream("r1#c0", &owner_a);
  ASSERT_NE(s, nullptr);
  s->Update(42);
  // A different plan node asking for the same stream does not get it, but
  // the first owner's stream stays valid.
  EXPECT_EQ(set.BeginStream("r1#c0", &owner_b), nullptr);
  auto valid = set.TakeValid();
  ASSERT_EQ(valid.size(), 1u);
  EXPECT_EQ(valid.begin()->second->rows(), 1);
}

TEST(SketchSetTest, TakeValidSkipsEmptyStreams) {
  SketchSet set(5, 512);
  int owner = 0;
  ASSERT_NE(set.BeginStream("r1#c0", &owner), nullptr);  // never updated
  AgmsSketch* s = set.BeginStream("r2#c0", &owner);
  ASSERT_NE(s, nullptr);
  s->Update(7);
  auto valid = set.TakeValid();
  ASSERT_EQ(valid.size(), 1u);
  EXPECT_EQ(valid.begin()->first, "r2#c0");
}

// Concurrent update/query: worker shards fold rows into one shared sketch
// while the optimizer-side reader estimates against it. Counter updates
// are relaxed atomics, so under TSan this must be report-free; the final
// row count must be exact.
TEST(AgmsSketchTest, ConcurrentUpdateAndQueryIsRaceFree) {
  AgmsSketch shared(5, 512);
  AgmsSketch probe(5, 512);
  for (int64_t v = 0; v < 256; ++v) probe.Update(Value::Int(v).Hash());

  constexpr int kWriters = 4;
  constexpr int kPerWriter = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kWriters + 1);
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&shared, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        int64_t v = static_cast<int64_t>(w) * kPerWriter + i;
        shared.Update(Value::Int(v % 512).Hash());
      }
    });
  }
  threads.emplace_back([&shared, &probe] {
    double last = 0.0;
    for (int i = 0; i < 200; ++i) {
      last = shared.JoinSizeEstimate(probe);
    }
    // The reader only checks it never crashes / races; the value is a
    // moving target while writers run.
    (void)last;
  });
  for (auto& t : threads) t.join();
  EXPECT_EQ(shared.rows(), static_cast<int64_t>(kWriters) * kPerWriter);
  EXPECT_GE(shared.JoinSizeEstimate(probe), 0.0);
}

TEST(SketchSetTest, ConcurrentBeginStreamResolvesOneOwner) {
  SketchSet set(5, 512);
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::vector<AgmsSketch*> got(kThreads, nullptr);
  std::vector<int> owners(kThreads, 0);
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&set, &got, &owners, t] {
      got[static_cast<size_t>(t)] =
          set.BeginStream("r9#c0", &owners[static_cast<size_t>(t)]);
      if (got[static_cast<size_t>(t)] != nullptr) {
        got[static_cast<size_t>(t)]->Update(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  int winners = 0;
  for (AgmsSketch* s : got) winners += s != nullptr ? 1 : 0;
  EXPECT_EQ(winners, 1);
  EXPECT_EQ(set.TakeValid().size(), 1u);
}

}  // namespace
}  // namespace taurus
