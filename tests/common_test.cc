#include <gtest/gtest.h>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"

// GCC 12 falsely flags std::variant's destructor visit of the Status
// alternative as -Wmaybe-uninitialized when a fully-inlined Result<int>
// provably holds the int alternative (GCC PR 105937).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace taurus {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::SyntaxError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kSyntaxError);
  EXPECT_EQ(s.ToString(), "SyntaxError: bad token");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kExecutionError); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Result<int> Doubler(Result<int> in) {
  TAURUS_ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubler(21), 42);
  EXPECT_EQ(Doubler(Status::Internal("x")).status().code(),
            StatusCode::kInternal);
}

TEST(StringsTest, AsciiLower) {
  EXPECT_EQ(AsciiLower("SELECT Foo_1"), "select foo_1");
}

TEST(StringsTest, EqualsIgnoreCase) {
  EXPECT_TRUE(AsciiEqualsIgnoreCase("GROUP", "group"));
  EXPECT_FALSE(AsciiEqualsIgnoreCase("GROUP", "groups"));
}

TEST(StringsTest, SplitKeepsEmptyPieces) {
  auto parts = SplitString("a||b", '|');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(LikeTest, ExactMatch) {
  EXPECT_TRUE(SqlLikeMatch("abc", "abc"));
  EXPECT_FALSE(SqlLikeMatch("abc", "abd"));
}

TEST(LikeTest, PercentWildcard) {
  EXPECT_TRUE(SqlLikeMatch("PROMO BURNISHED", "PROMO%"));
  EXPECT_TRUE(SqlLikeMatch("xx Customer yy Complaints zz",
                           "%Customer%Complaints%"));
  EXPECT_FALSE(SqlLikeMatch("Customer", "%Customer%Complaints%"));
}

TEST(LikeTest, UnderscoreWildcard) {
  EXPECT_TRUE(SqlLikeMatch("cat", "c_t"));
  EXPECT_FALSE(SqlLikeMatch("cart", "c_t"));
}

TEST(LikeTest, EmptyPattern) {
  EXPECT_TRUE(SqlLikeMatch("", ""));
  EXPECT_FALSE(SqlLikeMatch("a", ""));
  EXPECT_TRUE(SqlLikeMatch("", "%"));
}

TEST(LikeTest, TrailingPercentCollapse) {
  EXPECT_TRUE(SqlLikeMatch("abc", "abc%%%"));
  EXPECT_TRUE(SqlLikeMatch("abc", "%%abc"));
}

TEST(RngTest, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformInRange) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, StringLengthBounds) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    std::string s = rng.NextString(2, 6);
    EXPECT_GE(s.size(), 2u);
    EXPECT_LE(s.size(), 6u);
  }
}

TEST(HashTest, Fnv1aStableAndSpread) {
  EXPECT_EQ(Fnv1aHash("abc", 3), Fnv1aHash("abc", 3));
  EXPECT_NE(Fnv1aHash("abc", 3), Fnv1aHash("abd", 3));
}

}  // namespace
}  // namespace taurus
