// Observability subsystem tests (DESIGN.md section 10): the injectable
// clock, the latency histogram, the per-query pipeline tracer (exact span
// trees under a fake clock), the thread-safe metrics registry (exercised
// concurrently for the TSan leg), and the engine integration — MetricsJson,
// SHOW STATUS, and the migrated health counters.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/latency_histogram.h"
#include "engine/database.h"
#include "obs/digest_store.h"
#include "obs/estimate_feedback.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/server.h"

namespace taurus {
namespace {

// ---------------------------------------------------------------------------
// Clock + histogram primitives
// ---------------------------------------------------------------------------

TEST(ClockTest, FakeClockAdvancesOnlyWhenTold) {
  FakeClock clock(100.0);
  EXPECT_EQ(clock.NowMs(), 100.0);
  EXPECT_EQ(clock.NowMs(), 100.0);
  clock.Advance(2.5);
  EXPECT_EQ(clock.NowMs(), 102.5);
  clock.Set(7.0);
  EXPECT_EQ(clock.NowMs(), 7.0);
}

TEST(ClockTest, SteadyClockIsMonotonic) {
  const SteadyClock& clock = SteadyClock::Instance();
  double a = clock.NowMs();
  double b = clock.NowMs();
  EXPECT_GE(b, a);
}

TEST(LatencyHistogramTest, PercentilesAndJson) {
  LatencyHistogram h;
  EXPECT_EQ(h.Count(), 0);
  EXPECT_EQ(h.PercentileMs(50), 0.0);
  for (int i = 1; i <= 100; ++i) h.Record(static_cast<double>(i));
  EXPECT_EQ(h.Count(), 100);
  EXPECT_DOUBLE_EQ(h.SumMs(), 5050.0);
  // Bucketed percentiles: upper bound of the bucket, so >= the true value
  // and monotone across ranks.
  EXPECT_GE(h.PercentileMs(50), 50.0);
  EXPECT_LE(h.PercentileMs(50), h.PercentileMs(95));
  EXPECT_LE(h.PercentileMs(95), h.PercentileMs(99));
  EXPECT_DOUBLE_EQ(h.MaxMs(), 100.0);
  std::string json = h.ToJson();
  for (const char* key : {"\"count\"", "\"sum_ms\"", "\"p50\"", "\"p95\"",
                          "\"p99\"", "\"max_ms\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << json;
  }
  h.Reset();
  EXPECT_EQ(h.Count(), 0);
  EXPECT_EQ(h.MaxMs(), 0.0);
}

TEST(QErrorTest, FlooredSymmetricRatio) {
  EXPECT_DOUBLE_EQ(QError(10.0, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(QError(100.0, 10.0), 10.0);
  EXPECT_DOUBLE_EQ(QError(10.0, 100.0), 10.0);
  // Both sides floored at one row: an empty result is not a div-by-zero.
  EXPECT_DOUBLE_EQ(QError(0.0, 5.0), 5.0);
  EXPECT_DOUBLE_EQ(QError(5.0, 0.0), 5.0);
  EXPECT_DOUBLE_EQ(QError(0.0, 0.0), 1.0);
}

TEST(OpActualsMapTest, AtFindMerge) {
  int a = 0, b = 0;  // addresses double as node keys
  OpActualsMap m1;
  m1.At(&a).rows = 10;
  m1.At(&a).loops = 2;
  m1.At(&b).rows = 3;
  OpActualsMap m2;
  m2.At(&a).rows = 5;
  m2.At(&a).loops = 1;
  m2.At(&a).time_ms = 1.5;
  m1.Merge(m2);
  ASSERT_NE(m1.Find(&a), nullptr);
  EXPECT_EQ(m1.Find(&a)->rows, 15);
  EXPECT_EQ(m1.Find(&a)->loops, 3);
  EXPECT_DOUBLE_EQ(m1.Find(&a)->time_ms, 1.5);
  EXPECT_EQ(m1.Find(&b)->rows, 3);
  EXPECT_EQ(m1.size(), 2u);
  EXPECT_EQ(m1.Find(&m1), nullptr);
  m1.clear();
  EXPECT_TRUE(m1.empty());
}

// ---------------------------------------------------------------------------
// Tracer: exact trees and durations under the fake clock
// ---------------------------------------------------------------------------

TEST(TracerTest, NestingDurationsAndPreOrder) {
  FakeClock clock;
  Tracer tracer(&clock);
  int root = tracer.StartSpan("query");
  clock.Advance(1.0);
  int child = tracer.StartSpan("compile");
  clock.Advance(5.0);
  int grand = tracer.StartSpan("parse");
  clock.Advance(2.0);
  tracer.EndSpan(grand);
  tracer.EndSpan(child);
  clock.Advance(3.0);
  int exec = tracer.StartSpan("execute");
  clock.Advance(4.0);
  tracer.EndSpan(exec);
  tracer.EndSpan(root);

  ASSERT_EQ(tracer.spans().size(), 4u);
  const TraceSpan& q = tracer.spans()[0];
  EXPECT_EQ(q.name, "query");
  EXPECT_EQ(q.parent, -1);
  EXPECT_EQ(q.depth, 0);
  EXPECT_DOUBLE_EQ(q.duration_ms(), 15.0);
  const TraceSpan& c = tracer.spans()[1];
  EXPECT_EQ(c.name, "compile");
  EXPECT_EQ(c.parent, q.id);
  EXPECT_EQ(c.depth, 1);
  EXPECT_DOUBLE_EQ(c.duration_ms(), 7.0);
  const TraceSpan& p = tracer.spans()[2];
  EXPECT_EQ(p.parent, c.id);
  EXPECT_EQ(p.depth, 2);
  EXPECT_DOUBLE_EQ(p.duration_ms(), 2.0);
  const TraceSpan& e = tracer.spans()[3];
  EXPECT_EQ(e.parent, q.id);  // compile ended, so execute is the root's child
  EXPECT_DOUBLE_EQ(e.duration_ms(), 4.0);

  EXPECT_EQ(tracer.TreeString(),
            "query\n"
            "  compile\n"
            "    parse\n"
            "  execute\n");
}

TEST(TracerTest, EndDefensivelyClosesChildrenAndLateAttrs) {
  FakeClock clock;
  Tracer tracer(&clock);
  int root = tracer.StartSpan("query");
  int child = tracer.StartSpan("orca.detour");
  clock.Advance(2.0);
  tracer.EndSpan(root);  // child still open: must be closed too
  EXPECT_TRUE(tracer.spans()[1].ended);
  EXPECT_DOUBLE_EQ(tracer.spans()[1].duration_ms(), 2.0);
  // Attributes attach to closed spans (failure status after EndSpan).
  tracer.SetAttr(child, "aborted", "true");
  tracer.SetAttr(child, "status", "kResourceExhausted");
  const std::string* aborted = tracer.spans()[1].FindAttr("aborted");
  ASSERT_NE(aborted, nullptr);
  EXPECT_EQ(*aborted, "true");
  EXPECT_EQ(tracer.spans()[1].FindAttr("missing"), nullptr);
  // Find returns the first span with the name, Render includes attrs.
  EXPECT_NE(tracer.Find("orca.detour"), nullptr);
  EXPECT_EQ(tracer.Find("no.such.span"), nullptr);
  EXPECT_NE(tracer.Render().find("aborted=true"), std::string::npos);
}

TEST(TracerTest, ScopedSpanIsNullSafe) {
  ScopedSpan null_span(nullptr, "anything");
  null_span.Attr("k", "v");
  null_span.End();  // no crash, no tracer
  FakeClock clock;
  Tracer tracer(&clock);
  {
    ScopedSpan span(&tracer, "scoped");
    clock.Advance(1.0);
  }  // destructor ends it
  ASSERT_EQ(tracer.spans().size(), 1u);
  EXPECT_TRUE(tracer.spans()[0].ended);
  EXPECT_DOUBLE_EQ(tracer.spans()[0].duration_ms(), 1.0);
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(MetricsRegistryTest, StablePointersJsonAndSnapshot) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("taurus.test.count");
  EXPECT_EQ(reg.GetCounter("taurus.test.count"), c);  // same object
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->Value(), 42);
  reg.GetGauge("taurus.test.gauge")->Set(2.5);
  reg.GetHistogram("taurus.test.ms")->Record(3.0);

  std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"taurus.test.count\": 42"), std::string::npos) << json;
  EXPECT_NE(json.find("\"taurus.test.gauge\""), std::string::npos);
  EXPECT_NE(json.find("\"taurus.test.ms\": {"), std::string::npos);

  auto rows = reg.Snapshot();
  bool saw_count = false, saw_p50 = false;
  for (const auto& [name, value] : rows) {
    if (name == "taurus.test.count") {
      saw_count = true;
      EXPECT_EQ(value, "42");
    }
    if (name == "taurus.test.ms.p50") saw_p50 = true;
  }
  EXPECT_TRUE(saw_count);
  EXPECT_TRUE(saw_p50);

  reg.Reset();
  EXPECT_EQ(c->Value(), 0);  // same pointer, zeroed
}

/// Concurrent increments and registrations; run under the TSan leg
/// (TAURUS_SANITIZE=thread scripts/check.sh) to prove the registry and
/// counters are race-free.
TEST(MetricsRegistryTest, ConcurrentIncrementsAreExact) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      // Every thread resolves the shared counter itself (concurrent
      // registration) and also touches a private one.
      Counter* shared = reg.GetCounter("taurus.test.shared");
      Counter* own = reg.GetCounter("taurus.test.t" + std::to_string(t));
      LatencyHistogram* h = reg.GetHistogram("taurus.test.lat_ms");
      for (int i = 0; i < kIncrements; ++i) {
        shared->Increment();
        own->Increment();
        if (i % 64 == 0) h->Record(static_cast<double>(i % 7));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(reg.GetCounter("taurus.test.shared")->Value(),
            static_cast<int64_t>(kThreads) * kIncrements);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(reg.GetCounter("taurus.test.t" + std::to_string(t))->Value(),
              kIncrements);
  }
}

// ---------------------------------------------------------------------------
// Engine integration: exact trace trees, MetricsJson, SHOW STATUS
// ---------------------------------------------------------------------------

class ObsEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.ExecuteSql(
                       "CREATE TABLE nation (n_id INT NOT NULL PRIMARY KEY, "
                       "n_name VARCHAR(25) NOT NULL)")
                    .ok());
    ASSERT_TRUE(db_.ExecuteSql(
                       "CREATE TABLE customer (c_id INT NOT NULL PRIMARY KEY, "
                       "c_nation INT NOT NULL, c_acct DOUBLE NOT NULL)")
                    .ok());
    std::vector<Row> nations;
    for (int i = 0; i < 5; ++i) {
      nations.push_back(
          {Value::Int(i), Value::Str("nation" + std::to_string(i))});
    }
    ASSERT_TRUE(db_.BulkLoad("nation", std::move(nations)).ok());
    std::vector<Row> customers;
    for (int i = 0; i < 50; ++i) {
      customers.push_back({Value::Int(i), Value::Int(i % 5),
                           Value::Double(100.0 * (i % 7))});
    }
    ASSERT_TRUE(db_.BulkLoad("customer", std::move(customers)).ok());
    ASSERT_TRUE(db_.AnalyzeAll().ok());

    // Exact-tree assertions must not depend on the build type: the plan
    // verifiers default on in Debug (kVerifyPlansDefault), which would add
    // verify.* spans there and not in Release.
    db_.verify_config().verify_plans = false;
    db_.trace_config().enable = true;
    db_.trace_config().clock = &clock_;
  }

  static constexpr const char* kJoinSql =
      "SELECT n_name, COUNT(*) FROM nation, customer "
      "WHERE c_nation = n_id GROUP BY n_name";

  Database db_;
  FakeClock clock_;
};

TEST_F(ObsEngineTest, OrcaPathTraceTree) {
  auto res = db_.Query(kJoinSql, OptimizerPath::kOrca);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_TRUE(res->used_orca);
  ASSERT_NE(db_.last_trace(), nullptr);
  EXPECT_EQ(db_.last_trace()->TreeString(),
            "query\n"
            "  compile\n"
            "    parse\n"
            "    bind\n"
            "    prepare\n"
            "    fingerprint\n"
            "    cache.lookup\n"
            "    route\n"
            "    orca.detour\n"
            "      decorrelate\n"
            "      parse_tree_convert\n"
            "      orca.optimize\n"
            "        memo.build\n"
            "        memo.join_search\n"
            "      plan_convert\n"
            "    cache.freeze\n"
            "    refine\n"
            "  execute\n");

  const TraceSpan* route = db_.last_trace()->Find("route");
  ASSERT_NE(route, nullptr);
  const std::string* decision = route->FindAttr("decision");
  ASSERT_NE(decision, nullptr);
  EXPECT_EQ(*decision, "orca");
  const TraceSpan* lookup = db_.last_trace()->Find("cache.lookup");
  ASSERT_NE(lookup, nullptr);
  EXPECT_EQ(*lookup->FindAttr("hit"), "false");
  const TraceSpan* fp = db_.last_trace()->Find("fingerprint");
  ASSERT_NE(fp, nullptr);
  EXPECT_NE(fp->FindAttr("fingerprint"), nullptr);
  const TraceSpan* search = db_.last_trace()->Find("memo.join_search");
  ASSERT_NE(search, nullptr);
  EXPECT_NE(search->FindAttr("memo_groups"), nullptr);
  EXPECT_NE(search->FindAttr("partitions"), nullptr);
  const TraceSpan* exec = db_.last_trace()->Find("execute");
  ASSERT_NE(exec, nullptr);
  EXPECT_NE(exec->FindAttr("workers"), nullptr);
  EXPECT_NE(exec->FindAttr("pipelines"), nullptr);
}

TEST_F(ObsEngineTest, MySqlPathTraceTree) {
  auto res = db_.Query(kJoinSql, OptimizerPath::kMySql);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_FALSE(res->used_orca);
  ASSERT_NE(db_.last_trace(), nullptr);
  EXPECT_EQ(db_.last_trace()->TreeString(),
            "query\n"
            "  compile\n"
            "    parse\n"
            "    bind\n"
            "    prepare\n"
            "    fingerprint\n"
            "    cache.lookup\n"
            "    route\n"
            "    mysql.optimize\n"
            "    cache.freeze\n"
            "    refine\n"
            "  execute\n");
  const TraceSpan* route = db_.last_trace()->Find("route");
  ASSERT_NE(route, nullptr);
  EXPECT_EQ(*route->FindAttr("decision"), "mysql");
}

TEST_F(ObsEngineTest, CacheHitTraceTree) {
  ASSERT_TRUE(db_.Query(kJoinSql, OptimizerPath::kMySql).ok());
  auto hit = db_.Query(kJoinSql, OptimizerPath::kMySql);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit->plan_cache_hit);
  ASSERT_NE(db_.last_trace(), nullptr);
  EXPECT_EQ(db_.last_trace()->TreeString(),
            "query\n"
            "  compile\n"
            "    parse\n"
            "    bind\n"
            "    prepare\n"
            "    fingerprint\n"
            "    cache.lookup\n"
            "    cache.thaw\n"
            "    refine\n"
            "  execute\n");
  const TraceSpan* lookup = db_.last_trace()->Find("cache.lookup");
  ASSERT_NE(lookup, nullptr);
  EXPECT_EQ(*lookup->FindAttr("hit"), "true");
}

TEST_F(ObsEngineTest, TracingDisabledLeavesNoTraceAndNoActuals) {
  db_.trace_config().enable = false;
  auto res = db_.Query(kJoinSql, OptimizerPath::kMySql);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(db_.last_trace(), nullptr);
}

TEST_F(ObsEngineTest, FakeClockGivesDeterministicDurations) {
  // The engine never advances the injected clock itself, so every span is
  // zero-length — the determinism EXPLAIN-style golden tests rely on.
  auto res = db_.Query(kJoinSql, OptimizerPath::kMySql);
  ASSERT_TRUE(res.ok());
  for (const TraceSpan& span : db_.last_trace()->spans()) {
    EXPECT_DOUBLE_EQ(span.duration_ms(), 0.0) << span.name;
  }
}

TEST_F(ObsEngineTest, MetricsJsonCarriesMigratedCounters) {
  ASSERT_TRUE(db_.Query(kJoinSql, OptimizerPath::kOrca).ok());
  ASSERT_TRUE(db_.Query(kJoinSql, OptimizerPath::kMySql).ok());
  ASSERT_TRUE(db_.Query(kJoinSql, OptimizerPath::kMySql).ok());  // cache hit
  std::string json = db_.MetricsJson();
  for (const char* key :
       {"taurus.health.detours_attempted", "taurus.health.detours_failed",
        "taurus.health.fallbacks", "taurus.health.budget_kills",
        "taurus.health.exec_budget_kills", "taurus.health.quarantine_hits",
        "taurus.plan_cache.hits", "taurus.plan_cache.misses",
        "taurus.plan_cache.entries", "taurus.verify.rules_checked",
        "taurus.verify.violations", "taurus.query.count",
        "taurus.query.errors", "taurus.query.optimize_ms",
        "taurus.query.execute_ms", "taurus.exec.rows_scanned",
        "taurus.exec.index_lookups", "taurus.exec.parallel_queries",
        "taurus.exec.parallel_pipelines", "taurus.exec.batch.pipelines",
        "taurus.exec.batch.batches", "taurus.exec.batch.rows",
        "taurus.quarantine.entries"}) {
    EXPECT_NE(json.find(std::string("\"") + key + "\""), std::string::npos)
        << "missing " << key << " in " << json;
  }
  EXPECT_NE(json.find("\"taurus.query.count\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"taurus.plan_cache.hits\": 1"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"taurus.health.detours_attempted\": 1"),
            std::string::npos)
      << json;
}

TEST_F(ObsEngineTest, OptimizerHealthSnapshotsRegistryCounters) {
  ASSERT_TRUE(db_.Query(kJoinSql, OptimizerPath::kOrca).ok());
  OptimizerHealth health = db_.optimizer_health();
  EXPECT_EQ(health.detours_attempted, 1);
  EXPECT_EQ(health.detours_failed, 0);
  EXPECT_EQ(db_.metrics().GetCounter("taurus.health.detours_attempted")
                ->Value(),
            1);
  db_.ResetOptimizerHealth();
  EXPECT_EQ(db_.optimizer_health().detours_attempted, 0);
}

TEST_F(ObsEngineTest, ShowStatusReturnsFilteredSortedRows) {
  ASSERT_TRUE(db_.Query(kJoinSql, OptimizerPath::kOrca).ok());
  auto res = db_.Query("SHOW STATUS LIKE 'taurus.health.%'");
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  ASSERT_EQ(res->columns.size(), 2u);
  EXPECT_EQ(res->columns[0], "Variable_name");
  EXPECT_EQ(res->columns[1], "Value");
  ASSERT_EQ(res->rows.size(), 6u);  // the six health counters
  for (size_t i = 1; i < res->rows.size(); ++i) {
    EXPECT_LT(res->rows[i - 1][0].AsString(), res->rows[i][0].AsString());
  }
  bool saw = false;
  for (const Row& row : res->rows) {
    if (row[0].AsString() == "taurus.health.detours_attempted") {
      saw = true;
      EXPECT_EQ(row[1].AsString(), "1");
    }
  }
  EXPECT_TRUE(saw);

  // Unfiltered SHOW METRICS covers every registered metric.
  auto all = db_.Query("SHOW METRICS");
  ASSERT_TRUE(all.ok());
  EXPECT_GT(all->rows.size(), res->rows.size());
  // SHOW is routed before the optimizer: no trace is recorded for it.
  EXPECT_FALSE(db_.Query("SHOW TABLES").ok());
}

TEST_F(ObsEngineTest, GlobalRegistryIsAvailable) {
  Counter* c = MetricsRegistry::Global().GetCounter("taurus.test.global");
  c->Increment();
  EXPECT_GE(c->Value(), 1);
}

/// The full taurus.* inventory, one name per registered metric across every
/// family. A new metric must be added here (and a removed one deleted), so
/// accidental renames and namespace drift fail a test instead of silently
/// breaking dashboards. The taurus.-prefix rule itself is enforced on every
/// dump by scripts/validate_obs_json.py in check.sh.
TEST_F(ObsEngineTest, MetricsJsonCoversTheFullTaurusInventory) {
  // The server family registers when an admission controller attaches to
  // the engine's registry; everything else registers in the Database ctor
  // (BindCounters) or on dump (SyncGaugeMetrics).
  Server server(&db_);
  ASSERT_TRUE(db_.Query(kJoinSql, OptimizerPath::kOrca).ok());
  const std::string json = db_.MetricsJson();
  for (const char* name : {
           // health
           "taurus.health.budget_kills", "taurus.health.detours_attempted",
           "taurus.health.detours_failed", "taurus.health.exec_budget_kills",
           "taurus.health.fallbacks", "taurus.health.quarantine_hits",
           // query
           "taurus.query.count", "taurus.query.errors",
           "taurus.query.execute_ms", "taurus.query.optimize_ms",
           // plan cache
           "taurus.plan_cache.capacity",
           "taurus.plan_cache.drift_invalidations",
           "taurus.plan_cache.entries", "taurus.plan_cache.evictions",
           "taurus.plan_cache.hits", "taurus.plan_cache.insertions",
           "taurus.plan_cache.invalidations", "taurus.plan_cache.misses",
           "taurus.plan_cache.shards",
           // quarantine + verifiers
           "taurus.quarantine.entries", "taurus.verify.rules_checked",
           "taurus.verify.violations", "taurus.verify.lock_rank.checks",
           "taurus.verify.lock_rank.enabled",
           "taurus.verify.lock_rank.violations",
           // executor
           "taurus.exec.batch.batches", "taurus.exec.batch.pipelines",
           "taurus.exec.batch.rows", "taurus.exec.index_lookups",
           "taurus.exec.parallel_pipelines", "taurus.exec.parallel_queries",
           "taurus.exec.rows_scanned",
           // executor profiling
           "taurus.exec.profile.enabled", "taurus.exec.profile.last_busy_ms",
           "taurus.exec.profile.last_idle_ms",
           "taurus.exec.profile.last_workers", "taurus.exec.profile.morsels",
           "taurus.exec.profile.pipelines",
           // feedback loop
           "taurus.feedback.actual_overrides", "taurus.feedback.drift_bumps",
           "taurus.feedback.entries", "taurus.feedback.harvests",
           "taurus.feedback.lru_evictions",
           "taurus.feedback.sketch_overrides",
           "taurus.feedback.version_resets",
           // workload introspection
           "taurus.obs.digest.capacity", "taurus.obs.digest.entries",
           "taurus.obs.digest.epoch_bumps", "taurus.obs.digest.lru_evictions",
           "taurus.obs.digest.records", "taurus.obs.recorder.capacity",
           "taurus.obs.recorder.entries", "taurus.obs.recorder.pinned",
           "taurus.obs.recorder.records",
           // server / admission
           "taurus.server.admitted", "taurus.server.queue_len",
           "taurus.server.queued", "taurus.server.rejected_deadline",
           "taurus.server.rejected_queue_full", "taurus.server.running",
           "taurus.server.shed",
       }) {
    EXPECT_NE(json.find(std::string("\"") + name + "\""), std::string::npos)
        << "missing " << name;
  }
}

// ---------------------------------------------------------------------------
// Digest store under concurrency: run under the TSan leg
// (TAURUS_SANITIZE=thread scripts/check.sh) to prove Record / Snapshot /
// BumpEpoch are race-free against each other.
// ---------------------------------------------------------------------------

TEST(DigestStoreConcurrencyTest, ConcurrentRecordSnapshotAndBumpAreExact) {
  DigestStoreConfig config;
  DigestStore store(config);
  constexpr int kWriters = 4;
  constexpr int kRecords = 2000;
  constexpr uint64_t kFingerprints = 8;
  const std::string canonical = "stmt";

  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&store, &canonical, t] {
      for (int i = 0; i < kRecords; ++i) {
        DigestSample s;
        s.fingerprint = 1 + static_cast<uint64_t>(i) % kFingerprints;
        s.canonical = &canonical;
        s.used_orca = (i + t) % 2 == 0;
        s.latency_ms = static_cast<double>(i % 5);
        s.rows_returned = 1;
        store.Record(s);
      }
    });
  }
  // Readers and epoch bumps race the writers: snapshots must always be
  // internally consistent (per-path counts partition calls) and bumps must
  // never lose a sample.
  threads.emplace_back([&store] {
    for (int i = 0; i < 200; ++i) {
      for (const DigestSnapshot& d : store.Snapshot()) {
        EXPECT_EQ(d.orca_latency.count + d.mysql_latency.count, d.calls);
        EXPECT_EQ(d.latency_count, d.calls);
      }
    }
  });
  threads.emplace_back([&store] {
    for (int i = 0; i < 200; ++i) {
      store.BumpEpoch(1 + static_cast<uint64_t>(i) % kFingerprints, "ddl");
    }
  });
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(store.records(), kWriters * kRecords);
  EXPECT_EQ(store.lru_evictions(), 0);
  int64_t calls = 0;
  for (const DigestSnapshot& d : store.Snapshot()) {
    calls += d.calls;
    // The epoch split never double-counts: the current and previous epoch
    // together cover at most every call (exactly, until a third epoch
    // drops the oldest bucket).
    EXPECT_LE(d.epoch_latency.count + d.prev_epoch_latency.count, d.calls);
    if (d.plan_epoch <= 2) {
      EXPECT_EQ(d.epoch_latency.count + d.prev_epoch_latency.count, d.calls);
    }
  }
  EXPECT_EQ(calls, kWriters * kRecords);
}

}  // namespace
}  // namespace taurus