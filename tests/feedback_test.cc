// End-to-end tests for the cardinality feedback loop (DESIGN.md section
// 11): execution actuals are harvested per plan fingerprint, estimate
// drift evicts exactly the drifted skeleton from the plan cache, and the
// re-optimized plan estimates from actuals (EXPLAIN: cardinality_source:
// actual) with rows bit-identical to the MySQL baseline throughout. Plus
// deterministic FeedbackStore unit tests (FakeClock aging, LRU bounds,
// DDL/ANALYZE version resets, drift hysteresis).

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/fault_injector.h"
#include "engine/database.h"
#include "feedback/feedback_store.h"

namespace taurus {
namespace {

void SortRows(std::vector<Row>* rows) {
  std::sort(rows->begin(), rows->end(), [](const Row& a, const Row& b) {
    for (size_t i = 0; i < a.size(); ++i) {
      int c = Value::Compare(a[i], b[i]);
      if (c != 0) return c < 0;
    }
    return false;
  });
}

std::string RowsText(std::vector<Row> rows) {
  SortRows(&rows);
  std::string out;
  for (const Row& r : rows) out += RowToString(r) + "\n";
  return out;
}

// ---------------------------------------------------------------------------
// FeedbackStore unit tests: deterministic, no engine involved.
// ---------------------------------------------------------------------------

FeedbackSample MakeSample(double actual, double estimate,
                          const std::string& key = "r0,r1") {
  FeedbackSample s;
  s.node_actuals[key] = actual;
  s.node_estimates[key] = estimate;
  return s;
}

TEST(FeedbackStoreTest, HarvestThenSnapshotRoundTrips) {
  FeedbackConfig config;
  FeedbackStore store(config);
  HarvestResult hr = store.Harvest(/*fingerprint=*/7, MakeSample(4800.0, 160.0),
                                   /*qerror_threshold=*/2.0,
                                   /*schema_version=*/1, /*stats_version=*/1);
  EXPECT_TRUE(hr.stored);
  EXPECT_TRUE(hr.version_bumped);  // q-error 30 > 2
  EXPECT_NEAR(hr.max_q_error, 30.0, 1e-9);
  EXPECT_EQ(store.DriftVersion(7), 1u);
  auto snap = store.Snapshot(7, 1, 1);
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->node_actuals.at("r0,r1"), 4800.0);
  EXPECT_EQ(store.Snapshot(/*fingerprint=*/8, 1, 1), nullptr);
}

TEST(FeedbackStoreTest, ZeroFingerprintIsIgnored) {
  FeedbackConfig config;
  FeedbackStore store(config);
  HarvestResult hr = store.Harvest(0, MakeSample(100.0, 1.0), 2.0, 1, 1);
  EXPECT_FALSE(hr.stored);
  EXPECT_EQ(store.Size(), 0u);
}

TEST(FeedbackStoreTest, DriftBumpNeedsBothThresholdAndMaterialChange) {
  FeedbackConfig config;
  FeedbackStore store(config);
  ASSERT_TRUE(store.Harvest(7, MakeSample(1000.0, 10.0), 2.0, 1, 1)
                  .version_bumped);
  EXPECT_EQ(store.DriftVersion(7), 1u);

  // Re-optimized plan now estimates well: below threshold, no bump.
  EXPECT_FALSE(store.Harvest(7, MakeSample(1000.0, 900.0), 2.0, 1, 1)
                   .version_bumped);
  EXPECT_EQ(store.DriftVersion(7), 1u);

  // Still mis-estimated but the actuals did not move: hysteresis holds the
  // version, so a plan that cannot be fixed by feedback does not thrash.
  EXPECT_FALSE(store.Harvest(7, MakeSample(1000.0, 10.0), 2.0, 1, 1)
                   .version_bumped);
  EXPECT_EQ(store.DriftVersion(7), 1u);

  // Actuals moved materially (>20%) AND the q-error exceeds the threshold:
  // this is new drift, bump again.
  EXPECT_TRUE(store.Harvest(7, MakeSample(2000.0, 10.0), 2.0, 1, 1)
                  .version_bumped);
  EXPECT_EQ(store.DriftVersion(7), 2u);
}

TEST(FeedbackStoreTest, CatalogVersionMoveResetsEntry) {
  FeedbackConfig config;
  FeedbackStore store(config);
  ASSERT_TRUE(store.Harvest(7, MakeSample(100.0, 100.0), 2.0, 1, 1).stored);
  // ANALYZE moved the stats version: the entry is stale and erased.
  EXPECT_EQ(store.Snapshot(7, 1, 2), nullptr);
  EXPECT_EQ(store.version_resets(), 1);
  EXPECT_EQ(store.Size(), 0u);
  EXPECT_EQ(store.DriftVersion(7), 0u);

  // Same through the harvest path on a schema (DDL) move: the fresh sample
  // replaces the stale entry instead of merging into it.
  ASSERT_TRUE(store.Harvest(7, MakeSample(50.0, 50.0), 2.0, 1, 2).stored);
  ASSERT_TRUE(store.Harvest(7, MakeSample(60.0, 60.0), 2.0, 2, 2).stored);
  EXPECT_EQ(store.version_resets(), 2);
  auto snap = store.Snapshot(7, 2, 2);
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->node_actuals.at("r0,r1"), 60.0);
}

TEST(FeedbackStoreTest, FakeClockAgesEntriesOut) {
  FakeClock clock;
  FeedbackConfig config;
  config.max_entry_age_ms = 100.0;
  config.clock = &clock;
  FeedbackStore store(config);
  ASSERT_TRUE(store.Harvest(7, MakeSample(100.0, 100.0), 2.0, 1, 1).stored);

  clock.Advance(99.0);
  EXPECT_NE(store.Snapshot(7, 1, 1), nullptr);  // still fresh
  EXPECT_EQ(store.aged_out(), 0);

  clock.Advance(2.0);  // now 101 ms past the harvest
  EXPECT_EQ(store.Snapshot(7, 1, 1), nullptr);
  EXPECT_EQ(store.aged_out(), 1);
  EXPECT_EQ(store.Size(), 0u);

  // A fresh harvest restarts the entry's age from the current fake time.
  ASSERT_TRUE(store.Harvest(7, MakeSample(100.0, 100.0), 2.0, 1, 1).stored);
  clock.Advance(99.0);
  EXPECT_NE(store.Snapshot(7, 1, 1), nullptr);
}

TEST(FeedbackStoreTest, LruEvictionIsBoundedAndOrdered) {
  FeedbackConfig config;
  config.store_capacity = 2;
  FeedbackStore store(config);
  ASSERT_TRUE(store.Harvest(1, MakeSample(10.0, 10.0), 2.0, 1, 1).stored);
  ASSERT_TRUE(store.Harvest(2, MakeSample(20.0, 20.0), 2.0, 1, 1).stored);
  // Touch fingerprint 1 so 2 becomes the LRU victim.
  ASSERT_NE(store.Snapshot(1, 1, 1), nullptr);
  ASSERT_TRUE(store.Harvest(3, MakeSample(30.0, 30.0), 2.0, 1, 1).stored);
  EXPECT_EQ(store.Size(), 2u);
  EXPECT_EQ(store.lru_evictions(), 1);
  EXPECT_EQ(store.Snapshot(2, 1, 1), nullptr);  // evicted
  EXPECT_NE(store.Snapshot(1, 1, 1), nullptr);
  EXPECT_NE(store.Snapshot(3, 1, 1), nullptr);
  // Eviction also drops the drift version: a re-learned fingerprint starts
  // over instead of invalidating plans from a forgotten life.
  EXPECT_EQ(store.DriftVersion(2), 0u);
}

TEST(FeedbackStoreTest, LiveConfigChangesApply) {
  // The store reads its config by reference (the engine exposes
  // feedback_config() as a live knob object).
  FeedbackConfig config;
  config.store_capacity = 8;
  FeedbackStore store(config);
  for (uint64_t fp = 1; fp <= 4; ++fp) {
    ASSERT_TRUE(store.Harvest(fp, MakeSample(10.0, 10.0), 2.0, 1, 1).stored);
  }
  EXPECT_EQ(store.Size(), 4u);
  config.store_capacity = 2;
  ASSERT_TRUE(store.Harvest(5, MakeSample(10.0, 10.0), 2.0, 1, 1).stored);
  EXPECT_EQ(store.Size(), 2u);
  EXPECT_EQ(store.lru_evictions(), 3);
}

// ---------------------------------------------------------------------------
// Engine-level feedback loop. Schema engineered for a provably wrong
// histogram estimate: fact.f_k is heavily skewed (600 rows of k=1 plus 600
// distinct values), dim holds 80 rows of k=1. NDV(f_k)=601, so the
// histogram join estimate is |fact|*|dim|/601 = ~160 rows while the true
// join output is 600*80 = 48000 — a q-error of ~300.
// ---------------------------------------------------------------------------

class FeedbackLoopTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Instance().DisarmAll();
    ASSERT_TRUE(db_.ExecuteSql(
                       "CREATE TABLE fact (f_id INT NOT NULL PRIMARY KEY, "
                       "f_k INT NOT NULL)")
                    .ok());
    ASSERT_TRUE(db_.ExecuteSql(
                       "CREATE TABLE dim (d_k INT NOT NULL, "
                       "d_pad INT NOT NULL)")
                    .ok());
    std::vector<Row> fact;
    for (int i = 0; i < 1200; ++i) {
      int k = i < 600 ? 1 : i + 1000;  // skew: half the table joins
      fact.push_back({Value::Int(i), Value::Int(k)});
    }
    ASSERT_TRUE(db_.BulkLoad("fact", std::move(fact)).ok());
    std::vector<Row> dim;
    for (int i = 0; i < 80; ++i) {
      dim.push_back({Value::Int(1), Value::Int(i)});
    }
    ASSERT_TRUE(db_.BulkLoad("dim", std::move(dim)).ok());
    ASSERT_TRUE(db_.AnalyzeAll().ok());
    db_.plan_cache().ResetStats();
    db_.feedback_config().enable = true;
  }

  void TearDown() override { FaultInjector::Instance().DisarmAll(); }

  static constexpr const char* kSkewSql =
      "SELECT f_id, d_pad FROM fact, dim WHERE f_k = d_k";

  Database db_;
};

TEST_F(FeedbackLoopTest, SkewedJoinQErrorCollapsesOnSecondOptimization) {
  // Run 1: cold compile estimates from histograms and is off by ~300x.
  auto run1 = db_.Query(kSkewSql, OptimizerPath::kOrca);
  ASSERT_TRUE(run1.ok()) << run1.status().ToString();
  ASSERT_TRUE(run1->used_orca);
  EXPECT_FALSE(run1->plan_cache_hit);
  EXPECT_EQ(run1->feedback_actual_overrides, 0);
  EXPECT_TRUE(run1->feedback_harvested);
  EXPECT_GT(run1->feedback_max_q_error, 10.0);
  EXPECT_TRUE(run1->feedback_version_bumped);
  EXPECT_EQ(run1->rows.size(), 48000u);

  // Run 2: the drift bump evicted the cached skeleton; the fresh compile
  // estimates the join from harvested actuals and lands at q-error ~1.
  auto run2 = db_.Query(kSkewSql, OptimizerPath::kOrca);
  ASSERT_TRUE(run2.ok()) << run2.status().ToString();
  ASSERT_TRUE(run2->used_orca);
  EXPECT_FALSE(run2->plan_cache_hit);
  EXPECT_EQ(db_.plan_cache().stats().drift_invalidations, 1);
  EXPECT_GE(run2->feedback_actual_overrides, 1);
  EXPECT_TRUE(run2->feedback_harvested);
  EXPECT_LE(run2->feedback_max_q_error, 2.0);
  EXPECT_FALSE(run2->feedback_version_bumped);

  // EXPLAIN of the re-optimized plan names the estimate's provenance.
  auto explain = db_.Explain(kSkewSql, OptimizerPath::kOrca);
  ASSERT_TRUE(explain.ok());
  EXPECT_NE(explain->find("cardinality_source: actual"), std::string::npos)
      << *explain;

  // Run 3: actuals are stable, so the re-optimized skeleton stays cached.
  auto run3 = db_.Query(kSkewSql, OptimizerPath::kOrca);
  ASSERT_TRUE(run3.ok());
  EXPECT_TRUE(run3->plan_cache_hit);
  EXPECT_EQ(db_.plan_cache().stats().drift_invalidations, 1);

  // Rows are bit-identical to the MySQL baseline before and after feedback
  // re-optimization.
  auto baseline = db_.Query(kSkewSql, OptimizerPath::kMySql);
  ASSERT_TRUE(baseline.ok());
  EXPECT_EQ(RowsText(baseline->rows), RowsText(run1->rows));
  EXPECT_EQ(RowsText(baseline->rows), RowsText(run2->rows));
  EXPECT_EQ(RowsText(baseline->rows), RowsText(run3->rows));

  // The loop is visible in the engine metrics.
  std::string metrics = db_.MetricsJson();
  EXPECT_NE(metrics.find("taurus.feedback.harvests"), std::string::npos);
  EXPECT_NE(metrics.find("taurus.feedback.drift_bumps"), std::string::npos);
}

TEST_F(FeedbackLoopTest, FeedbackLoopIsConsistentAcrossWorkerCounts) {
  // The harvest trust rule only records nodes whose parallel actuals equal
  // the serial ones, so the loop must converge identically at 4 workers.
  std::string serial_rows;
  {
    SCOPED_TRACE("workers=1");
    db_.exec_config().parallel_workers = 1;
    auto run1 = db_.Query(kSkewSql, OptimizerPath::kOrca);
    ASSERT_TRUE(run1.ok());
    EXPECT_GT(run1->feedback_max_q_error, 10.0);
    auto run2 = db_.Query(kSkewSql, OptimizerPath::kOrca);
    ASSERT_TRUE(run2.ok());
    EXPECT_LE(run2->feedback_max_q_error, 2.0);
    EXPECT_EQ(RowsText(run1->rows), RowsText(run2->rows));
    serial_rows = RowsText(run2->rows);
  }
  // Fresh store/caches via versions: ANALYZE resets feedback and plans.
  ASSERT_TRUE(db_.AnalyzeAll().ok());
  db_.plan_cache().ResetStats();
  {
    SCOPED_TRACE("workers=4");
    db_.exec_config().parallel_workers = 4;
    db_.exec_config().parallel_min_driver_rows = 64;
    db_.exec_config().morsel_rows = 256;
    auto run1 = db_.Query(kSkewSql, OptimizerPath::kOrca);
    ASSERT_TRUE(run1.ok());
    EXPECT_GT(run1->feedback_max_q_error, 10.0);
    EXPECT_EQ(RowsText(run1->rows), serial_rows);
    auto run2 = db_.Query(kSkewSql, OptimizerPath::kOrca);
    ASSERT_TRUE(run2.ok());
    EXPECT_LE(run2->feedback_max_q_error, 2.0);
    EXPECT_EQ(RowsText(run2->rows), serial_rows);
  }
}

TEST_F(FeedbackLoopTest, DriftEvictsOnlyTheDriftedFingerprint) {
  // A second, well-estimated statement shares the cache with the drifting
  // one; the drift bump must evict exactly the drifted fingerprint.
  const std::string stable_sql = "SELECT d_pad FROM dim WHERE d_k = 1";

  auto skew1 = db_.Query(kSkewSql, OptimizerPath::kOrca);
  ASSERT_TRUE(skew1.ok());
  EXPECT_TRUE(skew1->feedback_version_bumped);
  auto stable1 = db_.Query(stable_sql, OptimizerPath::kOrca);
  ASSERT_TRUE(stable1.ok());
  // NDV(d_k)=1 makes the estimate exact: no drift on this statement.
  EXPECT_FALSE(stable1->feedback_version_bumped);
  EXPECT_LE(stable1->feedback_max_q_error, 2.0);

  // The stable statement still hits; the drifted one re-optimizes.
  auto stable2 = db_.Query(stable_sql, OptimizerPath::kOrca);
  ASSERT_TRUE(stable2.ok());
  EXPECT_TRUE(stable2->plan_cache_hit);
  auto skew2 = db_.Query(kSkewSql, OptimizerPath::kOrca);
  ASSERT_TRUE(skew2.ok());
  EXPECT_FALSE(skew2->plan_cache_hit);
  EXPECT_EQ(db_.plan_cache().stats().drift_invalidations, 1);
}

TEST_F(FeedbackLoopTest, QuarantinedFingerprintDoesNotAcceptFeedback) {
  // Route the skew join through the auto path and fail its detour until it
  // quarantines; a quarantined statement must not feed the store (its
  // MySQL fallback plan's actuals would poison a later detour compile).
  db_.router_config().complex_query_threshold = 2;
  db_.plan_cache_config().enable = false;  // observe every compile
  const int threshold = db_.quarantine_config().failure_threshold;

  FaultInjector::Instance().ArmCount("bridge.parse_tree_convert", 1000000);
  for (int i = 0; i < threshold; ++i) {
    auto res = db_.Query(kSkewSql, OptimizerPath::kAuto);
    ASSERT_TRUE(res.ok()) << res.status().ToString();
    EXPECT_TRUE(res->fell_back);
  }
  size_t size_at_quarantine = db_.feedback_store().Size();

  auto quarantined = db_.Query(kSkewSql, OptimizerPath::kAuto);
  ASSERT_TRUE(quarantined.ok());
  ASSERT_TRUE(quarantined->quarantine_hit);
  EXPECT_FALSE(quarantined->feedback_harvested);
  EXPECT_FALSE(quarantined->feedback_version_bumped);
  EXPECT_EQ(db_.feedback_store().Size(), size_at_quarantine);

  // ANALYZE lifts the quarantine; harvesting resumes.
  FaultInjector::Instance().DisarmAll();
  ASSERT_TRUE(db_.AnalyzeAll().ok());
  auto healed = db_.Query(kSkewSql, OptimizerPath::kAuto);
  ASSERT_TRUE(healed.ok());
  EXPECT_FALSE(healed->quarantine_hit);
  EXPECT_TRUE(healed->feedback_harvested);
}

TEST_F(FeedbackLoopTest, AnalyzeResetsFeedbackState) {
  auto run1 = db_.Query(kSkewSql, OptimizerPath::kOrca);
  ASSERT_TRUE(run1.ok());
  ASSERT_TRUE(run1->feedback_harvested);
  ASSERT_EQ(db_.feedback_store().Size(), 1u);

  // ANALYZE moves the stats version: the harvested actuals are stale (they
  // described pre-ANALYZE statistics drift) and must not override the
  // fresh histograms.
  ASSERT_TRUE(db_.AnalyzeAll().ok());
  auto run2 = db_.Query(kSkewSql, OptimizerPath::kOrca);
  ASSERT_TRUE(run2.ok());
  EXPECT_EQ(run2->feedback_actual_overrides, 0);
  EXPECT_GT(run2->feedback_max_q_error, 10.0);  // back to histogram estimates
  EXPECT_GE(db_.feedback_store().version_resets(), 1);
  // The post-ANALYZE execution harvested fresh actuals under the new
  // versions, so the loop closes again on the next compile.
  EXPECT_TRUE(run2->feedback_harvested);
  auto run3 = db_.Query(kSkewSql, OptimizerPath::kOrca);
  ASSERT_TRUE(run3.ok());
  EXPECT_LE(run3->feedback_max_q_error, 2.0);
}

TEST_F(FeedbackLoopTest, FeedbackOffIsInert) {
  db_.feedback_config().enable = false;
  auto run1 = db_.Query(kSkewSql, OptimizerPath::kOrca);
  ASSERT_TRUE(run1.ok());
  EXPECT_FALSE(run1->feedback_harvested);
  auto run2 = db_.Query(kSkewSql, OptimizerPath::kOrca);
  ASSERT_TRUE(run2.ok());
  EXPECT_TRUE(run2->plan_cache_hit);  // no drift eviction without feedback
  EXPECT_EQ(run2->feedback_actual_overrides, 0);
  EXPECT_EQ(db_.feedback_store().Size(), 0u);
  auto explain = db_.Explain(kSkewSql, OptimizerPath::kOrca);
  ASSERT_TRUE(explain.ok());
  EXPECT_EQ(explain->find("cardinality_source: actual"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Fast-AGMS sketches as the second estimator: join-key streams sketched
// during hash-join execution feed join-size estimates for sub-joins the
// executed plan never materialized (no actual exists for them).
// ---------------------------------------------------------------------------

class SketchFeedbackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Three tables joined on a shared key domain: the executed two-join
    // plan yields actuals for its own subtrees only, so the third
    // two-table combination must come from sketches on the next compile.
    ASSERT_TRUE(db_.ExecuteSql(
                       "CREATE TABLE ta (a_id INT NOT NULL PRIMARY KEY, "
                       "a_k INT NOT NULL)")
                    .ok());
    ASSERT_TRUE(db_.ExecuteSql(
                       "CREATE TABLE tb (b_id INT NOT NULL PRIMARY KEY, "
                       "b_k INT NOT NULL)")
                    .ok());
    ASSERT_TRUE(db_.ExecuteSql(
                       "CREATE TABLE tc (c_id INT NOT NULL PRIMARY KEY, "
                       "c_k INT NOT NULL)")
                    .ok());
    std::vector<Row> a, b, c;
    for (int i = 0; i < 400; ++i) {
      a.push_back({Value::Int(i), Value::Int(i % 40)});
    }
    for (int i = 0; i < 300; ++i) {
      b.push_back({Value::Int(i), Value::Int(i % 40)});
    }
    for (int i = 0; i < 200; ++i) {
      c.push_back({Value::Int(i), Value::Int(i % 40)});
    }
    ASSERT_TRUE(db_.BulkLoad("ta", std::move(a)).ok());
    ASSERT_TRUE(db_.BulkLoad("tb", std::move(b)).ok());
    ASSERT_TRUE(db_.BulkLoad("tc", std::move(c)).ok());
    ASSERT_TRUE(db_.AnalyzeAll().ok());
    db_.feedback_config().enable = true;
    // Every compile fresh: the point is the optimizer's estimates, not
    // cache behavior.
    db_.plan_cache_config().enable = false;
  }

  static constexpr const char* kTripleSql =
      "SELECT COUNT(*) FROM ta, tb, tc WHERE a_k = b_k AND b_k = c_k";

  Database db_;
};

TEST_F(SketchFeedbackTest, SketchEstimatesServeUnexecutedSubJoins) {
  auto run1 = db_.Query(kTripleSql, OptimizerPath::kOrca);
  ASSERT_TRUE(run1.ok()) << run1.status().ToString();
  ASSERT_TRUE(run1->used_orca);
  EXPECT_TRUE(run1->feedback_harvested);
  EXPECT_EQ(run1->feedback_sketch_overrides, 0);  // nothing sketched yet

  // Second compile: the join search enumerates all two-table sets; the one
  // the executed plan never built has no actual, so its cardinality comes
  // from the harvested Fast-AGMS sketches (preferred over the histogram
  // product).
  auto run2 = db_.Query(kTripleSql, OptimizerPath::kOrca);
  ASSERT_TRUE(run2.ok()) << run2.status().ToString();
  EXPECT_GE(run2->feedback_actual_overrides, 1);
  EXPECT_GE(run2->feedback_sketch_overrides, 1);

  // Correctness is untouched: rows match the MySQL baseline.
  auto baseline = db_.Query(kTripleSql, OptimizerPath::kMySql);
  ASSERT_TRUE(baseline.ok());
  EXPECT_EQ(RowsText(baseline->rows), RowsText(run1->rows));
  EXPECT_EQ(RowsText(baseline->rows), RowsText(run2->rows));

  std::string metrics = db_.MetricsJson();
  EXPECT_NE(metrics.find("taurus.feedback.sketch_overrides"),
            std::string::npos);
}

TEST_F(SketchFeedbackTest, SketchesCanBeDisabledIndependently) {
  db_.feedback_config().sketches = false;
  auto run1 = db_.Query(kTripleSql, OptimizerPath::kOrca);
  ASSERT_TRUE(run1.ok());
  EXPECT_TRUE(run1->feedback_harvested);
  auto run2 = db_.Query(kTripleSql, OptimizerPath::kOrca);
  ASSERT_TRUE(run2.ok());
  // Actual-cardinality feedback still works; sketch overrides never fire.
  EXPECT_GE(run2->feedback_actual_overrides, 1);
  EXPECT_EQ(run2->feedback_sketch_overrides, 0);
}

}  // namespace
}  // namespace taurus
