// EXPLAIN ANALYZE tests (DESIGN.md section 10): the annotated render for
// TPC-H Q8 on the Orca route, the machine-readable JSON document, and an
// internal-consistency sweep over every TPC-H and TPC-DS query on both
// optimizer paths — actual rows must be non-negative, loops >= 1 for every
// executed node, a Filter can never emit more rows than its child produced,
// and every printed q-error is >= 1.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "engine/database.h"
#include "workloads/tpcds.h"
#include "workloads/tpch.h"

namespace taurus {
namespace {

/// One plan-node line of an EXPLAIN ANALYZE text render.
struct NodeLine {
  int indent = 0;  ///< leading spaces before "->"
  std::string text;
  bool has_actuals = false;
  int64_t actual_rows = 0;
  int64_t loops = 0;
  double q_error = 0.0;
  bool has_q_error = false;
};

int64_t ParseInt64After(const std::string& line, const std::string& marker) {
  size_t pos = line.find(marker);
  EXPECT_NE(pos, std::string::npos) << marker << " in " << line;
  return std::strtoll(line.c_str() + pos + marker.size(), nullptr, 10);
}

/// Parses the "-> ..." plan lines out of a text render; ignores the header
/// and the q-error-by-position trailer.
std::vector<NodeLine> ParsePlanLines(const std::string& text) {
  std::vector<NodeLine> nodes;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    std::string line = text.substr(start, end - start);
    start = end + 1;
    size_t arrow = line.find("-> ");
    if (arrow == std::string::npos) continue;
    // Trailer lines ("pos 0: ... q-error=...") never contain "-> ".
    NodeLine node;
    node.indent = static_cast<int>(arrow);
    node.text = line;
    if (line.find("(actual rows=") != std::string::npos) {
      node.has_actuals = true;
      node.actual_rows = ParseInt64After(line, "actual rows=");
      node.loops = ParseInt64After(line, "loops=");
    }
    size_t qpos = line.find("(q-error=");
    if (qpos != std::string::npos) {
      node.has_q_error = true;
      node.q_error = std::strtod(line.c_str() + qpos + 9, nullptr);
    }
    nodes.push_back(std::move(node));
  }
  return nodes;
}

/// Internal-consistency assertions over one render. `label` names the
/// query in failure messages.
void CheckConsistency(const std::string& text, const std::string& label) {
  std::vector<NodeLine> nodes = ParsePlanLines(text);
  ASSERT_FALSE(nodes.empty()) << label << ":\n" << text;
  for (size_t i = 0; i < nodes.size(); ++i) {
    const NodeLine& node = nodes[i];
    if (!node.has_actuals) continue;
    EXPECT_GE(node.actual_rows, 0) << label << ": " << node.text;
    // Any node that executed was opened at least once.
    EXPECT_GE(node.loops, 1) << label << ": " << node.text;
    if (node.has_q_error) {
      EXPECT_GE(node.q_error, 1.0) << label << ": " << node.text;
    }
    // A Filter only drops rows: its input (the first deeper node with
    // actuals) must have produced at least as many rows as it emitted.
    if (node.text.find("-> Filter:") == std::string::npos) continue;
    for (size_t j = i + 1; j < nodes.size() && nodes[j].indent > node.indent;
         ++j) {
      if (!nodes[j].has_actuals) continue;
      EXPECT_GE(nodes[j].actual_rows, node.actual_rows)
          << label << ": filter emitted more rows than its child\n"
          << node.text << "\n"
          << nodes[j].text;
      break;
    }
  }
}

TEST(ExplainAnalyzeTest, TpchQ8OrcaShowsActualsAndQError) {
  Database db;
  ASSERT_TRUE(SetupTpch(&db, 0.01).ok());
  auto text = db.ExplainAnalyze(TpchQueries()[7], OptimizerPath::kOrca);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("EXPLAIN ANALYZE (ORCA)"), std::string::npos) << *text;
  EXPECT_NE(text->find("(actual rows="), std::string::npos);
  EXPECT_NE(text->find("loops="), std::string::npos);
  EXPECT_NE(text->find("(q-error="), std::string::npos);
  EXPECT_NE(text->find("q-error by position"), std::string::npos);
  EXPECT_NE(text->find("max q-error:"), std::string::npos);
  CheckConsistency(*text, "tpch-q8-orca");

  // The MySQL route renders without the ORCA marker but with the same
  // actuals annotations.
  auto mysql = db.ExplainAnalyze(TpchQueries()[7], OptimizerPath::kMySql);
  ASSERT_TRUE(mysql.ok()) << mysql.status().ToString();
  EXPECT_EQ(mysql->find("(ORCA)"), std::string::npos);
  EXPECT_NE(mysql->find("EXPLAIN ANALYZE"), std::string::npos);
  EXPECT_NE(mysql->find("(actual rows="), std::string::npos);
  CheckConsistency(*mysql, "tpch-q8-mysql");
}

TEST(ExplainAnalyzeTest, JsonDumpIsMachineReadable) {
  Database db;
  ASSERT_TRUE(SetupTpch(&db, 0.01).ok());
  auto doc = db.ExplainAnalyzeJsonDump(TpchQueries()[7], OptimizerPath::kOrca);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  for (const char* key :
       {"\"explain_analyze\": true", "\"used_orca\": true", "\"execute_ms\"",
        "\"rows_returned\"", "\"plan\"", "\"est_rows\"", "\"actual_rows\"",
        "\"loops\"", "\"time_ms\"", "\"q_error\"", "\"q_errors\"",
        "\"max_q_error\""}) {
    EXPECT_NE(doc->find(key), std::string::npos) << "missing " << key;
  }
}

TEST(ExplainAnalyzeTest, ExecuteSqlRejectsWithHint) {
  Database db;
  ASSERT_TRUE(SetupTpch(&db, 0.01).ok());
  Status st = db.ExecuteSql("EXPLAIN ANALYZE SELECT * FROM nation");
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("Query()"), std::string::npos)
      << st.ToString();
}

TEST(ExplainAnalyzeTest, TpchSweepBothPathsIsInternallyConsistent) {
  Database db;
  // 0.002 matches tpch_test: the analyze wrappers time every row, and the
  // nested-loop-heavy queries grow superlinearly with scale.
  ASSERT_TRUE(SetupTpch(&db, 0.002).ok());
  const auto& queries = TpchQueries();
  for (size_t i = 0; i < queries.size(); ++i) {
    for (OptimizerPath path : {OptimizerPath::kOrca, OptimizerPath::kMySql}) {
      std::string label = "tpch-q" + std::to_string(i + 1) +
                          (path == OptimizerPath::kOrca ? "-orca" : "-mysql");
      auto text = db.ExplainAnalyze(queries[i], path);
      ASSERT_TRUE(text.ok()) << label << ": " << text.status().ToString();
      CheckConsistency(*text, label);
    }
  }
}

TEST(ExplainAnalyzeTest, TpcdsSweepBothPathsIsInternallyConsistent) {
  Database db;
  ASSERT_TRUE(SetupTpcds(&db, 0.0001).ok());
  const auto& queries = TpcdsQueries();
  for (size_t i = 0; i < queries.size(); ++i) {
    for (OptimizerPath path : {OptimizerPath::kOrca, OptimizerPath::kMySql}) {
      std::string label = "tpcds-q" + std::to_string(i + 1) +
                          (path == OptimizerPath::kOrca ? "-orca" : "-mysql");
      auto text = db.ExplainAnalyze(queries[i], path);
      ASSERT_TRUE(text.ok()) << label << ": " << text.status().ToString();
      CheckConsistency(*text, label);
    }
  }
}

}  // namespace
}  // namespace taurus
