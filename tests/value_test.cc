#include <gtest/gtest.h>

#include "types/datetime.h"
#include "types/value.h"

namespace taurus {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.ToString(), "NULL");
}

TEST(ValueTest, IntConstruction) {
  Value v = Value::Int(42, TypeId::kLong);
  EXPECT_FALSE(v.is_null());
  EXPECT_EQ(v.AsInt(), 42);
  EXPECT_EQ(v.type(), TypeId::kLong);
  EXPECT_EQ(v.ToString(), "42");
}

TEST(ValueTest, StringConstruction) {
  Value v = Value::Str("hello");
  EXPECT_EQ(v.AsString(), "hello");
  EXPECT_EQ(v.ToString(), "hello");
}

TEST(ValueTest, DateFormatting) {
  Value v = Value::Date(*ParseDate("1995-03-15"));
  EXPECT_EQ(v.ToString(), "1995-03-15");
  Value dt = Value::Datetime(*ParseDatetime("1995-03-15 06:07:08"));
  EXPECT_EQ(dt.ToString(), "1995-03-15 06:07:08");
}

TEST(ValueTest, CompareIntegers) {
  EXPECT_LT(Value::Compare(Value::Int(1), Value::Int(2)), 0);
  EXPECT_EQ(Value::Compare(Value::Int(5), Value::Int(5)), 0);
  EXPECT_GT(Value::Compare(Value::Int(9), Value::Int(2)), 0);
}

TEST(ValueTest, CompareMixedNumeric) {
  EXPECT_EQ(Value::Compare(Value::Int(3), Value::Double(3.0)), 0);
  EXPECT_LT(Value::Compare(Value::Int(3), Value::Double(3.5)), 0);
  EXPECT_GT(Value::Compare(Value::Double(4.1), Value::Int(4)), 0);
}

TEST(ValueTest, CompareStrings) {
  EXPECT_LT(Value::Compare(Value::Str("abc"), Value::Str("abd")), 0);
  EXPECT_EQ(Value::Compare(Value::Str("x"), Value::Str("x")), 0);
}

TEST(ValueTest, NullSortsFirst) {
  EXPECT_LT(Value::Compare(Value::Null(), Value::Int(-100)), 0);
  EXPECT_GT(Value::Compare(Value::Str(""), Value::Null()), 0);
  EXPECT_EQ(Value::Compare(Value::Null(), Value::Null()), 0);
}

TEST(ValueTest, NumberStringCoercion) {
  EXPECT_EQ(Value::Compare(Value::Int(12), Value::Str("12")), 0);
  EXPECT_LT(Value::Compare(Value::Str("3.5"), Value::Int(4)), 0);
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(3).Hash(), Value::Double(3.0).Hash());
  EXPECT_EQ(Value::Str("abc").Hash(), Value::Str("abc").Hash());
  EXPECT_NE(Value::Str("abc").Hash(), Value::Str("abd").Hash());
}

TEST(ValueTest, Truthiness) {
  EXPECT_TRUE(Value::Int(1).IsTrue());
  EXPECT_FALSE(Value::Int(0).IsTrue());
  EXPECT_FALSE(Value::Null().IsTrue());
  EXPECT_TRUE(Value::Double(0.5).IsTrue());
  EXPECT_FALSE(Value::Double(0.0).IsTrue());
}

TEST(ValueTest, BoolHelper) {
  EXPECT_EQ(Value::Bool(true).AsInt(), 1);
  EXPECT_EQ(Value::Bool(false).AsInt(), 0);
  EXPECT_EQ(Value::Bool(true).type(), TypeId::kTiny);
}

TEST(ValueTest, RowHashAndPrint) {
  Row r1{Value::Int(1), Value::Str("a")};
  Row r2{Value::Int(1), Value::Str("a")};
  Row r3{Value::Int(2), Value::Str("a")};
  EXPECT_EQ(HashRow(r1), HashRow(r2));
  EXPECT_NE(HashRow(r1), HashRow(r3));
  EXPECT_EQ(RowToString(r1), "(1, a)");
}

TEST(ValueTest, OrderingOperatorForSets) {
  EXPECT_TRUE(Value::Int(1) < Value::Int(2));
  EXPECT_TRUE(Value::Null() < Value::Int(0));
  EXPECT_TRUE(Value::Int(1) == Value::Double(1.0));
}

TEST(ValueTest, DoubleFormatting) {
  EXPECT_EQ(Value::Double(2.5).ToString(), "2.5");
  EXPECT_EQ(Value::Double(1e10).ToString(), "1e+10");
}

}  // namespace
}  // namespace taurus
