#include <gtest/gtest.h>

#include <algorithm>

#include "workloads/tpcds.h"

namespace taurus {
namespace {

std::string Fingerprint(std::vector<Row> rows) {
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    for (size_t i = 0; i < a.size(); ++i) {
      int c = Value::Compare(a[i], b[i]);
      if (c != 0) return c < 0;
    }
    return false;
  });
  std::string out;
  char buf[40];
  for (const Row& r : rows) {
    for (const Value& v : r) {
      if (v.kind() == Value::Kind::kDouble) {
        std::snprintf(buf, sizeof(buf), "%.4f|", v.AsDouble());
        out += buf;
      } else {
        out += v.ToString();
        out += '|';
      }
    }
    out += '\n';
  }
  return out;
}

class TpcdsTest : public ::testing::Test {
 protected:
  static Database* db() {
    static Database* instance = [] {
      auto* d = new Database();
      // 0.0001 keeps every generator floor (288 store_sales, 24 items) while
      // holding Q64's nested-loop join, which grows super-cubically in fact
      // rows, to well under a second. 0.001 made that one query run for hours.
      auto st = SetupTpcds(d, 0.0001);
      EXPECT_TRUE(st.ok()) << st.ToString();
      // The paper used threshold 2 for TPC-DS.
      d->router_config().complex_query_threshold = 2;
      return d;
    }();
    return instance;
  }
};

TEST_F(TpcdsTest, SchemaHasSeventeenTables) {
  EXPECT_EQ(db()->catalog().NumTables(), 17);
}

TEST_F(TpcdsTest, NinetyNineQueries) {
  EXPECT_EQ(TpcdsQueries().size(), 99u);
}

TEST_F(TpcdsTest, ChannelVolumeRatios) {
  auto count = [&](const std::string& t) {
    auto r = db()->Query("SELECT COUNT(*) FROM " + t);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() ? r->rows[0][0].AsInt() : 0;
  };
  int64_t ss = count("store_sales");
  int64_t cs = count("catalog_sales");
  int64_t ws = count("web_sales");
  EXPECT_GT(ss, cs);
  EXPECT_GT(cs, ws);
  EXPECT_GT(count("store_returns"), 0);
  EXPECT_GT(count("inventory"), 0);
}

TEST_F(TpcdsTest, ManufactCardinalityMatchesQ41Story) {
  // Q41's speedup hinges on items >> distinct manufacturers.
  auto r = db()->Query(
      "SELECT COUNT(*), COUNT(DISTINCT i_manufact) FROM item");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->rows[0][0].AsInt(), 3 * r->rows[0][1].AsInt());
}

/// All 99 queries must agree across the two optimizer paths.
class TpcdsQueryTest : public TpcdsTest,
                       public ::testing::WithParamInterface<int> {};

TEST_P(TpcdsQueryTest, PathsAgree) {
  const std::string& sql = TpcdsQueries()[static_cast<size_t>(GetParam())];
  auto mysql = db()->Query(sql, OptimizerPath::kMySql);
  ASSERT_TRUE(mysql.ok()) << "MySQL path failed on Q" << GetParam() + 1
                          << ": " << mysql.status().ToString();
  auto orca = db()->Query(sql, OptimizerPath::kOrca);
  ASSERT_TRUE(orca.ok()) << "Orca path failed on Q" << GetParam() + 1 << ": "
                         << orca.status().ToString();
  EXPECT_EQ(Fingerprint(mysql->rows), Fingerprint(orca->rows))
      << "plan paths disagree on Q" << GetParam() + 1;
}

INSTANTIATE_TEST_SUITE_P(AllQueries, TpcdsQueryTest, ::testing::Range(0, 99),
                         [](const ::testing::TestParamInfo<int>& pinfo) {
                           return "Q" + std::to_string(pinfo.param + 1);
                         });

}  // namespace
}  // namespace taurus
