#include <gtest/gtest.h>

#include "bridge/orca_path.h"
#include "bridge/plan_converter.h"
#include "bridge/router.h"
#include "frontend/prepare.h"
#include "parser/parser.h"
#include "storage/storage.h"

namespace taurus {
namespace {

class BridgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (const char* spec : {"t1", "t2", "t3"}) {
      auto t = catalog_.CreateTable(
          spec, {{"id", TypeId::kLong, 0, false},
                 {"fk", TypeId::kLong, 0, false},
                 {"v", TypeId::kDouble, 0, false}});
      ASSERT_TRUE(t.ok());
      ASSERT_TRUE(
          catalog_.AddIndex(spec, {std::string(spec) + "_pk", {0}, true, true})
              .ok());
      TableData* data = storage_.CreateTable(*t);
      for (int i = 0; i < 100; ++i) {
        data->Append({Value::Int(i), Value::Int(i % 10),
                      Value::Double(i * 1.5)});
      }
      data->BuildIndexes();
      catalog_.SetStats((*t)->id, ComputeTableStats(*data));
    }
    mdp_ = std::make_unique<MetadataProvider>(catalog_);
  }

  Result<BoundStatement> Prep(const std::string& sql) {
    auto parsed = ParseSelect(sql);
    if (!parsed.ok()) return parsed.status();
    auto bound = BindStatement(catalog_, std::move(*parsed));
    if (!bound.ok()) return bound.status();
    BoundStatement stmt = std::move(*bound);
    TAURUS_RETURN_IF_ERROR(PrepareStatement(&stmt));
    return stmt;
  }

  Catalog catalog_;
  Storage storage_;
  std::unique_ptr<MetadataProvider> mdp_;
};

TEST_F(BridgeTest, RouterCountsAllReferences) {
  auto one = Prep("SELECT COUNT(*) FROM t1");
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(CountTableReferences(*one), 1);
  // Subquery tables count toward the total (the paper's definition:
  // "total number of table references in a query").
  auto three = Prep(
      "SELECT COUNT(*) FROM t1, t2 WHERE t1.id = t2.id AND EXISTS "
      "(SELECT 1 FROM t3 WHERE t3.id = t1.id)");
  ASSERT_TRUE(three.ok());
  EXPECT_EQ(CountTableReferences(*three), 3);
}

TEST_F(BridgeTest, RouterThreshold) {
  RouterConfig config;
  config.complex_query_threshold = 3;
  auto two = Prep("SELECT COUNT(*) FROM t1, t2 WHERE t1.id = t2.id");
  ASSERT_TRUE(two.ok());
  EXPECT_FALSE(ShouldRouteToOrca(*two, config));
  config.complex_query_threshold = 2;
  EXPECT_TRUE(ShouldRouteToOrca(*two, config));
  config.enable_orca = false;
  EXPECT_FALSE(ShouldRouteToOrca(*two, config));
}

TEST_F(BridgeTest, OrcaPathProducesSkeleton) {
  auto stmt = Prep(
      "SELECT t1.id, COUNT(*) FROM t1, t2, t3 WHERE t1.id = t2.fk AND "
      "t2.id = t3.fk GROUP BY t1.id");
  ASSERT_TRUE(stmt.ok());
  OrcaConfig config;
  OrcaPathOptimizer orca(catalog_, &*stmt, mdp_.get(), config);
  auto skel = orca.Optimize();
  ASSERT_TRUE(skel.ok()) << skel.status().ToString();
  ASSERT_NE((*skel)->root, nullptr);
  std::vector<const SkeletonNode*> bpa;
  (*skel)->root->BestPositionArray(&bpa);
  EXPECT_EQ(bpa.size(), 3u);  // all three tables placed
  // Estimates were copied over for EXPLAIN (Section 4.2.2).
  EXPECT_GT((*skel)->root->est_cost, 0.0);
  // The DXL metadata path was exercised.
  EXPECT_GT(orca.metrics().mdp_dxl_requests, 0);
}

TEST_F(BridgeTest, InnerHashJoinChildrenFlip) {
  // Build an Orca physical hash join by hand and convert it with and
  // without the flip.
  auto stmt = Prep("SELECT COUNT(*) FROM t1, t2 WHERE t1.id = t2.fk");
  ASSERT_TRUE(stmt.ok());
  std::vector<TableRef*> leaves = stmt->block->Leaves();
  auto make_plan = [&]() {
    auto scan1 = std::make_unique<OrcaPhysicalOp>();
    scan1->kind = OrcaPhysicalOp::Kind::kTableScan;
    scan1->leaf = leaves[0];
    auto scan2 = std::make_unique<OrcaPhysicalOp>();
    scan2->kind = OrcaPhysicalOp::Kind::kTableScan;
    scan2->leaf = leaves[1];
    auto join = std::make_unique<OrcaPhysicalOp>();
    join->kind = OrcaPhysicalOp::Kind::kHashJoin;
    join->join_type = JoinType::kInner;
    join->children.push_back(std::move(scan1));
    join->children.push_back(std::move(scan2));
    return join;
  };
  OrcaConfig flip_on;
  flip_on.flip_inner_hash_build = true;
  auto flipped = ConvertOrcaPlanToSkeleton(*make_plan(), *stmt->block,
                                           flip_on);
  ASSERT_TRUE(flipped.ok());
  // Orca's right child (t2, the build side) lands on the MySQL left.
  EXPECT_EQ((*flipped)->left->leaf, leaves[1]);
  EXPECT_EQ((*flipped)->right->leaf, leaves[0]);

  OrcaConfig flip_off;
  flip_off.flip_inner_hash_build = false;
  auto unflipped = ConvertOrcaPlanToSkeleton(*make_plan(), *stmt->block,
                                             flip_off);
  ASSERT_TRUE(unflipped.ok());
  EXPECT_EQ((*unflipped)->left->leaf, leaves[0]);
}

TEST_F(BridgeTest, LeftHashJoinChildrenNotFlipped) {
  auto stmt = Prep(
      "SELECT COUNT(*) FROM t1 LEFT JOIN t2 ON t1.id = t2.fk");
  ASSERT_TRUE(stmt.ok());
  std::vector<TableRef*> leaves = stmt->block->Leaves();
  auto scan1 = std::make_unique<OrcaPhysicalOp>();
  scan1->kind = OrcaPhysicalOp::Kind::kTableScan;
  scan1->leaf = leaves[0];
  auto scan2 = std::make_unique<OrcaPhysicalOp>();
  scan2->kind = OrcaPhysicalOp::Kind::kTableScan;
  scan2->leaf = leaves[1];
  auto join = std::make_unique<OrcaPhysicalOp>();
  join->kind = OrcaPhysicalOp::Kind::kHashJoin;
  join->join_type = JoinType::kLeft;
  join->children.push_back(std::move(scan1));
  join->children.push_back(std::move(scan2));
  OrcaConfig config;
  auto skel = ConvertOrcaPlanToSkeleton(*join, *stmt->block, config);
  ASSERT_TRUE(skel.ok());
  EXPECT_EQ((*skel)->left->leaf, leaves[0]);  // outer stays left
}

TEST_F(BridgeTest, ConversionAbortsOnForeignBlockLeaf) {
  // Pass 1's query-block discovery (Section 4.2.1): a leaf owned by a
  // different block aborts the conversion.
  auto stmt = Prep("SELECT COUNT(*) FROM t1 WHERE t1.v > "
                   "(SELECT AVG(t2.v) FROM t2)");
  ASSERT_TRUE(stmt.ok());
  // Build a plan whose leaf belongs to the subquery's block.
  TableRef* foreign = nullptr;
  for (TableRef* leaf : stmt->leaves) {
    if (leaf->owner != stmt->block.get()) foreign = leaf;
  }
  ASSERT_NE(foreign, nullptr);
  auto scan = std::make_unique<OrcaPhysicalOp>();
  scan->kind = OrcaPhysicalOp::Kind::kTableScan;
  scan->leaf = foreign;
  OrcaConfig config;
  auto skel = ConvertOrcaPlanToSkeleton(*scan, *stmt->block, config);
  EXPECT_EQ(skel.status().code(), StatusCode::kNotSupported);
}

TEST_F(BridgeTest, CteProducerReusedAcrossConsumers) {
  auto stmt = Prep(
      "WITH agg AS (SELECT fk, SUM(v) s FROM t1 GROUP BY fk) "
      "SELECT COUNT(*) FROM agg a1, agg a2 WHERE a1.fk = a2.fk");
  ASSERT_TRUE(stmt.ok());
  OrcaConfig config;
  OrcaPathOptimizer orca(catalog_, &*stmt, mdp_.get(), config);
  auto skel = orca.Optimize();
  ASSERT_TRUE(skel.ok()) << skel.status().ToString();
  EXPECT_EQ(orca.metrics().cte_producers_reused, 1);
  EXPECT_EQ((*skel)->derived.size(), 2u);  // both consumers have skeletons
}

TEST_F(BridgeTest, RouterCountsCteCopiesIndividually) {
  // The binder expands each CTE reference into its own derived-table copy
  // (MySQL's multiple-producer model); both the copies and the base tables
  // inside each copy's body count toward the routing total.
  auto stmt = Prep(
      "WITH agg AS (SELECT fk, SUM(v) s FROM t1 GROUP BY fk) "
      "SELECT COUNT(*) FROM agg a1, agg a2 WHERE a1.fk = a2.fk");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(CountTableReferences(*stmt), 4);  // 2 copies + t1 in each body

  RouterConfig config;
  config.complex_query_threshold = 4;  // exactly at: routes
  EXPECT_TRUE(ShouldRouteToOrca(*stmt, config));
  config.complex_query_threshold = 5;  // one above: stays on MySQL
  EXPECT_FALSE(ShouldRouteToOrca(*stmt, config));
}

TEST_F(BridgeTest, RouterCountsNestedSubqueryTables) {
  // Tables referenced only inside nested subquery blocks still count —
  // "total number of table references in the query" spans all blocks.
  auto stmt = Prep(
      "SELECT COUNT(*) FROM t1 WHERE EXISTS "
      "(SELECT 1 FROM t2 WHERE t2.id = t1.id AND EXISTS "
      "(SELECT 1 FROM t3 WHERE t3.id = t2.id))");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(CountTableReferences(*stmt), 3);

  RouterConfig config;
  config.complex_query_threshold = 3;  // exactly at
  EXPECT_TRUE(ShouldRouteToOrca(*stmt, config));
  config.complex_query_threshold = 4;  // just below the threshold
  EXPECT_FALSE(ShouldRouteToOrca(*stmt, config));
}

TEST_F(BridgeTest, RouterBoundaryBelowThresholdSingleTable) {
  auto stmt = Prep("SELECT COUNT(*) FROM t1 WHERE v > 10");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(CountTableReferences(*stmt), 1);
  RouterConfig config;  // default threshold 3
  EXPECT_FALSE(ShouldRouteToOrca(*stmt, config));
  config.complex_query_threshold = 1;
  EXPECT_TRUE(ShouldRouteToOrca(*stmt, config));
}

TEST_F(BridgeTest, MetricsAccumulate) {
  auto stmt = Prep(
      "SELECT COUNT(*) FROM t1, t2, t3 WHERE t1.id = t2.fk AND "
      "t2.id = t3.fk");
  ASSERT_TRUE(stmt.ok());
  OrcaConfig config;
  OrcaPathOptimizer orca(catalog_, &*stmt, mdp_.get(), config);
  ASSERT_TRUE(orca.Optimize().ok());
  EXPECT_GT(orca.metrics().partitions_evaluated, 0);
  EXPECT_GT(orca.metrics().memo_groups, 0);
}

}  // namespace
}  // namespace taurus
