#include <gtest/gtest.h>

#include "catalog/catalog.h"

namespace taurus {
namespace {

std::vector<ColumnDef> TwoCols() {
  return {{"id", TypeId::kLong, 0, false}, {"name", TypeId::kVarchar, 25, true}};
}

TEST(CatalogTest, CreateAndLookup) {
  Catalog cat;
  auto t = cat.CreateTable("t1", TwoCols());
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->id, 0);
  EXPECT_EQ(cat.GetTable("t1"), *t);
  EXPECT_EQ(cat.GetTableById(0), *t);
  EXPECT_EQ(cat.GetTable("missing"), nullptr);
  EXPECT_EQ(cat.GetTableById(99), nullptr);
}

TEST(CatalogTest, DuplicateNameRejected) {
  Catalog cat;
  ASSERT_TRUE(cat.CreateTable("t", TwoCols()).ok());
  auto dup = cat.CreateTable("t", TwoCols());
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
}

TEST(CatalogTest, EmptyColumnsRejected) {
  Catalog cat;
  EXPECT_EQ(cat.CreateTable("t", {}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CatalogTest, IdsAreDense) {
  Catalog cat;
  EXPECT_EQ((*cat.CreateTable("a", TwoCols()))->id, 0);
  EXPECT_EQ((*cat.CreateTable("b", TwoCols()))->id, 1);
  EXPECT_EQ((*cat.CreateTable("c", TwoCols()))->id, 2);
  EXPECT_EQ(cat.NumTables(), 3);
}

TEST(CatalogTest, ColumnIndexLookup) {
  Catalog cat;
  const TableDef* t = *cat.CreateTable("t", TwoCols());
  EXPECT_EQ(t->ColumnIndex("id"), 0);
  EXPECT_EQ(t->ColumnIndex("name"), 1);
  EXPECT_EQ(t->ColumnIndex("nope"), -1);
}

TEST(CatalogTest, AddIndexValidatesColumns) {
  Catalog cat;
  ASSERT_TRUE(cat.CreateTable("t", TwoCols()).ok());
  IndexDef good{"t_pk", {0}, true, true};
  EXPECT_TRUE(cat.AddIndex("t", good).ok());
  IndexDef bad{"t_bad", {5}, false, false};
  EXPECT_EQ(cat.AddIndex("t", bad).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(cat.AddIndex("missing", good).code(), StatusCode::kNotFound);
  EXPECT_EQ(cat.GetTable("t")->indexes.size(), 1u);
}

TEST(CatalogTest, StatsDefaultEmptyThenSettable) {
  Catalog cat;
  const TableDef* t = *cat.CreateTable("t", TwoCols());
  EXPECT_EQ(cat.GetStats(t->id).row_count, 0);
  TableStats stats;
  stats.row_count = 123;
  stats.columns.resize(2);
  stats.columns[0].distinct_count = 123;
  cat.SetStats(t->id, std::move(stats));
  EXPECT_EQ(cat.GetStats(t->id).row_count, 123);
  EXPECT_EQ(cat.GetStats(t->id).columns[0].distinct_count, 123);
}

TEST(CatalogTest, TableNamesSorted) {
  Catalog cat;
  ASSERT_TRUE(cat.CreateTable("zeta", TwoCols()).ok());
  ASSERT_TRUE(cat.CreateTable("alpha", TwoCols()).ok());
  auto names = cat.TableNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "alpha");
  EXPECT_EQ(names[1], "zeta");
}

}  // namespace
}  // namespace taurus
