#ifndef TAURUS_ENGINE_PLAN_CACHE_H_
#define TAURUS_ENGINE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "frontend/binder.h"
#include "myopt/skeleton.h"

namespace taurus {

/// A skeleton plan in portable form. A live BlockSkeleton holds raw
/// TableRef* pointers into one specific bound AST, so it dies with its
/// statement; the frozen form identifies leaves by ref_id and expression
/// subqueries by deterministic traversal ordinal, which are stable across
/// re-parses of the same (fingerprint-identical) statement. Freeze turns a
/// live skeleton into this form for caching; Thaw re-attaches it to a
/// freshly bound statement.
struct FrozenSkeletonNode {
  bool is_join = false;

  // Leaf.
  int leaf_ref_id = -1;
  AccessMethod access = AccessMethod::kTableScan;
  int index_id = -1;

  // Join.
  JoinMethod method = JoinMethod::kNestedLoop;
  JoinType join_type = JoinType::kInner;
  std::unique_ptr<FrozenSkeletonNode> left;
  std::unique_ptr<FrozenSkeletonNode> right;

  double est_rows = 0.0;
  double est_cost = 0.0;
  CardSource card_source = CardSource::kHistogram;
};

struct FrozenBlockSkeleton {
  std::unique_ptr<FrozenSkeletonNode> root;  ///< null when block has no FROM
  double out_rows = 1.0;
  double cost = 0.0;
  bool stream_agg = false;

  /// Sub-skeletons of derived-table leaves, keyed by the leaf's ref_id.
  std::vector<std::pair<int, FrozenBlockSkeleton>> derived;
  /// Sub-skeletons of expression subqueries (EXISTS / IN / scalar), in the
  /// canonical block traversal order.
  std::vector<FrozenBlockSkeleton> subqueries;
  std::vector<FrozenBlockSkeleton> union_arms;
};

/// Converts a live skeleton into portable form. Fails (making the plan
/// uncacheable, never wrong) if the skeleton references structure that
/// cannot be identified positionally.
Result<FrozenBlockSkeleton> FreezeSkeleton(const BlockSkeleton& skel);

/// Reconstructs a live skeleton over `stmt` (whose root block must be
/// structurally identical to the statement the frozen skeleton was compiled
/// from — guaranteed by fingerprint-equality plus replayed rewrites).
/// Validates leaf kinds, ref ranges and index ids; any mismatch returns an
/// error, which the caller treats as a cache miss.
Result<std::unique_ptr<BlockSkeleton>> ThawSkeleton(
    const FrozenBlockSkeleton& frozen, const BoundStatement& stmt);

struct PlanCacheConfig {
  bool enable = true;
  size_t capacity = 64;  ///< max cached skeletons (LRU evicted beyond)
};

struct PlanCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t insertions = 0;
  int64_t evictions = 0;
  /// Entries dropped on lookup because catalog schema/stats versions moved.
  int64_t invalidations = 0;
  /// Entries dropped on lookup because the fingerprint's feedback drift
  /// version moved (observed q-error exceeded the invalidation threshold
  /// since this plan was compiled).
  int64_t drift_invalidations = 0;
};

/// One cached compilation: the frozen skeleton plus routing metadata and
/// the catalog versions it was compiled against.
struct PlanCacheEntry {
  uint64_t fingerprint = 0;
  FrozenBlockSkeleton skeleton;

  /// Routing metadata: which optimizer produced the skeleton, and whether
  /// the Orca detour's AST rewrites (decorrelation, general OR factoring)
  /// must be replayed before thawing.
  bool used_orca = false;
  bool via_orca_route = false;

  double est_cost = 0.0;   ///< skeleton cost estimate
  double est_rows = 0.0;   ///< estimated output cardinality
  double cold_optimize_ms = 0.0;  ///< optimize wall time of the cold compile

  uint64_t schema_version = 0;
  uint64_t stats_version = 0;
  /// Feedback drift version of the fingerprint at compile time (0 when
  /// feedback is off or nothing was harvested yet). A later drift bump —
  /// the estimate-drift invalidation of DESIGN.md section 11 — evicts
  /// exactly this entry on its next lookup.
  uint64_t feedback_version = 0;
  int64_t hit_count = 0;
};

/// LRU cache of frozen skeleton plans keyed by statement fingerprint (plus
/// routing tag). Invalidation is version-based: a lookup whose entry was
/// compiled against older catalog schema/stats versions drops the entry and
/// reports a miss, so DDL and ANALYZE never serve a stale plan.
class PlanCache {
 public:
  explicit PlanCache(size_t capacity = 64) : capacity_(capacity) {}
  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the entry for `key` if present and compiled against the given
  /// catalog versions; bumps it to most-recently-used. Returns nullptr on
  /// miss (and erases the entry when it was stale). The pointer is valid
  /// until the next non-const call.
  const PlanCacheEntry* Lookup(const std::string& key,
                               uint64_t schema_version,
                               uint64_t stats_version,
                               uint64_t feedback_version = 0);

  /// Inserts (or replaces) the entry for `key`, evicting the least
  /// recently used entry when over capacity.
  void Insert(const std::string& key, PlanCacheEntry entry);

  void Clear();
  /// Shrinking below the current size evicts least-recently-used entries.
  void set_capacity(size_t capacity);
  size_t capacity() const { return capacity_; }
  size_t size() const { return lru_.size(); }

  const PlanCacheStats& stats() const { return stats_; }
  void ResetStats() { stats_ = PlanCacheStats(); }

 private:
  struct Node {
    std::string key;
    PlanCacheEntry entry;
  };

  std::list<Node> lru_;  ///< front = most recently used
  std::unordered_map<std::string, std::list<Node>::iterator> index_;
  size_t capacity_;
  PlanCacheStats stats_;
};

}  // namespace taurus

#endif  // TAURUS_ENGINE_PLAN_CACHE_H_
