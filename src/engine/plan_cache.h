#ifndef TAURUS_ENGINE_PLAN_CACHE_H_
#define TAURUS_ENGINE_PLAN_CACHE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "frontend/binder.h"
#include "myopt/skeleton.h"

namespace taurus {

/// A skeleton plan in portable form. A live BlockSkeleton holds raw
/// TableRef* pointers into one specific bound AST, so it dies with its
/// statement; the frozen form identifies leaves by ref_id and expression
/// subqueries by deterministic traversal ordinal, which are stable across
/// re-parses of the same (fingerprint-identical) statement. Freeze turns a
/// live skeleton into this form for caching; Thaw re-attaches it to a
/// freshly bound statement.
struct FrozenSkeletonNode {
  bool is_join = false;

  // Leaf.
  int leaf_ref_id = -1;
  AccessMethod access = AccessMethod::kTableScan;
  int index_id = -1;

  // Join.
  JoinMethod method = JoinMethod::kNestedLoop;
  JoinType join_type = JoinType::kInner;
  std::unique_ptr<FrozenSkeletonNode> left;
  std::unique_ptr<FrozenSkeletonNode> right;

  double est_rows = 0.0;
  double est_cost = 0.0;
  CardSource card_source = CardSource::kHistogram;
};

struct FrozenBlockSkeleton {
  std::unique_ptr<FrozenSkeletonNode> root;  ///< null when block has no FROM
  double out_rows = 1.0;
  double cost = 0.0;
  bool stream_agg = false;

  /// Sub-skeletons of derived-table leaves, keyed by the leaf's ref_id.
  std::vector<std::pair<int, FrozenBlockSkeleton>> derived;
  /// Sub-skeletons of expression subqueries (EXISTS / IN / scalar), in the
  /// canonical block traversal order.
  std::vector<FrozenBlockSkeleton> subqueries;
  std::vector<FrozenBlockSkeleton> union_arms;
};

/// Converts a live skeleton into portable form. Fails (making the plan
/// uncacheable, never wrong) if the skeleton references structure that
/// cannot be identified positionally.
Result<FrozenBlockSkeleton> FreezeSkeleton(const BlockSkeleton& skel);

/// Reconstructs a live skeleton over `stmt` (whose root block must be
/// structurally identical to the statement the frozen skeleton was compiled
/// from — guaranteed by fingerprint-equality plus replayed rewrites).
/// Validates leaf kinds, ref ranges and index ids; any mismatch returns an
/// error, which the caller treats as a cache miss.
Result<std::unique_ptr<BlockSkeleton>> ThawSkeleton(
    const FrozenBlockSkeleton& frozen, const BoundStatement& stmt);

struct PlanCacheConfig {
  bool enable = true;
  size_t capacity = 64;  ///< max cached skeletons (LRU evicted beyond)
};

struct PlanCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t insertions = 0;
  int64_t evictions = 0;
  /// Entries dropped on lookup because catalog schema/stats versions moved.
  int64_t invalidations = 0;
  /// Entries dropped on lookup because the fingerprint's feedback drift
  /// version moved (observed q-error exceeded the invalidation threshold
  /// since this plan was compiled).
  int64_t drift_invalidations = 0;
};

/// One cached compilation: the frozen skeleton plus routing metadata and
/// the catalog versions it was compiled against.
struct PlanCacheEntry {
  uint64_t fingerprint = 0;
  FrozenBlockSkeleton skeleton;

  /// Routing metadata: which optimizer produced the skeleton, and whether
  /// the Orca detour's AST rewrites (decorrelation, general OR factoring)
  /// must be replayed before thawing.
  bool used_orca = false;
  bool via_orca_route = false;

  double est_cost = 0.0;   ///< skeleton cost estimate
  double est_rows = 0.0;   ///< estimated output cardinality
  double cold_optimize_ms = 0.0;  ///< optimize wall time of the cold compile

  uint64_t schema_version = 0;
  uint64_t stats_version = 0;
  /// Feedback drift version of the fingerprint at compile time (0 when
  /// feedback is off or nothing was harvested yet). A later drift bump —
  /// the estimate-drift invalidation of DESIGN.md section 11 — evicts
  /// exactly this entry on its next lookup.
  uint64_t feedback_version = 0;
  int64_t hit_count = 0;
  /// Recency stamp from the cache's global tick counter; accessed via
  /// std::atomic_ref on the hit path (shared lock only).
  uint64_t last_used = 0;
};

/// Lock-striped LRU cache of frozen skeleton plans keyed by statement
/// fingerprint (plus routing tag). Invalidation is version-based: a lookup
/// whose entry was compiled against older catalog schema/stats versions
/// drops the entry and reports a miss, so DDL and ANALYZE never serve a
/// stale plan.
///
/// Concurrency contract: keys hash to one of up to kMaxShards shards, each
/// guarded by its own shared_mutex. The hit path takes only a per-shard
/// *shared* lock and touches recency/hit-count through std::atomic_ref, so
/// concurrent hits on warm entries never serialize on a writer lock; stale
/// entries escalate to the shard's exclusive lock (rare: only after
/// DDL/ANALYZE or a feedback drift bump). Entries are handed out as
/// shared_ptr so a thaw proceeding after the lock is released cannot race
/// an eviction. Stats are relaxed atomics. `set_capacity`/`Clear` take all
/// shard locks in ascending index order (the lock hierarchy — no other
/// path ever holds two shard locks) and, like the config knobs that drive
/// them, must be quiesced relative to in-flight queries.
///
/// LRU is approximate across shards (each shard evicts its own
/// least-recently-stamped entry over its capacity slice) but exact within
/// one shard; capacities below kShardingThreshold use a single shard, so
/// small caches keep the exact global-LRU semantics the unit tests pin.
class PlanCache {
 public:
  explicit PlanCache(size_t capacity = 64);
  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  /// Returns the entry for `key` if present and compiled against the given
  /// catalog versions; bumps it to most-recently-used. Returns nullptr on
  /// miss (and erases the entry when it was stale). The returned entry
  /// stays valid for the caller's lifetime even if concurrently evicted.
  std::shared_ptr<const PlanCacheEntry> Lookup(const std::string& key,
                                               uint64_t schema_version,
                                               uint64_t stats_version,
                                               uint64_t feedback_version = 0);

  /// Inserts (or replaces) the entry for `key`, evicting the least
  /// recently used entry in the key's shard when over capacity.
  void Insert(const std::string& key, PlanCacheEntry entry);

  void Clear();
  /// Shrinking below the current size evicts least-recently-used entries.
  /// May re-shard; must not run concurrently with queries (config-change
  /// contract).
  void set_capacity(size_t capacity);
  size_t capacity() const {
    return capacity_.load(std::memory_order_relaxed);
  }
  size_t size() const;
  size_t shard_count() const {
    return shard_count_.load(std::memory_order_relaxed);
  }

  /// Snapshot of the relaxed atomic counters (exact once quiescent).
  PlanCacheStats stats() const;
  void ResetStats();

  /// Invalidation-hook causes, by which version stamp moved.
  ///   "ddl"     — catalog schema version (CREATE TABLE / CREATE INDEX)
  ///   "analyze" — catalog stats version (ANALYZE)
  ///   "drift"   — the fingerprint's feedback drift version (section 11)
  using InvalidationHook =
      std::function<void(uint64_t fingerprint, const char* cause)>;

  /// Installs a hook called after a lookup dropped a stale entry — the
  /// digest store's plan-epoch signal (DESIGN.md section 15). Invoked
  /// outside the shard lock. Must be set before concurrent queries start
  /// (engine construction), like the config knobs.
  void SetInvalidationHook(InvalidationHook hook) {
    invalidation_hook_ = std::move(hook);
  }

 private:
  static constexpr size_t kMaxShards = 16;
  /// Capacities below this use one shard: exact LRU for small caches,
  /// striping only where there is room for it to matter.
  static constexpr size_t kShardingThreshold = 16;

  struct Shard {
    /// Rank 20, striped: same-rank nesting is legal only in ascending
    /// stripe order (registry rule LR2). Ranked in the PlanCache
    /// constructor because std::array default-constructs its elements.
    mutable SharedMutex mu;
    std::unordered_map<std::string, std::shared_ptr<PlanCacheEntry>> map
        TAURUS_GUARDED_BY(mu);
    /// This shard's slice of the global capacity.
    size_t capacity TAURUS_GUARDED_BY(mu) = 0;
  };

  static size_t ShardCountFor(size_t capacity);
  size_t ShardIndex(const std::string& key, size_t count) const {
    return count <= 1 ? 0 : std::hash<std::string>{}(key) % count;
  }
  uint64_t NextTick() {
    return tick_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  /// Requires the shard's exclusive lock.
  void EvictOverCapacityLocked(Shard* shard) TAURUS_REQUIRES(shard->mu);
  /// Requires every shard lock exclusively (or pre-concurrency exclusive
  /// access in the constructor); recomputes slices and re-shards if
  /// needed. A variable set of array-indexed locks is beyond the static
  /// analysis, so the function opts out; the LockRankRegistry's
  /// ascending-stripe rule (LR2) checks the callers' sweeps at runtime.
  void ApplyCapacityLocked(size_t capacity) TAURUS_NO_THREAD_SAFETY_ANALYSIS;

  std::array<Shard, kMaxShards> shards_;
  InvalidationHook invalidation_hook_;  ///< set once before concurrency
  std::atomic<size_t> capacity_;
  std::atomic<size_t> shard_count_;
  std::atomic<uint64_t> tick_{0};

  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> insertions_{0};
  std::atomic<int64_t> evictions_{0};
  std::atomic<int64_t> invalidations_{0};
  std::atomic<int64_t> drift_invalidations_{0};
};

}  // namespace taurus

#endif  // TAURUS_ENGINE_PLAN_CACHE_H_
