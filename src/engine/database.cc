#include "engine/database.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>

#include "bridge/decorrelate.h"
#include "bridge/parse_tree_converter.h"
#include "common/lock_rank.h"
#include "common/strings.h"
#include "engine/explain.h"
#include "exec/block_executor.h"
#include "exec/expr_eval.h"
#include "frontend/binder.h"
#include "frontend/fingerprint.h"
#include "myopt/mysql_optimizer.h"
#include "myopt/refine.h"
#include "obs/estimate_feedback.h"
#include "parser/parser.h"
#include "verify/block_verifier.h"
#include "verify/skeleton_verifier.h"

namespace taurus {

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// Defense-in-depth recursion cap for AST walks; the parser rejects
/// nesting beyond its own (smaller) limit, so this is unreachable for any
/// statement that survived parsing.
constexpr int kMaxBlockNesting = 64;

/// Visits every query block of a statement (derived bodies, expression
/// subquery bodies, UNION continuations).
template <typename Fn>
void ForEachBlock(QueryBlock* block, const Fn& fn, int depth = 0) {
  if (depth > kMaxBlockNesting) return;
  fn(block);
  std::vector<TableRef*> stack;
  for (auto& t : block->from) stack.push_back(t.get());
  while (!stack.empty()) {
    TableRef* r = stack.back();
    stack.pop_back();
    if (r->kind == TableRef::Kind::kJoin) {
      stack.push_back(r->left.get());
      stack.push_back(r->right.get());
    } else if (r->kind == TableRef::Kind::kDerived && r->derived != nullptr) {
      ForEachBlock(r->derived.get(), fn, depth + 1);
    }
  }
  std::vector<Expr*> roots;
  for (auto& item : block->select_items) roots.push_back(item.expr.get());
  if (block->where) roots.push_back(block->where.get());
  for (auto& g : block->group_by) roots.push_back(g.get());
  if (block->having) roots.push_back(block->having.get());
  for (auto& o : block->order_by) roots.push_back(o.expr.get());
  for (auto& t : block->from) stack.push_back(t.get());
  while (!stack.empty()) {
    TableRef* r = stack.back();
    stack.pop_back();
    if (r->kind == TableRef::Kind::kJoin) {
      if (r->on) roots.push_back(r->on.get());
      stack.push_back(r->left.get());
      stack.push_back(r->right.get());
    }
  }
  std::vector<Expr*> estack(roots.begin(), roots.end());
  while (!estack.empty()) {
    Expr* e = estack.back();
    estack.pop_back();
    if (e->subquery) ForEachBlock(e->subquery.get(), fn, depth + 1);
    for (auto& c : e->children) estack.push_back(c.get());
  }
  if (block->union_next) ForEachBlock(block->union_next.get(), fn, depth + 1);
}

/// True when the statement's first token is SHOW (routed to the metrics
/// registry instead of the SELECT pipeline).
bool IsShowStatement(const std::string& sql) {
  size_t i = sql.find_first_not_of(" \t\r\n");
  if (i == std::string::npos || i + 4 > sql.size()) return false;
  const char kShow[] = "show";
  for (size_t j = 0; j < 4; ++j) {
    if (std::tolower(static_cast<unsigned char>(sql[i + j])) != kShow[j]) {
      return false;
    }
  }
  size_t k = i + 4;
  return k >= sql.size() ||
         !(std::isalnum(static_cast<unsigned char>(sql[k])) || sql[k] == '_');
}

/// Fingerprints render as fixed-width hex everywhere (SHOW DIGESTS, SHOW
/// FLIGHT RECORDER, the JSON dumps), matching the fingerprint trace attr.
std::string HexFingerprint(uint64_t fp) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(fp));
  return buf;
}

void AppendJsonNum(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  *out += buf;
}

void AppendJsonBool(std::string* out, bool v) { *out += v ? "true" : "false"; }

void AppendLatencySummaryJson(std::string* out, const LatencySummary& s) {
  *out += "{\"count\":";
  *out += std::to_string(s.count);
  *out += ",\"sum_ms\":";
  AppendJsonNum(out, s.sum_ms);
  *out += ",\"mean_ms\":";
  AppendJsonNum(out, s.mean_ms());
  *out += ",\"max_ms\":";
  AppendJsonNum(out, s.max_ms);
  *out += "}";
}

}  // namespace

Status Database::ExecuteSql(const std::string& sql) {
  TAURUS_ASSIGN_OR_RETURN(auto stmt, ParseStatement(sql));
  switch (stmt->kind) {
    case Statement::Kind::kCreateTable: {
      TAURUS_ASSIGN_OR_RETURN(TableDef * table,
                              catalog_.CreateTable(stmt->table_name,
                                                   stmt->columns));
      if (!stmt->primary_key.empty()) {
        IndexDef pk;
        pk.name = stmt->table_name + "_pk";
        pk.column_idx = stmt->primary_key;
        pk.unique = true;
        pk.primary = true;
        TAURUS_RETURN_IF_ERROR(catalog_.AddIndex(stmt->table_name, pk));
      }
      storage_.CreateTable(table);
      return Status::OK();
    }
    case Statement::Kind::kCreateIndex: {
      const TableDef* table = catalog_.GetTable(stmt->table_name);
      if (table == nullptr) {
        return Status::NotFound("no such table: " + stmt->table_name);
      }
      IndexDef index = stmt->index;
      for (const ColumnDef& col : stmt->columns) {  // parser parks names here
        int idx = table->ColumnIndex(col.name);
        if (idx < 0) {
          return Status::BindError("index column not found: " + col.name);
        }
        index.column_idx.push_back(idx);
      }
      TAURUS_RETURN_IF_ERROR(catalog_.AddIndex(stmt->table_name, index));
      TableData* data = storage_.Get(table->id);
      if (data != nullptr) data->BuildIndexes();
      return Status::OK();
    }
    case Statement::Kind::kInsert: {
      const TableDef* table = catalog_.GetTable(stmt->table_name);
      TableData* data =
          table != nullptr ? storage_.Get(table->id) : nullptr;
      if (data == nullptr) {
        return Status::NotFound("no such table: " + stmt->table_name);
      }
      for (const auto& row_exprs : stmt->insert_rows) {
        if (row_exprs.size() != table->columns.size()) {
          return Status::InvalidArgument("INSERT arity mismatch");
        }
        Row row;
        for (size_t c = 0; c < row_exprs.size(); ++c) {
          TAURUS_ASSIGN_OR_RETURN(Value v, EvalConstExpr(*row_exprs[c]));
          // Coerce literals to the declared column type where sensible.
          TypeId want = table->columns[c].type;
          if (!v.is_null() && v.type() != want) {
            if (IsTemporalType(want) && v.kind() == Value::Kind::kString) {
              if (CategoryOf(want) == TypeCategory::kDte) {
                TAURUS_ASSIGN_OR_RETURN(int64_t days, ParseDate(v.AsString()));
                v = Value::Date(days);
              } else {
                TAURUS_ASSIGN_OR_RETURN(int64_t secs,
                                        ParseDatetime(v.AsString()));
                v = Value::Datetime(secs);
              }
            } else if (IsNumericType(want) &&
                       v.kind() == Value::Kind::kInt) {
              v = Value::Double(static_cast<double>(v.AsInt()), want);
            } else if (v.kind() == Value::Kind::kInt) {
              v = Value::Int(v.AsInt(), want);
            } else if (v.kind() == Value::Kind::kString) {
              v = Value::Str(v.AsString(), want);
            }
          }
          row.push_back(std::move(v));
        }
        data->Append(std::move(row));
      }
      data->BuildIndexes();
      return Status::OK();
    }
    case Statement::Kind::kAnalyze:
      return Analyze(stmt->table_name);
    case Statement::Kind::kSelect:
    case Statement::Kind::kExplain:
    case Statement::Kind::kExplainAnalyze:
      return Status::InvalidArgument(
          "use Query()/Explain() for SELECT statements");
    case Statement::Kind::kShowStatus:
    case Statement::Kind::kShowDigests:
    case Statement::Kind::kShowFlightRecorder:
    case Statement::Kind::kShowProfile:
      return Status::InvalidArgument("use Query() for SHOW statements");
  }
  return Status::Internal("unreachable statement kind");
}

Status Database::BulkLoad(const std::string& table, std::vector<Row> rows) {
  const TableDef* def = catalog_.GetTable(table);
  TableData* data = def != nullptr ? storage_.Get(def->id) : nullptr;
  if (data == nullptr) return Status::NotFound("no such table: " + table);
  data->Reserve(data->NumRows() + rows.size());
  for (Row& r : rows) {
    if (r.size() != def->columns.size()) {
      return Status::InvalidArgument("bulk load arity mismatch for " + table);
    }
    data->Append(std::move(r));
  }
  data->BuildIndexes();
  return Status::OK();
}

Status Database::Analyze(const std::string& table) {
  const TableDef* def = catalog_.GetTable(table);
  TableData* data = def != nullptr ? storage_.Get(def->id) : nullptr;
  if (data == nullptr) return Status::NotFound("no such table: " + table);
  catalog_.SetStats(def->id, ComputeTableStats(*data));
  return Status::OK();
}

Status Database::AnalyzeAll() {
  for (const std::string& name : catalog_.TableNames()) {
    TAURUS_RETURN_IF_ERROR(Analyze(name));
  }
  return Status::OK();
}

Result<std::unique_ptr<CompiledQuery>> Database::Compile(
    const std::string& sql, OptimizerPath path) {
  std::shared_ptr<Tracer> tracer = BeginTrace(QueryOptions{});
  ScopedSpan compile_span(tracer.get(), "compile");
  return CompileInternal(sql, path, plan_cache_config_.enable, tracer.get());
}

void Database::BindCounters() {
  counters_.detours_attempted =
      metrics_.GetCounter("taurus.health.detours_attempted");
  counters_.detours_failed =
      metrics_.GetCounter("taurus.health.detours_failed");
  counters_.fallbacks = metrics_.GetCounter("taurus.health.fallbacks");
  counters_.budget_kills = metrics_.GetCounter("taurus.health.budget_kills");
  counters_.exec_budget_kills =
      metrics_.GetCounter("taurus.health.exec_budget_kills");
  counters_.quarantine_hits =
      metrics_.GetCounter("taurus.health.quarantine_hits");
  counters_.cache_hits = metrics_.GetCounter("taurus.plan_cache.hits");
  counters_.cache_misses = metrics_.GetCounter("taurus.plan_cache.misses");
  counters_.verifier_rules = metrics_.GetCounter("taurus.verify.rules_checked");
  counters_.verifier_violations =
      metrics_.GetCounter("taurus.verify.violations");
  counters_.queries = metrics_.GetCounter("taurus.query.count");
  counters_.query_errors = metrics_.GetCounter("taurus.query.errors");
  counters_.parallel_queries =
      metrics_.GetCounter("taurus.exec.parallel_queries");
  counters_.parallel_pipelines =
      metrics_.GetCounter("taurus.exec.parallel_pipelines");
  counters_.batch_pipelines =
      metrics_.GetCounter("taurus.exec.batch.pipelines");
  counters_.batches = metrics_.GetCounter("taurus.exec.batch.batches");
  counters_.batch_rows = metrics_.GetCounter("taurus.exec.batch.rows");
  counters_.exec_rows_scanned = metrics_.GetCounter("taurus.exec.rows_scanned");
  counters_.exec_index_lookups =
      metrics_.GetCounter("taurus.exec.index_lookups");
  counters_.feedback_harvests = metrics_.GetCounter("taurus.feedback.harvests");
  counters_.feedback_drift_bumps =
      metrics_.GetCounter("taurus.feedback.drift_bumps");
  counters_.feedback_actual_overrides =
      metrics_.GetCounter("taurus.feedback.actual_overrides");
  counters_.feedback_sketch_overrides =
      metrics_.GetCounter("taurus.feedback.sketch_overrides");
  counters_.profile_pipelines =
      metrics_.GetCounter("taurus.exec.profile.pipelines");
  counters_.profile_morsels = metrics_.GetCounter("taurus.exec.profile.morsels");
  counters_.profile_last_busy_ms =
      metrics_.GetGauge("taurus.exec.profile.last_busy_ms");
  counters_.profile_last_idle_ms =
      metrics_.GetGauge("taurus.exec.profile.last_idle_ms");
  counters_.profile_last_workers =
      metrics_.GetGauge("taurus.exec.profile.last_workers");
  counters_.optimize_ms = metrics_.GetHistogram("taurus.query.optimize_ms");
  counters_.execute_ms = metrics_.GetHistogram("taurus.query.execute_ms");
}

OptimizerHealth Database::optimizer_health() const {
  OptimizerHealth h;
  h.detours_attempted = counters_.detours_attempted->Value();
  h.detours_failed = counters_.detours_failed->Value();
  h.fallbacks = counters_.fallbacks->Value();
  h.budget_kills = counters_.budget_kills->Value();
  h.exec_budget_kills = counters_.exec_budget_kills->Value();
  h.quarantine_hits = counters_.quarantine_hits->Value();
  return h;
}

void Database::ResetOptimizerHealth() {
  counters_.detours_attempted->Reset();
  counters_.detours_failed->Reset();
  counters_.fallbacks->Reset();
  counters_.budget_kills->Reset();
  counters_.exec_budget_kills->Reset();
  counters_.quarantine_hits->Reset();
}

void Database::SyncGaugeMetrics() {
  const PlanCacheStats s = plan_cache_.stats();
  metrics_.GetGauge("taurus.plan_cache.insertions")
      ->Set(static_cast<double>(s.insertions));
  metrics_.GetGauge("taurus.plan_cache.evictions")
      ->Set(static_cast<double>(s.evictions));
  metrics_.GetGauge("taurus.plan_cache.invalidations")
      ->Set(static_cast<double>(s.invalidations));
  metrics_.GetGauge("taurus.plan_cache.drift_invalidations")
      ->Set(static_cast<double>(s.drift_invalidations));
  metrics_.GetGauge("taurus.plan_cache.entries")
      ->Set(static_cast<double>(plan_cache_.size()));
  metrics_.GetGauge("taurus.plan_cache.capacity")
      ->Set(static_cast<double>(plan_cache_.capacity()));
  metrics_.GetGauge("taurus.plan_cache.shards")
      ->Set(static_cast<double>(plan_cache_.shard_count()));
  metrics_.GetGauge("taurus.quarantine.entries")
      ->Set(static_cast<double>(quarantine_.Size()));
  metrics_.GetGauge("taurus.feedback.entries")
      ->Set(static_cast<double>(feedback_store_.Size()));
  metrics_.GetGauge("taurus.feedback.lru_evictions")
      ->Set(static_cast<double>(feedback_store_.lru_evictions()));
  metrics_.GetGauge("taurus.feedback.version_resets")
      ->Set(static_cast<double>(feedback_store_.version_resets()));
  // Workload introspection (DESIGN.md section 15).
  metrics_.GetGauge("taurus.obs.digest.records")
      ->Set(static_cast<double>(digest_store_.records()));
  metrics_.GetGauge("taurus.obs.digest.entries")
      ->Set(static_cast<double>(digest_store_.Size()));
  metrics_.GetGauge("taurus.obs.digest.lru_evictions")
      ->Set(static_cast<double>(digest_store_.lru_evictions()));
  metrics_.GetGauge("taurus.obs.digest.epoch_bumps")
      ->Set(static_cast<double>(digest_store_.epoch_bumps()));
  metrics_.GetGauge("taurus.obs.digest.capacity")
      ->Set(static_cast<double>(digest_config_.capacity));
  metrics_.GetGauge("taurus.obs.recorder.records")
      ->Set(static_cast<double>(flight_recorder_.records()));
  metrics_.GetGauge("taurus.obs.recorder.entries")
      ->Set(static_cast<double>(flight_recorder_.Size()));
  metrics_.GetGauge("taurus.obs.recorder.pinned")
      ->Set(static_cast<double>(flight_recorder_.pinned()));
  metrics_.GetGauge("taurus.obs.recorder.capacity")
      ->Set(static_cast<double>(flight_config_.capacity));
  metrics_.GetGauge("taurus.exec.profile.enabled")
      ->Set(exec_config_.enable_profiling ? 1.0 : 0.0);
  // Lock-rank analyzer (DESIGN.md section 14). Process-wide, not per-DB:
  // the held-lock stacks are per-thread and every instrumented mutex in
  // the process feeds the same counters.
  metrics_.GetGauge("taurus.verify.lock_rank.enabled")
      ->Set(LockRankRegistry::enabled() ? 1.0 : 0.0);
  metrics_.GetGauge("taurus.verify.lock_rank.checks")
      ->Set(static_cast<double>(LockRankRegistry::checks()));
  metrics_.GetGauge("taurus.verify.lock_rank.violations")
      ->Set(static_cast<double>(LockRankRegistry::violations()));
}

std::string Database::MetricsJson() {
  SyncGaugeMetrics();
  return metrics_.ToJson();
}

Result<QueryResult> Database::ShowStatus(const std::string& pattern) {
  SyncGaugeMetrics();
  QueryResult out;
  out.columns = {"Variable_name", "Value"};
  for (const auto& [name, value] : metrics_.Snapshot()) {
    if (!pattern.empty() && !SqlLikeMatch(name, pattern)) continue;
    Row row;
    row.push_back(Value::Str(name));
    row.push_back(Value::Str(value));
    out.rows.push_back(std::move(row));
  }
  return out;
}

std::shared_ptr<Tracer> Database::BeginTrace(const QueryOptions& options) {
  std::shared_ptr<Tracer> tracer;
  if (trace_config_.enable || options.trace) {
    const Clock* clock = trace_config_.clock != nullptr
                             ? trace_config_.clock
                             : &SteadyClock::Instance();
    tracer = std::make_shared<Tracer>(clock);
    if (options.trace_slot != nullptr) *options.trace_slot = tracer;
  }
  // Publish as the "most recent" trace — or clear it when tracing is off,
  // preserving the single-session contract that last_trace() is null after
  // an untraced query.
  MutexLock lock(&state_mu_);
  last_tracer_ = tracer;
  return tracer;
}

std::string Database::MakeCacheKey(const std::string& canonical,
                                   OptimizerPath path) const {
  // Everything that steers optimization after fingerprinting must be part
  // of the key: the requested path, the router decision inputs, and the
  // Orca knobs / cost constants. A config change then simply misses
  // instead of serving a plan compiled under different settings.
  std::string key = canonical;
  key += "|path=";
  key += std::to_string(static_cast<int>(path));
  key += "|router=";
  key += std::to_string(router_config_.enable_orca);
  key += ",";
  key += std::to_string(router_config_.complex_query_threshold);
  key += "|orca=";
  key += std::to_string(static_cast<int>(orca_config_.strategy));
  for (bool flag :
       {orca_config_.enable_or_factoring, orca_config_.enable_bushy,
        orca_config_.enable_index_nlj, orca_config_.flip_inner_hash_build,
        orca_config_.enable_eager_agg, orca_config_.enable_decorrelation}) {
    key += flag ? '1' : '0';
  }
  const CostParams& c = orca_config_.cost;
  for (double v : {c.seq_row, c.index_descend, c.index_row, c.hash_build,
                   c.hash_probe, c.row_out, c.sort_row, c.materialize_row}) {
    key += ",";
    key += std::to_string(v);
  }
  key += "|fb=";
  key += feedback_config_.enable ? '1' : '0';
  return key;
}

bool Database::IsQuarantined(uint64_t fingerprint_hash) const {
  return quarantine_.IsQuarantined(fingerprint_hash, catalog_.schema_version(),
                                   catalog_.stats_version(),
                                   quarantine_config_.failure_threshold);
}

void Database::RecordDetourFailure(uint64_t fingerprint_hash) {
  bool newly_quarantined = quarantine_.RecordFailure(
      fingerprint_hash, catalog_.schema_version(), catalog_.stats_version(),
      quarantine_config_.failure_threshold);
  // Entering quarantine reroutes the statement to the MySQL path — a plan
  // change the digest's epoch split must surface, same as a cache
  // invalidation.
  if (newly_quarantined) digest_store_.BumpEpoch(fingerprint_hash, "quarantine");
}

Result<std::unique_ptr<CompiledQuery>> Database::CompileFromCacheEntry(
    const PlanCacheEntry& entry, BoundStatement stmt, Tracer* tracer) {
  // Replay the route's deterministic pre-optimization AST rewrites: the
  // cached skeleton was built against the rewritten statement, and the
  // rewritten predicates must reach refinement/execution exactly as on the
  // cold compile.
  if (entry.via_orca_route) {
    if (orca_config_.enable_decorrelation) {
      TAURUS_RETURN_IF_ERROR(DecorrelateScalarSubqueries(&stmt).status());
    }
    if (orca_config_.enable_or_factoring) {
      ForEachBlock(stmt.block.get(), [](QueryBlock* b) {
        if (!b->from.empty()) ApplyOrcaOrFactoring(b);
      });
    }
  } else {
    ForEachBlock(stmt.block.get(), [&stmt](QueryBlock* b) {
      ApplyIndexGatedOrFactoring(b, stmt.leaves);
    });
  }
  ScopedSpan thaw_span(tracer, "cache.thaw");
  TAURUS_ASSIGN_OR_RETURN(auto skeleton, ThawSkeleton(entry.skeleton, stmt));
  thaw_span.End();
  // Thaw verification: a cached skeleton that no longer satisfies the
  // invariants (stale freeze format, catalog drift the version check
  // missed) fails the compile here, and CompileInternal recompiles from
  // SQL with the cache bypassed.
  VerifyReport report;
  if (verify_config_.verify_plans) {
    ScopedSpan verify_span(tracer, "verify.thaw");
    VerifySkeletonPlan(*skeleton, catalog_,
                       /*check_cte_pairing=*/entry.used_orca, &report);
    if (verify_config_.enforce && !report.ok()) {
      return report.ToStatus("verify.thaw");
    }
  }
  ScopedSpan refine_span(tracer, "refine");
  TAURUS_ASSIGN_OR_RETURN(auto compiled,
                          RefinePlan(std::move(stmt), *skeleton, catalog_));
  refine_span.End();
  compiled->used_orca = entry.used_orca;
  if (verify_config_.verify_plans) {
    ScopedSpan verify_span(tracer, "verify.block");
    VerifyBlockPlan(*compiled, &report);
    if (verify_config_.enforce && entry.used_orca && !report.ok()) {
      return report.ToStatus("verify.block");
    }
  }
  compiled->verifier_rules = report.rules_checked;
  compiled->verifier_violations = report.violations();
  return compiled;
}

Result<std::unique_ptr<CompiledQuery>> Database::CompileInternal(
    const std::string& sql, OptimizerPath path, bool use_cache,
    Tracer* tracer) {
  auto start = std::chrono::steady_clock::now();
  // Tracked locally (cross-session safe) and mirrored into the "most
  // recent" member view for single-session callers.
  bool fell_back = false;
  SetLastFellBack(false);

  ScopedSpan parse_span(tracer, "parse");
  TAURUS_ASSIGN_OR_RETURN(auto parsed, ParseSelect(sql));
  parse_span.End();
  ScopedSpan bind_span(tracer, "bind");
  TAURUS_ASSIGN_OR_RETURN(BoundStatement stmt,
                          BindStatement(catalog_, std::move(parsed)));
  bind_span.End();
  ScopedSpan prepare_span(tracer, "prepare");
  TAURUS_RETURN_IF_ERROR(PrepareStatement(&stmt, prepare_options_));
  prepare_span.End();

  // The normalized statement fingerprint keys both the plan cache and the
  // quarantine map.
  uint64_t fingerprint = 0;
  std::string canonical;
  bool quarantined = false;
  if (use_cache || quarantine_config_.enable || feedback_config_.enable ||
      digest_config_.enable) {
    ScopedSpan fp_span(tracer, "fingerprint");
    StatementFingerprint fp = FingerprintStatement(stmt);
    fingerprint = fp.hash;
    canonical = std::move(fp.canonical);
    quarantined = path == OptimizerPath::kAuto && quarantine_config_.enable &&
                  IsQuarantined(fingerprint);
    fp_span.Attr("fingerprint", std::to_string(fingerprint));
    if (quarantined) fp_span.Attr("quarantined", "true");
  }

  // Execution feedback for this fingerprint: the snapshot feeds the Orca
  // detour's cardinality estimation; the drift version guards the plan
  // cache (an entry stamped with an older version is evicted below).
  std::shared_ptr<const FeedbackSnapshot> feedback;
  uint64_t feedback_version = 0;
  if (feedback_config_.enable && fingerprint != 0) {
    feedback = feedback_store_.Snapshot(fingerprint, catalog_.schema_version(),
                                        catalog_.stats_version());
    feedback_version = feedback_store_.DriftVersion(fingerprint);
  }

  // Skeleton-plan cache: looked up strictly before the router, so a hit
  // skips routing and both optimizers. A quarantined statement refuses a
  // cached Orca plan; the fresh compile below re-caches it under the same
  // key as a MySQL-path plan.
  std::string cache_key;
  if (use_cache) {
    if (plan_cache_.capacity() != plan_cache_config_.capacity) {
      plan_cache_.set_capacity(plan_cache_config_.capacity);
    }
    cache_key = MakeCacheKey(canonical, path);
    ScopedSpan lookup_span(tracer, "cache.lookup");
    std::shared_ptr<const PlanCacheEntry> entry =
        plan_cache_.Lookup(cache_key, catalog_.schema_version(),
                           catalog_.stats_version(), feedback_version);
    if (entry != nullptr && quarantined && entry->used_orca) entry.reset();
    lookup_span.Attr("hit", entry != nullptr ? "true" : "false");
    lookup_span.End();
    if (entry != nullptr) {
      double cold_ms = entry->cold_optimize_ms;
      auto hit = CompileFromCacheEntry(*entry, std::move(stmt), tracer);
      if (hit.ok()) {
        counters_.cache_hits->Increment();
        (*hit)->plan_cache_hit = true;
        (*hit)->fingerprint = fingerprint;
        (*hit)->canonical = std::move(canonical);
        (*hit)->optimize_ms = MsSince(start);
        (*hit)->optimize_saved_ms =
            std::max(cold_ms - (*hit)->optimize_ms, 0.0);
        return hit;
      }
      // Thaw/refine mismatch (should not happen; defensive): the statement
      // was consumed, so recompile from SQL with the cache bypassed.
      counters_.cache_misses->Increment();
      return CompileInternal(sql, path, /*use_cache=*/false, tracer);
    }
    counters_.cache_misses->Increment();
  }

  auto cache_plan = [&](const BlockSkeleton& skel, FrozenBlockSkeleton frozen,
                        bool used_orca, double cold_ms) {
    PlanCacheEntry entry;
    entry.fingerprint = fingerprint;
    entry.skeleton = std::move(frozen);
    entry.used_orca = used_orca;
    entry.via_orca_route = used_orca;
    entry.est_cost = skel.cost;
    entry.est_rows = skel.out_rows;
    entry.cold_optimize_ms = cold_ms;
    entry.schema_version = catalog_.schema_version();
    entry.stats_version = catalog_.stats_version();
    entry.feedback_version = feedback_version;
    plan_cache_.Insert(cache_key, std::move(entry));
  };

  bool try_orca = path == OptimizerPath::kOrca ||
                  (path == OptimizerPath::kAuto &&
                   ShouldRouteToOrca(stmt, router_config_));
  bool quarantine_hit = false;
  if (try_orca && quarantined) {
    try_orca = false;
    quarantine_hit = true;
    counters_.quarantine_hits->Increment();
  }
  {
    ScopedSpan route_span(tracer, "route");
    route_span.Attr("decision", quarantine_hit ? "quarantine"
                                : try_orca     ? "orca"
                                               : "mysql");
  }

  Status detour_error;  // stays OK unless the detour fails
  if (try_orca) {
    counters_.detours_attempted->Increment();
    ScopedSpan detour_span(tracer, "orca.detour");
    ResourceGovernor governor(resource_budget_);
    OrcaPathOptimizer orca(
        catalog_, &stmt, &mdp_, orca_config_,
        resource_budget_.governs_optimize() ? &governor : nullptr,
        &verify_config_, tracer, feedback.get());
    auto orca_skel = orca.Optimize();
    int verifier_rules = orca.verify_report().rules_checked;
    int verifier_violations = orca.verify_report().violations();
    if (orca_skel.ok()) {
      // The detour proper ends here; freeze/refine/verify.block are shared
      // post-optimization steps and trace as compile-level siblings.
      detour_span.End();
      std::unique_ptr<BlockSkeleton> skeleton = std::move(*orca_skel);
      {
        MutexLock lock(&state_mu_);
        last_orca_metrics_ = orca.metrics();
      }
      // Freeze before refinement consumes the statement.
      FrozenBlockSkeleton frozen;
      bool cacheable = false;
      if (use_cache) {
        ScopedSpan freeze_span(tracer, "cache.freeze");
        auto frozen_or = FreezeSkeleton(*skeleton);
        if (frozen_or.ok()) {
          frozen = std::move(*frozen_or);
          cacheable = true;
        }
      }
      ScopedSpan refine_span(tracer, "refine");
      auto refined = RefinePlan(std::move(stmt), *skeleton, catalog_);
      refine_span.End();
      if (refined.ok()) {
        auto compiled = std::move(*refined);
        compiled->used_orca = true;
        // Post-refinement boundary: the executable block plan (B001-B003).
        if (verify_config_.verify_plans) {
          ScopedSpan verify_span(tracer, "verify.block");
          VerifyReport block_report;
          VerifyBlockPlan(*compiled, &block_report);
          verifier_rules += block_report.rules_checked;
          verifier_violations += block_report.violations();
          if (verify_config_.enforce && !block_report.ok()) {
            detour_error = block_report.ToStatus("verify.block");
          }
        }
        if (detour_error.ok()) {
          compiled->verifier_rules = verifier_rules;
          compiled->verifier_violations = verifier_violations;
          compiled->feedback_actual_overrides =
              orca.metrics().feedback_actual_overrides;
          compiled->feedback_sketch_overrides =
              orca.metrics().feedback_sketch_overrides;
          compiled->fingerprint = fingerprint;
          compiled->canonical = std::move(canonical);
          compiled->optimize_ms = MsSince(start);
          if (cacheable) {
            cache_plan(*skeleton, std::move(frozen), /*used_orca=*/true,
                       compiled->optimize_ms);
          }
          return compiled;
        }
      } else {
        detour_error = refined.status();
      }
    } else {
      detour_error = orca_skel.status();
    }

    // The detour failed. Forced-Orca surfaces the error; the auto route
    // aborts the detour and resorts to the usual MySQL optimization
    // (Section 4.2.1).
    counters_.detours_failed->Increment();
    if (detour_error.code() == StatusCode::kResourceExhausted) {
      counters_.budget_kills->Increment();
    }
    detour_span.End();
    detour_span.Attr("aborted", "true");
    detour_span.Attr("status", detour_error.ToString());
    if (path == OptimizerPath::kOrca) return detour_error;
    counters_.fallbacks->Increment();
    fell_back = true;
    SetLastFellBack(true);
    if (quarantine_config_.enable) RecordDetourFailure(fingerprint);
    // Clean fallback: the detour may have rewritten the AST (decorrelation,
    // OR factoring) or consumed it (refinement), so re-parse and re-bind
    // from the pristine SQL. The MySQL path then sees exactly what it would
    // have seen without the detour — which also makes the compile cacheable.
    ScopedSpan reparse_span(tracer, "fallback.reparse");
    reparse_span.Attr("reason", detour_error.ToString());
    TAURUS_ASSIGN_OR_RETURN(auto reparsed, ParseSelect(sql));
    TAURUS_ASSIGN_OR_RETURN(stmt,
                            BindStatement(catalog_, std::move(reparsed)));
    TAURUS_RETURN_IF_ERROR(PrepareStatement(&stmt, prepare_options_));
  }

  // MySQL path: direct route, quarantine skip, or clean fallback.
  ScopedSpan mysql_span(tracer, "mysql.optimize");
  TAURUS_ASSIGN_OR_RETURN(auto skeleton, MySqlOptimize(catalog_, &stmt));
  mysql_span.End();

  // Counts-only on the MySQL path: it is the fallback of last resort, so
  // violations are surfaced in QueryResult/EXPLAIN but never fatal. S005
  // (CTE pairing) is skipped — the native optimizer legitimately plans
  // each CTE copy independently.
  VerifyReport mysql_report;
  if (verify_config_.verify_plans) {
    ScopedSpan verify_span(tracer, "verify.skeleton");
    VerifySkeletonPlan(*skeleton, catalog_, /*check_cte_pairing=*/false,
                       &mysql_report);
  }

  // Freeze before refinement consumes the statement.
  FrozenBlockSkeleton frozen;
  bool cacheable = false;
  if (use_cache) {
    ScopedSpan freeze_span(tracer, "cache.freeze");
    auto frozen_or = FreezeSkeleton(*skeleton);
    if (frozen_or.ok()) {
      frozen = std::move(*frozen_or);
      cacheable = true;
    }
  }

  ScopedSpan refine_span(tracer, "refine");
  TAURUS_ASSIGN_OR_RETURN(auto compiled,
                          RefinePlan(std::move(stmt), *skeleton, catalog_));
  refine_span.End();
  if (verify_config_.verify_plans) {
    ScopedSpan verify_span(tracer, "verify.block");
    VerifyBlockPlan(*compiled, &mysql_report);
  }
  compiled->verifier_rules = mysql_report.rules_checked;
  compiled->verifier_violations = mysql_report.violations();
  compiled->fell_back = fell_back;
  if (!detour_error.ok()) compiled->fallback_reason = detour_error.ToString();
  compiled->quarantine_hit = quarantine_hit;
  compiled->fingerprint = fingerprint;
  compiled->canonical = std::move(canonical);
  compiled->optimize_ms = MsSince(start);

  if (cacheable) {
    cache_plan(*skeleton, std::move(frozen), /*used_orca=*/false,
               compiled->optimize_ms);
  }
  return compiled;
}

Result<QueryResult> Database::Query(const std::string& sql,
                                    OptimizerPath path) {
  return Query(sql, path, QueryOptions{});
}

Result<QueryResult> Database::Query(const std::string& sql,
                                    OptimizerPath path,
                                    const QueryOptions& options) {
  // SHOW statements read engine-side state (metrics registry, digest
  // store, flight recorder) and never enter the SELECT pipeline — no
  // trace, no optimizer, and no digest/recorder event of their own, so
  // SHOW DIGESTS totals reconcile exactly with taurus.query.count.
  if (IsShowStatement(sql)) {
    TAURUS_ASSIGN_OR_RETURN(auto stmt, ParseStatement(sql));
    switch (stmt->kind) {
      case Statement::Kind::kShowStatus:
        return ShowStatus(stmt->table_name);
      case Statement::Kind::kShowDigests:
        return ShowDigests(stmt->table_name);
      case Statement::Kind::kShowFlightRecorder:
        return ShowFlightRecorder();
      case Statement::Kind::kShowProfile:
        return ShowProfile(static_cast<uint64_t>(stmt->profile_seq));
      default:
        return Status::InvalidArgument("unsupported SHOW statement");
    }
  }
  return QueryInternal(sql, path, options, nullptr, nullptr);
}

Result<QueryResult> Database::QueryInternal(
    const std::string& sql, OptimizerPath path, const QueryOptions& options,
    OpActualsMap* actuals, std::unique_ptr<CompiledQuery>* compiled_out) {
  // Split so introspection covers every exit path: QueryPipeline deposits
  // facts into `obs` as it learns them, and the recording below runs for
  // successes, compile errors and budget kills alike.
  QueryObs obs;
  Result<QueryResult> result =
      QueryPipeline(sql, path, options, actuals, compiled_out, &obs);
  uint64_t seq = RecordQueryObservability(options, result, &obs);
  if (result.ok()) (*result).flight_seq = seq;
  return result;
}

Result<QueryResult> Database::QueryPipeline(
    const std::string& sql, OptimizerPath path, const QueryOptions& options,
    OpActualsMap* actuals, std::unique_ptr<CompiledQuery>* compiled_out,
    QueryObs* obs) {
  counters_.queries->Increment();
  std::shared_ptr<Tracer> tracer_owner = BeginTrace(options);
  Tracer* tracer = tracer_owner.get();
  obs->tracer = tracer_owner;
  ScopedSpan query_span(tracer, "query");
  ScopedSpan compile_span(tracer, "compile");
  auto compiled_or =
      CompileInternal(sql, path, plan_cache_config_.enable, tracer);
  compile_span.End();
  if (!compiled_or.ok()) {
    counters_.query_errors->Increment();
    return compiled_or.status();
  }
  auto compiled = std::move(*compiled_or);
  obs->fingerprint = compiled->fingerprint;
  obs->canonical = compiled->canonical;
  obs->used_orca = compiled->used_orca;
  obs->fell_back = compiled->fell_back;
  obs->quarantine_hit = compiled->quarantine_hit;
  obs->plan_cache_hit = compiled->plan_cache_hit;
  obs->optimize_ms = compiled->optimize_ms;
  counters_.optimize_ms->Record(compiled->optimize_ms);
  QueryResult out;
  out.columns = compiled->root->column_names;
  out.used_orca = compiled->used_orca;
  out.optimize_ms = compiled->optimize_ms;
  out.plan_cache_hit = compiled->plan_cache_hit;
  out.optimize_saved_ms = compiled->optimize_saved_ms;
  out.fell_back = compiled->fell_back;
  out.fallback_reason = compiled->fallback_reason;
  out.quarantine_hit = compiled->quarantine_hit;
  out.verifier_rules = compiled->verifier_rules;
  out.verifier_violations = compiled->verifier_violations;

  const Clock* analyze_clock =
      trace_config_.clock != nullptr ? trace_config_.clock
                                     : &SteadyClock::Instance();
  auto start = std::chrono::steady_clock::now();
  ExecContext ctx;
  ArmExecContext(&ctx, compiled->used_orca, options.worker_cap);
  if (exec_config_.enable_profiling) {
    // Per-worker morsel timing lands in obs->profile; the parallel
    // executor's workers stamp private slots and merge on the main thread.
    obs->profile.enabled = true;
    ctx.exec_profile = &obs->profile;
    ctx.profile_clock = analyze_clock;
  }
  if (actuals != nullptr) {
    ctx.op_actuals = actuals;
    ctx.analyze_clock = analyze_clock;
  }
  // Cardinality-feedback harvest (DESIGN.md section 11): record per-node
  // actuals — reusing the caller's map when EXPLAIN ANALYZE already asked
  // for them — and stream hash-join keys into Fast-AGMS sketches.
  bool harvest = feedback_config_.enable && compiled->fingerprint != 0;
  OpActualsMap harvest_actuals;
  std::unique_ptr<SketchSet> sketch_set;
  if (harvest) {
    if (ctx.op_actuals == nullptr) {
      ctx.op_actuals = &harvest_actuals;
      ctx.analyze_clock = analyze_clock;
    }
    if (feedback_config_.sketches) {
      sketch_set = std::make_unique<SketchSet>(feedback_config_.sketch_depth,
                                               feedback_config_.sketch_width);
      ctx.sketches = sketch_set.get();
    }
  }
  if (verify_config_.verify_plans) {
    // B004 — budget hooks present on the armed execution context.
    VerifyReport arm_report;
    VerifyExecBudgetArming(compiled->used_orca,
                           resource_budget_.governs_exec(), ctx, &arm_report);
    out.verifier_rules += arm_report.rules_checked;
    out.verifier_violations += arm_report.violations();
  }
  ExecContext* final_ctx = &ctx;
  ScopedSpan exec_span(tracer, "execute");
  auto rows = ExecuteQuery(compiled.get(), storage_, &ctx);
  exec_span.End();
  int final_exec_id = exec_span.id();
  ExecContext retry_ctx;  // ExecContext is non-copyable (shared atomic
                          // budget counter), so the fallback re-execution
                          // gets its own context.
  if (!rows.ok()) {
    bool budget_kill = compiled->used_orca &&
                       rows.status().code() == StatusCode::kResourceExhausted;
    if (!budget_kill || path != OptimizerPath::kAuto) {
      counters_.query_errors->Increment();
      return rows.status();
    }
    // The executor budget killed an Orca plan mid-execution on the auto
    // route: recompile through the MySQL path and re-execute unbudgeted.
    counters_.exec_budget_kills->Increment();
    counters_.fallbacks->Increment();
    if (quarantine_config_.enable && compiled->fingerprint != 0) {
      RecordDetourFailure(compiled->fingerprint);
    }
    Status kill = rows.status();
    exec_span.Attr("aborted", "true");
    exec_span.Attr("status", kill.ToString());
    ScopedSpan recompile_span(tracer, "fallback.recompile");
    auto retry_or = CompileInternal(sql, OptimizerPath::kMySql,
                                    plan_cache_config_.enable, tracer);
    recompile_span.End();
    if (!retry_or.ok()) {
      counters_.query_errors->Increment();
      return retry_or.status();
    }
    compiled = std::move(*retry_or);
    out.used_orca = false;
    out.fell_back = true;
    out.fallback_reason = kill.ToString();
    out.plan_cache_hit = compiled->plan_cache_hit;
    out.optimize_ms += compiled->optimize_ms;
    out.verifier_rules += compiled->verifier_rules;
    out.verifier_violations += compiled->verifier_violations;
    obs->used_orca = false;
    obs->fell_back = true;
    obs->plan_cache_hit = compiled->plan_cache_hit;
    obs->optimize_ms = out.optimize_ms;
    ArmExecContext(&retry_ctx, /*used_orca=*/false, options.worker_cap);
    if (exec_config_.enable_profiling) {
      retry_ctx.exec_profile = &obs->profile;
      retry_ctx.profile_clock = analyze_clock;
    }
    if (actuals != nullptr) {
      actuals->clear();  // the aborted run's partial actuals are stale
      retry_ctx.op_actuals = actuals;
      retry_ctx.analyze_clock = analyze_clock;
    }
    harvest = feedback_config_.enable && compiled->fingerprint != 0;
    if (harvest) {
      if (retry_ctx.op_actuals == nullptr) {
        harvest_actuals.clear();  // the aborted run's partials are stale
        retry_ctx.op_actuals = &harvest_actuals;
        retry_ctx.analyze_clock = analyze_clock;
      }
      if (feedback_config_.sketches) {
        // Fresh sketch set: the killed run's streams are partial.
        sketch_set = std::make_unique<SketchSet>(
            feedback_config_.sketch_depth, feedback_config_.sketch_width);
        retry_ctx.sketches = sketch_set.get();
      }
    }
    if (verify_config_.verify_plans) {
      VerifyReport arm_report;
      VerifyExecBudgetArming(/*used_orca=*/false,
                             resource_budget_.governs_exec(), retry_ctx,
                             &arm_report);
      out.verifier_rules += arm_report.rules_checked;
      out.verifier_violations += arm_report.violations();
    }
    ScopedSpan retry_span(tracer, "execute");
    retry_span.Attr("retry", "true");
    rows = ExecuteQuery(compiled.get(), storage_, &retry_ctx);
    retry_span.End();
    final_exec_id = retry_span.id();
    final_ctx = &retry_ctx;
    if (!rows.ok()) {
      counters_.query_errors->Increment();
      return rows.status();
    }
  }
  out.rows = std::move(*rows);
  out.execute_ms = MsSince(start);
  out.rows_scanned = final_ctx->rows_scanned;
  out.index_lookups = final_ctx->index_lookups;
  out.rebinds = final_ctx->rebinds;
  out.parallel_workers_used = final_ctx->max_workers_used;
  out.parallel_pipelines = final_ctx->parallel_pipelines;
  out.batch_pipelines = final_ctx->batch_pipelines;
  out.batches = final_ctx->batches;
  out.batch_rows = final_ctx->batch_rows;

  counters_.execute_ms->Record(out.execute_ms);
  counters_.exec_rows_scanned->Increment(out.rows_scanned);
  counters_.exec_index_lookups->Increment(out.index_lookups);
  if (out.verifier_rules > 0) {
    counters_.verifier_rules->Increment(out.verifier_rules);
  }
  if (out.verifier_violations > 0) {
    counters_.verifier_violations->Increment(out.verifier_violations);
  }
  if (out.parallel_pipelines > 0) {
    counters_.parallel_queries->Increment();
    counters_.parallel_pipelines->Increment(out.parallel_pipelines);
  }
  if (out.batch_pipelines > 0) {
    counters_.batch_pipelines->Increment(out.batch_pipelines);
    counters_.batches->Increment(out.batches);
    counters_.batch_rows->Increment(out.batch_rows);
  }
  out.feedback_actual_overrides = compiled->feedback_actual_overrides;
  out.feedback_sketch_overrides = compiled->feedback_sketch_overrides;
  if (out.feedback_actual_overrides > 0) {
    counters_.feedback_actual_overrides->Increment(
        out.feedback_actual_overrides);
  }
  if (out.feedback_sketch_overrides > 0) {
    counters_.feedback_sketch_overrides->Increment(
        out.feedback_sketch_overrides);
  }
  if (harvest && !IsQuarantined(compiled->fingerprint)) {
    FeedbackSample sample;
    if (final_ctx->op_actuals != nullptr) {
      HarvestFeedbackSample(*compiled->root, *final_ctx->op_actuals, &sample);
    }
    if (sketch_set != nullptr) sample.sketches = sketch_set->TakeValid();
    HarvestResult hr = feedback_store_.Harvest(
        compiled->fingerprint, std::move(sample),
        feedback_config_.qerror_invalidation_threshold,
        catalog_.schema_version(), catalog_.stats_version());
    out.feedback_harvested = hr.stored;
    out.feedback_version_bumped = hr.version_bumped;
    out.feedback_max_q_error = hr.max_q_error;
    if (hr.stored) counters_.feedback_harvests->Increment();
    if (hr.version_bumped) counters_.feedback_drift_bumps->Increment();
  }
  if (tracer != nullptr) {
    tracer->SetAttr(final_exec_id, "workers",
                    std::to_string(out.parallel_workers_used));
    tracer->SetAttr(final_exec_id, "pipelines",
                    std::to_string(out.parallel_pipelines));
    tracer->SetAttr(final_exec_id, "batch_pipelines",
                    std::to_string(out.batch_pipelines));
  }
  obs->profile.admission_wait_ms = options.admission_wait_ms;
  out.profile = obs->profile;
  // Fold the session layer's admission outcome into the result so every
  // consumer (client, digest store, flight recorder) sees one story.
  out.shed = options.shed;
  out.admission_queued = options.admission_queued;
  out.admission_wait_ms = options.admission_wait_ms;
  if (options.shed) {
    out.fell_back = true;
    out.fallback_reason =
        Status::ResourceExhausted("admission overload: shed to MySQL path (" +
                                  options.shed_cause + ")")
            .SetOrigin("server.admission", "shed")
            .ToString();
  }
  if (compiled_out != nullptr) *compiled_out = std::move(compiled);
  return out;
}

uint64_t Database::RecordQueryObservability(const QueryOptions& options,
                                            const Result<QueryResult>& result,
                                            QueryObs* obs) {
  obs->profile.admission_wait_ms = options.admission_wait_ms;
  const bool ok = result.ok();
  const QueryResult* r = ok ? &*result : nullptr;
  // Success reads the result (which already folded retries and the shed
  // story in); failures fall back to whatever QueryPipeline learned before
  // the error.
  const bool used_orca = r != nullptr ? r->used_orca : obs->used_orca;
  const bool fell_back =
      (r != nullptr ? r->fell_back : obs->fell_back) || options.shed;
  const bool quarantine_hit =
      r != nullptr ? r->quarantine_hit : obs->quarantine_hit;
  const bool plan_cache_hit =
      r != nullptr ? r->plan_cache_hit : obs->plan_cache_hit;
  const double optimize_ms = r != nullptr ? r->optimize_ms : obs->optimize_ms;
  const double execute_ms = r != nullptr ? r->execute_ms : 0.0;
  double total_ms = optimize_ms + execute_ms;
  if (obs->tracer != nullptr) {
    const TraceSpan* root = obs->tracer->Find("query");
    if (root != nullptr && root->ended) total_ms = root->duration_ms();
  }

  if (digest_config_.enable) {
    DigestSample sample;
    sample.fingerprint = obs->fingerprint;  // 0: failed before fingerprinting
    sample.canonical = &obs->canonical;
    sample.used_orca = used_orca;
    sample.error = !ok;
    sample.shed = options.shed;
    sample.fell_back = fell_back;
    sample.quarantine_hit = quarantine_hit;
    sample.plan_cache_hit = plan_cache_hit;
    sample.verifier_violations = r != nullptr ? r->verifier_violations : 0;
    sample.rows_returned =
        r != nullptr ? static_cast<int64_t>(r->rows.size()) : 0;
    sample.latency_ms = total_ms;
    digest_store_.Record(sample);
  }

  if (obs->profile.enabled && obs->profile.pipelines > 0) {
    counters_.profile_pipelines->Increment(obs->profile.pipelines);
    counters_.profile_morsels->Increment(obs->profile.morsels());
    counters_.profile_last_busy_ms->Set(obs->profile.busy_ms());
    counters_.profile_last_idle_ms->Set(obs->profile.idle_ms());
    counters_.profile_last_workers->Set(
        static_cast<double>(obs->profile.workers.size()));
  }

  if (!flight_config_.enable) return 0;
  FlightRecord rec;
  rec.fingerprint = obs->fingerprint;
  rec.session_id = options.session_id;
  rec.status = ok ? "ok" : result.status().ToString();
  rec.error = !ok;
  rec.admission = options.shed              ? "shed"
                  : options.admission_queued ? "queued"
                                             : "direct";
  rec.admission_wait_ms = options.admission_wait_ms;
  rec.used_orca = used_orca;
  rec.fell_back = fell_back;
  rec.shed = options.shed;
  rec.quarantine_hit = quarantine_hit;
  rec.plan_cache_hit = plan_cache_hit;
  rec.optimize_ms = optimize_ms;
  rec.execute_ms = execute_ms;
  rec.total_ms = total_ms;
  rec.rows_returned = r != nullptr ? static_cast<int64_t>(r->rows.size()) : 0;
  rec.workers = r != nullptr ? r->parallel_workers_used : 1;
  rec.batches = r != nullptr ? r->batches : 0;
  rec.profile = obs->profile;
  // Post-mortem pinning: aborted / shed / fallen-back / quarantined queries
  // keep their full span tree alive in the ring slot, surviving after
  // last_trace() (and per-session slots) get overwritten.
  if (rec.error || rec.shed || rec.fell_back || rec.quarantine_hit) {
    rec.pinned_trace = obs->tracer;
  }
  return flight_recorder_.Record(std::move(rec));
}

Result<QueryResult> Database::ShowDigests(const std::string& pattern) {
  QueryResult out;
  out.columns = {"Digest",         "Statement",      "Calls",
                 "Errors",         "OrcaCalls",      "MySqlCalls",
                 "CacheHits",      "Shed",           "Fallbacks",
                 "QuarantineHits", "VerifierViolations", "Rows",
                 "P50Ms",          "P95Ms",          "MaxMs",
                 "PlanEpoch",      "EpochCause",     "EpochCalls",
                 "EpochAvgMs",     "PrevEpochCalls", "PrevEpochAvgMs"};
  for (const DigestSnapshot& d : digest_store_.Snapshot()) {
    if (!pattern.empty() && !SqlLikeMatch(d.statement, pattern)) continue;
    Row row;
    row.push_back(Value::Str(HexFingerprint(d.fingerprint)));
    row.push_back(Value::Str(d.statement));
    row.push_back(Value::Int(d.calls));
    row.push_back(Value::Int(d.errors));
    row.push_back(Value::Int(d.orca_calls));
    row.push_back(Value::Int(d.mysql_calls));
    row.push_back(Value::Int(d.plan_cache_hits));
    row.push_back(Value::Int(d.shed));
    row.push_back(Value::Int(d.fallbacks));
    row.push_back(Value::Int(d.quarantine_hits));
    row.push_back(Value::Int(d.verifier_violations));
    row.push_back(Value::Int(d.rows_returned));
    row.push_back(Value::Double(d.latency_p50));
    row.push_back(Value::Double(d.latency_p95));
    row.push_back(Value::Double(d.latency_max_ms));
    row.push_back(Value::Int(d.plan_epoch));
    row.push_back(Value::Str(d.epoch_cause));
    row.push_back(Value::Int(d.epoch_latency.count));
    row.push_back(Value::Double(d.epoch_latency.mean_ms()));
    row.push_back(Value::Int(d.prev_epoch_latency.count));
    row.push_back(Value::Double(d.prev_epoch_latency.mean_ms()));
    out.rows.push_back(std::move(row));
  }
  return out;
}

Result<QueryResult> Database::ShowFlightRecorder() {
  QueryResult out;
  out.columns = {"Seq",        "Session",  "Digest",     "Status",
                 "Admission",  "WaitMs",   "Path",       "CacheHit",
                 "Rows",       "OptimizeMs", "ExecuteMs", "TotalMs",
                 "Workers",    "Batches",  "PinnedTrace"};
  std::vector<FlightRecord> events = flight_recorder_.Snapshot();
  // Newest first: the post-mortem reader wants the recent past on top.
  for (auto it = events.rbegin(); it != events.rend(); ++it) {
    const FlightRecord& e = *it;
    Row row;
    row.push_back(Value::Int(static_cast<int64_t>(e.seq)));
    row.push_back(Value::Int(static_cast<int64_t>(e.session_id)));
    row.push_back(Value::Str(HexFingerprint(e.fingerprint)));
    row.push_back(Value::Str(e.status));
    row.push_back(Value::Str(e.admission));
    row.push_back(Value::Double(e.admission_wait_ms));
    row.push_back(Value::Str(e.used_orca ? "orca" : "mysql"));
    row.push_back(Value::Bool(e.plan_cache_hit));
    row.push_back(Value::Int(e.rows_returned));
    row.push_back(Value::Double(e.optimize_ms));
    row.push_back(Value::Double(e.execute_ms));
    row.push_back(Value::Double(e.total_ms));
    row.push_back(Value::Int(e.workers));
    row.push_back(Value::Int(e.batches));
    row.push_back(Value::Str(e.pinned_trace != nullptr
                                 ? e.pinned_trace->TreeString()
                                 : ""));
    out.rows.push_back(std::move(row));
  }
  return out;
}

Result<QueryResult> Database::ShowProfile(uint64_t seq) {
  FlightRecord rec;
  if (!flight_recorder_.Find(seq, &rec)) {
    return Status::NotFound("no flight-recorder event with seq " +
                            std::to_string(seq) +
                            " (overwritten or never recorded)");
  }
  QueryResult out;
  out.columns = {"Seq",     "Worker",    "BusyMs",     "IdleMs",
                 "Morsels", "BatchRows", "VolcanoRows", "AdmissionWaitMs"};
  for (size_t w = 0; w < rec.profile.workers.size(); ++w) {
    const WorkerProfile& wp = rec.profile.workers[w];
    Row row;
    row.push_back(Value::Int(static_cast<int64_t>(seq)));
    row.push_back(Value::Str(std::to_string(w)));
    row.push_back(Value::Double(wp.busy_ms));
    row.push_back(Value::Double(wp.idle_ms));
    row.push_back(Value::Int(wp.morsels));
    row.push_back(Value::Int(wp.batch_rows));
    row.push_back(Value::Int(wp.volcano_rows));
    row.push_back(Value::Double(0.0));
    out.rows.push_back(std::move(row));
  }
  // Totals row (always present, even for serial/unprofiled queries, so the
  // admission wait is visible and "no per-worker rows" is distinguishable
  // from "event not found").
  Row total;
  total.push_back(Value::Int(static_cast<int64_t>(seq)));
  total.push_back(Value::Str("total"));
  total.push_back(Value::Double(rec.profile.busy_ms()));
  total.push_back(Value::Double(rec.profile.idle_ms()));
  total.push_back(Value::Int(rec.profile.morsels()));
  int64_t batch_rows = 0;
  int64_t volcano_rows = 0;
  for (const WorkerProfile& wp : rec.profile.workers) {
    batch_rows += wp.batch_rows;
    volcano_rows += wp.volcano_rows;
  }
  total.push_back(Value::Int(batch_rows));
  total.push_back(Value::Int(volcano_rows));
  total.push_back(Value::Double(rec.profile.admission_wait_ms));
  out.rows.push_back(std::move(total));
  return out;
}

std::string Database::DigestsJson() {
  std::string out = "{\"capacity\":";
  out += std::to_string(digest_config_.capacity);
  out += ",\"records\":";
  out += std::to_string(digest_store_.records());
  out += ",\"lru_evictions\":";
  out += std::to_string(digest_store_.lru_evictions());
  out += ",\"epoch_bumps\":";
  out += std::to_string(digest_store_.epoch_bumps());
  out += ",\"digests\":[";
  bool first = true;
  for (const DigestSnapshot& d : digest_store_.Snapshot()) {
    if (!first) out += ",";
    first = false;
    out += "{\"fingerprint\":\"";
    out += HexFingerprint(d.fingerprint);
    out += "\",\"statement\":\"";
    out += JsonEscape(d.statement);
    out += "\",\"calls\":";
    out += std::to_string(d.calls);
    out += ",\"errors\":";
    out += std::to_string(d.errors);
    out += ",\"orca_calls\":";
    out += std::to_string(d.orca_calls);
    out += ",\"mysql_calls\":";
    out += std::to_string(d.mysql_calls);
    out += ",\"plan_cache_hits\":";
    out += std::to_string(d.plan_cache_hits);
    out += ",\"shed\":";
    out += std::to_string(d.shed);
    out += ",\"fallbacks\":";
    out += std::to_string(d.fallbacks);
    out += ",\"quarantine_hits\":";
    out += std::to_string(d.quarantine_hits);
    out += ",\"verifier_violations\":";
    out += std::to_string(d.verifier_violations);
    out += ",\"rows_returned\":";
    out += std::to_string(d.rows_returned);
    out += ",\"latency\":{\"count\":";
    out += std::to_string(d.latency_count);
    out += ",\"sum_ms\":";
    AppendJsonNum(&out, d.latency_sum_ms);
    out += ",\"p50\":";
    AppendJsonNum(&out, d.latency_p50);
    out += ",\"p95\":";
    AppendJsonNum(&out, d.latency_p95);
    out += ",\"p99\":";
    AppendJsonNum(&out, d.latency_p99);
    out += ",\"max_ms\":";
    AppendJsonNum(&out, d.latency_max_ms);
    out += "},\"orca_latency\":";
    AppendLatencySummaryJson(&out, d.orca_latency);
    out += ",\"mysql_latency\":";
    AppendLatencySummaryJson(&out, d.mysql_latency);
    out += ",\"plan_epoch\":";
    out += std::to_string(d.plan_epoch);
    out += ",\"epoch_cause\":\"";
    out += JsonEscape(d.epoch_cause);
    out += "\",\"epoch_latency\":";
    AppendLatencySummaryJson(&out, d.epoch_latency);
    out += ",\"prev_epoch_latency\":";
    AppendLatencySummaryJson(&out, d.prev_epoch_latency);
    out += "}";
  }
  out += "]}";
  return out;
}

std::string Database::FlightRecorderJson() {
  std::string out = "{\"capacity\":";
  out += std::to_string(flight_config_.capacity);
  out += ",\"records\":";
  out += std::to_string(flight_recorder_.records());
  out += ",\"pinned\":";
  out += std::to_string(flight_recorder_.pinned());
  out += ",\"events\":[";
  bool first = true;
  for (const FlightRecord& e : flight_recorder_.Snapshot()) {
    if (!first) out += ",";
    first = false;
    out += "{\"seq\":";
    out += std::to_string(e.seq);
    out += ",\"session\":";
    out += std::to_string(e.session_id);
    out += ",\"fingerprint\":\"";
    out += HexFingerprint(e.fingerprint);
    out += "\",\"status\":\"";
    out += JsonEscape(e.status);
    out += "\",\"error\":";
    AppendJsonBool(&out, e.error);
    out += ",\"admission\":\"";
    out += JsonEscape(e.admission);
    out += "\",\"wait_ms\":";
    AppendJsonNum(&out, e.admission_wait_ms);
    out += ",\"used_orca\":";
    AppendJsonBool(&out, e.used_orca);
    out += ",\"fell_back\":";
    AppendJsonBool(&out, e.fell_back);
    out += ",\"shed\":";
    AppendJsonBool(&out, e.shed);
    out += ",\"quarantine_hit\":";
    AppendJsonBool(&out, e.quarantine_hit);
    out += ",\"plan_cache_hit\":";
    AppendJsonBool(&out, e.plan_cache_hit);
    out += ",\"optimize_ms\":";
    AppendJsonNum(&out, e.optimize_ms);
    out += ",\"execute_ms\":";
    AppendJsonNum(&out, e.execute_ms);
    out += ",\"total_ms\":";
    AppendJsonNum(&out, e.total_ms);
    out += ",\"rows\":";
    out += std::to_string(e.rows_returned);
    out += ",\"workers\":";
    out += std::to_string(e.workers);
    out += ",\"batches\":";
    out += std::to_string(e.batches);
    out += ",\"profiled\":";
    AppendJsonBool(&out, e.profile.enabled);
    out += ",\"morsels\":";
    out += std::to_string(e.profile.morsels());
    out += ",\"busy_ms\":";
    AppendJsonNum(&out, e.profile.busy_ms());
    out += ",\"pinned_trace\":";
    AppendJsonBool(&out, e.pinned_trace != nullptr);
    out += "}";
  }
  out += "]}";
  return out;
}

Result<std::string> Database::ExplainAnalyze(const std::string& sql,
                                             OptimizerPath path) {
  OpActualsMap actuals;
  std::unique_ptr<CompiledQuery> compiled;
  TAURUS_ASSIGN_OR_RETURN(
      QueryResult res,
      QueryInternal(sql, path, QueryOptions{}, &actuals, &compiled));
  ExplainAnalyzeData data;
  data.actuals = &actuals;
  data.execute_ms = res.execute_ms;
  data.rows_returned = static_cast<int64_t>(res.rows.size());
  return RenderExplainAnalyze(*compiled, data);
}

Result<std::string> Database::ExplainAnalyzeJsonDump(const std::string& sql,
                                                     OptimizerPath path) {
  OpActualsMap actuals;
  std::unique_ptr<CompiledQuery> compiled;
  TAURUS_ASSIGN_OR_RETURN(
      QueryResult res,
      QueryInternal(sql, path, QueryOptions{}, &actuals, &compiled));
  ExplainAnalyzeData data;
  data.actuals = &actuals;
  data.execute_ms = res.execute_ms;
  data.rows_returned = static_cast<int64_t>(res.rows.size());
  return ExplainAnalyzeJson(*compiled, data);
}

std::shared_ptr<ThreadPool> Database::GetPool(int workers) {
  MutexLock lock(&pool_mu_);
  if (pool_ == nullptr || pool_->size() != workers) {
    // Resize by replacement: queries armed against the old pool keep it
    // alive (and functional) through their ExecContext::pool_owner.
    pool_ = std::make_shared<ThreadPool>(workers);
  }
  return pool_;
}

void Database::ArmExecContext(ExecContext* ctx, bool used_orca,
                              int worker_cap) {
  if (used_orca && resource_budget_.governs_exec()) {
    // The executor budget governs the detour only; the MySQL path (and any
    // fallback re-execution) runs unbudgeted.
    ctx->max_rows_scanned = resource_budget_.max_exec_rows;
    if (resource_budget_.exec_deadline_ms > 0) {
      ctx->clock_ms = resource_budget_.clock_ms
                          ? resource_budget_.clock_ms
                          : std::function<double()>(
                                &ResourceGovernor::SteadyNowMs);
      ctx->exec_deadline_ms =
          ctx->clock_ms() + resource_budget_.exec_deadline_ms;
    }
  }
  int pool_size = exec_config_.parallel_workers;
  if (pool_size <= 0) pool_size = ThreadPool::HardwareWorkers();
  int workers = pool_size;
  // The admission controller's worker-token lease caps this query's DOP
  // without resizing the shared pool (other queries keep their own leases).
  if (worker_cap > 0) workers = std::min(workers, worker_cap);
  ctx->parallel_workers = workers;
  ctx->morsel_rows = std::max<int64_t>(1, exec_config_.morsel_rows);
  ctx->parallel_min_driver_rows = exec_config_.parallel_min_driver_rows;
  ctx->use_batch = exec_config_.enable_batch;
  ctx->batch_size = std::max<int64_t>(1, exec_config_.batch_size);
  if (workers > 1) {
    ctx->pool_owner = GetPool(pool_size);
    ctx->pool = ctx->pool_owner.get();
  }
}

Result<std::string> Database::Explain(const std::string& sql,
                                      OptimizerPath path) {
  TAURUS_ASSIGN_OR_RETURN(auto compiled, Compile(sql, path));
  return RenderExplain(*compiled);
}

}  // namespace taurus
