#include "engine/database.h"

#include <chrono>

#include "engine/explain.h"
#include "exec/block_executor.h"
#include "exec/expr_eval.h"
#include "frontend/binder.h"
#include "myopt/mysql_optimizer.h"
#include "myopt/refine.h"
#include "parser/parser.h"

namespace taurus {

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

Status Database::ExecuteSql(const std::string& sql) {
  TAURUS_ASSIGN_OR_RETURN(auto stmt, ParseStatement(sql));
  switch (stmt->kind) {
    case Statement::Kind::kCreateTable: {
      TAURUS_ASSIGN_OR_RETURN(TableDef * table,
                              catalog_.CreateTable(stmt->table_name,
                                                   stmt->columns));
      if (!stmt->primary_key.empty()) {
        IndexDef pk;
        pk.name = stmt->table_name + "_pk";
        pk.column_idx = stmt->primary_key;
        pk.unique = true;
        pk.primary = true;
        TAURUS_RETURN_IF_ERROR(catalog_.AddIndex(stmt->table_name, pk));
      }
      storage_.CreateTable(table);
      return Status::OK();
    }
    case Statement::Kind::kCreateIndex: {
      const TableDef* table = catalog_.GetTable(stmt->table_name);
      if (table == nullptr) {
        return Status::NotFound("no such table: " + stmt->table_name);
      }
      IndexDef index = stmt->index;
      for (const ColumnDef& col : stmt->columns) {  // parser parks names here
        int idx = table->ColumnIndex(col.name);
        if (idx < 0) {
          return Status::BindError("index column not found: " + col.name);
        }
        index.column_idx.push_back(idx);
      }
      TAURUS_RETURN_IF_ERROR(catalog_.AddIndex(stmt->table_name, index));
      TableData* data = storage_.Get(table->id);
      if (data != nullptr) data->BuildIndexes();
      return Status::OK();
    }
    case Statement::Kind::kInsert: {
      const TableDef* table = catalog_.GetTable(stmt->table_name);
      TableData* data =
          table != nullptr ? storage_.Get(table->id) : nullptr;
      if (data == nullptr) {
        return Status::NotFound("no such table: " + stmt->table_name);
      }
      for (const auto& row_exprs : stmt->insert_rows) {
        if (row_exprs.size() != table->columns.size()) {
          return Status::InvalidArgument("INSERT arity mismatch");
        }
        Row row;
        for (size_t c = 0; c < row_exprs.size(); ++c) {
          TAURUS_ASSIGN_OR_RETURN(Value v, EvalConstExpr(*row_exprs[c]));
          // Coerce literals to the declared column type where sensible.
          TypeId want = table->columns[c].type;
          if (!v.is_null() && v.type() != want) {
            if (IsTemporalType(want) && v.kind() == Value::Kind::kString) {
              if (CategoryOf(want) == TypeCategory::kDte) {
                TAURUS_ASSIGN_OR_RETURN(int64_t days, ParseDate(v.AsString()));
                v = Value::Date(days);
              } else {
                TAURUS_ASSIGN_OR_RETURN(int64_t secs,
                                        ParseDatetime(v.AsString()));
                v = Value::Datetime(secs);
              }
            } else if (IsNumericType(want) &&
                       v.kind() == Value::Kind::kInt) {
              v = Value::Double(static_cast<double>(v.AsInt()), want);
            } else if (v.kind() == Value::Kind::kInt) {
              v = Value::Int(v.AsInt(), want);
            } else if (v.kind() == Value::Kind::kString) {
              v = Value::Str(v.AsString(), want);
            }
          }
          row.push_back(std::move(v));
        }
        data->Append(std::move(row));
      }
      data->BuildIndexes();
      return Status::OK();
    }
    case Statement::Kind::kAnalyze:
      return Analyze(stmt->table_name);
    case Statement::Kind::kSelect:
    case Statement::Kind::kExplain:
      return Status::InvalidArgument(
          "use Query()/Explain() for SELECT statements");
  }
  return Status::Internal("unreachable statement kind");
}

Status Database::BulkLoad(const std::string& table, std::vector<Row> rows) {
  const TableDef* def = catalog_.GetTable(table);
  TableData* data = def != nullptr ? storage_.Get(def->id) : nullptr;
  if (data == nullptr) return Status::NotFound("no such table: " + table);
  data->Reserve(data->NumRows() + rows.size());
  for (Row& r : rows) {
    if (r.size() != def->columns.size()) {
      return Status::InvalidArgument("bulk load arity mismatch for " + table);
    }
    data->Append(std::move(r));
  }
  data->BuildIndexes();
  return Status::OK();
}

Status Database::Analyze(const std::string& table) {
  const TableDef* def = catalog_.GetTable(table);
  TableData* data = def != nullptr ? storage_.Get(def->id) : nullptr;
  if (data == nullptr) return Status::NotFound("no such table: " + table);
  catalog_.SetStats(def->id, ComputeTableStats(*data));
  return Status::OK();
}

Status Database::AnalyzeAll() {
  for (const std::string& name : catalog_.TableNames()) {
    TAURUS_RETURN_IF_ERROR(Analyze(name));
  }
  return Status::OK();
}

Result<std::unique_ptr<CompiledQuery>> Database::Compile(
    const std::string& sql, OptimizerPath path) {
  auto start = std::chrono::steady_clock::now();
  last_fell_back_ = false;

  TAURUS_ASSIGN_OR_RETURN(auto parsed, ParseSelect(sql));
  TAURUS_ASSIGN_OR_RETURN(BoundStatement stmt,
                          BindStatement(catalog_, std::move(parsed)));
  TAURUS_RETURN_IF_ERROR(PrepareStatement(&stmt, prepare_options_));

  bool try_orca = path == OptimizerPath::kOrca ||
                  (path == OptimizerPath::kAuto &&
                   ShouldRouteToOrca(stmt, router_config_));

  std::unique_ptr<BlockSkeleton> skeleton;
  bool used_orca = false;
  if (try_orca) {
    OrcaPathOptimizer orca(catalog_, &stmt, &mdp_, orca_config_);
    auto orca_skel = orca.Optimize();
    if (orca_skel.ok()) {
      skeleton = std::move(*orca_skel);
      used_orca = true;
      last_orca_metrics_ = orca.metrics();
    } else if (path == OptimizerPath::kOrca) {
      return orca_skel.status();
    } else {
      // Abort the detour; resort to the usual MySQL optimization
      // (Section 4.2.1).
      last_fell_back_ = true;
    }
  }
  if (skeleton == nullptr) {
    TAURUS_ASSIGN_OR_RETURN(skeleton, MySqlOptimize(catalog_, &stmt));
  }

  TAURUS_ASSIGN_OR_RETURN(auto compiled,
                          RefinePlan(std::move(stmt), *skeleton, catalog_));
  compiled->used_orca = used_orca;
  compiled->optimize_ms = MsSince(start);
  return compiled;
}

Result<QueryResult> Database::Query(const std::string& sql,
                                    OptimizerPath path) {
  TAURUS_ASSIGN_OR_RETURN(auto compiled, Compile(sql, path));
  QueryResult out;
  out.columns = compiled->root->column_names;
  out.used_orca = compiled->used_orca;
  out.optimize_ms = compiled->optimize_ms;

  auto start = std::chrono::steady_clock::now();
  ExecContext ctx;
  TAURUS_ASSIGN_OR_RETURN(out.rows,
                          ExecuteQuery(compiled.get(), storage_, &ctx));
  out.execute_ms = MsSince(start);
  out.rows_scanned = ctx.rows_scanned;
  out.index_lookups = ctx.index_lookups;
  out.rebinds = ctx.rebinds;
  return out;
}

Result<std::string> Database::Explain(const std::string& sql,
                                      OptimizerPath path) {
  TAURUS_ASSIGN_OR_RETURN(auto compiled, Compile(sql, path));
  return RenderExplain(*compiled);
}

}  // namespace taurus
