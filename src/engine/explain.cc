#include "engine/explain.h"

#include <cstdio>
#include <map>
#include <vector>

#include "parser/ast_util.h"

namespace taurus {

namespace {

std::string Est(double cost, double rows) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), " (cost=%.2f rows=%.0f)", cost, rows);
  return buf;
}

std::string CondsToString(const std::vector<const Expr*>& conds) {
  std::string out;
  for (size_t i = 0; i < conds.size(); ++i) {
    if (i) out += " and ";
    out += conds[i]->ToString();
  }
  return out;
}

class ExplainRenderer {
 public:
  explicit ExplainRenderer(const CompiledQuery& query) : query_(&query) {
    // Build ref_id -> leaf map for invalidation annotations.
    std::vector<const QueryBlock*> blocks{query.ast.get()};
    while (!blocks.empty()) {
      const QueryBlock* b = blocks.back();
      blocks.pop_back();
      for (const TableRef* leaf : b->Leaves()) {
        leaf_by_ref_[leaf->ref_id] = leaf;
        if (leaf->kind == TableRef::Kind::kDerived) {
          blocks.push_back(leaf->derived.get());
        }
      }
      if (b->union_next) blocks.push_back(b->union_next.get());
    }
  }

  std::string Render() {
    std::string out = query_->used_orca ? "EXPLAIN (ORCA)\n" : "EXPLAIN\n";
    if (query_->plan_cache_hit) {
      // Own line so the first-line optimizer marker stays stable.
      char buf[64];
      std::snprintf(buf, sizeof(buf), "plan cache hit (saved %.3f ms)\n",
                    query_->optimize_saved_ms);
      out += buf;
    }
    // Degradation markers (own lines, after the optimizer marker).
    if (query_->quarantine_hit) {
      out += "orca detour quarantined; used MySQL path\n";
    } else if (query_->fell_back) {
      out += "orca detour fell back (" + query_->fallback_reason + ")\n";
    }
    if (query_->verifier_rules > 0) {
      out += "plan_verifier: " + std::to_string(query_->verifier_rules) +
             " rules, " + std::to_string(query_->verifier_violations) +
             " violations\n";
    }
    RenderBlock(*query_->root, 0, &out);
    for (size_t i = 0; i < query_->subplans.size(); ++i) {
      out += "Subquery #" + std::to_string(i + 1) +
             (query_->subplans[i]->correlated ? " (correlated)" : "") + "\n";
      RenderBlock(*query_->subplans[i]->plan, 0, &out);
    }
    return out;
  }

 private:
  void Line(int indent, const std::string& text, std::string* out) {
    out->append(static_cast<size_t>(indent) * 4, ' ');
    out->append("-> ");
    out->append(text);
    out->push_back('\n');
  }

  /// Name of the outer table a correlated derived table rebinds on.
  std::string InvalidationSource(const BlockPlan& derived) {
    std::vector<bool> used(static_cast<size_t>(query_->num_refs), false);
    const QueryBlock* b = derived.block;
    if (b->where) CollectReferencedRefs(*b->where, &used);
    for (const auto& item : b->select_items) {
      CollectReferencedRefs(*item.expr, &used);
    }
    if (b->having) CollectReferencedRefs(*b->having, &used);
    // Any used leaf not owned by the derived block is the binding source.
    std::vector<bool> owned(used.size(), false);
    std::vector<const QueryBlock*> blocks{b};
    while (!blocks.empty()) {
      const QueryBlock* blk = blocks.back();
      blocks.pop_back();
      for (const TableRef* leaf : blk->Leaves()) {
        if (leaf->ref_id >= 0 &&
            static_cast<size_t>(leaf->ref_id) < owned.size()) {
          owned[static_cast<size_t>(leaf->ref_id)] = true;
        }
        if (leaf->kind == TableRef::Kind::kDerived) {
          blocks.push_back(leaf->derived.get());
        }
      }
    }
    for (size_t r = 0; r < used.size(); ++r) {
      if (used[r] && !owned[r]) {
        auto it = leaf_by_ref_.find(static_cast<int>(r));
        if (it != leaf_by_ref_.end()) return it->second->alias;
      }
    }
    return "outer";
  }

  void RenderOp(const PhysOp& op, int indent, std::string* out) {
    switch (op.kind) {
      case PhysOp::Kind::kFilter:
        Line(indent, "Filter: " + CondsToString(op.conds) +
                         Est(op.est_cost, op.est_rows),
             out);
        RenderOp(*op.child, indent + 1, out);
        return;
      case PhysOp::Kind::kNLJoin: {
        std::string name = "Nested loop ";
        switch (op.join_type) {
          case JoinType::kInner:
          case JoinType::kCross:
            name += "inner join";
            break;
          case JoinType::kLeft:
            name += "left join";
            break;
          case JoinType::kSemi:
            name += "semijoin";
            break;
          case JoinType::kAntiSemi:
            name += "antijoin";
            break;
        }
        if (!op.conds.empty()) name += " on " + CondsToString(op.conds);
        Line(indent, name + Est(op.est_cost, op.est_rows), out);
        RenderOp(*op.child, indent + 1, out);
        RenderOp(*op.right, indent + 1, out);
        return;
      }
      case PhysOp::Kind::kHashJoin: {
        std::string name;
        switch (op.join_type) {
          case JoinType::kInner:
          case JoinType::kCross:
            name = "Inner hash join";
            break;
          case JoinType::kLeft:
            name = "Left hash join";
            break;
          case JoinType::kSemi:
            name = "Hash semijoin";
            break;
          case JoinType::kAntiSemi:
            name = "Hash antijoin";
            break;
        }
        std::string keys;
        for (size_t i = 0; i < op.hash_keys.size(); ++i) {
          if (i) keys += ", ";
          keys += op.hash_keys[i].first->ToString() + " = " +
                  op.hash_keys[i].second->ToString();
        }
        if (!keys.empty()) name += " (" + keys + ")";
        Line(indent, name + Est(op.est_cost, op.est_rows), out);
        RenderOp(*op.child, indent + 1, out);
        RenderOp(*op.right, indent + 1, out);
        return;
      }
      case PhysOp::Kind::kTableScan: {
        std::string text = "Table scan on " + op.leaf->alias;
        if (!op.filters.empty()) {
          Line(indent,
               "Filter: " + CondsToString(op.filters) +
                   Est(op.est_cost, op.est_rows),
               out);
          Line(indent + 1, text + Est(op.est_cost, op.est_rows), out);
        } else {
          Line(indent, text + Est(op.est_cost, op.est_rows), out);
        }
        return;
      }
      case PhysOp::Kind::kIndexRange: {
        std::string idx =
            op.index_id >= 0
                ? op.leaf->table->indexes[static_cast<size_t>(op.index_id)]
                      .name
                : "?";
        std::string text =
            "Index range scan on " + op.leaf->alias + " using " + idx;
        if (!op.filters.empty()) {
          text += ", with filter: " + CondsToString(op.filters);
        }
        Line(indent, text + Est(op.est_cost, op.est_rows), out);
        return;
      }
      case PhysOp::Kind::kIndexLookup: {
        std::string idx =
            op.index_id >= 0
                ? op.leaf->table->indexes[static_cast<size_t>(op.index_id)]
                      .name
                : "?";
        const IndexDef& def =
            op.leaf->table->indexes[static_cast<size_t>(op.index_id)];
        std::string keys;
        for (size_t i = 0; i < op.lookup_keys.size(); ++i) {
          if (i) keys += ", ";
          keys += op.leaf->table
                      ->columns[static_cast<size_t>(def.column_idx[i])]
                      .name +
                  "=" + op.lookup_keys[i]->ToString();
        }
        std::string text = "Index lookup on " + op.leaf->alias + " using " +
                           idx + " (" + keys + ")";
        if (!op.filters.empty()) {
          text += ", with filter: " + CondsToString(op.filters);
        }
        Line(indent, text + Est(op.est_cost, op.est_rows), out);
        return;
      }
      case PhysOp::Kind::kDerivedScan: {
        std::string text = "Table scan on " + op.leaf->alias;
        if (!op.filters.empty()) {
          Line(indent,
               "Filter: " + CondsToString(op.filters) +
                   Est(op.est_cost, op.est_rows),
               out);
          ++indent;
        }
        Line(indent, text + Est(op.est_cost, op.est_rows), out);
        std::string mat = "Materialize";
        if (op.invalidate_on_rebind) {
          mat += " (invalidate on row from " +
                 InvalidationSource(*op.derived_plan) + ")";
        }
        Line(indent + 1, mat, out);
        RenderBlock(*op.derived_plan, indent + 2, out);
        return;
      }
    }
  }

  void RenderBlock(const BlockPlan& plan, int indent, std::string* out) {
    if (plan.limit >= 0) {
      Line(indent, "Limit: " + std::to_string(plan.limit) + " row(s)", out);
      ++indent;
    }
    if (!plan.order_keys.empty()) {
      std::string keys;
      for (size_t i = 0; i < plan.order_keys.size(); ++i) {
        if (i) keys += ", ";
        keys += plan.order_keys[i].first->ToString();
        if (!plan.order_keys[i].second) keys += " DESC";
      }
      if (plan.order_satisfied) {
        Line(indent, "Sort elided (index provides order): " + keys, out);
      } else {
        Line(indent, "Sort: " + keys, out);
      }
      ++indent;
    }
    if (plan.having != nullptr) {
      Line(indent, "Filter: " + plan.having->ToString(), out);
      ++indent;
    }
    if (plan.agg_mode != AggMode::kNone) {
      std::string aggs;
      for (size_t i = 0; i < plan.agg_exprs.size(); ++i) {
        if (i) aggs += ", ";
        aggs += plan.agg_exprs[i]->ToString();
      }
      std::string mode = plan.agg_mode == AggMode::kStream
                             ? "Stream aggregate: "
                             : "Aggregate: ";
      Line(indent, mode + aggs + Est(plan.est_cost, plan.est_rows), out);
      ++indent;
    }
    if (plan.join_root != nullptr) {
      // Parallelism marker: the refinement verdict for the block's driving
      // pipeline (actual degree used is a runtime property, surfaced in
      // QueryResult::parallel_workers_used).
      if (plan.parallel_eligible) {
        Line(indent, "Parallel pipeline (morsel-driven eligible)", out);
      } else {
        Line(indent, "Serial pipeline (" + plan.serial_reason + ")", out);
      }
      RenderOp(*plan.join_root, indent + 1, out);
    } else {
      Line(indent, "Rows fetched before execution", out);
    }
    for (const auto& arm : plan.union_arms) {
      Line(indent, "Union arm", out);
      RenderBlock(*arm, indent + 1, out);
    }
  }

  const CompiledQuery* query_;
  std::map<int, const TableRef*> leaf_by_ref_;
};

}  // namespace

Result<std::string> RenderExplain(const CompiledQuery& query) {
  if (query.root == nullptr) {
    return Status::InvalidArgument("query was not compiled");
  }
  ExplainRenderer renderer(query);
  return renderer.Render();
}

}  // namespace taurus
