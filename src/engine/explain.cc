#include "engine/explain.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "obs/estimate_feedback.h"
#include "parser/ast_util.h"

namespace taurus {

namespace {

std::string Est(double cost, double rows) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), " (cost=%.2f rows=%.0f)", cost, rows);
  return buf;
}

/// "(actual rows=N loops=N time=T ms) (q-error=Q)" for an executed node,
/// "(never executed)" otherwise.
std::string ActualAnnot(const OpActual* a, double est_rows) {
  if (a == nullptr || a->loops <= 0) return " (never executed)";
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                " (actual rows=%lld loops=%lld time=%.3f ms)",
                static_cast<long long>(a->rows),
                static_cast<long long>(a->loops), a->time_ms);
  std::string out = buf;
  const double per_loop = static_cast<double>(a->rows) /
                          static_cast<double>(std::max<int64_t>(a->loops, 1));
  std::snprintf(buf, sizeof(buf), " (q-error=%.2f)", QError(est_rows, per_loop));
  out += buf;
  return out;
}

std::string CondsToString(const std::vector<const Expr*>& conds) {
  std::string out;
  for (size_t i = 0; i < conds.size(); ++i) {
    if (i) out += " and ";
    out += conds[i]->ToString();
  }
  return out;
}

class ExplainRenderer {
 public:
  explicit ExplainRenderer(const CompiledQuery& query,
                           const ExplainAnalyzeData* analyze = nullptr)
      : query_(&query), analyze_(analyze) {
    // Build ref_id -> leaf map for invalidation annotations.
    std::vector<const QueryBlock*> blocks{query.ast.get()};
    while (!blocks.empty()) {
      const QueryBlock* b = blocks.back();
      blocks.pop_back();
      for (const TableRef* leaf : b->Leaves()) {
        leaf_by_ref_[leaf->ref_id] = leaf;
        if (leaf->kind == TableRef::Kind::kDerived) {
          blocks.push_back(leaf->derived.get());
        }
      }
      if (b->union_next) blocks.push_back(b->union_next.get());
    }
  }

  std::string Render() {
    std::string out;
    if (analyze_ != nullptr) {
      out = query_->used_orca ? "EXPLAIN ANALYZE (ORCA)\n" : "EXPLAIN ANALYZE\n";
      char buf[96];
      std::snprintf(buf, sizeof(buf), "actual: rows=%lld time=%.3f ms\n",
                    static_cast<long long>(analyze_->rows_returned),
                    analyze_->execute_ms);
      out += buf;
    } else {
      out = query_->used_orca ? "EXPLAIN (ORCA)\n" : "EXPLAIN\n";
    }
    if (query_->plan_cache_hit) {
      // Own line so the first-line optimizer marker stays stable.
      char buf[64];
      std::snprintf(buf, sizeof(buf), "plan cache hit (saved %.3f ms)\n",
                    query_->optimize_saved_ms);
      out += buf;
    }
    // Degradation markers (own lines, after the optimizer marker).
    if (query_->quarantine_hit) {
      out += "orca detour quarantined; used MySQL path\n";
    } else if (query_->fell_back) {
      out += "orca detour fell back (" + query_->fallback_reason + ")\n";
    }
    if (query_->verifier_rules > 0) {
      out += "plan_verifier: " + std::to_string(query_->verifier_rules) +
             " rules, " + std::to_string(query_->verifier_violations) +
             " violations\n";
    }
    RenderBlock(*query_->root, 0, &out);
    for (size_t i = 0; i < query_->subplans.size(); ++i) {
      out += "Subquery #" + std::to_string(i + 1) +
             (query_->subplans[i]->correlated ? " (correlated)" : "") + "\n";
      RenderBlock(*query_->subplans[i]->plan, 0, &out);
    }
    if (analyze_ != nullptr) AppendQErrorSection(&out);
    return out;
  }

 private:
  /// Estimate annotation, plus actuals + q-error under EXPLAIN ANALYZE.
  /// Estimates that did not come from histogram formulas carry their
  /// provenance ("cardinality_source: actual|sketch") so the feedback loop
  /// is visible in plans (DESIGN.md section 11).
  std::string Annot(const PhysOp& op) {
    std::string out = Est(op.est_cost, op.est_rows);
    if (op.card_source != CardSource::kHistogram) {
      out += " (cardinality_source: ";
      out += CardSourceName(op.card_source);
      out += ")";
    }
    if (analyze_ != nullptr) {
      out += ActualAnnot(analyze_->actuals->Find(&op), op.est_rows);
    }
    return out;
  }

  std::string BlockAnnot(const BlockPlan& plan) {
    std::string out = Est(plan.est_cost, plan.est_rows);
    if (analyze_ != nullptr) {
      out += ActualAnnot(analyze_->actuals->Find(&plan), plan.est_rows);
    }
    return out;
  }

  /// Per-position q-errors over each block's best-position array — the
  /// leaf order Orca's estimates were copied into (Section 4.2.2), so a
  /// drifted position points straight at the misestimated input.
  void AppendQErrorSection(std::string* out) {
    std::vector<std::pair<std::string, const BlockPlan*>> blocks;
    blocks.emplace_back("main", query_->root.get());
    for (size_t i = 0; i < query_->root->union_arms.size(); ++i) {
      blocks.emplace_back("union arm #" + std::to_string(i + 1),
                          query_->root->union_arms[i].get());
    }
    for (size_t i = 0; i < query_->subplans.size(); ++i) {
      blocks.emplace_back("subquery #" + std::to_string(i + 1),
                          query_->subplans[i]->plan.get());
    }
    double worst = 1.0;
    for (const auto& [label, plan] : blocks) {
      if (plan == nullptr) continue;
      std::vector<PositionQError> qs =
          CollectPositionQErrors(*plan, *analyze_->actuals);
      if (qs.empty()) continue;
      *out += "q-error by position (" + label + "):\n";
      for (const PositionQError& q : qs) {
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "  pos %d: %s est=%.0f actual=%.1f q-error=%.2f\n",
                      q.position, q.alias.c_str(), q.est_rows, q.actual_rows,
                      q.q_error);
        *out += buf;
        worst = std::max(worst, q.q_error);
      }
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "max q-error: %.2f\n", worst);
    *out += buf;
  }

  void Line(int indent, const std::string& text, std::string* out) {
    out->append(static_cast<size_t>(indent) * 4, ' ');
    out->append("-> ");
    out->append(text);
    out->push_back('\n');
  }

  /// Name of the outer table a correlated derived table rebinds on.
  std::string InvalidationSource(const BlockPlan& derived) {
    std::vector<bool> used(static_cast<size_t>(query_->num_refs), false);
    const QueryBlock* b = derived.block;
    if (b->where) CollectReferencedRefs(*b->where, &used);
    for (const auto& item : b->select_items) {
      CollectReferencedRefs(*item.expr, &used);
    }
    if (b->having) CollectReferencedRefs(*b->having, &used);
    // Any used leaf not owned by the derived block is the binding source.
    std::vector<bool> owned(used.size(), false);
    std::vector<const QueryBlock*> blocks{b};
    while (!blocks.empty()) {
      const QueryBlock* blk = blocks.back();
      blocks.pop_back();
      for (const TableRef* leaf : blk->Leaves()) {
        if (leaf->ref_id >= 0 &&
            static_cast<size_t>(leaf->ref_id) < owned.size()) {
          owned[static_cast<size_t>(leaf->ref_id)] = true;
        }
        if (leaf->kind == TableRef::Kind::kDerived) {
          blocks.push_back(leaf->derived.get());
        }
      }
    }
    for (size_t r = 0; r < used.size(); ++r) {
      if (used[r] && !owned[r]) {
        auto it = leaf_by_ref_.find(static_cast<int>(r));
        if (it != leaf_by_ref_.end()) return it->second->alias;
      }
    }
    return "outer";
  }

  void RenderOp(const PhysOp& op, int indent, std::string* out) {
    switch (op.kind) {
      case PhysOp::Kind::kFilter:
        Line(indent, "Filter: " + CondsToString(op.conds) +
                         Annot(op),
             out);
        RenderOp(*op.child, indent + 1, out);
        return;
      case PhysOp::Kind::kNLJoin: {
        std::string name = "Nested loop ";
        switch (op.join_type) {
          case JoinType::kInner:
          case JoinType::kCross:
            name += "inner join";
            break;
          case JoinType::kLeft:
            name += "left join";
            break;
          case JoinType::kSemi:
            name += "semijoin";
            break;
          case JoinType::kAntiSemi:
            name += "antijoin";
            break;
        }
        if (!op.conds.empty()) name += " on " + CondsToString(op.conds);
        Line(indent, name + Annot(op), out);
        RenderOp(*op.child, indent + 1, out);
        RenderOp(*op.right, indent + 1, out);
        return;
      }
      case PhysOp::Kind::kHashJoin: {
        std::string name;
        switch (op.join_type) {
          case JoinType::kInner:
          case JoinType::kCross:
            name = "Inner hash join";
            break;
          case JoinType::kLeft:
            name = "Left hash join";
            break;
          case JoinType::kSemi:
            name = "Hash semijoin";
            break;
          case JoinType::kAntiSemi:
            name = "Hash antijoin";
            break;
        }
        std::string keys;
        for (size_t i = 0; i < op.hash_keys.size(); ++i) {
          if (i) keys += ", ";
          keys += op.hash_keys[i].first->ToString() + " = " +
                  op.hash_keys[i].second->ToString();
        }
        if (!keys.empty()) name += " (" + keys + ")";
        Line(indent, name + Annot(op), out);
        RenderOp(*op.child, indent + 1, out);
        RenderOp(*op.right, indent + 1, out);
        return;
      }
      case PhysOp::Kind::kTableScan: {
        std::string text = "Table scan on " + op.leaf->alias;
        if (!op.filters.empty()) {
          Line(indent,
               "Filter: " + CondsToString(op.filters) +
                   Annot(op),
               out);
          Line(indent + 1, text + Annot(op), out);
        } else {
          Line(indent, text + Annot(op), out);
        }
        return;
      }
      case PhysOp::Kind::kIndexRange: {
        std::string idx =
            op.index_id >= 0
                ? op.leaf->table->indexes[static_cast<size_t>(op.index_id)]
                      .name
                : "?";
        std::string text =
            "Index range scan on " + op.leaf->alias + " using " + idx;
        if (!op.filters.empty()) {
          text += ", with filter: " + CondsToString(op.filters);
        }
        Line(indent, text + Annot(op), out);
        return;
      }
      case PhysOp::Kind::kIndexLookup: {
        std::string idx =
            op.index_id >= 0
                ? op.leaf->table->indexes[static_cast<size_t>(op.index_id)]
                      .name
                : "?";
        const IndexDef& def =
            op.leaf->table->indexes[static_cast<size_t>(op.index_id)];
        std::string keys;
        for (size_t i = 0; i < op.lookup_keys.size(); ++i) {
          if (i) keys += ", ";
          keys += op.leaf->table
                      ->columns[static_cast<size_t>(def.column_idx[i])]
                      .name +
                  "=" + op.lookup_keys[i]->ToString();
        }
        std::string text = "Index lookup on " + op.leaf->alias + " using " +
                           idx + " (" + keys + ")";
        if (!op.filters.empty()) {
          text += ", with filter: " + CondsToString(op.filters);
        }
        Line(indent, text + Annot(op), out);
        return;
      }
      case PhysOp::Kind::kDerivedScan: {
        std::string text = "Table scan on " + op.leaf->alias;
        if (!op.filters.empty()) {
          Line(indent,
               "Filter: " + CondsToString(op.filters) +
                   Annot(op),
               out);
          ++indent;
        }
        Line(indent, text + Annot(op), out);
        std::string mat = "Materialize";
        if (op.invalidate_on_rebind) {
          mat += " (invalidate on row from " +
                 InvalidationSource(*op.derived_plan) + ")";
        }
        Line(indent + 1, mat, out);
        RenderBlock(*op.derived_plan, indent + 2, out);
        return;
      }
    }
  }

  void RenderBlock(const BlockPlan& plan, int indent, std::string* out) {
    if (plan.limit >= 0) {
      Line(indent, "Limit: " + std::to_string(plan.limit) + " row(s)", out);
      ++indent;
    }
    if (!plan.order_keys.empty()) {
      std::string keys;
      for (size_t i = 0; i < plan.order_keys.size(); ++i) {
        if (i) keys += ", ";
        keys += plan.order_keys[i].first->ToString();
        if (!plan.order_keys[i].second) keys += " DESC";
      }
      if (plan.order_satisfied) {
        Line(indent, "Sort elided (index provides order): " + keys, out);
      } else {
        Line(indent, "Sort: " + keys, out);
      }
      ++indent;
    }
    if (plan.having != nullptr) {
      Line(indent, "Filter: " + plan.having->ToString(), out);
      ++indent;
    }
    if (plan.agg_mode != AggMode::kNone) {
      std::string aggs;
      for (size_t i = 0; i < plan.agg_exprs.size(); ++i) {
        if (i) aggs += ", ";
        aggs += plan.agg_exprs[i]->ToString();
      }
      std::string mode = plan.agg_mode == AggMode::kStream
                             ? "Stream aggregate: "
                             : "Aggregate: ";
      Line(indent, mode + aggs + BlockAnnot(plan), out);
      ++indent;
    }
    if (plan.join_root != nullptr) {
      // Parallelism marker: the refinement verdict for the block's driving
      // pipeline (actual degree used is a runtime property, surfaced in
      // QueryResult::parallel_workers_used).
      if (plan.parallel_eligible) {
        Line(indent, "Parallel pipeline (morsel-driven eligible)", out);
      } else {
        Line(indent, "Serial pipeline (" + plan.serial_reason + ")", out);
      }
      // Vectorization marker: whether the driving chain runs batch-at-a-time
      // (partial segments may still batch behind adapters when ineligible).
      if (plan.batch_eligible) {
        Line(indent, "Batch pipeline (vectorized eligible)", out);
      } else {
        Line(indent, "Row pipeline (" + plan.batch_serial_reason + ")", out);
      }
      RenderOp(*plan.join_root, indent + 1, out);
    } else {
      Line(indent, "Rows fetched before execution", out);
    }
    for (const auto& arm : plan.union_arms) {
      Line(indent, "Union arm", out);
      RenderBlock(*arm, indent + 1, out);
    }
  }

  const CompiledQuery* query_;
  std::map<int, const TableRef*> leaf_by_ref_;
  const ExplainAnalyzeData* analyze_;
};

const char* OpKindName(PhysOp::Kind kind) {
  switch (kind) {
    case PhysOp::Kind::kTableScan: return "table_scan";
    case PhysOp::Kind::kIndexRange: return "index_range";
    case PhysOp::Kind::kIndexLookup: return "index_lookup";
    case PhysOp::Kind::kDerivedScan: return "derived_scan";
    case PhysOp::Kind::kFilter: return "filter";
    case PhysOp::Kind::kNLJoin: return "nested_loop_join";
    case PhysOp::Kind::kHashJoin: return "hash_join";
  }
  return "unknown";
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

/// Machine-readable EXPLAIN ANALYZE tree. Node fields carry aliases and
/// operator kinds only (no expression strings), so the output stays
/// schema-stable and trivially escapable.
class AnalyzeJsonWriter {
 public:
  AnalyzeJsonWriter(const CompiledQuery& query, const ExplainAnalyzeData& data)
      : query_(&query), data_(&data) {}

  std::string Write() {
    std::string out = "{";
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "\"explain_analyze\": true, \"used_orca\": %s, "
                  "\"execute_ms\": %.6f, \"rows_returned\": %lld",
                  query_->used_orca ? "true" : "false", data_->execute_ms,
                  static_cast<long long>(data_->rows_returned));
    out += buf;
    out += ", \"plan\": ";
    WriteBlock(*query_->root, &out);
    out += ", \"subqueries\": [";
    for (size_t i = 0; i < query_->subplans.size(); ++i) {
      if (i) out += ", ";
      WriteBlock(*query_->subplans[i]->plan, &out);
    }
    out += "]";
    AppendQErrors(&out);
    out += "}";
    return out;
  }

 private:
  /// Appends the shared actual-execution fields for one plan node.
  void AppendActuals(const void* node, double est_rows, std::string* out) {
    const OpActual* a = data_->actuals->Find(node);
    char buf[160];
    if (a == nullptr || a->loops <= 0) {
      *out += ", \"actual_rows\": 0, \"loops\": 0, \"time_ms\": 0.0, "
              "\"q_error\": null";
      return;
    }
    const double per_loop =
        static_cast<double>(a->rows) /
        static_cast<double>(std::max<int64_t>(a->loops, 1));
    std::snprintf(buf, sizeof(buf),
                  ", \"actual_rows\": %lld, \"loops\": %lld, "
                  "\"time_ms\": %.6f, \"q_error\": %.4f",
                  static_cast<long long>(a->rows),
                  static_cast<long long>(a->loops), a->time_ms,
                  QError(est_rows, per_loop));
    *out += buf;
  }

  void WriteOp(const PhysOp& op, std::string* out) {
    char buf[96];
    *out += "{\"op\": \"";
    *out += OpKindName(op.kind);
    *out += "\"";
    if (op.leaf != nullptr) {
      *out += ", \"alias\": \"" + JsonEscape(op.leaf->alias) + "\"";
    }
    std::snprintf(buf, sizeof(buf), ", \"est_rows\": %.4f, \"est_cost\": %.4f",
                  op.est_rows, op.est_cost);
    *out += buf;
    *out += ", \"cardinality_source\": \"";
    *out += CardSourceName(op.card_source);
    *out += "\"";
    *out += ", \"batch_native\": ";
    *out += op.batch_native ? "true" : "false";
    if (!op.batch_native) {
      *out += ", \"batch_reason\": \"" + JsonEscape(op.batch_serial_reason) +
              "\"";
    }
    AppendActuals(&op, op.est_rows, out);
    *out += ", \"children\": [";
    bool first = true;
    auto child = [&](const PhysOp* c) {
      if (c == nullptr) return;
      if (!first) *out += ", ";
      first = false;
      WriteOp(*c, out);
    };
    child(op.child.get());
    child(op.right.get());
    *out += "]";
    if (op.kind == PhysOp::Kind::kDerivedScan && op.derived_plan != nullptr) {
      *out += ", \"derived\": ";
      WriteBlock(*op.derived_plan, out);
    }
    *out += "}";
  }

  void WriteBlock(const BlockPlan& plan, std::string* out) {
    char buf[96];
    *out += "{\"node\": \"block\"";
    std::snprintf(buf, sizeof(buf), ", \"est_rows\": %.4f, \"est_cost\": %.4f",
                  plan.est_rows, plan.est_cost);
    *out += buf;
    *out += ", \"batch_eligible\": ";
    *out += plan.batch_eligible ? "true" : "false";
    if (!plan.batch_eligible) {
      *out += ", \"batch_serial_reason\": \"" +
              JsonEscape(plan.batch_serial_reason) + "\"";
    }
    AppendActuals(&plan, plan.est_rows, out);
    *out += ", \"pipeline\": ";
    if (plan.join_root != nullptr) {
      WriteOp(*plan.join_root, out);
    } else {
      *out += "null";
    }
    *out += ", \"union_arms\": [";
    for (size_t i = 0; i < plan.union_arms.size(); ++i) {
      if (i) *out += ", ";
      WriteBlock(*plan.union_arms[i], out);
    }
    *out += "]}";
  }

  void AppendQErrors(std::string* out) {
    std::vector<const BlockPlan*> blocks{query_->root.get()};
    for (const auto& arm : query_->root->union_arms) blocks.push_back(arm.get());
    for (const auto& sub : query_->subplans) blocks.push_back(sub->plan.get());
    *out += ", \"q_errors\": [";
    double worst = 1.0;
    bool first = true;
    for (const BlockPlan* plan : blocks) {
      if (plan == nullptr) continue;
      for (const PositionQError& q :
           CollectPositionQErrors(*plan, *data_->actuals)) {
        if (!first) *out += ", ";
        first = false;
        char buf[192];
        std::snprintf(buf, sizeof(buf),
                      "{\"position\": %d, \"alias\": \"%s\", "
                      "\"est_rows\": %.4f, \"actual_rows\": %.4f, "
                      "\"q_error\": %.4f}",
                      q.position, JsonEscape(q.alias).c_str(), q.est_rows,
                      q.actual_rows, q.q_error);
        *out += buf;
        worst = std::max(worst, q.q_error);
      }
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "], \"max_q_error\": %.4f", worst);
    *out += buf;
  }

  const CompiledQuery* query_;
  const ExplainAnalyzeData* data_;
};

}  // namespace

Result<std::string> RenderExplain(const CompiledQuery& query) {
  if (query.root == nullptr) {
    return Status::InvalidArgument("query was not compiled");
  }
  ExplainRenderer renderer(query);
  return renderer.Render();
}

Result<std::string> RenderExplainAnalyze(const CompiledQuery& query,
                                         const ExplainAnalyzeData& data) {
  if (query.root == nullptr) {
    return Status::InvalidArgument("query was not compiled");
  }
  if (data.actuals == nullptr) {
    return Status::InvalidArgument("EXPLAIN ANALYZE requires actuals");
  }
  ExplainRenderer renderer(query, &data);
  return renderer.Render();
}

Result<std::string> ExplainAnalyzeJson(const CompiledQuery& query,
                                       const ExplainAnalyzeData& data) {
  if (query.root == nullptr) {
    return Status::InvalidArgument("query was not compiled");
  }
  if (data.actuals == nullptr) {
    return Status::InvalidArgument("EXPLAIN ANALYZE requires actuals");
  }
  AnalyzeJsonWriter writer(query, data);
  return writer.Write();
}

}  // namespace taurus
