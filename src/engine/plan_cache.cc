#include "engine/plan_cache.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "common/fault_injector.h"

namespace taurus {

namespace {

/// Walks a block's own expressions (not into subquery bodies) collecting
/// subquery expression nodes in a deterministic order. Freeze and Thaw
/// both use this enumerator over structurally identical ASTs, so the
/// ordinal of a subquery is stable across re-parses.
void CollectSubqueryExprs(Expr* e, std::vector<Expr*>* out) {
  if (e->subquery) out->push_back(e);
  for (auto& c : e->children) CollectSubqueryExprs(c.get(), out);
}

void CollectBlockSubqueries(QueryBlock* block, std::vector<Expr*>* out) {
  for (auto& item : block->select_items) {
    CollectSubqueryExprs(item.expr.get(), out);
  }
  if (block->where) CollectSubqueryExprs(block->where.get(), out);
  for (auto& g : block->group_by) CollectSubqueryExprs(g.get(), out);
  if (block->having) CollectSubqueryExprs(block->having.get(), out);
  for (auto& o : block->order_by) CollectSubqueryExprs(o.expr.get(), out);
  std::vector<TableRef*> stack;
  for (auto& t : block->from) stack.push_back(t.get());
  while (!stack.empty()) {
    TableRef* r = stack.back();
    stack.pop_back();
    if (r->kind == TableRef::Kind::kJoin) {
      if (r->on) CollectSubqueryExprs(r->on.get(), out);
      stack.push_back(r->left.get());
      stack.push_back(r->right.get());
    }
  }
}

Result<std::unique_ptr<FrozenSkeletonNode>> FreezeNode(
    const SkeletonNode& node) {
  auto out = std::make_unique<FrozenSkeletonNode>();
  out->is_join = node.is_join;
  out->est_rows = node.est_rows;
  out->est_cost = node.est_cost;
  out->card_source = node.card_source;
  if (node.is_join) {
    out->method = node.method;
    out->join_type = node.join_type;
    TAURUS_ASSIGN_OR_RETURN(out->left, FreezeNode(*node.left));
    TAURUS_ASSIGN_OR_RETURN(out->right, FreezeNode(*node.right));
    return out;
  }
  if (node.leaf == nullptr || node.leaf->ref_id < 0) {
    return Status::Internal("freeze: skeleton leaf has no ref_id");
  }
  out->leaf_ref_id = node.leaf->ref_id;
  out->access = node.access;
  out->index_id = node.index_id;
  return out;
}

Result<FrozenBlockSkeleton> FreezeBlock(const BlockSkeleton& skel) {
  if (skel.block == nullptr) {
    return Status::Internal("freeze: skeleton has no block");
  }
  FrozenBlockSkeleton out;
  out.out_rows = skel.out_rows;
  out.cost = skel.cost;
  out.stream_agg = skel.stream_agg;
  if (skel.root != nullptr) {
    TAURUS_ASSIGN_OR_RETURN(out.root, FreezeNode(*skel.root));
  }
  // Derived-table sub-skeletons, keyed by the leaf's ref_id (std::map over
  // pointers would be a nondeterministic order; sort by ref_id instead).
  for (const auto& [leaf, sub] : skel.derived) {
    if (leaf == nullptr || leaf->ref_id < 0) {
      return Status::Internal("freeze: derived leaf has no ref_id");
    }
    TAURUS_ASSIGN_OR_RETURN(auto frozen_sub, FreezeBlock(*sub));
    out.derived.emplace_back(leaf->ref_id, std::move(frozen_sub));
  }
  std::sort(out.derived.begin(), out.derived.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  // Expression subqueries, by canonical traversal ordinal. Every enumerated
  // subquery must have a sub-skeleton and vice versa, else the positional
  // pairing at thaw time would be wrong.
  std::vector<Expr*> sub_exprs;
  CollectBlockSubqueries(skel.block, &sub_exprs);
  if (sub_exprs.size() != skel.subqueries.size()) {
    return Status::Internal("freeze: subquery count mismatch");
  }
  for (Expr* e : sub_exprs) {
    auto it = skel.subqueries.find(e);
    if (it == skel.subqueries.end()) {
      return Status::Internal("freeze: subquery skeleton missing");
    }
    TAURUS_ASSIGN_OR_RETURN(auto frozen_sub, FreezeBlock(*it->second));
    out.subqueries.push_back(std::move(frozen_sub));
  }
  for (const auto& arm : skel.union_arms) {
    TAURUS_ASSIGN_OR_RETURN(auto frozen_arm, FreezeBlock(*arm));
    out.union_arms.push_back(std::move(frozen_arm));
  }
  return out;
}

Result<std::unique_ptr<SkeletonNode>> ThawNode(const FrozenSkeletonNode& node,
                                               const QueryBlock* block,
                                               const BoundStatement& stmt) {
  auto out = std::make_unique<SkeletonNode>();
  out->is_join = node.is_join;
  out->est_rows = node.est_rows;
  out->est_cost = node.est_cost;
  out->card_source = node.card_source;
  if (node.is_join) {
    if (!node.left || !node.right) {
      return Status::Internal("thaw: join node missing children");
    }
    out->method = node.method;
    out->join_type = node.join_type;
    TAURUS_ASSIGN_OR_RETURN(out->left, ThawNode(*node.left, block, stmt));
    TAURUS_ASSIGN_OR_RETURN(out->right, ThawNode(*node.right, block, stmt));
    return out;
  }
  if (node.leaf_ref_id < 0 || node.leaf_ref_id >= stmt.num_refs) {
    return Status::Internal("thaw: leaf ref_id out of range");
  }
  TableRef* leaf = stmt.leaves[static_cast<size_t>(node.leaf_ref_id)];
  if (leaf == nullptr || leaf->kind == TableRef::Kind::kJoin ||
      leaf->owner != block) {
    return Status::Internal("thaw: leaf ref does not match block structure");
  }
  if (node.access != AccessMethod::kTableScan) {
    if (leaf->table == nullptr || node.index_id < 0 ||
        node.index_id >= static_cast<int>(leaf->table->indexes.size())) {
      return Status::Internal("thaw: index id out of range");
    }
  }
  out->leaf = leaf;
  out->access = node.access;
  out->index_id = node.index_id;
  return out;
}

Result<std::unique_ptr<BlockSkeleton>> ThawBlock(
    const FrozenBlockSkeleton& frozen, QueryBlock* block,
    const BoundStatement& stmt) {
  auto out = std::make_unique<BlockSkeleton>();
  out->block = block;
  out->out_rows = frozen.out_rows;
  out->cost = frozen.cost;
  out->stream_agg = frozen.stream_agg;
  if ((frozen.root != nullptr) != !block->from.empty()) {
    return Status::Internal("thaw: FROM shape mismatch");
  }
  if (frozen.root != nullptr) {
    TAURUS_ASSIGN_OR_RETURN(out->root, ThawNode(*frozen.root, block, stmt));
  }
  for (const auto& [ref_id, sub] : frozen.derived) {
    if (ref_id < 0 || ref_id >= stmt.num_refs) {
      return Status::Internal("thaw: derived ref_id out of range");
    }
    TableRef* leaf = stmt.leaves[static_cast<size_t>(ref_id)];
    if (leaf == nullptr || leaf->kind != TableRef::Kind::kDerived ||
        leaf->owner != block || leaf->derived == nullptr) {
      return Status::Internal("thaw: derived ref does not match structure");
    }
    TAURUS_ASSIGN_OR_RETURN(auto live_sub,
                            ThawBlock(sub, leaf->derived.get(), stmt));
    out->derived[leaf] = std::move(live_sub);
  }
  std::vector<Expr*> sub_exprs;
  CollectBlockSubqueries(block, &sub_exprs);
  if (sub_exprs.size() != frozen.subqueries.size()) {
    return Status::Internal("thaw: subquery count mismatch");
  }
  for (size_t i = 0; i < sub_exprs.size(); ++i) {
    TAURUS_ASSIGN_OR_RETURN(
        auto live_sub,
        ThawBlock(frozen.subqueries[i], sub_exprs[i]->subquery.get(), stmt));
    out->subqueries[sub_exprs[i]] = std::move(live_sub);
  }
  // The union continuation chain is recursive: union_arms holds at most the
  // immediate next arm, which carries its own continuation.
  if (frozen.union_arms.size() !=
      static_cast<size_t>(block->union_next != nullptr ? 1 : 0)) {
    return Status::Internal("thaw: union shape mismatch");
  }
  for (const auto& arm : frozen.union_arms) {
    TAURUS_ASSIGN_OR_RETURN(auto live_arm,
                            ThawBlock(arm, block->union_next.get(), stmt));
    out->union_arms.push_back(std::move(live_arm));
  }
  return out;
}

}  // namespace

Result<FrozenBlockSkeleton> FreezeSkeleton(const BlockSkeleton& skel) {
  TAURUS_FAULT_POINT("plan_cache.freeze");
  return FreezeBlock(skel);
}

Result<std::unique_ptr<BlockSkeleton>> ThawSkeleton(
    const FrozenBlockSkeleton& frozen, const BoundStatement& stmt) {
  TAURUS_FAULT_POINT("plan_cache.thaw");
  return ThawBlock(frozen, stmt.block.get(), stmt);
}

size_t PlanCache::ShardCountFor(size_t capacity) {
  if (capacity < kShardingThreshold) return 1;
  // Keep at least 8 slots per shard so per-shard LRU slices stay useful.
  return std::min(kMaxShards, capacity / 8);
}

PlanCache::PlanCache(size_t capacity)
    : capacity_(capacity), shard_count_(ShardCountFor(capacity)) {
  for (size_t i = 0; i < kMaxShards; ++i) {
    shards_[i].mu.SetRank(LockRank::kPlanCacheShard,
                          "engine.plan_cache.shard", static_cast<int>(i));
  }
  ApplyCapacityLocked(capacity);  // single-threaded in the constructor
}

std::shared_ptr<const PlanCacheEntry> PlanCache::Lookup(
    const std::string& key, uint64_t schema_version, uint64_t stats_version,
    uint64_t feedback_version) {
  Shard& shard = shards_[ShardIndex(key, shard_count())];
  {
    ReaderMutexLock lock(&shard.mu);
    auto it = shard.map.find(key);
    if (it == shard.map.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    PlanCacheEntry& entry = *it->second;
    bool fresh = entry.schema_version == schema_version &&
                 entry.stats_version == stats_version &&
                 entry.feedback_version == feedback_version;
    if (fresh) {
      // Hit path: shared lock only. Recency and hit count go through
      // atomic_ref because other readers race on the same fields.
      std::atomic_ref<uint64_t>(entry.last_used)
          .store(NextTick(), std::memory_order_relaxed);
      std::atomic_ref<int64_t>(entry.hit_count)
          .fetch_add(1, std::memory_order_relaxed);
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  // Stale entry: compiled against an older catalog (DDL/ANALYZE happened
  // since) or the fingerprint's feedback drift version moved past the
  // q-error threshold (DESIGN.md section 11). Escalate to the shard's
  // exclusive lock and re-check — rare, so hits never pay for it.
  uint64_t invalidated_fingerprint = 0;
  const char* invalidation_cause = nullptr;
  {
    WriterMutexLock lock(&shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      const PlanCacheEntry& entry = *it->second;
      bool version_stale = entry.schema_version != schema_version ||
                           entry.stats_version != stats_version;
      bool drift_stale =
          !version_stale && entry.feedback_version != feedback_version;
      if (version_stale || drift_stale) {
        // Which stamp moved decides the digest plan-epoch cause.
        invalidation_cause = drift_stale ? "drift"
                             : entry.schema_version != schema_version
                                 ? "ddl"
                                 : "analyze";
        invalidated_fingerprint = entry.fingerprint;
        shard.map.erase(it);
        (version_stale ? invalidations_ : drift_invalidations_)
            .fetch_add(1, std::memory_order_relaxed);
      }
    }
  }
  // The hook runs outside the shard lock: it feeds the leaf-ranked digest
  // store, and the invalidation is already committed above.
  if (invalidation_cause != nullptr && invalidation_hook_ != nullptr &&
      invalidated_fingerprint != 0) {
    invalidation_hook_(invalidated_fingerprint, invalidation_cause);
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void PlanCache::Insert(const std::string& key, PlanCacheEntry entry) {
  if (capacity() == 0) return;
  entry.last_used = NextTick();
  auto node = std::make_shared<PlanCacheEntry>(std::move(entry));
  Shard& shard = shards_[ShardIndex(key, shard_count())];
  WriterMutexLock lock(&shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    // Replace in place; readers holding the old shared_ptr keep a valid
    // (if superseded) entry.
    it->second = std::move(node);
    return;
  }
  shard.map.emplace(key, std::move(node));
  insertions_.fetch_add(1, std::memory_order_relaxed);
  EvictOverCapacityLocked(&shard);
}

void PlanCache::EvictOverCapacityLocked(Shard* shard) {
  while (shard->map.size() > shard->capacity) {
    auto victim = shard->map.begin();
    uint64_t victim_used =
        std::atomic_ref<uint64_t>(victim->second->last_used)
            .load(std::memory_order_relaxed);
    for (auto it = shard->map.begin(); it != shard->map.end(); ++it) {
      uint64_t used = std::atomic_ref<uint64_t>(it->second->last_used)
                          .load(std::memory_order_relaxed);
      if (used < victim_used) {
        victim = it;
        victim_used = used;
      }
    }
    shard->map.erase(victim);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void PlanCache::Clear() {
  for (auto& shard : shards_) {  // ascending index: the lock hierarchy
    WriterMutexLock lock(&shard.mu);
    shard.map.clear();
  }
}

size_t PlanCache::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    ReaderMutexLock lock(&shard.mu);
    total += shard.map.size();
  }
  return total;
}

void PlanCache::ApplyCapacityLocked(size_t capacity) {
  size_t new_count = ShardCountFor(capacity);
  size_t old_count = shard_count_.load(std::memory_order_relaxed);
  if (new_count != old_count) {
    // Re-shard: pull every entry out and re-home it under the new count.
    std::vector<std::pair<std::string, std::shared_ptr<PlanCacheEntry>>> all;
    for (auto& shard : shards_) {
      for (auto& [key, node] : shard.map) {
        all.emplace_back(key, std::move(node));
      }
      shard.map.clear();
    }
    shard_count_.store(new_count, std::memory_order_relaxed);
    for (auto& [key, node] : all) {
      shards_[ShardIndex(key, new_count)].map.emplace(key, std::move(node));
    }
  }
  capacity_.store(capacity, std::memory_order_relaxed);
  size_t base = new_count > 0 ? capacity / new_count : 0;
  size_t rem = new_count > 0 ? capacity % new_count : 0;
  for (size_t i = 0; i < kMaxShards; ++i) {
    shards_[i].capacity = i < new_count ? base + (i < rem ? 1 : 0) : 0;
  }
  for (size_t i = 0; i < new_count; ++i) {
    EvictOverCapacityLocked(&shards_[i]);
  }
}

// All-shard exclusive section, ascending index order. Holding a variable
// set of locks at once is inexpressible in the static analysis (opted out
// here); the LockRankRegistry checks the ascending-stripe order of this
// exact sweep at runtime (rule LR2).
void PlanCache::set_capacity(size_t capacity)
    TAURUS_NO_THREAD_SAFETY_ANALYSIS {
  std::array<std::unique_lock<SharedMutex>, kMaxShards> locks;
  for (size_t i = 0; i < kMaxShards; ++i) {
    locks[i] = std::unique_lock<SharedMutex>(shards_[i].mu);
  }
  ApplyCapacityLocked(capacity);
}

PlanCacheStats PlanCache::stats() const {
  PlanCacheStats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.insertions = insertions_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  out.invalidations = invalidations_.load(std::memory_order_relaxed);
  out.drift_invalidations =
      drift_invalidations_.load(std::memory_order_relaxed);
  return out;
}

void PlanCache::ResetStats() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
  insertions_.store(0, std::memory_order_relaxed);
  evictions_.store(0, std::memory_order_relaxed);
  invalidations_.store(0, std::memory_order_relaxed);
  drift_invalidations_.store(0, std::memory_order_relaxed);
}

}  // namespace taurus
