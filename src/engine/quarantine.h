#ifndef TAURUS_ENGINE_QUARANTINE_H_
#define TAURUS_ENGINE_QUARANTINE_H_

#include <atomic>
#include <cstdint>
#include <unordered_map>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace taurus {

/// Per-fingerprint quarantine registry for statements that repeatedly fail
/// the Orca detour (DESIGN.md section 7). Sits directly on the compile hot
/// path — every fingerprinted compile asks IsQuarantined — so the common
/// case (nothing quarantined) is a single relaxed atomic load with no lock
/// at all, and lookups against a non-empty table take only a shared lock.
/// Writes (recording a detour failure) are rare by construction: each one
/// means an optimizer bug or budget kill already happened.
///
/// The fast-path / shared / exclusive counters exist so the concurrency
/// stress test can assert the hot path never degraded to locking: with an
/// empty table, `shared_checks() == 0` across any number of sessions.
class QuarantineTable {
 public:
  QuarantineTable() = default;
  QuarantineTable(const QuarantineTable&) = delete;
  QuarantineTable& operator=(const QuarantineTable&) = delete;

  /// True when `fingerprint` has at least `failure_threshold` recorded
  /// failures and the catalog versions have not moved since (a DDL/ANALYZE
  /// version bump makes the entry stale, lifting the quarantine).
  bool IsQuarantined(uint64_t fingerprint, uint64_t schema_version,
                     uint64_t stats_version, int failure_threshold) const
      TAURUS_EXCLUDES(mu_);

  /// Counts one detour failure; an entry recorded under older catalog
  /// versions restarts from zero. Returns true when this failure is the
  /// one that crossed `failure_threshold` — the statement just entered
  /// quarantine (the digest store's plan-epoch signal).
  bool RecordFailure(uint64_t fingerprint, uint64_t schema_version,
                     uint64_t stats_version, int failure_threshold)
      TAURUS_EXCLUDES(mu_);

  void Clear() TAURUS_EXCLUDES(mu_);
  size_t Size() const;

  /// Lookups answered by the lock-free empty check alone.
  int64_t fast_path_checks() const {
    return fast_path_checks_.load(std::memory_order_relaxed);
  }
  /// Lookups that had to take the shared lock (table non-empty).
  int64_t shared_checks() const {
    return shared_checks_.load(std::memory_order_relaxed);
  }
  /// Writes (RecordFailure/Clear) that took the exclusive lock.
  int64_t exclusive_updates() const {
    return exclusive_updates_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    int failures = 0;
    uint64_t schema_version = 0;
    uint64_t stats_version = 0;
  };

  /// Mirrors map_.size(); maintained under the exclusive lock, read
  /// lock-free by IsQuarantined's empty fast path.
  std::atomic<size_t> size_{0};
  mutable SharedMutex mu_{LockRank::kQuarantine, "engine.quarantine"};
  std::unordered_map<uint64_t, Entry> map_ TAURUS_GUARDED_BY(mu_);

  mutable std::atomic<int64_t> fast_path_checks_{0};
  mutable std::atomic<int64_t> shared_checks_{0};
  mutable std::atomic<int64_t> exclusive_updates_{0};
};

}  // namespace taurus

#endif  // TAURUS_ENGINE_QUARANTINE_H_
