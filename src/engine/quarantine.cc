#include "engine/quarantine.h"

namespace taurus {

bool QuarantineTable::IsQuarantined(uint64_t fingerprint,
                                    uint64_t schema_version,
                                    uint64_t stats_version,
                                    int failure_threshold) const {
  // Empty-table fast path: one relaxed-atomic load, no lock. Acquire pairs
  // with the release store in RecordFailure so a non-zero size observes the
  // map contents that produced it.
  if (size_.load(std::memory_order_acquire) == 0) {
    fast_path_checks_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  shared_checks_.fetch_add(1, std::memory_order_relaxed);
  ReaderMutexLock lock(&mu_);
  auto it = map_.find(fingerprint);
  if (it == map_.end()) return false;
  const Entry& e = it->second;
  if (e.schema_version != schema_version || e.stats_version != stats_version) {
    // Versions moved (DDL/ANALYZE): the quarantine is lifted. The stale
    // entry stays until the next RecordFailure resets it — erasing here
    // would turn a read into a write on the hot path.
    return false;
  }
  return e.failures >= failure_threshold;
}

bool QuarantineTable::RecordFailure(uint64_t fingerprint,
                                    uint64_t schema_version,
                                    uint64_t stats_version,
                                    int failure_threshold) {
  exclusive_updates_.fetch_add(1, std::memory_order_relaxed);
  WriterMutexLock lock(&mu_);
  Entry& e = map_[fingerprint];
  if (e.schema_version != schema_version || e.stats_version != stats_version) {
    e = Entry{};
    e.schema_version = schema_version;
    e.stats_version = stats_version;
  }
  ++e.failures;
  size_.store(map_.size(), std::memory_order_release);
  return e.failures == failure_threshold;
}

void QuarantineTable::Clear() {
  exclusive_updates_.fetch_add(1, std::memory_order_relaxed);
  WriterMutexLock lock(&mu_);
  map_.clear();
  size_.store(0, std::memory_order_release);
}

size_t QuarantineTable::Size() const {
  return size_.load(std::memory_order_acquire);
}

}  // namespace taurus
