#ifndef TAURUS_ENGINE_EXPLAIN_H_
#define TAURUS_ENGINE_EXPLAIN_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "exec/op_actuals.h"
#include "exec/physical_plan.h"

namespace taurus {

/// Renders a compiled plan in MySQL's tree EXPLAIN format. Orca-assisted
/// plans are announced on the first line ("EXPLAIN (ORCA)", paper
/// Listing 7), cost/row estimates come from whichever optimizer produced
/// the skeleton, and correlated derived-table materialization carries the
/// "(invalidate on row from <table>)" annotation.
Result<std::string> RenderExplain(const CompiledQuery& query);

/// Measured execution behind an EXPLAIN ANALYZE render: the per-node
/// actuals map filled by the executor, plus query-level totals.
struct ExplainAnalyzeData {
  const OpActualsMap* actuals = nullptr;
  double execute_ms = 0.0;
  int64_t rows_returned = 0;
};

/// EXPLAIN ANALYZE: the tree EXPLAIN with every node additionally
/// annotated with "(actual rows=N loops=N time=T ms)" and its q-error
/// (max(est/act, act/est), 1-row floors) next to the optimizer's
/// estimates, followed by a per-position q-error section over the block's
/// best-position array (DESIGN.md section 10).
Result<std::string> RenderExplainAnalyze(const CompiledQuery& query,
                                         const ExplainAnalyzeData& data);

/// Machine-readable EXPLAIN ANALYZE: one JSON object with query-level
/// totals and a recursive plan tree carrying est_rows/est_cost/
/// actual_rows/loops/time_ms/q_error per node.
Result<std::string> ExplainAnalyzeJson(const CompiledQuery& query,
                                       const ExplainAnalyzeData& data);

}  // namespace taurus

#endif  // TAURUS_ENGINE_EXPLAIN_H_
