#ifndef TAURUS_ENGINE_EXPLAIN_H_
#define TAURUS_ENGINE_EXPLAIN_H_

#include <string>

#include "common/result.h"
#include "exec/physical_plan.h"

namespace taurus {

/// Renders a compiled plan in MySQL's tree EXPLAIN format. Orca-assisted
/// plans are announced on the first line ("EXPLAIN (ORCA)", paper
/// Listing 7), cost/row estimates come from whichever optimizer produced
/// the skeleton, and correlated derived-table materialization carries the
/// "(invalidate on row from <table>)" annotation.
Result<std::string> RenderExplain(const CompiledQuery& query);

}  // namespace taurus

#endif  // TAURUS_ENGINE_EXPLAIN_H_
