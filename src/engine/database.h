#ifndef TAURUS_ENGINE_DATABASE_H_
#define TAURUS_ENGINE_DATABASE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "bridge/orca_path.h"
#include "bridge/router.h"
#include "catalog/catalog.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/clock.h"
#include "common/resource_budget.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "engine/plan_cache.h"
#include "engine/quarantine.h"
#include "exec/exec_context.h"
#include "exec/exec_profile.h"
#include "exec/op_actuals.h"
#include "exec/physical_plan.h"
#include "feedback/feedback_store.h"
#include "frontend/prepare.h"
#include "mdp/provider.h"
#include "obs/digest_store.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "orca/orca.h"
#include "storage/storage.h"

namespace taurus {

/// Which optimizer compiles a query.
enum class OptimizerPath {
  kAuto,   ///< route by the complex-query threshold (the integration)
  kMySql,  ///< force the native MySQL-style optimizer
  kOrca,   ///< force the Orca detour (no threshold check)
};

/// Result of one query execution, with compile/execute instrumentation.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<Row> rows;
  bool used_orca = false;
  double optimize_ms = 0.0;
  double execute_ms = 0.0;
  int64_t rows_scanned = 0;
  int64_t index_lookups = 0;
  int64_t rebinds = 0;
  /// True when the skeleton plan came from the engine's plan cache.
  bool plan_cache_hit = false;
  /// Optimizer time avoided by the cache hit (cold compile time minus this
  /// compile's); 0 on misses.
  double optimize_saved_ms = 0.0;
  /// True when the Orca detour failed (at compile or under the executor
  /// budget) and the query was served by the MySQL path instead.
  bool fell_back = false;
  /// The detour failure behind `fell_back` ("" otherwise).
  std::string fallback_reason;
  /// True when the detour was skipped because the statement is quarantined.
  bool quarantine_hit = false;
  /// Widest worker count any pipeline of this query actually used
  /// (1 = everything ran serial).
  int parallel_workers_used = 1;
  /// How many pipelines ran through the morsel-driven parallel executor.
  int parallel_pipelines = 0;
  /// How many pipelines (or grafted pipeline segments) ran vectorized
  /// through the batch executor (DESIGN.md section 13).
  int batch_pipelines = 0;
  /// Batches emitted / selected rows carried by those batches.
  int64_t batches = 0;
  int64_t batch_rows = 0;
  /// Plan-verifier summary: rule evaluations across every boundary verifier
  /// that ran for this query (compile-time passes plus the exec-budget
  /// arming check), and how many fired.
  int verifier_rules = 0;
  int verifier_violations = 0;
  /// True when this execution's actuals were folded into the feedback store
  /// (feedback enabled, fingerprinted, not quarantined).
  bool feedback_harvested = false;
  /// True when the harvest bumped the fingerprint's drift version — its
  /// cached skeleton will be evicted and re-optimized with actuals.
  bool feedback_version_bumped = false;
  /// Max q-error observed across this execution's harvested nodes (1.0
  /// when nothing was harvested).
  double feedback_max_q_error = 1.0;
  /// Optimizer cardinalities served from harvested actuals / sketches
  /// during this query's compile (0 on cache hits and the MySQL path).
  int64_t feedback_actual_overrides = 0;
  int64_t feedback_sketch_overrides = 0;
  /// --- Session/admission state (set by the src/server/ layer; always
  /// default for queries issued directly against the Database) ---
  /// True when the admission controller shed this query onto the cheap
  /// MySQL path under overload (DESIGN.md section 12).
  bool shed = false;
  /// True when the query waited in the admission queue before running.
  bool admission_queued = false;
  /// Wall time spent waiting for admission.
  double admission_wait_ms = 0.0;
  /// --- Workload introspection (DESIGN.md section 15) ---
  /// Per-worker morsel timing (busy/idle/morsels, batch vs Volcano rows);
  /// enabled iff ExecutorConfig::enable_profiling.
  ExecProfile profile;
  /// This query's flight-recorder event id (0 when the recorder is off);
  /// SHOW PROFILE FOR <flight_seq> replays the profile later.
  uint64_t flight_seq = 0;
};

/// Per-query overrides supplied by the session layer (src/server/). Plain
/// Database::Query calls use the defaults, which change nothing.
struct QueryOptions {
  /// Caps the worker count for this execution (the admission controller's
  /// worker-token lease). 0 = no cap (engine knob), 1 = force serial.
  int worker_cap = 0;
  /// Traces this query even when the engine-wide knob is off (per-session
  /// tracing).
  bool trace = false;
  /// When set (with tracing on), the query's tracer is also retained here —
  /// the per-session trace slot, immune to other sessions' clobbering.
  std::shared_ptr<Tracer>* trace_slot = nullptr;

  // --- Session/admission attribution (set by src/server/ so the digest
  // store and flight recorder can attribute the event; defaults = a direct
  // Database call) ---
  /// Issuing session id (0 = no session).
  uint64_t session_id = 0;
  /// The admission controller shed this query onto the MySQL path; the
  /// engine folds this into QueryResult::shed / fell_back / fallback_reason.
  bool shed = false;
  /// What tripped the shed ("" when !shed), e.g. "queue_full".
  std::string shed_cause;
  /// The query waited in the admission queue for `admission_wait_ms`.
  bool admission_queued = false;
  double admission_wait_ms = 0.0;
};

/// Morsel-driven parallel executor knobs (see DESIGN.md section 8).
struct ExecutorConfig {
  /// Worker threads for eligible pipelines; 0 = hardware_concurrency,
  /// 1 = exactly today's serial executor.
  int parallel_workers = 0;
  /// Rows per morsel carved from the driving table scan.
  int64_t morsel_rows = 2048;
  /// Pipelines whose driving table has fewer rows stay serial, so short
  /// OLTP-style queries never pay pool hand-off overhead.
  int64_t parallel_min_driver_rows = 32768;

  // Vectorized batch execution (see DESIGN.md section 13).
  /// Run batch-eligible pipelines (and grafted segments) batch-at-a-time;
  /// off = exactly the row-at-a-time Volcano executor.
  bool enable_batch = true;
  /// Target rows per batch (clamped to >= 1).
  int64_t batch_size = 1024;

  /// Per-worker morsel timing (busy/idle, morsels claimed, batch vs
  /// Volcano rows) folded into QueryResult::profile and the
  /// taurus.exec.profile.* gauges (DESIGN.md section 15). Two clock reads
  /// per morsel when on; off skips all bookkeeping.
  bool enable_profiling = true;
};

/// Policy for quarantining statements that repeatedly fail the Orca detour:
/// after `failure_threshold` failures the auto route stops attempting Orca
/// for that statement fingerprint until a schema/stats version bump (DDL or
/// ANALYZE), which also invalidates cached plans.
struct QuarantineConfig {
  bool enable = true;
  int failure_threshold = 3;
};

/// Snapshot of the fault-containment counters (degradation observability):
/// how often the detour runs, fails, gets budget-killed, or is skipped.
/// The live counters are the atomic `taurus.health.*` entries of the
/// engine's metrics registry; this struct is a point-in-time copy read via
/// Database::optimizer_health().
struct OptimizerHealth {
  int64_t detours_attempted = 0;  ///< compiles that entered the Orca detour
  int64_t detours_failed = 0;     ///< detours that errored (any cause)
  int64_t fallbacks = 0;          ///< auto-route recoveries via the MySQL path
  int64_t budget_kills = 0;       ///< detours killed by the optimize budget
  int64_t exec_budget_kills = 0;  ///< Orca plans killed mid-execution
  int64_t quarantine_hits = 0;    ///< compiles that skipped Orca (quarantine)
};

/// Per-query pipeline tracing knobs. Off by default: the tracer is only
/// allocated when enabled, and every instrumented code path carries a
/// null-check-only ScopedSpan, so disabled tracing costs nothing
/// measurable.
struct TraceConfig {
  bool enable = false;
  /// Span clock; null = the process steady clock. Tests inject a FakeClock
  /// to assert exact span trees and durations.
  const Clock* clock = nullptr;
};

/// The embedded database engine: catalog + storage + both optimizers +
/// executor, wired together exactly as Fig. 3 of the paper — SQL arrives,
/// is parsed and prepared, routed either through the MySQL optimizer or
/// through the Orca detour (parse tree converter, Orca, plan converter),
/// and the resulting skeleton is refined and executed by the MySQL-style
/// executor. A failed Orca conversion falls back to the MySQL optimizer.
///
/// Concurrency contract (DESIGN.md section 12): N threads may call
/// Query/Compile/Explain* concurrently — the plan cache is lock-striped,
/// quarantine and feedback lookups are read-mostly, metrics are atomic,
/// and per-query state lives on the stack or in ExecContext. Everything
/// else must be quiesced while queries are in flight: DDL/INSERT/ANALYZE,
/// config-knob writes, and Clear()-style maintenance calls are
/// single-threaded operations, exactly like MySQL's LOCK TABLES barrier.
/// The `last_*` accessors are most-recent views for single-session
/// callers; concurrent sessions read their own QueryResult / Session
/// trace slot instead.
class Database {
 public:
  Database() : mdp_(catalog_) {
    BindCounters();
    // Cached-skeleton invalidations (DDL / ANALYZE / feedback drift) open a
    // new plan epoch in the statement's digest, so before/after latency
    // splits survive the eviction (DESIGN.md section 15).
    plan_cache_.SetInvalidationHook([this](uint64_t fp, const char* cause) {
      digest_store_.BumpEpoch(fp, cause);
    });
  }
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // --- DDL / data ---

  /// Executes a non-SELECT statement (CREATE TABLE / CREATE INDEX /
  /// INSERT / ANALYZE).
  Status ExecuteSql(const std::string& sql);

  /// Bulk-appends rows and rebuilds the table's indexes.
  Status BulkLoad(const std::string& table, std::vector<Row> rows);

  /// Recomputes statistics (row counts, NDVs, histograms) for one table.
  Status Analyze(const std::string& table);
  /// ANALYZE every table.
  Status AnalyzeAll();

  // --- Queries ---

  /// Compiles a SELECT: parse -> bind -> prepare -> optimize (per `path`,
  /// with Orca fallback) -> refine.
  Result<std::unique_ptr<CompiledQuery>> Compile(
      const std::string& sql, OptimizerPath path = OptimizerPath::kAuto);

  /// Compiles and executes a SELECT. Also accepts `SHOW STATUS [LIKE
  /// 'pattern']` (alias: SHOW METRICS), answered from the metrics registry
  /// as Variable_name/Value rows.
  Result<QueryResult> Query(const std::string& sql,
                            OptimizerPath path = OptimizerPath::kAuto);

  /// Query with per-query session overrides (worker-token cap, per-session
  /// trace slot). The src/server/ layer calls this form.
  Result<QueryResult> Query(const std::string& sql, OptimizerPath path,
                            const QueryOptions& options);

  /// MySQL-style tree EXPLAIN; the first line marks Orca-assisted plans.
  Result<std::string> Explain(const std::string& sql,
                              OptimizerPath path = OptimizerPath::kAuto);

  /// EXPLAIN ANALYZE: executes the query collecting per-node actuals, then
  /// renders the plan with actual rows / loops / wall time and q-error next
  /// to the optimizer's estimates (DESIGN.md section 10).
  Result<std::string> ExplainAnalyze(const std::string& sql,
                                     OptimizerPath path = OptimizerPath::kAuto);

  /// EXPLAIN ANALYZE as one machine-readable JSON object.
  Result<std::string> ExplainAnalyzeJsonDump(
      const std::string& sql, OptimizerPath path = OptimizerPath::kAuto);

  // --- Configuration ---
  RouterConfig& router_config() { return router_config_; }
  OrcaConfig& orca_config() { return orca_config_; }
  PrepareOptions& prepare_options() { return prepare_options_; }
  PlanCacheConfig& plan_cache_config() { return plan_cache_config_; }
  ResourceBudgetConfig& resource_budget() { return resource_budget_; }
  QuarantineConfig& quarantine_config() { return quarantine_config_; }
  ExecutorConfig& exec_config() { return exec_config_; }
  /// Cardinality-feedback loop knobs (off by default; DESIGN.md section
  /// 11). The store reads this object live, so knob changes apply to the
  /// next query.
  FeedbackConfig& feedback_config() { return feedback_config_; }
  /// Cross-layer plan verifier knobs (always-on in Debug/sanitizer builds,
  /// opt-in in Release).
  PlanVerifyConfig& verify_config() { return verify_config_; }
  /// Per-query pipeline tracing knobs (off by default).
  TraceConfig& trace_config() { return trace_config_; }
  /// Statement-digest store knobs (`digest_capacity` etc.; DESIGN.md
  /// section 15). The store reads this object live.
  DigestStoreConfig& digest_config() { return digest_config_; }
  /// Flight-recorder knobs (`flight_recorder_capacity`,
  /// `pin_aborted_traces`). The recorder reads this object live.
  FlightRecorderConfig& flight_recorder_config() { return flight_config_; }

  // --- Observability ---

  /// This engine's metrics registry: every counter/gauge/histogram under
  /// `taurus.<subsystem>.<name>` naming. Per-instance (deterministic in
  /// tests); MetricsRegistry::Global() exists for process-wide consumers.
  MetricsRegistry& metrics() { return metrics_; }

  /// All registry metrics as one JSON object (gauges synced first).
  std::string MetricsJson();

  /// The trace of the most recent traced Query/Compile/ExplainAnalyze, or
  /// null when tracing is disabled. Single-session convenience: under
  /// concurrent sessions this is whichever traced query published last —
  /// sessions keep their own trace via QueryOptions::trace_slot
  /// (Session::last_trace()). The pointer stays valid until the next
  /// traced query replaces it.
  const Tracer* last_trace() const {
    MutexLock lock(&state_mu_);
    return last_tracer_.get();
  }
  /// Shared handle to the same trace (does not dangle when another session
  /// publishes a newer one).
  std::shared_ptr<const Tracer> last_trace_shared() const {
    MutexLock lock(&state_mu_);
    return last_tracer_;
  }

  /// The skeleton-plan cache (exposed for stats, Clear() and capacity
  /// tuning in tests and benches).
  PlanCache& plan_cache() { return plan_cache_; }
  const PlanCache& plan_cache() const { return plan_cache_; }

  /// The execution-feedback store (exposed for stats and Clear() in tests).
  FeedbackStore& feedback_store() { return feedback_store_; }
  const FeedbackStore& feedback_store() const { return feedback_store_; }

  /// The statement-digest performance-schema table (SHOW DIGESTS).
  DigestStore& digest_store() { return digest_store_; }
  const DigestStore& digest_store() const { return digest_store_; }
  /// The flight recorder's recent-query ring (SHOW FLIGHT RECORDER).
  FlightRecorder& flight_recorder() { return flight_recorder_; }
  const FlightRecorder& flight_recorder() const { return flight_recorder_; }

  /// Digest-store snapshot as one JSON object (machine-readable SHOW
  /// DIGESTS; schema validated by scripts/validate_obs_json.py).
  std::string DigestsJson();
  /// Flight-recorder snapshot as one JSON object, oldest event first.
  std::string FlightRecorderJson();

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }
  Storage& storage() { return storage_; }
  MetadataProvider& mdp() { return mdp_; }

  /// Metrics from the most recent Orca-path compilation (most-recent view;
  /// returned by value so the copy is internally consistent even when
  /// another session compiles concurrently).
  OrcaPathMetrics last_orca_metrics() const {
    MutexLock lock(&state_mu_);
    return last_orca_metrics_;
  }
  /// True when the most recent kAuto/kOrca compile fell back to MySQL
  /// (most-recent view; concurrent sessions read QueryResult::fell_back).
  bool last_compile_fell_back() const {
    MutexLock lock(&state_mu_);
    return last_fell_back_;
  }

  /// Snapshot of the fault-containment counters since construction (or the
  /// last reset), read from the `taurus.health.*` registry counters.
  OptimizerHealth optimizer_health() const;
  void ResetOptimizerHealth();

  /// True when `fingerprint_hash` has reached the quarantine threshold and
  /// the catalog versions have not moved since.
  bool IsQuarantined(uint64_t fingerprint_hash) const;
  /// Drops all quarantine state (tests; ANALYZE/DDL clear it naturally).
  void ClearQuarantine() { quarantine_.Clear(); }
  /// The quarantine registry (exposed for the stress test's no-contention
  /// assertions and gauge sync).
  const QuarantineTable& quarantine_table() const { return quarantine_; }

 private:
  /// Compile with the cache consulted (or bypassed, for the recovery path
  /// after a thaw mismatch). `tracer` may be null (tracing disabled).
  Result<std::unique_ptr<CompiledQuery>> CompileInternal(
      const std::string& sql, OptimizerPath path, bool use_cache,
      Tracer* tracer);

  /// Replays the route's deterministic AST rewrites onto a freshly bound
  /// statement, thaws the cached skeleton and refines it.
  Result<std::unique_ptr<CompiledQuery>> CompileFromCacheEntry(
      const PlanCacheEntry& entry, BoundStatement stmt, Tracer* tracer);

  /// Observability state gathered across one query, whatever its exit path
  /// (success, compile error, budget kill). QueryPipeline fills it in as
  /// facts become known; RecordQueryObservability folds it into the digest
  /// store, flight recorder and profile gauges exactly once per query.
  struct QueryObs {
    std::shared_ptr<Tracer> tracer;  ///< pinned on aborted/shed/fallback
    uint64_t fingerprint = 0;        ///< 0 until the statement fingerprints
    std::string canonical;
    bool used_orca = false;
    bool fell_back = false;
    bool quarantine_hit = false;
    bool plan_cache_hit = false;
    double optimize_ms = 0.0;
    ExecProfile profile;  ///< armed into ExecContext when profiling is on
  };

  /// Query with optional per-node actuals collection (EXPLAIN ANALYZE) and
  /// the final compiled plan handed back through `compiled_out`.
  Result<QueryResult> QueryInternal(const std::string& sql, OptimizerPath path,
                                    const QueryOptions& options,
                                    OpActualsMap* actuals,
                                    std::unique_ptr<CompiledQuery>* compiled_out);

  /// The pre-introspection body of QueryInternal: compile + execute,
  /// depositing observability facts into `obs` on every exit path.
  Result<QueryResult> QueryPipeline(const std::string& sql, OptimizerPath path,
                                    const QueryOptions& options,
                                    OpActualsMap* actuals,
                                    std::unique_ptr<CompiledQuery>* compiled_out,
                                    QueryObs* obs);

  /// Folds one finished query (success or failure) into the digest store,
  /// flight recorder and taurus.exec.profile.* gauges. Returns the
  /// flight-recorder seq (0 when the recorder is off).
  uint64_t RecordQueryObservability(const QueryOptions& options,
                                    const Result<QueryResult>& result,
                                    QueryObs* obs);

  /// SHOW STATUS [LIKE 'pattern']: registry snapshot as result rows.
  Result<QueryResult> ShowStatus(const std::string& pattern);
  /// SHOW DIGESTS [LIKE 'pattern'] (pattern matches the canonical
  /// statement text): digest-store snapshot, hottest digests first.
  Result<QueryResult> ShowDigests(const std::string& pattern);
  /// SHOW FLIGHT RECORDER: the recent-query ring, newest event first,
  /// pinned span trees included.
  Result<QueryResult> ShowFlightRecorder();
  /// SHOW PROFILE FOR <seq>: per-worker executor profile of one recorded
  /// event (busy/idle ms, morsels, batch vs Volcano rows).
  Result<QueryResult> ShowProfile(uint64_t seq);

  /// Starts a fresh per-query trace when tracing is enabled (engine knob or
  /// options.trace); returns null (and drops the "most recent" slot)
  /// otherwise. The caller must hold the returned shared_ptr for the
  /// query's duration — the member slot can be republished by a concurrent
  /// session at any time.
  std::shared_ptr<Tracer> BeginTrace(const QueryOptions& options);

  /// Publishes the most-recent-compile fallback flag (single-session view).
  void SetLastFellBack(bool fell_back) {
    MutexLock lock(&state_mu_);
    last_fell_back_ = fell_back;
  }

  /// Resolves the engine's registry counters/histograms once (ctor).
  void BindCounters();

  /// Copies point-in-time values (plan-cache stats, quarantine size) into
  /// their registry gauges before a dump.
  void SyncGaugeMetrics();

  /// Cache key: statement fingerprint + requested path + the router/Orca
  /// configuration that steers optimization after fingerprinting.
  std::string MakeCacheKey(const std::string& canonical,
                           OptimizerPath path) const;

  /// Counts one detour failure against `fingerprint_hash`; entries reset
  /// when the catalog versions move (so ANALYZE/DDL clear quarantines).
  void RecordDetourFailure(uint64_t fingerprint_hash);

  /// Arms `ctx` for one execution attempt: the exec resource budget (Orca
  /// detour plans only) plus the parallel-executor knobs and worker pool
  /// (created lazily, resized when the knob changes). `worker_cap` > 0
  /// clamps the degree of parallelism (the admission worker-token lease).
  void ArmExecContext(ExecContext* ctx, bool used_orca, int worker_cap);

  /// The shared worker pool sized by the executor knob; creation/resize is
  /// serialized, and in-flight queries keep a retired pool alive through
  /// ExecContext::pool_owner.
  std::shared_ptr<ThreadPool> GetPool(int workers);

  /// Registry-backed engine counters, resolved once at construction so the
  /// hot paths increment atomics directly instead of re-hashing names.
  struct EngineCounters {
    Counter* detours_attempted = nullptr;
    Counter* detours_failed = nullptr;
    Counter* fallbacks = nullptr;
    Counter* budget_kills = nullptr;
    Counter* exec_budget_kills = nullptr;
    Counter* quarantine_hits = nullptr;
    Counter* cache_hits = nullptr;
    Counter* cache_misses = nullptr;
    Counter* verifier_rules = nullptr;
    Counter* verifier_violations = nullptr;
    Counter* queries = nullptr;
    Counter* query_errors = nullptr;
    Counter* parallel_queries = nullptr;
    Counter* parallel_pipelines = nullptr;
    Counter* batch_pipelines = nullptr;
    Counter* batches = nullptr;
    Counter* batch_rows = nullptr;
    Counter* exec_rows_scanned = nullptr;
    Counter* exec_index_lookups = nullptr;
    Counter* feedback_harvests = nullptr;
    Counter* feedback_drift_bumps = nullptr;
    Counter* feedback_actual_overrides = nullptr;
    Counter* feedback_sketch_overrides = nullptr;
    Counter* profile_pipelines = nullptr;
    Counter* profile_morsels = nullptr;
    Gauge* profile_last_busy_ms = nullptr;
    Gauge* profile_last_idle_ms = nullptr;
    Gauge* profile_last_workers = nullptr;
    LatencyHistogram* optimize_ms = nullptr;
    LatencyHistogram* execute_ms = nullptr;
  };

  Catalog catalog_;
  Storage storage_;
  MetadataProvider mdp_;
  RouterConfig router_config_;
  OrcaConfig orca_config_;
  PrepareOptions prepare_options_;
  PlanCacheConfig plan_cache_config_;
  PlanCache plan_cache_{PlanCacheConfig().capacity};
  ResourceBudgetConfig resource_budget_;
  QuarantineConfig quarantine_config_;
  ExecutorConfig exec_config_;
  FeedbackConfig feedback_config_;
  FeedbackStore feedback_store_{feedback_config_};
  PlanVerifyConfig verify_config_;
  TraceConfig trace_config_;
  MetricsRegistry metrics_;
  EngineCounters counters_;
  QuarantineTable quarantine_;
  DigestStoreConfig digest_config_;
  DigestStore digest_store_{digest_config_};
  FlightRecorderConfig flight_config_;
  FlightRecorder flight_recorder_{flight_config_};

  /// Guards the "most recent" single-session views (trace, Orca metrics,
  /// fallback flag). Leaf rank 100: nothing else is acquired under it.
  mutable Mutex state_mu_{LockRank::kDatabaseState, "engine.state"};
  std::shared_ptr<Tracer> last_tracer_ TAURUS_GUARDED_BY(state_mu_);
  OrcaPathMetrics last_orca_metrics_ TAURUS_GUARDED_BY(state_mu_);
  bool last_fell_back_ TAURUS_GUARDED_BY(state_mu_) = false;

  /// Guards pool creation/resize; queries pin the pool via shared_ptr.
  /// Rank 60, deliberately below the thread pool's rank 70: replacing the
  /// pool destroys the old ThreadPool under this lock, which acquires
  /// ThreadPool::mu_ for shutdown — the one sanctioned cross-class
  /// nesting (DESIGN.md section 12 rank table).
  Mutex pool_mu_{LockRank::kPoolGate, "engine.pool_gate"};
  std::shared_ptr<ThreadPool> pool_ TAURUS_GUARDED_BY(pool_mu_);
};

}  // namespace taurus

#endif  // TAURUS_ENGINE_DATABASE_H_
