#include "types/datetime.h"

#include <cstdio>

namespace taurus {

int64_t CivilToDays(int y, int m, int d) {
  // Howard Hinnant's days_from_civil.
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);
  const unsigned doy =
      (153u * static_cast<unsigned>(m + (m > 2 ? -3 : 9)) + 2u) / 5u +
      static_cast<unsigned>(d) - 1u;
  const unsigned doe = yoe * 365u + yoe / 4u - yoe / 100u + doy;
  return static_cast<int64_t>(era) * 146097 + static_cast<int64_t>(doe) -
         719468;
}

void DaysToCivil(int64_t z, int* year, int* month, int* day) {
  // Howard Hinnant's civil_from_days.
  z += 719468;
  const int64_t era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int64_t y = static_cast<int64_t>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : -9);
  *year = static_cast<int>(y + (m <= 2));
  *month = static_cast<int>(m);
  *day = static_cast<int>(d);
}

namespace {

bool ParseInt(std::string_view s, size_t pos, size_t len, int* out) {
  if (pos + len > s.size()) return false;
  int v = 0;
  for (size_t i = pos; i < pos + len; ++i) {
    if (s[i] < '0' || s[i] > '9') return false;
    v = v * 10 + (s[i] - '0');
  }
  *out = v;
  return true;
}

int DaysInMonth(int year, int month) {
  static const int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (month == 2) {
    bool leap = (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
    return leap ? 29 : 28;
  }
  return kDays[month - 1];
}

}  // namespace

Result<int64_t> ParseDate(std::string_view text) {
  int y, m, d;
  if (text.size() < 10 || text[4] != '-' || text[7] != '-' ||
      !ParseInt(text, 0, 4, &y) || !ParseInt(text, 5, 2, &m) ||
      !ParseInt(text, 8, 2, &d) || m < 1 || m > 12 || d < 1 ||
      d > DaysInMonth(y, m)) {
    return Status::InvalidArgument("bad DATE literal: " + std::string(text));
  }
  return CivilToDays(y, m, d);
}

Result<int64_t> ParseDatetime(std::string_view text) {
  TAURUS_ASSIGN_OR_RETURN(int64_t days, ParseDate(text.substr(0, 10)));
  int64_t secs = days * 86400;
  if (text.size() > 10) {
    int hh, mm, ss;
    if (text.size() < 19 || (text[10] != ' ' && text[10] != 'T') ||
        !ParseInt(text, 11, 2, &hh) || !ParseInt(text, 14, 2, &mm) ||
        !ParseInt(text, 17, 2, &ss) || hh > 23 || mm > 59 || ss > 59) {
      return Status::InvalidArgument("bad DATETIME literal: " +
                                     std::string(text));
    }
    secs += hh * 3600 + mm * 60 + ss;
  }
  return secs;
}

std::string FormatDate(int64_t days) {
  int y, m, d;
  DaysToCivil(days, &y, &m, &d);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
  return buf;
}

std::string FormatDatetime(int64_t seconds) {
  int64_t days = seconds >= 0 ? seconds / 86400
                              : (seconds - 86399) / 86400;  // floor division
  int64_t rem = seconds - days * 86400;
  int y, m, d;
  DaysToCivil(days, &y, &m, &d);
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d:%02d", y, m, d,
                static_cast<int>(rem / 3600), static_cast<int>(rem / 60 % 60),
                static_cast<int>(rem % 60));
  return buf;
}

int64_t AddIntervalToDate(int64_t days, int64_t amount, IntervalUnit unit) {
  if (unit == IntervalUnit::kDay) return days + amount;
  int y, m, d;
  DaysToCivil(days, &y, &m, &d);
  int64_t months = (unit == IntervalUnit::kYear) ? amount * 12 : amount;
  int64_t total = static_cast<int64_t>(y) * 12 + (m - 1) + months;
  int ny = static_cast<int>(total / 12);
  int nm = static_cast<int>(total % 12) + 1;
  if (nm <= 0) {  // handle negative month remainder
    nm += 12;
    ny -= 1;
  }
  int nd = d;
  int dim = DaysInMonth(ny, nm);
  if (nd > dim) nd = dim;
  return CivilToDays(ny, nm, nd);
}

int ExtractYear(int64_t days) {
  int y, m, d;
  DaysToCivil(days, &y, &m, &d);
  return y;
}

int ExtractMonth(int64_t days) {
  int y, m, d;
  DaysToCivil(days, &y, &m, &d);
  return m;
}

int ExtractDay(int64_t days) {
  int y, m, d;
  DaysToCivil(days, &y, &m, &d);
  return d;
}

}  // namespace taurus
