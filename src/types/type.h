#ifndef TAURUS_TYPES_TYPE_H_
#define TAURUS_TYPES_TYPE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"

namespace taurus {

/// The 31 MySQL field types (mirrors MySQL's enum_field_types). The paper's
/// metadata provider groups these 31 types into 12 type categories
/// (Section 5.1) to keep the expression OID space manageable.
enum class TypeId : uint8_t {
  kDecimal = 0,
  kTiny,
  kShort,
  kLong,
  kFloat,
  kDouble,
  kNull,
  kTimestamp,
  kLongLong,
  kInt24,
  kDate,
  kTime,
  kDatetime,
  kYear,
  kNewDate,
  kVarchar,
  kBit,
  kTimestamp2,
  kDatetime2,
  kTime2,
  kJson,
  kNewDecimal,
  kEnum,
  kSet,
  kTinyBlob,
  kMediumBlob,
  kLongBlob,
  kBlob,
  kVarString,
  kString,
  kGeometry,
};

/// Number of distinct TypeId values.
inline constexpr int kNumTypeIds = 31;

/// The 12 type categories of the metadata provider (Section 5.1), plus the
/// two aggregation-only pseudo-categories STAR (COUNT(*)) and ANY
/// (COUNT(expr)), for a total of 14. The INT category was split into
/// INT2/INT4/INT8 so that Orca can match indexes on integer-like columns
/// (Section 7, lessons learned).
enum class TypeCategory : uint8_t {
  kInt2 = 0,  // TINY, SHORT, YEAR
  kInt4,      // INT24, LONG, ENUM
  kInt8,      // LONGLONG, SET
  kNum,       // DECIMAL, NEWDECIMAL, FLOAT, DOUBLE
  kBit,       // BIT
  kStr,       // VARCHAR, VAR_STRING, STRING
  kBlb,       // TINY/MEDIUM/LONG/plain BLOB
  kDte,       // DATE, NEWDATE
  kTim,       // TIME, TIME2
  kDtm,       // DATETIME(2), TIMESTAMP(2), and the NULL placeholder type
  kJsn,       // JSON
  kGeo,       // GEOMETRY
  kStar,      // aggregation-only: COUNT(*)
  kAny,       // aggregation-only: COUNT(expr) for any expr type
};

/// Number of regular type categories (excludes STAR/ANY).
inline constexpr int kNumRegularTypeCategories = 12;
/// Number of categories including the aggregation-only STAR and ANY.
inline constexpr int kNumAggTypeCategories = 14;

/// Maps a concrete MySQL type to its metadata-provider category.
TypeCategory CategoryOf(TypeId type);

/// Short uppercase category label ("INT4", "NUM", "STR", ...), as used in
/// expression names such as STR_EQ_STR (Section 5.7).
const char* TypeCategoryName(TypeCategory cat);

/// Lowercase SQL-ish name of a type ("int", "varchar", "date", ...).
const char* TypeIdName(TypeId type);

/// True for the three string types (STR category).
bool IsStringType(TypeId type);
/// True for the integer-like categories INT2/INT4/INT8.
bool IsIntegerType(TypeId type);
/// True for NUM category types.
bool IsNumericType(TypeId type);
/// True for temporal types (DATE/TIME/DATETIME/TIMESTAMP families, YEAR).
bool IsTemporalType(TypeId type);

/// Fixed-width byte length of a type's storage, or -1 for variable-length
/// types. Reported to Orca by the metadata provider.
int TypeFixedLength(TypeId type);

/// Whether values of this type are pass-by-value in the metadata-provider
/// sense (fits into a machine word).
bool TypePassByValue(TypeId type);

/// Parses a SQL type name ("INT", "BIGINT", "VARCHAR", "DECIMAL", ...) into
/// a TypeId. Used by the DDL parser.
Result<TypeId> TypeIdFromSqlName(std::string_view name);

}  // namespace taurus

#endif  // TAURUS_TYPES_TYPE_H_
