#include "types/type.h"

#include "common/strings.h"

namespace taurus {

TypeCategory CategoryOf(TypeId type) {
  switch (type) {
    case TypeId::kTiny:
    case TypeId::kShort:
    case TypeId::kYear:
      return TypeCategory::kInt2;
    case TypeId::kInt24:
    case TypeId::kLong:
    case TypeId::kEnum:
      return TypeCategory::kInt4;
    case TypeId::kLongLong:
    case TypeId::kSet:
      return TypeCategory::kInt8;
    case TypeId::kDecimal:
    case TypeId::kNewDecimal:
    case TypeId::kFloat:
    case TypeId::kDouble:
      return TypeCategory::kNum;
    case TypeId::kBit:
      return TypeCategory::kBit;
    case TypeId::kVarchar:
    case TypeId::kVarString:
    case TypeId::kString:
      return TypeCategory::kStr;
    case TypeId::kTinyBlob:
    case TypeId::kMediumBlob:
    case TypeId::kLongBlob:
    case TypeId::kBlob:
      return TypeCategory::kBlb;
    case TypeId::kDate:
    case TypeId::kNewDate:
      return TypeCategory::kDte;
    case TypeId::kTime:
    case TypeId::kTime2:
      return TypeCategory::kTim;
    case TypeId::kDatetime:
    case TypeId::kDatetime2:
    case TypeId::kTimestamp:
    case TypeId::kTimestamp2:
    case TypeId::kNull:
      return TypeCategory::kDtm;
    case TypeId::kJson:
      return TypeCategory::kJsn;
    case TypeId::kGeometry:
      return TypeCategory::kGeo;
  }
  return TypeCategory::kDtm;
}

const char* TypeCategoryName(TypeCategory cat) {
  switch (cat) {
    case TypeCategory::kInt2:
      return "INT2";
    case TypeCategory::kInt4:
      return "INT4";
    case TypeCategory::kInt8:
      return "INT8";
    case TypeCategory::kNum:
      return "NUM";
    case TypeCategory::kBit:
      return "BIT";
    case TypeCategory::kStr:
      return "STR";
    case TypeCategory::kBlb:
      return "BLB";
    case TypeCategory::kDte:
      return "DTE";
    case TypeCategory::kTim:
      return "TIM";
    case TypeCategory::kDtm:
      return "DTM";
    case TypeCategory::kJsn:
      return "JSN";
    case TypeCategory::kGeo:
      return "GEO";
    case TypeCategory::kStar:
      return "STAR";
    case TypeCategory::kAny:
      return "ANY";
  }
  return "?";
}

const char* TypeIdName(TypeId type) {
  switch (type) {
    case TypeId::kDecimal:
      return "decimal";
    case TypeId::kTiny:
      return "tinyint";
    case TypeId::kShort:
      return "smallint";
    case TypeId::kLong:
      return "int";
    case TypeId::kFloat:
      return "float";
    case TypeId::kDouble:
      return "double";
    case TypeId::kNull:
      return "null";
    case TypeId::kTimestamp:
      return "timestamp";
    case TypeId::kLongLong:
      return "bigint";
    case TypeId::kInt24:
      return "mediumint";
    case TypeId::kDate:
      return "date";
    case TypeId::kTime:
      return "time";
    case TypeId::kDatetime:
      return "datetime";
    case TypeId::kYear:
      return "year";
    case TypeId::kNewDate:
      return "newdate";
    case TypeId::kVarchar:
      return "varchar";
    case TypeId::kBit:
      return "bit";
    case TypeId::kTimestamp2:
      return "timestamp2";
    case TypeId::kDatetime2:
      return "datetime2";
    case TypeId::kTime2:
      return "time2";
    case TypeId::kJson:
      return "json";
    case TypeId::kNewDecimal:
      return "newdecimal";
    case TypeId::kEnum:
      return "enum";
    case TypeId::kSet:
      return "set";
    case TypeId::kTinyBlob:
      return "tinyblob";
    case TypeId::kMediumBlob:
      return "mediumblob";
    case TypeId::kLongBlob:
      return "longblob";
    case TypeId::kBlob:
      return "blob";
    case TypeId::kVarString:
      return "varstring";
    case TypeId::kString:
      return "char";
    case TypeId::kGeometry:
      return "geometry";
  }
  return "?";
}

bool IsStringType(TypeId type) {
  return CategoryOf(type) == TypeCategory::kStr;
}

bool IsIntegerType(TypeId type) {
  TypeCategory c = CategoryOf(type);
  return c == TypeCategory::kInt2 || c == TypeCategory::kInt4 ||
         c == TypeCategory::kInt8;
}

bool IsNumericType(TypeId type) {
  return CategoryOf(type) == TypeCategory::kNum;
}

bool IsTemporalType(TypeId type) {
  TypeCategory c = CategoryOf(type);
  return (c == TypeCategory::kDte || c == TypeCategory::kTim ||
          c == TypeCategory::kDtm) &&
         type != TypeId::kNull;
}

int TypeFixedLength(TypeId type) {
  switch (type) {
    case TypeId::kTiny:
      return 1;
    case TypeId::kShort:
    case TypeId::kYear:
      return 2;
    case TypeId::kInt24:
      return 3;
    case TypeId::kLong:
    case TypeId::kFloat:
      return 4;
    case TypeId::kLongLong:
    case TypeId::kDouble:
    case TypeId::kBit:
    case TypeId::kSet:
    case TypeId::kEnum:
    case TypeId::kDate:
    case TypeId::kNewDate:
    case TypeId::kTime:
    case TypeId::kTime2:
    case TypeId::kDatetime:
    case TypeId::kDatetime2:
    case TypeId::kTimestamp:
    case TypeId::kTimestamp2:
      return 8;
    case TypeId::kDecimal:
    case TypeId::kNewDecimal:
      return 8;  // stored as scaled double in this engine
    default:
      return -1;  // variable length
  }
}

bool TypePassByValue(TypeId type) {
  int len = TypeFixedLength(type);
  return len >= 0 && len <= 8;
}

Result<TypeId> TypeIdFromSqlName(std::string_view name) {
  std::string n = AsciiLower(name);
  if (n == "tinyint" || n == "bool" || n == "boolean") return TypeId::kTiny;
  if (n == "smallint") return TypeId::kShort;
  if (n == "mediumint") return TypeId::kInt24;
  if (n == "int" || n == "integer") return TypeId::kLong;
  if (n == "bigint") return TypeId::kLongLong;
  if (n == "float") return TypeId::kFloat;
  if (n == "double" || n == "real") return TypeId::kDouble;
  if (n == "decimal" || n == "numeric") return TypeId::kNewDecimal;
  if (n == "bit") return TypeId::kBit;
  if (n == "year") return TypeId::kYear;
  if (n == "date") return TypeId::kDate;
  if (n == "time") return TypeId::kTime;
  if (n == "datetime") return TypeId::kDatetime;
  if (n == "timestamp") return TypeId::kTimestamp;
  if (n == "varchar") return TypeId::kVarchar;
  if (n == "char") return TypeId::kString;
  if (n == "text") return TypeId::kBlob;
  if (n == "blob") return TypeId::kBlob;
  if (n == "json") return TypeId::kJson;
  if (n == "enum") return TypeId::kEnum;
  return Status::NotSupported("unknown SQL type name: " + std::string(name));
}

}  // namespace taurus
