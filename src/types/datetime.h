#ifndef TAURUS_TYPES_DATETIME_H_
#define TAURUS_TYPES_DATETIME_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"

namespace taurus {

/// Calendar helpers. DATE values are stored as days since the epoch
/// 1970-01-01; DATETIME/TIMESTAMP values as seconds since that epoch. The
/// conversions use the proleptic Gregorian calendar (Howard Hinnant's civil
/// calendar algorithms).

/// Days since 1970-01-01 for the given civil date.
int64_t CivilToDays(int year, int month, int day);

/// Inverse of CivilToDays.
void DaysToCivil(int64_t days, int* year, int* month, int* day);

/// Parses 'YYYY-MM-DD' into days-since-epoch.
Result<int64_t> ParseDate(std::string_view text);

/// Parses 'YYYY-MM-DD[ HH:MM:SS]' into seconds-since-epoch.
Result<int64_t> ParseDatetime(std::string_view text);

/// Formats days-since-epoch as 'YYYY-MM-DD'.
std::string FormatDate(int64_t days);

/// Formats seconds-since-epoch as 'YYYY-MM-DD HH:MM:SS'.
std::string FormatDatetime(int64_t seconds);

/// Units supported by INTERVAL expressions.
enum class IntervalUnit { kDay, kMonth, kYear };

/// Adds `amount` units to a DATE value (days-since-epoch). MONTH/YEAR
/// additions clamp the day-of-month (e.g. Jan 31 + 1 MONTH = Feb 28/29),
/// matching MySQL semantics.
int64_t AddIntervalToDate(int64_t days, int64_t amount, IntervalUnit unit);

/// Year component of a DATE value, for the YEAR()/EXTRACT(YEAR ...) SQL
/// functions.
int ExtractYear(int64_t days);
/// Month component (1-12).
int ExtractMonth(int64_t days);
/// Day-of-month component (1-31).
int ExtractDay(int64_t days);

}  // namespace taurus

#endif  // TAURUS_TYPES_DATETIME_H_
