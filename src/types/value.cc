#include "types/value.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/strings.h"
#include "types/datetime.h"

namespace taurus {

namespace {

double StringToNumber(const std::string& s) {
  return std::strtod(s.c_str(), nullptr);
}

int CompareDoubles(double a, double b) {
  if (a < b) return -1;
  if (a > b) return 1;
  return 0;
}

}  // namespace

int Value::Compare(const Value& a, const Value& b) {
  if (a.kind_ == Kind::kNull || b.kind_ == Kind::kNull) {
    if (a.kind_ == b.kind_) return 0;
    return a.kind_ == Kind::kNull ? -1 : 1;
  }
  if (a.kind_ == Kind::kString && b.kind_ == Kind::kString) {
    int c = a.s_.compare(b.s_);
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (a.kind_ == Kind::kInt && b.kind_ == Kind::kInt) {
    if (a.i_ < b.i_) return -1;
    if (a.i_ > b.i_) return 1;
    return 0;
  }
  // Mixed numeric (or number-vs-string coercion) falls back to double.
  double da = a.kind_ == Kind::kString ? StringToNumber(a.s_) : a.AsDouble();
  double db = b.kind_ == Kind::kString ? StringToNumber(b.s_) : b.AsDouble();
  return CompareDoubles(da, db);
}

uint64_t Value::Hash() const {
  switch (kind_) {
    case Kind::kNull:
      return 0x6e756c6cULL;
    case Kind::kString:
      return Fnv1aHash(s_.data(), s_.size());
    case Kind::kInt: {
      // Hash via double so that Int(3) and Double(3.0) collide, consistent
      // with Compare().
      double d = static_cast<double>(i_);
      if (static_cast<int64_t>(d) == i_) {
        return Fnv1aHash(&d, sizeof(d));
      }
      return Fnv1aHash(&i_, sizeof(i_));
    }
    case Kind::kDouble: {
      double d = d_ == 0.0 ? 0.0 : d_;  // normalize -0.0
      return Fnv1aHash(&d, sizeof(d));
    }
  }
  return 0;
}

std::string Value::ToString() const {
  switch (kind_) {
    case Kind::kNull:
      return "NULL";
    case Kind::kString:
      return s_;
    case Kind::kInt:
      if (type_ == TypeId::kDate || type_ == TypeId::kNewDate) {
        return FormatDate(i_);
      }
      if (type_ == TypeId::kDatetime || type_ == TypeId::kDatetime2 ||
          type_ == TypeId::kTimestamp || type_ == TypeId::kTimestamp2) {
        return FormatDatetime(i_);
      }
      return std::to_string(i_);
    case Kind::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.6g", d_);
      return buf;
    }
  }
  return "?";
}

uint64_t HashRow(const Row& row) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (const Value& v : row) h = HashCombine(h, v.Hash());
  return h;
}

std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i) out += ", ";
    out += row[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace taurus
