#ifndef TAURUS_TYPES_VALUE_H_
#define TAURUS_TYPES_VALUE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "types/type.h"

namespace taurus {

/// Runtime SQL value. A Value carries a concrete MySQL TypeId plus one of
/// four physical representations: NULL, 64-bit integer (also used for all
/// temporal types: DATE as days since epoch, DATETIME/TIMESTAMP/TIME as
/// seconds), double (NUM category), or string (STR/BLB/JSN/GEO categories).
///
/// Values are cheap to copy for the fixed-width kinds and use std::string
/// for the rest; the executor's Row is simply std::vector<Value>.
class Value {
 public:
  enum class Kind : uint8_t { kNull, kInt, kDouble, kString };

  /// Default-constructed value is SQL NULL.
  Value() : type_(TypeId::kNull), kind_(Kind::kNull), i_(0), d_(0) {}

  static Value Null() { return Value(); }

  static Value Int(int64_t v, TypeId type = TypeId::kLongLong) {
    Value out;
    out.type_ = type;
    out.kind_ = Kind::kInt;
    out.i_ = v;
    return out;
  }

  static Value Double(double v, TypeId type = TypeId::kDouble) {
    Value out;
    out.type_ = type;
    out.kind_ = Kind::kDouble;
    out.d_ = v;
    return out;
  }

  static Value Str(std::string v, TypeId type = TypeId::kVarchar) {
    Value out;
    out.type_ = type;
    out.kind_ = Kind::kString;
    out.s_ = std::move(v);
    return out;
  }

  /// DATE value from days since 1970-01-01.
  static Value Date(int64_t days) { return Int(days, TypeId::kDate); }

  /// DATETIME value from seconds since the epoch.
  static Value Datetime(int64_t seconds) {
    return Int(seconds, TypeId::kDatetime);
  }

  /// Boolean result of a predicate, carried as TINYINT 0/1 (MySQL has no
  /// separate BOOL type).
  static Value Bool(bool b) { return Int(b ? 1 : 0, TypeId::kTiny); }

  bool is_null() const { return kind_ == Kind::kNull; }
  TypeId type() const { return type_; }
  Kind kind() const { return kind_; }

  /// Raw integer payload. Valid only for kInt values.
  int64_t AsInt() const { return i_; }

  /// Numeric coercion: integers widen to double; NULL yields 0.
  double AsDouble() const {
    switch (kind_) {
      case Kind::kInt:
        return static_cast<double>(i_);
      case Kind::kDouble:
        return d_;
      default:
        return 0.0;
    }
  }

  /// String payload. Valid only for kString values.
  const std::string& AsString() const { return s_; }

  /// SQL truthiness: non-NULL and numerically non-zero.
  bool IsTrue() const {
    switch (kind_) {
      case Kind::kInt:
        return i_ != 0;
      case Kind::kDouble:
        return d_ != 0.0;
      case Kind::kString:
        return !s_.empty();
      case Kind::kNull:
        return false;
    }
    return false;
  }

  /// Total-order comparison used by sorts, index keys and merge logic.
  /// NULL sorts before everything (MySQL ORDER BY semantics); numeric kinds
  /// compare numerically regardless of int/double representation; strings
  /// compare bytewise. Cross-kind number-vs-string compares the string as a
  /// number (best-effort, as MySQL coerces).
  static int Compare(const Value& a, const Value& b);

  /// Equality consistent with Compare()==0. Note: this is *ordering*
  /// equality (NULL == NULL), used for grouping and index keys, not SQL
  /// three-valued equality — the expression evaluator handles NULLs itself.
  bool operator==(const Value& other) const {
    return Compare(*this, other) == 0;
  }
  bool operator<(const Value& other) const {
    return Compare(*this, other) < 0;
  }

  /// Hash consistent with operator== (numeric kinds hash by double value).
  uint64_t Hash() const;

  /// Human-readable rendering used by EXPLAIN and result printing.
  /// Temporal types format as calendar dates/datetimes.
  std::string ToString() const;

 private:
  TypeId type_;
  Kind kind_;
  int64_t i_;
  double d_;
  std::string s_;
};

/// A materialized tuple.
using Row = std::vector<Value>;

/// Hash of a full row (combines per-value hashes).
uint64_t HashRow(const Row& row);

/// Renders a row as "(v1, v2, ...)" for debugging and golden tests.
std::string RowToString(const Row& row);

}  // namespace taurus

#endif  // TAURUS_TYPES_VALUE_H_
