#ifndef TAURUS_MYOPT_CARDINALITY_H_
#define TAURUS_MYOPT_CARDINALITY_H_

#include <map>
#include <vector>

#include "catalog/catalog.h"
#include "parser/ast.h"

namespace taurus {

/// Statistics facade shared by the MySQL-style optimizer and (through the
/// metadata provider) Orca's cardinality estimation. It resolves column
/// references (ref_id, column_idx) back to catalog statistics and supplies
/// selectivity estimates for predicates.
class StatsProvider {
 public:
  StatsProvider(const Catalog& catalog, const std::vector<TableRef*>& leaves)
      : catalog_(&catalog), leaves_(&leaves) {}
  virtual ~StatsProvider() = default;

  /// Registers the estimated output cardinality of a derived-table leaf
  /// (known after its block has been optimized).
  void SetDerivedRows(const TableRef* leaf, double rows) {
    derived_rows_[leaf] = rows;
  }

  /// Base cardinality of a leaf before predicates: table row count from
  /// ANALYZE, the registered estimate for derived tables, or a default.
  /// Virtual so the Orca path can answer through the metadata provider.
  virtual double LeafBaseRows(const TableRef& leaf) const;

  /// Catalog statistics for a base-table column ref, or nullptr (derived
  /// columns, unresolved refs, missing ANALYZE). Virtual so the Orca path
  /// can answer with DXL-reconstructed statistics.
  virtual const ColumnStats* ColumnStatsFor(int ref_id, int column_idx) const;

  /// Hook applied to literal probe values before histogram lookups. The
  /// Orca path overrides it to apply the order-preserving 64-bit string
  /// encoding (Section 7), so string probes match encoded histogram
  /// boundaries.
  virtual Value NormalizeProbe(Value v) const { return v; }

  /// Number of distinct values of a column; falls back to `default_rows`
  /// when no statistics exist (i.e. assume unique).
  double NdvOf(int ref_id, int column_idx, double default_rows) const;

  /// Selectivity of one predicate conjunct, treating column refs of any
  /// single table uniformly (the "local predicate" estimate).
  double ConjunctSelectivity(const Expr& e) const;

  /// Selectivity of an equality join predicate col_a = col_b:
  /// 1 / max(ndv(a), ndv(b)).
  double EqJoinSelectivity(const Expr& eq) const;

  /// True if the conjunct is `col = col` over two different leaves.
  static bool IsColumnEquality(const Expr& e);

  const TableRef* LeafByRef(int ref_id) const {
    if (ref_id < 0 || static_cast<size_t>(ref_id) >= leaves_->size()) {
      return nullptr;
    }
    return (*leaves_)[static_cast<size_t>(ref_id)];
  }

 private:
  const Catalog* catalog_;
  const std::vector<TableRef*>* leaves_;
  std::map<const TableRef*, double> derived_rows_;
};

}  // namespace taurus

#endif  // TAURUS_MYOPT_CARDINALITY_H_
