#ifndef TAURUS_MYOPT_COST_PARAMS_H_
#define TAURUS_MYOPT_COST_PARAMS_H_

namespace taurus {

/// Cost-model constants, in abstract "row visit" units. Both optimizers
/// consume these; Orca's instance is tunable separately (the paper notes
/// Orca's relatively high index-lookup and hash-join costs as an area for
/// fine-tuning — the ablation bench sweeps them).
struct CostParams {
  double seq_row = 1.0;        ///< sequential scan, per row
  double index_descend = 8.0;  ///< B-tree descent per lookup
  double index_row = 1.5;      ///< per row fetched through an index
  double hash_build = 1.8;     ///< per build-side row
  double hash_probe = 1.1;     ///< per probe-side row
  double row_out = 0.05;       ///< per row emitted by an operator
  double sort_row = 2.0;       ///< per row sorted (amortized n log n fudge)
  double materialize_row = 1.0;///< per row materialized (derived tables)
};

}  // namespace taurus

#endif  // TAURUS_MYOPT_COST_PARAMS_H_
