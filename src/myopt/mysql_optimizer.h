#ifndef TAURUS_MYOPT_MYSQL_OPTIMIZER_H_
#define TAURUS_MYOPT_MYSQL_OPTIMIZER_H_

#include <memory>

#include "catalog/catalog.h"
#include "common/result.h"
#include "frontend/binder.h"
#include "myopt/cardinality.h"
#include "myopt/cost_params.h"
#include "myopt/skeleton.h"

namespace taurus {

/// The MySQL-style cost-based optimizer: one SELECT block at a time,
/// greedy left-deep join ordering, nested-loop joins preferred (index
/// "ref" access when an index matches), hash join chosen only when no
/// index-based access is available for an equi-join — i.e. not cost-based,
/// exactly the behavior the paper's Section 1 lists as limitation (2) and
/// the Section 3.1 example shows.
class MySqlOptimizer {
 public:
  MySqlOptimizer(const Catalog& catalog, BoundStatement* stmt,
                 CostParams params = CostParams());

  /// Optimizes the statement's root block (recursively optimizing derived
  /// tables, expression subqueries and UNION arms) into a skeleton plan.
  Result<std::unique_ptr<BlockSkeleton>> Optimize();

  /// Optimizes one block (exposed for tests).
  Result<std::unique_ptr<BlockSkeleton>> OptimizeBlock(QueryBlock* block);

  const StatsProvider& stats() const { return stats_; }

 private:
  struct Planned {
    std::unique_ptr<SkeletonNode> node;
    double rows = 1.0;
    double cost = 0.0;
  };

  /// Greedily orders the units of a FROM subtree (used both for a block's
  /// full FROM and for composite dependent units).
  Result<Planned> PlanJoin(QueryBlock* block, TableRef* single_tree,
                           const std::vector<Expr*>* extra_conds);

  /// Plans access to a single leaf given its local conjuncts.
  Planned PlanLeaf(TableRef* leaf, const std::vector<Expr*>& local_conds);

  const Catalog& catalog_;
  BoundStatement* stmt_;
  CostParams params_;
  StatsProvider stats_;
};

/// Convenience wrapper.
Result<std::unique_ptr<BlockSkeleton>> MySqlOptimize(const Catalog& catalog,
                                                     BoundStatement* stmt);

/// Stock MySQL's limited, index-gated OR refactoring of one block's WHERE
/// (Section 7 item 4). Applied by the optimizer before join ordering;
/// exposed so the plan cache can replay the same deterministic AST rewrite
/// when re-attaching a cached skeleton to a freshly bound statement.
void ApplyIndexGatedOrFactoring(QueryBlock* block,
                                const std::vector<TableRef*>& leaves);

}  // namespace taurus

#endif  // TAURUS_MYOPT_MYSQL_OPTIMIZER_H_
