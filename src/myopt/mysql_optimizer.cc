#include "myopt/mysql_optimizer.h"

#include <algorithm>
#include <cmath>

#include "frontend/normalize.h"
#include "myopt/join_graph.h"
#include "parser/ast_util.h"

namespace taurus {

namespace {

/// Stock MySQL performs OR-refactoring "only in cases when indexes can be
/// utilized to evaluate (a = b)" (paper Section 7 item 4 — Orca's version
/// is general, and that generality is the Q41/Q19 differentiator). This
/// applies the factoring to a WHERE conjunct only when a trial run shows
/// the factored-out common conjuncts include a column equality whose
/// column leads some index.
bool CommonConjunctsEnableIndex(const Expr& factored,
                                const std::vector<TableRef*>& leaves) {
  std::vector<const Expr*> conjs;
  SplitConjuncts(&factored, &conjs);
  for (const Expr* c : conjs) {
    if (c->kind != Expr::Kind::kBinary || c->bop != BinaryOp::kEq) continue;
    for (const auto& child : c->children) {
      if (child->kind != Expr::Kind::kColumnRef) continue;
      if (child->ref_id < 0 ||
          static_cast<size_t>(child->ref_id) >= leaves.size()) {
        continue;
      }
      const TableRef* leaf = leaves[static_cast<size_t>(child->ref_id)];
      if (leaf == nullptr || leaf->kind != TableRef::Kind::kBase ||
          leaf->table == nullptr) {
        continue;
      }
      for (const IndexDef& idx : leaf->table->indexes) {
        if (!idx.column_idx.empty() &&
            idx.column_idx[0] == child->column_idx) {
          return true;
        }
      }
    }
  }
  return false;
}

}  // namespace

void ApplyIndexGatedOrFactoring(QueryBlock* block,
                                const std::vector<TableRef*>& leaves) {
  if (block->where == nullptr) return;
  std::unique_ptr<Expr> trial = block->where->Clone();
  if (!FactorOrCommonConjuncts(&trial)) return;
  // Only the conjuncts the factoring *created* (those not already at the
  // top level of the original WHERE) count towards the index test.
  std::vector<const Expr*> before;
  SplitConjuncts(block->where.get(), &before);
  std::vector<const Expr*> after;
  SplitConjuncts(trial.get(), &after);
  bool any_new = false;
  for (const Expr* c : after) {
    bool existed = false;
    for (const Expr* b : before) {
      if (ExprEquals(*b, *c)) existed = true;
    }
    if (!existed && CommonConjunctsEnableIndex(*c, leaves)) any_new = true;
  }
  if (any_new) block->where = std::move(trial);
}

namespace {

/// Walks a block's own expressions (not descending into subquery bodies)
/// and collects every subquery expression node.
void CollectSubqueryExprs(const Expr* e, std::vector<const Expr*>* out) {
  if (e->subquery) {
    out->push_back(e);
    // Children of IN (the probe operand) still belong to this block.
  }
  for (const auto& c : e->children) CollectSubqueryExprs(c.get(), out);
}

void CollectBlockSubqueries(const QueryBlock& block,
                            std::vector<const Expr*>* out) {
  for (const auto& item : block.select_items) {
    CollectSubqueryExprs(item.expr.get(), out);
  }
  if (block.where) CollectSubqueryExprs(block.where.get(), out);
  for (const auto& g : block.group_by) CollectSubqueryExprs(g.get(), out);
  if (block.having) CollectSubqueryExprs(block.having.get(), out);
  for (const auto& o : block.order_by) CollectSubqueryExprs(o.expr.get(), out);
  std::vector<const TableRef*> stack;
  for (const auto& t : block.from) stack.push_back(t.get());
  while (!stack.empty()) {
    const TableRef* r = stack.back();
    stack.pop_back();
    if (r->kind == TableRef::Kind::kJoin) {
      if (r->on) CollectSubqueryExprs(r->on.get(), out);
      stack.push_back(r->left.get());
      stack.push_back(r->right.get());
    }
  }
}

/// Finds the column side of `eq` that belongs to `leaf`, with the other
/// side's block-local references confined to `avail_mask` units. Returns
/// the column index or -1.
int LookupKeyColumn(const Expr& eq, const TableRef& leaf,
                    const JoinGraph& graph, uint64_t avail_mask,
                    int num_refs) {
  if (eq.kind != Expr::Kind::kBinary || eq.bop != BinaryOp::kEq) return -1;
  for (int side = 0; side < 2; ++side) {
    const Expr& col = *eq.children[static_cast<size_t>(side)];
    const Expr& other = *eq.children[static_cast<size_t>(1 - side)];
    if (col.kind != Expr::Kind::kColumnRef || col.ref_id != leaf.ref_id) {
      continue;
    }
    uint64_t other_mask = graph.UnitMaskOf(other, num_refs);
    if ((other_mask & ~avail_mask) != 0) continue;
    // The other side must not also reference this leaf.
    auto it = graph.unit_of_ref.find(leaf.ref_id);
    if (it != graph.unit_of_ref.end() &&
        (other_mask & (1ULL << it->second)) != 0) {
      continue;
    }
    return col.column_idx;
  }
  return -1;
}

}  // namespace

MySqlOptimizer::MySqlOptimizer(const Catalog& catalog, BoundStatement* stmt,
                               CostParams params)
    : catalog_(catalog),
      stmt_(stmt),
      params_(params),
      stats_(catalog, stmt->leaves) {}

Result<std::unique_ptr<BlockSkeleton>> MySqlOptimizer::Optimize() {
  return OptimizeBlock(stmt_->block.get());
}

MySqlOptimizer::Planned MySqlOptimizer::PlanLeaf(
    TableRef* leaf, const std::vector<Expr*>& local_conds) {
  Planned out;
  double base_rows = stats_.LeafBaseRows(*leaf);
  double sel = 1.0;
  for (const Expr* c : local_conds) sel *= stats_.ConjunctSelectivity(*c);
  sel = std::clamp(sel, 0.0, 1.0);

  auto node = std::make_unique<SkeletonNode>();
  node->is_join = false;
  node->leaf = leaf;
  node->access = AccessMethod::kTableScan;
  out.cost = base_rows * params_.seq_row;

  // Cost-based range access: a local `col <op> const` conjunct whose column
  // is the first key column of some index.
  if (leaf->kind == TableRef::Kind::kBase && leaf->table != nullptr) {
    for (const Expr* c : local_conds) {
      if (c->kind != Expr::Kind::kBinary && c->kind != Expr::Kind::kBetween) {
        continue;
      }
      const Expr* col = nullptr;
      if (c->kind == Expr::Kind::kBetween) {
        col = c->children[0].get();
        if (c->negated) continue;
      } else {
        if (!IsComparisonOp(c->bop) || c->bop == BinaryOp::kNe) continue;
        if (c->children[0]->kind == Expr::Kind::kColumnRef &&
            c->children[0]->ref_id == leaf->ref_id) {
          col = c->children[0].get();
        } else if (c->children[1]->kind == Expr::Kind::kColumnRef &&
                   c->children[1]->ref_id == leaf->ref_id) {
          col = c->children[1].get();
        }
      }
      if (col == nullptr || col->kind != Expr::Kind::kColumnRef) continue;
      for (size_t i = 0; i < leaf->table->indexes.size(); ++i) {
        if (leaf->table->indexes[i].column_idx.empty() ||
            leaf->table->indexes[i].column_idx[0] != col->column_idx) {
          continue;
        }
        double range_sel = stats_.ConjunctSelectivity(*c);
        double range_cost = params_.index_descend +
                            range_sel * base_rows * params_.index_row;
        if (range_cost < out.cost) {
          out.cost = range_cost;
          node->access = AccessMethod::kIndexRange;
          node->index_id = static_cast<int>(i);
        }
      }
    }
  }

  // Correlated "ref" access: an equality binding an index's first key
  // column to a purely-outer expression (a correlated subquery over a
  // single table, e.g. TPC-H Q17/Q20's inner blocks). The lookup key is
  // available at Open time, so this is as good as a join-time ref access.
  if (leaf->kind == TableRef::Kind::kBase && leaf->table != nullptr) {
    for (const Expr* c : local_conds) {
      if (c->kind != Expr::Kind::kBinary || c->bop != BinaryOp::kEq) continue;
      for (int side = 0; side < 2; ++side) {
        const Expr& col = *c->children[static_cast<size_t>(side)];
        const Expr& other = *c->children[static_cast<size_t>(1 - side)];
        if (col.kind != Expr::Kind::kColumnRef ||
            col.ref_id != leaf->ref_id) {
          continue;
        }
        // The other side must not touch this leaf (purely outer/constant).
        std::vector<bool> other_refs(static_cast<size_t>(stmt_->num_refs),
                                     false);
        CollectReferencedRefs(other, &other_refs);
        if (leaf->ref_id >= 0 &&
            static_cast<size_t>(leaf->ref_id) < other_refs.size() &&
            other_refs[static_cast<size_t>(leaf->ref_id)]) {
          continue;
        }
        for (size_t i = 0; i < leaf->table->indexes.size(); ++i) {
          const IndexDef& idx = leaf->table->indexes[i];
          if (idx.column_idx.empty() ||
              idx.column_idx[0] != col.column_idx) {
            continue;
          }
          double ndv = stats_.NdvOf(leaf->ref_id, col.column_idx,
                                    std::max(base_rows, 1.0));
          double match = std::max(base_rows / std::max(ndv, 1.0), 1.0);
          double cost =
              params_.index_descend + match * params_.index_row;
          if (cost < out.cost) {
            out.cost = cost;
            node->access = AccessMethod::kIndexLookup;
            node->index_id = static_cast<int>(i);
          }
        }
      }
    }
  }

  out.rows = std::max(base_rows * sel, 1.0);
  node->est_rows = out.rows;
  node->est_cost = out.cost;
  out.node = std::move(node);
  return out;
}

Result<MySqlOptimizer::Planned> MySqlOptimizer::PlanJoin(
    QueryBlock* block, TableRef* single_tree,
    const std::vector<Expr*>* extra_conds) {
  JoinGraph graph;
  if (single_tree != nullptr) {
    static const std::vector<Expr*> kNone;
    TAURUS_ASSIGN_OR_RETURN(
        graph, BuildJoinGraphForTree(
                   single_tree, extra_conds ? *extra_conds : kNone,
                   stmt_->num_refs));
  } else {
    TAURUS_ASSIGN_OR_RETURN(graph, BuildJoinGraph(block, stmt_->num_refs));
  }
  const size_t n = graph.units.size();
  if (n == 0) return Status::Internal("join graph with no units");

  // Plan each unit in isolation (leaf access or recursive composite plan).
  std::vector<Planned> unit_plans(n);
  std::vector<bool> conj_applied(graph.conjuncts.size(), false);
  for (size_t i = 0; i < n; ++i) {
    JoinUnit& unit = graph.units[i];
    std::vector<Expr*> local;
    for (size_t c = 0; c < graph.conjuncts.size(); ++c) {
      if (graph.conjuncts[c].units == (1ULL << i)) {
        local.push_back(graph.conjuncts[c].expr);
        conj_applied[c] = true;
      }
    }
    if (unit.ref->kind != TableRef::Kind::kJoin) {
      unit_plans[i] = PlanLeaf(unit.ref, local);
    } else {
      // Composite: plan the subtree, folding in join_conds pieces that
      // reference only this unit.
      std::vector<Expr*> sub_conds = local;
      for (Expr* jc : unit.join_conds) {
        uint64_t m = graph.UnitMaskOf(*jc, stmt_->num_refs);
        if (m == (1ULL << i)) sub_conds.push_back(jc);
      }
      TAURUS_ASSIGN_OR_RETURN(unit_plans[i],
                              PlanJoin(nullptr, unit.ref, &sub_conds));
    }
  }

  // Greedy left-deep ordering.
  uint64_t placed = 0;
  Planned acc;
  std::vector<bool> unit_placed(n, false);
  std::vector<bool> base_applied = conj_applied;

  for (size_t step = 0; step < n; ++step) {
    int best = -1;
    double best_cost = 0, best_rows = 0;
    JoinMethod best_method = JoinMethod::kNestedLoop;
    AccessMethod best_access = AccessMethod::kTableScan;
    int best_index = -1;

    for (size_t u = 0; u < n; ++u) {
      if (unit_placed[u]) continue;
      const JoinUnit& unit = graph.units[u];
      if ((unit.dependency & ~placed) != 0) continue;
      uint64_t ubit = 1ULL << u;

      // First table.
      if (acc.node == nullptr) {
        if (unit.join_type != JoinType::kInner) continue;
        double cost = unit_plans[u].cost;
        if (best < 0 || cost < best_cost ||
            (cost == best_cost && unit_plans[u].rows < best_rows)) {
          best = static_cast<int>(u);
          best_cost = cost;
          best_rows = unit_plans[u].rows;
          best_access = unit_plans[u].node->access;
          best_index = unit_plans[u].node->index_id;
        }
        continue;
      }

      // Newly applicable conjuncts connecting this unit to the prefix.
      double join_sel = 1.0;
      bool has_equality = false;
      std::vector<const Expr*> connecting;
      for (size_t c = 0; c < graph.conjuncts.size(); ++c) {
        if (conj_applied[c]) continue;
        const JoinConjunct& jc = graph.conjuncts[c];
        if ((jc.units & ~(placed | ubit)) != 0) continue;
        if ((jc.units & ubit) == 0 && jc.units != 0) continue;
        connecting.push_back(jc.expr);
        if (StatsProvider::IsColumnEquality(*jc.expr)) {
          has_equality = true;
          join_sel *= stats_.EqJoinSelectivity(*jc.expr);
        } else {
          join_sel *= stats_.ConjunctSelectivity(*jc.expr);
        }
      }
      for (const Expr* jc : unit.join_conds) {
        uint64_t m = graph.UnitMaskOf(*jc, stmt_->num_refs);
        if (m == ubit) continue;  // already folded into the unit plan
        connecting.push_back(jc);
        if (StatsProvider::IsColumnEquality(*jc)) {
          has_equality = true;
          join_sel *= stats_.EqJoinSelectivity(*jc);
        } else {
          join_sel *= stats_.ConjunctSelectivity(*jc);
        }
      }

      // Candidate access/join methods, MySQL style: prefer index "ref"
      // nested loop; otherwise hash join when an equality exists
      // (not cost-based); otherwise scan nested loop.
      double cost;
      double rows = std::max(acc.rows * unit_plans[u].rows * join_sel, 1.0);
      JoinMethod method = JoinMethod::kNestedLoop;
      AccessMethod access = unit_plans[u].node->access;
      int index_id = unit_plans[u].node->index_id;

      int ref_index = -1;
      if (unit.ref->kind == TableRef::Kind::kBase &&
          unit.ref->table != nullptr) {
        // Look for an index whose first key column is bound by an equality
        // to already-placed tables.
        for (size_t i = 0; i < unit.ref->table->indexes.size() && ref_index < 0;
             ++i) {
          const IndexDef& idx = unit.ref->table->indexes[i];
          if (idx.column_idx.empty()) continue;
          for (const Expr* e : connecting) {
            int col = LookupKeyColumn(*e, *unit.ref, graph, placed,
                                      stmt_->num_refs);
            if (col == idx.column_idx[0]) {
              ref_index = static_cast<int>(i);
              break;
            }
          }
        }
      }

      if (ref_index >= 0) {
        const Expr* key_col = nullptr;
        (void)key_col;
        double base = stats_.LeafBaseRows(*unit.ref);
        const IndexDef& idx =
            unit.ref->table->indexes[static_cast<size_t>(ref_index)];
        double ndv = stats_.NdvOf(unit.ref->ref_id, idx.column_idx[0],
                                  std::max(base, 1.0));
        double match = std::max(base / std::max(ndv, 1.0), 1.0);
        cost = acc.cost +
               acc.rows * (params_.index_descend + match * params_.index_row);
        access = AccessMethod::kIndexLookup;
        index_id = ref_index;
        method = JoinMethod::kNestedLoop;
      } else if (has_equality) {
        // MySQL hash join: build side is the accumulated prefix (the
        // paper's Section 7 item 2 quirk) for inner joins; for outer/semi
        // the new unit is the build side.
        method = JoinMethod::kHash;
        cost = acc.cost + unit_plans[u].cost +
               acc.rows * params_.hash_build +
               unit_plans[u].rows * params_.hash_probe;
      } else {
        // Nested loop with rescans.
        cost = acc.cost + acc.rows * std::max(unit_plans[u].cost, 1.0);
      }

      // Row estimates for the non-inner join types.
      switch (unit.join_type) {
        case JoinType::kSemi:
          rows = std::min(acc.rows, std::max(rows, 1.0));
          break;
        case JoinType::kAntiSemi:
          rows = std::max(acc.rows - std::min(acc.rows, rows), 1.0);
          break;
        case JoinType::kLeft:
          rows = std::max(rows, acc.rows);
          break;
        default:
          break;
      }

      if (best < 0 || cost < best_cost ||
          (cost == best_cost && rows < best_rows)) {
        best = static_cast<int>(u);
        best_cost = cost;
        best_rows = rows;
        best_method = method;
        best_access = access;
        best_index = index_id;
      }
    }

    if (best < 0) {
      return Status::Internal("join ordering stuck (cyclic dependencies?)");
    }

    // Commit the chosen unit.
    uint64_t bbit = 1ULL << best;
    // Mark consumed conjuncts.
    for (size_t c = 0; c < graph.conjuncts.size(); ++c) {
      if (conj_applied[c]) continue;
      const JoinConjunct& jc = graph.conjuncts[c];
      if ((jc.units & ~(placed | bbit)) == 0 &&
          ((jc.units & bbit) != 0 || jc.units == 0)) {
        conj_applied[c] = true;
      }
    }

    Planned& up = unit_plans[static_cast<size_t>(best)];
    up.node->access = best_access;
    up.node->index_id = best_index;
    if (acc.node == nullptr) {
      acc.node = std::move(up.node);
      acc.rows = best_rows;
      acc.cost = best_cost;
    } else {
      auto join = std::make_unique<SkeletonNode>();
      join->is_join = true;
      join->method = best_method;
      join->join_type = graph.units[static_cast<size_t>(best)].join_type;
      if (join->join_type == JoinType::kCross) {
        join->join_type = JoinType::kInner;
      }
      join->left = std::move(acc.node);
      join->right = std::move(up.node);
      join->est_rows = best_rows;
      join->est_cost = best_cost;
      acc.node = std::move(join);
      acc.rows = best_rows;
      acc.cost = best_cost;
    }
    unit_placed[static_cast<size_t>(best)] = true;
    placed |= bbit;
  }

  return acc;
}

Result<std::unique_ptr<BlockSkeleton>> MySqlOptimizer::OptimizeBlock(
    QueryBlock* block) {
  auto skel = std::make_unique<BlockSkeleton>();
  skel->block = block;

  // Recursively optimize derived tables first so their cardinalities feed
  // this block's join ordering.
  for (TableRef* leaf : block->Leaves()) {
    if (leaf->kind == TableRef::Kind::kDerived) {
      TAURUS_ASSIGN_OR_RETURN(auto sub, OptimizeBlock(leaf->derived.get()));
      stats_.SetDerivedRows(leaf, sub->out_rows);
      skel->derived[leaf] = std::move(sub);
    }
  }
  // Expression subqueries that survived the Prepare rewrites.
  std::vector<const Expr*> sub_exprs;
  CollectBlockSubqueries(*block, &sub_exprs);
  for (const Expr* e : sub_exprs) {
    TAURUS_ASSIGN_OR_RETURN(
        auto sub, OptimizeBlock(const_cast<Expr*>(e)->subquery.get()));
    skel->subqueries[e] = std::move(sub);
  }

  // Stock MySQL's limited, index-gated OR refactoring (Section 7 item 4).
  ApplyIndexGatedOrFactoring(block, stmt_->leaves);

  double rows = 1.0;
  double cost = 0.0;
  if (!block->from.empty()) {
    TAURUS_ASSIGN_OR_RETURN(Planned joined,
                            PlanJoin(block, nullptr, nullptr));
    rows = joined.rows;
    cost = joined.cost;
    skel->root = std::move(joined.node);
  }

  // Aggregation estimate: capped product of group-column NDVs.
  bool has_agg = !block->group_by.empty();
  if (!has_agg) {
    for (const auto& item : block->select_items) {
      if (ContainsAggregate(*item.expr)) {
        has_agg = true;
        break;
      }
    }
  }
  if (has_agg) {
    if (block->group_by.empty()) {
      rows = 1.0;
    } else {
      double groups = 1.0;
      for (const auto& g : block->group_by) {
        if (g->kind == Expr::Kind::kColumnRef) {
          groups *= stats_.NdvOf(g->ref_id, g->column_idx, rows);
        } else {
          groups *= 10.0;
        }
        groups = std::min(groups, rows);
      }
      rows = std::max(std::min(groups, rows), 1.0);
    }
    cost += rows * params_.sort_row;
  }
  if (block->having != nullptr) rows = std::max(rows * 0.5, 1.0);
  if (!block->order_by.empty()) cost += rows * params_.sort_row;
  if (block->limit >= 0) {
    rows = std::min(rows, static_cast<double>(block->limit));
  }

  // UNION continuation: the immediate next arm (which recursively carries
  // its own continuation in its union_arms).
  if (block->union_next != nullptr) {
    TAURUS_ASSIGN_OR_RETURN(auto sub, OptimizeBlock(block->union_next.get()));
    rows += sub->out_rows;
    cost += sub->cost;
    skel->union_arms.push_back(std::move(sub));
  }

  skel->out_rows = std::max(rows, 1.0);
  skel->cost = cost;
  return skel;
}

Result<std::unique_ptr<BlockSkeleton>> MySqlOptimize(const Catalog& catalog,
                                                     BoundStatement* stmt) {
  MySqlOptimizer opt(catalog, stmt);
  return opt.Optimize();
}

}  // namespace taurus
