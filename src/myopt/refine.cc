#include "myopt/refine.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "common/fault_injector.h"
#include "exec/batch_executor.h"
#include "exec/exec_internal.h"
#include "exec/expr_eval.h"
#include "parser/ast_util.h"

namespace taurus {

namespace {

using RefSet = std::vector<uint8_t>;

bool Subset(const RefSet& a, const RefSet& b) {
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] && !b[i]) return false;
  }
  return true;
}

bool Intersects(const RefSet& a, const RefSet& b) {
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] && b[i]) return true;
  }
  return false;
}

bool Empty(const RefSet& a) {
  for (uint8_t v : a) {
    if (v) return false;
  }
  return true;
}

RefSet Union(const RefSet& a, const RefSet& b) {
  RefSet out = a;
  for (size_t i = 0; i < b.size(); ++i) out[i] |= b[i];
  return out;
}

/// Block-local reference set of an expression (refs restricted to
/// `block_leaves`).
RefSet LocalRefs(const Expr& e, const RefSet& block_leaves, int num_refs) {
  std::vector<bool> refs(static_cast<size_t>(num_refs), false);
  CollectReferencedRefs(e, &refs);
  RefSet out(static_cast<size_t>(num_refs), 0);
  for (int i = 0; i < num_refs; ++i) {
    if (refs[static_cast<size_t>(i)] && block_leaves[static_cast<size_t>(i)]) {
      out[static_cast<size_t>(i)] = 1;
    }
  }
  return out;
}

/// Collects every ref_id defined inside a block, recursing into derived
/// tables and expression subqueries (used for correlation detection).
void CollectOwnedRefs(const QueryBlock& block, RefSet* out);

void CollectOwnedRefsFromExpr(const Expr& e, RefSet* out) {
  if (e.subquery) CollectOwnedRefs(*e.subquery, out);
  for (const auto& c : e.children) CollectOwnedRefsFromExpr(*c, out);
}

void CollectOwnedRefs(const QueryBlock& block, RefSet* out) {
  for (const TableRef* leaf : block.Leaves()) {
    if (leaf->ref_id >= 0 &&
        static_cast<size_t>(leaf->ref_id) < out->size()) {
      (*out)[static_cast<size_t>(leaf->ref_id)] = 1;
    }
    if (leaf->kind == TableRef::Kind::kDerived) {
      CollectOwnedRefs(*leaf->derived, out);
    }
  }
  for (const auto& item : block.select_items) {
    CollectOwnedRefsFromExpr(*item.expr, out);
  }
  if (block.where) CollectOwnedRefsFromExpr(*block.where, out);
  if (block.having) CollectOwnedRefsFromExpr(*block.having, out);
  for (const auto& g : block.group_by) CollectOwnedRefsFromExpr(*g, out);
  for (const auto& o : block.order_by) CollectOwnedRefsFromExpr(*o.expr, out);
  std::vector<const TableRef*> stack;
  for (const auto& t : block.from) stack.push_back(t.get());
  while (!stack.empty()) {
    const TableRef* r = stack.back();
    stack.pop_back();
    if (r->kind == TableRef::Kind::kJoin) {
      if (r->on) CollectOwnedRefsFromExpr(*r->on, out);
      stack.push_back(r->left.get());
      stack.push_back(r->right.get());
    }
  }
  if (block.union_next) CollectOwnedRefs(*block.union_next, out);
}

/// True when the (sub)query block references any leaf it does not own —
/// i.e. it is correlated and must be re-evaluated per outer row.
// ---------------------------------------------------------------------------
// Morsel-driven parallel eligibility (see DESIGN.md section 8)
// ---------------------------------------------------------------------------

/// Collects every expression evaluated anywhere in `op`'s subtree and
/// whether the subtree contains a derived-table scan.
void CollectOpExprs(const PhysOp& op, bool* has_derived,
                    std::vector<const Expr*>* out) {
  for (const Expr* e : op.filters) out->push_back(e);
  if (op.range_lo != nullptr) out->push_back(op.range_lo);
  if (op.range_hi != nullptr) out->push_back(op.range_hi);
  for (const Expr* e : op.lookup_keys) out->push_back(e);
  for (const Expr* e : op.conds) out->push_back(e);
  for (const auto& [l, r] : op.hash_keys) {
    out->push_back(l);
    out->push_back(r);
  }
  if (op.kind == PhysOp::Kind::kDerivedScan) *has_derived = true;
  if (op.child != nullptr) CollectOpExprs(*op.child, has_derived, out);
  if (op.right != nullptr) CollectOpExprs(*op.right, has_derived, out);
}

/// Decides whether the block's driving pipeline is safe for the
/// morsel-driven parallel executor and records the verdict (or the reason
/// it must stay serial) on the plan. The walk mirrors the executor's
/// driving-path descent: Filter -> child, hash join -> probe child,
/// NL join -> left; the driver must be a full TableScan (index-range
/// drivers deliver rows in index order, which splitting would destroy).
void AnalyzeParallelSafety(BlockPlan* plan, int num_refs) {
  plan->parallel_eligible = false;
  if (plan->join_root == nullptr) {
    plan->serial_reason = "no driving table";
    return;
  }

  // Expressions evaluated on worker threads (driving path + NL inner
  // sides + per-row block-level work) vs. anywhere (adds hash-join build
  // sides, which the main thread materializes once before fan-out).
  std::vector<const Expr*> worker_exprs;
  std::vector<const Expr*> all_exprs;
  bool worker_derived = false;
  bool build_derived = false;

  const PhysOp* cur = plan->join_root.get();
  const PhysOp* driver = nullptr;
  while (cur != nullptr && driver == nullptr) {
    switch (cur->kind) {
      case PhysOp::Kind::kTableScan:
        for (const Expr* e : cur->filters) worker_exprs.push_back(e);
        driver = cur;
        break;
      case PhysOp::Kind::kFilter:
        for (const Expr* e : cur->conds) worker_exprs.push_back(e);
        cur = cur->child.get();
        break;
      case PhysOp::Kind::kHashJoin: {
        if (cur->join_type == JoinType::kSemi ||
            cur->join_type == JoinType::kAntiSemi) {
          plan->serial_reason = "semi/anti-join probe pipeline";
          return;
        }
        for (const Expr* e : cur->conds) worker_exprs.push_back(e);
        for (const auto& [l, r] : cur->hash_keys) {
          worker_exprs.push_back(l);
          worker_exprs.push_back(r);
        }
        bool build_is_left = (cur->join_type == JoinType::kInner ||
                              cur->join_type == JoinType::kCross);
        const PhysOp* build =
            build_is_left ? cur->child.get() : cur->right.get();
        CollectOpExprs(*build, &build_derived, &all_exprs);
        cur = build_is_left ? cur->right.get() : cur->child.get();
        break;
      }
      case PhysOp::Kind::kNLJoin: {
        if (cur->join_type == JoinType::kSemi ||
            cur->join_type == JoinType::kAntiSemi) {
          plan->serial_reason = "semi/anti-join probe pipeline";
          return;
        }
        for (const Expr* e : cur->conds) worker_exprs.push_back(e);
        // The inner side re-opens per driver row on the worker.
        CollectOpExprs(*cur->right, &worker_derived, &worker_exprs);
        cur = cur->child.get();
        break;
      }
      case PhysOp::Kind::kIndexRange:
        plan->serial_reason = "ordered index-range driver";
        return;
      case PhysOp::Kind::kIndexLookup:
        plan->serial_reason = "index-lookup driver";
        return;
      case PhysOp::Kind::kDerivedScan:
        plan->serial_reason = "derived-table driver";
        return;
    }
  }
  if (driver == nullptr) {
    plan->serial_reason = "no table-scan driver";
    return;
  }
  if (worker_derived) {
    plan->serial_reason = "derived table on a worker-side inner loop";
    return;
  }

  // Block-level expressions: group keys and aggregate arguments run per
  // pipeline row on workers; sort keys and projections may too, depending
  // on the pipeline shape. Treat them all as worker-evaluated.
  for (const Expr* g : plan->group_exprs) worker_exprs.push_back(g);
  for (const Expr* a : plan->agg_exprs) worker_exprs.push_back(a);
  for (const auto& [e, asc] : plan->order_keys) worker_exprs.push_back(e);
  for (const Expr* p : plan->projections) worker_exprs.push_back(p);
  if (plan->having != nullptr) worker_exprs.push_back(plan->having);

  // Expression subqueries re-enter the executor and mutate the context's
  // subplan cache — only the main thread may do that.
  for (const Expr* e : worker_exprs) {
    if (ContainsSubquery(*e)) {
      plan->serial_reason = "expression subquery in pipeline";
      return;
    }
  }

  // Correlation: any reference to a leaf outside this block's join tree
  // means the pipeline's results depend on outer bindings; it runs (and
  // possibly re-runs per outer row) serially.
  std::vector<bool> owned(static_cast<size_t>(num_refs), false);
  std::vector<const PhysOp*> leaves;
  plan->join_root->CollectLeaves(&leaves);
  for (const PhysOp* leaf : leaves) {
    if (leaf->leaf != nullptr && leaf->leaf->ref_id >= 0 &&
        leaf->leaf->ref_id < num_refs) {
      owned[static_cast<size_t>(leaf->leaf->ref_id)] = true;
    }
  }
  std::vector<bool> used(static_cast<size_t>(num_refs), false);
  for (const Expr* e : worker_exprs) CollectReferencedRefs(*e, &used);
  for (const Expr* e : all_exprs) CollectReferencedRefs(*e, &used);
  for (int r = 0; r < num_refs; ++r) {
    if (used[static_cast<size_t>(r)] && !owned[static_cast<size_t>(r)]) {
      plan->serial_reason = "correlated pipeline";
      return;
    }
  }

  // A plain streaming pipeline with a row limit short-circuits the scan;
  // splitting it would trade the early exit for wasted whole-table work.
  if (plan->limit >= 0 && plan->agg_mode == AggMode::kNone &&
      (plan->order_keys.empty() || plan->order_satisfied) &&
      !plan->distinct) {
    plan->serial_reason = "row-limit early exit";
    return;
  }

  plan->parallel_eligible = true;
  plan->serial_reason.clear();
}

// ---------------------------------------------------------------------------
// Vectorized batch-execution eligibility (see DESIGN.md section 13)
// ---------------------------------------------------------------------------

/// Marks every operator in the subtree with whether it has a batch-at-a-time
/// implementation, recording why not otherwise. Purely per-operator — block
/// chain eligibility is decided separately in AnalyzeBatchSafety.
void MarkBatchNative(PhysOp* op) {
  if (op == nullptr) return;
  if (op->child != nullptr) MarkBatchNative(op->child.get());
  if (op->right != nullptr) MarkBatchNative(op->right.get());
  op->batch_native = false;
  op->batch_serial_reason.clear();
  switch (op->kind) {
    case PhysOp::Kind::kTableScan:
    case PhysOp::Kind::kFilter:
      op->batch_native = true;
      break;
    case PhysOp::Kind::kHashJoin:
      if (HashJoinBatchNative(*op)) {
        op->batch_native = true;
      } else if (op->join_type == JoinType::kSemi ||
                 op->join_type == JoinType::kAntiSemi) {
        op->batch_serial_reason = "semi/anti hash probe";
      } else {
        op->batch_serial_reason = "left hash join with residual condition";
      }
      break;
    case PhysOp::Kind::kNLJoin:
      op->batch_serial_reason = "nested-loop join";
      break;
    case PhysOp::Kind::kIndexRange:
      op->batch_serial_reason = "index-range scan (ordered)";
      break;
    case PhysOp::Kind::kIndexLookup:
      op->batch_serial_reason = "index-lookup scan";
      break;
    case PhysOp::Kind::kDerivedScan:
      op->batch_serial_reason = "derived-table scan";
      break;
  }
}

/// Decides whether the block's driving chain (join_root down the probe path
/// to the driving TableScan) is batch-native end to end. Mirrors the
/// executor's BuildBatchChain strict-mode descent; the executor may still
/// run partial segments behind Frame adapters when this says no.
void AnalyzeBatchSafety(BlockPlan* plan) {
  plan->batch_eligible = false;
  plan->batch_serial_reason.clear();
  if (plan->join_root == nullptr) {
    plan->batch_serial_reason = "no driving table";
    return;
  }
  MarkBatchNative(plan->join_root.get());
  for (auto& arm : plan->union_arms) AnalyzeBatchSafety(arm.get());

  // A plain streaming pipeline with a row limit stops mid-scan; batching
  // would overcharge the scan budget past the early exit, so the executor
  // keeps it row-at-a-time.
  if (plan->limit >= 0 && plan->agg_mode == AggMode::kNone &&
      (plan->order_keys.empty() || plan->order_satisfied) &&
      !plan->distinct) {
    plan->batch_serial_reason = "row-limit early exit";
    return;
  }

  const PhysOp* cur = plan->join_root.get();
  while (cur != nullptr) {
    if (!cur->batch_native) {
      plan->batch_serial_reason = cur->batch_serial_reason.empty()
                                      ? "row-at-a-time operator in chain"
                                      : cur->batch_serial_reason;
      return;
    }
    if (cur->kind == PhysOp::Kind::kTableScan) {
      plan->batch_eligible = true;
      return;
    }
    cur = DrivingChild(*cur);
  }
  plan->batch_serial_reason = "no driving table scan";
}

bool BlockIsCorrelated(const QueryBlock& block, int num_refs) {
  RefSet owned(static_cast<size_t>(num_refs), 0);
  CollectOwnedRefs(block, &owned);
  std::vector<bool> used(static_cast<size_t>(num_refs), false);
  for (const auto& item : block.select_items) {
    CollectReferencedRefs(*item.expr, &used);
  }
  if (block.where) CollectReferencedRefs(*block.where, &used);
  if (block.having) CollectReferencedRefs(*block.having, &used);
  for (const auto& g : block.group_by) CollectReferencedRefs(*g, &used);
  for (const auto& o : block.order_by) CollectReferencedRefs(*o.expr, &used);
  std::vector<const TableRef*> stack;
  for (const auto& t : block.from) stack.push_back(t.get());
  while (!stack.empty()) {
    const TableRef* r = stack.back();
    stack.pop_back();
    if (r->kind == TableRef::Kind::kJoin) {
      if (r->on) CollectReferencedRefs(*r->on, &used);
      stack.push_back(r->left.get());
      stack.push_back(r->right.get());
    } else if (r->kind == TableRef::Kind::kDerived) {
      // The derived body's references were accounted for via owned +
      // its own correlation; include them for the enclosing test.
      std::vector<bool> tmp(used.size(), false);
      RefSet dummy(used.size(), 0);
      CollectOwnedRefs(*r->derived, &dummy);
      (void)tmp;
    }
  }
  // Also references made inside derived bodies and subqueries count.
  // CollectReferencedRefs already descends into subqueries; derived bodies
  // are reached through nothing here, so walk them explicitly.
  std::vector<const QueryBlock*> blocks;
  for (const TableRef* leaf : block.Leaves()) {
    if (leaf->kind == TableRef::Kind::kDerived) {
      blocks.push_back(leaf->derived.get());
    }
  }
  while (!blocks.empty()) {
    const QueryBlock* b = blocks.back();
    blocks.pop_back();
    for (const auto& item : b->select_items) {
      CollectReferencedRefs(*item.expr, &used);
    }
    if (b->where) CollectReferencedRefs(*b->where, &used);
    if (b->having) CollectReferencedRefs(*b->having, &used);
    for (const auto& g : b->group_by) CollectReferencedRefs(*g, &used);
    for (const auto& o : b->order_by) CollectReferencedRefs(*o.expr, &used);
    std::vector<const TableRef*> st;
    for (const auto& t : b->from) st.push_back(t.get());
    while (!st.empty()) {
      const TableRef* r = st.back();
      st.pop_back();
      if (r->kind == TableRef::Kind::kJoin) {
        if (r->on) CollectReferencedRefs(*r->on, &used);
        st.push_back(r->left.get());
        st.push_back(r->right.get());
      } else if (r->kind == TableRef::Kind::kDerived) {
        blocks.push_back(r->derived.get());
      }
    }
    if (b->union_next) blocks.push_back(b->union_next.get());
  }
  for (int i = 0; i < num_refs; ++i) {
    if (used[static_cast<size_t>(i)] && !owned[static_cast<size_t>(i)]) {
      return true;
    }
  }
  return false;
}

/// One pooled predicate conjunct with its placement metadata.
struct PooledConjunct {
  Expr* expr = nullptr;
  RefSet local_refs;          ///< block-local leaves referenced
  bool is_on = false;         ///< ON conjunct of an outer/semi/anti join
  JoinType on_type = JoinType::kInner;
  std::set<int> on_right_set; ///< right-side leaf set identifying the join
  bool consumed = false;
};

/// Collects aggregates appearing in an expression (skipping subqueries),
/// deduplicated structurally.
void CollectAggs(const Expr* e, std::vector<const Expr*>* out) {
  if (e->kind == Expr::Kind::kAgg) {
    for (const Expr* a : *out) {
      if (ExprEquals(*a, *e)) return;
    }
    out->push_back(e);
    return;  // aggregates do not nest
  }
  if (e->subquery) return;
  for (const auto& c : e->children) CollectAggs(c.get(), out);
}

void CollectSubqueryExprsMut(Expr* e, std::vector<Expr*>* out) {
  if (e->subquery) out->push_back(e);
  for (auto& c : e->children) CollectSubqueryExprsMut(c.get(), out);
}

class Refiner {
 public:
  Refiner(CompiledQuery* out, const Catalog& catalog, int num_refs)
      : out_(out), catalog_(catalog), num_refs_(num_refs) {}

  Result<std::unique_ptr<BlockPlan>> RefineBlock(const BlockSkeleton& skel);

 private:
  struct Attach {
    std::vector<Expr*> at_node;
    std::vector<Expr*> above_node;
  };

  Result<std::unique_ptr<PhysOp>> BuildPhys(
      const BlockSkeleton& skel, const SkeletonNode* node, const RefSet& avail,
      std::map<const SkeletonNode*, Attach>* attach);

  Status CompileSubqueries(const BlockSkeleton& skel, QueryBlock* block,
                           BlockPlan* plan);

  RefSet LeafSetOf(const SkeletonNode* node) {
    RefSet out(static_cast<size_t>(num_refs_), 0);
    std::vector<const SkeletonNode*> leaves;
    node->BestPositionArray(&leaves);
    for (const SkeletonNode* l : leaves) {
      out[static_cast<size_t>(l->leaf->ref_id)] = 1;
    }
    return out;
  }

  CompiledQuery* out_;
  const Catalog& catalog_;
  int num_refs_;
};

Result<std::unique_ptr<PhysOp>> Refiner::BuildPhys(
    const BlockSkeleton& skel, const SkeletonNode* node, const RefSet& avail,
    std::map<const SkeletonNode*, Attach>* attach) {
  auto op = std::make_unique<PhysOp>();
  op->est_rows = node->est_rows;
  op->est_cost = node->est_cost;
  op->card_source = node->card_source;
  Attach& att = (*attach)[node];

  if (!node->is_join) {
    TableRef* leaf = node->leaf;
    op->leaf = leaf;
    if (leaf->kind == TableRef::Kind::kDerived) {
      op->kind = PhysOp::Kind::kDerivedScan;
      auto it = skel.derived.find(leaf);
      if (it == skel.derived.end()) {
        return Status::Internal("missing derived skeleton for " + leaf->alias);
      }
      TAURUS_ASSIGN_OR_RETURN(auto derived_plan, RefineBlock(*it->second));
      op->derived_plan = derived_plan.get();
      op->invalidate_on_rebind =
          BlockIsCorrelated(*leaf->derived, num_refs_);
      out_->owned_blocks.push_back(std::move(derived_plan));
      for (Expr* c : att.at_node) {
        if (!c) continue;
        op->filters.push_back(c);
      }
    } else {
      AccessMethod access = node->access;
      op->index_id = node->index_id;
      if (access == AccessMethod::kIndexLookup) {
        // Bind index key columns, in order, to equalities whose other side
        // is available (already-placed tables or outer blocks).
        const IndexDef& idx =
            leaf->table->indexes[static_cast<size_t>(node->index_id)];
        for (int key_col : idx.column_idx) {
          Expr* found = nullptr;
          for (Expr*& c : att.at_node) {
            if (c == nullptr) continue;
            if (c->kind != Expr::Kind::kBinary || c->bop != BinaryOp::kEq) {
              continue;
            }
            for (int side = 0; side < 2; ++side) {
              Expr* col = c->children[static_cast<size_t>(side)].get();
              Expr* other = c->children[static_cast<size_t>(1 - side)].get();
              if (col->kind != Expr::Kind::kColumnRef ||
                  col->ref_id != leaf->ref_id || col->column_idx != key_col) {
                continue;
              }
              RefSet other_refs =
                  LocalRefs(*other, RefSet(static_cast<size_t>(num_refs_), 1),
                            num_refs_);
              other_refs[static_cast<size_t>(leaf->ref_id)] = 0;
              // All block-local refs of the other side must be available,
              // and it must not reference this leaf.
              std::vector<bool> oref(static_cast<size_t>(num_refs_), false);
              CollectReferencedRefs(*other, &oref);
              bool ok = !oref[static_cast<size_t>(leaf->ref_id)];
              for (int r = 0; ok && r < num_refs_; ++r) {
                if (oref[static_cast<size_t>(r)] &&
                    !avail[static_cast<size_t>(r)]) {
                  ok = false;
                }
              }
              if (!ok) continue;
              found = other;
              c = nullptr;  // consumed
              break;
            }
            if (found) break;
          }
          if (!found) break;
          op->lookup_keys.push_back(found);
        }
        if (op->lookup_keys.empty()) {
          access = AccessMethod::kTableScan;  // downgrade
          op->index_id = -1;
        }
      }
      if (access == AccessMethod::kIndexRange) {
        const IndexDef& idx =
            leaf->table->indexes[static_cast<size_t>(node->index_id)];
        int first_col = idx.column_idx.empty() ? -1 : idx.column_idx[0];
        for (Expr*& c : att.at_node) {
          if (c == nullptr || first_col < 0) continue;
          if (c->kind == Expr::Kind::kBetween && !c->negated &&
              c->children[0]->kind == Expr::Kind::kColumnRef &&
              c->children[0]->ref_id == leaf->ref_id &&
              c->children[0]->column_idx == first_col &&
              IsConstExpr(*c->children[1]) && IsConstExpr(*c->children[2]) &&
              op->range_lo == nullptr && op->range_hi == nullptr) {
            op->range_lo = c->children[1].get();
            op->range_hi = c->children[2].get();
            c = nullptr;
            continue;
          }
          if (c->kind != Expr::Kind::kBinary || !IsComparisonOp(c->bop) ||
              c->bop == BinaryOp::kNe || c->bop == BinaryOp::kEq) {
            continue;
          }
          Expr* col = c->children[0].get();
          Expr* other = c->children[1].get();
          BinaryOp cmp = c->bop;
          if (!(col->kind == Expr::Kind::kColumnRef &&
                col->ref_id == leaf->ref_id &&
                col->column_idx == first_col && IsConstExpr(*other))) {
            std::swap(col, other);
            cmp = CommuteComparison(cmp);
            if (!(col->kind == Expr::Kind::kColumnRef &&
                  col->ref_id == leaf->ref_id &&
                  col->column_idx == first_col && IsConstExpr(*other))) {
              continue;
            }
          }
          switch (cmp) {
            case BinaryOp::kLt:
              if (op->range_hi == nullptr) {
                op->range_hi = other;
                op->hi_inclusive = false;
                c = nullptr;
              }
              break;
            case BinaryOp::kLe:
              if (op->range_hi == nullptr) {
                op->range_hi = other;
                op->hi_inclusive = true;
                c = nullptr;
              }
              break;
            case BinaryOp::kGt:
              if (op->range_lo == nullptr) {
                op->range_lo = other;
                op->lo_inclusive = false;
                c = nullptr;
              }
              break;
            case BinaryOp::kGe:
              if (op->range_lo == nullptr) {
                op->range_lo = other;
                op->lo_inclusive = true;
                c = nullptr;
              }
              break;
            default:
              break;
          }
        }
        if (op->range_lo == nullptr && op->range_hi == nullptr) {
          access = AccessMethod::kTableScan;
          op->index_id = -1;
        }
      }
      op->kind = access == AccessMethod::kTableScan
                     ? PhysOp::Kind::kTableScan
                     : access == AccessMethod::kIndexRange
                           ? PhysOp::Kind::kIndexRange
                           : PhysOp::Kind::kIndexLookup;
      for (Expr* c : att.at_node) {
        if (c != nullptr) op->filters.push_back(c);
      }
    }
  } else {
    // Join node.
    RefSet left_set = LeafSetOf(node->left.get());
    RefSet right_set = LeafSetOf(node->right.get());
    RefSet right_avail = Union(avail, left_set);
    TAURUS_ASSIGN_OR_RETURN(auto left_op,
                            BuildPhys(skel, node->left.get(), avail, attach));

    // For a right-leaf index lookup, join-level equalities binding its
    // index keys are consumed by the lookup: stage them onto the leaf.
    if (!node->right->is_join &&
        node->right->access == AccessMethod::kIndexLookup &&
        node->right->leaf->kind == TableRef::Kind::kBase) {
      Attach& ratt = (*attach)[node->right.get()];
      for (Expr*& c : att.at_node) {
        if (c == nullptr) continue;
        if (c->kind == Expr::Kind::kBinary && c->bop == BinaryOp::kEq) {
          // Move every equality touching the lookup leaf down to the leaf;
          // the leaf binder consumes what fits and keeps the rest as
          // filters (equivalent placement).
          std::vector<bool> refs(static_cast<size_t>(num_refs_), false);
          CollectReferencedRefs(*c, &refs);
          if (refs[static_cast<size_t>(node->right->leaf->ref_id)]) {
            ratt.at_node.push_back(c);
            c = nullptr;
          }
        }
      }
    }

    TAURUS_ASSIGN_OR_RETURN(
        auto right_op, BuildPhys(skel, node->right.get(), right_avail, attach));

    op->join_type = node->join_type == JoinType::kCross ? JoinType::kInner
                                                        : node->join_type;
    op->child = std::move(left_op);
    op->right = std::move(right_op);

    std::vector<Expr*> conds;
    for (Expr* c : att.at_node) {
      if (c != nullptr) conds.push_back(c);
    }

    if (node->method == JoinMethod::kHash) {
      for (Expr*& c : conds) {
        if (c->kind != Expr::Kind::kBinary || c->bop != BinaryOp::kEq) {
          continue;
        }
        RefSet l = LocalRefs(*c->children[0],
                             Union(left_set, right_set), num_refs_);
        RefSet r = LocalRefs(*c->children[1],
                             Union(left_set, right_set), num_refs_);
        if (Empty(l) && Empty(r)) continue;
        if (Subset(l, left_set) && Subset(r, right_set)) {
          op->hash_keys.emplace_back(c->children[0].get(),
                                     c->children[1].get());
          c = nullptr;
        } else if (Subset(r, left_set) && Subset(l, right_set)) {
          op->hash_keys.emplace_back(c->children[1].get(),
                                     c->children[0].get());
          c = nullptr;
        }
      }
      op->kind = op->hash_keys.empty() ? PhysOp::Kind::kNLJoin
                                       : PhysOp::Kind::kHashJoin;
    } else {
      op->kind = PhysOp::Kind::kNLJoin;
    }
    for (Expr* c : conds) {
      if (c != nullptr) op->conds.push_back(c);
    }
  }

  if (!att.above_node.empty()) {
    auto filter = std::make_unique<PhysOp>();
    filter->kind = PhysOp::Kind::kFilter;
    filter->est_rows = op->est_rows;
    filter->est_cost = op->est_cost;
    filter->card_source = op->card_source;
    filter->conds.assign(att.above_node.begin(), att.above_node.end());
    filter->child = std::move(op);
    op = std::move(filter);
  }
  return op;
}

Status Refiner::CompileSubqueries(const BlockSkeleton& skel,
                                  QueryBlock* block, BlockPlan* plan) {
  (void)plan;
  std::vector<Expr*> sub_exprs;
  for (auto& item : block->select_items) {
    CollectSubqueryExprsMut(item.expr.get(), &sub_exprs);
  }
  if (block->where) CollectSubqueryExprsMut(block->where.get(), &sub_exprs);
  for (auto& g : block->group_by) CollectSubqueryExprsMut(g.get(), &sub_exprs);
  if (block->having) CollectSubqueryExprsMut(block->having.get(), &sub_exprs);
  for (auto& o : block->order_by) {
    CollectSubqueryExprsMut(o.expr.get(), &sub_exprs);
  }
  std::vector<TableRef*> stack;
  for (auto& t : block->from) stack.push_back(t.get());
  while (!stack.empty()) {
    TableRef* r = stack.back();
    stack.pop_back();
    if (r->kind == TableRef::Kind::kJoin) {
      if (r->on) CollectSubqueryExprsMut(r->on.get(), &sub_exprs);
      stack.push_back(r->left.get());
      stack.push_back(r->right.get());
    }
  }
  for (Expr* e : sub_exprs) {
    auto it = skel.subqueries.find(e);
    if (it == skel.subqueries.end()) {
      return Status::Internal("subquery was not optimized");
    }
    TAURUS_ASSIGN_OR_RETURN(auto sub_plan, RefineBlock(*it->second));
    if (e->kind == Expr::Kind::kExists &&
        sub_plan->agg_mode == AggMode::kNone && !sub_plan->distinct &&
        sub_plan->union_arms.empty() && sub_plan->limit < 0) {
      sub_plan->limit = 1;  // EXISTS needs at most one row
    }
    auto sub = std::make_unique<Subplan>();
    sub->correlated = BlockIsCorrelated(*e->subquery, num_refs_);
    sub->plan = std::move(sub_plan);
    e->subplan_id = static_cast<int>(out_->subplans.size());
    out_->subplans.push_back(std::move(sub));
  }
  return Status::OK();
}

Result<std::unique_ptr<BlockPlan>> Refiner::RefineBlock(
    const BlockSkeleton& skel) {
  QueryBlock* block = skel.block;
  auto plan = std::make_unique<BlockPlan>();
  plan->block = block;
  plan->est_rows = skel.out_rows;
  plan->est_cost = skel.cost;

  TAURUS_RETURN_IF_ERROR(CompileSubqueries(skel, block, plan.get()));

  RefSet block_leaves(static_cast<size_t>(num_refs_), 0);
  for (const TableRef* leaf : block->Leaves()) {
    block_leaves[static_cast<size_t>(leaf->ref_id)] = 1;
  }

  if (skel.root != nullptr) {
    // ---- Gather the conjunct pool. ----
    std::vector<PooledConjunct> pool;
    auto add_where = [&](Expr* e) {
      std::vector<Expr*> conjs;
      SplitConjunctsMutable(e, &conjs);
      for (Expr* c : conjs) {
        PooledConjunct pc;
        pc.expr = c;
        pc.local_refs = LocalRefs(*c, block_leaves, num_refs_);
        pool.push_back(std::move(pc));
      }
    };
    if (block->where) add_where(block->where.get());
    {
      std::vector<TableRef*> stack;
      for (auto& t : block->from) stack.push_back(t.get());
      while (!stack.empty()) {
        TableRef* r = stack.back();
        stack.pop_back();
        if (r->kind != TableRef::Kind::kJoin) continue;
        if (r->on != nullptr) {
          if (r->join_type == JoinType::kInner ||
              r->join_type == JoinType::kCross) {
            add_where(r->on.get());
          } else {
            std::set<int> right_set;
            std::vector<TableRef*> leaves;
            std::vector<TableRef*> st2{r->right.get()};
            while (!st2.empty()) {
              TableRef* x = st2.back();
              st2.pop_back();
              if (x->kind == TableRef::Kind::kJoin) {
                st2.push_back(x->left.get());
                st2.push_back(x->right.get());
              } else {
                right_set.insert(x->ref_id);
              }
            }
            std::vector<Expr*> conjs;
            SplitConjunctsMutable(r->on.get(), &conjs);
            for (Expr* c : conjs) {
              PooledConjunct pc;
              pc.expr = c;
              pc.local_refs = LocalRefs(*c, block_leaves, num_refs_);
              pc.is_on = true;
              pc.on_type = r->join_type;
              pc.on_right_set = right_set;
              pool.push_back(std::move(pc));
            }
          }
        }
        stack.push_back(r->left.get());
        stack.push_back(r->right.get());
      }
    }

    // ---- Index the skeleton tree. ----
    struct NodeInfo {
      const SkeletonNode* node;
      const SkeletonNode* parent;
      RefSet leaves;
      std::set<int> leaf_set;
    };
    std::vector<NodeInfo> nodes;
    {
      std::vector<std::pair<const SkeletonNode*, const SkeletonNode*>> stack{
          {skel.root.get(), nullptr}};
      while (!stack.empty()) {
        auto [n, parent] = stack.back();
        stack.pop_back();
        NodeInfo info;
        info.node = n;
        info.parent = parent;
        info.leaves = LeafSetOf(n);
        for (int i = 0; i < num_refs_; ++i) {
          if (info.leaves[static_cast<size_t>(i)]) info.leaf_set.insert(i);
        }
        nodes.push_back(std::move(info));
        if (n->is_join) {
          stack.push_back({n->left.get(), n});
          stack.push_back({n->right.get(), n});
        }
      }
    }
    auto info_of = [&](const SkeletonNode* n) -> const NodeInfo* {
      for (const NodeInfo& i : nodes) {
        if (i.node == n) return &i;
      }
      return nullptr;
    };
    auto is_ancestor = [&](const SkeletonNode* a,
                           const SkeletonNode* b) {  // a ancestor-or-self of b
      const SkeletonNode* cur = b;
      while (cur != nullptr) {
        if (cur == a) return true;
        const NodeInfo* i = info_of(cur);
        cur = i == nullptr ? nullptr : i->parent;
      }
      return false;
    };

    // Lowest node covering a ref set.
    auto lowest_covering = [&](const RefSet& refs) -> const SkeletonNode* {
      const SkeletonNode* cur = skel.root.get();
      if (Empty(refs)) {
        // Constant / purely-correlated conjunct: evaluate at the first leaf.
        while (cur->is_join) cur = cur->left.get();
        return cur;
      }
      while (cur->is_join) {
        RefSet lset = LeafSetOf(cur->left.get());
        RefSet rset = LeafSetOf(cur->right.get());
        if (Subset(refs, lset)) {
          cur = cur->left.get();
        } else if (Subset(refs, rset)) {
          cur = cur->right.get();
        } else {
          break;
        }
      }
      return cur;
    };

    // ---- Assign conjuncts to skeleton nodes. ----
    std::map<const SkeletonNode*, Attach> attach;
    for (PooledConjunct& pc : pool) {
      if (pc.is_on) {
        // Locate the matching dependent join node by type + right leaf set.
        const SkeletonNode* join = nullptr;
        for (const NodeInfo& i : nodes) {
          if (!i.node->is_join) continue;
          if (i.node->join_type != pc.on_type) continue;
          const NodeInfo* r = info_of(i.node->right.get());
          if (r != nullptr && r->leaf_set == pc.on_right_set) {
            join = i.node;
            break;
          }
        }
        if (join == nullptr) {
          return Status::Internal("no skeleton join for ON condition: " +
                                  pc.expr->ToString());
        }
        // Only-right ON conjuncts may push into the right subtree.
        RefSet rset = LeafSetOf(join->right.get());
        if (!Empty(pc.local_refs) && Subset(pc.local_refs, rset)) {
          const SkeletonNode* cur = join->right.get();
          while (cur->is_join) {
            RefSet l = LeafSetOf(cur->left.get());
            RefSet r = LeafSetOf(cur->right.get());
            if (Subset(pc.local_refs, l)) {
              cur = cur->left.get();
            } else if (Subset(pc.local_refs, r)) {
              cur = cur->right.get();
            } else {
              break;
            }
          }
          attach[cur].at_node.push_back(pc.expr);
        } else {
          attach[join].at_node.push_back(pc.expr);
        }
        continue;
      }
      // WHERE-tagged conjunct: lowest covering node, hoisted above any
      // LEFT join whose NULL-extended (inner) side it references — filtering
      // such predicates below the join would change outer-join semantics.
      const SkeletonNode* target = lowest_covering(pc.local_refs);
      bool above = target->is_join && target->join_type != JoinType::kInner;
      bool changed = true;
      while (changed) {
        changed = false;
        for (const NodeInfo& i : nodes) {
          if (!i.node->is_join || i.node->join_type != JoinType::kLeft) {
            continue;
          }
          RefSet rset = LeafSetOf(i.node->right.get());
          if (!Intersects(pc.local_refs, rset)) continue;
          // The conjunct must evaluate at or above this left join.
          if (target != i.node && !is_ancestor(target, i.node)) {
            target = i.node;
            above = true;
            changed = true;
          } else if (target == i.node) {
            above = true;
          }
        }
      }
      if (above) {
        attach[target].above_node.push_back(pc.expr);
      } else {
        attach[target].at_node.push_back(pc.expr);
      }
    }

    RefSet avail(static_cast<size_t>(num_refs_), 1);
    for (int i = 0; i < num_refs_; ++i) {
      if (block_leaves[static_cast<size_t>(i)]) {
        avail[static_cast<size_t>(i)] = 0;  // own leaves start unavailable
      }
    }
    TAURUS_ASSIGN_OR_RETURN(plan->join_root,
                            BuildPhys(skel, skel.root.get(), avail, &attach));
  } else if (block->where != nullptr) {
    return Status::NotSupported("WHERE without FROM is not supported");
  }

  // ---- Aggregation. ----
  for (auto& item : block->select_items) {
    CollectAggs(item.expr.get(), &plan->agg_exprs);
  }
  if (block->having) CollectAggs(block->having.get(), &plan->agg_exprs);
  for (auto& o : block->order_by) CollectAggs(o.expr.get(), &plan->agg_exprs);
  bool has_agg = !plan->agg_exprs.empty() || !block->group_by.empty();
  if (has_agg) {
    plan->agg_mode = skel.stream_agg ? AggMode::kStream : AggMode::kHash;
    for (auto& g : block->group_by) plan->group_exprs.push_back(g.get());
  }
  plan->having = block->having.get();

  for (auto& o : block->order_by) {
    plan->order_keys.emplace_back(o.expr.get(), o.ascending);
  }
  // Sort elision: a single ascending ORDER BY column already delivered in
  // order by an index range scan driving a nested-loop-only left spine.
  if (plan->agg_mode == AggMode::kNone && plan->order_keys.size() == 1 &&
      plan->order_keys[0].second &&
      plan->order_keys[0].first->kind == Expr::Kind::kColumnRef &&
      plan->join_root != nullptr) {
    const PhysOp* node = plan->join_root.get();
    bool spine_preserves_order = true;
    while (node->kind == PhysOp::Kind::kNLJoin ||
           node->kind == PhysOp::Kind::kFilter) {
      if (node->kind == PhysOp::Kind::kNLJoin &&
          node->join_type == JoinType::kAntiSemi) {
        // anti joins still preserve outer order; nothing to do.
      }
      node = node->child.get();
    }
    if (node->kind != PhysOp::Kind::kIndexRange) {
      spine_preserves_order = false;
    }
    if (spine_preserves_order && node->leaf != nullptr &&
        node->leaf->kind == TableRef::Kind::kBase && node->index_id >= 0) {
      const Expr& key = *plan->order_keys[0].first;
      const IndexDef& idx =
          node->leaf->table->indexes[static_cast<size_t>(node->index_id)];
      if (!idx.column_idx.empty() && key.ref_id == node->leaf->ref_id &&
          key.column_idx == idx.column_idx[0]) {
        plan->order_satisfied = true;
      }
    }
  }
  plan->limit = block->limit;
  plan->offset = block->offset;
  plan->distinct = block->distinct;
  for (auto& item : block->select_items) {
    plan->projections.push_back(item.expr.get());
  }
  plan->column_names = OutputColumnNames(*block);

  // ---- UNION arms (flattened). ----
  const BlockSkeleton* cur = &skel;
  while (!cur->union_arms.empty()) {
    const BlockSkeleton* arm = cur->union_arms[0].get();
    TAURUS_ASSIGN_OR_RETURN(auto arm_plan, RefineBlock(*arm));
    plan->union_arms.push_back(std::move(arm_plan));
    cur = arm;
  }
  if (!plan->union_arms.empty()) {
    plan->union_all = block->union_all;
    for (auto& [expr, asc] : plan->order_keys) {
      int pos = -1;
      for (size_t i = 0; i < block->select_items.size(); ++i) {
        if (ExprEquals(*block->select_items[i].expr, *expr)) {
          pos = static_cast<int>(i);
          break;
        }
      }
      if (pos < 0) {
        return Status::NotSupported(
            "UNION ORDER BY must match a select item");
      }
      plan->union_order_positions.emplace_back(pos, asc);
    }
  }
  AnalyzeParallelSafety(plan.get(), num_refs_);
  AnalyzeBatchSafety(plan.get());
  return plan;
}

}  // namespace

Result<std::unique_ptr<CompiledQuery>> RefinePlan(BoundStatement stmt,
                                                  const BlockSkeleton& skel,
                                                  const Catalog& catalog) {
  TAURUS_FAULT_POINT("myopt.refine");
  auto out = std::make_unique<CompiledQuery>();
  out->num_refs = stmt.num_refs;
  Refiner refiner(out.get(), catalog, stmt.num_refs);
  TAURUS_ASSIGN_OR_RETURN(out->root, refiner.RefineBlock(skel));
  out->ast = std::move(stmt.block);
  return out;
}

}  // namespace taurus
