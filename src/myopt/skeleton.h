#ifndef TAURUS_MYOPT_SKELETON_H_
#define TAURUS_MYOPT_SKELETON_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "feedback/card_source.h"
#include "parser/ast.h"

namespace taurus {

/// Table access methods a skeleton plan can prescribe.
enum class AccessMethod { kTableScan, kIndexRange, kIndexLookup };

/// Join methods a skeleton plan can prescribe.
enum class JoinMethod { kNestedLoop, kHash };

/// One node of a skeleton plan: the "most important plan elements" — join
/// order (tree shape), join method per join, and access method per table —
/// with everything else (predicates, aggregation, ordering, limits) left to
/// plan refinement (Section 3). MySQL's native skeleton is the
/// best-position array (left-deep); this tree form is the paper's "slightly
/// extended" variant that can also express Orca's bushy plans (Section 7
/// item 1).
struct SkeletonNode {
  bool is_join = false;

  // Leaf.
  TableRef* leaf = nullptr;
  AccessMethod access = AccessMethod::kTableScan;
  int index_id = -1;  ///< index within leaf->table->indexes

  // Join.
  JoinMethod method = JoinMethod::kNestedLoop;
  JoinType join_type = JoinType::kInner;
  std::unique_ptr<SkeletonNode> left;
  std::unique_ptr<SkeletonNode> right;

  // Optimizer estimates carried into EXPLAIN (Section 4.2.2).
  double est_rows = 0.0;
  double est_cost = 0.0;
  /// Where est_rows came from (histogram / sketch / harvested actual).
  CardSource card_source = CardSource::kHistogram;

  /// Pre-order leaves — MySQL's best-position array for this (sub)tree.
  void BestPositionArray(std::vector<const SkeletonNode*>* out) const {
    if (is_join) {
      left->BestPositionArray(out);
      right->BestPositionArray(out);
    } else {
      out->push_back(this);
    }
  }
};

/// A skeleton plan for one query block plus the recursively-optimized
/// skeletons of its derived tables, expression subqueries and UNION arms.
struct BlockSkeleton {
  QueryBlock* block = nullptr;
  std::unique_ptr<SkeletonNode> root;  ///< null when the block has no FROM

  /// Estimated output rows / total cost for the block.
  double out_rows = 1.0;
  double cost = 0.0;

  /// Aggregation method hint: true = sort + streaming aggregate,
  /// false = hash aggregate.
  bool stream_agg = false;

  std::map<const TableRef*, std::unique_ptr<BlockSkeleton>> derived;
  std::map<const Expr*, std::unique_ptr<BlockSkeleton>> subqueries;
  std::vector<std::unique_ptr<BlockSkeleton>> union_arms;
};

/// Renders the best-position arrays of a skeleton (one line per block,
/// recursing into derived tables), e.g.
/// "block 0: [part(scan), derived_1_2(scan), lineitem(ref:lineitem_fk2)]".
/// Used by tests and the Fig. 7 reproduction.
std::string RenderBestPositionArrays(const BlockSkeleton& skel);

}  // namespace taurus

#endif  // TAURUS_MYOPT_SKELETON_H_
