#include "myopt/join_graph.h"

#include "parser/ast_util.h"

namespace taurus {

void CollectLeavesOf(TableRef* ref, std::vector<TableRef*>* out) {
  if (ref->kind == TableRef::Kind::kJoin) {
    CollectLeavesOf(ref->left.get(), out);
    CollectLeavesOf(ref->right.get(), out);
  } else {
    out->push_back(ref);
  }
}

uint64_t JoinGraph::UnitMaskOf(const Expr& e, int num_refs) const {
  std::vector<bool> refs(static_cast<size_t>(num_refs), false);
  CollectReferencedRefs(e, &refs);
  uint64_t mask = 0;
  for (int r = 0; r < num_refs; ++r) {
    if (!refs[static_cast<size_t>(r)]) continue;
    auto it = unit_of_ref.find(r);
    if (it != unit_of_ref.end()) mask |= 1ULL << it->second;
  }
  return mask;
}

namespace {

struct Builder {
  JoinGraph* graph;
  int num_refs;

  Status AddUnit(TableRef* ref, JoinType type, uint64_t dependency,
                 std::vector<Expr*> join_conds) {
    if (graph->units.size() >= 64) {
      return Status::NotSupported("more than 64 join units in one block");
    }
    int idx = static_cast<int>(graph->units.size());
    graph->units.push_back(
        JoinUnit{ref, type, dependency, std::move(join_conds)});
    std::vector<TableRef*> leaves;
    CollectLeavesOf(ref, &leaves);
    for (TableRef* leaf : leaves) graph->unit_of_ref[leaf->ref_id] = idx;
    return Status::OK();
  }

  /// Flattens a FROM subtree into units. Returns the mask of units added.
  Status Flatten(TableRef* ref, uint64_t* added_mask) {
    if (ref->kind != TableRef::Kind::kJoin) {
      size_t before = graph->units.size();
      TAURUS_RETURN_IF_ERROR(AddUnit(ref, JoinType::kInner, 0, {}));
      *added_mask |= 1ULL << before;
      return Status::OK();
    }
    switch (ref->join_type) {
      case JoinType::kInner:
      case JoinType::kCross: {
        TAURUS_RETURN_IF_ERROR(Flatten(ref->left.get(), added_mask));
        TAURUS_RETURN_IF_ERROR(Flatten(ref->right.get(), added_mask));
        if (ref->on) {
          std::vector<Expr*> conds;
          SplitConjunctsMutable(ref->on.get(), &conds);
          for (Expr* c : conds) {
            graph->conjuncts.push_back(JoinConjunct{c, 0});
          }
        }
        return Status::OK();
      }
      case JoinType::kLeft:
      case JoinType::kSemi:
      case JoinType::kAntiSemi: {
        uint64_t left_mask = 0;
        TAURUS_RETURN_IF_ERROR(Flatten(ref->left.get(), &left_mask));
        std::vector<Expr*> conds;
        if (ref->on) SplitConjunctsMutable(ref->on.get(), &conds);
        size_t unit_idx = graph->units.size();
        TAURUS_RETURN_IF_ERROR(
            AddUnit(ref->right.get(), ref->join_type, left_mask,
                    std::move(conds)));
        *added_mask |= left_mask | (1ULL << unit_idx);
        return Status::OK();
      }
    }
    return Status::Internal("unreachable join type");
  }
};

}  // namespace

Result<JoinGraph> BuildJoinGraphForTree(TableRef* tree,
                                        const std::vector<Expr*>& extra_conds,
                                        int num_refs) {
  JoinGraph graph;
  Builder builder{&graph, num_refs};
  uint64_t mask = 0;
  TAURUS_RETURN_IF_ERROR(builder.Flatten(tree, &mask));
  for (Expr* c : extra_conds) graph.conjuncts.push_back(JoinConjunct{c, 0});
  for (JoinConjunct& c : graph.conjuncts) {
    c.units = graph.UnitMaskOf(*c.expr, num_refs);
  }
  return graph;
}

Result<JoinGraph> BuildJoinGraph(QueryBlock* block, int num_refs) {
  JoinGraph graph;
  graph.block = block;
  Builder builder{&graph, num_refs};
  for (auto& tree : block->from) {
    uint64_t mask = 0;
    TAURUS_RETURN_IF_ERROR(builder.Flatten(tree.get(), &mask));
  }
  if (block->where != nullptr) {
    std::vector<Expr*> conds;
    SplitConjunctsMutable(block->where.get(), &conds);
    for (Expr* c : conds) graph.conjuncts.push_back(JoinConjunct{c, 0});
  }
  for (JoinConjunct& c : graph.conjuncts) {
    c.units = graph.UnitMaskOf(*c.expr, num_refs);
  }
  return graph;
}

}  // namespace taurus
