#ifndef TAURUS_MYOPT_JOIN_GRAPH_H_
#define TAURUS_MYOPT_JOIN_GRAPH_H_

#include <cstdint>
#include <map>
#include <vector>

#include "common/result.h"
#include "parser/ast.h"

namespace taurus {

/// One reorderable element of a block's FROM clause. Inner-join operands
/// flatten into freely reorderable units; the right side of a LEFT / SEMI /
/// ANTI-SEMI join becomes a *dependent* unit that must be placed after all
/// units of its left side (MySQL's constraint) and carries its ON
/// condition conjuncts.
struct JoinUnit {
  TableRef* ref = nullptr;       ///< leaf, or subtree root for composites
  JoinType join_type = JoinType::kInner;
  uint64_t dependency = 0;       ///< unit bits that must be placed first
  std::vector<Expr*> join_conds; ///< ON conjuncts (dependent units only)
};

/// A predicate conjunct with the set of units it references.
struct JoinConjunct {
  Expr* expr = nullptr;
  uint64_t units = 0;  ///< bitmask over JoinGraph::units
};

/// Flattened, reorderable view of a query block's FROM + WHERE, the common
/// input of both the MySQL greedy join-order search and the Orca logical
/// tree construction.
struct JoinGraph {
  QueryBlock* block = nullptr;
  std::vector<JoinUnit> units;
  /// WHERE conjuncts plus inner-join ON conjuncts.
  std::vector<JoinConjunct> conjuncts;
  /// Maps a block-local leaf ref_id to its containing unit, or -1.
  std::map<int, int> unit_of_ref;

  /// Bitmask over units referenced by `e` (correlated/outer refs ignored).
  uint64_t UnitMaskOf(const Expr& e, int num_refs) const;
};

/// Builds the join graph for one block. Fails (NotSupported) for blocks
/// with more than 64 units.
Result<JoinGraph> BuildJoinGraph(QueryBlock* block, int num_refs);

/// Builds a join graph for a single FROM subtree (used to plan the inside
/// of a dependent unit). `extra_conds` supplies additional conjuncts (e.g.
/// the pieces of the enclosing join's ON condition that reference only
/// this subtree).
Result<JoinGraph> BuildJoinGraphForTree(TableRef* tree,
                                        const std::vector<Expr*>& extra_conds,
                                        int num_refs);

/// Collects the base/derived leaves under a FROM subtree.
void CollectLeavesOf(TableRef* ref, std::vector<TableRef*>* out);

}  // namespace taurus

#endif  // TAURUS_MYOPT_JOIN_GRAPH_H_
