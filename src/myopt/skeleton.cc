#include "myopt/skeleton.h"

namespace taurus {

namespace {

std::string LeafLabel(const SkeletonNode& node) {
  std::string name = node.leaf->alias.empty() ? node.leaf->table_name
                                              : node.leaf->alias;
  switch (node.access) {
    case AccessMethod::kTableScan:
      return name + "(scan)";
    case AccessMethod::kIndexRange: {
      std::string idx = "?";
      if (node.leaf->table != nullptr && node.index_id >= 0) {
        idx = node.leaf->table->indexes[static_cast<size_t>(node.index_id)]
                  .name;
      }
      return name + "(range:" + idx + ")";
    }
    case AccessMethod::kIndexLookup: {
      std::string idx = "?";
      if (node.leaf->table != nullptr && node.index_id >= 0) {
        idx = node.leaf->table->indexes[static_cast<size_t>(node.index_id)]
                  .name;
      }
      return name + "(ref:" + idx + ")";
    }
  }
  return name;
}

void Render(const BlockSkeleton& skel, std::string* out) {
  *out += "block " + std::to_string(skel.block->block_id) + ": [";
  if (skel.root != nullptr) {
    std::vector<const SkeletonNode*> leaves;
    skel.root->BestPositionArray(&leaves);
    for (size_t i = 0; i < leaves.size(); ++i) {
      if (i) *out += ", ";
      *out += LeafLabel(*leaves[i]);
    }
  }
  *out += "]\n";
  for (const auto& [leaf, sub] : skel.derived) Render(*sub, out);
  for (const auto& [expr, sub] : skel.subqueries) Render(*sub, out);
  for (const auto& arm : skel.union_arms) Render(*arm, out);
}

}  // namespace

std::string RenderBestPositionArrays(const BlockSkeleton& skel) {
  std::string out;
  Render(skel, &out);
  return out;
}

}  // namespace taurus
