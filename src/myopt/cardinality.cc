#include "myopt/cardinality.h"

#include <algorithm>
#include <cmath>

#include "exec/expr_eval.h"
#include "parser/ast_util.h"

namespace taurus {

namespace {

constexpr double kDefaultRows = 1000.0;
constexpr double kDefaultEq = 0.05;
constexpr double kDefaultRange = 1.0 / 3.0;
constexpr double kDefaultLike = 0.1;
constexpr double kDefaultOther = 0.5;

}  // namespace

double StatsProvider::LeafBaseRows(const TableRef& leaf) const {
  if (leaf.kind == TableRef::Kind::kBase && leaf.table != nullptr) {
    const TableStats& stats = catalog_->GetStats(leaf.table->id);
    if (stats.row_count > 0) return static_cast<double>(stats.row_count);
    return kDefaultRows;
  }
  auto it = derived_rows_.find(&leaf);
  if (it != derived_rows_.end()) return std::max(it->second, 1.0);
  return kDefaultRows;
}

const ColumnStats* StatsProvider::ColumnStatsFor(int ref_id,
                                                 int column_idx) const {
  const TableRef* leaf = LeafByRef(ref_id);
  if (leaf == nullptr || leaf->kind != TableRef::Kind::kBase ||
      leaf->table == nullptr) {
    return nullptr;
  }
  const TableStats& stats = catalog_->GetStats(leaf->table->id);
  return stats.column(column_idx);
}

double StatsProvider::NdvOf(int ref_id, int column_idx,
                            double default_rows) const {
  const ColumnStats* cs = ColumnStatsFor(ref_id, column_idx);
  if (cs == nullptr || cs->distinct_count <= 0) return default_rows;
  return static_cast<double>(cs->distinct_count);
}

bool StatsProvider::IsColumnEquality(const Expr& e) {
  return e.kind == Expr::Kind::kBinary && e.bop == BinaryOp::kEq &&
         e.children[0]->kind == Expr::Kind::kColumnRef &&
         e.children[1]->kind == Expr::Kind::kColumnRef &&
         e.children[0]->ref_id != e.children[1]->ref_id;
}

double StatsProvider::EqJoinSelectivity(const Expr& eq) const {
  if (!IsColumnEquality(eq)) return kDefaultEq;
  const Expr& a = *eq.children[0];
  const Expr& b = *eq.children[1];
  double rows_a = 0, rows_b = 0;
  if (const TableRef* la = LeafByRef(a.ref_id)) rows_a = LeafBaseRows(*la);
  if (const TableRef* lb = LeafByRef(b.ref_id)) rows_b = LeafBaseRows(*lb);
  double ndv_a = NdvOf(a.ref_id, a.column_idx, std::max(rows_a, 1.0));
  double ndv_b = NdvOf(b.ref_id, b.column_idx, std::max(rows_b, 1.0));
  return 1.0 / std::max({ndv_a, ndv_b, 1.0});
}

double StatsProvider::ConjunctSelectivity(const Expr& e) const {
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      if (e.literal.is_null()) return 0.0;
      return e.literal.IsTrue() ? 1.0 : 0.0;
    case Expr::Kind::kBinary: {
      if (e.bop == BinaryOp::kAnd) {
        return ConjunctSelectivity(*e.children[0]) *
               ConjunctSelectivity(*e.children[1]);
      }
      if (e.bop == BinaryOp::kOr) {
        double s1 = ConjunctSelectivity(*e.children[0]);
        double s2 = ConjunctSelectivity(*e.children[1]);
        return std::min(1.0, s1 + s2 - s1 * s2);
      }
      if (!IsComparisonOp(e.bop)) return kDefaultOther;
      if (IsColumnEquality(e)) {
        return EqJoinSelectivity(e);
      }
      // col <op> const (either orientation).
      const Expr* col = nullptr;
      const Expr* lit = nullptr;
      BinaryOp op = e.bop;
      if (e.children[0]->kind == Expr::Kind::kColumnRef &&
          IsConstExpr(*e.children[1])) {
        col = e.children[0].get();
        lit = e.children[1].get();
      } else if (e.children[1]->kind == Expr::Kind::kColumnRef &&
                 IsConstExpr(*e.children[0])) {
        col = e.children[1].get();
        lit = e.children[0].get();
        op = CommuteComparison(op);
      } else {
        return IsComparisonOp(e.bop) && e.bop == BinaryOp::kEq ? kDefaultEq
                                                               : kDefaultRange;
      }
      const ColumnStats* cs = ColumnStatsFor(col->ref_id, col->column_idx);
      auto lit_value = EvalConstExpr(*lit);
      if (cs == nullptr || cs->histogram.empty() || !lit_value.ok()) {
        switch (op) {
          case BinaryOp::kEq:
            return kDefaultEq;
          case BinaryOp::kNe:
            return 1.0 - kDefaultEq;
          default:
            return kDefaultRange;
        }
      }
      const Histogram& h = cs->histogram;
      Value v = NormalizeProbe(*lit_value);
      switch (op) {
        case BinaryOp::kEq:
          return h.SelectivityEquals(v);
        case BinaryOp::kNe:
          return std::max(0.0, 1.0 - h.null_fraction() -
                                   h.SelectivityEquals(v));
        case BinaryOp::kLt:
          return h.SelectivityLess(v, false);
        case BinaryOp::kLe:
          return h.SelectivityLess(v, true);
        case BinaryOp::kGt:
          return h.SelectivityGreater(v, false);
        case BinaryOp::kGe:
          return h.SelectivityGreater(v, true);
        default:
          return kDefaultRange;
      }
    }
    case Expr::Kind::kUnary:
      switch (e.uop) {
        case UnaryOp::kNot:
          return std::max(0.0, 1.0 - ConjunctSelectivity(*e.children[0]));
        case UnaryOp::kIsNull: {
          if (e.children[0]->kind == Expr::Kind::kColumnRef) {
            const ColumnStats* cs = ColumnStatsFor(e.children[0]->ref_id,
                                                   e.children[0]->column_idx);
            if (cs != nullptr && !cs->histogram.empty()) {
              return cs->histogram.null_fraction();
            }
          }
          return 0.05;
        }
        case UnaryOp::kIsNotNull:
          return 0.95;
        case UnaryOp::kNeg:
          return kDefaultOther;
      }
      return kDefaultOther;
    case Expr::Kind::kBetween: {
      if (e.children[0]->kind == Expr::Kind::kColumnRef &&
          IsConstExpr(*e.children[1]) && IsConstExpr(*e.children[2])) {
        const ColumnStats* cs = ColumnStatsFor(e.children[0]->ref_id,
                                               e.children[0]->column_idx);
        auto lo = EvalConstExpr(*e.children[1]);
        auto hi = EvalConstExpr(*e.children[2]);
        if (cs != nullptr && !cs->histogram.empty() && lo.ok() && hi.ok()) {
          const Histogram& h = cs->histogram;
          double s = h.SelectivityLess(NormalizeProbe(*hi), true) -
                     h.SelectivityLess(NormalizeProbe(*lo), false);
          s = std::clamp(s, 0.0, 1.0);
          return e.negated ? std::clamp(1.0 - s, 0.0, 1.0) : s;
        }
      }
      double s = kDefaultRange * kDefaultRange * 4;  // moderately selective
      return e.negated ? 1.0 - s : s;
    }
    case Expr::Kind::kInList: {
      if (e.children[0]->kind == Expr::Kind::kColumnRef) {
        const ColumnStats* cs = ColumnStatsFor(e.children[0]->ref_id,
                                               e.children[0]->column_idx);
        if (cs != nullptr && !cs->histogram.empty()) {
          double s = 0;
          for (size_t i = 1; i < e.children.size(); ++i) {
            auto v = EvalConstExpr(*e.children[i]);
            if (v.ok()) {
              s += cs->histogram.SelectivityEquals(NormalizeProbe(*v));
            }
          }
          s = std::clamp(s, 0.0, 1.0);
          return e.negated ? 1.0 - s : s;
        }
      }
      double s = std::min(1.0, kDefaultEq *
                                   static_cast<double>(e.children.size() - 1));
      return e.negated ? 1.0 - s : s;
    }
    case Expr::Kind::kLike:
      // Histograms cannot see inside regular expressions (the paper makes
      // this point for TPC-H Q16); use a flat default.
      return e.negated ? 1.0 - kDefaultLike : kDefaultLike;
    case Expr::Kind::kExists:
    case Expr::Kind::kInSubquery:
      return kDefaultOther;
    default:
      return kDefaultOther;
  }
}

}  // namespace taurus
