#ifndef TAURUS_MYOPT_REFINE_H_
#define TAURUS_MYOPT_REFINE_H_

#include <memory>

#include "catalog/catalog.h"
#include "common/result.h"
#include "exec/physical_plan.h"
#include "frontend/binder.h"
#include "myopt/skeleton.h"

namespace taurus {

/// MySQL plan refinement (Section 4.3): turns a skeleton plan (join order,
/// join methods, access methods — from either the MySQL optimizer or the
/// Orca detour) plus the prepared AST into an executable plan. Refinement
/// performs the four tasks the paper lists: predicate placement (scan
/// filters, index range bounds, index lookup keys, join conditions, post-
/// outer-join filters), aggregation, row ordering, and row-limit
/// enforcement. It is deliberately oblivious of which optimizer produced
/// the skeleton.
///
/// Consumes `stmt` (the AST moves into the returned CompiledQuery).
Result<std::unique_ptr<CompiledQuery>> RefinePlan(BoundStatement stmt,
                                                  const BlockSkeleton& skel,
                                                  const Catalog& catalog);

}  // namespace taurus

#endif  // TAURUS_MYOPT_REFINE_H_
