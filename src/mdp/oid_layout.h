#ifndef TAURUS_MDP_OID_LAYOUT_H_
#define TAURUS_MDP_OID_LAYOUT_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "parser/ast.h"
#include "types/type.h"

namespace taurus {

/// Metadata OID layout (paper Section 5.6): every object type occupies a
/// contiguous slot starting at a "base", with the object's enumeration id
/// added ("base + enumeration ID"). Relations and their columns/indexes —
/// whose counts are unknown in advance — live far above the fixed slots,
/// strided so they cannot collide.
inline constexpr int64_t kInvalidOid = -1;

inline constexpr int64_t kTypeBase = 1000;      // 31 types
inline constexpr int64_t kArithBase = 2000;     // 12*12*5  = 720 exprs
inline constexpr int64_t kCmpBase = 3000;       // 12*12*6  = 864 exprs
inline constexpr int64_t kAggBase = 4000;       // 14*6     = 84 exprs
inline constexpr int64_t kMappedFuncBase = 5000; // parallel to expressions
inline constexpr int64_t kRegularFuncBase = 8000;
inline constexpr int64_t kRelationBase = 1000000;
inline constexpr int64_t kRelationStride = 4096;
/// Within a relation's stride: columns at +1.., indexes at +2048...
inline constexpr int64_t kIndexSlot = 2048;

/// Number of expression points in each cube.
inline constexpr int kNumArithExprs = 12 * 12 * 5;
inline constexpr int kNumCmpExprs = 12 * 12 * 6;
inline constexpr int kNumAggExprs = 14 * 6;

/// Arithmetic operators indexed along the cube's Z axis, order {+,-,*,/,%}.
int ArithOpIndex(BinaryOp op);  // -1 when not arithmetic
/// Comparison operators, order {=, <>, <, <=, >, >=} (Section 5.3).
int CmpOpIndex(BinaryOp op);  // -1 when not a comparison
BinaryOp ArithOpFromIndex(int k);
BinaryOp CmpOpFromIndex(int k);

// --- Types ---
int64_t TypeOid(TypeId type);
Result<TypeId> TypeFromOid(int64_t oid);

// --- Expression cubes: (i, j, k) <-> linear enumeration <-> OID ---
/// Arithmetic expression OID for left/right type categories and operator.
Result<int64_t> ArithExprOid(TypeCategory left, TypeCategory right,
                             BinaryOp op);
/// Comparison expression OID.
Result<int64_t> CmpExprOid(TypeCategory left, TypeCategory right,
                           BinaryOp op);
/// Aggregate expression OID (cat may be kStar/kAny for COUNT forms).
Result<int64_t> AggExprOid(TypeCategory cat, AggFunc func);

/// Decoded expression-cube point.
struct ExprPoint {
  enum class Family { kArith, kCmp, kAgg } family;
  TypeCategory left;            // agg: the (possibly STAR/ANY) category
  TypeCategory right;           // agg: unused
  BinaryOp op;                  // arith/cmp
  AggFunc agg;                  // agg
};
Result<ExprPoint> DecodeExprOid(int64_t oid);

/// OID of the commutator expression (Section 5.3): swaps operand
/// categories; `+`/`*` and all comparisons commute, `-`/`/`/`%` do not.
/// Returns kInvalidOid when no commutator exists.
int64_t CommutatorOid(int64_t expr_oid);

/// OID of the inverse (NOT-eliminating) expression; comparisons only.
int64_t InverseOid(int64_t expr_oid);

/// Human-readable expression name, e.g. "STR_EQ_STR" (Section 5.7).
std::string ExprOidName(int64_t oid);

// --- Relations ---
int64_t RelationOid(int table_id);
int64_t ColumnOid(int table_id, int column_idx);
int64_t IndexOid(int table_id, int index_idx);
/// Table id from any relation/column/index OID, or -1.
int TableIdFromOid(int64_t oid);

}  // namespace taurus

#endif  // TAURUS_MDP_OID_LAYOUT_H_
