#include "mdp/stats_adapter.h"

namespace taurus {

double MdpStatsProvider::LeafBaseRows(const TableRef& leaf) const {
  if (leaf.kind == TableRef::Kind::kBase && leaf.table != nullptr) {
    auto rel = mdp_->GetRelation(RelationOid(leaf.table->id));
    if (rel.ok() && (*rel)->rows > 0) {
      return static_cast<double>((*rel)->rows);
    }
    return 1000.0;
  }
  return StatsProvider::LeafBaseRows(leaf);  // derived-table estimates
}

const ColumnStats* MdpStatsProvider::ColumnStatsFor(int ref_id,
                                                    int column_idx) const {
  const TableRef* leaf = LeafByRef(ref_id);
  if (leaf == nullptr || leaf->kind != TableRef::Kind::kBase ||
      leaf->table == nullptr) {
    return nullptr;
  }
  auto rel = mdp_->GetRelation(RelationOid(leaf->table->id));
  if (!rel.ok()) return nullptr;
  if (column_idx < 0 ||
      static_cast<size_t>(column_idx) >= (*rel)->columns.size()) {
    return nullptr;
  }
  return &(*rel)->columns[static_cast<size_t>(column_idx)].stats;
}

}  // namespace taurus
