#ifndef TAURUS_MDP_STATS_ADAPTER_H_
#define TAURUS_MDP_STATS_ADAPTER_H_

#include <vector>

#include "catalog/histogram.h"
#include "mdp/provider.h"
#include "myopt/cardinality.h"

namespace taurus {

/// StatsProvider implementation for the Orca path: every statistic is
/// answered from the metadata provider's DXL-reconstructed relation info
/// (never directly from the catalog), and string probe values are run
/// through the order-preserving 64-bit prefix encoding so they are
/// comparable with the encoded histogram boundaries (Section 7).
///
/// The deliberate consequence — also the paper's documented limitation —
/// is that strings sharing a >=8-byte prefix become indistinguishable to
/// Orca's cardinality estimation.
class MdpStatsProvider : public StatsProvider {
 public:
  MdpStatsProvider(const Catalog& catalog,
                   const std::vector<TableRef*>& leaves,
                   MetadataProvider* mdp)
      : StatsProvider(catalog, leaves), mdp_(mdp) {}

  double LeafBaseRows(const TableRef& leaf) const override;

  const ColumnStats* ColumnStatsFor(int ref_id,
                                    int column_idx) const override;

  Value NormalizeProbe(Value v) const override {
    if (v.kind() == Value::Kind::kString) {
      return Value::Int(EncodeStringPrefix(v.AsString()));
    }
    return v;
  }

 private:
  MetadataProvider* mdp_;
};

}  // namespace taurus

#endif  // TAURUS_MDP_STATS_ADAPTER_H_
