#include "mdp/oid_layout.h"

namespace taurus {

namespace {

constexpr int kNumCats = kNumRegularTypeCategories;  // 12
constexpr int kNumAggCats = kNumAggTypeCategories;   // 14
constexpr int kNumAggFuncs = 6;

int AggFuncIndex(AggFunc f) {
  switch (f) {
    case AggFunc::kCountStar:
    case AggFunc::kCount:
      return 0;
    case AggFunc::kMin:
      return 1;
    case AggFunc::kMax:
      return 2;
    case AggFunc::kSum:
      return 3;
    case AggFunc::kAvg:
      return 4;
    case AggFunc::kStddev:
      return 5;
  }
  return -1;
}

AggFunc AggFuncFromIndex(int k, bool star) {
  switch (k) {
    case 0:
      return star ? AggFunc::kCountStar : AggFunc::kCount;
    case 1:
      return AggFunc::kMin;
    case 2:
      return AggFunc::kMax;
    case 3:
      return AggFunc::kSum;
    case 4:
      return AggFunc::kAvg;
    default:
      return AggFunc::kStddev;
  }
}

const char* CmpOpToken(int k) {
  static const char* kTokens[] = {"EQ", "NE", "LT", "LE", "GT", "GE"};
  return k >= 0 && k < 6 ? kTokens[k] : "?";
}

const char* ArithOpToken(int k) {
  static const char* kTokens[] = {"ADD", "SUB", "MUL", "DIV", "MOD"};
  return k >= 0 && k < 5 ? kTokens[k] : "?";
}

const char* AggToken(int k) {
  static const char* kTokens[] = {"COUNT", "MIN", "MAX", "SUM", "AVG",
                                  "STDDEV"};
  return k >= 0 && k < 6 ? kTokens[k] : "?";
}

}  // namespace

int ArithOpIndex(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return 0;
    case BinaryOp::kSub:
      return 1;
    case BinaryOp::kMul:
      return 2;
    case BinaryOp::kDiv:
      return 3;
    case BinaryOp::kMod:
      return 4;
    default:
      return -1;
  }
}

int CmpOpIndex(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return 0;
    case BinaryOp::kNe:
      return 1;
    case BinaryOp::kLt:
      return 2;
    case BinaryOp::kLe:
      return 3;
    case BinaryOp::kGt:
      return 4;
    case BinaryOp::kGe:
      return 5;
    default:
      return -1;
  }
}

BinaryOp ArithOpFromIndex(int k) {
  static const BinaryOp kOps[] = {BinaryOp::kAdd, BinaryOp::kSub,
                                  BinaryOp::kMul, BinaryOp::kDiv,
                                  BinaryOp::kMod};
  return kOps[k];
}

BinaryOp CmpOpFromIndex(int k) {
  static const BinaryOp kOps[] = {BinaryOp::kEq, BinaryOp::kNe,
                                  BinaryOp::kLt, BinaryOp::kLe,
                                  BinaryOp::kGt, BinaryOp::kGe};
  return kOps[k];
}

int64_t TypeOid(TypeId type) {
  return kTypeBase + static_cast<int64_t>(type);
}

Result<TypeId> TypeFromOid(int64_t oid) {
  int64_t e = oid - kTypeBase;
  if (e < 0 || e >= kNumTypeIds) {
    return Status::InvalidArgument("not a type OID: " + std::to_string(oid));
  }
  return static_cast<TypeId>(e);
}

Result<int64_t> ArithExprOid(TypeCategory left, TypeCategory right,
                             BinaryOp op) {
  int k = ArithOpIndex(op);
  int i = static_cast<int>(left);
  int j = static_cast<int>(right);
  if (k < 0 || i >= kNumCats || j >= kNumCats) {
    return Status::InvalidArgument("invalid arithmetic expression point");
  }
  return kArithBase + (static_cast<int64_t>(k) * kNumCats + i) * kNumCats + j;
}

Result<int64_t> CmpExprOid(TypeCategory left, TypeCategory right,
                           BinaryOp op) {
  int k = CmpOpIndex(op);
  int i = static_cast<int>(left);
  int j = static_cast<int>(right);
  if (k < 0 || i >= kNumCats || j >= kNumCats) {
    return Status::InvalidArgument("invalid comparison expression point");
  }
  return kCmpBase + (static_cast<int64_t>(k) * kNumCats + i) * kNumCats + j;
}

Result<int64_t> AggExprOid(TypeCategory cat, AggFunc func) {
  int k = AggFuncIndex(func);
  int i = static_cast<int>(cat);
  if (k < 0 || i >= kNumAggCats) {
    return Status::InvalidArgument("invalid aggregate expression point");
  }
  // COUNT(*) must use the STAR pseudo-category.
  if (func == AggFunc::kCountStar && cat != TypeCategory::kStar) {
    return Status::InvalidArgument("COUNT(*) requires the STAR category");
  }
  return kAggBase + static_cast<int64_t>(k) * kNumAggCats + i;
}

Result<ExprPoint> DecodeExprOid(int64_t oid) {
  ExprPoint p{};
  if (oid >= kArithBase && oid < kArithBase + kNumArithExprs) {
    int64_t e = oid - kArithBase;
    p.family = ExprPoint::Family::kArith;
    p.right = static_cast<TypeCategory>(e % kNumCats);
    e /= kNumCats;
    p.left = static_cast<TypeCategory>(e % kNumCats);
    p.op = ArithOpFromIndex(static_cast<int>(e / kNumCats));
    return p;
  }
  if (oid >= kCmpBase && oid < kCmpBase + kNumCmpExprs) {
    int64_t e = oid - kCmpBase;
    p.family = ExprPoint::Family::kCmp;
    p.right = static_cast<TypeCategory>(e % kNumCats);
    e /= kNumCats;
    p.left = static_cast<TypeCategory>(e % kNumCats);
    p.op = CmpOpFromIndex(static_cast<int>(e / kNumCats));
    return p;
  }
  if (oid >= kAggBase && oid < kAggBase + kNumAggExprs) {
    int64_t e = oid - kAggBase;
    p.family = ExprPoint::Family::kAgg;
    p.left = static_cast<TypeCategory>(e % kNumAggCats);
    p.right = p.left;
    p.agg = AggFuncFromIndex(static_cast<int>(e / kNumAggCats),
                             p.left == TypeCategory::kStar);
    return p;
  }
  return Status::InvalidArgument("not an expression OID: " +
                                 std::to_string(oid));
}

int64_t CommutatorOid(int64_t expr_oid) {
  auto point = DecodeExprOid(expr_oid);
  if (!point.ok()) return kInvalidOid;
  const ExprPoint& p = *point;
  switch (p.family) {
    case ExprPoint::Family::kArith:
      // Only + and * commute (Section 5.3).
      if (p.op != BinaryOp::kAdd && p.op != BinaryOp::kMul) {
        return kInvalidOid;
      }
      return *ArithExprOid(p.right, p.left, p.op);
    case ExprPoint::Family::kCmp:
      return *CmpExprOid(p.right, p.left, CommuteComparison(p.op));
    case ExprPoint::Family::kAgg:
      return kInvalidOid;  // unary
  }
  return kInvalidOid;
}

int64_t InverseOid(int64_t expr_oid) {
  auto point = DecodeExprOid(expr_oid);
  if (!point.ok()) return kInvalidOid;
  const ExprPoint& p = *point;
  if (p.family != ExprPoint::Family::kCmp) return kInvalidOid;
  return *CmpExprOid(p.left, p.right, InverseComparison(p.op));
}

std::string ExprOidName(int64_t oid) {
  auto point = DecodeExprOid(oid);
  if (!point.ok()) return "INVALID";
  const ExprPoint& p = *point;
  switch (p.family) {
    case ExprPoint::Family::kArith:
      return std::string(TypeCategoryName(p.left)) + "_" +
             ArithOpToken(ArithOpIndex(p.op)) + "_" +
             TypeCategoryName(p.right);
    case ExprPoint::Family::kCmp:
      return std::string(TypeCategoryName(p.left)) + "_" +
             CmpOpToken(CmpOpIndex(p.op)) + "_" + TypeCategoryName(p.right);
    case ExprPoint::Family::kAgg:
      return std::string(AggToken(AggFuncIndex(p.agg))) + "_" +
             TypeCategoryName(p.left);
  }
  return "INVALID";
}

int64_t RelationOid(int table_id) {
  return kRelationBase + static_cast<int64_t>(table_id) * kRelationStride;
}

int64_t ColumnOid(int table_id, int column_idx) {
  return RelationOid(table_id) + 1 + column_idx;
}

int64_t IndexOid(int table_id, int index_idx) {
  return RelationOid(table_id) + kIndexSlot + index_idx;
}

int TableIdFromOid(int64_t oid) {
  if (oid < kRelationBase) return -1;
  return static_cast<int>((oid - kRelationBase) / kRelationStride);
}

}  // namespace taurus
