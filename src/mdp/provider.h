#ifndef TAURUS_MDP_PROVIDER_H_
#define TAURUS_MDP_PROVIDER_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "mdp/oid_layout.h"

namespace taurus {

/// Relation metadata as reconstructed from a DXL document: what the Orca
/// side knows about a MySQL table. String histogram boundaries arrive
/// already converted to order-preserving 64-bit integers (Section 7).
struct MdpRelationInfo {
  int64_t oid = kInvalidOid;
  std::string name;
  int64_t rows = 0;
  struct Column {
    int64_t oid = kInvalidOid;
    std::string name;
    TypeId type = TypeId::kLong;
    int length = 0;
    bool nullable = true;
    ColumnStats stats;  ///< histogram with numeric (encoded) boundaries
  };
  std::vector<Column> columns;
  struct Index {
    int64_t oid = kInvalidOid;
    std::string name;
    std::vector<int> key_columns;
    bool unique = false;
  };
  std::vector<Index> indexes;
};

/// The MySQL metadata provider (paper Section 5): Orca's plug-in interface
/// to MySQL's data dictionary. Object lookups used while building the
/// logical tree return OIDs directly; bulk metadata (relations, columns,
/// statistics, histograms) is exchanged as DXL documents, which the Orca
/// side parses and caches — the paper's "Orca maintains an internal
/// metadata cache" (Section 5.7).
///
/// Unlike the PostgreSQL provider, no function pointers are returned:
/// queries execute inside MySQL (Section 5), so mapped/regular functions
/// exist purely as metadata IDs.
class MetadataProvider {
 public:
  explicit MetadataProvider(const Catalog& catalog) : catalog_(&catalog) {}
  MetadataProvider(const MetadataProvider&) = delete;
  MetadataProvider& operator=(const MetadataProvider&) = delete;

  // --- Object-id lookups (parse-tree-converter "embellishment") ---

  /// OID of a relation by (schema-qualified) name.
  Result<int64_t> RelationOidByName(const std::string& name) const;

  /// OID for a comparison expression over concrete MySQL types; the types
  /// are first mapped to their categories (Section 5.2).
  Result<int64_t> ComparisonOid(BinaryOp op, TypeId left, TypeId right) const;

  /// OID for an arithmetic expression.
  Result<int64_t> ArithmeticOid(BinaryOp op, TypeId left, TypeId right) const;

  /// OID for an aggregate expression. COUNT(*) maps to the STAR category;
  /// COUNT(expr) maps to ANY (Section 5.2); other aggregates use the
  /// argument type's category.
  Result<int64_t> AggregateOid(AggFunc func, TypeId arg_type) const;

  /// Mapped-function OID parallel to an expression OID (Section 5.4).
  int64_t MappedFunctionOid(int64_t expr_oid) const;

  /// Regular (SQL builtin) function OID: EXTRACT, SUBSTRING, CAST, ... .
  Result<int64_t> RegularFunctionOid(const std::string& name) const;

  // --- DXL exchange ---

  /// Serializes a relation (definition + statistics + histograms) to DXL.
  /// String histogram bucket boundaries are encoded to int64 via the
  /// order-preserving prefix encoding.
  Result<std::string> RelationToDxl(int64_t relation_oid) const;

  /// Parses a relation DXL document (inverse of RelationToDxl).
  static Result<MdpRelationInfo> ParseRelationDxl(const std::string& dxl);

  /// Cached fetch: serializes + parses on first use, then serves from the
  /// metadata cache. Thread-safe: concurrent compiles take a shared lock on
  /// the hit path; a miss serializes/parses outside the lock and inserts
  /// double-checked. Returned pointers stay valid for the provider's
  /// lifetime (entries are never evicted, only added).
  Result<const MdpRelationInfo*> GetRelation(int64_t relation_oid)
      TAURUS_EXCLUDES(cache_mu_);

  // Cache instrumentation.
  int64_t dxl_requests() const {
    return dxl_requests_.load(std::memory_order_relaxed);
  }
  int64_t cache_hits() const {
    return cache_hits_.load(std::memory_order_relaxed);
  }

 private:
  const Catalog* catalog_;
  mutable SharedMutex cache_mu_{LockRank::kMdpRelationCache,
                                "mdp.relation_cache"};
  std::map<int64_t, std::unique_ptr<MdpRelationInfo>> cache_
      TAURUS_GUARDED_BY(cache_mu_);
  std::atomic<int64_t> dxl_requests_{0};
  std::atomic<int64_t> cache_hits_{0};
};

}  // namespace taurus

#endif  // TAURUS_MDP_PROVIDER_H_
