#include "mdp/provider.h"

#include <cstdio>
#include <cstdlib>

#include "catalog/histogram.h"
#include "common/fault_injector.h"
#include "common/strings.h"

namespace taurus {

namespace {

/// Regular (non-mapped) SQL functions the provider registers, in OID order.
const char* kRegularFunctions[] = {
    "extract", "substring", "substr", "cast",   "round", "upper",
    "lower",   "concat",    "abs",    "length", "trim",  "coalesce",
    "ifnull",  "nullif",    "if",     "mod",    "year",  "month",
    "day"};

std::string EscapeAttr(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '&':
        out += "&amp;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string UnescapeAttr(const std::string& s) {
  std::string out;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '&') {
      out += s[i];
      continue;
    }
    if (s.compare(i, 4, "&lt;") == 0) {
      out += '<';
      i += 3;
    } else if (s.compare(i, 4, "&gt;") == 0) {
      out += '>';
      i += 3;
    } else if (s.compare(i, 5, "&amp;") == 0) {
      out += '&';
      i += 4;
    } else if (s.compare(i, 6, "&quot;") == 0) {
      out += '"';
      i += 5;
    } else {
      out += s[i];
    }
  }
  return out;
}

/// One parsed DXL element: tag name + attribute map.
struct DxlElement {
  std::string tag;
  std::map<std::string, std::string> attrs;
  bool closing = false;

  std::string attr(const std::string& key) const {
    auto it = attrs.find(key);
    return it == attrs.end() ? "" : UnescapeAttr(it->second);
  }
  int64_t int_attr(const std::string& key) const {
    return std::strtoll(attr(key).c_str(), nullptr, 10);
  }
  double dbl_attr(const std::string& key) const {
    return std::strtod(attr(key).c_str(), nullptr);
  }
};

/// Minimal scanner over the mini-DXL format (self-closing elements plus
/// one enclosing <dxl:Relation> pair).
Result<std::vector<DxlElement>> ScanDxl(const std::string& dxl) {
  std::vector<DxlElement> out;
  size_t i = 0;
  while (i < dxl.size()) {
    if (dxl[i] != '<') {
      ++i;
      continue;
    }
    size_t end = dxl.find('>', i);
    if (end == std::string::npos) {
      return Status::InvalidArgument("malformed DXL: unterminated element");
    }
    std::string body = dxl.substr(i + 1, end - i - 1);
    i = end + 1;
    DxlElement elem;
    if (!body.empty() && body[0] == '/') {
      elem.closing = true;
      elem.tag = body.substr(1);
      out.push_back(std::move(elem));
      continue;
    }
    if (!body.empty() && body.back() == '/') body.pop_back();
    size_t sp = body.find_first_of(" \t");
    elem.tag = body.substr(0, sp);
    while (sp != std::string::npos) {
      size_t key_start = body.find_first_not_of(" \t", sp);
      if (key_start == std::string::npos) break;
      size_t eq = body.find('=', key_start);
      if (eq == std::string::npos) break;
      std::string key = body.substr(key_start, eq - key_start);
      size_t q1 = body.find('"', eq);
      size_t q2 = q1 == std::string::npos ? std::string::npos
                                          : body.find('"', q1 + 1);
      if (q2 == std::string::npos) {
        return Status::InvalidArgument("malformed DXL attribute in " +
                                       elem.tag);
      }
      elem.attrs[key] = body.substr(q1 + 1, q2 - q1 - 1);
      sp = q2 + 1;
    }
    out.push_back(std::move(elem));
  }
  return out;
}

/// Formats a double with enough precision to round-trip.
std::string Dbl(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

Result<int64_t> MetadataProvider::RelationOidByName(
    const std::string& name) const {
  TAURUS_FAULT_POINT("mdp.relation_lookup");
  const TableDef* table = catalog_->GetTable(name);
  if (table == nullptr) {
    return Status::NotFound("metadata provider: no relation " + name);
  }
  return RelationOid(table->id);
}

Result<int64_t> MetadataProvider::ComparisonOid(BinaryOp op, TypeId left,
                                                TypeId right) const {
  return CmpExprOid(CategoryOf(left), CategoryOf(right), op);
}

Result<int64_t> MetadataProvider::ArithmeticOid(BinaryOp op, TypeId left,
                                                TypeId right) const {
  return ArithExprOid(CategoryOf(left), CategoryOf(right), op);
}

Result<int64_t> MetadataProvider::AggregateOid(AggFunc func,
                                               TypeId arg_type) const {
  TypeCategory cat;
  if (func == AggFunc::kCountStar) {
    cat = TypeCategory::kStar;
  } else if (func == AggFunc::kCount) {
    cat = TypeCategory::kAny;
  } else {
    cat = CategoryOf(arg_type);
  }
  return AggExprOid(cat, func);
}

int64_t MetadataProvider::MappedFunctionOid(int64_t expr_oid) const {
  // Mapped functions mirror the expression enumeration (Section 5.4); the
  // OID is the expression's slot translated to the function base.
  auto point = DecodeExprOid(expr_oid);
  if (!point.ok()) return kInvalidOid;
  switch (point->family) {
    case ExprPoint::Family::kArith:
      return kMappedFuncBase + (expr_oid - kArithBase);
    case ExprPoint::Family::kCmp:
      return kMappedFuncBase + kNumArithExprs + (expr_oid - kCmpBase);
    case ExprPoint::Family::kAgg:
      return kMappedFuncBase + kNumArithExprs + kNumCmpExprs +
             (expr_oid - kAggBase);
  }
  return kInvalidOid;
}

Result<int64_t> MetadataProvider::RegularFunctionOid(
    const std::string& name) const {
  std::string lower = AsciiLower(name);
  for (size_t i = 0; i < std::size(kRegularFunctions); ++i) {
    if (lower == kRegularFunctions[i]) {
      return kRegularFuncBase + static_cast<int64_t>(i);
    }
  }
  return Status::NotFound("metadata provider: unknown function " + name);
}

Result<std::string> MetadataProvider::RelationToDxl(
    int64_t relation_oid) const {
  int table_id = TableIdFromOid(relation_oid);
  const TableDef* table = catalog_->GetTableById(table_id);
  if (table == nullptr || RelationOid(table_id) != relation_oid) {
    return Status::NotFound("metadata provider: bad relation OID " +
                            std::to_string(relation_oid));
  }
  const TableStats& stats = catalog_->GetStats(table_id);

  std::string dxl;
  dxl += "<dxl:Relation Oid=\"" + std::to_string(relation_oid) +
         "\" Name=\"" + EscapeAttr(table->name) + "\" Rows=\"" +
         std::to_string(stats.row_count) + "\">\n";
  for (size_t c = 0; c < table->columns.size(); ++c) {
    const ColumnDef& col = table->columns[c];
    dxl += "  <dxl:Column Oid=\"" +
           std::to_string(ColumnOid(table_id, static_cast<int>(c))) +
           "\" Name=\"" + EscapeAttr(col.name) + "\" TypeOid=\"" +
           std::to_string(TypeOid(col.type)) + "\" Length=\"" +
           std::to_string(col.length) + "\" Nullable=\"" +
           (col.nullable ? "1" : "0") + "\"";
    const ColumnStats* cs = stats.column(static_cast<int>(c));
    if (cs != nullptr) {
      dxl += " Ndv=\"" + std::to_string(cs->distinct_count) +
             "\" Nulls=\"" + std::to_string(cs->null_count) + "\"";
    }
    dxl += "/>\n";
    if (cs != nullptr && !cs->histogram.empty()) {
      const Histogram& h = cs->histogram;
      dxl += "  <dxl:ColumnStats Column=\"" + std::to_string(c) +
             "\" Kind=\"" +
             (h.type() == HistogramType::kSingleton ? "Singleton"
                                                    : "EquiHeight") +
             "\" NullFrac=\"" + Dbl(h.null_fraction()) + "\">\n";
      for (const HistogramBucket& b : h.buckets()) {
        // String boundaries leave MySQL as order-preserving 64-bit
        // integers (Section 7) — ValueToStatsDouble applies exactly that
        // encoding for strings and the identity for numerics.
        dxl += "    <dxl:Bucket Lo=\"" + Dbl(ValueToStatsDouble(b.lower)) +
               "\" Hi=\"" + Dbl(ValueToStatsDouble(b.upper)) +
               "\" Freq=\"" + Dbl(b.frequency) + "\" Ndv=\"" +
               std::to_string(b.ndv) + "\"/>\n";
      }
      dxl += "  </dxl:ColumnStats>\n";
    }
  }
  for (size_t i = 0; i < table->indexes.size(); ++i) {
    const IndexDef& idx = table->indexes[i];
    std::string keys;
    for (size_t k = 0; k < idx.column_idx.size(); ++k) {
      if (k) keys += ",";
      keys += std::to_string(idx.column_idx[k]);
    }
    dxl += "  <dxl:Index Oid=\"" +
           std::to_string(IndexOid(table_id, static_cast<int>(i))) +
           "\" Name=\"" + EscapeAttr(idx.name) + "\" Unique=\"" +
           (idx.unique ? "1" : "0") + "\" Keys=\"" + keys + "\"/>\n";
  }
  dxl += "</dxl:Relation>\n";
  return dxl;
}

Result<MdpRelationInfo> MetadataProvider::ParseRelationDxl(
    const std::string& dxl) {
  TAURUS_ASSIGN_OR_RETURN(std::vector<DxlElement> elems, ScanDxl(dxl));
  MdpRelationInfo info;
  int stats_column = -1;
  HistogramType stats_kind = HistogramType::kSingleton;
  double stats_nullfrac = 0.0;
  std::vector<HistogramBucket> buckets;

  auto finish_stats = [&]() -> Status {
    if (stats_column < 0) return Status::OK();
    if (static_cast<size_t>(stats_column) >= info.columns.size()) {
      return Status::InvalidArgument("DXL stats for unknown column");
    }
    // Reconstruct the histogram from numeric boundaries. Rebuild through a
    // value stream so Histogram's invariants hold.
    ColumnStats& cs = info.columns[static_cast<size_t>(stats_column)].stats;
    cs.histogram = Histogram();
    // Direct reconstruction: use the Build() path on synthetic values is
    // lossy; instead install the buckets verbatim via the test-only
    // factory below.
    cs.histogram = Histogram::FromBuckets(stats_kind, std::move(buckets),
                                          stats_nullfrac);
    buckets.clear();
    stats_column = -1;
    return Status::OK();
  };

  for (const DxlElement& e : elems) {
    if (e.closing) {
      if (e.tag == "dxl:ColumnStats") {
        TAURUS_RETURN_IF_ERROR(finish_stats());
      }
      continue;
    }
    if (e.tag == "dxl:Relation") {
      info.oid = e.int_attr("Oid");
      info.name = e.attr("Name");
      info.rows = e.int_attr("Rows");
    } else if (e.tag == "dxl:Column") {
      MdpRelationInfo::Column col;
      col.oid = e.int_attr("Oid");
      col.name = e.attr("Name");
      TAURUS_ASSIGN_OR_RETURN(col.type, TypeFromOid(e.int_attr("TypeOid")));
      col.length = static_cast<int>(e.int_attr("Length"));
      col.nullable = e.int_attr("Nullable") != 0;
      col.stats.distinct_count = e.int_attr("Ndv");
      col.stats.null_count = e.int_attr("Nulls");
      info.columns.push_back(std::move(col));
    } else if (e.tag == "dxl:ColumnStats") {
      stats_column = static_cast<int>(e.int_attr("Column"));
      stats_kind = e.attr("Kind") == "Singleton" ? HistogramType::kSingleton
                                                 : HistogramType::kEquiHeight;
      stats_nullfrac = e.dbl_attr("NullFrac");
    } else if (e.tag == "dxl:Bucket") {
      HistogramBucket b;
      b.lower = Value::Double(e.dbl_attr("Lo"));
      b.upper = Value::Double(e.dbl_attr("Hi"));
      b.frequency = e.dbl_attr("Freq");
      b.ndv = e.int_attr("Ndv");
      buckets.push_back(std::move(b));
    } else if (e.tag == "dxl:Index") {
      MdpRelationInfo::Index idx;
      idx.oid = e.int_attr("Oid");
      idx.name = e.attr("Name");
      idx.unique = e.int_attr("Unique") != 0;
      for (const std::string& k : SplitString(e.attr("Keys"), ',')) {
        if (!k.empty()) idx.key_columns.push_back(std::atoi(k.c_str()));
      }
      info.indexes.push_back(std::move(idx));
    }
  }
  if (info.oid == kInvalidOid) {
    return Status::InvalidArgument("DXL document has no dxl:Relation");
  }
  return info;
}

Result<const MdpRelationInfo*> MetadataProvider::GetRelation(
    int64_t relation_oid) {
  {
    ReaderMutexLock lock(&cache_mu_);
    auto it = cache_.find(relation_oid);
    if (it != cache_.end()) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second.get();
    }
  }
  // Miss: serialize + parse outside any lock (both are pure reads of the
  // catalog), then insert double-checked — a racing compile may have
  // populated the entry meanwhile, in which case its copy wins.
  dxl_requests_.fetch_add(1, std::memory_order_relaxed);
  TAURUS_ASSIGN_OR_RETURN(std::string dxl, RelationToDxl(relation_oid));
  TAURUS_ASSIGN_OR_RETURN(MdpRelationInfo info, ParseRelationDxl(dxl));
  auto owned = std::make_unique<MdpRelationInfo>(std::move(info));
  WriterMutexLock lock(&cache_mu_);
  auto [it, inserted] = cache_.emplace(relation_oid, std::move(owned));
  if (!inserted) cache_hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second.get();
}

}  // namespace taurus
