#include "verify/block_verifier.h"

#include <map>
#include <set>
#include <string>
#include <vector>

#include "parser/ast_util.h"

namespace taurus {

namespace {

std::string LeafName(const TableRef* leaf) {
  if (leaf == nullptr) return "?";
  return leaf->alias.empty() ? leaf->table_name : leaf->alias;
}

std::string OpLabel(const PhysOp& op) {
  switch (op.kind) {
    case PhysOp::Kind::kTableScan:
      return "scan(" + LeafName(op.leaf) + ")";
    case PhysOp::Kind::kIndexRange:
      return "index_range(" + LeafName(op.leaf) + ")";
    case PhysOp::Kind::kIndexLookup:
      return "index_lookup(" + LeafName(op.leaf) + ")";
    case PhysOp::Kind::kDerivedScan:
      return "derived_scan(" + LeafName(op.leaf) + ")";
    case PhysOp::Kind::kNLJoin:
      return "nljoin";
    case PhysOp::Kind::kHashJoin:
      return "hashjoin";
    case PhysOp::Kind::kFilter:
      return "filter";
  }
  return "?";
}

/// Serial reasons AnalyzeParallelSafety can state (refine.cc); anything
/// else on a serial pipeline means the flag and the analysis diverged.
const std::set<std::string>& KnownSerialReasons() {
  static const std::set<std::string> kReasons = {
      "no driving table",
      "semi/anti-join probe pipeline",
      "ordered index-range driver",
      "index-lookup driver",
      "derived-table driver",
      "no table-scan driver",
      "derived table on a worker-side inner loop",
      "expression subquery in pipeline",
      "correlated pipeline",
      "row-limit early exit",
  };
  return kReasons;
}

class BlockVerifier {
 public:
  BlockVerifier(const CompiledQuery& query, VerifyReport* report)
      : query_(&query), report_(report) {
    // Leaf lookup for B003: every leaf reachable from the bound AST.
    std::vector<const QueryBlock*> blocks{query.ast.get()};
    while (!blocks.empty()) {
      const QueryBlock* b = blocks.back();
      blocks.pop_back();
      if (b == nullptr) continue;
      for (const TableRef* leaf : b->Leaves()) {
        if (leaf->ref_id >= 0) leaf_by_ref_[leaf->ref_id] = leaf;
        if (leaf->kind == TableRef::Kind::kDerived) {
          blocks.push_back(leaf->derived.get());
        }
      }
      CollectSubqueryBlocks(*b, &blocks);
      if (b->union_next != nullptr) blocks.push_back(b->union_next.get());
    }
  }

  void Run() {
    report_->rules_checked += kNumBlockRules;
    if (query_->root != nullptr) WalkBlock(*query_->root);
    for (const auto& sub : query_->subplans) {
      if (sub != nullptr && sub->plan != nullptr) WalkBlock(*sub->plan);
    }
  }

 private:
  static void CollectSubqueryBlocks(const QueryBlock& b,
                                    std::vector<const QueryBlock*>* out) {
    std::vector<const Expr*> roots;
    for (const auto& item : b.select_items) roots.push_back(item.expr.get());
    if (b.where) roots.push_back(b.where.get());
    for (const auto& g : b.group_by) roots.push_back(g.get());
    if (b.having) roots.push_back(b.having.get());
    for (const auto& o : b.order_by) roots.push_back(o.expr.get());
    std::vector<const TableRef*> stack;
    for (const auto& t : b.from) stack.push_back(t.get());
    while (!stack.empty()) {
      const TableRef* r = stack.back();
      stack.pop_back();
      if (r->kind == TableRef::Kind::kJoin) {
        if (r->on) roots.push_back(r->on.get());
        stack.push_back(r->left.get());
        stack.push_back(r->right.get());
      }
    }
    std::vector<const Expr*> estack(roots.begin(), roots.end());
    while (!estack.empty()) {
      const Expr* e = estack.back();
      estack.pop_back();
      if (e->subquery) out->push_back(e->subquery.get());
      for (const auto& c : e->children) estack.push_back(c.get());
    }
  }

  void WalkBlock(const BlockPlan& plan) {
    if (visited_.count(&plan) != 0) return;  // CTE copies share derived plans
    visited_.insert(&plan);
    const std::string path =
        "block " +
        std::to_string(plan.block != nullptr ? plan.block->block_id : -1);

    if (plan.join_root != nullptr) {
      WalkOp(*plan.join_root, path + "/" + OpLabel(*plan.join_root));
    }
    CheckParallelConsistency(plan, path);

    // Block-level expressions (B003).
    for (const Expr* e : plan.group_exprs) CheckExprRefs(e, path);
    for (const Expr* e : plan.agg_exprs) CheckExprRefs(e, path);
    for (const auto& [e, asc] : plan.order_keys) {
      (void)asc;
      CheckExprRefs(e, path);
    }
    for (const Expr* e : plan.projections) CheckExprRefs(e, path);
    CheckExprRefs(plan.having, path);

    for (const auto& arm : plan.union_arms) {
      if (arm != nullptr) WalkBlock(*arm);
    }
  }

  void WalkOp(const PhysOp& op, const std::string& path) {
    // B001: operator shape.
    switch (op.kind) {
      case PhysOp::Kind::kNLJoin:
      case PhysOp::Kind::kHashJoin:
        if (op.child == nullptr || op.right == nullptr) {
          report_->AddError("B001", path, "join missing a child");
        }
        break;
      case PhysOp::Kind::kFilter:
        if (op.child == nullptr) {
          report_->AddError("B001", path, "filter without an input");
        }
        if (op.conds.empty()) {
          report_->AddError("B001", path, "filter without a condition");
        }
        break;
      case PhysOp::Kind::kTableScan:
        if (op.leaf == nullptr) {
          report_->AddError("B001", path, "table scan without a leaf");
        }
        break;
      case PhysOp::Kind::kIndexRange:
      case PhysOp::Kind::kIndexLookup:
        if (op.leaf == nullptr || op.leaf->table == nullptr) {
          report_->AddError("B001", path, "index access without a base table");
        } else if (op.index_id < 0 ||
                   op.index_id >=
                       static_cast<int>(op.leaf->table->indexes.size())) {
          report_->AddError("B001", path,
                            "index id " + std::to_string(op.index_id) +
                                " out of range for table " +
                                op.leaf->table->name);
        } else if (op.kind == PhysOp::Kind::kIndexLookup &&
                   (op.lookup_keys.empty() ||
                    op.lookup_keys.size() >
                        op.leaf->table->indexes[static_cast<size_t>(
                                                    op.index_id)]
                            .column_idx.size())) {
          report_->AddError("B001", path,
                            "index lookup key count " +
                                std::to_string(op.lookup_keys.size()) +
                                " does not fit the index");
        }
        break;
      case PhysOp::Kind::kDerivedScan:
        if (op.derived_plan == nullptr) {
          report_->AddError("B001", path,
                            "derived scan without a materialization plan");
        } else {
          WalkBlock(*op.derived_plan);
        }
        break;
    }

    // B003: every expression the operator evaluates.
    for (const Expr* e : op.filters) CheckExprRefs(e, path);
    CheckExprRefs(op.range_lo, path);
    CheckExprRefs(op.range_hi, path);
    for (const Expr* e : op.lookup_keys) CheckExprRefs(e, path);
    for (const Expr* e : op.conds) CheckExprRefs(e, path);
    for (const auto& [l, r] : op.hash_keys) {
      CheckExprRefs(l, path);
      CheckExprRefs(r, path);
    }

    if (op.child != nullptr) {
      WalkOp(*op.child, path + "/" + OpLabel(*op.child));
    }
    if (op.right != nullptr) {
      WalkOp(*op.right, path + "/" + OpLabel(*op.right));
    }
  }

  /// B002: the parallel verdict must agree with the plan it describes.
  void CheckParallelConsistency(const BlockPlan& plan,
                                const std::string& path) {
    if (!plan.parallel_eligible) {
      if (plan.join_root != nullptr && plan.serial_reason.empty()) {
        report_->AddError("B002", path,
                          "serial pipeline without a stated reason");
      } else if (!plan.serial_reason.empty() &&
                 KnownSerialReasons().count(plan.serial_reason) == 0) {
        report_->AddError("B002", path,
                          "serial reason \"" + plan.serial_reason +
                              "\" is not one AnalyzeParallelSafety states");
      }
      return;
    }
    if (!plan.serial_reason.empty()) {
      report_->AddError("B002", path,
                        "parallel-eligible pipeline also states serial "
                        "reason \"" +
                            plan.serial_reason + "\"");
      return;
    }
    if (plan.join_root == nullptr) {
      report_->AddError("B002", path,
                        "parallel-eligible block has no driving pipeline");
      return;
    }
    // Re-derive the necessary conditions along the executor's driving-path
    // descent: Filter -> child, hash join -> probe side, NL join -> left;
    // the driver must be a full table scan and no semi/anti join may sit on
    // the path (its probe pipeline carries join state across morsels).
    const PhysOp* cur = plan.join_root.get();
    while (cur != nullptr) {
      switch (cur->kind) {
        case PhysOp::Kind::kTableScan:
          cur = nullptr;  // reached a splittable driver
          break;
        case PhysOp::Kind::kFilter:
          cur = cur->child.get();
          break;
        case PhysOp::Kind::kHashJoin:
        case PhysOp::Kind::kNLJoin: {
          if (cur->join_type == JoinType::kSemi ||
              cur->join_type == JoinType::kAntiSemi) {
            report_->AddError("B002", path,
                              "parallel-eligible pipeline drives through a "
                              "semi/anti join");
            return;
          }
          if (cur->kind == PhysOp::Kind::kNLJoin) {
            cur = cur->child.get();
          } else {
            bool build_is_left = cur->join_type == JoinType::kInner ||
                                 cur->join_type == JoinType::kCross;
            cur = build_is_left ? cur->right.get() : cur->child.get();
          }
          break;
        }
        case PhysOp::Kind::kIndexRange:
        case PhysOp::Kind::kIndexLookup:
        case PhysOp::Kind::kDerivedScan:
          report_->AddError("B002", path,
                            "parallel-eligible pipeline is driven by " +
                                OpLabel(*cur) + ", which cannot be split "
                                "into morsels");
          return;
      }
    }
    // No expression subquery may run on a worker (it mutates the shared
    // subplan cache).
    std::vector<const Expr*> block_exprs;
    for (const Expr* e : plan.group_exprs) block_exprs.push_back(e);
    for (const Expr* e : plan.agg_exprs) block_exprs.push_back(e);
    for (const auto& [e, asc] : plan.order_keys) {
      (void)asc;
      block_exprs.push_back(e);
    }
    for (const Expr* e : plan.projections) block_exprs.push_back(e);
    if (plan.having != nullptr) block_exprs.push_back(plan.having);
    for (const Expr* e : block_exprs) {
      if (e != nullptr && ContainsSubquery(*e)) {
        report_->AddError("B002", path,
                          "parallel-eligible pipeline evaluates an "
                          "expression subquery");
        return;
      }
    }
  }

  /// B003 over one expression tree (skips subquery bodies — they have their
  /// own subplans).
  void CheckExprRefs(const Expr* e, const std::string& path) {
    if (e == nullptr) return;
    if (e->kind == Expr::Kind::kColumnRef) {
      auto it = leaf_by_ref_.find(e->ref_id);
      if (it == leaf_by_ref_.end()) {
        report_->AddError("B003", path,
                          "column ref " + e->ToString() +
                              " has dangling table ref id " +
                              std::to_string(e->ref_id));
      } else {
        const TableRef* leaf = it->second;
        if (leaf->kind == TableRef::Kind::kBase && leaf->table != nullptr &&
            (e->column_idx < 0 ||
             e->column_idx >= static_cast<int>(leaf->table->columns.size()))) {
          report_->AddError("B003", path,
                            "column ref " + e->ToString() +
                                " has out-of-range column index " +
                                std::to_string(e->column_idx));
        }
      }
    }
    for (const auto& c : e->children) CheckExprRefs(c.get(), path);
  }

  const CompiledQuery* query_;
  VerifyReport* report_;
  std::map<int, const TableRef*> leaf_by_ref_;
  std::set<const BlockPlan*> visited_;
};

}  // namespace

void VerifyBlockPlan(const CompiledQuery& query, VerifyReport* report) {
  BlockVerifier(query, report).Run();
}

void VerifyExecBudgetArming(bool used_orca, bool budget_governs_exec,
                            const ExecContext& ctx, VerifyReport* report) {
  report->rules_checked += 1;
  bool armed = ctx.max_rows_scanned > 0 || ctx.exec_deadline_ms > 0;
  if (used_orca && budget_governs_exec && !armed) {
    report->AddError("B004", "exec",
                     "Orca-detour plan is executing without the configured "
                     "resource budget armed");
  }
  if (!used_orca && armed) {
    report->AddError("B004", "exec",
                     "MySQL-path plan is executing under the Orca exec "
                     "budget (must run unbudgeted)");
  }
}

}  // namespace taurus
