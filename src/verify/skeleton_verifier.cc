#include "verify/skeleton_verifier.h"

#include <cmath>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "parser/ast_util.h"

namespace taurus {

namespace {

void CollectRefIds(const Expr& e, std::set<int>* out) {
  if (e.kind == Expr::Kind::kColumnRef && e.ref_id >= 0) out->insert(e.ref_id);
  for (const auto& c : e.children) CollectRefIds(*c, out);
}

/// All predicate conjuncts of a block: WHERE plus every join ON condition.
void CollectBlockConjuncts(const QueryBlock& block,
                           std::vector<const Expr*>* out) {
  SplitConjuncts(block.where.get(), out);
  std::vector<const TableRef*> stack;
  for (const auto& t : block.from) stack.push_back(t.get());
  while (!stack.empty()) {
    const TableRef* r = stack.back();
    stack.pop_back();
    if (r->kind == TableRef::Kind::kJoin) {
      SplitConjuncts(r->on.get(), out);
      stack.push_back(r->left.get());
      stack.push_back(r->right.get());
    }
  }
}

/// True when some block conjunct binds the lookup index's first key column
/// to a purely-outer expression — the correlated "ref" access, which needs
/// no join-side outer rows and may therefore drive the first position.
bool HasCorrelatedBinding(const SkeletonNode& node, const QueryBlock& block) {
  const TableRef* leaf = node.leaf;
  if (leaf == nullptr || leaf->table == nullptr || node.index_id < 0 ||
      node.index_id >= static_cast<int>(leaf->table->indexes.size())) {
    return false;
  }
  const IndexDef& idx =
      leaf->table->indexes[static_cast<size_t>(node.index_id)];
  if (idx.column_idx.empty()) return false;
  std::set<int> block_refs;
  for (const TableRef* l : block.Leaves()) {
    if (l->ref_id >= 0) block_refs.insert(l->ref_id);
  }
  std::vector<const Expr*> conjuncts;
  CollectBlockConjuncts(block, &conjuncts);
  for (const Expr* c : conjuncts) {
    if (c->kind != Expr::Kind::kBinary || c->bop != BinaryOp::kEq) continue;
    for (int side = 0; side < 2; ++side) {
      const Expr& col = *c->children[static_cast<size_t>(side)];
      const Expr& other = *c->children[static_cast<size_t>(1 - side)];
      if (col.kind != Expr::Kind::kColumnRef || col.ref_id != leaf->ref_id ||
          col.column_idx != idx.column_idx[0]) {
        continue;
      }
      std::set<int> other_refs;
      CollectRefIds(other, &other_refs);
      bool all_outer = true;
      for (int r : other_refs) {
        if (block_refs.count(r) != 0) all_outer = false;
      }
      if (all_outer) return true;
    }
  }
  return false;
}

std::string LeafName(const TableRef* leaf) {
  if (leaf == nullptr) return "?";
  return leaf->alias.empty() ? leaf->table_name : leaf->alias;
}

std::string BlockPath(const QueryBlock* block) {
  return "block " + std::to_string(block != nullptr ? block->block_id : -1);
}

void CheckEstimate(const std::string& rule, const std::string& path,
                   const char* what, double v, VerifyReport* report) {
  if (!std::isfinite(v) || v < 0.0) {
    report->AddError(rule, path,
                     std::string(what) + " estimate " + std::to_string(v) +
                         " is negative or non-finite");
  }
}

/// Structural congruence of two skeleton trees (shape, join/access methods,
/// index choice, and base-table identity) — what "the same producer plan"
/// means once leaves are retargeted onto another CTE copy.
bool CongruentNodes(const SkeletonNode* a, const SkeletonNode* b) {
  if ((a == nullptr) != (b == nullptr)) return false;
  if (a == nullptr) return true;
  if (a->is_join != b->is_join) return false;
  if (a->is_join) {
    return a->method == b->method && a->join_type == b->join_type &&
           CongruentNodes(a->left.get(), b->left.get()) &&
           CongruentNodes(a->right.get(), b->right.get());
  }
  if (a->access != b->access || a->index_id != b->index_id) return false;
  const TableDef* ta = a->leaf != nullptr ? a->leaf->table : nullptr;
  const TableDef* tb = b->leaf != nullptr ? b->leaf->table : nullptr;
  return ta == tb;
}

bool CongruentSkeletons(const BlockSkeleton& a, const BlockSkeleton& b) {
  return CongruentNodes(a.root.get(), b.root.get()) &&
         a.derived.size() == b.derived.size() &&
         a.union_arms.size() == b.union_arms.size();
}

class SkeletonVerifier {
 public:
  SkeletonVerifier(const Catalog& catalog, bool check_cte_pairing,
                   VerifyReport* report)
      : catalog_(&catalog),
        check_cte_pairing_(check_cte_pairing),
        report_(report) {}

  void Run(const BlockSkeleton& skel) {
    report_->rules_checked += check_cte_pairing_ ? 4 : 3;
    WalkBlock(skel);
    if (check_cte_pairing_) CheckCtePairing();
  }

 private:
  void WalkBlock(const BlockSkeleton& skel) {
    const std::string path = BlockPath(skel.block);
    if (skel.block == nullptr) {
      report_->AddError("S001", path, "skeleton without a query block");
      return;
    }

    // S001: the best-position array covers the block exactly once.
    std::vector<TableRef*> block_leaves = skel.block->Leaves();
    if (skel.block->from.empty()) {
      if (skel.root != nullptr) {
        report_->AddError("S001", path, "join tree on a block without FROM");
      }
    } else if (skel.root == nullptr) {
      report_->AddError("S001", path, "block with FROM has no join tree");
    } else {
      std::vector<const SkeletonNode*> positions;
      skel.root->BestPositionArray(&positions);
      std::map<const TableRef*, int> seen;
      for (const SkeletonNode* pos : positions) {
        if (pos->leaf == nullptr) {
          report_->AddError("S001", path, "leaf position without a table");
          continue;
        }
        ++seen[pos->leaf];
      }
      for (const TableRef* leaf : block_leaves) {
        int count = 0;
        if (auto it = seen.find(leaf); it != seen.end()) {
          count = it->second;
          seen.erase(it);
        }
        if (count != 1) {
          report_->AddError("S001", path,
                            "table " + LeafName(leaf) + " appears " +
                                std::to_string(count) +
                                " times in the best-position array "
                                "(expected once)");
        }
      }
      for (const auto& [leaf, count] : seen) {
        report_->AddError("S001", path,
                          "best-position array contains " + LeafName(leaf) +
                              " (x" + std::to_string(count) +
                              "), which is not a FROM leaf of this block");
      }

      // S002/S003 per position.
      for (size_t i = 0; i < positions.size(); ++i) {
        CheckLeaf(*positions[i], i == 0, skel, path);
      }
      CheckJoinEstimates(*skel.root, path);
    }

    // S001: a UNION continuation corresponds to exactly one arm.
    bool has_union = skel.block->union_next != nullptr;
    if (has_union != (skel.union_arms.size() == 1) ||
        skel.union_arms.size() > 1) {
      report_->AddError("S001", path,
                        "UNION arms (" + std::to_string(skel.union_arms.size()) +
                            ") disagree with the block's continuation");
    }

    // S002: every derived leaf needs a materialization sub-skeleton.
    for (const TableRef* leaf : block_leaves) {
      if (leaf->kind != TableRef::Kind::kDerived) continue;
      if (skel.derived.find(leaf) == skel.derived.end()) {
        report_->AddError("S002", path,
                          "derived table " + LeafName(leaf) +
                              " has no materialization skeleton");
      }
    }

    CheckEstimate("S003", path, "block rows", skel.out_rows, report_);
    CheckEstimate("S003", path, "block cost", skel.cost, report_);

    for (const auto& [leaf, sub] : skel.derived) {
      if (sub == nullptr) continue;
      if (leaf->from_cte) {
        cte_groups_[leaf->cte_name].push_back(sub.get());
      }
      WalkBlock(*sub);
    }
    for (const auto& [expr, sub] : skel.subqueries) {
      (void)expr;
      if (sub != nullptr) WalkBlock(*sub);
    }
    for (const auto& arm : skel.union_arms) {
      if (arm != nullptr) WalkBlock(*arm);
    }
  }

  void CheckLeaf(const SkeletonNode& node, bool first_position,
                 const BlockSkeleton& skel, const std::string& path) {
    const TableRef* leaf = node.leaf;
    if (leaf == nullptr) return;  // reported under S001
    const std::string where = path + "/" + LeafName(leaf);
    if (node.access != AccessMethod::kTableScan) {
      if (leaf->kind != TableRef::Kind::kBase || leaf->table == nullptr) {
        report_->AddError("S002", where,
                          "index access on a non-base table");
      } else {
        if (catalog_->GetTableById(leaf->table->id) != leaf->table) {
          report_->AddError("S002", where,
                            "table " + leaf->table->name +
                                " is not (or no longer) in the catalog");
        }
        if (node.index_id < 0 ||
            node.index_id >= static_cast<int>(leaf->table->indexes.size())) {
          report_->AddError("S002", where,
                            "index id " + std::to_string(node.index_id) +
                                " out of range for table " +
                                leaf->table->name);
        }
      }
    }
    if (node.access == AccessMethod::kIndexLookup && first_position &&
        !HasCorrelatedBinding(node, *skel.block)) {
      report_->AddError("S002", where,
                        "ref (IndexLookup) access cannot drive the first "
                        "position — no outer rows to bind the keys");
    }
    CheckEstimate("S003", where, "row", node.est_rows, report_);
    CheckEstimate("S003", where, "cost", node.est_cost, report_);
  }

  void CheckJoinEstimates(const SkeletonNode& node, const std::string& path) {
    if (!node.is_join) return;
    CheckEstimate("S003", path, "join row", node.est_rows, report_);
    CheckEstimate("S003", path, "join cost", node.est_cost, report_);
    if (node.left != nullptr) CheckJoinEstimates(*node.left, path);
    if (node.right != nullptr) CheckJoinEstimates(*node.right, path);
  }

  void CheckCtePairing() {
    for (const auto& [name, copies] : cte_groups_) {
      if (copies.size() < 2) continue;
      const BlockSkeleton* producer = copies[0];
      for (size_t i = 1; i < copies.size(); ++i) {
        if (!CongruentSkeletons(*producer, *copies[i])) {
          report_->AddError(
              "S005", BlockPath(copies[i]->block),
              "CTE \"" + name + "\" consumer #" + std::to_string(i) +
                  " diverges from the producer plan (single-producer/"
                  "n-consumer mapping broken)");
        }
      }
    }
  }

  const Catalog* catalog_;
  bool check_cte_pairing_;
  VerifyReport* report_;
  /// CTE name -> consumer skeletons, in discovery order (producer first).
  std::map<std::string, std::vector<const BlockSkeleton*>> cte_groups_;
};

// ---------------------------------------------------------------------------
// S004 — build/probe flip legality
// ---------------------------------------------------------------------------

bool PhysIsScan(const OrcaPhysicalOp& op) {
  return op.kind == OrcaPhysicalOp::Kind::kTableScan ||
         op.kind == OrcaPhysicalOp::Kind::kIndexRangeScan ||
         op.kind == OrcaPhysicalOp::Kind::kIndexLookup;
}

/// Walks skeleton and physical trees in lockstep, expecting the converter's
/// inner-hash-join child swap; reports the first disagreement.
bool CompareFlip(const SkeletonNode& s, const OrcaPhysicalOp& p,
                 const std::string& path, VerifyReport* report) {
  if (!s.is_join) {
    if (!PhysIsScan(p) || s.leaf != p.leaf) {
      report->AddError("S004", path,
                       "skeleton leaf " + LeafName(s.leaf) +
                           " does not match the Orca operator here");
      return false;
    }
    return true;
  }
  bool method_matches =
      (s.method == JoinMethod::kHash &&
       p.kind == OrcaPhysicalOp::Kind::kHashJoin) ||
      (s.method == JoinMethod::kNestedLoop &&
       p.kind == OrcaPhysicalOp::Kind::kNLJoin);
  if (!method_matches || p.children.size() != 2 || s.left == nullptr ||
      s.right == nullptr) {
    report->AddError("S004", path,
                     "skeleton join does not match the Orca join here");
    return false;
  }
  // MySQL inner hash joins build from the LEFT input; Orca builds from
  // children[1]. The converter must therefore have flipped — skeleton.left
  // is Orca's build side for inner hash joins, and the identity mapping
  // everywhere else.
  bool flipped = s.method == JoinMethod::kHash &&
                 (s.join_type == JoinType::kInner ||
                  s.join_type == JoinType::kCross);
  const OrcaPhysicalOp& for_left = flipped ? *p.children[1] : *p.children[0];
  const OrcaPhysicalOp& for_right = flipped ? *p.children[0] : *p.children[1];
  return CompareFlip(*s.left, for_left, path + "/left", report) &&
         CompareFlip(*s.right, for_right, path + "/right", report);
}

}  // namespace

void VerifySkeletonPlan(const BlockSkeleton& skel, const Catalog& catalog,
                        bool check_cte_pairing, VerifyReport* report) {
  SkeletonVerifier(catalog, check_cte_pairing, report).Run(skel);
}

void VerifyBuildProbeFlip(const SkeletonNode& skel_root,
                          const OrcaPhysicalOp& phys_root,
                          VerifyReport* report) {
  report->rules_checked += 1;
  CompareFlip(skel_root, phys_root, "root", report);
}

}  // namespace taurus
