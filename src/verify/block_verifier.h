#ifndef TAURUS_VERIFY_BLOCK_VERIFIER_H_
#define TAURUS_VERIFY_BLOCK_VERIFIER_H_

#include "exec/exec_context.h"
#include "exec/physical_plan.h"
#include "verify/diagnostics.h"

namespace taurus {

/// BlockPlanVerifier — static checks on the refined, executable plan (the
/// output of `RefinePlan`), recursing into derived plans, subplans and
/// UNION arms. Rules (DESIGN.md section 9):
///   B001  operator shape: joins have both children, filters have a child
///         and a condition, index access carries a valid index and lookup
///         keys, derived scans point at a materialization plan
///   B002  parallel-eligibility consistency: the eligible flag and
///         AnalyzeParallelSafety's stated serial reason agree — an eligible
///         pipeline has an empty reason, a table-scan driver and no
///         semi/anti join or expression subquery on the driving path; a
///         serial pipeline states one of the analyzer's known reasons
///   B003  expression reference closure: every column ref evaluated by the
///         plan resolves to a live leaf and a valid column (no dangling
///         column ids survive refinement)
void VerifyBlockPlan(const CompiledQuery& query, VerifyReport* report);

/// B004 — budget hooks present: when the engine's resource budget governs
/// execution, an Orca-detour plan must run under an armed ExecContext (row
/// cap or deadline); a MySQL-path plan must not be budgeted.
void VerifyExecBudgetArming(bool used_orca, bool budget_governs_exec,
                            const ExecContext& ctx, VerifyReport* report);

/// Number of rules VerifyBlockPlan evaluates (for rules_checked).
inline constexpr int kNumBlockRules = 3;

}  // namespace taurus

#endif  // TAURUS_VERIFY_BLOCK_VERIFIER_H_
