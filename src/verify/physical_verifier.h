#ifndef TAURUS_VERIFY_PHYSICAL_VERIFIER_H_
#define TAURUS_VERIFY_PHYSICAL_VERIFIER_H_

#include "orca/physical.h"
#include "verify/diagnostics.h"

namespace taurus {

/// PhysicalPlanVerifier — static checks on Orca's physical output for one
/// query block, before plan conversion. Rules (DESIGN.md section 9):
///   P001  operator shape / required-property satisfaction (joins have two
///         children; scans are leaves with a table and, for index scans, a
///         valid index; an IndexLookup appears only where its required
///         property — outer bindings for the keys — is satisfiable: as the
///         inner child of a nested-loop join, or anywhere when the keys
///         bind to a purely-outer correlated expression)
///   P002  cost/cardinality sanity: rows and cost are finite and
///         non-negative on every operator
///   P003  child-cost monotonicity: a parent's cumulative cost is never
///         below any child's (costs accumulate bottom-up)
///   P004  query-block ownership: every scan leaf's TABLE_LIST owner link
///         points back to the block being optimized
void VerifyPhysicalPlan(const OrcaPhysicalOp& root, const QueryBlock& block,
                        VerifyReport* report);

/// Number of rules VerifyPhysicalPlan evaluates (for rules_checked).
inline constexpr int kNumPhysicalRules = 4;

}  // namespace taurus

#endif  // TAURUS_VERIFY_PHYSICAL_VERIFIER_H_
