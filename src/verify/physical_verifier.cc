#include "verify/physical_verifier.h"

#include <cmath>
#include <set>
#include <string>

namespace taurus {

namespace {

/// Slack for the P003 monotonicity comparison: costs are accumulated in
/// double arithmetic, so allow rounding noise.
constexpr double kCostEpsilon = 1e-6;

std::string LeafName(const TableRef* leaf) {
  if (leaf == nullptr) return "?";
  return leaf->alias.empty() ? leaf->table_name : leaf->alias;
}

std::string NodeLabel(const OrcaPhysicalOp& op) {
  switch (op.kind) {
    case OrcaPhysicalOp::Kind::kTableScan:
      return "scan(" + LeafName(op.leaf) + ")";
    case OrcaPhysicalOp::Kind::kIndexRangeScan:
      return "index_range(" + LeafName(op.leaf) + ")";
    case OrcaPhysicalOp::Kind::kIndexLookup:
      return "index_lookup(" + LeafName(op.leaf) + ")";
    case OrcaPhysicalOp::Kind::kNLJoin:
      return std::string("nljoin(") + JoinTypeName(op.join_type) + ")";
    case OrcaPhysicalOp::Kind::kHashJoin:
      return std::string("hashjoin(") + JoinTypeName(op.join_type) + ")";
  }
  return "?";
}

bool IsScan(const OrcaPhysicalOp& op) {
  return op.kind == OrcaPhysicalOp::Kind::kTableScan ||
         op.kind == OrcaPhysicalOp::Kind::kIndexRangeScan ||
         op.kind == OrcaPhysicalOp::Kind::kIndexLookup;
}

void CollectRefIds(const Expr& e, std::set<int>* out) {
  if (e.kind == Expr::Kind::kColumnRef && e.ref_id >= 0) out->insert(e.ref_id);
  for (const auto& c : e.children) CollectRefIds(*c, out);
}

/// True when one of the lookup's pushed-down conjuncts binds the index's
/// first key column to a purely-outer expression — the optimizer's
/// correlated "ref" access, whose required property (outer bindings) is
/// supplied by the enclosing query block rather than a join side, so it may
/// appear anywhere in this block's join tree.
bool HasCorrelatedBinding(const OrcaPhysicalOp& op,
                          const std::set<int>& block_refs) {
  if (op.leaf == nullptr || op.leaf->table == nullptr || op.index_id < 0 ||
      op.index_id >= static_cast<int>(op.leaf->table->indexes.size())) {
    return false;
  }
  const IndexDef& idx =
      op.leaf->table->indexes[static_cast<size_t>(op.index_id)];
  if (idx.column_idx.empty()) return false;
  for (const Expr* c : op.filters) {
    if (c == nullptr || c->kind != Expr::Kind::kBinary ||
        c->bop != BinaryOp::kEq) {
      continue;
    }
    for (int side = 0; side < 2; ++side) {
      const Expr& col = *c->children[static_cast<size_t>(side)];
      const Expr& other = *c->children[static_cast<size_t>(1 - side)];
      if (col.kind != Expr::Kind::kColumnRef ||
          col.ref_id != op.leaf->ref_id ||
          col.column_idx != idx.column_idx[0]) {
        continue;
      }
      std::set<int> other_refs;
      CollectRefIds(other, &other_refs);
      bool all_outer = true;
      for (int r : other_refs) {
        if (block_refs.count(r) != 0) all_outer = false;
      }
      if (all_outer) return true;
    }
  }
  return false;
}

class PhysicalVerifier {
 public:
  PhysicalVerifier(const QueryBlock& block, VerifyReport* report)
      : block_(&block), report_(report) {
    for (const TableRef* leaf : block.Leaves()) {
      if (leaf->ref_id >= 0) block_refs_.insert(leaf->ref_id);
    }
  }

  void Run(const OrcaPhysicalOp& root) {
    report_->rules_checked += kNumPhysicalRules;
    Walk(root, /*parent=*/nullptr, /*child_idx=*/0, NodeLabel(root));
  }

 private:
  void Walk(const OrcaPhysicalOp& op, const OrcaPhysicalOp* parent,
            size_t child_idx, const std::string& path) {
    // P001: shape and required properties.
    if (IsScan(op)) {
      if (!op.children.empty()) {
        report_->AddError("P001", path, "scan operator with children");
      }
      if (op.leaf == nullptr) {
        report_->AddError("P001", path, "scan without a table leaf");
      } else if (op.kind != OrcaPhysicalOp::Kind::kTableScan) {
        // Index access requires a base table with that index.
        if (op.leaf->kind != TableRef::Kind::kBase || op.leaf->table == nullptr) {
          report_->AddError("P001", path,
                            "index access on a non-base leaf " +
                                LeafName(op.leaf));
        } else if (op.index_id < 0 ||
                   op.index_id >=
                       static_cast<int>(op.leaf->table->indexes.size())) {
          report_->AddError("P001", path,
                            "index id " + std::to_string(op.index_id) +
                                " out of range for table " +
                                op.leaf->table->name);
        }
      }
      if (op.kind == OrcaPhysicalOp::Kind::kIndexLookup) {
        // Required property: the lookup keys bind to outer rows, which the
        // inner (right) side of a nested-loop join provides — or, for the
        // correlated "ref" access, the enclosing query block does.
        bool legal_position = parent != nullptr &&
                              parent->kind == OrcaPhysicalOp::Kind::kNLJoin &&
                              child_idx == 1;
        if (!legal_position && !HasCorrelatedBinding(op, block_refs_)) {
          report_->AddError("P001", path,
                            "IndexLookup outside the inner side of a "
                            "nested-loop join (required property "
                            "unsatisfiable)");
        }
      }
    } else {
      if (op.children.size() != 2) {
        report_->AddError("P001", path,
                          "join with " + std::to_string(op.children.size()) +
                              " children (expected 2)");
      }
    }

    // P002: estimate sanity.
    if (!std::isfinite(op.rows) || op.rows < 0.0) {
      report_->AddError("P002", path,
                        "row estimate " + std::to_string(op.rows) +
                            " is negative or non-finite");
    }
    if (!std::isfinite(op.cost) || op.cost < 0.0) {
      report_->AddError("P002", path,
                        "cost " + std::to_string(op.cost) +
                            " is negative or non-finite");
    }

    // P004: query-block ownership (the TABLE_LIST discovery invariant).
    if (IsScan(op) && op.leaf != nullptr && op.leaf->owner != block_) {
      report_->AddError("P004", path,
                        "leaf " + LeafName(op.leaf) +
                            " is owned by a different query block");
    }

    for (size_t i = 0; i < op.children.size(); ++i) {
      const OrcaPhysicalOp& child = *op.children[i];
      // P003: cumulative cost never decreases upward.
      if (std::isfinite(child.cost) && op.cost < child.cost - kCostEpsilon) {
        report_->AddError(
            "P003", path,
            "cost " + std::to_string(op.cost) + " below child " +
                NodeLabel(child) + " cost " + std::to_string(child.cost));
      }
      Walk(child, &op, i, path + "/" + NodeLabel(child));
    }
  }

  const QueryBlock* block_;
  VerifyReport* report_;
  std::set<int> block_refs_;  ///< ref ids of this block's FROM leaves
};

}  // namespace

void VerifyPhysicalPlan(const OrcaPhysicalOp& root, const QueryBlock& block,
                        VerifyReport* report) {
  PhysicalVerifier(block, report).Run(root);
}

}  // namespace taurus
