#ifndef TAURUS_VERIFY_SKELETON_VERIFIER_H_
#define TAURUS_VERIFY_SKELETON_VERIFIER_H_

#include "catalog/catalog.h"
#include "myopt/skeleton.h"
#include "orca/physical.h"
#include "verify/diagnostics.h"

namespace taurus {

/// SkeletonPlanVerifier — static checks on a statement's skeleton plan (the
/// structure both optimizer paths hand to refinement), recursing into
/// derived tables, expression subqueries and UNION arms.
/// Rules (DESIGN.md section 9):
///   S001  the best-position array is a valid permutation: it covers every
///         FROM leaf of its block exactly once (and a block without FROM
///         has no join tree; a UNION continuation has exactly one arm)
///   S002  access-method applicability against the catalog: index access
///         only on base tables with that index, the catalog still knows the
///         table, ref (IndexLookup) access never drives the first position
///         (unless its keys bind to a purely-outer correlated expression),
///         and every derived leaf has a materialization sub-skeleton
///   S003  estimate sanity: finite, non-negative rows/cost everywhere
///   S005  CTE single-producer/n-consumer pairing: all consumers of one CTE
///         carry structurally congruent skeletons (the plan converter maps
///         Orca's single producer plan onto every bound copy)
///
/// `check_cte_pairing` gates S005: it is an Orca-detour invariant (the
/// MySQL path legitimately optimizes each CTE copy independently).
void VerifySkeletonPlan(const BlockSkeleton& skel, const Catalog& catalog,
                        bool check_cte_pairing, VerifyReport* report);

/// S004 — inner-hash-join build/probe flip legality for one block: Orca
/// builds from the RIGHT child (children[1]) while the MySQL executor
/// builds inner hash joins from the LEFT input, so the plan converter must
/// hand over a skeleton whose left subtree is Orca's build side (Section 7
/// item 2). Verifies the skeleton tree against the Orca physical tree it
/// was converted from; any structural disagreement — a missing or wrong
/// flip included — fires S004.
void VerifyBuildProbeFlip(const SkeletonNode& skel_root,
                          const OrcaPhysicalOp& phys_root,
                          VerifyReport* report);

}  // namespace taurus

#endif  // TAURUS_VERIFY_SKELETON_VERIFIER_H_
