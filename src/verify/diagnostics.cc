#include "verify/diagnostics.h"

namespace taurus {

int VerifyReport::violations() const {
  int n = 0;
  for (const PlanDiagnostic& d : diags) {
    if (d.severity == VerifySeverity::kError) ++n;
  }
  return n;
}

void VerifyReport::Merge(const VerifyReport& other) {
  rules_checked += other.rules_checked;
  diags.insert(diags.end(), other.diags.begin(), other.diags.end());
}

std::string VerifyReport::ToString() const {
  std::string out = "plan_verifier: " + std::to_string(rules_checked) +
                    " rules, " + std::to_string(violations()) + " violations";
  for (const PlanDiagnostic& d : diags) {
    out += "\n  [";
    out += d.rule;
    out += d.severity == VerifySeverity::kError ? "/error" : "/warning";
    out += "] at ";
    out += d.path;
    out += ": ";
    out += d.message;
  }
  return out;
}

Status VerifyReport::ToStatus(const std::string& subsystem) const {
  for (const PlanDiagnostic& d : diags) {
    if (d.severity != VerifySeverity::kError) continue;
    Status s = Status::PlanInvariantViolation(
        "rule " + d.rule + " at " + d.path + ": " + d.message +
        (violations() > 1
             ? " (+" + std::to_string(violations() - 1) + " more)"
             : ""));
    return s.SetOrigin(subsystem, d.rule);
  }
  return Status::OK();
}

bool VerifyReport::HasRule(const std::string& rule) const {
  for (const PlanDiagnostic& d : diags) {
    if (d.rule == rule) return true;
  }
  return false;
}

}  // namespace taurus
