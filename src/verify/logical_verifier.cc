#include "verify/logical_verifier.h"

#include <map>
#include <vector>

#include "mdp/oid_layout.h"
#include "parser/ast_util.h"
#include "types/type.h"

namespace taurus {

namespace {

std::string LeafName(const TableRef* leaf) {
  if (leaf == nullptr) return "?";
  return leaf->alias.empty() ? leaf->table_name : leaf->alias;
}

std::string NodeLabel(const OrcaLogicalOp& op) {
  switch (op.kind) {
    case OrcaLogicalOp::Kind::kGet:
      return "get(" + LeafName(op.leaf) + ")";
    case OrcaLogicalOp::Kind::kSelect:
      return "select(" + LeafName(op.leaf) + ")";
    case OrcaLogicalOp::Kind::kJoin:
      return std::string("join(") + JoinTypeName(op.join_type) + ")";
  }
  return "?";
}

class LogicalVerifier {
 public:
  LogicalVerifier(const QueryBlock& block, const BoundStatement& stmt,
                  VerifyReport* report)
      : stmt_(stmt), report_(report) {
    for (const TableRef* leaf : block.Leaves()) {
      if (leaf->ref_id >= 0) block_local_[leaf->ref_id] = 0;
    }
  }

  void Run(const OrcaLogicalOp& root) {
    report_->rules_checked += kNumLogicalRules;
    Walk(root, NodeLabel(root));
    // L003: every block leaf exactly once, no foreign or duplicate Gets.
    for (const auto& [ref_id, count] : block_local_) {
      if (count == 1) continue;
      report_->AddError(
          "L003", NodeLabel(root),
          "block leaf ref " + std::to_string(ref_id) + " appears " +
              std::to_string(count) + " times as a Get (expected once)");
    }
  }

 private:
  /// Block-local ref ids referenced by `e` (not descending into subqueries,
  /// whose blocks are verified when they are optimized).
  std::vector<int> LocalRefs(const Expr& e) const {
    std::vector<bool> refs(static_cast<size_t>(stmt_.num_refs), false);
    CollectReferencedRefs(e, &refs);
    std::vector<int> out;
    for (const auto& [ref_id, count] : block_local_) {
      (void)count;
      if (refs[static_cast<size_t>(ref_id)]) out.push_back(ref_id);
    }
    return out;
  }

  /// L002 over one predicate expression tree.
  void CheckExprRefs(const Expr& e, const std::string& path) {
    if (e.kind == Expr::Kind::kColumnRef) {
      if (e.ref_id < 0 || e.ref_id >= stmt_.num_refs ||
          stmt_.leaves[static_cast<size_t>(e.ref_id)] == nullptr) {
        report_->AddError("L002", path,
                          "column ref " + e.ToString() +
                              " has dangling table ref id " +
                              std::to_string(e.ref_id));
      } else {
        const TableRef* leaf = stmt_.leaves[static_cast<size_t>(e.ref_id)];
        if (leaf->kind == TableRef::Kind::kBase && leaf->table != nullptr &&
            (e.column_idx < 0 ||
             e.column_idx >= static_cast<int>(leaf->table->columns.size()))) {
          report_->AddError("L002", path,
                            "column ref " + e.ToString() +
                                " has out-of-range column index " +
                                std::to_string(e.column_idx) + " for table " +
                                leaf->table->name);
        }
      }
    }
    // Subquery bodies are separate blocks; only this block's scope is ours.
    for (const auto& c : e.children) CheckExprRefs(*c, path);
  }

  /// L004 for one (conjunct, oid) pair.
  void CheckCondOid(const Expr& cond, int64_t oid, const std::string& path) {
    if (oid == kInvalidOid) return;  // no cube point applies; nothing to check
    auto decoded = DecodeExprOid(oid);
    if (!decoded.ok()) {
      report_->AddError("L004", path,
                        "cond OID " + std::to_string(oid) +
                            " does not decode to any expression-cube point");
      return;
    }
    if (cond.kind != Expr::Kind::kBinary || cond.children.size() != 2) {
      report_->AddError("L004", path,
                        "cond OID " + std::to_string(oid) +
                            " assigned to a non-binary conjunct " +
                            cond.ToString());
      return;
    }
    const ExprPoint& p = *decoded;
    if (p.family == ExprPoint::Family::kAgg) {
      report_->AddError("L004", path,
                        "cond OID " + std::to_string(oid) +
                            " decodes to an aggregate cube point");
      return;
    }
    bool family_matches =
        (p.family == ExprPoint::Family::kCmp && IsComparisonOp(cond.bop)) ||
        (p.family == ExprPoint::Family::kArith && IsArithmeticOp(cond.bop));
    if (!family_matches || p.op != cond.bop) {
      report_->AddError("L004", path,
                        "cond OID " + std::to_string(oid) + " (" +
                            ExprOidName(oid) + ") operator disagrees with " +
                            cond.ToString());
      return;
    }
    TypeCategory left = CategoryOf(cond.children[0]->result_type);
    TypeCategory right = CategoryOf(cond.children[1]->result_type);
    if (p.left != left || p.right != right) {
      report_->AddError(
          "L004", path,
          "cond OID " + std::to_string(oid) + " (" + ExprOidName(oid) +
              ") operand categories disagree with " + cond.ToString());
    }
  }

  void Walk(const OrcaLogicalOp& op, const std::string& path) {
    // L001: shape/arity.
    switch (op.kind) {
      case OrcaLogicalOp::Kind::kGet:
        if (op.leaf == nullptr) {
          report_->AddError("L001", path, "Get without a table leaf");
        } else if (!op.children.empty()) {
          report_->AddError("L001", path, "Get with children");
        } else if (op.leaf->kind == TableRef::Kind::kBase &&
                   op.relation_oid < 0) {
          report_->AddError("L001", path,
                            "base-table Get was not embellished with a "
                            "relation OID");
        }
        if (op.leaf != nullptr && op.leaf->ref_id >= 0) {
          auto it = block_local_.find(op.leaf->ref_id);
          if (it == block_local_.end()) {
            report_->AddError("L003", path,
                              "Get leaf " + LeafName(op.leaf) +
                                  " is not a FROM leaf of this block");
          } else {
            ++it->second;
          }
        }
        break;
      case OrcaLogicalOp::Kind::kSelect:
        if (op.children.size() != 1 ||
            op.children[0]->kind != OrcaLogicalOp::Kind::kGet) {
          report_->AddError("L001", path,
                            "Select must have exactly one Get child");
        } else if (op.leaf != op.children[0]->leaf) {
          report_->AddError("L001", path,
                            "Select leaf pointer disagrees with its Get");
        }
        if (op.conds.empty()) {
          report_->AddError("L001", path, "Select without predicates");
        }
        break;
      case OrcaLogicalOp::Kind::kJoin:
        if (op.children.size() != 2) {
          report_->AddError("L001", path,
                            "Join with " + std::to_string(op.children.size()) +
                                " children (expected 2)");
        }
        break;
    }

    // L004 precondition: the OID vector is parallel to the conjuncts.
    if (op.conds.size() != op.cond_oids.size()) {
      report_->AddError("L004", path,
                        "cond_oids size " + std::to_string(op.cond_oids.size()) +
                            " != conds size " + std::to_string(op.conds.size()));
    }
    for (size_t i = 0; i < op.conds.size(); ++i) {
      const Expr* cond = op.conds[i];
      if (cond == nullptr) {
        report_->AddError("L001", path, "null predicate conjunct");
        continue;
      }
      CheckExprRefs(*cond, path);
      if (i < op.cond_oids.size()) CheckCondOid(*cond, op.cond_oids[i], path);

      // L005: predicate segregation. Select conjuncts touch exactly their
      // own leaf among this block's leaves (outer/correlated refs are
      // legal); Join conjuncts were segregated so that none is a
      // single-local-leaf predicate (those belong in a Select below —
      // around semi/anti-semi joins this is what exposes the pushed-down
      // selection to Orca, the paper's Q4 case).
      std::vector<int> local = LocalRefs(*cond);
      if (op.kind == OrcaLogicalOp::Kind::kSelect) {
        bool own_only = local.size() == 1 && op.leaf != nullptr &&
                        local[0] == op.leaf->ref_id;
        if (!own_only) {
          report_->AddError("L005", path,
                            "Select predicate " + cond->ToString() +
                                " does not reference exactly its own leaf");
        }
      } else if (op.kind == OrcaLogicalOp::Kind::kJoin) {
        if (local.size() == 1) {
          report_->AddError("L005", path,
                            "single-leaf predicate " + cond->ToString() +
                                " left unsegregated on a " +
                                JoinTypeName(op.join_type) + " join");
        }
      }
    }

    for (size_t i = 0; i < op.children.size(); ++i) {
      Walk(*op.children[i], path + "/" + NodeLabel(*op.children[i]));
    }
  }

  const BoundStatement& stmt_;
  VerifyReport* report_;
  std::map<int, int> block_local_;  ///< block leaf ref_id -> Get count
};

}  // namespace

void VerifyLogicalTree(const OrcaLogicalOp& root, const QueryBlock& block,
                       const BoundStatement& stmt, VerifyReport* report) {
  LogicalVerifier(block, stmt, report).Run(root);
}

}  // namespace taurus
