#ifndef TAURUS_VERIFY_DIAGNOSTICS_H_
#define TAURUS_VERIFY_DIAGNOSTICS_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace taurus {

/// Compile-time default for the `verify_plans` knob: always-on in Debug and
/// sanitizer builds (TAURUS_SANITIZE defines TAURUS_VERIFY_PLANS_DEFAULT_ON),
/// opt-in in Release — the discipline GPORCA ships as its debug-build plan
/// checker.
#if !defined(NDEBUG) || defined(TAURUS_VERIFY_PLANS_DEFAULT_ON)
inline constexpr bool kVerifyPlansDefault = true;
#else
inline constexpr bool kVerifyPlansDefault = false;
#endif

/// Knobs for the cross-layer plan verifier (DESIGN.md section 9).
struct PlanVerifyConfig {
  /// Run the boundary verifiers during compilation.
  bool verify_plans = kVerifyPlansDefault;
  /// When true, an error-severity violation on the Orca detour aborts the
  /// detour with kPlanInvariantViolation (routing through the usual
  /// quarantine/fallback machinery). When false, violations are only
  /// counted and surfaced in QueryResult/EXPLAIN.
  bool enforce = true;
};

enum class VerifySeverity { kWarning, kError };

/// One structured finding from a plan verifier: which rule fired, where in
/// the IR (a slash-separated path from the root), and why.
struct PlanDiagnostic {
  std::string rule;  ///< rule id from the DESIGN.md catalog, e.g. "S004"
  VerifySeverity severity = VerifySeverity::kError;
  std::string path;  ///< path into the IR, e.g. "join/left/get(lineitem)"
  std::string message;
};

/// Accumulated result of one or more verifier passes over a statement.
struct VerifyReport {
  /// Total rule evaluations performed (each verifier pass adds its fixed
  /// rule count), surfaced as "plan_verifier: N rules, M violations".
  int rules_checked = 0;
  std::vector<PlanDiagnostic> diags;

  void Add(std::string rule, VerifySeverity severity, std::string path,
           std::string message) {
    diags.push_back(PlanDiagnostic{std::move(rule), severity, std::move(path),
                                   std::move(message)});
  }
  void AddError(std::string rule, std::string path, std::string message) {
    Add(std::move(rule), VerifySeverity::kError, std::move(path),
        std::move(message));
  }

  int violations() const;
  bool ok() const { return violations() == 0; }

  /// Folds another report's counts and diagnostics into this one.
  void Merge(const VerifyReport& other);

  /// One line per diagnostic, for logs and test failure messages.
  std::string ToString() const;

  /// OK when clean; otherwise kPlanInvariantViolation carrying the first
  /// error's rule id as the Status origin (subsystem = `subsystem`), so
  /// `fallback_reason` names the exact rule that fired.
  Status ToStatus(const std::string& subsystem) const;

  /// True when `rule` produced at least one diagnostic (tests).
  bool HasRule(const std::string& rule) const;
};

}  // namespace taurus

#endif  // TAURUS_VERIFY_DIAGNOSTICS_H_
