#ifndef TAURUS_VERIFY_LOGICAL_VERIFIER_H_
#define TAURUS_VERIFY_LOGICAL_VERIFIER_H_

#include "frontend/binder.h"
#include "orca/logical.h"
#include "verify/diagnostics.h"

namespace taurus {

/// LogicalTreeVerifier — static checks on the Orca logical tree produced by
/// the parse tree converter (after decorrelation) for one query block.
/// Rules (DESIGN.md section 9):
///   L001  operator shape/arity (Get: leaf + no children; Select: one Get
///         child over the same leaf; Join: exactly two children)
///   L002  column-reference resolution closure: every column ref in a
///         predicate resolves to a live leaf of the statement (no dangling
///         refs after decorrelation) and a valid column of its table
///   L003  block coverage: the tree's Gets are exactly the block's FROM
///         leaves, each exactly once
///   L004  type consistency against the mdp expression cubes: every
///         assigned cond OID decodes to the conjunct's operator and the
///         type categories of its operands
///   L005  predicate segregation: Select conjuncts reference exactly their
///         own leaf among block-local leaves; Join conjuncts (incl. around
///         semi/anti-semi joins) never reference exactly one local leaf
void VerifyLogicalTree(const OrcaLogicalOp& root, const QueryBlock& block,
                       const BoundStatement& stmt, VerifyReport* report);

/// Number of rules VerifyLogicalTree evaluates (for rules_checked).
inline constexpr int kNumLogicalRules = 5;

}  // namespace taurus

#endif  // TAURUS_VERIFY_LOGICAL_VERIFIER_H_
