#include "parser/lexer.h"

#include <cctype>
#include <cstdlib>

namespace taurus {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && sql[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(sql[i] == '*' && sql[i + 1] == '/')) ++i;
      if (i + 1 >= n) {
        return Status::SyntaxError("unterminated block comment");
      }
      i += 2;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(sql[i])) ++i;
      tok.kind = TokenKind::kIdent;
      tok.text = std::string(sql.substr(start, i - start));
      tokens.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t start = i;
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < n && sql[i] == '.') {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      if (i < n && (sql[i] == 'e' || sql[i] == 'E')) {
        is_float = true;
        ++i;
        if (i < n && (sql[i] == '+' || sql[i] == '-')) ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      std::string text(sql.substr(start, i - start));
      if (is_float) {
        tok.kind = TokenKind::kFloat;
        tok.float_val = std::strtod(text.c_str(), nullptr);
      } else {
        tok.kind = TokenKind::kInteger;
        tok.int_val = std::strtoll(text.c_str(), nullptr, 10);
      }
      tok.text = std::move(text);
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string out;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // escaped quote
            out.push_back('\'');
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        out.push_back(sql[i]);
        ++i;
      }
      if (!closed) return Status::SyntaxError("unterminated string literal");
      tok.kind = TokenKind::kString;
      tok.text = std::move(out);
      tokens.push_back(std::move(tok));
      continue;
    }
    // Multi-char symbols first.
    auto two = sql.substr(i, 2);
    if (two == "<=" || two == ">=" || two == "<>" || two == "!=" ||
        two == "||") {
      tok.kind = TokenKind::kSymbol;
      tok.text = (two == "!=") ? "<>" : std::string(two);
      tokens.push_back(std::move(tok));
      i += 2;
      continue;
    }
    static const std::string kSingles = "(),.;+-*/%=<>";
    if (kSingles.find(c) != std::string::npos) {
      tok.kind = TokenKind::kSymbol;
      tok.text = std::string(1, c);
      tokens.push_back(std::move(tok));
      ++i;
      continue;
    }
    return Status::SyntaxError(std::string("unexpected character '") + c +
                               "' at offset " + std::to_string(i));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace taurus
