#ifndef TAURUS_PARSER_PARSER_H_
#define TAURUS_PARSER_PARSER_H_

#include <memory>
#include <string_view>

#include "common/result.h"
#include "parser/ast.h"

namespace taurus {

/// Parses one SQL statement (SELECT, CREATE TABLE, CREATE INDEX, INSERT,
/// ANALYZE, EXPLAIN). The produced AST is unresolved; the frontend binder
/// resolves names and types.
Result<std::unique_ptr<Statement>> ParseStatement(std::string_view sql);

/// Convenience: parses a SELECT statement and returns its query block.
Result<std::unique_ptr<QueryBlock>> ParseSelect(std::string_view sql);

}  // namespace taurus

#endif  // TAURUS_PARSER_PARSER_H_
