#include "parser/ast_util.h"

namespace taurus {

bool ExprEquals(const Expr& a, const Expr& b) {
  if (a.kind != b.kind) return false;
  if (a.children.size() != b.children.size()) return false;
  switch (a.kind) {
    case Expr::Kind::kLiteral:
      if (a.literal.is_null() != b.literal.is_null()) return false;
      if (Value::Compare(a.literal, b.literal) != 0) return false;
      break;
    case Expr::Kind::kColumnRef:
      if (a.ref_id != b.ref_id || a.column_idx != b.column_idx) return false;
      break;
    case Expr::Kind::kBinary:
      if (a.bop != b.bop) return false;
      break;
    case Expr::Kind::kUnary:
      if (a.uop != b.uop) return false;
      break;
    case Expr::Kind::kFuncCall:
      if (a.func_name != b.func_name) return false;
      break;
    case Expr::Kind::kAgg:
      if (a.agg_func != b.agg_func || a.agg_distinct != b.agg_distinct) {
        return false;
      }
      break;
    case Expr::Kind::kCast:
      if (a.cast_type != b.cast_type) return false;
      break;
    case Expr::Kind::kIntervalAdd:
      if (a.interval_unit != b.interval_unit ||
          a.interval_amount != b.interval_amount) {
        return false;
      }
      break;
    case Expr::Kind::kCase:
      if (a.case_has_else != b.case_has_else) return false;
      break;
    case Expr::Kind::kInList:
    case Expr::Kind::kBetween:
    case Expr::Kind::kLike:
      if (a.negated != b.negated) return false;
      break;
    case Expr::Kind::kExists:
    case Expr::Kind::kInSubquery:
    case Expr::Kind::kScalarSubquery:
      // Two textually identical subqueries bind to distinct leaves, so
      // structural equality would be misleading; compare by identity via
      // the compiled subplan id instead.
      return a.subplan_id >= 0 && a.subplan_id == b.subplan_id;
  }
  for (size_t i = 0; i < a.children.size(); ++i) {
    if (!ExprEquals(*a.children[i], *b.children[i])) return false;
  }
  return true;
}

namespace {

void CollectFromBlock(const QueryBlock& block, std::vector<bool>* refs);

void CollectFromTableRef(const TableRef& ref, std::vector<bool>* refs) {
  if (ref.kind == TableRef::Kind::kJoin) {
    if (ref.on) CollectReferencedRefs(*ref.on, refs);
    CollectFromTableRef(*ref.left, refs);
    CollectFromTableRef(*ref.right, refs);
  } else if (ref.kind == TableRef::Kind::kDerived) {
    CollectFromBlock(*ref.derived, refs);
  }
}

void CollectFromBlock(const QueryBlock& block, std::vector<bool>* refs) {
  for (const auto& item : block.select_items) {
    CollectReferencedRefs(*item.expr, refs);
  }
  if (block.where) CollectReferencedRefs(*block.where, refs);
  if (block.having) CollectReferencedRefs(*block.having, refs);
  for (const auto& g : block.group_by) CollectReferencedRefs(*g, refs);
  for (const auto& o : block.order_by) CollectReferencedRefs(*o.expr, refs);
  for (const auto& t : block.from) CollectFromTableRef(*t, refs);
  if (block.union_next) CollectFromBlock(*block.union_next, refs);
}

}  // namespace

void CollectReferencedRefs(const Expr& expr, std::vector<bool>* refs) {
  if (expr.kind == Expr::Kind::kColumnRef && expr.ref_id >= 0 &&
      static_cast<size_t>(expr.ref_id) < refs->size()) {
    (*refs)[static_cast<size_t>(expr.ref_id)] = true;
  }
  for (const auto& child : expr.children) {
    CollectReferencedRefs(*child, refs);
  }
  if (expr.subquery) CollectFromBlock(*expr.subquery, refs);
}

bool ContainsAggregate(const Expr& expr) {
  if (expr.kind == Expr::Kind::kAgg) return true;
  for (const auto& child : expr.children) {
    if (ContainsAggregate(*child)) return true;
  }
  return false;
}

bool ContainsSubquery(const Expr& expr) {
  if (expr.subquery) return true;
  for (const auto& child : expr.children) {
    if (ContainsSubquery(*child)) return true;
  }
  return false;
}

void SplitConjuncts(const Expr* pred, std::vector<const Expr*>* out) {
  if (pred == nullptr) return;
  if (pred->kind == Expr::Kind::kBinary && pred->bop == BinaryOp::kAnd) {
    SplitConjuncts(pred->children[0].get(), out);
    SplitConjuncts(pred->children[1].get(), out);
    return;
  }
  out->push_back(pred);
}

void SplitConjunctsMutable(Expr* pred, std::vector<Expr*>* out) {
  if (pred == nullptr) return;
  if (pred->kind == Expr::Kind::kBinary && pred->bop == BinaryOp::kAnd) {
    SplitConjunctsMutable(pred->children[0].get(), out);
    SplitConjunctsMutable(pred->children[1].get(), out);
    return;
  }
  out->push_back(pred);
}

}  // namespace taurus
