#ifndef TAURUS_PARSER_LEXER_H_
#define TAURUS_PARSER_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace taurus {

/// Token kinds produced by the SQL lexer.
enum class TokenKind {
  kIdent,    ///< identifier or keyword (keywords resolved by the parser)
  kInteger,  ///< integer literal
  kFloat,    ///< floating-point literal
  kString,   ///< 'quoted string' (quotes stripped, '' unescaped)
  kSymbol,   ///< operator/punctuation; text holds the symbol ("<=", "(", ...)
  kEnd,      ///< end of input
};

/// A lexed token.
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   ///< identifier/symbol text or string payload
  int64_t int_val = 0;
  double float_val = 0.0;
  size_t offset = 0;  ///< byte offset in the input, for error messages
};

/// Tokenizes a SQL string. Comments (`-- ...` and `/* ... */`) are skipped.
Result<std::vector<Token>> Tokenize(std::string_view sql);

}  // namespace taurus

#endif  // TAURUS_PARSER_LEXER_H_
