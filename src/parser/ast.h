#ifndef TAURUS_PARSER_AST_H_
#define TAURUS_PARSER_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "types/datetime.h"
#include "types/value.h"

namespace taurus {

struct QueryBlock;

/// Binary operators (arithmetic, comparison, boolean connectives).
enum class BinaryOp {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kMod,
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
};

/// True for =, <>, <, <=, >, >=.
bool IsComparisonOp(BinaryOp op);
/// True for +, -, *, /, %.
bool IsArithmeticOp(BinaryOp op);
/// SQL spelling of an operator ("=", "<", "AND", ...).
const char* BinaryOpName(BinaryOp op);
/// Commuted comparison (a < b  ->  b > a); identity for = and <>.
BinaryOp CommuteComparison(BinaryOp op);
/// Negated comparison (a < b  ->  a >= b).
BinaryOp InverseComparison(BinaryOp op);

enum class UnaryOp { kNot, kNeg, kIsNull, kIsNotNull };

/// SQL aggregate functions. kCountStar is COUNT(*); the metadata provider
/// models it with the special STAR type category (Section 5.2).
enum class AggFunc { kCountStar, kCount, kSum, kAvg, kMin, kMax, kStddev };

/// Name of an aggregate ("count", "sum", ...).
const char* AggFuncName(AggFunc f);

/// Expression tree node. One tagged struct rather than a class hierarchy:
/// the frontend rewrites, both optimizers and the bridge all pattern-match
/// on `kind`, and a flat struct keeps cloning and hashing simple.
struct Expr {
  enum class Kind {
    kLiteral,         ///< `literal`
    kColumnRef,       ///< table_name.column_name; resolved to (ref, column)
    kBinary,          ///< bop over children[0], children[1]
    kUnary,           ///< uop over children[0]
    kFuncCall,        ///< func_name over children (non-aggregate)
    kAgg,             ///< agg_func over children[0] (absent for COUNT(*))
    kCase,            ///< searched CASE: children = w1,t1,...,wk,tk[,else]
    kInList,          ///< children[0] IN (children[1..]); `negated` for NOT
    kBetween,         ///< children[0] BETWEEN children[1] AND children[2]
    kLike,            ///< children[0] LIKE children[1]; `negated` for NOT
    kExists,          ///< EXISTS (subquery); `negated` for NOT EXISTS
    kInSubquery,      ///< children[0] IN (subquery); `negated` for NOT IN
    kScalarSubquery,  ///< scalar (subquery)
    kCast,            ///< CAST(children[0] AS cast_type)
    kIntervalAdd,     ///< children[0] +/- INTERVAL interval_amount unit
  };

  Kind kind = Kind::kLiteral;

  // kLiteral
  Value literal;

  // kColumnRef (unresolved names; binder fills ref_id/column_idx).
  std::string table_name;
  std::string column_name;
  int ref_id = -1;
  int column_idx = -1;
  /// For resolved base-table column refs: declared NULLability. Drives the
  /// NOT IN -> anti-semi-join legality check (Section 4.1).
  bool column_nullable = true;

  // kBinary / kUnary
  BinaryOp bop = BinaryOp::kEq;
  UnaryOp uop = UnaryOp::kNot;

  /// NOT modifier for LIKE / IN / BETWEEN / EXISTS.
  bool negated = false;

  std::vector<std::unique_ptr<Expr>> children;

  // kFuncCall
  std::string func_name;

  // kAgg
  AggFunc agg_func = AggFunc::kCountStar;
  bool agg_distinct = false;

  // kCase
  bool case_has_else = false;

  // kExists / kInSubquery / kScalarSubquery
  std::unique_ptr<QueryBlock> subquery;

  // kCast
  TypeId cast_type = TypeId::kLong;

  // kIntervalAdd
  IntervalUnit interval_unit = IntervalUnit::kDay;
  int64_t interval_amount = 0;  ///< signed; subtraction uses negative amount

  /// Result type filled in by the binder.
  TypeId result_type = TypeId::kNull;

  /// Planning annotation: index into CompiledQuery::subplans for
  /// kExists/kInSubquery/kScalarSubquery nodes that survived the Prepare
  /// rewrites; -1 before planning.
  int subplan_id = -1;

  /// Deep copy (subqueries included).
  std::unique_ptr<Expr> Clone() const;

  /// SQL-ish rendering, used by EXPLAIN output and tests.
  std::string ToString() const;
};

/// Convenience constructors.
std::unique_ptr<Expr> MakeLiteral(Value v);
std::unique_ptr<Expr> MakeColumnRef(std::string table, std::string column);
std::unique_ptr<Expr> MakeBinary(BinaryOp op, std::unique_ptr<Expr> l,
                                 std::unique_ptr<Expr> r);
std::unique_ptr<Expr> MakeUnary(UnaryOp op, std::unique_ptr<Expr> operand);

/// Join types. Semi/anti-semi joins never come from the parser directly —
/// the Prepare phase creates them from EXISTS/IN subqueries, exactly as
/// MySQL does.
enum class JoinType { kInner, kCross, kLeft, kSemi, kAntiSemi };

/// Name of a join type ("inner", "left", "semi", ...).
const char* JoinTypeName(JoinType t);

/// A FROM-clause element: base table, derived table (subquery in FROM or a
/// CTE reference) or a join nest. Base/derived leaves play the role of
/// MySQL's TABLE_LIST entries: after binding each carries a unique `ref_id`
/// and a back-pointer to its owning query block, which the Orca plan
/// converter relies on (Section 4.2.1).
struct TableRef {
  enum class Kind { kBase, kDerived, kJoin };

  Kind kind = Kind::kBase;

  // kBase
  std::string table_name;
  std::string alias;  ///< effective name; defaults to table_name

  // kDerived (subquery in FROM, or expansion of a CTE reference)
  std::unique_ptr<QueryBlock> derived;
  bool from_cte = false;
  std::string cte_name;

  // kJoin
  JoinType join_type = JoinType::kInner;
  std::unique_ptr<TableRef> left;
  std::unique_ptr<TableRef> right;
  std::unique_ptr<Expr> on;

  // Filled by the binder (leaves only).
  int ref_id = -1;
  const TableDef* table = nullptr;
  QueryBlock* owner = nullptr;  ///< containing query block (TABLE_LIST link)

  std::unique_ptr<TableRef> Clone() const;
};

/// SELECT-list item.
struct SelectItem {
  std::unique_ptr<Expr> expr;
  std::string alias;
};

/// ORDER BY item.
struct OrderItem {
  std::unique_ptr<Expr> expr;
  bool ascending = true;
};

/// Common table expression definition (non-recursive only; the paper notes
/// the same restriction).
struct CteDef {
  std::string name;
  std::unique_ptr<QueryBlock> query;
};

/// One SELECT block. MySQL optimizes one block at a time; the integration
/// keeps the block structure intact and lets Orca optimize within it
/// (Section 9 "conservative approach").
struct QueryBlock {
  std::vector<CteDef> ctes;
  bool distinct = false;
  std::vector<SelectItem> select_items;
  /// Comma-separated FROM list; each element may itself be a join tree.
  std::vector<std::unique_ptr<TableRef>> from;
  std::unique_ptr<Expr> where;
  std::vector<std::unique_ptr<Expr>> group_by;
  std::unique_ptr<Expr> having;
  std::vector<OrderItem> order_by;
  int64_t limit = -1;  ///< -1 = no LIMIT
  int64_t offset = 0;

  /// UNION [ALL] continuation (same-arity block), or null.
  std::unique_ptr<QueryBlock> union_next;
  bool union_all = false;

  /// Filled by the binder: unique id within the statement.
  int block_id = -1;

  std::unique_ptr<QueryBlock> Clone() const;

  /// Collects the base/derived leaves of the FROM clause (left-to-right).
  std::vector<TableRef*> Leaves();
  std::vector<const TableRef*> Leaves() const;
};

/// Top-level SQL statement.
struct Statement {
  enum class Kind {
    kSelect,
    kCreateTable,
    kCreateIndex,
    kInsert,
    kAnalyze,
    kExplain,            ///< EXPLAIN <select>
    kExplainAnalyze,     ///< EXPLAIN ANALYZE <select>
    kShowStatus,         ///< SHOW STATUS [LIKE 'pattern']
    kShowDigests,        ///< SHOW DIGESTS [LIKE 'pattern']
    kShowFlightRecorder, ///< SHOW FLIGHT RECORDER
    kShowProfile,        ///< SHOW PROFILE FOR <event seq>
  };

  Kind kind = Kind::kSelect;

  // kSelect / kExplain / kExplainAnalyze
  std::unique_ptr<QueryBlock> select;

  // kCreateTable
  std::string table_name;
  std::vector<ColumnDef> columns;
  std::vector<int> primary_key;  ///< column positions, may be empty

  // kCreateIndex
  IndexDef index;

  // kInsert
  std::vector<std::vector<std::unique_ptr<Expr>>> insert_rows;

  // kAnalyze: table_name reused.
  // kShowStatus / kShowDigests: table_name reused for the LIKE pattern
  // (empty = all).

  // kShowProfile: the flight-recorder event sequence number.
  int64_t profile_seq = 0;
};

}  // namespace taurus

#endif  // TAURUS_PARSER_AST_H_
