#include "parser/ast.h"

namespace taurus {

bool IsComparisonOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

bool IsArithmeticOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
    case BinaryOp::kMod:
      return true;
    default:
      return false;
  }
}

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
  }
  return "?";
}

BinaryOp CommuteComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt:
      return BinaryOp::kGt;
    case BinaryOp::kLe:
      return BinaryOp::kGe;
    case BinaryOp::kGt:
      return BinaryOp::kLt;
    case BinaryOp::kGe:
      return BinaryOp::kLe;
    default:
      return op;  // = and <> are symmetric
  }
}

BinaryOp InverseComparison(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return BinaryOp::kNe;
    case BinaryOp::kNe:
      return BinaryOp::kEq;
    case BinaryOp::kLt:
      return BinaryOp::kGe;
    case BinaryOp::kLe:
      return BinaryOp::kGt;
    case BinaryOp::kGt:
      return BinaryOp::kLe;
    case BinaryOp::kGe:
      return BinaryOp::kLt;
    default:
      return op;
  }
}

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kCountStar:
      return "count(*)";
    case AggFunc::kCount:
      return "count";
    case AggFunc::kSum:
      return "sum";
    case AggFunc::kAvg:
      return "avg";
    case AggFunc::kMin:
      return "min";
    case AggFunc::kMax:
      return "max";
    case AggFunc::kStddev:
      return "stddev";
  }
  return "?";
}

const char* JoinTypeName(JoinType t) {
  switch (t) {
    case JoinType::kInner:
      return "inner";
    case JoinType::kCross:
      return "cross";
    case JoinType::kLeft:
      return "left";
    case JoinType::kSemi:
      return "semi";
    case JoinType::kAntiSemi:
      return "anti-semi";
  }
  return "?";
}

std::unique_ptr<Expr> Expr::Clone() const {
  auto out = std::make_unique<Expr>();
  out->kind = kind;
  out->literal = literal;
  out->table_name = table_name;
  out->column_name = column_name;
  out->ref_id = ref_id;
  out->column_idx = column_idx;
  out->column_nullable = column_nullable;
  out->bop = bop;
  out->uop = uop;
  out->negated = negated;
  out->func_name = func_name;
  out->agg_func = agg_func;
  out->agg_distinct = agg_distinct;
  out->case_has_else = case_has_else;
  out->cast_type = cast_type;
  out->interval_unit = interval_unit;
  out->interval_amount = interval_amount;
  out->result_type = result_type;
  out->subplan_id = subplan_id;
  out->children.reserve(children.size());
  for (const auto& c : children) out->children.push_back(c->Clone());
  if (subquery) out->subquery = subquery->Clone();
  return out;
}

std::string Expr::ToString() const {
  switch (kind) {
    case Kind::kLiteral:
      if (literal.kind() == Value::Kind::kString) {
        return "'" + literal.ToString() + "'";
      }
      return literal.ToString();
    case Kind::kColumnRef:
      if (!table_name.empty()) return table_name + "." + column_name;
      return column_name;
    case Kind::kBinary:
      return "(" + children[0]->ToString() + " " + BinaryOpName(bop) + " " +
             children[1]->ToString() + ")";
    case Kind::kUnary:
      switch (uop) {
        case UnaryOp::kNot:
          return "(NOT " + children[0]->ToString() + ")";
        case UnaryOp::kNeg:
          return "(-" + children[0]->ToString() + ")";
        case UnaryOp::kIsNull:
          return "(" + children[0]->ToString() + " IS NULL)";
        case UnaryOp::kIsNotNull:
          return "(" + children[0]->ToString() + " IS NOT NULL)";
      }
      return "?";
    case Kind::kFuncCall: {
      std::string out = func_name + "(";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i) out += ", ";
        out += children[i]->ToString();
      }
      return out + ")";
    }
    case Kind::kAgg: {
      if (agg_func == AggFunc::kCountStar) return "count(*)";
      std::string out = AggFuncName(agg_func);
      out += "(";
      if (agg_distinct) out += "distinct ";
      out += children[0]->ToString();
      return out + ")";
    }
    case Kind::kCase: {
      std::string out = "CASE";
      size_t n = children.size() - (case_has_else ? 1 : 0);
      for (size_t i = 0; i + 1 < n; i += 2) {
        out += " WHEN " + children[i]->ToString() + " THEN " +
               children[i + 1]->ToString();
      }
      if (case_has_else) out += " ELSE " + children.back()->ToString();
      return out + " END";
    }
    case Kind::kInList: {
      std::string out = "(" + children[0]->ToString() +
                        (negated ? " NOT IN (" : " IN (");
      for (size_t i = 1; i < children.size(); ++i) {
        if (i > 1) out += ", ";
        out += children[i]->ToString();
      }
      return out + "))";
    }
    case Kind::kBetween:
      return "(" + children[0]->ToString() + (negated ? " NOT" : "") +
             " BETWEEN " + children[1]->ToString() + " AND " +
             children[2]->ToString() + ")";
    case Kind::kLike:
      return "(" + children[0]->ToString() + (negated ? " NOT" : "") +
             " LIKE " + children[1]->ToString() + ")";
    case Kind::kExists:
      return std::string(negated ? "NOT " : "") + "EXISTS(<subquery>)";
    case Kind::kInSubquery:
      return "(" + children[0]->ToString() + (negated ? " NOT" : "") +
             " IN (<subquery>))";
    case Kind::kScalarSubquery:
      return "(<subquery>)";
    case Kind::kCast:
      return "CAST(" + children[0]->ToString() + " AS " +
             TypeIdName(cast_type) + ")";
    case Kind::kIntervalAdd: {
      const char* unit = interval_unit == IntervalUnit::kDay     ? "DAY"
                         : interval_unit == IntervalUnit::kMonth ? "MONTH"
                                                                 : "YEAR";
      return "(" + children[0]->ToString() +
             (interval_amount >= 0 ? " + INTERVAL " : " - INTERVAL ") +
             std::to_string(interval_amount >= 0 ? interval_amount
                                                 : -interval_amount) +
             " " + unit + ")";
    }
  }
  return "?";
}

std::unique_ptr<Expr> MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kLiteral;
  e->literal = std::move(v);
  e->result_type = e->literal.type();
  return e;
}

std::unique_ptr<Expr> MakeColumnRef(std::string table, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kColumnRef;
  e->table_name = std::move(table);
  e->column_name = std::move(column);
  return e;
}

std::unique_ptr<Expr> MakeBinary(BinaryOp op, std::unique_ptr<Expr> l,
                                 std::unique_ptr<Expr> r) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kBinary;
  e->bop = op;
  e->children.push_back(std::move(l));
  e->children.push_back(std::move(r));
  return e;
}

std::unique_ptr<Expr> MakeUnary(UnaryOp op, std::unique_ptr<Expr> operand) {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kUnary;
  e->uop = op;
  e->children.push_back(std::move(operand));
  return e;
}

std::unique_ptr<TableRef> TableRef::Clone() const {
  auto out = std::make_unique<TableRef>();
  out->kind = kind;
  out->table_name = table_name;
  out->alias = alias;
  if (derived) out->derived = derived->Clone();
  out->from_cte = from_cte;
  out->cte_name = cte_name;
  out->join_type = join_type;
  if (left) out->left = left->Clone();
  if (right) out->right = right->Clone();
  if (on) out->on = on->Clone();
  out->ref_id = ref_id;
  out->table = table;
  out->owner = nullptr;  // re-established by the binder
  return out;
}

std::unique_ptr<QueryBlock> QueryBlock::Clone() const {
  auto out = std::make_unique<QueryBlock>();
  for (const CteDef& cte : ctes) {
    out->ctes.push_back(CteDef{cte.name, cte.query->Clone()});
  }
  out->distinct = distinct;
  for (const SelectItem& item : select_items) {
    out->select_items.push_back(SelectItem{item.expr->Clone(), item.alias});
  }
  for (const auto& t : from) out->from.push_back(t->Clone());
  if (where) out->where = where->Clone();
  for (const auto& g : group_by) out->group_by.push_back(g->Clone());
  if (having) out->having = having->Clone();
  for (const OrderItem& o : order_by) {
    out->order_by.push_back(OrderItem{o.expr->Clone(), o.ascending});
  }
  out->limit = limit;
  out->offset = offset;
  if (union_next) out->union_next = union_next->Clone();
  out->union_all = union_all;
  out->block_id = block_id;
  return out;
}

namespace {

void CollectLeaves(TableRef* ref, std::vector<TableRef*>* out) {
  if (ref->kind == TableRef::Kind::kJoin) {
    CollectLeaves(ref->left.get(), out);
    CollectLeaves(ref->right.get(), out);
  } else {
    out->push_back(ref);
  }
}

}  // namespace

std::vector<TableRef*> QueryBlock::Leaves() {
  std::vector<TableRef*> out;
  for (const auto& t : from) CollectLeaves(t.get(), &out);
  return out;
}

std::vector<const TableRef*> QueryBlock::Leaves() const {
  std::vector<TableRef*> out;
  for (const auto& t : from) {
    CollectLeaves(const_cast<TableRef*>(t.get()), &out);
  }
  return std::vector<const TableRef*>(out.begin(), out.end());
}

}  // namespace taurus
