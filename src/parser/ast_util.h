#ifndef TAURUS_PARSER_AST_UTIL_H_
#define TAURUS_PARSER_AST_UTIL_H_

#include <vector>

#include "parser/ast.h"

namespace taurus {

/// Structural equality of two (bound) expressions; used to match GROUP BY
/// expressions and aggregates in post-aggregation contexts, and for plan
/// invariants. Subquery expressions never compare equal.
bool ExprEquals(const Expr& a, const Expr& b);

/// Marks in `refs` (indexed by ref_id) every leaf referenced by `expr`,
/// including correlated references made from inside subqueries.
void CollectReferencedRefs(const Expr& expr, std::vector<bool>* refs);

/// True if `expr` contains an aggregate function call outside of subqueries.
bool ContainsAggregate(const Expr& expr);

/// True if `expr` contains a subquery (EXISTS/IN/scalar) anywhere.
bool ContainsSubquery(const Expr& expr);

/// Splits a predicate into its top-level AND conjuncts (borrowed pointers).
void SplitConjuncts(const Expr* pred, std::vector<const Expr*>* out);
void SplitConjunctsMutable(Expr* pred, std::vector<Expr*>* out);

}  // namespace taurus

#endif  // TAURUS_PARSER_AST_UTIL_H_
