#include "parser/parser.h"

#include <utility>

#include "common/strings.h"
#include "parser/lexer.h"
#include "types/datetime.h"

namespace taurus {

namespace {

/// Keywords that terminate an implicit alias position.
bool IsReservedKeyword(const std::string& word) {
  static const char* kReserved[] = {
      "select", "from",   "where",  "group",  "having", "order",  "limit",
      "offset", "on",     "inner",  "left",   "right",  "cross",  "join",
      "union",  "as",     "and",    "or",     "not",    "in",     "exists",
      "like",   "between", "is",    "case",   "when",   "then",   "else",
      "end",    "distinct", "outer", "semi",  "asc",    "desc",   "with",
      "values", "set",    "by",     "all",    "using",  "straight_join"};
  for (const char* kw : kReserved) {
    if (AsciiEqualsIgnoreCase(word, kw)) return true;
  }
  return false;
}

/// Recursive-descent SQL parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::unique_ptr<Statement>> ParseStatementTop();

  Result<std::unique_ptr<QueryBlock>> ParseQueryExpr();

 private:
  const Token& Peek(int ahead = 0) const {
    size_t i = pos_ + static_cast<size_t>(ahead);
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }

  bool PeekIsKeyword(const char* kw, int ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.kind == TokenKind::kIdent && AsciiEqualsIgnoreCase(t.text, kw);
  }
  bool PeekIsSymbol(const char* sym, int ahead = 0) const {
    const Token& t = Peek(ahead);
    return t.kind == TokenKind::kSymbol && t.text == sym;
  }
  bool AcceptKeyword(const char* kw) {
    if (PeekIsKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool AcceptSymbol(const char* sym) {
    if (PeekIsSymbol(sym)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const char* kw) {
    if (AcceptKeyword(kw)) return Status::OK();
    return Status::SyntaxError(std::string("expected keyword '") + kw +
                               "' near '" + Peek().text + "'");
  }
  Status ExpectSymbol(const char* sym) {
    if (AcceptSymbol(sym)) return Status::OK();
    return Status::SyntaxError(std::string("expected '") + sym + "' near '" +
                               Peek().text + "'");
  }
  Result<std::string> ExpectIdent() {
    if (Peek().kind != TokenKind::kIdent) {
      return Status::SyntaxError("expected identifier near '" + Peek().text +
                                 "'");
    }
    return AsciiLower(Advance().text);
  }

  Result<std::unique_ptr<QueryBlock>> ParseQueryBlock();
  Result<std::unique_ptr<TableRef>> ParseTableRef();
  Result<std::unique_ptr<TableRef>> ParseTablePrimary();
  Status ParseOptionalAlias(std::string* alias);

  // Expression precedence chain.
  Result<std::unique_ptr<Expr>> ParseExpr() { return ParseOr(); }
  Result<std::unique_ptr<Expr>> ParseOr();
  Result<std::unique_ptr<Expr>> ParseAnd();
  Result<std::unique_ptr<Expr>> ParseNot();
  Result<std::unique_ptr<Expr>> ParsePredicate();
  Result<std::unique_ptr<Expr>> ParseAdditive();
  Result<std::unique_ptr<Expr>> ParseMultiplicative();
  Result<std::unique_ptr<Expr>> ParseUnary();
  Result<std::unique_ptr<Expr>> ParsePrimary();
  Result<std::unique_ptr<Expr>> ParseCase();
  Result<std::unique_ptr<Expr>> ParseFunctionCall(const std::string& name);

  Result<std::unique_ptr<Statement>> ParseCreate();
  Result<std::unique_ptr<Statement>> ParseInsert();

  // Recursion-depth limits: the parser is recursive-descent, so deeply
  // nested input must fail with SyntaxError before it can overflow the
  // C++ stack (here and in every downstream AST walker).
  static constexpr int kMaxBlockDepth = 32;
  static constexpr int kMaxExprDepth = 200;

  struct DepthGuard {
    explicit DepthGuard(int* d) : depth(d) { ++*depth; }
    ~DepthGuard() { --*depth; }
    int* depth;
  };

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int block_depth_ = 0;
  int expr_depth_ = 0;
};

Result<std::unique_ptr<Statement>> Parser::ParseStatementTop() {
  auto stmt = std::make_unique<Statement>();
  if (PeekIsKeyword("explain")) {
    Advance();
    stmt->kind = AcceptKeyword("analyze") ? Statement::Kind::kExplainAnalyze
                                          : Statement::Kind::kExplain;
    TAURUS_ASSIGN_OR_RETURN(stmt->select, ParseQueryExpr());
    return stmt;
  }
  if (PeekIsKeyword("show")) {
    Advance();
    bool accepts_like = false;
    if (AcceptKeyword("status") || AcceptKeyword("metrics")) {
      stmt->kind = Statement::Kind::kShowStatus;
      accepts_like = true;
    } else if (AcceptKeyword("digests")) {
      stmt->kind = Statement::Kind::kShowDigests;
      accepts_like = true;
    } else if (AcceptKeyword("flight")) {
      if (!AcceptKeyword("recorder")) {
        return Status::SyntaxError("expected RECORDER after SHOW FLIGHT");
      }
      stmt->kind = Statement::Kind::kShowFlightRecorder;
    } else if (AcceptKeyword("profile")) {
      if (!AcceptKeyword("for")) {
        return Status::SyntaxError("expected FOR after SHOW PROFILE");
      }
      if (Peek().kind != TokenKind::kInteger) {
        return Status::SyntaxError(
            "expected event sequence number after SHOW PROFILE FOR");
      }
      stmt->kind = Statement::Kind::kShowProfile;
      stmt->profile_seq = Advance().int_val;
    } else {
      return Status::SyntaxError(
          "expected STATUS, METRICS, DIGESTS, FLIGHT RECORDER or PROFILE "
          "after SHOW");
    }
    if (accepts_like && AcceptKeyword("like")) {
      if (Peek().kind != TokenKind::kString) {
        return Status::SyntaxError("expected quoted pattern after LIKE");
      }
      stmt->table_name = Advance().text;  // LIKE pattern parks here
    }
    AcceptSymbol(";");
    if (Peek().kind != TokenKind::kEnd) {
      return Status::SyntaxError("trailing tokens after statement: '" +
                                 Peek().text + "'");
    }
    return stmt;
  }
  if (PeekIsKeyword("select") || PeekIsKeyword("with")) {
    stmt->kind = Statement::Kind::kSelect;
    TAURUS_ASSIGN_OR_RETURN(stmt->select, ParseQueryExpr());
    AcceptSymbol(";");
    if (Peek().kind != TokenKind::kEnd) {
      return Status::SyntaxError("trailing tokens after statement: '" +
                                 Peek().text + "'");
    }
    return stmt;
  }
  if (PeekIsKeyword("create")) return ParseCreate();
  if (PeekIsKeyword("insert")) return ParseInsert();
  if (PeekIsKeyword("analyze")) {
    Advance();
    AcceptKeyword("table");
    stmt->kind = Statement::Kind::kAnalyze;
    TAURUS_ASSIGN_OR_RETURN(stmt->table_name, ExpectIdent());
    return stmt;
  }
  return Status::SyntaxError("unrecognized statement start: '" + Peek().text +
                             "'");
}

Result<std::unique_ptr<Statement>> Parser::ParseCreate() {
  TAURUS_RETURN_IF_ERROR(ExpectKeyword("create"));
  auto stmt = std::make_unique<Statement>();
  bool unique = AcceptKeyword("unique");
  if (AcceptKeyword("table")) {
    if (unique) return Status::SyntaxError("UNIQUE TABLE is not valid");
    stmt->kind = Statement::Kind::kCreateTable;
    TAURUS_ASSIGN_OR_RETURN(stmt->table_name, ExpectIdent());
    TAURUS_RETURN_IF_ERROR(ExpectSymbol("("));
    while (true) {
      if (PeekIsKeyword("primary")) {
        Advance();
        TAURUS_RETURN_IF_ERROR(ExpectKeyword("key"));
        TAURUS_RETURN_IF_ERROR(ExpectSymbol("("));
        while (true) {
          TAURUS_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
          int idx = -1;
          for (size_t i = 0; i < stmt->columns.size(); ++i) {
            if (stmt->columns[i].name == col) idx = static_cast<int>(i);
          }
          if (idx < 0) {
            return Status::SyntaxError("PRIMARY KEY references unknown column " +
                                       col);
          }
          stmt->primary_key.push_back(idx);
          if (!AcceptSymbol(",")) break;
        }
        TAURUS_RETURN_IF_ERROR(ExpectSymbol(")"));
      } else {
        ColumnDef col;
        TAURUS_ASSIGN_OR_RETURN(col.name, ExpectIdent());
        TAURUS_ASSIGN_OR_RETURN(std::string type_name, ExpectIdent());
        TAURUS_ASSIGN_OR_RETURN(col.type, TypeIdFromSqlName(type_name));
        if (AcceptSymbol("(")) {
          if (Peek().kind != TokenKind::kInteger) {
            return Status::SyntaxError("expected length in type modifier");
          }
          col.length = static_cast<int>(Advance().int_val);
          if (AcceptSymbol(",")) {
            if (Peek().kind != TokenKind::kInteger) {
              return Status::SyntaxError("expected scale in type modifier");
            }
            Advance();  // scale ignored; decimals are stored as doubles
          }
          TAURUS_RETURN_IF_ERROR(ExpectSymbol(")"));
        }
        if (AcceptKeyword("not")) {
          TAURUS_RETURN_IF_ERROR(ExpectKeyword("null"));
          col.nullable = false;
        } else if (AcceptKeyword("null")) {
          col.nullable = true;
        }
        if (AcceptKeyword("primary")) {
          TAURUS_RETURN_IF_ERROR(ExpectKeyword("key"));
          stmt->primary_key.push_back(static_cast<int>(stmt->columns.size()));
          col.nullable = false;
        }
        stmt->columns.push_back(std::move(col));
      }
      if (!AcceptSymbol(",")) break;
    }
    TAURUS_RETURN_IF_ERROR(ExpectSymbol(")"));
    AcceptSymbol(";");
    return stmt;
  }
  if (AcceptKeyword("index")) {
    stmt->kind = Statement::Kind::kCreateIndex;
    stmt->index.unique = unique;
    TAURUS_ASSIGN_OR_RETURN(stmt->index.name, ExpectIdent());
    TAURUS_RETURN_IF_ERROR(ExpectKeyword("on"));
    TAURUS_ASSIGN_OR_RETURN(stmt->table_name, ExpectIdent());
    TAURUS_RETURN_IF_ERROR(ExpectSymbol("("));
    // Column positions are resolved by the engine against the table.
    while (true) {
      TAURUS_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
      // Temporarily park column names; the engine translates to positions.
      stmt->columns.push_back(ColumnDef{col, TypeId::kLong, 0, true});
      if (!AcceptSymbol(",")) break;
    }
    TAURUS_RETURN_IF_ERROR(ExpectSymbol(")"));
    AcceptSymbol(";");
    return stmt;
  }
  return Status::SyntaxError("expected TABLE or INDEX after CREATE");
}

Result<std::unique_ptr<Statement>> Parser::ParseInsert() {
  TAURUS_RETURN_IF_ERROR(ExpectKeyword("insert"));
  TAURUS_RETURN_IF_ERROR(ExpectKeyword("into"));
  auto stmt = std::make_unique<Statement>();
  stmt->kind = Statement::Kind::kInsert;
  TAURUS_ASSIGN_OR_RETURN(stmt->table_name, ExpectIdent());
  TAURUS_RETURN_IF_ERROR(ExpectKeyword("values"));
  while (true) {
    TAURUS_RETURN_IF_ERROR(ExpectSymbol("("));
    std::vector<std::unique_ptr<Expr>> row;
    while (true) {
      TAURUS_ASSIGN_OR_RETURN(auto e, ParseExpr());
      row.push_back(std::move(e));
      if (!AcceptSymbol(",")) break;
    }
    TAURUS_RETURN_IF_ERROR(ExpectSymbol(")"));
    stmt->insert_rows.push_back(std::move(row));
    if (!AcceptSymbol(",")) break;
  }
  AcceptSymbol(";");
  return stmt;
}

Result<std::unique_ptr<QueryBlock>> Parser::ParseQueryExpr() {
  DepthGuard depth(&block_depth_);
  if (block_depth_ > kMaxBlockDepth) {
    return Status::SyntaxError("query blocks nested too deeply (limit " +
                               std::to_string(kMaxBlockDepth) + ")");
  }
  std::vector<CteDef> ctes;
  if (AcceptKeyword("with")) {
    if (PeekIsKeyword("recursive")) {
      return Status::NotSupported(
          "recursive CTEs are not supported (paper limitation)");
    }
    while (true) {
      CteDef cte;
      TAURUS_ASSIGN_OR_RETURN(cte.name, ExpectIdent());
      TAURUS_RETURN_IF_ERROR(ExpectKeyword("as"));
      TAURUS_RETURN_IF_ERROR(ExpectSymbol("("));
      TAURUS_ASSIGN_OR_RETURN(cte.query, ParseQueryExpr());
      TAURUS_RETURN_IF_ERROR(ExpectSymbol(")"));
      ctes.push_back(std::move(cte));
      if (!AcceptSymbol(",")) break;
    }
  }
  TAURUS_ASSIGN_OR_RETURN(auto block, ParseQueryBlock());
  block->ctes = std::move(ctes);
  // UNION [ALL] chains.
  QueryBlock* tail = block.get();
  while (PeekIsKeyword("union")) {
    Advance();
    bool all = AcceptKeyword("all");
    TAURUS_ASSIGN_OR_RETURN(auto next, ParseQueryBlock());
    tail->union_all = all;
    tail->union_next = std::move(next);
    tail = tail->union_next.get();
  }
  // A trailing ORDER BY / LIMIT was consumed by the last arm's block
  // grammar, but it applies to the whole union — move it to the head.
  if (tail != block.get()) {
    block->order_by = std::move(tail->order_by);
    tail->order_by.clear();
    block->limit = tail->limit;
    block->offset = tail->offset;
    tail->limit = -1;
    tail->offset = 0;
  }
  // A trailing ORDER BY / LIMIT after a union applies to the union result;
  // attach it to the head block.
  if (AcceptKeyword("order")) {
    TAURUS_RETURN_IF_ERROR(ExpectKeyword("by"));
    while (true) {
      OrderItem item;
      TAURUS_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (AcceptKeyword("desc")) {
        item.ascending = false;
      } else {
        AcceptKeyword("asc");
      }
      block->order_by.push_back(std::move(item));
      if (!AcceptSymbol(",")) break;
    }
  }
  if (AcceptKeyword("limit")) {
    if (Peek().kind != TokenKind::kInteger) {
      return Status::SyntaxError("expected integer after LIMIT");
    }
    int64_t first = Advance().int_val;
    if (AcceptSymbol(",")) {
      if (Peek().kind != TokenKind::kInteger) {
        return Status::SyntaxError("expected integer after LIMIT n,");
      }
      block->offset = first;
      block->limit = Advance().int_val;
    } else if (AcceptKeyword("offset")) {
      if (Peek().kind != TokenKind::kInteger) {
        return Status::SyntaxError("expected integer after OFFSET");
      }
      block->limit = first;
      block->offset = Advance().int_val;
    } else {
      block->limit = first;
    }
  }
  return block;
}

Result<std::unique_ptr<QueryBlock>> Parser::ParseQueryBlock() {
  TAURUS_RETURN_IF_ERROR(ExpectKeyword("select"));
  auto block = std::make_unique<QueryBlock>();
  if (AcceptKeyword("distinct")) block->distinct = true;

  // SELECT list.
  while (true) {
    SelectItem item;
    if (PeekIsSymbol("*")) {
      Advance();
      // '*' expands during binding; encode as a column ref named "*".
      item.expr = MakeColumnRef("", "*");
    } else if (Peek().kind == TokenKind::kIdent && PeekIsSymbol(".", 1) &&
               PeekIsSymbol("*", 2)) {
      std::string tbl = AsciiLower(Advance().text);
      Advance();  // '.'
      Advance();  // '*'
      item.expr = MakeColumnRef(tbl, "*");
    } else {
      TAURUS_ASSIGN_OR_RETURN(item.expr, ParseExpr());
    }
    if (AcceptKeyword("as")) {
      TAURUS_ASSIGN_OR_RETURN(item.alias, ExpectIdent());
    } else if (Peek().kind == TokenKind::kIdent &&
               !IsReservedKeyword(Peek().text)) {
      item.alias = AsciiLower(Advance().text);
    }
    block->select_items.push_back(std::move(item));
    if (!AcceptSymbol(",")) break;
  }

  if (AcceptKeyword("from")) {
    while (true) {
      TAURUS_ASSIGN_OR_RETURN(auto ref, ParseTableRef());
      block->from.push_back(std::move(ref));
      if (!AcceptSymbol(",")) break;
    }
  }

  if (AcceptKeyword("where")) {
    TAURUS_ASSIGN_OR_RETURN(block->where, ParseExpr());
  }
  if (AcceptKeyword("group")) {
    TAURUS_RETURN_IF_ERROR(ExpectKeyword("by"));
    while (true) {
      TAURUS_ASSIGN_OR_RETURN(auto e, ParseExpr());
      block->group_by.push_back(std::move(e));
      if (!AcceptSymbol(",")) break;
    }
  }
  if (AcceptKeyword("having")) {
    TAURUS_ASSIGN_OR_RETURN(block->having, ParseExpr());
  }
  if (PeekIsKeyword("order") && !PeekIsKeyword("union", 0)) {
    Advance();
    TAURUS_RETURN_IF_ERROR(ExpectKeyword("by"));
    while (true) {
      OrderItem item;
      TAURUS_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (AcceptKeyword("desc")) {
        item.ascending = false;
      } else {
        AcceptKeyword("asc");
      }
      block->order_by.push_back(std::move(item));
      if (!AcceptSymbol(",")) break;
    }
  }
  if (AcceptKeyword("limit")) {
    if (Peek().kind != TokenKind::kInteger) {
      return Status::SyntaxError("expected integer after LIMIT");
    }
    int64_t first = Advance().int_val;
    if (AcceptSymbol(",")) {
      if (Peek().kind != TokenKind::kInteger) {
        return Status::SyntaxError("expected integer after LIMIT n,");
      }
      block->offset = first;
      block->limit = Advance().int_val;
    } else if (AcceptKeyword("offset")) {
      if (Peek().kind != TokenKind::kInteger) {
        return Status::SyntaxError("expected integer after OFFSET");
      }
      block->limit = first;
      block->offset = Advance().int_val;
    } else {
      block->limit = first;
    }
  }
  return block;
}

Result<std::unique_ptr<TableRef>> Parser::ParseTableRef() {
  TAURUS_ASSIGN_OR_RETURN(auto left, ParseTablePrimary());
  while (true) {
    JoinType jt;
    if (PeekIsKeyword("join") || PeekIsKeyword("inner") ||
        PeekIsKeyword("straight_join")) {
      if (!AcceptKeyword("join")) {
        Advance();  // INNER or STRAIGHT_JOIN
        AcceptKeyword("join");
      }
      jt = JoinType::kInner;
    } else if (PeekIsKeyword("left")) {
      Advance();
      AcceptKeyword("outer");
      TAURUS_RETURN_IF_ERROR(ExpectKeyword("join"));
      jt = JoinType::kLeft;
    } else if (PeekIsKeyword("cross")) {
      Advance();
      TAURUS_RETURN_IF_ERROR(ExpectKeyword("join"));
      jt = JoinType::kCross;
    } else {
      break;
    }
    TAURUS_ASSIGN_OR_RETURN(auto right, ParseTablePrimary());
    auto join = std::make_unique<TableRef>();
    join->kind = TableRef::Kind::kJoin;
    join->join_type = jt;
    join->left = std::move(left);
    join->right = std::move(right);
    if (AcceptKeyword("on")) {
      TAURUS_ASSIGN_OR_RETURN(join->on, ParseExpr());
    } else if (jt != JoinType::kCross) {
      join->join_type = JoinType::kCross;  // JOIN without ON degenerates
    }
    left = std::move(join);
  }
  return left;
}

Status Parser::ParseOptionalAlias(std::string* alias) {
  if (AcceptKeyword("as")) {
    TAURUS_ASSIGN_OR_RETURN(*alias, ExpectIdent());
    return Status::OK();
  }
  if (Peek().kind == TokenKind::kIdent && !IsReservedKeyword(Peek().text)) {
    *alias = AsciiLower(Advance().text);
  }
  return Status::OK();
}

Result<std::unique_ptr<TableRef>> Parser::ParseTablePrimary() {
  auto ref = std::make_unique<TableRef>();
  if (AcceptSymbol("(")) {
    if (PeekIsKeyword("select") || PeekIsKeyword("with")) {
      ref->kind = TableRef::Kind::kDerived;
      TAURUS_ASSIGN_OR_RETURN(ref->derived, ParseQueryExpr());
      TAURUS_RETURN_IF_ERROR(ExpectSymbol(")"));
      TAURUS_RETURN_IF_ERROR(ParseOptionalAlias(&ref->alias));
      if (ref->alias.empty()) {
        return Status::SyntaxError("derived table requires an alias");
      }
      return ref;
    }
    // Parenthesized join nest.
    TAURUS_ASSIGN_OR_RETURN(ref, ParseTableRef());
    TAURUS_RETURN_IF_ERROR(ExpectSymbol(")"));
    return ref;
  }
  ref->kind = TableRef::Kind::kBase;
  TAURUS_ASSIGN_OR_RETURN(ref->table_name, ExpectIdent());
  TAURUS_RETURN_IF_ERROR(ParseOptionalAlias(&ref->alias));
  if (ref->alias.empty()) ref->alias = ref->table_name;
  return ref;
}

Result<std::unique_ptr<Expr>> Parser::ParseOr() {
  DepthGuard depth(&expr_depth_);
  if (expr_depth_ > kMaxExprDepth) {
    return Status::SyntaxError("expression nested too deeply (limit " +
                               std::to_string(kMaxExprDepth) + ")");
  }
  TAURUS_ASSIGN_OR_RETURN(auto left, ParseAnd());
  while (AcceptKeyword("or")) {
    TAURUS_ASSIGN_OR_RETURN(auto right, ParseAnd());
    left = MakeBinary(BinaryOp::kOr, std::move(left), std::move(right));
  }
  return left;
}

Result<std::unique_ptr<Expr>> Parser::ParseAnd() {
  TAURUS_ASSIGN_OR_RETURN(auto left, ParseNot());
  while (AcceptKeyword("and")) {
    TAURUS_ASSIGN_OR_RETURN(auto right, ParseNot());
    left = MakeBinary(BinaryOp::kAnd, std::move(left), std::move(right));
  }
  return left;
}

Result<std::unique_ptr<Expr>> Parser::ParseNot() {
  DepthGuard depth(&expr_depth_);
  if (expr_depth_ > kMaxExprDepth) {
    return Status::SyntaxError("expression nested too deeply (limit " +
                               std::to_string(kMaxExprDepth) + ")");
  }
  if (AcceptKeyword("not")) {
    TAURUS_ASSIGN_OR_RETURN(auto operand, ParseNot());
    return MakeUnary(UnaryOp::kNot, std::move(operand));
  }
  return ParsePredicate();
}

Result<std::unique_ptr<Expr>> Parser::ParsePredicate() {
  TAURUS_ASSIGN_OR_RETURN(auto left, ParseAdditive());

  // IS [NOT] NULL
  if (AcceptKeyword("is")) {
    bool negate = AcceptKeyword("not");
    TAURUS_RETURN_IF_ERROR(ExpectKeyword("null"));
    return MakeUnary(negate ? UnaryOp::kIsNotNull : UnaryOp::kIsNull,
                     std::move(left));
  }

  bool negated = AcceptKeyword("not");
  if (AcceptKeyword("like")) {
    TAURUS_ASSIGN_OR_RETURN(auto pattern, ParseAdditive());
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kLike;
    e->negated = negated;
    e->children.push_back(std::move(left));
    e->children.push_back(std::move(pattern));
    return e;
  }
  if (AcceptKeyword("between")) {
    TAURUS_ASSIGN_OR_RETURN(auto lo, ParseAdditive());
    TAURUS_RETURN_IF_ERROR(ExpectKeyword("and"));
    TAURUS_ASSIGN_OR_RETURN(auto hi, ParseAdditive());
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kBetween;
    e->negated = negated;
    e->children.push_back(std::move(left));
    e->children.push_back(std::move(lo));
    e->children.push_back(std::move(hi));
    return e;
  }
  if (AcceptKeyword("in")) {
    TAURUS_RETURN_IF_ERROR(ExpectSymbol("("));
    if (PeekIsKeyword("select") || PeekIsKeyword("with")) {
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kInSubquery;
      e->negated = negated;
      e->children.push_back(std::move(left));
      TAURUS_ASSIGN_OR_RETURN(e->subquery, ParseQueryExpr());
      TAURUS_RETURN_IF_ERROR(ExpectSymbol(")"));
      return e;
    }
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kInList;
    e->negated = negated;
    e->children.push_back(std::move(left));
    while (true) {
      TAURUS_ASSIGN_OR_RETURN(auto item, ParseExpr());
      e->children.push_back(std::move(item));
      if (!AcceptSymbol(",")) break;
    }
    TAURUS_RETURN_IF_ERROR(ExpectSymbol(")"));
    return e;
  }
  if (negated) {
    return Status::SyntaxError("expected LIKE/BETWEEN/IN after NOT");
  }

  // Comparison operators.
  struct CmpMap {
    const char* sym;
    BinaryOp op;
  };
  static const CmpMap kCmps[] = {{"=", BinaryOp::kEq},  {"<>", BinaryOp::kNe},
                                 {"<=", BinaryOp::kLe}, {">=", BinaryOp::kGe},
                                 {"<", BinaryOp::kLt},  {">", BinaryOp::kGt}};
  for (const CmpMap& m : kCmps) {
    if (PeekIsSymbol(m.sym)) {
      Advance();
      TAURUS_ASSIGN_OR_RETURN(auto right, ParseAdditive());
      return MakeBinary(m.op, std::move(left), std::move(right));
    }
  }
  return left;
}

Result<std::unique_ptr<Expr>> Parser::ParseAdditive() {
  TAURUS_ASSIGN_OR_RETURN(auto left, ParseMultiplicative());
  while (PeekIsSymbol("+") || PeekIsSymbol("-")) {
    bool plus = Peek().text == "+";
    Advance();
    if (AcceptKeyword("interval")) {
      // expr +/- INTERVAL <n|'n'> DAY|MONTH|YEAR
      int64_t amount = 0;
      if (Peek().kind == TokenKind::kInteger) {
        amount = Advance().int_val;
      } else if (Peek().kind == TokenKind::kString) {
        amount = std::strtoll(Advance().text.c_str(), nullptr, 10);
      } else {
        return Status::SyntaxError("expected amount after INTERVAL");
      }
      IntervalUnit unit;
      if (AcceptKeyword("day")) {
        unit = IntervalUnit::kDay;
      } else if (AcceptKeyword("month")) {
        unit = IntervalUnit::kMonth;
      } else if (AcceptKeyword("year")) {
        unit = IntervalUnit::kYear;
      } else {
        return Status::SyntaxError("expected DAY/MONTH/YEAR after INTERVAL");
      }
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kIntervalAdd;
      e->interval_unit = unit;
      e->interval_amount = plus ? amount : -amount;
      e->children.push_back(std::move(left));
      left = std::move(e);
      continue;
    }
    TAURUS_ASSIGN_OR_RETURN(auto right, ParseMultiplicative());
    left = MakeBinary(plus ? BinaryOp::kAdd : BinaryOp::kSub, std::move(left),
                      std::move(right));
  }
  return left;
}

Result<std::unique_ptr<Expr>> Parser::ParseMultiplicative() {
  TAURUS_ASSIGN_OR_RETURN(auto left, ParseUnary());
  while (PeekIsSymbol("*") || PeekIsSymbol("/") || PeekIsSymbol("%")) {
    BinaryOp op = Peek().text == "*"   ? BinaryOp::kMul
                  : Peek().text == "/" ? BinaryOp::kDiv
                                       : BinaryOp::kMod;
    Advance();
    TAURUS_ASSIGN_OR_RETURN(auto right, ParseUnary());
    left = MakeBinary(op, std::move(left), std::move(right));
  }
  return left;
}

Result<std::unique_ptr<Expr>> Parser::ParseUnary() {
  DepthGuard depth(&expr_depth_);
  if (expr_depth_ > kMaxExprDepth) {
    return Status::SyntaxError("expression nested too deeply (limit " +
                               std::to_string(kMaxExprDepth) + ")");
  }
  if (AcceptSymbol("-")) {
    TAURUS_ASSIGN_OR_RETURN(auto operand, ParseUnary());
    return MakeUnary(UnaryOp::kNeg, std::move(operand));
  }
  AcceptSymbol("+");
  return ParsePrimary();
}

Result<std::unique_ptr<Expr>> Parser::ParseCase() {
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kCase;
  std::unique_ptr<Expr> operand;
  if (!PeekIsKeyword("when")) {
    // Simple CASE: desugar 'CASE x WHEN v ...' to 'CASE WHEN x = v ...'.
    TAURUS_ASSIGN_OR_RETURN(operand, ParseExpr());
  }
  while (AcceptKeyword("when")) {
    TAURUS_ASSIGN_OR_RETURN(auto when, ParseExpr());
    if (operand) {
      when = MakeBinary(BinaryOp::kEq, operand->Clone(), std::move(when));
    }
    TAURUS_RETURN_IF_ERROR(ExpectKeyword("then"));
    TAURUS_ASSIGN_OR_RETURN(auto then, ParseExpr());
    e->children.push_back(std::move(when));
    e->children.push_back(std::move(then));
  }
  if (e->children.empty()) {
    return Status::SyntaxError("CASE requires at least one WHEN");
  }
  if (AcceptKeyword("else")) {
    TAURUS_ASSIGN_OR_RETURN(auto els, ParseExpr());
    e->children.push_back(std::move(els));
    e->case_has_else = true;
  }
  TAURUS_RETURN_IF_ERROR(ExpectKeyword("end"));
  return e;
}

Result<std::unique_ptr<Expr>> Parser::ParseFunctionCall(
    const std::string& name) {
  // Aggregates.
  struct AggMap {
    const char* name;
    AggFunc func;
  };
  static const AggMap kAggs[] = {{"count", AggFunc::kCount},
                                 {"sum", AggFunc::kSum},
                                 {"avg", AggFunc::kAvg},
                                 {"min", AggFunc::kMin},
                                 {"max", AggFunc::kMax},
                                 {"stddev", AggFunc::kStddev},
                                 {"stddev_samp", AggFunc::kStddev}};
  for (const AggMap& m : kAggs) {
    if (name == m.name) {
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kAgg;
      e->agg_func = m.func;
      if (m.func == AggFunc::kCount && PeekIsSymbol("*")) {
        Advance();
        e->agg_func = AggFunc::kCountStar;
        TAURUS_RETURN_IF_ERROR(ExpectSymbol(")"));
        return e;
      }
      if (AcceptKeyword("distinct")) e->agg_distinct = true;
      TAURUS_ASSIGN_OR_RETURN(auto arg, ParseExpr());
      e->children.push_back(std::move(arg));
      TAURUS_RETURN_IF_ERROR(ExpectSymbol(")"));
      return e;
    }
  }
  // CAST(expr AS type).
  if (name == "cast") {
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kCast;
    TAURUS_ASSIGN_OR_RETURN(auto arg, ParseExpr());
    e->children.push_back(std::move(arg));
    TAURUS_RETURN_IF_ERROR(ExpectKeyword("as"));
    TAURUS_ASSIGN_OR_RETURN(std::string type_name, ExpectIdent());
    TAURUS_ASSIGN_OR_RETURN(e->cast_type, TypeIdFromSqlName(type_name));
    if (AcceptSymbol("(")) {  // e.g. CHAR(10)
      if (Peek().kind == TokenKind::kInteger) Advance();
      TAURUS_RETURN_IF_ERROR(ExpectSymbol(")"));
    }
    TAURUS_RETURN_IF_ERROR(ExpectSymbol(")"));
    return e;
  }
  // EXTRACT(unit FROM expr) desugars to year()/month()/day().
  if (name == "extract") {
    TAURUS_ASSIGN_OR_RETURN(std::string unit, ExpectIdent());
    TAURUS_RETURN_IF_ERROR(ExpectKeyword("from"));
    TAURUS_ASSIGN_OR_RETURN(auto arg, ParseExpr());
    TAURUS_RETURN_IF_ERROR(ExpectSymbol(")"));
    auto e = std::make_unique<Expr>();
    e->kind = Expr::Kind::kFuncCall;
    e->func_name = unit;  // "year"/"month"/"day"
    e->children.push_back(std::move(arg));
    return e;
  }
  // Regular function call.
  auto e = std::make_unique<Expr>();
  e->kind = Expr::Kind::kFuncCall;
  e->func_name = name;
  if (!AcceptSymbol(")")) {
    while (true) {
      TAURUS_ASSIGN_OR_RETURN(auto arg, ParseExpr());
      e->children.push_back(std::move(arg));
      if (!AcceptSymbol(",")) break;
    }
    TAURUS_RETURN_IF_ERROR(ExpectSymbol(")"));
  }
  return e;
}

Result<std::unique_ptr<Expr>> Parser::ParsePrimary() {
  const Token& tok = Peek();
  if (tok.kind == TokenKind::kInteger) {
    Advance();
    return MakeLiteral(Value::Int(tok.int_val));
  }
  if (tok.kind == TokenKind::kFloat) {
    Advance();
    return MakeLiteral(Value::Double(tok.float_val));
  }
  if (tok.kind == TokenKind::kString) {
    Advance();
    return MakeLiteral(Value::Str(tok.text));
  }
  if (PeekIsSymbol("(")) {
    Advance();
    if (PeekIsKeyword("select") || PeekIsKeyword("with")) {
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kScalarSubquery;
      TAURUS_ASSIGN_OR_RETURN(e->subquery, ParseQueryExpr());
      TAURUS_RETURN_IF_ERROR(ExpectSymbol(")"));
      return e;
    }
    TAURUS_ASSIGN_OR_RETURN(auto e, ParseExpr());
    TAURUS_RETURN_IF_ERROR(ExpectSymbol(")"));
    return e;
  }
  if (tok.kind == TokenKind::kIdent) {
    std::string word = AsciiLower(tok.text);
    if (word == "case") {
      Advance();
      return ParseCase();
    }
    if (word == "exists") {
      Advance();
      TAURUS_RETURN_IF_ERROR(ExpectSymbol("("));
      auto e = std::make_unique<Expr>();
      e->kind = Expr::Kind::kExists;
      TAURUS_ASSIGN_OR_RETURN(e->subquery, ParseQueryExpr());
      TAURUS_RETURN_IF_ERROR(ExpectSymbol(")"));
      return e;
    }
    if (word == "null") {
      Advance();
      return MakeLiteral(Value::Null());
    }
    if (word == "true") {
      Advance();
      return MakeLiteral(Value::Bool(true));
    }
    if (word == "false") {
      Advance();
      return MakeLiteral(Value::Bool(false));
    }
    if (word == "date" && Peek(1).kind == TokenKind::kString) {
      Advance();
      const Token& lit = Advance();
      TAURUS_ASSIGN_OR_RETURN(int64_t days, ParseDate(lit.text));
      return MakeLiteral(Value::Date(days));
    }
    if (word == "timestamp" && Peek(1).kind == TokenKind::kString) {
      Advance();
      const Token& lit = Advance();
      TAURUS_ASSIGN_OR_RETURN(int64_t secs, ParseDatetime(lit.text));
      return MakeLiteral(Value::Datetime(secs));
    }
    Advance();
    if (PeekIsSymbol("(")) {
      Advance();
      return ParseFunctionCall(word);
    }
    if (PeekIsSymbol(".") && Peek(1).kind == TokenKind::kIdent) {
      Advance();  // '.'
      std::string col = AsciiLower(Advance().text);
      return MakeColumnRef(word, col);
    }
    return MakeColumnRef("", word);
  }
  return Status::SyntaxError("unexpected token '" + tok.text +
                             "' in expression");
}

}  // namespace

Result<std::unique_ptr<Statement>> ParseStatement(std::string_view sql) {
  TAURUS_ASSIGN_OR_RETURN(auto tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatementTop();
}

Result<std::unique_ptr<QueryBlock>> ParseSelect(std::string_view sql) {
  TAURUS_ASSIGN_OR_RETURN(auto stmt, ParseStatement(sql));
  if (stmt->kind != Statement::Kind::kSelect &&
      stmt->kind != Statement::Kind::kExplain &&
      stmt->kind != Statement::Kind::kExplainAnalyze) {
    return Status::InvalidArgument("not a SELECT statement");
  }
  return std::move(stmt->select);
}

}  // namespace taurus
