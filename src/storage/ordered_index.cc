#include "storage/ordered_index.h"

#include <algorithm>

namespace taurus {

int OrderedIndex::ComparePrefix(const Row& key, const Row& prefix) {
  size_t n = std::min(key.size(), prefix.size());
  for (size_t i = 0; i < n; ++i) {
    int c = Value::Compare(key[i], prefix[i]);
    if (c != 0) return c;
  }
  return 0;  // equal on the shared prefix
}

void OrderedIndex::Build(const std::vector<Row>& rows) {
  entries_.clear();
  entries_.reserve(rows.size());
  for (size_t r = 0; r < rows.size(); ++r) {
    Entry e;
    e.key.reserve(def_->column_idx.size());
    for (int c : def_->column_idx) {
      e.key.push_back(rows[r][static_cast<size_t>(c)]);
    }
    e.row_id = static_cast<uint32_t>(r);
    entries_.push_back(std::move(e));
  }
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) {
              size_t n = std::min(a.key.size(), b.key.size());
              for (size_t i = 0; i < n; ++i) {
                int c = Value::Compare(a.key[i], b.key[i]);
                if (c != 0) return c < 0;
              }
              return a.row_id < b.row_id;
            });
}

std::pair<size_t, size_t> OrderedIndex::EqualRange(const Row& prefix) const {
  auto lo = std::lower_bound(
      entries_.begin(), entries_.end(), prefix,
      [](const Entry& e, const Row& p) { return ComparePrefix(e.key, p) < 0; });
  auto hi = std::upper_bound(
      entries_.begin(), entries_.end(), prefix,
      [](const Row& p, const Entry& e) { return ComparePrefix(e.key, p) > 0; });
  return {static_cast<size_t>(lo - entries_.begin()),
          static_cast<size_t>(hi - entries_.begin())};
}

std::pair<size_t, size_t> OrderedIndex::Range(const Value* lo,
                                              bool lo_inclusive,
                                              const Value* hi,
                                              bool hi_inclusive) const {
  size_t begin = 0;
  size_t end = entries_.size();
  if (lo != nullptr) {
    begin = static_cast<size_t>(
        std::partition_point(entries_.begin(), entries_.end(),
                             [&](const Entry& e) {
                               int c = Value::Compare(e.key[0], *lo);
                               return lo_inclusive ? c < 0 : c <= 0;
                             }) -
        entries_.begin());
  }
  if (hi != nullptr) {
    end = static_cast<size_t>(
        std::partition_point(entries_.begin(), entries_.end(),
                             [&](const Entry& e) {
                               int c = Value::Compare(e.key[0], *hi);
                               return hi_inclusive ? c <= 0 : c < 0;
                             }) -
        entries_.begin());
  }
  if (end < begin) end = begin;
  return {begin, end};
}

}  // namespace taurus
