#include "storage/storage.h"

#include <unordered_set>

namespace taurus {

TableData* Storage::CreateTable(const TableDef* def) {
  auto data = std::make_unique<TableData>(def);
  TableData* ptr = data.get();
  tables_[def->id] = std::move(data);
  return ptr;
}

TableData* Storage::Get(int table_id) {
  auto it = tables_.find(table_id);
  return it == tables_.end() ? nullptr : it->second.get();
}

const TableData* Storage::Get(int table_id) const {
  auto it = tables_.find(table_id);
  return it == tables_.end() ? nullptr : it->second.get();
}

TableStats ComputeTableStats(const TableData& data, int max_buckets) {
  TableStats stats;
  stats.row_count = static_cast<int64_t>(data.NumRows());
  const size_t num_cols = data.def().columns.size();
  stats.columns.resize(num_cols);

  for (size_t c = 0; c < num_cols; ++c) {
    ColumnStats& cs = stats.columns[c];
    std::vector<Value> values;
    values.reserve(data.NumRows());
    std::unordered_set<uint64_t> distinct;
    for (size_t r = 0; r < data.NumRows(); ++r) {
      const Value& v = data.row(r)[c];
      values.push_back(v);
      if (v.is_null()) {
        ++cs.null_count;
        continue;
      }
      distinct.insert(v.Hash());
      if (cs.min_value.is_null() || Value::Compare(v, cs.min_value) < 0) {
        cs.min_value = v;
      }
      if (cs.max_value.is_null() || Value::Compare(v, cs.max_value) > 0) {
        cs.max_value = v;
      }
    }
    cs.distinct_count = static_cast<int64_t>(distinct.size());
    cs.histogram = Histogram::Build(std::move(values), max_buckets);
  }
  return stats;
}

}  // namespace taurus
