#include "storage/table_data.h"

namespace taurus {

void TableData::BuildIndexes() {
  indexes_.clear();
  for (const IndexDef& idef : def_->indexes) {
    auto index = std::make_unique<OrderedIndex>(&idef);
    index->Build(rows_);
    indexes_.push_back(std::move(index));
  }
}

}  // namespace taurus
