#ifndef TAURUS_STORAGE_TABLE_DATA_H_
#define TAURUS_STORAGE_TABLE_DATA_H_

#include <memory>
#include <vector>

#include "catalog/schema.h"
#include "storage/ordered_index.h"
#include "types/value.h"

namespace taurus {

/// In-memory row store for one table plus its ordered indexes. This stands
/// in for the Taurus Page Stores: the paper's experiments measure plan
/// quality, and the store preserves the access-path cost structure (full
/// scan vs. index range vs. index lookup) the optimizers reason about.
class TableData {
 public:
  explicit TableData(const TableDef* def) : def_(def) {}
  TableData(const TableData&) = delete;
  TableData& operator=(const TableData&) = delete;

  const TableDef& def() const { return *def_; }
  size_t NumRows() const { return rows_.size(); }
  const Row& row(size_t i) const { return rows_[i]; }
  const std::vector<Row>& rows() const { return rows_; }

  void Append(Row row) { rows_.push_back(std::move(row)); }
  void Reserve(size_t n) { rows_.reserve(n); }

  /// (Re)builds all indexes declared in the table definition. Call after
  /// bulk load and after any schema change that adds an index.
  void BuildIndexes();

  int NumIndexes() const { return static_cast<int>(indexes_.size()); }
  const OrderedIndex& index(int i) const { return *indexes_[static_cast<size_t>(i)]; }

 private:
  const TableDef* def_;
  std::vector<Row> rows_;
  std::vector<std::unique_ptr<OrderedIndex>> indexes_;
};

}  // namespace taurus

#endif  // TAURUS_STORAGE_TABLE_DATA_H_
