#ifndef TAURUS_STORAGE_STORAGE_H_
#define TAURUS_STORAGE_STORAGE_H_

#include <map>
#include <memory>

#include "catalog/catalog.h"
#include "common/result.h"
#include "storage/table_data.h"

namespace taurus {

/// Owns the TableData instances for every table in a catalog.
class Storage {
 public:
  Storage() = default;
  Storage(const Storage&) = delete;
  Storage& operator=(const Storage&) = delete;

  /// Creates (empty) storage for a newly created table.
  TableData* CreateTable(const TableDef* def);

  /// Storage for a table id, or nullptr.
  TableData* Get(int table_id);
  const TableData* Get(int table_id) const;

 private:
  std::map<int, std::unique_ptr<TableData>> tables_;
};

/// Computes full TableStats (row count, per-column NDV/nulls/min/max and
/// histograms) for a table — the engine's ANALYZE. `max_buckets` bounds the
/// histogram resolution (MySQL's default is 100).
TableStats ComputeTableStats(const TableData& data, int max_buckets = 64);

}  // namespace taurus

#endif  // TAURUS_STORAGE_STORAGE_H_
