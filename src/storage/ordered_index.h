#ifndef TAURUS_STORAGE_ORDERED_INDEX_H_
#define TAURUS_STORAGE_ORDERED_INDEX_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "catalog/schema.h"
#include "types/value.h"

namespace taurus {

/// An ordered (B-tree-like) index: a sorted array of (key, row id) entries
/// supporting point lookups, key-prefix lookups and range scans. Built once
/// after bulk load, which matches the read-only benchmark workloads. The
/// sorted-array representation has the same asymptotics as a B-tree for
/// lookups (O(log n) + sequential leaf scan) and keeps the cost model's
/// random-vs-sequential distinction meaningful.
class OrderedIndex {
 public:
  /// One index entry: the key column values and the base-table row id.
  struct Entry {
    Row key;
    uint32_t row_id;
  };

  OrderedIndex(const IndexDef* def) : def_(def) {}  // NOLINT: internal type

  const IndexDef& def() const { return *def_; }
  size_t NumEntries() const { return entries_.size(); }
  const Entry& entry(size_t i) const { return entries_[i]; }

  /// Bulk-builds the index from `rows`.
  void Build(const std::vector<Row>& rows);

  /// Returns the [begin, end) entry range whose first key columns equal
  /// `prefix` (prefix.size() <= number of key columns). This is the "ref"
  /// access path MySQL uses for index lookups under nested-loop joins.
  std::pair<size_t, size_t> EqualRange(const Row& prefix) const;

  /// Returns the [begin, end) range of entries whose first key column lies
  /// in [lo, hi] with the given inclusivities. Null bounds mean unbounded.
  std::pair<size_t, size_t> Range(const Value* lo, bool lo_inclusive,
                                  const Value* hi, bool hi_inclusive) const;

 private:
  /// Lexicographic compare of the first `prefix_len` key columns.
  static int ComparePrefix(const Row& key, const Row& prefix);

  const IndexDef* def_;
  std::vector<Entry> entries_;
};

}  // namespace taurus

#endif  // TAURUS_STORAGE_ORDERED_INDEX_H_
