#include "server/admission.h"

#include <algorithm>
#include <chrono>
#include <string>

#include "common/thread_pool.h"

namespace taurus {

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

AdmissionController::AdmissionController(const ServerConfig& config,
                                         MetricsRegistry* metrics)
    : config_(config),
      admitted_(metrics->GetCounter("taurus.server.admitted")),
      queued_total_(metrics->GetCounter("taurus.server.queued")),
      shed_(metrics->GetCounter("taurus.server.shed")),
      rejected_queue_full_(
          metrics->GetCounter("taurus.server.rejected_queue_full")),
      rejected_deadline_(
          metrics->GetCounter("taurus.server.rejected_deadline")),
      running_gauge_(metrics->GetGauge("taurus.server.running")),
      queue_gauge_(metrics->GetGauge("taurus.server.queue_len")) {}

int AdmissionController::MaxConcurrent() const {
  if (config_.max_concurrent_queries > 0) {
    return config_.max_concurrent_queries;
  }
  return 2 * ThreadPool::HardwareWorkers();
}

int AdmissionController::TotalWorkerTokens() const {
  if (config_.worker_tokens > 0) return config_.worker_tokens;
  return ThreadPool::HardwareWorkers();
}

Result<AdmissionTicket> AdmissionController::Admit(
    const AdmissionRequest& request) {
  auto start = std::chrono::steady_clock::now();
  const int max_concurrent = MaxConcurrent();
  const double deadline_ms = request.deadline_ms > 0
                                 ? request.deadline_ms
                                 : config_.session_deadline_ms;

  MutexLock lock(&mu_);
  if (tokens_free_ < 0) tokens_free_ = TotalWorkerTokens();

  AdmissionTicket ticket;
  if (running_ < max_concurrent && queue_.empty()) {
    // Fast path: free slot, nobody ahead of us.
    ++running_;
  } else {
    if (queue_.size() >= config_.admission_queue_depth) {
      rejected_queue_full_->Increment();
      return Status::ResourceExhausted(
                 "admission queue full (" + std::to_string(queue_.size()) +
                 " waiting, depth " +
                 std::to_string(config_.admission_queue_depth) + ")")
          .SetOrigin("server.admission", "queue_full");
    }
    Waiter self;
    queue_.push_back(&self);
    queued_total_->Increment();
    queue_gauge_->Set(static_cast<double>(queue_.size()));
    ticket.queued = true;
    // Explicit predicate loops (not lambda predicates) so the guarded
    // reads of self.granted stay visible to the thread-safety analysis.
    if (deadline_ms > 0) {
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double, std::milli>(deadline_ms));
      while (!self.granted) {
        if (cv_.WaitUntil(mu_, deadline) == std::cv_status::timeout) break;
      }
    } else {
      while (!self.granted) cv_.Wait(mu_);
    }
    if (!self.granted) {
      // Timed out still in the queue (a grant would have flipped the flag
      // under this same lock before the predicate re-check).
      queue_.erase(std::find(queue_.begin(), queue_.end(), &self));
      queue_gauge_->Set(static_cast<double>(queue_.size()));
      rejected_deadline_->Increment();
      return Status::ResourceExhausted(
                 "admission deadline exceeded after " +
                 std::to_string(MsSince(start)) + " ms (deadline " +
                 std::to_string(deadline_ms) + " ms)")
          .SetOrigin("server.admission", "queue_deadline");
    }
    // The granting Release transferred its run slot to us (running_ was
    // not decremented), so we do not increment here.
    queue_gauge_->Set(static_cast<double>(queue_.size()));
  }
  running_gauge_->Set(static_cast<double>(running_));
  ticket.valid = true;
  ticket.wait_ms = MsSince(start);

  // Memory: nominal reservation against a soft budget. Exceeding it sheds
  // (below) rather than blocks — the run-slot cap is the hard limiter.
  int64_t memory = request.memory_estimate_bytes > 0
                       ? request.memory_estimate_bytes
                       : config_.query_memory_estimate_bytes;
  bool over_memory = config_.memory_budget_bytes > 0 &&
                     memory_in_use_ + memory > config_.memory_budget_bytes;
  memory_in_use_ += memory;
  ticket.memory_reserved_bytes = memory;

  // Worker tokens: a lease below 2 buys no parallelism, so leave the
  // tokens for a query that can use them.
  if (request.requested_workers >= 2 && tokens_free_ >= 2) {
    ticket.worker_tokens = std::min(request.requested_workers, tokens_free_);
    tokens_free_ -= ticket.worker_tokens;
  }

  if (request.sheddable && config_.shed_to_mysql &&
      (ticket.queued || over_memory)) {
    ticket.shed = true;
    ticket.shed_cause = over_memory ? "memory_pressure" : "queue_wait";
    shed_->Increment();
  }
  admitted_->Increment();
  return ticket;
}

void AdmissionController::Release(const AdmissionTicket& ticket) {
  if (!ticket.valid) return;
  MutexLock lock(&mu_);
  tokens_free_ += ticket.worker_tokens;
  memory_in_use_ -= ticket.memory_reserved_bytes;
  if (!queue_.empty()) {
    // Hand the slot straight to the FIFO head: running_ stays constant, so
    // a concurrent direct arrival cannot steal the slot in between and
    // overshoot max_concurrent once the waiter wakes.
    Waiter* next = queue_.front();
    queue_.pop_front();
    next->granted = true;
    cv_.NotifyAll();
  } else {
    --running_;
  }
  running_gauge_->Set(static_cast<double>(running_));
  queue_gauge_->Set(static_cast<double>(queue_.size()));
}

int AdmissionController::running() const {
  MutexLock lock(&mu_);
  return running_;
}

size_t AdmissionController::queued() const {
  MutexLock lock(&mu_);
  return queue_.size();
}

int AdmissionController::worker_tokens_free() const {
  MutexLock lock(&mu_);
  return tokens_free_ < 0 ? TotalWorkerTokens() : tokens_free_;
}

int64_t AdmissionController::memory_in_use_bytes() const {
  MutexLock lock(&mu_);
  return memory_in_use_;
}

}  // namespace taurus
