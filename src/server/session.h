#ifndef TAURUS_SERVER_SESSION_H_
#define TAURUS_SERVER_SESSION_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/result.h"
#include "engine/database.h"
#include "server/admission.h"

namespace taurus {

class Server;

/// Per-session knobs. Mutable between queries; like every other config
/// struct, not while a query of this session is in flight.
struct SessionOptions {
  /// Optimizer path for Query(sql) (the one-argument form).
  OptimizerPath default_path = OptimizerPath::kAuto;
  /// Per-session tracing: traces this session's queries even when the
  /// engine-wide knob is off, retained in Session::last_trace().
  bool trace = false;
  /// Desired degree of parallelism (worker-token request); 0 = the engine's
  /// executor knob (or hardware workers when that is 0 too).
  int parallel_workers = 0;
  /// Admission-queue deadline override; 0 = ServerConfig default.
  double deadline_ms = 0.0;
  /// Per-query memory estimate override; 0 = ServerConfig default.
  int64_t memory_estimate_bytes = 0;
};

/// One client session of a Server (DESIGN.md section 12): holds the
/// per-session knobs, the session's trace slot, and outcome counters.
/// Every Query goes through the server's admission controller — it may
/// run immediately, wait in the FIFO queue, be shed onto the cheap MySQL
/// path, or be rejected with kResourceExhausted ("server.admission").
///
/// A Session is single-threaded: one thread drives it at a time (exactly
/// a MySQL connection). Different sessions are fully concurrent.
class Session {
 public:
  ~Session();
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Per-session knobs (trace, default path, parallelism, deadline).
  SessionOptions& options() { return options_; }
  const SessionOptions& options() const { return options_; }

  /// Admission-controlled query on the session's default path.
  Result<QueryResult> Query(const std::string& sql);
  /// Admission-controlled query on an explicit path. Forced paths
  /// (kMySql/kOrca) are never shed; only kAuto is sheddable.
  Result<QueryResult> Query(const std::string& sql, OptimizerPath path);

  /// The trace of this session's most recent traced query (null when
  /// options().trace is off). Unlike Database::last_trace(), immune to
  /// other sessions' queries.
  const Tracer* last_trace() const { return last_trace_.get(); }

  uint64_t id() const { return id_; }
  /// Queries that ran (including shed ones); excludes rejections.
  int64_t queries() const { return queries_; }
  /// Queries shed onto the MySQL path under overload.
  int64_t shed() const { return shed_; }
  /// Queries rejected by admission (queue_full / queue_deadline).
  int64_t rejected() const { return rejected_; }

 private:
  friend class Server;
  Session(Server* server, uint64_t id);

  Server* server_;
  const uint64_t id_;
  SessionOptions options_;
  std::shared_ptr<Tracer> last_trace_;
  // Single-threaded by contract, so plain counters suffice.
  int64_t queries_ = 0;
  int64_t shed_ = 0;
  int64_t rejected_ = 0;
};

}  // namespace taurus

#endif  // TAURUS_SERVER_SESSION_H_
