#include "server/session.h"

#include <utility>

#include "common/thread_pool.h"
#include "server/server.h"

namespace taurus {

Session::Session(Server* server, uint64_t id) : server_(server), id_(id) {}

Session::~Session() { server_->OnSessionClosed(); }

Result<QueryResult> Session::Query(const std::string& sql) {
  return Query(sql, options_.default_path);
}

Result<QueryResult> Session::Query(const std::string& sql,
                                   OptimizerPath path) {
  Database& db = server_->db();

  AdmissionRequest request;
  request.deadline_ms = options_.deadline_ms;
  request.memory_estimate_bytes = options_.memory_estimate_bytes;
  request.requested_workers = options_.parallel_workers > 0
                                  ? options_.parallel_workers
                                  : db.exec_config().parallel_workers;
  if (request.requested_workers <= 0) {
    request.requested_workers = ThreadPool::HardwareWorkers();
  }
  // A forced path is an explicit instruction; only auto-routed queries
  // may be shed onto the MySQL path.
  request.sheddable = path == OptimizerPath::kAuto;

  auto admitted = server_->admission().Admit(request);
  if (!admitted.ok()) {
    ++rejected_;
    // Rejected queries never reach the engine pipeline, so record the
    // refusal here — a post-mortem reading SHOW FLIGHT RECORDER sees the
    // rejection next to the queries that caused the overload.
    if (db.flight_recorder_config().enable) {
      FlightRecord rec;
      rec.session_id = id_;
      rec.status = admitted.status().ToString();
      rec.error = true;
      rec.admission = "rejected";
      db.flight_recorder().Record(std::move(rec));
    }
    return admitted.status();
  }
  const AdmissionTicket ticket = admitted.value();
  struct ReleaseGuard {
    AdmissionController* controller;
    const AdmissionTicket* ticket;
    ~ReleaseGuard() { controller->Release(*ticket); }
  } guard{&server_->admission(), &ticket};

  QueryOptions query_options;
  // A lease of 0 tokens means "run serial" — the cap is 1, not uncapped.
  query_options.worker_cap = ticket.worker_tokens > 0 ? ticket.worker_tokens : 1;
  query_options.trace = options_.trace;
  query_options.trace_slot = options_.trace ? &last_trace_ : nullptr;
  // Attribution for the digest store and flight recorder; the engine folds
  // the admission outcome into QueryResult (shed/fell_back/fallback_reason)
  // so the introspection surfaces and the client see one story.
  query_options.session_id = id_;
  query_options.shed = ticket.shed;
  query_options.shed_cause = ticket.shed_cause;
  query_options.admission_queued = ticket.queued;
  query_options.admission_wait_ms = ticket.wait_ms;

  const OptimizerPath effective =
      ticket.shed ? OptimizerPath::kMySql : path;
  auto result = db.Query(sql, effective, query_options);
  ++queries_;
  if (ticket.shed) ++shed_;
  return result;
}

}  // namespace taurus
