#ifndef TAURUS_SERVER_ADMISSION_H_
#define TAURUS_SERVER_ADMISSION_H_

#include <cstdint>
#include <deque>

#include "common/mutex.h"
#include "common/result.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "server/server_config.h"

namespace taurus {

/// What a query asks the admission controller for.
struct AdmissionRequest {
  /// Max wall time to wait for a run slot; 0 = the config default
  /// (ServerConfig::session_deadline_ms).
  double deadline_ms = 0.0;
  /// Desired degree of parallelism (drives the worker-token lease).
  int requested_workers = 1;
  /// Nominal memory for this query; 0 = the config default.
  int64_t memory_estimate_bytes = 0;
  /// True when the request may be shed to the MySQL path under overload
  /// (kAuto queries only — a forced path is an explicit instruction).
  bool sheddable = true;
};

/// A granted admission: the run slot plus the resources leased with it.
/// Must be handed back via AdmissionController::Release exactly once.
struct AdmissionTicket {
  bool valid = false;
  /// True when the query waited in the FIFO queue before its grant.
  bool queued = false;
  double wait_ms = 0.0;
  /// Overload shed: run this query through the cheap MySQL path.
  bool shed = false;
  const char* shed_cause = "";  ///< "queue_wait" or "memory_pressure"
  /// Pool-worker tokens leased to this query (0 = run serial). Becomes
  /// QueryOptions::worker_cap.
  int worker_tokens = 0;
  int64_t memory_reserved_bytes = 0;
};

/// Admission controller in front of compile/execute (DESIGN.md section 12):
/// a fixed number of run slots, a bounded FIFO queue with per-query
/// deadlines, global worker-token and (soft) memory budgets, and the
/// shed-vs-reject policy. State machine per query:
///
///   arrive -> slot free and queue empty -> RUN
///          -> queue full                -> REJECT (queue_full)
///          -> wait in FIFO -> granted within deadline -> RUN (shed if
///                             sheddable and shedding is on)
///                          -> deadline expires        -> REJECT
///                             (queue_deadline)
///
/// Rejections are kResourceExhausted with origin "server.admission" and
/// the structured reason above, so callers (and tests) can tell overload
/// rejection from any other resource error. Thread-safe; one instance
/// serves every session of a Server.
class AdmissionController {
 public:
  /// Holds references: `config` must outlive the controller (knob writes
  /// quiesced, as everywhere), `metrics` receives taurus.server.* counters.
  AdmissionController(const ServerConfig& config, MetricsRegistry* metrics);
  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Blocks until a run slot is granted or the deadline/queue bound
  /// rejects the request. On success the ticket carries this query's
  /// leases; pass it to Release when the query finishes (success or not).
  Result<AdmissionTicket> Admit(const AdmissionRequest& request)
      TAURUS_EXCLUDES(mu_);

  /// Returns the ticket's slot, worker tokens and memory reservation, and
  /// grants the next FIFO waiter if any.
  void Release(const AdmissionTicket& ticket) TAURUS_EXCLUDES(mu_);

  // Introspection (tests/bench).
  int running() const TAURUS_EXCLUDES(mu_);
  size_t queued() const TAURUS_EXCLUDES(mu_);
  int worker_tokens_free() const TAURUS_EXCLUDES(mu_);
  int64_t memory_in_use_bytes() const TAURUS_EXCLUDES(mu_);

 private:
  struct Waiter {
    bool granted = false;
  };

  int MaxConcurrent() const;
  int TotalWorkerTokens() const;

  const ServerConfig& config_;
  Counter* admitted_;
  Counter* queued_total_;
  Counter* shed_;
  Counter* rejected_queue_full_;
  Counter* rejected_deadline_;
  Gauge* running_gauge_;
  Gauge* queue_gauge_;

  /// Rank 10: the first lock on every query path; never acquired while
  /// any engine lock is held (DESIGN.md section 12 rank table).
  mutable Mutex mu_{LockRank::kServerAdmission, "server.admission"};
  CondVar cv_;
  std::deque<Waiter*> queue_ TAURUS_GUARDED_BY(mu_);  ///< blocked arrivals
  int running_ TAURUS_GUARDED_BY(mu_) = 0;
  /// Resolved from config on first Admit (-1 = unresolved).
  int tokens_free_ TAURUS_GUARDED_BY(mu_) = -1;
  int64_t memory_in_use_ TAURUS_GUARDED_BY(mu_) = 0;
};

}  // namespace taurus

#endif  // TAURUS_SERVER_ADMISSION_H_
