#ifndef TAURUS_SERVER_SERVER_H_
#define TAURUS_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/result.h"
#include "engine/database.h"
#include "server/admission.h"
#include "server/server_config.h"
#include "server/session.h"

namespace taurus {

/// The multi-session server core (DESIGN.md section 12): wraps one
/// Database with a session registry and an admission controller so N
/// client threads can drive the engine concurrently without collapsing
/// it under overload. The Server owns no threads — each session is
/// driven by its caller's thread, exactly like a MySQL connection.
///
/// Lifecycle: configure server_config() first, then CreateSession() per
/// client; sessions must not outlive the Server or the Database.
class Server {
 public:
  /// Non-owning: `db` must outlive the server and its sessions.
  explicit Server(Database* db)
      : db_(db), admission_(config_, &db->metrics()) {}
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Server knobs. Set before sessions start issuing queries (quiesced
  /// writes, like every other config struct).
  ServerConfig& server_config() { return config_; }
  const ServerConfig& server_config() const { return config_; }

  /// Opens a session, or rejects with kResourceExhausted
  /// ("server.admission/max_sessions") when max_sessions are open.
  /// Thread-safe. Closing (destroying) a session frees its slot.
  Result<std::unique_ptr<Session>> CreateSession();

  Database& db() { return *db_; }
  AdmissionController& admission() { return admission_; }
  int open_sessions() const {
    return open_sessions_.load(std::memory_order_relaxed);
  }

 private:
  friend class Session;
  void OnSessionClosed() {
    open_sessions_.fetch_sub(1, std::memory_order_relaxed);
  }

  Database* db_;
  ServerConfig config_;
  AdmissionController admission_;
  std::atomic<int> open_sessions_{0};
  std::atomic<uint64_t> next_session_id_{1};
};

}  // namespace taurus

#endif  // TAURUS_SERVER_SERVER_H_
