#include "server/server.h"

#include <string>

namespace taurus {

Result<std::unique_ptr<Session>> Server::CreateSession() {
  const int open = open_sessions_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (config_.max_sessions > 0 && open > config_.max_sessions) {
    open_sessions_.fetch_sub(1, std::memory_order_relaxed);
    return Status::ResourceExhausted(
               "session limit reached (" +
               std::to_string(config_.max_sessions) + " open)")
        .SetOrigin("server.admission", "max_sessions");
  }
  const uint64_t id =
      next_session_id_.fetch_add(1, std::memory_order_relaxed);
  return std::unique_ptr<Session>(new Session(this, id));
}

}  // namespace taurus
