#ifndef TAURUS_SERVER_SERVER_CONFIG_H_
#define TAURUS_SERVER_SERVER_CONFIG_H_

#include <cstddef>
#include <cstdint>

namespace taurus {

/// Knobs for the multi-session server core (DESIGN.md section 12). Like
/// every other config struct, writes must be quiesced: set the knobs
/// before sessions start issuing queries.
struct ServerConfig {
  /// Sessions that may be open at once; CreateSession beyond this returns
  /// kResourceExhausted ("server.admission/max_sessions"). 0 = unlimited.
  int max_sessions = 64;

  /// Queries allowed to run concurrently (admission run slots);
  /// 0 = 2x hardware workers.
  int max_concurrent_queries = 0;

  /// Queries that may wait for a run slot; an arrival beyond this is
  /// rejected immediately ("server.admission/queue_full").
  size_t admission_queue_depth = 32;

  /// Max wall time a query waits in the admission queue before rejection
  /// ("server.admission/queue_deadline"). Per-session override:
  /// SessionOptions::deadline_ms. 0 = wait forever.
  double session_deadline_ms = 1000.0;

  /// Overload shedding: a kAuto query that had to queue for its run slot
  /// (or arrived under memory pressure) runs through the cheap MySQL path
  /// instead of the Orca detour — graceful degradation instead of
  /// collapse. Forced-path queries are never shed.
  bool shed_to_mysql = true;

  /// Global pool-worker tokens leased to queries for parallel execution;
  /// a query granted fewer than 2 runs serial. 0 = hardware workers.
  int worker_tokens = 0;

  /// Global memory budget. Reservations are nominal (estimate-based) and
  /// the budget is soft: exceeding it is a shed signal, not a failure —
  /// the run-slot cap is the hard concurrency limiter. 0 = unlimited.
  int64_t memory_budget_bytes = 0;

  /// Nominal per-query reservation charged against the memory budget when
  /// the session does not supply its own estimate.
  int64_t query_memory_estimate_bytes = 8LL << 20;
};

}  // namespace taurus

#endif  // TAURUS_SERVER_SERVER_CONFIG_H_
