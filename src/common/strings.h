#ifndef TAURUS_COMMON_STRINGS_H_
#define TAURUS_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace taurus {

/// Lower-cases ASCII characters; used for case-insensitive SQL identifiers
/// and keywords.
std::string AsciiLower(std::string_view s);

/// Case-insensitive ASCII equality.
bool AsciiEqualsIgnoreCase(std::string_view a, std::string_view b);

/// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> SplitString(std::string_view s, char sep);

/// SQL LIKE predicate with '%' and '_' wildcards (case-sensitive, as in
/// binary collation). No escape character support.
bool SqlLikeMatch(std::string_view value, std::string_view pattern);

/// Escapes `s` for embedding inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string JsonEscape(std::string_view s);

/// 64-bit FNV-1a hash, used by hash joins and hash aggregation.
uint64_t Fnv1aHash(const void* data, size_t len, uint64_t seed = 1469598103934665603ULL);

/// Combines two hash values (boost::hash_combine style).
inline uint64_t HashCombine(uint64_t h, uint64_t v) {
  return h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
}

}  // namespace taurus

#endif  // TAURUS_COMMON_STRINGS_H_
