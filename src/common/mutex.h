#ifndef TAURUS_COMMON_MUTEX_H_
#define TAURUS_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/lock_rank.h"
#include "common/thread_annotations.h"

namespace taurus {

// Annotated lock wrappers: the only mutex types used in src/. Each carries
// (a) Clang Thread Safety Analysis capability attributes, so `-Wthread-safety
// -Werror=thread-safety` rejects mis-locked accesses at compile time, and
// (b) a LockRank from the DESIGN.md section 12 rank table, so the runtime
// LockRankRegistry catches ordering bugs the static analysis cannot see
// (striped shard arrays, cross-class nesting). The wrappers satisfy
// BasicLockable, so std::unique_lock / std::condition_variable_any compose
// with them where the RAII guards below do not fit.

class TAURUS_CAPABILITY("mutex") Mutex {
 public:
  Mutex(LockRank rank, const char* name) : rank_(rank), name_(name) {}
  // Two-phase form for locks living inside default-constructed arrays
  // (the plan cache's shard stripe): construct unranked, then SetRank
  // before the first concurrent use.
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void SetRank(LockRank rank, const char* name, int stripe = -1) {
    rank_ = rank;
    name_ = name;
    stripe_ = stripe;
  }

  void lock() TAURUS_ACQUIRE() {
    LockRankRegistry::CheckAcquire(rank_, name_, stripe_, this);
    mu_.lock();
    LockRankRegistry::NoteAcquired(rank_, name_, stripe_, this);
  }
  void unlock() TAURUS_RELEASE() {
    LockRankRegistry::NoteReleased(this);
    mu_.unlock();
  }
  bool try_lock() TAURUS_TRY_ACQUIRE(true) {
    LockRankRegistry::CheckAcquire(rank_, name_, stripe_, this);
    if (!mu_.try_lock()) return false;
    LockRankRegistry::NoteAcquired(rank_, name_, stripe_, this);
    return true;
  }

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  std::mutex mu_;
  LockRank rank_ = LockRank::kUnranked;
  const char* name_ = "<unranked>";
  int stripe_ = -1;
};

class TAURUS_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex(LockRank rank, const char* name) : rank_(rank), name_(name) {}
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void SetRank(LockRank rank, const char* name, int stripe = -1) {
    rank_ = rank;
    name_ = name;
    stripe_ = stripe;
  }

  void lock() TAURUS_ACQUIRE() {
    LockRankRegistry::CheckAcquire(rank_, name_, stripe_, this);
    mu_.lock();
    LockRankRegistry::NoteAcquired(rank_, name_, stripe_, this);
  }
  void unlock() TAURUS_RELEASE() {
    LockRankRegistry::NoteReleased(this);
    mu_.unlock();
  }
  void lock_shared() TAURUS_ACQUIRE_SHARED() {
    // Shared and exclusive acquisitions rank identically: a reader that
    // nests out of order deadlocks against a writer just the same.
    LockRankRegistry::CheckAcquire(rank_, name_, stripe_, this);
    mu_.lock_shared();
    LockRankRegistry::NoteAcquired(rank_, name_, stripe_, this);
  }
  void unlock_shared() TAURUS_RELEASE_SHARED() {
    LockRankRegistry::NoteReleased(this);
    mu_.unlock_shared();
  }

  LockRank rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  std::shared_mutex mu_;
  LockRank rank_ = LockRank::kUnranked;
  const char* name_ = "<unranked>";
  int stripe_ = -1;
};

// RAII guards. TAURUS_SCOPED_CAPABILITY tells the analysis the lock is
// held exactly for the guard's lifetime; the destructor's TAURUS_RELEASE
// covers whichever mode the constructor acquired.

class TAURUS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) TAURUS_ACQUIRE(mu) : mu_(mu) { mu_->lock(); }
  ~MutexLock() TAURUS_RELEASE() { mu_->unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

class TAURUS_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) TAURUS_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_->lock_shared();
  }
  ~ReaderMutexLock() TAURUS_RELEASE() { mu_->unlock_shared(); }
  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

class TAURUS_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) TAURUS_ACQUIRE(mu) : mu_(mu) {
    mu_->lock();
  }
  ~WriterMutexLock() TAURUS_RELEASE() { mu_->unlock(); }
  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

// Condition variable over the annotated Mutex. condition_variable_any's
// wait path unlocks and relocks through Mutex::lock/unlock, so the
// LockRankRegistry's held-lock stack stays exact across a wait. There are
// deliberately no predicate overloads: a lambda predicate's member reads
// are invisible to the analysis, so all waits are written as explicit
//   while (!pred) cv.Wait(mu);
// loops, which TSA checks like any other guarded access.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) TAURUS_REQUIRES(mu) { cv_.wait(mu); }

  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(Mutex& mu,
                           const std::chrono::time_point<Clock, Duration>&
                               deadline) TAURUS_REQUIRES(mu) {
    return cv_.wait_until(mu, deadline);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace taurus

#endif  // TAURUS_COMMON_MUTEX_H_
