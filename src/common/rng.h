#ifndef TAURUS_COMMON_RNG_H_
#define TAURUS_COMMON_RNG_H_

#include <cstdint>
#include <string>

namespace taurus {

/// Deterministic xorshift64* pseudo-random generator. The workload
/// generators (TPC-H/TPC-DS style) must be reproducible across runs and
/// platforms, so std::mt19937 distributions are avoided on purpose.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed ? seed : 0x9E3779B97F4A7C15ULL) {}

  uint64_t Next() {
    uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545F4914F6CDD1DULL;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi) {
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(Next() % span);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Random lowercase ASCII string of length in [min_len, max_len].
  std::string NextString(int min_len, int max_len) {
    int len = static_cast<int>(Uniform(min_len, max_len));
    std::string s(static_cast<size_t>(len), 'a');
    for (char& c : s) c = static_cast<char>('a' + Uniform(0, 25));
    return s;
  }

 private:
  uint64_t state_;
};

}  // namespace taurus

#endif  // TAURUS_COMMON_RNG_H_
