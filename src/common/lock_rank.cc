#include "common/lock_rank.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace taurus {

namespace {

struct HeldLock {
  LockRank rank = LockRank::kUnranked;
  const char* name = "";
  int stripe = -1;
  const void* id = nullptr;
};

// Per-thread stack of held instrumented locks, in acquisition order. The
// stacks are small (the deepest legitimate chain is pool_gate ->
// thread_pool plus the striped shard sweep), so linear scans are fine.
std::vector<HeldLock>& HeldStack() {
  thread_local std::vector<HeldLock> stack;
  return stack;
}

std::atomic<bool> g_enabled{kLockRankChecksDefault};
std::atomic<std::int64_t> g_checks{0};
std::atomic<std::int64_t> g_violations{0};
std::atomic<LockRankRegistry::Handler> g_handler{nullptr};

std::string Describe(const char* name, int stripe) {
  std::string out = name;
  if (stripe >= 0) {
    out += "[";
    out += std::to_string(stripe);
    out += "]";
  }
  return out;
}

void Report(const char* rule, const char* rule_text, LockRank acquiring_rank,
            const char* acquiring_name, int acquiring_stripe,
            const HeldLock& held) {
  LockRankViolation v;
  v.rule = rule;
  v.acquiring = Describe(acquiring_name, acquiring_stripe);
  v.holding = Describe(held.name, held.stripe);
  v.acquiring_rank = RankValue(acquiring_rank);
  v.holding_rank = RankValue(held.rank);
  v.message = "lock-rank violation [";
  v.message += rule;
  v.message += "]: acquiring \"" + v.acquiring + "\" (rank " +
               std::to_string(v.acquiring_rank) + ") while holding \"" +
               v.holding + "\" (rank " + std::to_string(v.holding_rank) +
               ") — DESIGN.md §12 ";
  v.message += rule;
  v.message += ": ";
  v.message += rule_text;

  g_violations.fetch_add(1, std::memory_order_relaxed);
  if (LockRankRegistry::Handler handler =
          g_handler.load(std::memory_order_acquire)) {
    handler(v);
    return;
  }
  std::fprintf(stderr, "%s\n", v.message.c_str());
  std::abort();
}

}  // namespace

void LockRankRegistry::SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_release);
}

bool LockRankRegistry::enabled() {
  return g_enabled.load(std::memory_order_acquire);
}

void LockRankRegistry::CheckAcquire(LockRank rank, const char* name,
                                    int stripe, const void* id) {
  if (!enabled()) return;
  g_checks.fetch_add(1, std::memory_order_relaxed);
  std::vector<HeldLock>& stack = HeldStack();
  if (stack.empty()) return;

  // Recursive acquisition of the same lock object is always LR2, whatever
  // its rank: none of the wrapped std:: mutexes are recursive.
  for (const HeldLock& held : stack) {
    if (held.id == id) {
      Report("LR2", "recursive acquisition of a non-recursive lock", rank,
             name, stripe, held);
      return;
    }
  }
  if (rank == LockRank::kUnranked) return;

  // Compare against the highest-ranked held lock (ties broken by the
  // highest stripe), which is the binding constraint for every rule.
  const HeldLock* top = nullptr;
  for (const HeldLock& held : stack) {
    if (held.rank == LockRank::kUnranked) continue;
    if (top == nullptr || RankValue(held.rank) > RankValue(top->rank) ||
        (held.rank == top->rank && held.stripe > top->stripe)) {
      top = &held;
    }
  }
  if (top == nullptr) return;

  if (RankValue(top->rank) >= kLeafRankFloor) {
    Report("LR3", "no lock may be acquired while holding a leaf-band lock",
           rank, name, stripe, *top);
    return;
  }
  if (RankValue(rank) < RankValue(top->rank)) {
    Report("LR1", "locks must be acquired in ascending rank order", rank,
           name, stripe, *top);
    return;
  }
  if (rank == top->rank) {
    // Same rank is legal only for striped locks taken in ascending stripe
    // order (the plan cache's all-shard sweep).
    const bool striped_ascending =
        stripe >= 0 && top->stripe >= 0 && stripe > top->stripe;
    if (!striped_ascending) {
      Report("LR2",
             "same-rank acquisition outside the striped ascending-index "
             "exception",
             rank, name, stripe, *top);
    }
  }
}

void LockRankRegistry::NoteAcquired(LockRank rank, const char* name,
                                    int stripe, const void* id) {
  if (!enabled()) return;
  HeldStack().push_back(HeldLock{rank, name, stripe, id});
}

void LockRankRegistry::NoteReleased(const void* id) {
  std::vector<HeldLock>& stack = HeldStack();
  // Scan from the top so out-of-order releases (std::unique_lock juggling
  // in the all-shard sweep) unwind correctly. A miss is fine: the lock was
  // acquired while the registry was disabled.
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (it->id == id) {
      stack.erase(std::next(it).base());
      return;
    }
  }
}

LockRankRegistry::Handler LockRankRegistry::SetViolationHandler(
    Handler handler) {
  return g_handler.exchange(handler, std::memory_order_acq_rel);
}

std::int64_t LockRankRegistry::checks() {
  return g_checks.load(std::memory_order_relaxed);
}

std::int64_t LockRankRegistry::violations() {
  return g_violations.load(std::memory_order_relaxed);
}

void LockRankRegistry::ResetCountersForTest() {
  g_checks.store(0, std::memory_order_relaxed);
  g_violations.store(0, std::memory_order_relaxed);
}

int LockRankRegistry::HeldDepthForTest() {
  return static_cast<int>(HeldStack().size());
}

}  // namespace taurus
