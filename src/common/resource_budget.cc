#include "common/resource_budget.h"

#include <chrono>
#include <string>

namespace taurus {

double ResourceGovernor::SteadyNowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

ResourceGovernor::ResourceGovernor(const ResourceBudgetConfig& config)
    : config_(&config) {
  if (config_->optimize_deadline_ms > 0) start_ms_ = NowMs();
}

double ResourceGovernor::NowMs() const {
  return config_->clock_ms ? config_->clock_ms() : SteadyNowMs();
}

Status ResourceGovernor::ChargeMemoGroups(int total_groups) {
  if (config_->max_memo_groups > 0 && total_groups > config_->max_memo_groups) {
    return Status::ResourceExhausted(
               "memo group budget exceeded (" + std::to_string(total_groups) +
               " > " + std::to_string(config_->max_memo_groups) + ")")
        .SetOrigin("orca.governor", "max_memo_groups");
  }
  return CheckDeadline();
}

Status ResourceGovernor::ChargePartitionPair() {
  ++pairs_charged_;
  if (config_->max_partition_pairs > 0 &&
      pairs_charged_ > config_->max_partition_pairs) {
    return Status::ResourceExhausted(
               "partition pair budget exceeded (" +
               std::to_string(pairs_charged_) + " > " +
               std::to_string(config_->max_partition_pairs) + ")")
        .SetOrigin("orca.governor", "max_partition_pairs");
  }
  if ((pairs_charged_ & 63) == 0) return CheckDeadline();
  return Status::OK();
}

Status ResourceGovernor::CheckDeadline() {
  if (config_->optimize_deadline_ms <= 0) return Status::OK();
  double elapsed = NowMs() - start_ms_;
  if (elapsed > config_->optimize_deadline_ms) {
    return Status::ResourceExhausted(
               "optimizer deadline exceeded (" + std::to_string(elapsed) +
               " ms > " + std::to_string(config_->optimize_deadline_ms) +
               " ms)")
        .SetOrigin("orca.governor", "optimize_deadline_ms");
  }
  return Status::OK();
}

}  // namespace taurus
