#include "common/strings.h"

#include <cctype>
#include <cstdio>

namespace taurus {

std::string AsciiLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool AsciiEqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::vector<std::string> SplitString(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

namespace {

// Recursive matcher over (value position, pattern position).
bool LikeMatchImpl(std::string_view v, size_t vi, std::string_view p,
                   size_t pi) {
  while (pi < p.size()) {
    char pc = p[pi];
    if (pc == '%') {
      // Collapse consecutive '%'.
      while (pi < p.size() && p[pi] == '%') ++pi;
      if (pi == p.size()) return true;
      for (size_t k = vi; k <= v.size(); ++k) {
        if (LikeMatchImpl(v, k, p, pi)) return true;
      }
      return false;
    }
    if (vi >= v.size()) return false;
    if (pc != '_' && pc != v[vi]) return false;
    ++vi;
    ++pi;
  }
  return vi == v.size();
}

}  // namespace

bool SqlLikeMatch(std::string_view value, std::string_view pattern) {
  return LikeMatchImpl(value, 0, pattern, 0);
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

uint64_t Fnv1aHash(const void* data, size_t len, uint64_t seed) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace taurus
