#ifndef TAURUS_COMMON_LOCK_RANK_H_
#define TAURUS_COMMON_LOCK_RANK_H_

#include <cstdint>
#include <string>

namespace taurus {

// Runtime lock-order analyzer for the orderings Clang Thread Safety
// Analysis cannot express (DESIGN.md section 14): the plan cache's
// ascending-index striped shard locks and any cross-class nesting. Every
// Mutex/SharedMutex (common/mutex.h) registers a rank from the DESIGN.md
// section 12 rank table; acquisitions push onto a thread-local held-lock
// stack and a rank inversion fails fast with both lock names and the rule
// it violates.
//
// The checks are always on in Debug and sanitizer builds and off in
// release builds, mirroring kVerifyPlansDefault (verify/diagnostics.h);
// LockRankRegistry::SetEnabled overrides the default either way at
// runtime. Counters surface as taurus.verify.lock_rank.* gauges next to
// the plan-verifier counters.

#if !defined(NDEBUG) || defined(TAURUS_VERIFY_PLANS_DEFAULT_ON)
inline constexpr bool kLockRankChecksDefault = true;
#else
inline constexpr bool kLockRankChecksDefault = false;
#endif

// The numbered lock hierarchy of DESIGN.md section 12, one enumerator per
// rank-table row. Lower ranks must be acquired before higher ranks.
// Ranks at or above kLeafRankFloor are leaves: no lock of any rank may be
// acquired while one is held.
enum class LockRank : int {
  // Rank 0 opts a lock out of ordering checks entirely (still tracked for
  // recursive-acquisition detection). No lock in src/ uses it; it exists
  // for scratch locks in tests and examples.
  kUnranked = 0,

  kServerAdmission = 10,   // AdmissionController::mu_      "server.admission"
  kPlanCacheShard = 20,    // PlanCache::Shard::mu (striped) "engine.plan_cache.shard"
  kQuarantine = 30,        // QuarantineTable::mu_           "engine.quarantine"
  kFeedbackStore = 40,     // FeedbackStore::mu_             "feedback.store"
  kMdpRelationCache = 50,  // MetadataProvider::cache_mu_    "mdp.relation_cache"
  kPoolGate = 60,          // Database::pool_mu_             "engine.pool_gate"
  kThreadPool = 70,        // ThreadPool::mu_                "common.thread_pool"

  // Leaf band: only trivial, lock-free work happens under these.
  kDatabaseState = 100,    // Database::state_mu_            "engine.state"
  kMetricsRegistry = 110,  // MetricsRegistry::mu_           "obs.metrics_registry"
  kSketchSet = 120,        // SketchSet::mu_                 "feedback.sketch_set"
  kFaultInjector = 130,    // FaultInjector::Impl::mu        "common.fault_injector"
  kDigestStore = 140,      // DigestStore::mu_               "obs.digest_store"
  kFlightRecorder = 150,   // FlightRecorder::mu_            "obs.flight_recorder"
};

inline constexpr int kLeafRankFloor = 100;

constexpr int RankValue(LockRank rank) { return static_cast<int>(rank); }

// A detected violation of the DESIGN.md section 12 ordering rules.
//   LR1: acquiring a lock whose rank is below a held lock's rank.
//   LR2: recursive acquisition, or acquiring a lock of the same rank as a
//        held lock outside the striped ascending-index exception.
//   LR3: acquiring any lock while holding a leaf-band lock (rank >= 100).
struct LockRankViolation {
  const char* rule = "";       // "LR1" | "LR2" | "LR3"
  std::string acquiring;       // name[stripe] of the lock being acquired
  std::string holding;         // name[stripe] of the held lock that conflicts
  int acquiring_rank = 0;
  int holding_rank = 0;
  std::string message;         // full diagnostic, names + rule + DESIGN.md ref
};

class LockRankRegistry {
 public:
  // Runtime arm/disarm; the initial state is kLockRankChecksDefault.
  // Enabling mid-run only checks acquisitions made after the call.
  static void SetEnabled(bool enabled);
  static bool enabled();

  // Called by the Mutex/SharedMutex wrappers. `id` is the lock's address
  // (identity for recursion/release matching); `stripe` is the shard index
  // for striped ranks, -1 otherwise. CheckAcquire runs before blocking so
  // an inversion is reported even when the acquisition would deadlock.
  static void CheckAcquire(LockRank rank, const char* name, int stripe,
                           const void* id);
  static void NoteAcquired(LockRank rank, const char* name, int stripe,
                           const void* id);
  static void NoteReleased(const void* id);

  // Violation sink. The default handler prints the diagnostic to stderr
  // and aborts ("fail fast"); tests install a capturing handler. Returns
  // the previous handler. Passing nullptr restores the default.
  using Handler = void (*)(const LockRankViolation&);
  static Handler SetViolationHandler(Handler handler);

  // Process-wide counters (relaxed; for taurus.verify.lock_rank.*).
  static std::int64_t checks();
  static std::int64_t violations();
  static void ResetCountersForTest();

  // Depth of the calling thread's held-lock stack (test introspection).
  static int HeldDepthForTest();
};

}  // namespace taurus

#endif  // TAURUS_COMMON_LOCK_RANK_H_
