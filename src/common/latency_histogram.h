#ifndef TAURUS_COMMON_LATENCY_HISTOGRAM_H_
#define TAURUS_COMMON_LATENCY_HISTOGRAM_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace taurus {

/// Thread-safe fixed-bucket latency histogram. Buckets are logarithmic
/// (powers of two from 1 microsecond up), which keeps Record() to one
/// atomic increment while p50/p95/p99 stay within a factor of two of the
/// true value at any latency scale — the standard trade for process-wide
/// latency metrics. (Distinct from catalog/histogram.h, which holds
/// per-column value distributions for cardinality estimation.)
class LatencyHistogram {
 public:
  /// Bucket i covers (UpperBoundMs(i-1), UpperBoundMs(i)]; bucket 0 starts
  /// at 0. 28 buckets span 0.001 ms .. ~134 s; anything larger lands in
  /// the overflow bucket.
  static constexpr int kNumBuckets = 28;

  static double UpperBoundMs(int bucket);

  void Record(double ms);

  int64_t Count() const;
  double SumMs() const { return LoadDouble(sum_ms_); }
  double MaxMs() const { return LoadDouble(max_ms_); }

  /// Upper bound of the bucket holding the p-th percentile sample
  /// (p in [0, 100]); the recorded maximum for the overflow bucket; 0 when
  /// empty.
  double PercentileMs(double p) const;

  /// {"count":N,"sum_ms":...,"p50":...,"p95":...,"p99":...,"max_ms":...}
  std::string ToJson() const;

  void Reset();

 private:
  static void AddDouble(std::atomic<double>& a, double v);
  static void MaxDouble(std::atomic<double>& a, double v);
  static double LoadDouble(const std::atomic<double>& a) {
    return a.load(std::memory_order_relaxed);
  }

  std::atomic<int64_t> buckets_[kNumBuckets + 1] = {};  // +1 = overflow
  std::atomic<double> sum_ms_{0.0};
  std::atomic<double> max_ms_{0.0};
};

}  // namespace taurus

#endif  // TAURUS_COMMON_LATENCY_HISTOGRAM_H_
