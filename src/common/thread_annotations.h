#ifndef TAURUS_COMMON_THREAD_ANNOTATIONS_H_
#define TAURUS_COMMON_THREAD_ANNOTATIONS_H_

// Clang Thread Safety Analysis attributes (DESIGN.md section 14), following
// the convention of GPORCA/Greenplum's compile-time thread-safety checks:
// the concurrency contract is written on the declarations, and
// `-Wthread-safety -Werror=thread-safety` (the TAURUS_THREAD_SAFETY=1
// check.sh leg) turns a mis-locked access into a compile error instead of a
// TSan flake. Every macro expands to nothing on non-Clang compilers, so GCC
// builds are unaffected.
//
// The vocabulary, in the order a reader meets it:
//  - TAURUS_CAPABILITY marks a class as a lock ("capability").
//  - TAURUS_GUARDED_BY(mu) on a data member: reads need `mu` held (shared
//    suffices), writes need it held exclusively.
//  - TAURUS_PT_GUARDED_BY(mu): same, for the pointee of a pointer member.
//  - TAURUS_REQUIRES / TAURUS_REQUIRES_SHARED on a function: the caller
//    must already hold the lock (the `*Locked()` helper convention).
//  - TAURUS_ACQUIRE / TAURUS_RELEASE (and the _SHARED forms) annotate the
//    lock primitives themselves and RAII guards.
//  - TAURUS_EXCLUDES: the caller must NOT hold the lock (self-deadlock
//    guard on non-recursive mutexes).
//  - TAURUS_ACQUIRED_BEFORE / TAURUS_ACQUIRED_AFTER document lock ordering
//    where both locks are visible in one class. Orderings that span
//    classes or lock arrays (the striped plan-cache shards) are beyond the
//    static analysis; the runtime LockRankRegistry (common/lock_rank.h)
//    enforces those.
//  - TAURUS_NO_THREAD_SAFETY_ANALYSIS opts one function out — used only
//    for the array-of-locks patterns TSA cannot express, each site citing
//    the runtime rule that covers it instead.

#if defined(__clang__)
#define TAURUS_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define TAURUS_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op off Clang
#endif

#define TAURUS_CAPABILITY(x) \
  TAURUS_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

#define TAURUS_SCOPED_CAPABILITY \
  TAURUS_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

#define TAURUS_GUARDED_BY(x) \
  TAURUS_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

#define TAURUS_PT_GUARDED_BY(x) \
  TAURUS_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

#define TAURUS_ACQUIRED_BEFORE(...) \
  TAURUS_THREAD_ANNOTATION_ATTRIBUTE(acquired_before(__VA_ARGS__))

#define TAURUS_ACQUIRED_AFTER(...) \
  TAURUS_THREAD_ANNOTATION_ATTRIBUTE(acquired_after(__VA_ARGS__))

#define TAURUS_REQUIRES(...) \
  TAURUS_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

#define TAURUS_REQUIRES_SHARED(...) \
  TAURUS_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

#define TAURUS_ACQUIRE(...) \
  TAURUS_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

#define TAURUS_ACQUIRE_SHARED(...) \
  TAURUS_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

#define TAURUS_RELEASE(...) \
  TAURUS_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

#define TAURUS_RELEASE_SHARED(...) \
  TAURUS_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

#define TAURUS_TRY_ACQUIRE(...) \
  TAURUS_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

#define TAURUS_TRY_ACQUIRE_SHARED(...) \
  TAURUS_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_shared_capability(__VA_ARGS__))

#define TAURUS_EXCLUDES(...) \
  TAURUS_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

#define TAURUS_ASSERT_CAPABILITY(x) \
  TAURUS_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

#define TAURUS_ASSERT_SHARED_CAPABILITY(x) \
  TAURUS_THREAD_ANNOTATION_ATTRIBUTE(assert_shared_capability(x))

#define TAURUS_RETURN_CAPABILITY(x) \
  TAURUS_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

#define TAURUS_NO_THREAD_SAFETY_ANALYSIS \
  TAURUS_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // TAURUS_COMMON_THREAD_ANNOTATIONS_H_
