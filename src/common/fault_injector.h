#ifndef TAURUS_COMMON_FAULT_INJECTOR_H_
#define TAURUS_COMMON_FAULT_INJECTOR_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "common/status.h"

namespace taurus {

/// Deterministic fault injection for exercising fallback edges.
///
/// The compile pipeline declares *named fault points* at each bridge
/// boundary (see kFaultPoints below). In production nothing is armed and a
/// fault check is one relaxed atomic load. Tests arm a point to fail the
/// next N traversals (count mode) or each traversal with probability p
/// (probability mode, seeded xorshift so runs are reproducible); the check
/// then returns an error Status which flows through the normal
/// Status/Result plumbing, letting tests prove that every failure edge
/// falls back cleanly.
class FaultInjector {
 public:
  static FaultInjector& Instance();

  /// Arms `point` to fail its next `count` traversals with `code`.
  void ArmCount(const std::string& point, int count,
                StatusCode code = StatusCode::kInternal);

  /// Arms `point` to fail each traversal with probability `p` in [0, 1].
  /// The decision stream is driven by `seed` for reproducibility.
  void ArmProbability(const std::string& point, double p, uint64_t seed,
                      StatusCode code = StatusCode::kInternal);

  void Disarm(const std::string& point);
  void DisarmAll();

  /// Times `point` fired (returned an error) since it was last armed.
  int64_t trips(const std::string& point) const;
  /// Times `point` was evaluated while armed.
  int64_t hits(const std::string& point) const;

  /// Called from fault sites (via TAURUS_FAULT_POINT). Returns OK unless
  /// `point` is armed and its trigger condition holds.
  Status Check(const char* point);

  bool any_armed() const {
    return armed_points_.load(std::memory_order_relaxed) > 0;
  }

 private:
  FaultInjector();
  ~FaultInjector();

  struct Impl;
  Impl* impl_;
  std::atomic<int> armed_points_{0};
};

/// Fast-path check: a single atomic load when nothing is armed.
inline Status CheckFaultPoint(const char* point) {
  FaultInjector& injector = FaultInjector::Instance();
  if (!injector.any_armed()) return Status::OK();
  return injector.Check(point);
}

/// Declares a named fault point; returns the injected error from the
/// enclosing function when the point is armed and fires.
#define TAURUS_FAULT_POINT(name) \
  TAURUS_RETURN_IF_ERROR(::taurus::CheckFaultPoint(name))

/// Catalog of the fault points compiled into the pipeline, one per bridge
/// boundary. Tests iterate this list to prove each edge is reachable and
/// contained; keep it in sync with the TAURUS_FAULT_POINT sites.
inline constexpr const char* kFaultPoints[] = {
    "bridge.decorrelate",        // scalar-subquery decorrelation rewrite
    "bridge.parse_tree_convert", // QueryBlock -> Orca logical tree
    "mdp.relation_lookup",       // metadata provider OID resolution
    "orca.memo_explore",         // memo search inside OrcaOptimizer
    "bridge.plan_convert",       // Orca physical plan -> skeleton
    "plan_cache.freeze",         // skeleton freeze before caching
    "plan_cache.thaw",           // frozen skeleton thaw on cache hit
    "myopt.refine",              // skeleton refinement into executable plan
};

}  // namespace taurus

#endif  // TAURUS_COMMON_FAULT_INJECTOR_H_
