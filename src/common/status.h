#ifndef TAURUS_COMMON_STATUS_H_
#define TAURUS_COMMON_STATUS_H_

#include <string>
#include <utility>

namespace taurus {

/// Error categories used across the engine. Mirrors the small set of
/// failure classes a query pipeline can hit: user errors (syntax, binding),
/// unsupported constructs (trigger Orca fallback), and internal invariant
/// violations.
enum class StatusCode {
  kOk = 0,
  kSyntaxError,
  kBindError,
  kTypeError,
  kNotFound,
  kAlreadyExists,
  kNotSupported,
  kInvalidArgument,
  kInternal,
  kExecutionError,
  kResourceExhausted,
  kPlanInvariantViolation,
};

/// Returns a short human-readable name for `code` ("OK", "SyntaxError", ...).
const char* StatusCodeName(StatusCode code);

/// A lightweight success/error result, modeled after arrow::Status.
/// Functions that can fail return Status (or Result<T>); exceptions are not
/// used for control flow anywhere in the library. [[nodiscard]] on the
/// class makes silently dropping a returned Status a compile error under
/// -Werror: handle it, or cast to void with a comment saying why not.
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status SyntaxError(std::string msg) {
    return Status(StatusCode::kSyntaxError, std::move(msg));
  }
  static Status BindError(std::string msg) {
    return Status(StatusCode::kBindError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status PlanInvariantViolation(std::string msg) {
    return Status(StatusCode::kPlanInvariantViolation, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Attaches the originating subsystem and the specific rule/limit name
  /// (e.g. "orca.governor" / "max_memo_groups", "verify.skeleton" / "S004")
  /// so downstream consumers — `fallback_reason` above all — report a
  /// precise cause instead of a bare status code. Chainable on temporaries.
  Status& SetOrigin(std::string subsystem, std::string rule) {
    subsystem_ = std::move(subsystem);
    rule_ = std::move(rule);
    return *this;
  }
  const std::string& origin_subsystem() const { return subsystem_; }
  const std::string& origin_rule() const { return rule_; }

  /// "OK" or "<CodeName>: <message>", plus " [subsystem/rule]" when an
  /// origin was attached.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
  std::string subsystem_;
  std::string rule_;
};

/// Evaluates `expr` (a Status expression); returns it from the enclosing
/// function if it is an error.
#define TAURUS_RETURN_IF_ERROR(expr)              \
  do {                                            \
    ::taurus::Status _st = (expr);                \
    if (!_st.ok()) return _st;                    \
  } while (0)

}  // namespace taurus

#endif  // TAURUS_COMMON_STATUS_H_
