#include "common/fault_injector.h"

#include <unordered_map>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace taurus {

namespace {

// xorshift64*: small, seedable, good enough for fault-probability draws.
uint64_t NextRandom(uint64_t* state) {
  uint64_t x = *state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  *state = x;
  return x * 0x2545F4914F6CDD1DULL;
}

}  // namespace

struct FaultInjector::Impl {
  struct Point {
    // Count mode: fail while remaining > 0. Probability mode: remaining < 0
    // and each traversal draws against `probability`.
    int remaining = 0;
    double probability = 0.0;
    uint64_t rng_state = 0;
    StatusCode code = StatusCode::kInternal;
    int64_t hits = 0;
    int64_t trips = 0;
  };

  // Leaf rank: only map bookkeeping happens under it, never other locks.
  mutable Mutex mu{LockRank::kFaultInjector, "common.fault_injector"};
  std::unordered_map<std::string, Point> points TAURUS_GUARDED_BY(mu);
};

FaultInjector::FaultInjector() : impl_(new Impl) {}
FaultInjector::~FaultInjector() { delete impl_; }

FaultInjector& FaultInjector::Instance() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::ArmCount(const std::string& point, int count,
                             StatusCode code) {
  MutexLock lock(&impl_->mu);
  Impl::Point& p = impl_->points[point];
  p = Impl::Point{};
  p.remaining = count;
  p.code = code;
  armed_points_.store(static_cast<int>(impl_->points.size()),
                      std::memory_order_relaxed);
}

void FaultInjector::ArmProbability(const std::string& point, double p,
                                   uint64_t seed, StatusCode code) {
  MutexLock lock(&impl_->mu);
  Impl::Point& entry = impl_->points[point];
  entry = Impl::Point{};
  entry.remaining = -1;
  entry.probability = p;
  entry.rng_state = seed == 0 ? 0x9E3779B97F4A7C15ULL : seed;
  entry.code = code;
  armed_points_.store(static_cast<int>(impl_->points.size()),
                      std::memory_order_relaxed);
}

void FaultInjector::Disarm(const std::string& point) {
  MutexLock lock(&impl_->mu);
  impl_->points.erase(point);
  armed_points_.store(static_cast<int>(impl_->points.size()),
                      std::memory_order_relaxed);
}

void FaultInjector::DisarmAll() {
  MutexLock lock(&impl_->mu);
  impl_->points.clear();
  armed_points_.store(0, std::memory_order_relaxed);
}

int64_t FaultInjector::trips(const std::string& point) const {
  MutexLock lock(&impl_->mu);
  auto it = impl_->points.find(point);
  return it == impl_->points.end() ? 0 : it->second.trips;
}

int64_t FaultInjector::hits(const std::string& point) const {
  MutexLock lock(&impl_->mu);
  auto it = impl_->points.find(point);
  return it == impl_->points.end() ? 0 : it->second.hits;
}

Status FaultInjector::Check(const char* point) {
  MutexLock lock(&impl_->mu);
  auto it = impl_->points.find(point);
  if (it == impl_->points.end()) return Status::OK();
  Impl::Point& p = it->second;
  ++p.hits;
  bool fire = false;
  if (p.remaining > 0) {
    --p.remaining;
    fire = true;
  } else if (p.remaining < 0) {
    constexpr double kScale =
        1.0 / static_cast<double>(~static_cast<uint64_t>(0));
    fire = static_cast<double>(NextRandom(&p.rng_state)) * kScale <
           p.probability;
  }
  if (!fire) return Status::OK();
  ++p.trips;
  return Status(p.code, std::string("injected fault at ") + point);
}

}  // namespace taurus
