#ifndef TAURUS_COMMON_CLOCK_H_
#define TAURUS_COMMON_CLOCK_H_

#include <chrono>

namespace taurus {

/// Monotonic time source, injected wherever the engine timestamps work
/// (tracer spans, EXPLAIN ANALYZE actuals). Mirrors the injectable
/// ResourceBudgetConfig::clock_ms pattern, but as an interface so one
/// object can be shared by reference across subsystems.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Milliseconds on an arbitrary monotonic timeline (only differences
  /// are meaningful).
  virtual double NowMs() const = 0;
};

/// Production clock: std::chrono::steady_clock.
class SteadyClock : public Clock {
 public:
  double NowMs() const override {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  /// Shared stateless instance.
  static const SteadyClock& Instance() {
    static const SteadyClock clock;
    return clock;
  }
};

/// Test clock: advances only when told to, so tests can assert exact span
/// durations and deterministic trace trees.
class FakeClock : public Clock {
 public:
  explicit FakeClock(double start_ms = 0.0) : now_ms_(start_ms) {}

  double NowMs() const override { return now_ms_; }

  void Advance(double ms) { now_ms_ += ms; }
  void Set(double ms) { now_ms_ = ms; }

 private:
  double now_ms_;
};

}  // namespace taurus

#endif  // TAURUS_COMMON_CLOCK_H_
