#include "common/thread_pool.h"

#include <algorithm>

namespace taurus {

ThreadPool::ThreadPool(int workers) {
  int n = std::max(1, workers);
  threads_.reserve(static_cast<size_t>(n));
  for (int w = 0; w < n; ++w) {
    threads_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& t : threads_) t.join();
}

int ThreadPool::HardwareWorkers() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

bool ThreadPool::TryRun(int n, const std::function<void(int)>& fn) {
  n = std::min(n, size());
  if (n <= 0) return false;
  {
    MutexLock lock(&mu_);
    if (busy_) return false;  // reentrant use; caller runs serially
    busy_ = true;
    task_ = &fn;
    task_width_ = n;
    remaining_ = n;
    ++generation_;
  }
  work_cv_.NotifyAll();
  {
    MutexLock lock(&mu_);
    while (remaining_ != 0) done_cv_.Wait(mu_);
    task_ = nullptr;
    busy_ = false;
  }
  return true;
}

void ThreadPool::WorkerLoop(int worker_id) {
  uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* task = nullptr;
    {
      MutexLock lock(&mu_);
      while (!shutdown_ && generation_ == seen) work_cv_.Wait(mu_);
      if (shutdown_) return;
      seen = generation_;
      if (worker_id >= task_width_) continue;  // not part of this batch
      task = task_;
    }
    (*task)(worker_id);
    {
      MutexLock lock(&mu_);
      if (--remaining_ == 0) done_cv_.NotifyAll();
    }
  }
}

}  // namespace taurus
