#ifndef TAURUS_COMMON_RESOURCE_BUDGET_H_
#define TAURUS_COMMON_RESOURCE_BUDGET_H_

#include <cstdint>
#include <functional>

#include "common/status.h"

namespace taurus {

/// Limits on what the Orca detour may consume before the engine gives up on
/// it and falls back to the MySQL path. All limits default to 0 = unlimited;
/// a production deployment would set them from system variables.
///
/// The clock is injectable so deadline behavior is testable without real
/// sleeps: tests supply a fake that jumps forward on each call.
struct ResourceBudgetConfig {
  /// Wall-clock budget for one Orca optimization attempt, in ms.
  double optimize_deadline_ms = 0.0;
  /// Cap on memo groups created across a single optimization (including
  /// nested blocks, which share the group counter).
  int max_memo_groups = 0;
  /// Cap on join partition pairs examined during memo exploration.
  int64_t max_partition_pairs = 0;
  /// Cap on rows an Orca-produced plan may scan during execution.
  int64_t max_exec_rows = 0;
  /// Wall-clock budget for executing an Orca-produced plan, in ms.
  double exec_deadline_ms = 0.0;
  /// Monotonic millisecond clock; nullptr uses std::chrono::steady_clock.
  std::function<double()> clock_ms;

  bool governs_optimize() const {
    return optimize_deadline_ms > 0 || max_memo_groups > 0 ||
           max_partition_pairs > 0;
  }
  bool governs_exec() const {
    return max_exec_rows > 0 || exec_deadline_ms > 0;
  }
};

/// Per-compile enforcement of a ResourceBudgetConfig. Created on the stack
/// for each Orca detour (stamping the start time) and threaded down into
/// the memo search; a nullptr governor means "ungoverned".
class ResourceGovernor {
 public:
  explicit ResourceGovernor(const ResourceBudgetConfig& config);

  /// Current time on the governed timeline, in ms.
  double NowMs() const;

  /// Charges the current total memo group count against the cap.
  Status ChargeMemoGroups(int total_groups);

  /// Charges one examined partition pair; every 64th charge also checks
  /// the deadline so hot search loops pay for at most ~1.5% clock reads.
  Status ChargePartitionPair();

  Status CheckDeadline();

  static double SteadyNowMs();

 private:
  const ResourceBudgetConfig* config_;
  double start_ms_ = 0.0;
  int64_t pairs_charged_ = 0;
};

}  // namespace taurus

#endif  // TAURUS_COMMON_RESOURCE_BUDGET_H_
