#include "common/status.h"

namespace taurus {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kSyntaxError:
      return "SyntaxError";
    case StatusCode::kBindError:
      return "BindError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kExecutionError:
      return "ExecutionError";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kPlanInvariantViolation:
      return "PlanInvariantViolation";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  if (!subsystem_.empty() || !rule_.empty()) {
    out += " [";
    out += subsystem_;
    out += "/";
    out += rule_;
    out += "]";
  }
  return out;
}

}  // namespace taurus
