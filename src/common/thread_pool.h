#ifndef TAURUS_COMMON_THREAD_POOL_H_
#define TAURUS_COMMON_THREAD_POOL_H_

#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace taurus {

/// A fixed-size worker pool for morsel-driven pipeline execution. Threads
/// are started once and reused across queries; the pool runs one batch of
/// tasks at a time (`TryRun`), which is all the executor needs: a pipeline
/// fans out to `n` workers, joins, and the next pipeline reuses the pool.
///
/// Concurrency contract (kept deliberately small so TSan can certify it):
///  - TryRun publishes the task before waking workers (mutex-protected
///    generation bump), so everything written by the caller before TryRun
///    happens-before the task body on each worker.
///  - TryRun returns only after every worker has finished, so everything a
///    task wrote happens-before the caller's reads after TryRun.
class ThreadPool {
 public:
  /// Starts `workers` (>= 1) threads.
  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(threads_.size()); }

  /// Runs `fn(w)` for w in [0, n) across the pool (n is clamped to size())
  /// and blocks until all invocations return. Returns false without running
  /// anything if a batch is already in flight — i.e. a task tried to use the
  /// pool reentrantly; the caller then falls back to its serial path.
  bool TryRun(int n, const std::function<void(int)>& fn)
      TAURUS_EXCLUDES(mu_);

  /// hardware_concurrency with a floor of 1 (the standard allows 0).
  static int HardwareWorkers();

 private:
  void WorkerLoop(int worker_id) TAURUS_EXCLUDES(mu_);

  Mutex mu_{LockRank::kThreadPool, "common.thread_pool"};
  CondVar work_cv_;  ///< signals workers: new generation
  CondVar done_cv_;  ///< signals TryRun: batch finished
  const std::function<void(int)>* task_ TAURUS_GUARDED_BY(mu_) =
      nullptr;  ///< current batch body
  int task_width_ TAURUS_GUARDED_BY(mu_) = 0;  ///< workers in current batch
  int remaining_ TAURUS_GUARDED_BY(mu_) = 0;   ///< workers not yet finished
  uint64_t generation_ TAURUS_GUARDED_BY(mu_) = 0;  ///< bumped per batch
  bool busy_ TAURUS_GUARDED_BY(mu_) = false;  ///< batch in flight (reentrancy)
  bool shutdown_ TAURUS_GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;  ///< immutable after the constructor
};

}  // namespace taurus

#endif  // TAURUS_COMMON_THREAD_POOL_H_
