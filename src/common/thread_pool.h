#ifndef TAURUS_COMMON_THREAD_POOL_H_
#define TAURUS_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace taurus {

/// A fixed-size worker pool for morsel-driven pipeline execution. Threads
/// are started once and reused across queries; the pool runs one batch of
/// tasks at a time (`TryRun`), which is all the executor needs: a pipeline
/// fans out to `n` workers, joins, and the next pipeline reuses the pool.
///
/// Concurrency contract (kept deliberately small so TSan can certify it):
///  - TryRun publishes the task before waking workers (mutex-protected
///    generation bump), so everything written by the caller before TryRun
///    happens-before the task body on each worker.
///  - TryRun returns only after every worker has finished, so everything a
///    task wrote happens-before the caller's reads after TryRun.
class ThreadPool {
 public:
  /// Starts `workers` (>= 1) threads.
  explicit ThreadPool(int workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(threads_.size()); }

  /// Runs `fn(w)` for w in [0, n) across the pool (n is clamped to size())
  /// and blocks until all invocations return. Returns false without running
  /// anything if a batch is already in flight — i.e. a task tried to use the
  /// pool reentrantly; the caller then falls back to its serial path.
  bool TryRun(int n, const std::function<void(int)>& fn);

  /// hardware_concurrency with a floor of 1 (the standard allows 0).
  static int HardwareWorkers();

 private:
  void WorkerLoop(int worker_id);

  std::mutex mu_;
  std::condition_variable work_cv_;   ///< signals workers: new generation
  std::condition_variable done_cv_;   ///< signals TryRun: batch finished
  const std::function<void(int)>* task_ = nullptr;  ///< current batch body
  int task_width_ = 0;       ///< workers participating in current batch
  int remaining_ = 0;        ///< workers not yet finished with the batch
  uint64_t generation_ = 0;  ///< bumped per batch; workers wait on it
  bool busy_ = false;        ///< a batch is in flight (reentrancy guard)
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace taurus

#endif  // TAURUS_COMMON_THREAD_POOL_H_
