#ifndef TAURUS_COMMON_RESULT_H_
#define TAURUS_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace taurus {

/// Value-or-error holder, modeled after arrow::Result. A Result<T> holds
/// either a T or a non-OK Status; constructing one from an OK Status is a
/// programming error. [[nodiscard]] as on Status: a dropped Result is a
/// dropped error.
template <typename T>
class [[nodiscard]] Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): mirror arrow::Result.
  Result(T value) : repr_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : repr_(std::move(status)) {
    assert(!std::get<Status>(repr_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk = Status::OK();
    // get_if (not ok() ? ... : std::get) so GCC 12 does not speculate a
    // read of the Status alternative while the variant holds a T, which
    // trips -Wmaybe-uninitialized under -O2.
    const Status* s = std::get_if<Status>(&repr_);
    return s != nullptr ? *s : kOk;
  }

  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(repr_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

#define TAURUS_CONCAT_IMPL(a, b) a##b
#define TAURUS_CONCAT(a, b) TAURUS_CONCAT_IMPL(a, b)

/// ASSIGN_OR_RETURN: evaluates `rexpr` (a Result<T>), returns its status on
/// error, otherwise move-assigns the value into `lhs`.
#define TAURUS_ASSIGN_OR_RETURN(lhs, rexpr)                      \
  TAURUS_ASSIGN_OR_RETURN_IMPL(                                  \
      TAURUS_CONCAT(_result_, __LINE__), lhs, rexpr)

#define TAURUS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                                 \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

}  // namespace taurus

#endif  // TAURUS_COMMON_RESULT_H_
