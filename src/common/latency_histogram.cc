#include "common/latency_histogram.h"

#include <cstdio>

namespace taurus {

double LatencyHistogram::UpperBoundMs(int bucket) {
  return 0.001 * static_cast<double>(1LL << bucket);
}

void LatencyHistogram::AddDouble(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void LatencyHistogram::MaxDouble(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (cur < v &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void LatencyHistogram::Record(double ms) {
  if (ms < 0.0) ms = 0.0;
  int bucket = 0;
  while (bucket < kNumBuckets && ms > UpperBoundMs(bucket)) ++bucket;
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  AddDouble(sum_ms_, ms);
  MaxDouble(max_ms_, ms);
}

int64_t LatencyHistogram::Count() const {
  int64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

double LatencyHistogram::PercentileMs(double p) const {
  const int64_t total = Count();
  if (total == 0) return 0.0;
  if (p < 0.0) p = 0.0;
  if (p > 100.0) p = 100.0;
  int64_t rank = static_cast<int64_t>(p / 100.0 * static_cast<double>(total));
  if (rank < 1) rank = 1;
  int64_t seen = 0;
  for (int i = 0; i <= kNumBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) {
      return i < kNumBuckets ? UpperBoundMs(i) : MaxMs();
    }
  }
  return MaxMs();
}

std::string LatencyHistogram::ToJson() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "{\"count\": %lld, \"sum_ms\": %.6f, \"p50\": %.6f, "
                "\"p95\": %.6f, \"p99\": %.6f, \"max_ms\": %.6f}",
                static_cast<long long>(Count()), SumMs(), PercentileMs(50),
                PercentileMs(95), PercentileMs(99), MaxMs());
  return buf;
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_ms_.store(0.0, std::memory_order_relaxed);
  max_ms_.store(0.0, std::memory_order_relaxed);
}

}  // namespace taurus
