#ifndef TAURUS_FEEDBACK_AGMS_SKETCH_H_
#define TAURUS_FEEDBACK_AGMS_SKETCH_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace taurus {

/// Fast-AGMS sketch over a stream of join-key hashes ("Online Sketch-based
/// Query Optimization", PAPERS.md). Each of `depth` rows hashes the value
/// into one of `width` buckets and adds a +/-1 sign; the inner product of
/// two sketches built over the join columns of two inputs is an unbiased
/// estimator of their equi-join output size, with variance shrinking as
/// 1/width — the estimator the feedback loop prefers over histogram
/// products (DESIGN.md section 11).
///
/// Updates and queries are thread-safe: counters are relaxed atomics, so
/// concurrent hash-join build/probe streams (and a concurrent optimizer
/// querying a harvested sketch) never race. Estimates read while updates
/// are in flight are approximate, which is all a sketch promises anyway.
class AgmsSketch {
 public:
  /// `width` is rounded up to a power of two (bucket index by mask).
  /// Seeds are fixed per depth, so two sketches with the same shape are
  /// always comparable and results are run-to-run deterministic.
  AgmsSketch(int depth, int width);

  AgmsSketch(const AgmsSketch&) = delete;
  AgmsSketch& operator=(const AgmsSketch&) = delete;

  /// Folds one value (pre-hashed, e.g. Value::Hash()) into the sketch.
  void Update(uint64_t value_hash);

  /// Estimated equi-join output size against `other` (median over depth of
  /// the per-row bucket inner products). Both sketches must have the same
  /// shape. Never negative.
  double JoinSizeEstimate(const AgmsSketch& other) const;

  /// Estimated self-join size (sum of squared frequencies) — the F2 moment
  /// that bounds the join estimator's variance, used by the error-bound
  /// tests.
  double SelfJoinSize() const;

  /// Deep copy of the current counter state.
  std::unique_ptr<AgmsSketch> Clone() const;

  int depth() const { return depth_; }
  int width() const { return width_; }
  /// Number of Update() calls folded in so far.
  int64_t rows() const { return rows_.load(std::memory_order_relaxed); }

 private:
  int depth_;
  int width_;  ///< power of two
  std::vector<std::atomic<int64_t>> counters_;  ///< depth_ * width_
  std::atomic<int64_t> rows_{0};
};

/// The per-execution collection of sketches built opportunistically while
/// hash joins run: one sketch per (ref_id, column) join-key stream. A
/// stream is only trustworthy when its rows are fed exactly once, so
/// BeginStream hands ownership of each key to the first operator that
/// opens it — a re-open by the same owner (an operator re-executed inside
/// a nested loop would double-count) poisons the stream, and a different
/// owner is simply refused. Harvest takes only the unpoisoned streams.
class SketchSet {
 public:
  SketchSet(int depth, int width) : depth_(depth), width_(width) {}

  /// Key for the sketch over `column_idx` of leaf `ref_id`.
  static std::string StreamKey(int ref_id, int column_idx);

  /// Claims the stream for `owner` and returns its sketch, or null when
  /// the stream belongs to someone else or has been poisoned. Thread-safe.
  AgmsSketch* BeginStream(const std::string& key, const void* owner)
      TAURUS_EXCLUDES(mu_);

  /// Moves out every valid (unpoisoned) sketch that saw at least one row.
  std::map<std::string, std::unique_ptr<AgmsSketch>> TakeValid()
      TAURUS_EXCLUDES(mu_);

 private:
  struct Stream {
    const void* owner = nullptr;
    bool poisoned = false;
    std::unique_ptr<AgmsSketch> sketch;
  };

  int depth_;
  int width_;
  /// Leaf rank: taken from executor worker threads while a hash join
  /// claims its key streams; nothing else is ever locked under it.
  Mutex mu_{LockRank::kSketchSet, "feedback.sketch_set"};
  std::map<std::string, Stream> streams_ TAURUS_GUARDED_BY(mu_);
};

}  // namespace taurus

#endif  // TAURUS_FEEDBACK_AGMS_SKETCH_H_
