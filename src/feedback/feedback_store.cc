#include "feedback/feedback_store.h"

#include <algorithm>
#include <cmath>

namespace taurus {

namespace {

double SampleQError(double est, double act) {
  double e = std::max(est, 1.0);
  double a = std::max(act, 1.0);
  return std::max(e / a, a / e);
}

/// Actuals "materially moved" when any sampled subtree is new or its
/// actual changed by more than 20% relative — the hysteresis that keeps a
/// re-optimized plan from bumping the drift version forever when its
/// estimates are still imperfect but its actuals are stable.
bool MateriallyDiffer(const std::map<std::string, double>& sampled,
                      const std::map<std::string, double>& stored) {
  for (const auto& [key, act] : sampled) {
    auto it = stored.find(key);
    if (it == stored.end()) return true;
    double base = std::max(std::abs(it->second), 1.0);
    if (std::abs(act - it->second) > 0.2 * base) return true;
  }
  return false;
}

}  // namespace

std::string RefSetKey(std::vector<int> refs) {
  std::sort(refs.begin(), refs.end());
  refs.erase(std::unique(refs.begin(), refs.end()), refs.end());
  std::string key;
  for (size_t i = 0; i < refs.size(); ++i) {
    if (i) key += ',';
    key += 'r';
    key += std::to_string(refs[i]);
  }
  return key;
}

FeedbackStore::FeedbackStore(const FeedbackConfig& config) : config_(config) {}

double FeedbackStore::NowMs() const {
  const Clock* clock = config_.clock != nullptr
                           ? config_.clock
                           : &SteadyClock::Instance();
  return clock->NowMs();
}

void FeedbackStore::EvictOverCapacityLocked() {
  size_t cap = std::max<size_t>(config_.store_capacity, 1);
  while (index_.size() > cap) {
    auto victim = index_.begin();
    uint64_t victim_used = std::atomic_ref<uint64_t>(victim->second->last_used)
                               .load(std::memory_order_relaxed);
    for (auto it = index_.begin(); it != index_.end(); ++it) {
      uint64_t used = std::atomic_ref<uint64_t>(it->second->last_used)
                          .load(std::memory_order_relaxed);
      if (used < victim_used) {
        victim = it;
        victim_used = used;
      }
    }
    index_.erase(victim);
    lru_evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::shared_ptr<const FeedbackSnapshot> FeedbackStore::Snapshot(
    uint64_t fingerprint, uint64_t schema_version, uint64_t stats_version) {
  {
    // Hot path: shared lock only. The snapshot pointer and version stamps
    // are written exclusively under the unique lock, so reading them here
    // is race-free; recency goes through atomic_ref because concurrent
    // readers race on the stamp.
    ReaderMutexLock lock(&mu_);
    auto idx = index_.find(fingerprint);
    if (idx == index_.end()) return nullptr;
    const Entry& e = *idx->second;
    bool stale = e.schema_version != schema_version ||
                 e.stats_version != stats_version;
    bool aged = !stale && config_.max_entry_age_ms > 0.0 &&
                NowMs() - e.harvested_at_ms > config_.max_entry_age_ms;
    if (!stale && !aged) {
      std::atomic_ref<uint64_t>(idx->second->last_used)
          .store(NextTick(), std::memory_order_relaxed);
      return e.snapshot;
    }
  }
  // Stale (DDL/ANALYZE since harvest) or aged out: escalate to the
  // exclusive lock, re-check, and erase — rare, so readers never pay.
  WriterMutexLock lock(&mu_);
  auto idx = index_.find(fingerprint);
  if (idx == index_.end()) return nullptr;
  const Entry& e = *idx->second;
  if (e.schema_version != schema_version ||
      e.stats_version != stats_version) {
    version_resets_.fetch_add(1, std::memory_order_relaxed);
    index_.erase(idx);
  } else if (config_.max_entry_age_ms > 0.0 &&
             NowMs() - e.harvested_at_ms > config_.max_entry_age_ms) {
    aged_out_.fetch_add(1, std::memory_order_relaxed);
    index_.erase(idx);
  }
  return nullptr;
}

uint64_t FeedbackStore::DriftVersion(uint64_t fingerprint) const {
  ReaderMutexLock lock(&mu_);
  auto idx = index_.find(fingerprint);
  if (idx == index_.end()) return 0;
  return idx->second->drift_version;
}

HarvestResult FeedbackStore::Harvest(uint64_t fingerprint,
                                     FeedbackSample sample,
                                     double qerror_threshold,
                                     uint64_t schema_version,
                                     uint64_t stats_version) {
  HarvestResult out;
  if (fingerprint == 0) return out;
  for (const auto& [key, est] : sample.node_estimates) {
    auto it = sample.node_actuals.find(key);
    if (it == sample.node_actuals.end()) continue;
    out.max_q_error = std::max(out.max_q_error, SampleQError(est, it->second));
  }

  WriterMutexLock lock(&mu_);
  auto idx = index_.find(fingerprint);
  Entry* entry = nullptr;
  if (idx != index_.end()) {
    if (idx->second->schema_version != schema_version ||
        idx->second->stats_version != stats_version) {
      // DDL / ANALYZE since the last harvest: feedback state resets.
      version_resets_.fetch_add(1, std::memory_order_relaxed);
      index_.erase(idx);
    } else {
      entry = idx->second.get();
    }
  }

  bool material = entry == nullptr ||
                  MateriallyDiffer(sample.node_actuals,
                                   entry->snapshot->node_actuals);
  if (entry == nullptr) {
    auto node = std::make_shared<Entry>();
    entry = node.get();
    entry->fingerprint = fingerprint;
    entry->snapshot = std::make_shared<FeedbackSnapshot>();
    entry->schema_version = schema_version;
    entry->stats_version = stats_version;
    index_[fingerprint] = std::move(node);
  }
  std::atomic_ref<uint64_t>(entry->last_used)
      .store(NextTick(), std::memory_order_relaxed);

  // Copy-on-write: compiles may still hold the old snapshot.
  auto next = std::make_shared<FeedbackSnapshot>(*entry->snapshot);
  for (const auto& [key, act] : sample.node_actuals) {
    next->node_actuals[key] = act;
  }
  for (auto& [key, sketch] : sample.sketches) {
    next->sketches[key] = std::shared_ptr<const AgmsSketch>(std::move(sketch));
  }
  entry->snapshot = std::move(next);
  entry->harvested_at_ms = NowMs();

  if (out.max_q_error > qerror_threshold && material) {
    ++entry->drift_version;
    out.version_bumped = true;
  }
  out.stored = true;

  EvictOverCapacityLocked();
  return out;
}

void FeedbackStore::Clear() {
  WriterMutexLock lock(&mu_);
  index_.clear();
}

size_t FeedbackStore::Size() const {
  ReaderMutexLock lock(&mu_);
  return index_.size();
}

int64_t FeedbackStore::lru_evictions() const {
  return lru_evictions_.load(std::memory_order_relaxed);
}

int64_t FeedbackStore::aged_out() const {
  return aged_out_.load(std::memory_order_relaxed);
}

int64_t FeedbackStore::version_resets() const {
  return version_resets_.load(std::memory_order_relaxed);
}

}  // namespace taurus
