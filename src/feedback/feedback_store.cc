#include "feedback/feedback_store.h"

#include <algorithm>
#include <cmath>

namespace taurus {

namespace {

double SampleQError(double est, double act) {
  double e = std::max(est, 1.0);
  double a = std::max(act, 1.0);
  return std::max(e / a, a / e);
}

/// Actuals "materially moved" when any sampled subtree is new or its
/// actual changed by more than 20% relative — the hysteresis that keeps a
/// re-optimized plan from bumping the drift version forever when its
/// estimates are still imperfect but its actuals are stable.
bool MateriallyDiffer(const std::map<std::string, double>& sampled,
                      const std::map<std::string, double>& stored) {
  for (const auto& [key, act] : sampled) {
    auto it = stored.find(key);
    if (it == stored.end()) return true;
    double base = std::max(std::abs(it->second), 1.0);
    if (std::abs(act - it->second) > 0.2 * base) return true;
  }
  return false;
}

}  // namespace

std::string RefSetKey(std::vector<int> refs) {
  std::sort(refs.begin(), refs.end());
  refs.erase(std::unique(refs.begin(), refs.end()), refs.end());
  std::string key;
  for (size_t i = 0; i < refs.size(); ++i) {
    if (i) key += ',';
    key += 'r';
    key += std::to_string(refs[i]);
  }
  return key;
}

FeedbackStore::FeedbackStore(const FeedbackConfig& config) : config_(config) {}

double FeedbackStore::NowMs() const {
  const Clock* clock = config_.clock != nullptr
                           ? config_.clock
                           : &SteadyClock::Instance();
  return clock->NowMs();
}

void FeedbackStore::EraseLocked(std::list<Entry>::iterator it) {
  index_.erase(it->fingerprint);
  lru_.erase(it);
}

std::shared_ptr<const FeedbackSnapshot> FeedbackStore::Snapshot(
    uint64_t fingerprint, uint64_t schema_version, uint64_t stats_version) {
  std::lock_guard<std::mutex> lock(mu_);
  auto idx = index_.find(fingerprint);
  if (idx == index_.end()) return nullptr;
  auto it = idx->second;
  if (it->schema_version != schema_version ||
      it->stats_version != stats_version) {
    ++version_resets_;
    EraseLocked(it);
    return nullptr;
  }
  if (config_.max_entry_age_ms > 0.0 &&
      NowMs() - it->harvested_at_ms > config_.max_entry_age_ms) {
    ++aged_out_;
    EraseLocked(it);
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it);  // touch
  return it->snapshot;
}

uint64_t FeedbackStore::DriftVersion(uint64_t fingerprint) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto idx = index_.find(fingerprint);
  if (idx == index_.end()) return 0;
  return idx->second->drift_version;
}

HarvestResult FeedbackStore::Harvest(uint64_t fingerprint,
                                     FeedbackSample sample,
                                     double qerror_threshold,
                                     uint64_t schema_version,
                                     uint64_t stats_version) {
  HarvestResult out;
  if (fingerprint == 0) return out;
  for (const auto& [key, est] : sample.node_estimates) {
    auto it = sample.node_actuals.find(key);
    if (it == sample.node_actuals.end()) continue;
    out.max_q_error = std::max(out.max_q_error, SampleQError(est, it->second));
  }

  std::lock_guard<std::mutex> lock(mu_);
  auto idx = index_.find(fingerprint);
  Entry* entry = nullptr;
  if (idx != index_.end()) {
    auto it = idx->second;
    if (it->schema_version != schema_version ||
        it->stats_version != stats_version) {
      // DDL / ANALYZE since the last harvest: feedback state resets.
      ++version_resets_;
      EraseLocked(it);
    } else {
      lru_.splice(lru_.begin(), lru_, it);
      entry = &*it;
    }
  }

  bool material = entry == nullptr ||
                  MateriallyDiffer(sample.node_actuals,
                                   entry->snapshot->node_actuals);
  if (entry == nullptr) {
    lru_.push_front(Entry{});
    entry = &lru_.front();
    entry->fingerprint = fingerprint;
    entry->snapshot = std::make_shared<FeedbackSnapshot>();
    entry->schema_version = schema_version;
    entry->stats_version = stats_version;
    index_[fingerprint] = lru_.begin();
  }

  // Copy-on-write: compiles may still hold the old snapshot.
  auto next = std::make_shared<FeedbackSnapshot>(*entry->snapshot);
  for (const auto& [key, act] : sample.node_actuals) {
    next->node_actuals[key] = act;
  }
  for (auto& [key, sketch] : sample.sketches) {
    next->sketches[key] = std::shared_ptr<const AgmsSketch>(std::move(sketch));
  }
  entry->snapshot = std::move(next);
  entry->harvested_at_ms = NowMs();

  if (out.max_q_error > qerror_threshold && material) {
    ++entry->drift_version;
    out.version_bumped = true;
  }
  out.stored = true;

  while (lru_.size() > std::max<size_t>(config_.store_capacity, 1)) {
    ++lru_evictions_;
    EraseLocked(std::prev(lru_.end()));
  }
  return out;
}

void FeedbackStore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  index_.clear();
}

size_t FeedbackStore::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

int64_t FeedbackStore::lru_evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_evictions_;
}

int64_t FeedbackStore::aged_out() const {
  std::lock_guard<std::mutex> lock(mu_);
  return aged_out_;
}

int64_t FeedbackStore::version_resets() const {
  std::lock_guard<std::mutex> lock(mu_);
  return version_resets_;
}

}  // namespace taurus
