#ifndef TAURUS_FEEDBACK_FEEDBACK_STORE_H_
#define TAURUS_FEEDBACK_FEEDBACK_STORE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "feedback/agms_sketch.h"

namespace taurus {

/// Knobs for the execution-feedback loop (DESIGN.md section 11). Off by
/// default: feedback changes plans, so it is strictly opt-in.
struct FeedbackConfig {
  bool enable = false;
  /// A harvested max q-error above this bumps the fingerprint's drift
  /// version, evicting its cached skeleton so the next compile re-optimizes
  /// with actuals.
  double qerror_invalidation_threshold = 2.0;
  /// LRU capacity of the store, in fingerprints.
  size_t store_capacity = 256;
  /// Entries older than this are dropped on access; 0 disables aging.
  double max_entry_age_ms = 0.0;
  /// Build Fast-AGMS sketches during hash joins and prefer their join-size
  /// estimates over histogram products.
  bool sketches = true;
  int sketch_depth = 5;
  int sketch_width = 512;
  /// Injectable time source for aging (tests use FakeClock); null means
  /// SteadyClock.
  const Clock* clock = nullptr;
};

/// Canonical key for a plan subtree: the sorted ref_ids of its leaves
/// ("r2,r5"). Ref ids are statement-global, so for a fixed fingerprint the
/// key names the same logical sub-join regardless of the join order the
/// executed plan happened to use.
std::string RefSetKey(std::vector<int> refs);

/// What one successful execution learned about a fingerprint.
struct FeedbackSample {
  /// ref-set key -> actual output rows of that subtree.
  std::map<std::string, double> node_actuals;
  /// ref-set key -> the executed plan's estimate for the subtree (only for
  /// keys also present in node_actuals; used for drift detection).
  std::map<std::string, double> node_estimates;
  /// Join-key sketches built during this execution (SketchSet::TakeValid).
  std::map<std::string, std::unique_ptr<AgmsSketch>> sketches;
};

/// Immutable per-fingerprint view handed to the optimizer: actual
/// cardinalities by ref-set key plus join-key sketches. Shared read-only
/// across concurrent compiles.
struct FeedbackSnapshot {
  std::map<std::string, double> node_actuals;
  std::map<std::string, std::shared_ptr<const AgmsSketch>> sketches;
};

struct HarvestResult {
  bool stored = false;
  /// True when the sample's drift bumped the fingerprint's feedback
  /// version (stale cached skeletons will be evicted on next lookup).
  bool version_bumped = false;
  double max_q_error = 1.0;
};

/// Thread-safe, LRU-bounded store of execution feedback keyed by statement
/// fingerprint. Entries are stamped with the catalog schema/stats versions
/// in force when harvested, so DDL and ANALYZE reset feedback state the
/// same way they invalidate cached plans.
///
/// Concurrency contract: the compile hot path (Snapshot / DriftVersion)
/// takes only a shared lock — concurrent compiles never serialize on the
/// store — touching LRU recency through an atomic_ref stamp. Writers
/// (Harvest, Clear) and the rare stale/aged erase inside Snapshot take the
/// exclusive lock. Snapshots are copy-on-write shared_ptrs, so a compile
/// keeps a consistent view even while a concurrent execution harvests over
/// the same fingerprint.
class FeedbackStore {
 public:
  /// Holds a reference to `config`: the caller's knob object must outlive
  /// the store, and knob changes (capacity, aging, clock) take effect on
  /// the next call — the engine exposes live feedback_config() this way.
  explicit FeedbackStore(const FeedbackConfig& config);

  /// Feedback for `fingerprint`, or null when absent, harvested under
  /// different catalog versions, or aged out (stale entries are erased).
  /// Touches LRU recency.
  std::shared_ptr<const FeedbackSnapshot> Snapshot(uint64_t fingerprint,
                                                   uint64_t schema_version,
                                                   uint64_t stats_version)
      TAURUS_EXCLUDES(mu_);

  /// Current drift version for `fingerprint` (0 when unknown). Cached
  /// plans are stamped with this at compile time; a later bump invalidates
  /// exactly this fingerprint's cache entry.
  uint64_t DriftVersion(uint64_t fingerprint) const TAURUS_EXCLUDES(mu_);

  /// Folds one execution's sample in: merges actuals/sketches over any
  /// existing entry and bumps the drift version when the observed max
  /// q-error exceeds `qerror_threshold` AND the actuals materially moved
  /// (so a re-optimized plan that now estimates well does not thrash).
  HarvestResult Harvest(uint64_t fingerprint, FeedbackSample sample,
                        double qerror_threshold, uint64_t schema_version,
                        uint64_t stats_version) TAURUS_EXCLUDES(mu_);

  void Clear() TAURUS_EXCLUDES(mu_);

  size_t Size() const TAURUS_EXCLUDES(mu_);
  int64_t lru_evictions() const;
  int64_t aged_out() const;
  int64_t version_resets() const;  ///< entries dropped on DDL/ANALYZE drift

 private:
  struct Entry {
    uint64_t fingerprint = 0;
    std::shared_ptr<FeedbackSnapshot> snapshot;
    uint64_t drift_version = 0;
    uint64_t schema_version = 0;
    uint64_t stats_version = 0;
    double harvested_at_ms = 0.0;
    /// Recency stamp from tick_; bumped via atomic_ref under the shared
    /// lock (Snapshot) and plainly under the exclusive lock (Harvest).
    uint64_t last_used = 0;
  };

  double NowMs() const;
  uint64_t NextTick() {
    return tick_.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  /// Evicts least-recently-stamped entries beyond capacity (exclusive lock
  /// required).
  void EvictOverCapacityLocked() TAURUS_REQUIRES(mu_);

  const FeedbackConfig& config_;
  mutable SharedMutex mu_{LockRank::kFeedbackStore, "feedback.store"};
  std::unordered_map<uint64_t, std::shared_ptr<Entry>> index_
      TAURUS_GUARDED_BY(mu_);
  std::atomic<uint64_t> tick_{0};
  std::atomic<int64_t> lru_evictions_{0};
  std::atomic<int64_t> aged_out_{0};
  std::atomic<int64_t> version_resets_{0};
};

}  // namespace taurus

#endif  // TAURUS_FEEDBACK_FEEDBACK_STORE_H_
