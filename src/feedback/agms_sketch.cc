#include "feedback/agms_sketch.h"

#include <algorithm>
#include <bit>

namespace taurus {

namespace {

/// splitmix64 finalizer — cheap, well-mixed, and deterministic; seeded per
/// depth so the depth rows act as independent hash/sign families.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t DepthSeed(int d) { return Mix(0x5ca1ab1eULL + static_cast<uint64_t>(d)); }

}  // namespace

AgmsSketch::AgmsSketch(int depth, int width)
    : depth_(std::max(depth, 1)),
      width_(static_cast<int>(std::bit_ceil(
          static_cast<unsigned>(std::max(width, 2))))),
      counters_(static_cast<size_t>(depth_) * static_cast<size_t>(width_)) {
  for (auto& c : counters_) c.store(0, std::memory_order_relaxed);
}

void AgmsSketch::Update(uint64_t value_hash) {
  const uint64_t mask = static_cast<uint64_t>(width_) - 1;
  for (int d = 0; d < depth_; ++d) {
    uint64_t h = Mix(value_hash ^ DepthSeed(d));
    size_t bucket = static_cast<size_t>(d) * static_cast<size_t>(width_) +
                    static_cast<size_t>(h & mask);
    int64_t sign = ((h >> 32) & 1) ? 1 : -1;
    counters_[bucket].fetch_add(sign, std::memory_order_relaxed);
  }
  rows_.fetch_add(1, std::memory_order_relaxed);
}

double AgmsSketch::JoinSizeEstimate(const AgmsSketch& other) const {
  if (other.depth_ != depth_ || other.width_ != width_) return 0.0;
  std::vector<double> per_depth(static_cast<size_t>(depth_), 0.0);
  for (int d = 0; d < depth_; ++d) {
    double dot = 0.0;
    size_t base = static_cast<size_t>(d) * static_cast<size_t>(width_);
    for (int w = 0; w < width_; ++w) {
      dot += static_cast<double>(
                 counters_[base + static_cast<size_t>(w)].load(
                     std::memory_order_relaxed)) *
             static_cast<double>(other.counters_[base + static_cast<size_t>(w)]
                                     .load(std::memory_order_relaxed));
    }
    per_depth[static_cast<size_t>(d)] = dot;
  }
  std::nth_element(per_depth.begin(),
                   per_depth.begin() + per_depth.size() / 2, per_depth.end());
  return std::max(per_depth[per_depth.size() / 2], 0.0);
}

double AgmsSketch::SelfJoinSize() const { return JoinSizeEstimate(*this); }

std::unique_ptr<AgmsSketch> AgmsSketch::Clone() const {
  auto copy = std::make_unique<AgmsSketch>(depth_, width_);
  for (size_t i = 0; i < counters_.size(); ++i) {
    copy->counters_[i].store(counters_[i].load(std::memory_order_relaxed),
                             std::memory_order_relaxed);
  }
  copy->rows_.store(rows_.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
  return copy;
}

std::string SketchSet::StreamKey(int ref_id, int column_idx) {
  return "r" + std::to_string(ref_id) + "#c" + std::to_string(column_idx);
}

AgmsSketch* SketchSet::BeginStream(const std::string& key, const void* owner) {
  MutexLock lock(&mu_);
  auto [it, inserted] = streams_.try_emplace(key);
  Stream& s = it->second;
  if (inserted) {
    s.owner = owner;
    s.sketch = std::make_unique<AgmsSketch>(depth_, width_);
    return s.sketch.get();
  }
  // Same owner re-opening means its rows would be folded in twice.
  if (s.owner == owner) s.poisoned = true;
  return nullptr;
}

std::map<std::string, std::unique_ptr<AgmsSketch>> SketchSet::TakeValid() {
  MutexLock lock(&mu_);
  std::map<std::string, std::unique_ptr<AgmsSketch>> out;
  for (auto& [key, stream] : streams_) {
    if (stream.poisoned || stream.sketch == nullptr) continue;
    if (stream.sketch->rows() <= 0) continue;
    out.emplace(key, std::move(stream.sketch));
  }
  streams_.clear();
  return out;
}

}  // namespace taurus
