#ifndef TAURUS_FEEDBACK_CARD_SOURCE_H_
#define TAURUS_FEEDBACK_CARD_SOURCE_H_

namespace taurus {

/// Where a plan node's cardinality estimate came from, in override
/// precedence order: harvested execution actuals beat Fast-AGMS sketch
/// join-size estimates, which beat histogram formulas (DESIGN.md
/// section 11). Carried from the memo search through the skeleton into
/// the executable plan so EXPLAIN can surface it.
enum class CardSource {
  kHistogram = 0,  ///< default: NDV / histogram selectivity formulas
  kSketch = 1,     ///< Fast-AGMS join-size estimate
  kActual = 2,     ///< harvested actual cardinality from a prior execution
};

inline const char* CardSourceName(CardSource s) {
  switch (s) {
    case CardSource::kHistogram:
      return "histogram";
    case CardSource::kSketch:
      return "sketch";
    case CardSource::kActual:
      return "actual";
  }
  return "histogram";
}

}  // namespace taurus

#endif  // TAURUS_FEEDBACK_CARD_SOURCE_H_
