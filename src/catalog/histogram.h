#ifndef TAURUS_CATALOG_HISTOGRAM_H_
#define TAURUS_CATALOG_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "types/value.h"

namespace taurus {

/// Histogram flavors supported by both MySQL and (after the paper's
/// extension) Orca. Singleton histograms store one bucket per distinct
/// value; equi-height histograms store buckets of roughly equal row counts.
enum class HistogramType { kSingleton, kEquiHeight };

/// One histogram bucket over non-NULL values.
///
/// For singleton histograms `lower == upper` and `ndv == 1`. `frequency`
/// is the fraction of non-NULL rows falling in [lower, upper] (inclusive).
struct HistogramBucket {
  Value lower;
  Value upper;
  double frequency = 0.0;
  int64_t ndv = 1;
};

/// Order-preserving encoding of a string's first 8 bytes into a signed
/// 64-bit integer (Section 7 of the paper: this is how equi-height string
/// histograms were fed to Orca). Two strings sharing a >=8-byte common
/// prefix encode equal — the documented limitation.
int64_t EncodeStringPrefix(std::string_view s);

/// Maps any value onto the real line for histogram interpolation: integers
/// and temporal values map directly, doubles map to themselves, strings map
/// through EncodeStringPrefix.
double ValueToStatsDouble(const Value& v);

/// Column histogram plus the NULL fraction.
class Histogram {
 public:
  Histogram() = default;

  /// Builds a histogram from a column's values (NULLs included in `values`;
  /// they only contribute to the null fraction). Produces a singleton
  /// histogram when the number of distinct values is <= max_buckets,
  /// otherwise an equi-height histogram with `max_buckets` buckets —
  /// mirroring MySQL's ANALYZE behavior.
  static Histogram Build(std::vector<Value> values, int max_buckets);

  /// Installs pre-computed buckets directly. Used when reconstructing a
  /// histogram from a serialized (DXL) form; buckets must already be
  /// sorted and disjoint.
  static Histogram FromBuckets(HistogramType type,
                               std::vector<HistogramBucket> buckets,
                               double null_fraction) {
    Histogram h;
    h.type_ = type;
    h.buckets_ = std::move(buckets);
    h.null_fraction_ = null_fraction;
    return h;
  }

  bool empty() const { return buckets_.empty(); }
  HistogramType type() const { return type_; }
  const std::vector<HistogramBucket>& buckets() const { return buckets_; }
  double null_fraction() const { return null_fraction_; }

  /// Estimated fraction of all rows with column = v.
  double SelectivityEquals(const Value& v) const;

  /// Estimated fraction of all rows with column < v (or <= v when
  /// `inclusive`). Uses linear interpolation within buckets.
  double SelectivityLess(const Value& v, bool inclusive) const;

  /// Estimated fraction with column > v (or >= v).
  double SelectivityGreater(const Value& v, bool inclusive) const;

  /// Total number of distinct values covered by the histogram.
  int64_t TotalNdv() const;

 private:
  HistogramType type_ = HistogramType::kSingleton;
  std::vector<HistogramBucket> buckets_;
  double null_fraction_ = 0.0;
};

}  // namespace taurus

#endif  // TAURUS_CATALOG_HISTOGRAM_H_
