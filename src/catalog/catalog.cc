#include "catalog/catalog.h"

namespace taurus {

Result<TableDef*> Catalog::CreateTable(const std::string& name,
                                       std::vector<ColumnDef> columns) {
  if (tables_.count(name)) {
    return Status::AlreadyExists("table already exists: " + name);
  }
  if (columns.empty()) {
    return Status::InvalidArgument("table needs at least one column: " + name);
  }
  auto def = std::make_unique<TableDef>();
  def->id = static_cast<int>(by_id_.size());
  def->name = name;
  def->columns = std::move(columns);
  TableDef* ptr = def.get();
  by_id_.push_back(ptr);
  tables_[name] = std::move(def);
  ++schema_version_;
  return ptr;
}

Status Catalog::AddIndex(const std::string& table_name, IndexDef index) {
  TableDef* table = GetTable(table_name);
  if (table == nullptr) {
    return Status::NotFound("no such table: " + table_name);
  }
  for (int c : index.column_idx) {
    if (c < 0 || static_cast<size_t>(c) >= table->columns.size()) {
      return Status::InvalidArgument("index column out of range in " +
                                     index.name);
    }
  }
  table->indexes.push_back(std::move(index));
  ++schema_version_;
  return Status::OK();
}

TableDef* Catalog::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const TableDef* Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const TableDef* Catalog::GetTableById(int id) const {
  if (id < 0 || static_cast<size_t>(id) >= by_id_.size()) return nullptr;
  return by_id_[static_cast<size_t>(id)];
}

const TableStats& Catalog::GetStats(int table_id) const {
  static const TableStats kEmpty;
  auto it = stats_.find(table_id);
  return it == stats_.end() ? kEmpty : it->second;
}

void Catalog::SetStats(int table_id, TableStats stats) {
  stats_[table_id] = std::move(stats);
  ++stats_version_;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, def] : tables_) names.push_back(name);
  return names;
}

}  // namespace taurus
