#ifndef TAURUS_CATALOG_SCHEMA_H_
#define TAURUS_CATALOG_SCHEMA_H_

#include <string>
#include <vector>

#include "types/type.h"

namespace taurus {

/// Column definition inside a table.
struct ColumnDef {
  std::string name;
  TypeId type = TypeId::kLong;
  /// Declared length for CHAR/VARCHAR (the "type modifier" the metadata
  /// provider reports to Orca); 0 when not applicable.
  int length = 0;
  bool nullable = true;
};

/// Secondary or primary index over a table. Indexes are ordered (B-tree
/// like) and support point lookup, prefix lookup and range scans.
struct IndexDef {
  std::string name;
  /// Positions of the key columns within the table, in key order.
  std::vector<int> column_idx;
  bool unique = false;
  bool primary = false;
};

/// Table definition. `id` is the catalog-internal object id; the metadata
/// provider maps it into the Orca OID space as relation_base + id.
struct TableDef {
  int id = -1;
  std::string name;
  std::vector<ColumnDef> columns;
  std::vector<IndexDef> indexes;

  /// Index of the column with `name`, or -1.
  int ColumnIndex(const std::string& col_name) const {
    for (size_t i = 0; i < columns.size(); ++i) {
      if (columns[i].name == col_name) return static_cast<int>(i);
    }
    return -1;
  }
};

}  // namespace taurus

#endif  // TAURUS_CATALOG_SCHEMA_H_
