#ifndef TAURUS_CATALOG_STATS_H_
#define TAURUS_CATALOG_STATS_H_

#include <cstdint>
#include <vector>

#include "catalog/histogram.h"
#include "types/value.h"

namespace taurus {

/// Per-column statistics collected by ANALYZE and served to both optimizers.
/// Unlike stock MySQL, histograms are kept for UNIQUE columns too — the
/// paper lifted that restriction so Orca could see them (Section 5.5).
struct ColumnStats {
  int64_t null_count = 0;
  int64_t distinct_count = 0;
  Value min_value;
  Value max_value;
  Histogram histogram;
};

/// Per-table statistics.
struct TableStats {
  int64_t row_count = 0;
  std::vector<ColumnStats> columns;

  const ColumnStats* column(int idx) const {
    if (idx < 0 || static_cast<size_t>(idx) >= columns.size()) return nullptr;
    return &columns[idx];
  }
};

}  // namespace taurus

#endif  // TAURUS_CATALOG_STATS_H_
