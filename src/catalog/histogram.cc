#include "catalog/histogram.h"

#include <algorithm>
#include <cstring>

namespace taurus {

int64_t EncodeStringPrefix(std::string_view s) {
  // Big-endian pack of the first 8 bytes, then bias so that the unsigned
  // byte order maps onto signed integer order.
  uint64_t acc = 0;
  for (int i = 0; i < 8; ++i) {
    acc <<= 8;
    if (static_cast<size_t>(i) < s.size()) {
      acc |= static_cast<unsigned char>(s[i]);
    }
  }
  return static_cast<int64_t>(acc ^ 0x8000000000000000ULL);
}

double ValueToStatsDouble(const Value& v) {
  switch (v.kind()) {
    case Value::Kind::kInt:
      return static_cast<double>(v.AsInt());
    case Value::Kind::kDouble:
      return v.AsDouble();
    case Value::Kind::kString:
      return static_cast<double>(EncodeStringPrefix(v.AsString()));
    case Value::Kind::kNull:
      return 0.0;
  }
  return 0.0;
}

Histogram Histogram::Build(std::vector<Value> values, int max_buckets) {
  Histogram h;
  size_t total = values.size();
  if (total == 0) return h;

  // Separate NULLs.
  std::vector<Value> non_null;
  non_null.reserve(values.size());
  size_t nulls = 0;
  for (Value& v : values) {
    if (v.is_null()) {
      ++nulls;
    } else {
      non_null.push_back(std::move(v));
    }
  }
  h.null_fraction_ = static_cast<double>(nulls) / static_cast<double>(total);
  if (non_null.empty()) return h;

  std::sort(non_null.begin(), non_null.end(),
            [](const Value& a, const Value& b) {
              return Value::Compare(a, b) < 0;
            });

  // Count distinct values.
  size_t ndv = 1;
  for (size_t i = 1; i < non_null.size(); ++i) {
    if (Value::Compare(non_null[i - 1], non_null[i]) != 0) ++ndv;
  }

  const double denom = static_cast<double>(total);
  if (ndv <= static_cast<size_t>(max_buckets)) {
    h.type_ = HistogramType::kSingleton;
    size_t i = 0;
    while (i < non_null.size()) {
      size_t j = i;
      while (j < non_null.size() &&
             Value::Compare(non_null[i], non_null[j]) == 0) {
        ++j;
      }
      HistogramBucket b;
      b.lower = non_null[i];
      b.upper = non_null[i];
      b.frequency = static_cast<double>(j - i) / denom;
      b.ndv = 1;
      h.buckets_.push_back(std::move(b));
      i = j;
    }
    return h;
  }

  h.type_ = HistogramType::kEquiHeight;
  size_t per_bucket =
      (non_null.size() + static_cast<size_t>(max_buckets) - 1) /
      static_cast<size_t>(max_buckets);
  size_t i = 0;
  while (i < non_null.size()) {
    size_t j = std::min(i + per_bucket, non_null.size());
    // Extend so that a distinct value never straddles buckets.
    while (j < non_null.size() &&
           Value::Compare(non_null[j - 1], non_null[j]) == 0) {
      ++j;
    }
    HistogramBucket b;
    b.lower = non_null[i];
    b.upper = non_null[j - 1];
    b.frequency = static_cast<double>(j - i) / denom;
    b.ndv = 1;
    for (size_t k = i + 1; k < j; ++k) {
      if (Value::Compare(non_null[k - 1], non_null[k]) != 0) ++b.ndv;
    }
    h.buckets_.push_back(std::move(b));
    i = j;
  }
  return h;
}

double Histogram::SelectivityEquals(const Value& v) const {
  if (empty()) return 0.1;  // no stats: default guess
  if (v.is_null()) return null_fraction_;
  for (const HistogramBucket& b : buckets_) {
    int lo = Value::Compare(v, b.lower);
    int hi = Value::Compare(v, b.upper);
    if (lo >= 0 && hi <= 0) {
      return b.frequency / static_cast<double>(std::max<int64_t>(b.ndv, 1));
    }
  }
  return 0.0;
}

double Histogram::SelectivityLess(const Value& v, bool inclusive) const {
  if (empty()) return 0.3;
  if (v.is_null()) return 0.0;
  double acc = 0.0;
  double x = ValueToStatsDouble(v);
  for (const HistogramBucket& b : buckets_) {
    int cmp_upper = Value::Compare(v, b.upper);
    if (cmp_upper > 0) {
      acc += b.frequency;
      continue;
    }
    int cmp_lower = Value::Compare(v, b.lower);
    if (cmp_lower < 0) break;
    // v falls inside this bucket: interpolate.
    double lo = ValueToStatsDouble(b.lower);
    double hi = ValueToStatsDouble(b.upper);
    double frac;
    if (hi <= lo) {
      frac = inclusive ? 1.0 : 0.0;
    } else {
      frac = (x - lo) / (hi - lo);
      if (inclusive) {
        frac += 1.0 / static_cast<double>(std::max<int64_t>(b.ndv, 1));
      }
      frac = std::clamp(frac, 0.0, 1.0);
    }
    acc += b.frequency * frac;
    break;
  }
  return std::clamp(acc, 0.0, 1.0);
}

double Histogram::SelectivityGreater(const Value& v, bool inclusive) const {
  if (empty()) return 0.3;
  if (v.is_null()) return 0.0;
  double le = SelectivityLess(v, /*inclusive=*/!inclusive);
  double non_null = 1.0 - null_fraction_;
  return std::clamp(non_null - le, 0.0, 1.0);
}

int64_t Histogram::TotalNdv() const {
  int64_t ndv = 0;
  for (const HistogramBucket& b : buckets_) ndv += b.ndv;
  return ndv;
}

}  // namespace taurus
