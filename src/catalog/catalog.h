#ifndef TAURUS_CATALOG_CATALOG_H_
#define TAURUS_CATALOG_CATALOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/schema.h"
#include "catalog/stats.h"
#include "common/result.h"

namespace taurus {

/// MySQL-style data dictionary: table definitions, indexes and statistics.
/// Both the MySQL-path optimizer and (through the metadata provider) Orca
/// read from this catalog. Object ids are dense small integers; the
/// metadata provider lifts them into the Orca OID space.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Creates a table; fails if the name already exists.
  Result<TableDef*> CreateTable(const std::string& name,
                                std::vector<ColumnDef> columns);

  /// Adds an index to an existing table.
  Status AddIndex(const std::string& table_name, IndexDef index);

  /// Lookup by name (nullptr if absent).
  TableDef* GetTable(const std::string& name);
  const TableDef* GetTable(const std::string& name) const;

  /// Lookup by catalog object id.
  const TableDef* GetTableById(int id) const;

  /// Statistics for a table id (empty stats if ANALYZE has not run).
  const TableStats& GetStats(int table_id) const;
  void SetStats(int table_id, TableStats stats);

  std::vector<std::string> TableNames() const;
  int NumTables() const { return static_cast<int>(tables_.size()); }

  /// Monotonically increasing version counters used for plan-cache
  /// invalidation: `schema_version` bumps on DDL (CREATE TABLE /
  /// CREATE INDEX), `stats_version` bumps whenever statistics are
  /// replaced (ANALYZE). A cached plan records the versions it was
  /// compiled against; any mismatch forces re-optimization.
  uint64_t schema_version() const { return schema_version_; }
  uint64_t stats_version() const { return stats_version_; }

 private:
  std::map<std::string, std::unique_ptr<TableDef>> tables_;
  std::vector<TableDef*> by_id_;
  std::map<int, TableStats> stats_;
  uint64_t schema_version_ = 1;
  uint64_t stats_version_ = 1;
};

}  // namespace taurus

#endif  // TAURUS_CATALOG_CATALOG_H_
