#ifndef TAURUS_BRIDGE_PARSE_TREE_CONVERTER_H_
#define TAURUS_BRIDGE_PARSE_TREE_CONVERTER_H_

#include <memory>

#include "common/result.h"
#include "mdp/provider.h"
#include "orca/logical.h"
#include "orca/orca.h"
#include "parser/ast.h"

namespace taurus {

/// The MySQL-to-Orca Parse Tree Converter (paper Section 4.1). Takes one
/// prepared query block and produces the equivalent Orca logical operator
/// tree, working directly on in-memory trees (no DXL detour, unlike the
/// metadata exchange).
///
/// Responsibilities reproduced from the paper:
///  * clause-wise translation of the FROM join structure;
///  * predicate segregation: because Orca's pipeline is joined after
///    selection pushdown, single-table conjuncts (from WHERE and from
///    semi-join ON conditions) are divided among Select nodes over the
///    Gets, and only genuine join predicates stay on Join nodes
///    (Listings 3 -> 4);
///  * OID embellishment: relation OIDs and comparison-expression OIDs are
///    obtained from the metadata provider and recorded on the tree
///    (Section 5.7's STR_EQ_STR example);
///  * Orca's OR-refactoring is applied to the predicate pool first when
///    enabled (Section 7 item 4) — this mutates the bound AST so the
///    refactored predicates also reach execution.
Result<std::unique_ptr<OrcaLogicalOp>> ConvertBlockToOrcaLogical(
    QueryBlock* block, int num_refs, MetadataProvider* mdp,
    const OrcaConfig& config);

/// Orca's general OR-refactoring over one block's WHERE and join ON
/// conditions ("(a AND x) OR (a AND y)" -> "a AND (x OR y)", Section 7
/// item 4). Run by ConvertBlockToOrcaLogical before conversion; exposed so
/// the plan cache can replay the same deterministic AST mutation when
/// re-attaching a cached Orca-route skeleton to a freshly bound statement.
void ApplyOrcaOrFactoring(QueryBlock* block);

}  // namespace taurus

#endif  // TAURUS_BRIDGE_PARSE_TREE_CONVERTER_H_
