#include "bridge/parse_tree_converter.h"

#include <map>
#include <vector>

#include "common/fault_injector.h"
#include "frontend/normalize.h"
#include "parser/ast_util.h"

namespace taurus {

namespace {

/// Assigns the metadata-provider OID for a predicate conjunct where a cube
/// point applies (comparisons and arithmetic between two typed operands).
int64_t ConjunctOid(const Expr& e, MetadataProvider* mdp) {
  if (e.kind != Expr::Kind::kBinary) return kInvalidOid;
  TypeId l = e.children[0]->result_type;
  TypeId r = e.children[1]->result_type;
  if (IsComparisonOp(e.bop)) {
    auto oid = mdp->ComparisonOid(e.bop, l, r);
    return oid.ok() ? *oid : kInvalidOid;
  }
  if (IsArithmeticOp(e.bop)) {
    auto oid = mdp->ArithmeticOid(e.bop, l, r);
    return oid.ok() ? *oid : kInvalidOid;
  }
  return kInvalidOid;
}

class Converter {
 public:
  Converter(int num_refs, MetadataProvider* mdp)
      : num_refs_(num_refs), mdp_(mdp) {}

  Result<std::unique_ptr<OrcaLogicalOp>> Convert(QueryBlock* block);

 private:
  /// Local (this block's) leaves referenced by an expression.
  std::vector<int> LocalLeafRefs(const Expr& e) {
    std::vector<bool> refs(static_cast<size_t>(num_refs_), false);
    CollectReferencedRefs(e, &refs);
    std::vector<int> out;
    for (int r = 0; r < num_refs_; ++r) {
      if (refs[static_cast<size_t>(r)] && block_local_.count(r)) {
        out.push_back(r);
      }
    }
    return out;
  }

  Result<std::unique_ptr<OrcaLogicalOp>> BuildFromTree(TableRef* ref);

  /// Wraps (or extends) the Get of `ref_id` with a Select carrying `cond`.
  void PushLocalCond(int ref_id, Expr* cond);

  /// Attaches a multi-table conjunct at the lowest join covering its refs.
  void AttachJoinCond(OrcaLogicalOp* node, Expr* cond,
                      const std::vector<int>& refs);

  static void CollectLeafIds(const OrcaLogicalOp* op, std::vector<int>* out) {
    if (op->kind == OrcaLogicalOp::Kind::kGet) {
      out->push_back(op->leaf->ref_id);
      return;
    }
    for (const auto& c : op->children) CollectLeafIds(c.get(), out);
  }

  int num_refs_;
  MetadataProvider* mdp_;
  std::map<int, bool> block_local_;
  /// The Select node (or Get) currently representing each leaf.
  std::map<int, OrcaLogicalOp*> leaf_node_;
};

Result<std::unique_ptr<OrcaLogicalOp>> Converter::BuildFromTree(
    TableRef* ref) {
  if (ref->kind == TableRef::Kind::kJoin) {
    auto join = std::make_unique<OrcaLogicalOp>();
    join->kind = OrcaLogicalOp::Kind::kJoin;
    join->join_type = ref->join_type == JoinType::kCross ? JoinType::kInner
                                                         : ref->join_type;
    TAURUS_ASSIGN_OR_RETURN(auto left, BuildFromTree(ref->left.get()));
    TAURUS_ASSIGN_OR_RETURN(auto right, BuildFromTree(ref->right.get()));
    join->children.push_back(std::move(left));
    join->children.push_back(std::move(right));
    if (ref->on != nullptr) {
      std::vector<Expr*> conds;
      SplitConjunctsMutable(ref->on.get(), &conds);
      for (Expr* c : conds) {
        join->conds.push_back(c);
        join->cond_oids.push_back(ConjunctOid(*c, mdp_));
      }
    }
    return join;
  }
  auto get = std::make_unique<OrcaLogicalOp>();
  get->kind = OrcaLogicalOp::Kind::kGet;
  get->leaf = ref;
  if (ref->kind == TableRef::Kind::kBase) {
    TAURUS_ASSIGN_OR_RETURN(get->relation_oid,
                            mdp_->RelationOidByName(ref->table_name));
  }
  leaf_node_[ref->ref_id] = get.get();
  return get;
}

void Converter::PushLocalCond(int ref_id, Expr* cond) {
  OrcaLogicalOp* node = leaf_node_[ref_id];
  if (node == nullptr) return;
  if (node->kind == OrcaLogicalOp::Kind::kSelect) {
    node->conds.push_back(cond);
    node->cond_oids.push_back(ConjunctOid(*cond, mdp_));
    return;
  }
  // Splice a Select above the Get, in place: move the Get's content into a
  // new child and retarget the node.
  auto child = std::make_unique<OrcaLogicalOp>();
  child->kind = OrcaLogicalOp::Kind::kGet;
  child->leaf = node->leaf;
  child->relation_oid = node->relation_oid;
  node->kind = OrcaLogicalOp::Kind::kSelect;
  node->leaf = child->leaf;  // keep the TABLE_LIST link visible on Select
  node->conds.clear();
  node->cond_oids.clear();
  node->conds.push_back(cond);
  node->cond_oids.push_back(ConjunctOid(*cond, mdp_));
  node->children.push_back(std::move(child));
}

void Converter::AttachJoinCond(OrcaLogicalOp* node, Expr* cond,
                               const std::vector<int>& refs) {
  // Descend while a single child covers all refs. Descending into the
  // LEFT (preserved) side of any join is always legal for a WHERE
  // conjunct; descending into the RIGHT side is legal only below inner
  // joins (the NULL-extended / existential side must not be pre-filtered
  // by WHERE predicates).
  while (node->kind == OrcaLogicalOp::Kind::kJoin) {
    auto covers = [&](const OrcaLogicalOp& child) {
      std::vector<int> ids;
      CollectLeafIds(&child, &ids);
      for (int r : refs) {
        bool found = false;
        for (int id : ids) {
          if (id == r) found = true;
        }
        if (!found) return false;
      }
      return true;
    };
    if (covers(*node->children[0])) {
      if (node->children[0]->kind != OrcaLogicalOp::Kind::kJoin) break;
      node = node->children[0].get();
      continue;
    }
    if (node->join_type == JoinType::kInner && covers(*node->children[1])) {
      if (node->children[1]->kind != OrcaLogicalOp::Kind::kJoin) break;
      node = node->children[1].get();
      continue;
    }
    break;
  }
  node->conds.push_back(cond);
  node->cond_oids.push_back(ConjunctOid(*cond, mdp_));
}

Result<std::unique_ptr<OrcaLogicalOp>> Converter::Convert(QueryBlock* block) {
  if (block->from.empty()) {
    return Status::NotSupported("block without FROM cannot go to Orca");
  }
  for (const TableRef* leaf : block->Leaves()) {
    block_local_[leaf->ref_id] = true;
  }

  // FROM: comma list becomes a left-deep chain of inner joins.
  std::unique_ptr<OrcaLogicalOp> root;
  for (auto& tree : block->from) {
    TAURUS_ASSIGN_OR_RETURN(auto sub, BuildFromTree(tree.get()));
    if (!root) {
      root = std::move(sub);
    } else {
      auto join = std::make_unique<OrcaLogicalOp>();
      join->kind = OrcaLogicalOp::Kind::kJoin;
      join->join_type = JoinType::kInner;
      join->children.push_back(std::move(root));
      join->children.push_back(std::move(sub));
      root = std::move(join);
    }
  }

  // Predicate segregation. WHERE (1)/(2) of the paper's clause order:
  // single-leaf conjuncts become Selects over the Gets; join conjuncts
  // attach to the lowest covering join.
  std::vector<Expr*> where_conjuncts;
  if (block->where != nullptr) {
    SplitConjunctsMutable(block->where.get(), &where_conjuncts);
  }
  // Segregate single-leaf pieces of dependent joins' ON conditions too —
  // the semi-join case the paper works through with TPC-H Q4: without the
  // segregation Orca would not see the pushed-down selections.
  std::vector<OrcaLogicalOp*> join_nodes;
  {
    std::vector<OrcaLogicalOp*> stack{root.get()};
    while (!stack.empty()) {
      OrcaLogicalOp* n = stack.back();
      stack.pop_back();
      if (n->kind == OrcaLogicalOp::Kind::kJoin) join_nodes.push_back(n);
      for (auto& c : n->children) stack.push_back(c.get());
    }
  }
  for (OrcaLogicalOp* join : join_nodes) {
    if (join->join_type == JoinType::kInner) continue;
    std::vector<Expr*> keep;
    std::vector<int64_t> keep_oids;
    for (size_t i = 0; i < join->conds.size(); ++i) {
      Expr* c = join->conds[i];
      std::vector<int> refs = LocalLeafRefs(*c);
      // Only-inner-side conjuncts push into the inner side's Select (legal
      // for left/semi/anti alike: the inner side is filtered before
      // matching).
      std::vector<int> right_ids;
      CollectLeafIds(join->children[1].get(), &right_ids);
      bool only_right = !refs.empty();
      for (int r : refs) {
        bool in_right = false;
        for (int id : right_ids) {
          if (id == r) in_right = true;
        }
        if (!in_right) only_right = false;
      }
      if (only_right && refs.size() == 1) {
        PushLocalCond(refs[0], c);
      } else {
        keep.push_back(c);
        keep_oids.push_back(join->cond_oids[i]);
      }
    }
    join->conds = std::move(keep);
    join->cond_oids = std::move(keep_oids);
  }
  // Inner joins' ON conjuncts with a single leaf also become Selects.
  for (OrcaLogicalOp* join : join_nodes) {
    if (join->join_type != JoinType::kInner) continue;
    std::vector<Expr*> keep;
    std::vector<int64_t> keep_oids;
    for (size_t i = 0; i < join->conds.size(); ++i) {
      Expr* c = join->conds[i];
      std::vector<int> refs = LocalLeafRefs(*c);
      if (refs.size() == 1) {
        PushLocalCond(refs[0], c);
      } else {
        keep.push_back(c);
        keep_oids.push_back(join->cond_oids[i]);
      }
    }
    join->conds = std::move(keep);
    join->cond_oids = std::move(keep_oids);
  }

  for (Expr* c : where_conjuncts) {
    std::vector<int> refs = LocalLeafRefs(*c);
    if (refs.size() == 1) {
      PushLocalCond(refs[0], c);
    } else if (root->kind == OrcaLogicalOp::Kind::kJoin) {
      AttachJoinCond(root.get(), c, refs);
    } else {
      // Single-leaf block: everything is a local condition.
      PushLocalCond(block->Leaves()[0]->ref_id, c);
    }
  }
  return root;
}

}  // namespace

void ApplyOrcaOrFactoring(QueryBlock* block) {
  if (block->where != nullptr) {
    FactorOrCommonConjuncts(&block->where);
  }
  std::vector<TableRef*> stack;
  for (auto& t : block->from) stack.push_back(t.get());
  while (!stack.empty()) {
    TableRef* r = stack.back();
    stack.pop_back();
    if (r->kind == TableRef::Kind::kJoin) {
      if (r->on != nullptr) FactorOrCommonConjuncts(&r->on);
      stack.push_back(r->left.get());
      stack.push_back(r->right.get());
    }
  }
}

Result<std::unique_ptr<OrcaLogicalOp>> ConvertBlockToOrcaLogical(
    QueryBlock* block, int num_refs, MetadataProvider* mdp,
    const OrcaConfig& config) {
  TAURUS_FAULT_POINT("bridge.parse_tree_convert");
  // Orca's OR-refactoring first (it may split one conjunct into several).
  if (config.enable_or_factoring) {
    ApplyOrcaOrFactoring(block);
  }
  Converter converter(num_refs, mdp);
  return converter.Convert(block);
}

}  // namespace taurus
