#ifndef TAURUS_BRIDGE_ROUTER_H_
#define TAURUS_BRIDGE_ROUTER_H_

#include "frontend/binder.h"

namespace taurus {

/// Query routing (paper Section 4.1): only 'complex' SELECT queries take
/// the Orca detour, where complexity is defined as the total number of
/// table references in the query. The default threshold is 3 (TPC-H runs)
/// — TPC-DS used 2 and the compile-overhead experiment used 1 so that all
/// queries detour.
struct RouterConfig {
  bool enable_orca = true;
  int complex_query_threshold = 3;
};

/// Number of table references in the statement (all blocks, subqueries and
/// CTE copies included).
int CountTableReferences(const BoundStatement& stmt);

/// True when the statement should be sent to Orca for optimization.
bool ShouldRouteToOrca(const BoundStatement& stmt, const RouterConfig& config);

}  // namespace taurus

#endif  // TAURUS_BRIDGE_ROUTER_H_
