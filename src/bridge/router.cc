#include "bridge/router.h"

namespace taurus {

int CountTableReferences(const BoundStatement& stmt) {
  // Every leaf across every block received a ref_id from the binder.
  return stmt.num_refs;
}

bool ShouldRouteToOrca(const BoundStatement& stmt,
                       const RouterConfig& config) {
  if (!config.enable_orca) return false;
  return CountTableReferences(stmt) >= config.complex_query_threshold;
}

}  // namespace taurus
