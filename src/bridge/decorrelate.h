#ifndef TAURUS_BRIDGE_DECORRELATE_H_
#define TAURUS_BRIDGE_DECORRELATE_H_

#include "common/result.h"
#include "frontend/binder.h"

namespace taurus {

/// The plan converter's subquery-to-derived-table conversion (paper
/// Section 4.2.3, second special case, and the whole Section 4.2 Q17
/// walk-through): Orca may produce a de-correlated plan for a correlated
/// scalar aggregation subquery, which on the MySQL side requires the
/// derived-table form — the `derived_1_2` leaf in the paper's Fig. 7 and
/// Listing 7.
///
/// This rewrites WHERE conjuncts of the form
///     expr  CMP  (SELECT AGG(x) FROM ... WHERE inner_col = outer_expr
///                                          [AND local predicates])
/// into a grouped derived table joined into the block:
///     FROM ..., (SELECT inner_col AS dkey, AGG(x) AS dagg
///                FROM ... WHERE local GROUP BY inner_col) derived_k
///     WHERE expr CMP derived_k.dagg AND derived_k.dkey = outer_expr
///
/// Legal for SUM/AVG/MIN/MAX/STDDEV (an empty group yields NULL, which the
/// comparison rejects in both forms); COUNT is excluded (COUNT over an
/// empty group is 0, so the forms diverge — the classic count bug).
///
/// Returns the number of subqueries converted. Mutates the bound AST and
/// refreshes stmt->leaves / num_refs / num_blocks.
Result<int> DecorrelateScalarSubqueries(BoundStatement* stmt);

}  // namespace taurus

#endif  // TAURUS_BRIDGE_DECORRELATE_H_
