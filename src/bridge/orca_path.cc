#include "bridge/orca_path.h"

#include <algorithm>
#include <functional>

#include "bridge/decorrelate.h"
#include "bridge/parse_tree_converter.h"
#include "common/fault_injector.h"
#include "bridge/plan_converter.h"
#include "orca/optimizer.h"
#include "parser/ast_util.h"
#include "verify/logical_verifier.h"
#include "verify/physical_verifier.h"
#include "verify/skeleton_verifier.h"

namespace taurus {

namespace {

/// Walks a block's own expressions (not into subquery bodies) collecting
/// subquery expression nodes in a deterministic order. Shared by
/// optimization and CTE skeleton remapping (which pairs nodes by position).
void CollectSubqueryExprsOrdered(Expr* e, std::vector<Expr*>* out) {
  if (e->subquery) out->push_back(e);
  for (auto& c : e->children) CollectSubqueryExprsOrdered(c.get(), out);
}

void CollectBlockSubqueriesOrdered(QueryBlock* block,
                                   std::vector<Expr*>* out) {
  for (auto& item : block->select_items) {
    CollectSubqueryExprsOrdered(item.expr.get(), out);
  }
  if (block->where) CollectSubqueryExprsOrdered(block->where.get(), out);
  for (auto& g : block->group_by) CollectSubqueryExprsOrdered(g.get(), out);
  if (block->having) CollectSubqueryExprsOrdered(block->having.get(), out);
  for (auto& o : block->order_by) {
    CollectSubqueryExprsOrdered(o.expr.get(), out);
  }
  std::vector<TableRef*> stack;
  for (auto& t : block->from) stack.push_back(t.get());
  std::vector<TableRef*> ordered;
  while (!stack.empty()) {
    TableRef* r = stack.back();
    stack.pop_back();
    ordered.push_back(r);
    if (r->kind == TableRef::Kind::kJoin) {
      stack.push_back(r->right.get());
      stack.push_back(r->left.get());
    }
  }
  for (TableRef* r : ordered) {
    if (r->kind == TableRef::Kind::kJoin && r->on != nullptr) {
      CollectSubqueryExprsOrdered(r->on.get(), out);
    }
  }
}

}  // namespace

OrcaPathOptimizer::OrcaPathOptimizer(const Catalog& catalog,
                                     BoundStatement* stmt,
                                     MetadataProvider* mdp,
                                     const OrcaConfig& config,
                                     ResourceGovernor* governor,
                                     const PlanVerifyConfig* verify,
                                     Tracer* tracer,
                                     const FeedbackSnapshot* feedback)
    : catalog_(catalog),
      stmt_(stmt),
      mdp_(mdp),
      config_(config),
      governor_(governor),
      verify_(verify),
      tracer_(tracer),
      feedback_(feedback),
      stats_(catalog, stmt->leaves, mdp) {}

Status OrcaPathOptimizer::CheckEnforce(const char* subsystem) const {
  if (!ShouldVerify() || !verify_->enforce || verify_report_.ok()) {
    return Status::OK();
  }
  return verify_report_.ToStatus(subsystem);
}

Result<std::unique_ptr<BlockSkeleton>> OrcaPathOptimizer::Optimize() {
  if (config_.enable_decorrelation) {
    ScopedSpan decorr_span(tracer_, "decorrelate");
    TAURUS_FAULT_POINT("bridge.decorrelate");
    // Subquery -> derived-table conversion (Section 4.2.3 / the Q17
    // "derived_1_2" case). A failed rewrite leaves the correlated form.
    TAURUS_ASSIGN_OR_RETURN(int converted,
                            DecorrelateScalarSubqueries(stmt_));
    metrics_.subqueries_decorrelated = converted;
  }
  auto skel = OptimizeBlock(stmt_->block.get());
  if (skel.ok()) {
    metrics_.mdp_dxl_requests = mdp_->dxl_requests();
    metrics_.mdp_cache_hits = mdp_->cache_hits();
    if (ShouldVerify()) {
      ScopedSpan verify_span(tracer_, "verify.skeleton");
      // Statement-level skeleton invariants, including the CTE
      // single-producer/n-consumer pairing (an Orca-detour property).
      VerifySkeletonPlan(*skel.value(), catalog_,
                         /*check_cte_pairing=*/true, &verify_report_);
      TAURUS_RETURN_IF_ERROR(CheckEnforce("verify.skeleton"));
    }
  }
  return skel;
}

Result<std::unique_ptr<BlockSkeleton>> OrcaPathOptimizer::RemapSkeleton(
    const BlockSkeleton& tmpl, QueryBlock* target) {
  auto out = std::make_unique<BlockSkeleton>();
  out->block = target;
  out->out_rows = tmpl.out_rows;
  out->cost = tmpl.cost;
  out->stream_agg = tmpl.stream_agg;

  // Pair leaves by position (clone-identical structure).
  std::vector<TableRef*> tmpl_leaves = tmpl.block->Leaves();
  std::vector<TableRef*> target_leaves = target->Leaves();
  if (tmpl_leaves.size() != target_leaves.size()) {
    return Status::Internal("CTE copies have diverging structure");
  }
  std::map<const TableRef*, TableRef*> leaf_map;
  for (size_t i = 0; i < tmpl_leaves.size(); ++i) {
    leaf_map[tmpl_leaves[i]] = target_leaves[i];
  }

  // Clone the skeleton tree, retargeting leaves.
  std::function<std::unique_ptr<SkeletonNode>(const SkeletonNode&)>
      clone_node = [&](const SkeletonNode& n) -> std::unique_ptr<SkeletonNode> {
    auto copy = std::make_unique<SkeletonNode>();
    copy->is_join = n.is_join;
    copy->access = n.access;
    copy->index_id = n.index_id;
    copy->method = n.method;
    copy->join_type = n.join_type;
    copy->est_rows = n.est_rows;
    copy->est_cost = n.est_cost;
    copy->card_source = n.card_source;
    if (n.is_join) {
      copy->left = clone_node(*n.left);
      copy->right = clone_node(*n.right);
    } else {
      auto it = leaf_map.find(n.leaf);
      copy->leaf = it != leaf_map.end() ? it->second : n.leaf;
    }
    return copy;
  };
  if (tmpl.root != nullptr) out->root = clone_node(*tmpl.root);

  // Derived sub-skeletons: remap onto the target leaf's derived block.
  for (const auto& [tmpl_leaf, sub] : tmpl.derived) {
    auto it = leaf_map.find(tmpl_leaf);
    if (it == leaf_map.end() ||
        it->second->kind != TableRef::Kind::kDerived) {
      return Status::Internal("CTE remap: derived leaf mismatch");
    }
    TAURUS_ASSIGN_OR_RETURN(auto remapped,
                            RemapSkeleton(*sub, it->second->derived.get()));
    stats_.SetDerivedRows(it->second, remapped->out_rows);
    out->derived[it->second] = std::move(remapped);
  }

  // Expression subqueries: pair by deterministic traversal order.
  {
    std::vector<Expr*> tmpl_subs;
    CollectBlockSubqueriesOrdered(tmpl.block, &tmpl_subs);
    std::vector<Expr*> target_subs;
    CollectBlockSubqueriesOrdered(target, &target_subs);
    if (tmpl_subs.size() != target_subs.size()) {
      return Status::Internal("CTE remap: subquery count mismatch");
    }
    for (size_t i = 0; i < tmpl_subs.size(); ++i) {
      auto it = tmpl.subqueries.find(tmpl_subs[i]);
      if (it == tmpl.subqueries.end()) {
        return Status::Internal("CTE remap: missing subquery skeleton");
      }
      TAURUS_ASSIGN_OR_RETURN(
          auto remapped,
          RemapSkeleton(*it->second, target_subs[i]->subquery.get()));
      out->subqueries[target_subs[i]] = std::move(remapped);
    }
  }

  // Union arms.
  if (!tmpl.union_arms.empty()) {
    if (target->union_next == nullptr) {
      return Status::Internal("CTE remap: union arm mismatch");
    }
    TAURUS_ASSIGN_OR_RETURN(
        auto arm, RemapSkeleton(*tmpl.union_arms[0], target->union_next.get()));
    out->union_arms.push_back(std::move(arm));
  }
  return out;
}

Result<std::unique_ptr<BlockSkeleton>> OrcaPathOptimizer::OptimizeBlock(
    QueryBlock* block) {
  auto skel = std::make_unique<BlockSkeleton>();
  skel->block = block;

  // Derived tables first (CTE copies reuse the producer skeleton).
  for (TableRef* leaf : block->Leaves()) {
    if (leaf->kind != TableRef::Kind::kDerived) continue;
    if (leaf->from_cte) {
      auto it = cte_templates_.find(leaf->cte_name);
      if (it != cte_templates_.end()) {
        TAURUS_ASSIGN_OR_RETURN(auto remapped,
                                RemapSkeleton(*it->second,
                                              leaf->derived.get()));
        stats_.SetDerivedRows(leaf, remapped->out_rows);
        skel->derived[leaf] = std::move(remapped);
        ++metrics_.cte_producers_reused;
        continue;
      }
    }
    TAURUS_ASSIGN_OR_RETURN(auto sub, OptimizeBlock(leaf->derived.get()));
    stats_.SetDerivedRows(leaf, sub->out_rows);
    if (leaf->from_cte) {
      cte_templates_[leaf->cte_name] = sub.get();
    }
    skel->derived[leaf] = std::move(sub);
  }

  // Expression subqueries.
  {
    std::vector<Expr*> subs;
    CollectBlockSubqueriesOrdered(block, &subs);
    for (Expr* e : subs) {
      TAURUS_ASSIGN_OR_RETURN(auto sub, OptimizeBlock(e->subquery.get()));
      skel->subqueries[e] = std::move(sub);
    }
  }

  double rows = 1.0;
  double cost = 0.0;
  if (!block->from.empty()) {
    // Parse Tree Converter -> Orca optimization -> Plan Converter.
    ScopedSpan convert_span(tracer_, "parse_tree_convert");
    TAURUS_ASSIGN_OR_RETURN(
        auto logical,
        ConvertBlockToOrcaLogical(block, stmt_->num_refs, mdp_, config_));
    convert_span.End();
    if (ShouldVerify()) {
      ScopedSpan verify_span(tracer_, "verify.logical");
      VerifyLogicalTree(*logical, *block, *stmt_, &verify_report_);
      TAURUS_RETURN_IF_ERROR(CheckEnforce("verify.logical"));
    }
    ScopedSpan optimize_span(tracer_, "orca.optimize");
    OrcaOptimizer optimizer(config_, &stats_, stmt_->num_refs, governor_,
                            tracer_, feedback_);
    TAURUS_ASSIGN_OR_RETURN(auto physical, optimizer.Optimize(logical.get()));
    optimize_span.End();
    metrics_.partitions_evaluated += optimizer.partitions_evaluated();
    metrics_.memo_groups += optimizer.num_groups();
    metrics_.feedback_actual_overrides += optimizer.actual_overrides();
    metrics_.feedback_sketch_overrides += optimizer.sketch_overrides();
    if (ShouldVerify()) {
      ScopedSpan verify_span(tracer_, "verify.physical");
      VerifyPhysicalPlan(*physical, *block, &verify_report_);
      TAURUS_RETURN_IF_ERROR(CheckEnforce("verify.physical"));
    }
    ScopedSpan plan_span(tracer_, "plan_convert");
    TAURUS_ASSIGN_OR_RETURN(skel->root,
                            ConvertOrcaPlanToSkeleton(*physical, *block,
                                                      config_));
    plan_span.End();
    if (ShouldVerify()) {
      ScopedSpan verify_span(tracer_, "verify.skeleton");
      VerifyBuildProbeFlip(*skel->root, *physical, &verify_report_);
      TAURUS_RETURN_IF_ERROR(CheckEnforce("verify.skeleton"));
    }
    rows = physical->rows;
    cost = physical->cost;
  }

  // Block-level output estimate (same formulas as the MySQL optimizer's
  // tail so EXPLAIN numbers are comparable between the two paths).
  bool has_agg = !block->group_by.empty();
  if (!has_agg) {
    for (const auto& item : block->select_items) {
      if (ContainsAggregate(*item.expr)) {
        has_agg = true;
        break;
      }
    }
  }
  if (has_agg) {
    if (block->group_by.empty()) {
      rows = 1.0;
    } else {
      double groups = 1.0;
      for (const auto& g : block->group_by) {
        if (g->kind == Expr::Kind::kColumnRef) {
          groups *= stats_.NdvOf(g->ref_id, g->column_idx, rows);
        } else {
          groups *= 10.0;
        }
        groups = std::min(groups, rows);
      }
      rows = std::max(std::min(groups, rows), 1.0);
    }
    cost += rows * config_.cost.sort_row;
  }
  if (block->having != nullptr) rows = std::max(rows * 0.5, 1.0);
  if (!block->order_by.empty()) cost += rows * config_.cost.sort_row;
  if (block->limit >= 0) {
    rows = std::min(rows, static_cast<double>(block->limit));
  }

  if (block->union_next != nullptr) {
    TAURUS_ASSIGN_OR_RETURN(auto arm, OptimizeBlock(block->union_next.get()));
    rows += arm->out_rows;
    cost += arm->cost;
    skel->union_arms.push_back(std::move(arm));
  }

  skel->out_rows = std::max(rows, 1.0);
  skel->cost = cost;
  return skel;
}

}  // namespace taurus
