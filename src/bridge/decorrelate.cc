#include "bridge/decorrelate.h"

#include <utility>
#include <vector>

#include "frontend/prepare.h"
#include "parser/ast_util.h"

namespace taurus {

namespace {

/// Collects the ref_ids of a block's own FROM leaves (top level only).
void OwnLeafSet(const QueryBlock& block, std::vector<int>* out) {
  for (const TableRef* leaf : block.Leaves()) out->push_back(leaf->ref_id);
}

bool InSet(const std::vector<int>& set, int v) {
  for (int x : set) {
    if (x == v) return true;
  }
  return false;
}

/// True when `e` references none of the given leaves (and may reference
/// anything else).
bool AvoidsLeaves(const Expr& e, const std::vector<int>& leaves,
                  int num_refs) {
  std::vector<bool> refs(static_cast<size_t>(num_refs), false);
  CollectReferencedRefs(e, &refs);
  for (int leaf : leaves) {
    if (leaf >= 0 && refs[static_cast<size_t>(leaf)]) return false;
  }
  return true;
}

/// True when `e` references only the given leaves.
bool ConfinedToLeaves(const Expr& e, const std::vector<int>& leaves,
                      int num_refs) {
  std::vector<bool> refs(static_cast<size_t>(num_refs), false);
  CollectReferencedRefs(e, &refs);
  for (int r = 0; r < num_refs; ++r) {
    if (refs[static_cast<size_t>(r)] && !InSet(leaves, r)) return false;
  }
  return true;
}

std::unique_ptr<Expr> AndAll(std::vector<std::unique_ptr<Expr>> conjs) {
  std::unique_ptr<Expr> acc;
  for (auto& c : conjs) {
    if (!c) continue;
    if (!acc) {
      acc = std::move(c);
    } else {
      acc = MakeBinary(BinaryOp::kAnd, std::move(acc), std::move(c));
      acc->result_type = TypeId::kTiny;
    }
  }
  return acc;
}

/// Builds a bound column reference into the derived leaf.
std::unique_ptr<Expr> DerivedColRef(const TableRef& leaf, int column_idx,
                                    const std::string& name, TypeId type) {
  auto e = MakeColumnRef(leaf.alias, name);
  e->ref_id = leaf.ref_id;
  e->column_idx = column_idx;
  e->result_type = type;
  return e;
}

class Decorrelator {
 public:
  explicit Decorrelator(BoundStatement* stmt) : stmt_(stmt) {}

  Result<int> Run() {
    int converted = 0;
    std::vector<QueryBlock*> blocks{stmt_->block.get()};
    while (!blocks.empty()) {
      QueryBlock* b = blocks.back();
      blocks.pop_back();
      TAURUS_ASSIGN_OR_RETURN(int n, RewriteBlock(b));
      converted += n;
      for (TableRef* leaf : b->Leaves()) {
        if (leaf->kind == TableRef::Kind::kDerived) {
          blocks.push_back(leaf->derived.get());
        }
      }
      if (b->union_next) blocks.push_back(b->union_next.get());
    }
    if (mutated_) RecollectLeaves(stmt_);
    return converted;
  }

 private:
  /// Checks the conjunct pattern and, on success, performs the rewrite.
  /// `conjunct` is an owned conjunct detached from the WHERE tree.
  bool TryConvert(QueryBlock* block, std::unique_ptr<Expr>* conjunct,
                  std::vector<std::unique_ptr<Expr>>* new_conjuncts);

  Result<int> RewriteBlock(QueryBlock* block);

  BoundStatement* stmt_;
  int next_derived_id_ = 1;
  bool mutated_ = false;
};

bool Decorrelator::TryConvert(
    QueryBlock* block, std::unique_ptr<Expr>* conjunct,
    std::vector<std::unique_ptr<Expr>>* new_conjuncts) {
  Expr* c = conjunct->get();
  if (c->kind != Expr::Kind::kBinary || !IsComparisonOp(c->bop)) return false;

  // Locate the scalar-subquery side.
  int sub_side = -1;
  for (int side = 0; side < 2; ++side) {
    if (c->children[static_cast<size_t>(side)]->kind ==
        Expr::Kind::kScalarSubquery) {
      sub_side = side;
    }
  }
  if (sub_side < 0) return false;
  Expr* sub_expr = c->children[static_cast<size_t>(sub_side)].get();
  Expr* probe = c->children[static_cast<size_t>(1 - sub_side)].get();
  if (ContainsSubquery(*probe) || ContainsAggregate(*probe)) return false;

  QueryBlock* sub = sub_expr->subquery.get();
  if (sub->from.empty() || !sub->group_by.empty() || sub->having != nullptr ||
      sub->limit >= 0 || sub->offset > 0 || sub->union_next != nullptr ||
      !sub->ctes.empty() || sub->distinct || !sub->order_by.empty() ||
      sub->select_items.size() != 1) {
    return false;
  }
  // Nested derived tables / subqueries inside keep the correlated form.
  for (const TableRef* leaf : sub->Leaves()) {
    if (leaf->kind != TableRef::Kind::kBase) return false;
  }
  if (sub->where != nullptr && ContainsSubquery(*sub->where)) return false;

  // The select item must be AGG(expr) or a scalar function of exactly one
  // aggregate (e.g. 0.2 * AVG(x)) whose empty-group value is NULL.
  Expr* item = sub->select_items[0].expr.get();
  std::vector<const Expr*> aggs;
  {
    std::vector<const Expr*> stack{item};
    while (!stack.empty()) {
      const Expr* e = stack.back();
      stack.pop_back();
      if (e->kind == Expr::Kind::kAgg) {
        aggs.push_back(e);
        continue;
      }
      for (const auto& ch : e->children) stack.push_back(ch.get());
    }
  }
  if (aggs.size() != 1) return false;
  switch (aggs[0]->agg_func) {
    case AggFunc::kSum:
    case AggFunc::kAvg:
    case AggFunc::kMin:
    case AggFunc::kMax:
    case AggFunc::kStddev:
      break;
    default:
      return false;  // COUNT forms hit the count bug
  }

  // Split the subquery's WHERE into exactly one correlation equality plus
  // purely-local conjuncts.
  std::vector<int> sub_leaves;
  OwnLeafSet(*sub, &sub_leaves);
  std::vector<Expr*> sub_conjuncts;
  if (sub->where != nullptr) {
    SplitConjunctsMutable(sub->where.get(), &sub_conjuncts);
  }
  Expr* correlation = nullptr;
  Expr* inner_col = nullptr;
  Expr* outer_expr = nullptr;
  for (Expr* sc : sub_conjuncts) {
    if (ConfinedToLeaves(*sc, sub_leaves, stmt_->num_refs)) continue;
    if (correlation != nullptr) return false;  // one correlation only
    if (sc->kind != Expr::Kind::kBinary || sc->bop != BinaryOp::kEq) {
      return false;
    }
    for (int side = 0; side < 2; ++side) {
      Expr* a = sc->children[static_cast<size_t>(side)].get();
      Expr* b = sc->children[static_cast<size_t>(1 - side)].get();
      if (a->kind == Expr::Kind::kColumnRef && InSet(sub_leaves, a->ref_id) &&
          AvoidsLeaves(*b, sub_leaves, stmt_->num_refs)) {
        correlation = sc;
        inner_col = a;
        outer_expr = b;
        break;
      }
    }
    if (correlation == nullptr) return false;  // unusable correlation shape
  }
  if (correlation == nullptr) return false;  // not correlated: leave cached

  // ---- Pattern matched: build the derived table. ----
  auto derived_block = std::make_unique<QueryBlock>();
  derived_block->block_id = stmt_->num_blocks++;
  derived_block->from = std::move(sub->from);

  // Local WHERE (correlation removed). Ownership: clone local conjuncts —
  // the original tree dies with the subquery expression.
  {
    std::vector<std::unique_ptr<Expr>> local;
    for (Expr* sc : sub_conjuncts) {
      if (sc == correlation) continue;
      local.push_back(sc->Clone());
    }
    derived_block->where = AndAll(std::move(local));
  }
  TypeId key_type = inner_col->result_type;
  derived_block->group_by.push_back(inner_col->Clone());
  derived_block->select_items.push_back(
      SelectItem{inner_col->Clone(), "dkey"});
  TypeId agg_type = item->result_type;
  derived_block->select_items.push_back(
      SelectItem{sub->select_items[0].expr->Clone(), "dagg"});

  // New derived leaf appended to the block's FROM (comma join).
  auto leaf = std::make_unique<TableRef>();
  leaf->kind = TableRef::Kind::kDerived;
  leaf->alias = "derived_" + std::to_string(block->block_id) + "_" +
                std::to_string(next_derived_id_++);
  leaf->derived = std::move(derived_block);
  leaf->ref_id = stmt_->num_refs++;
  leaf->owner = block;
  // Re-own the moved FROM leaves to the derived block.
  for (TableRef* moved : leaf->derived->Leaves()) {
    moved->owner = leaf->derived.get();
  }
  TableRef* leaf_ptr = leaf.get();
  block->from.push_back(std::move(leaf));

  // Replacement conjuncts: probe CMP dagg; dkey = outer_expr.
  BinaryOp cmp = c->bop;
  if (sub_side == 0) cmp = CommuteComparison(cmp);  // subquery was on left
  auto cmp_expr = MakeBinary(cmp, probe->Clone(),
                             DerivedColRef(*leaf_ptr, 1, "dagg", agg_type));
  cmp_expr->result_type = TypeId::kTiny;
  auto key_expr =
      MakeBinary(BinaryOp::kEq, DerivedColRef(*leaf_ptr, 0, "dkey", key_type),
                 outer_expr->Clone());
  key_expr->result_type = TypeId::kTiny;
  new_conjuncts->push_back(std::move(cmp_expr));
  new_conjuncts->push_back(std::move(key_expr));
  conjunct->reset();
  return true;
}

Result<int> Decorrelator::RewriteBlock(QueryBlock* block) {
  if (block->where == nullptr) return 0;
  // Cheap pre-check: any top-level comparison against a scalar subquery?
  // The conjunct surgery below re-clones the WHERE tree (invalidating
  // stmt->leaves until they are re-collected), so only blocks with actual
  // candidates may be touched.
  {
    std::vector<const Expr*> flat;
    SplitConjuncts(block->where.get(), &flat);
    bool candidate = false;
    for (const Expr* c : flat) {
      if (c->kind != Expr::Kind::kBinary || !IsComparisonOp(c->bop)) continue;
      for (const auto& child : c->children) {
        if (child->kind == Expr::Kind::kScalarSubquery) candidate = true;
      }
    }
    if (!candidate) return 0;
  }
  // Detach WHERE into owned conjuncts (cloning, as in the Prepare phase).
  std::vector<std::unique_ptr<Expr>> conjuncts;
  {
    std::vector<Expr*> flat;
    SplitConjunctsMutable(block->where.get(), &flat);
    if (flat.size() == 1) {
      conjuncts.push_back(std::move(block->where));
    } else {
      for (Expr* c : flat) conjuncts.push_back(c->Clone());
      block->where.reset();
    }
    mutated_ = true;  // the AST was restructured even if nothing converts
  }
  int converted = 0;
  std::vector<std::unique_ptr<Expr>> additions;
  for (auto& c : conjuncts) {
    if (c == nullptr) continue;
    if (TryConvert(block, &c, &additions)) ++converted;
  }
  for (auto& a : additions) conjuncts.push_back(std::move(a));
  std::unique_ptr<Expr> where;
  for (auto& c : conjuncts) {
    if (c != nullptr) {
      if (!where) {
        where = std::move(c);
      } else {
        where = MakeBinary(BinaryOp::kAnd, std::move(where), std::move(c));
        where->result_type = TypeId::kTiny;
      }
    }
  }
  block->where = std::move(where);
  return converted;
}

}  // namespace

Result<int> DecorrelateScalarSubqueries(BoundStatement* stmt) {
  Decorrelator decorrelator(stmt);
  return decorrelator.Run();
}

}  // namespace taurus
