#ifndef TAURUS_BRIDGE_ORCA_PATH_H_
#define TAURUS_BRIDGE_ORCA_PATH_H_

#include <map>
#include <memory>
#include <string>

#include "catalog/catalog.h"
#include "common/resource_budget.h"
#include "common/result.h"
#include "feedback/feedback_store.h"
#include "frontend/binder.h"
#include "mdp/provider.h"
#include "mdp/stats_adapter.h"
#include "myopt/skeleton.h"
#include "obs/trace.h"
#include "orca/orca.h"
#include "verify/diagnostics.h"

namespace taurus {

/// Metrics from one Orca-path optimization, used by the Table 1 bench.
struct OrcaPathMetrics {
  int64_t partitions_evaluated = 0;
  int memo_groups = 0;
  int64_t mdp_dxl_requests = 0;
  int64_t mdp_cache_hits = 0;
  int cte_producers_reused = 0;
  int subqueries_decorrelated = 0;
  /// Memo cardinalities overridden by harvested actuals / sketch estimates
  /// (feedback loop, DESIGN.md section 11).
  int64_t feedback_actual_overrides = 0;
  int64_t feedback_sketch_overrides = 0;
};

/// Drives the Orca detour for a whole statement: for every query block
/// (derived tables and expression subqueries bottom-up), run the parse
/// tree converter, the Orca optimizer (statistics served through the
/// metadata provider), and the plan converter — producing the same
/// BlockSkeleton structure the MySQL optimizer produces, so plan
/// refinement stays oblivious of the detour (Section 4.3).
///
/// CTE handling (Section 4.2.3): Orca has one producer plan per CTE. The
/// binder expanded each CTE reference into its own copy (MySQL's multiple-
/// producer model), so this driver optimizes the first copy and *maps* the
/// resulting skeleton onto every further copy of the same CTE — the
/// single-producer-to-n-consumers translation.
class OrcaPathOptimizer {
 public:
  /// `governor`, when non-null, bounds every memo search this detour runs
  /// (blocks share one budget); kResourceExhausted aborts the detour.
  /// `verify`, when non-null with verify_plans set, runs the boundary
  /// verifiers (logical after the parse tree converter, physical on Orca's
  /// output, flip legality and skeleton invariants after the plan
  /// converter); with enforce set, an error-severity violation aborts the
  /// detour with kPlanInvariantViolation.
  /// `tracer`, when non-null, records the detour's pipeline sub-spans
  /// (decorrelate, parse_tree_convert, orca.optimize with its memo spans,
  /// plan_convert, verify.*) for the per-query trace.
  /// `feedback`, when non-null, carries harvested execution feedback for
  /// this statement's fingerprint into every block's memo search
  /// (cardinality override precedence actual > sketch > histogram).
  OrcaPathOptimizer(const Catalog& catalog, BoundStatement* stmt,
                    MetadataProvider* mdp, const OrcaConfig& config,
                    ResourceGovernor* governor = nullptr,
                    const PlanVerifyConfig* verify = nullptr,
                    Tracer* tracer = nullptr,
                    const FeedbackSnapshot* feedback = nullptr);

  Result<std::unique_ptr<BlockSkeleton>> Optimize();

  const OrcaPathMetrics& metrics() const { return metrics_; }

  /// Diagnostics accumulated by the boundary verifiers across all blocks.
  const VerifyReport& verify_report() const { return verify_report_; }

 private:
  Result<std::unique_ptr<BlockSkeleton>> OptimizeBlock(QueryBlock* block);

  bool ShouldVerify() const {
    return verify_ != nullptr && verify_->verify_plans;
  }
  /// OK unless enforcement is on and the report has a new error; then the
  /// first error as kPlanInvariantViolation with origin `subsystem`.
  Status CheckEnforce(const char* subsystem) const;

  /// Maps a CTE producer skeleton onto another bound copy of the same CTE
  /// body (clone-structured blocks).
  Result<std::unique_ptr<BlockSkeleton>> RemapSkeleton(
      const BlockSkeleton& tmpl, QueryBlock* target);

  const Catalog& catalog_;
  BoundStatement* stmt_;
  MetadataProvider* mdp_;
  const OrcaConfig& config_;
  ResourceGovernor* governor_;
  const PlanVerifyConfig* verify_;
  Tracer* tracer_;
  const FeedbackSnapshot* feedback_;
  MdpStatsProvider stats_;
  OrcaPathMetrics metrics_;
  VerifyReport verify_report_;
  std::map<std::string, const BlockSkeleton*> cte_templates_;
};

}  // namespace taurus

#endif  // TAURUS_BRIDGE_ORCA_PATH_H_
