#include "bridge/plan_converter.h"

#include "common/fault_injector.h"

namespace taurus {

namespace {

/// Pass 1: pre-order leaf walk with query-block discovery through the
/// TABLE_LIST (owner) links.
Status DiscoverQueryBlocks(const OrcaPhysicalOp& op, const QueryBlock& block,
                           int* leaves_seen) {
  if (op.leaf != nullptr && op.children.empty()) {
    ++*leaves_seen;
    if (op.leaf->owner != &block) {
      // Orca rearranged the query-block structure — abort the conversion
      // so the caller can resort to the MySQL optimizer (Section 4.2.1).
      return Status::NotSupported(
          "Orca plan crosses query-block boundaries; aborting conversion");
    }
  }
  for (const auto& child : op.children) {
    TAURUS_RETURN_IF_ERROR(DiscoverQueryBlocks(*child, block, leaves_seen));
  }
  return Status::OK();
}

/// Pass 2: structural conversion.
Result<std::unique_ptr<SkeletonNode>> Convert(const OrcaPhysicalOp& op,
                                              const OrcaConfig& config) {
  auto node = std::make_unique<SkeletonNode>();
  node->est_rows = op.rows;
  node->est_cost = op.cost;
  node->card_source = op.card_source;
  switch (op.kind) {
    case OrcaPhysicalOp::Kind::kTableScan:
      node->is_join = false;
      node->leaf = op.leaf;
      node->access = AccessMethod::kTableScan;
      return node;
    case OrcaPhysicalOp::Kind::kIndexRangeScan:
      node->is_join = false;
      node->leaf = op.leaf;
      node->access = AccessMethod::kIndexRange;
      node->index_id = op.index_id;
      return node;
    case OrcaPhysicalOp::Kind::kIndexLookup:
      node->is_join = false;
      node->leaf = op.leaf;
      node->access = AccessMethod::kIndexLookup;
      node->index_id = op.index_id;
      return node;
    case OrcaPhysicalOp::Kind::kNLJoin: {
      node->is_join = true;
      node->method = JoinMethod::kNestedLoop;
      node->join_type = op.join_type;
      TAURUS_ASSIGN_OR_RETURN(node->left, Convert(*op.children[0], config));
      TAURUS_ASSIGN_OR_RETURN(node->right, Convert(*op.children[1], config));
      return node;
    }
    case OrcaPhysicalOp::Kind::kHashJoin: {
      node->is_join = true;
      node->method = JoinMethod::kHash;
      node->join_type = op.join_type;
      TAURUS_ASSIGN_OR_RETURN(auto left, Convert(*op.children[0], config));
      TAURUS_ASSIGN_OR_RETURN(auto right, Convert(*op.children[1], config));
      if (op.join_type == JoinType::kInner && config.flip_inner_hash_build) {
        // Orca: probe left / build right. MySQL inner hash joins build
        // from the LEFT input, so swap the children to keep Orca's chosen
        // build side (Section 7 item 2).
        node->left = std::move(right);
        node->right = std::move(left);
      } else {
        node->left = std::move(left);
        node->right = std::move(right);
      }
      return node;
    }
  }
  return Status::Internal("unreachable physical kind");
}

}  // namespace

Result<std::unique_ptr<SkeletonNode>> ConvertOrcaPlanToSkeleton(
    const OrcaPhysicalOp& plan, const QueryBlock& block,
    const OrcaConfig& config) {
  TAURUS_FAULT_POINT("bridge.plan_convert");
  int leaves_seen = 0;
  TAURUS_RETURN_IF_ERROR(DiscoverQueryBlocks(plan, block, &leaves_seen));
  if (leaves_seen != static_cast<int>(block.Leaves().size())) {
    return Status::NotSupported(
        "Orca plan does not cover the block's tables; aborting conversion");
  }
  return Convert(plan, config);
}

}  // namespace taurus
