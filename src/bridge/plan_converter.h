#ifndef TAURUS_BRIDGE_PLAN_CONVERTER_H_
#define TAURUS_BRIDGE_PLAN_CONVERTER_H_

#include <memory>

#include "common/result.h"
#include "myopt/skeleton.h"
#include "orca/orca.h"
#include "orca/physical.h"

namespace taurus {

/// The Orca-to-MySQL Plan Converter (paper Section 4.2): converts one
/// block's Orca physical plan into a MySQL skeleton plan in two passes.
///
/// Pass 1 (Section 4.2.1) walks the physical tree in pre-order and uses
/// the TABLE_LIST back-pointers carried in the table descriptors to assign
/// every leaf to its query block; if Orca changed the query-block
/// structure, conversion aborts (the caller then falls back to the MySQL
/// optimizer).
///
/// Pass 2 (Section 4.2.2) fills the best-position structure: join order,
/// join method and access method per table, copying Orca's cost and
/// cardinality estimates so they surface in EXPLAIN.
///
/// The converter also performs the inner-hash-join build/probe flip the
/// paper describes in Section 7 item 2: Orca's convention puts the build
/// side on the right, while MySQL's executor builds inner hash joins from
/// the left input, so the children are swapped.
Result<std::unique_ptr<SkeletonNode>> ConvertOrcaPlanToSkeleton(
    const OrcaPhysicalOp& plan, const QueryBlock& block,
    const OrcaConfig& config);

}  // namespace taurus

#endif  // TAURUS_BRIDGE_PLAN_CONVERTER_H_
