#ifndef TAURUS_FRONTEND_FINGERPRINT_H_
#define TAURUS_FRONTEND_FINGERPRINT_H_

#include <cstdint>
#include <string>

#include "frontend/binder.h"

namespace taurus {

/// Normalized identity of a bound statement, used as the plan-cache key.
///
/// The canonical text is a deterministic serialization of the bound (and
/// prepared) AST in which column references are rendered by resolved
/// (ref_id, column_idx), base tables by catalog object id, and select-item
/// aliases are omitted. Because it is derived from the *bound* tree,
/// whitespace, keyword case and alias spelling differences all collapse:
/// two statements that bind to the same tree get the same canonical text.
/// Anything that can change the skeleton plan (join shape, predicates,
/// grouping, ordering, limits, set operations) is included.
struct StatementFingerprint {
  /// FNV-1a hash of `canonical`; cheap routing/metadata identity.
  uint64_t hash = 0;
  /// Full canonical serialization; the collision-proof cache key.
  std::string canonical;
};

/// Computes the fingerprint of a bound statement. Deterministic: equal
/// bound trees always produce equal canonical text and hashes.
StatementFingerprint FingerprintStatement(const BoundStatement& stmt);

/// FNV-1a 64-bit hash of a byte string (exposed for tests and for mixing
/// routing tags into cache keys).
uint64_t FingerprintHash(const std::string& bytes);

}  // namespace taurus

#endif  // TAURUS_FRONTEND_FINGERPRINT_H_
